package polm2

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestAppsRegistry(t *testing.T) {
	apps := Apps()
	if len(apps) != 3 {
		t.Fatalf("Apps() = %d entries, want 3", len(apps))
	}
	for _, name := range []string{"Cassandra", "Lucene", "GraphChi"} {
		app := AppByName(name)
		if app == nil {
			t.Fatalf("AppByName(%q) = nil", name)
		}
		if app.Name() != name {
			t.Fatalf("AppByName(%q).Name() = %q", name, app.Name())
		}
		if len(app.Workloads()) == 0 {
			t.Fatalf("%s has no workloads", name)
		}
	}
	if AppByName("HBase") != nil {
		t.Fatal("unknown app should be nil")
	}
}

func TestBenchRegistry(t *testing.T) {
	if got := len(BenchTargets()); got != 6 {
		t.Fatalf("BenchTargets() = %d, want 6", got)
	}
	names := BenchExperiments()
	want := map[string]bool{"table1": true, "fig5": true, "fig9": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("experiments missing: %v", want)
	}
}

// TestFacadeEndToEnd runs the whole public workflow on GraphChi (the
// fastest model): profile, save, load, run instrumented, compare with G1.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run skipped in -short mode")
	}
	app := GraphChi()
	prof, err := ProfileApp(app, "PR", ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pr.json")
	if err := prof.Profile.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}

	opts := RunOptions{Duration: 8 * time.Minute, Warmup: 2 * time.Minute}
	g1, err := RunApp(app, "PR", CollectorG1, PlanNone, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := RunApp(app, "PR", CollectorNG2C, PlanPOLM2, loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if instrumented.WarmPauses.Max() >= g1.WarmPauses.Max() {
		t.Fatalf("POLM2 worst pause %v did not beat G1 %v",
			instrumented.WarmPauses.Max(), g1.WarmPauses.Max())
	}
}

func TestRunBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run skipped in -short mode")
	}
	var buf bytes.Buffer
	session := NewBenchSession(BenchConfig{
		RunDuration: 6 * time.Minute,
		Warmup:      90 * time.Second,
	})
	if err := session.RunExperiment("table1", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
