// Command polm2-profile runs the profiling phase of POLM2 (§3.5) for one
// application workload and writes the resulting allocation profile as JSON.
//
// Usage:
//
//	polm2-profile -app Cassandra -workload WI -o profile.json
//	polm2-profile -app Lucene -workload default -duration 15m -v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"polm2"
	"polm2/internal/faultio"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		appName  = flag.String("app", "Cassandra", "application model: Cassandra, Lucene or GraphChi")
		workload = flag.String("workload", "WI", "workload name (Cassandra: WI/WR/RI, Lucene: default, GraphChi: CC/PR)")
		out      = flag.String("o", "profile.json", "output path for the allocation profile")
		storeDir = flag.String("store", "", "also store the profile in this repository (keyed by app/workload)")
		snapDir  = flag.String("snapshots", "", "persist heap snapshot images into this directory")
		duration = flag.Duration("duration", 0, "simulated profiling duration (default: 15m)")
		scale    = flag.Uint64("scale", 0, "heap scale divisor vs the paper's 12 GB setup (default 64)")
		seed     = flag.Int64("seed", 1, "workload random seed")
		every    = flag.Int("snapshot-every", 1, "take a heap snapshot every k-th GC cycle")
		faults   = flag.String("faults", "", `inject I/O faults into artifact writes (e.g. "seed=7;torn:site-*.bin;crash#500") and analyze in salvage mode`)
		verbose  = flag.Bool("v", false, "print per-site profiling evidence")
	)
	flag.Parse()

	app := polm2.AppByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "polm2-profile: unknown app %q (want Cassandra, Lucene or GraphChi)\n", *appName)
		return 2
	}
	var injector *faultio.Injector
	if *faults != "" {
		plan, err := faultio.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-profile: %v\n", err)
			return 2
		}
		injector = faultio.New(plan)
	}

	start := time.Now()
	res, err := polm2.ProfileApp(app, *workload, polm2.ProfileOptions{
		Duration:      *duration,
		Scale:         *scale,
		Seed:          *seed,
		SnapshotEvery: *every,
		SnapshotDir:   *snapDir,
		Fault:         injector,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "polm2-profile: %v\n", err)
		return 1
	}
	if err := res.Profile.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "polm2-profile: %v\n", err)
		return 1
	}

	p := res.Profile
	fmt.Printf("profiled %s/%s: %v simulated in %v wall-clock\n",
		app.Name(), *workload, res.SimDuration.Round(time.Second), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  GC cycles: %d, snapshots: %d, records dir: %s\n",
		res.GCCycles, len(res.Snapshots), res.RecordsDir)
	fmt.Printf("  instrumented sites: %d, generations: %d, conflicts: %d (unresolved %d)\n",
		p.InstrumentedSites(), p.UsedGenerations(), p.Conflicts, p.Unresolved)
	if res.Salvage != nil {
		fmt.Printf("  %s\n", res.Salvage)
	}
	fmt.Printf("  profile written to %s\n", *out)
	if *storeDir != "" {
		store, err := polm2.OpenProfileStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-profile: %v\n", err)
			return 1
		}
		if err := store.Put(res.Profile); err != nil {
			fmt.Fprintf(os.Stderr, "polm2-profile: %v\n", err)
			return 1
		}
		fmt.Printf("  stored as %s/%s in %s\n", app.Name(), *workload, *storeDir)
	}
	if *verbose {
		for _, site := range p.Sites {
			fmt.Printf("  site %-60s gen=%d n=%d\n", site.Trace, site.Gen, site.Allocated)
		}
		for _, c := range p.Calls {
			fmt.Printf("  call directive %-50s gen=%d\n", c.Loc, c.Gen)
		}
		for _, a := range p.Allocs {
			fmt.Printf("  alloc directive %-48s gen=%d direct=%v\n", a.Loc, a.Gen, a.Direct)
		}
	}
	return 0
}
