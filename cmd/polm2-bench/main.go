// Command polm2-bench regenerates the tables and figures of the POLM2
// paper's evaluation (§5): Table 1 and Figures 3 through 9, plus the
// ablations listed in DESIGN.md.
//
// Usage:
//
//	polm2-bench                 # everything, full 30-minute simulated runs
//	polm2-bench -quick          # everything, shortened runs
//	polm2-bench -exp fig5       # one experiment
//	polm2-bench -workers 4      # compute simulations on 4 workers
//	polm2-bench -json out.json  # also write a machine-readable report
//	polm2-bench -trace t.jsonl  # write a deterministic trace of every run
//	polm2-bench -list           # list experiment names
//
// Host-level performance investigation hooks (all write to files or stderr,
// never stdout):
//
//	polm2-bench -cpuprofile cpu.prof   # pprof CPU profile of the run
//	polm2-bench -memprofile mem.prof   # pprof heap profile at exit
//	polm2-bench -memstats              # runtime.MemStats summary on stderr
//
// Output is deterministic for a fixed -seed: the worker count changes only
// wall-clock time, never a byte of the rendered tables.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"polm2"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "", "single experiment to run (default: all); see -list")
		list     = flag.Bool("list", false, "list experiment names and exit")
		quick    = flag.Bool("quick", false, "shorten production runs to 10 simulated minutes")
		scale    = flag.Uint64("scale", 0, "heap scale divisor vs the paper's 12 GB setup (default 64)")
		seed     = flag.Int64("seed", 1, "workload random seed")
		workers  = flag.Int("workers", 1, "number of concurrent simulations")
		faults   = flag.String("faults", "", `inject I/O faults into every profiling run's artifact writes (faultio spec, e.g. "seed=7;torn:site-*.bin")`)
		jsonOut  = flag.String("json", "", "write a JSON report (outputs + timings) to this file")
		traceOut = flag.String("trace", "", "write a deterministic JSONL trace of every simulation to this file (internal/trace)")
		quiet    = flag.Bool("quiet", false, "suppress per-simulation progress lines")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		memStats   = flag.Bool("memstats", false, "print a runtime.MemStats summary to stderr at exit")
	)
	flag.Parse()

	if *list {
		for _, name := range polm2.BenchExperiments() {
			fmt.Println(name)
		}
		return 0
	}

	// The simulations allocate heavily and run one per worker; trading
	// memory for fewer runtime GC cycles is worth it for a batch tool.
	// An explicit GOGC still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-bench: creating CPU profile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "polm2-bench: starting CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	cfg := polm2.BenchConfig{Scale: *scale, Seed: *seed, FaultSpec: *faults, Trace: *traceOut != ""}
	if *quick {
		cfg.RunDuration = 10 * time.Minute
		cfg.Warmup = 2 * time.Minute
	}
	session := polm2.NewBenchSession(cfg)

	names := polm2.BenchExperiments()
	if *exp != "" {
		names = []string{*exp}
	}
	opts := polm2.BenchParallelOptions{Workers: *workers}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	start := time.Now()
	report, err := session.RunExperiments(names, os.Stdout, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polm2-bench: %v\n", err)
		return 1
	}
	if *traceOut != "" {
		if err := writeTraceFile(session, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "polm2-bench: %v\n", err)
			return 1
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-bench: encoding report: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "polm2-bench: writing report: %v\n", err)
			return 1
		}
	}
	// Timing goes to stderr: stdout carries only the deterministic
	// rendered experiments, so same-seed runs are byte-identical there.
	fmt.Fprintf(os.Stderr, "completed in %v wall-clock (%d workers)\n",
		time.Since(start).Round(time.Millisecond), report.Workers)

	if *memStats {
		printMemStats()
	}
	if *memProfile != "" {
		if err := writeHeapProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "polm2-bench: %v\n", err)
			return 1
		}
	}
	return 0
}

// writeTraceFile persists the session's accumulated trace. Like stdout,
// the bytes depend only on the configuration, never on -workers: units
// trace into private buffers and are concatenated in sorted key order.
func writeTraceFile(session *polm2.BenchSession, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := session.WriteTrace(bw); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	return f.Close()
}

// printMemStats reports the host Go runtime's allocation behaviour over the
// whole run — the quantity the simulation-core memory-layout work
// (DESIGN.md §8) optimizes.
func printMemStats() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(os.Stderr, "memstats: alloc=%s totalalloc=%s sys=%s mallocs=%d frees=%d gc=%d pause=%v\n",
		fmtBytes(ms.HeapAlloc), fmtBytes(ms.TotalAlloc), fmtBytes(ms.Sys),
		ms.Mallocs, ms.Frees, ms.NumGC, time.Duration(ms.PauseTotalNs))
}

func fmtBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// writeHeapProfile snapshots the heap profile after a final GC so the
// profile reflects retained memory, the way `go test -memprofile` does.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		return fmt.Errorf("writing heap profile: %w", err)
	}
	return nil
}
