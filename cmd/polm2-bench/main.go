// Command polm2-bench regenerates the tables and figures of the POLM2
// paper's evaluation (§5): Table 1 and Figures 3 through 9, plus the
// ablations listed in DESIGN.md.
//
// Usage:
//
//	polm2-bench                 # everything, full 30-minute simulated runs
//	polm2-bench -quick          # everything, shortened runs
//	polm2-bench -exp fig5       # one experiment
//	polm2-bench -workers 4      # compute simulations on 4 workers
//	polm2-bench -json out.json  # also write a machine-readable report
//	polm2-bench -list           # list experiment names
//
// Output is deterministic for a fixed -seed: the worker count changes only
// wall-clock time, never a byte of the rendered tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"polm2"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp     = flag.String("exp", "", "single experiment to run (default: all); see -list")
		list    = flag.Bool("list", false, "list experiment names and exit")
		quick   = flag.Bool("quick", false, "shorten production runs to 10 simulated minutes")
		scale   = flag.Uint64("scale", 0, "heap scale divisor vs the paper's 12 GB setup (default 64)")
		seed    = flag.Int64("seed", 1, "workload random seed")
		workers = flag.Int("workers", 1, "number of concurrent simulations")
		jsonOut = flag.String("json", "", "write a JSON report (outputs + timings) to this file")
		quiet   = flag.Bool("quiet", false, "suppress per-simulation progress lines")
	)
	flag.Parse()

	if *list {
		for _, name := range polm2.BenchExperiments() {
			fmt.Println(name)
		}
		return 0
	}

	// The simulations allocate heavily and run one per worker; trading
	// memory for fewer runtime GC cycles is worth it for a batch tool.
	// An explicit GOGC still wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	cfg := polm2.BenchConfig{Scale: *scale, Seed: *seed}
	if *quick {
		cfg.RunDuration = 10 * time.Minute
		cfg.Warmup = 2 * time.Minute
	}
	session := polm2.NewBenchSession(cfg)

	names := polm2.BenchExperiments()
	if *exp != "" {
		names = []string{*exp}
	}
	opts := polm2.BenchParallelOptions{Workers: *workers}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	start := time.Now()
	report, err := session.RunExperiments(names, os.Stdout, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polm2-bench: %v\n", err)
		return 1
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-bench: encoding report: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "polm2-bench: writing report: %v\n", err)
			return 1
		}
	}
	// Timing goes to stderr: stdout carries only the deterministic
	// rendered experiments, so same-seed runs are byte-identical there.
	fmt.Fprintf(os.Stderr, "completed in %v wall-clock (%d workers)\n",
		time.Since(start).Round(time.Millisecond), report.Workers)
	return 0
}
