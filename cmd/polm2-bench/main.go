// Command polm2-bench regenerates the tables and figures of the POLM2
// paper's evaluation (§5): Table 1 and Figures 3 through 9, plus the
// ablations listed in DESIGN.md.
//
// Usage:
//
//	polm2-bench                 # everything, full 30-minute simulated runs
//	polm2-bench -quick          # everything, shortened runs
//	polm2-bench -exp fig5       # one experiment
//	polm2-bench -list           # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"polm2"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp   = flag.String("exp", "", "single experiment to run (default: all); see -list")
		list  = flag.Bool("list", false, "list experiment names and exit")
		quick = flag.Bool("quick", false, "shorten production runs to 10 simulated minutes")
		scale = flag.Uint64("scale", 0, "heap scale divisor vs the paper's 12 GB setup (default 64)")
		seed  = flag.Int64("seed", 1, "workload random seed")
	)
	flag.Parse()

	if *list {
		for _, name := range polm2.BenchExperiments() {
			fmt.Println(name)
		}
		return 0
	}

	cfg := polm2.BenchConfig{Scale: *scale, Seed: *seed}
	if *quick {
		cfg.RunDuration = 10 * time.Minute
		cfg.Warmup = 2 * time.Minute
	}
	session := polm2.NewBenchSession(cfg)

	start := time.Now()
	var err error
	if *exp == "" {
		err = session.RunAll(os.Stdout)
	} else {
		err = session.RunExperiment(*exp, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "polm2-bench: %v\n", err)
		return 1
	}
	fmt.Printf("\ncompleted in %v wall-clock\n", time.Since(start).Round(time.Millisecond))
	return 0
}
