// Command polm2-run executes the production phase of POLM2 (§3.5): one
// application workload under a chosen collector, optionally instrumented
// with a previously generated allocation profile.
//
// Usage:
//
//	polm2-run -app Cassandra -workload WI -collector G1
//	polm2-run -app Cassandra -workload WI -collector NG2C -profile profile.json
//	polm2-run -app Cassandra -workload WI -collector NG2C -manual
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"polm2"
	"polm2/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		appName     = flag.String("app", "Cassandra", "application model: Cassandra, Lucene or GraphChi")
		workload    = flag.String("workload", "WI", "workload name")
		collector   = flag.String("collector", "G1", "collector: G1, NG2C or C4")
		profilePath = flag.String("profile", "", "POLM2 allocation profile to instrument with (JSON)")
		storeDir    = flag.String("store", "", "profile repository to select a profile from (by app/workload)")
		manual      = flag.Bool("manual", false, "use the expert's hand-written NG2C profile instead")
		onlineMode  = flag.Bool("online", false, "continuous profiling: re-analyze and hot-swap the plan while running")
		reprofile   = flag.Duration("reprofile", 0, "online re-analysis interval (default 5m)")
		daemonURL   = flag.String("daemon", "", "polm2d base URL for fleet mode: upload evidence, install the merged fleet plan (needs -online)")
		instanceID  = flag.String("instance", "", "stable fleet instance id for evidence uploads (default: derived from -seed)")
		duration    = flag.Duration("duration", 0, "simulated run duration (default: 30m, the paper's)")
		warmup      = flag.Duration("warmup", 0, "ignored warmup window (default: 5m, the paper's)")
		scale       = flag.Uint64("scale", 0, "heap scale divisor vs the paper's 12 GB setup (default 64)")
		seed        = flag.Int64("seed", 1, "workload random seed")
		tracePath   = flag.String("trace", "", "write a deterministic JSONL trace of the run to this file (internal/trace)")
	)
	flag.Parse()

	app := polm2.AppByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "polm2-run: unknown app %q (want Cassandra, Lucene or GraphChi)\n", *appName)
		return 2
	}
	exclusive := 0
	for _, set := range []bool{*profilePath != "", *manual, *storeDir != "", *onlineMode} {
		if set {
			exclusive++
		}
	}
	if exclusive > 1 {
		fmt.Fprintln(os.Stderr, "polm2-run: -profile, -manual, -store and -online are mutually exclusive")
		return 2
	}

	if *daemonURL != "" && !*onlineMode {
		fmt.Fprintln(os.Stderr, "polm2-run: -daemon needs -online (fleet sync happens on re-profiles)")
		return 2
	}
	if *instanceID != "" && *daemonURL == "" {
		fmt.Fprintln(os.Stderr, "polm2-run: -instance needs -daemon (it identifies this instance's evidence uploads)")
		return 2
	}

	// The tracer's records are stamped from the simulated clock, so the
	// file is byte-identical across runs of the same configuration.
	var tracer *trace.Tracer
	finishTrace := func() error { return nil }
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-run: creating trace file: %v\n", err)
			return 1
		}
		bw := bufio.NewWriter(f)
		tracer = trace.New(trace.Options{Writer: bw})
		finishTrace = func() error {
			if err := tracer.Err(); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}

	if *onlineMode {
		opts := polm2.OnlineOptions{
			Duration:  *duration,
			Warmup:    *warmup,
			Scale:     *scale,
			Seed:      *seed,
			Reprofile: *reprofile,
			Tracer:    tracer,
		}
		if *daemonURL != "" {
			fc, err := polm2.NewFleetClient(polm2.FleetClientOptions{
				BaseURL:    *daemonURL,
				Seed:       *seed,
				InstanceID: *instanceID,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "polm2-run: %v\n", err)
				return 2
			}
			opts.Fleet = fc
		}
		code := runOnline(app, *workload, opts)
		if err := finishTrace(); err != nil {
			fmt.Fprintf(os.Stderr, "polm2-run: writing trace: %v\n", err)
			return 1
		}
		return code
	}

	plan := polm2.PlanNone
	var profile *polm2.Profile
	switch {
	case *profilePath != "":
		var err error
		profile, err = polm2.LoadProfile(*profilePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-run: %v\n", err)
			return 1
		}
		plan = polm2.PlanPOLM2
	case *storeDir != "":
		store, err := polm2.OpenProfileStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-run: %v\n", err)
			return 1
		}
		if audit, err := store.Audit(); err == nil && audit.Corrupt > 0 {
			for _, e := range audit.Entries {
				if e.Err != "" {
					fmt.Fprintf(os.Stderr, "polm2-run: warning: skipping corrupt profile %s: %s\n", e.File, e.Err)
				}
			}
		}
		profile, err = store.Select(app.Name(), *workload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-run: %v\n", err)
			return 1
		}
		fmt.Printf("selected profile %s/%s from %s\n", profile.App, profile.Workload, *storeDir)
		plan = polm2.PlanPOLM2
	case *manual:
		var err error
		profile, err = app.ManualProfile(*workload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2-run: %v\n", err)
			return 1
		}
		plan = polm2.PlanManual
	}

	start := time.Now()
	res, err := polm2.RunApp(app, *workload, *collector, plan, profile, polm2.RunOptions{
		Duration: *duration,
		Warmup:   *warmup,
		Scale:    *scale,
		Seed:     *seed,
		Tracer:   tracer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "polm2-run: %v\n", err)
		return 1
	}
	if err := finishTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "polm2-run: writing trace: %v\n", err)
		return 1
	}

	fmt.Printf("ran %s/%s under %s (plan %s): %v simulated in %v wall-clock\n",
		app.Name(), *workload, *collector, plan,
		res.SimDuration.Round(time.Second), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  GC cycles: %d, warm pauses: %d\n", res.GCCycles, res.WarmPauses.Len())
	fmt.Printf("  pause percentiles (ms): p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f worst=%.1f\n",
		ms(res.WarmPauses.Percentile(50)), ms(res.WarmPauses.Percentile(90)),
		ms(res.WarmPauses.Percentile(99)), ms(res.WarmPauses.Percentile(99.9)),
		ms(res.WarmPauses.Max()))
	fmt.Printf("  warm operations: %d, max memory: %d MB", res.WarmOps, res.MaxMemoryBytes>>20)
	if res.PreReserved {
		fmt.Printf(" (pre-reserved)")
	}
	fmt.Println()
	if res.GenSwitches > 0 {
		fmt.Printf("  dynamic generation switches: %d\n", res.GenSwitches)
	}
	return 0
}

func runOnline(app polm2.App, workload string, opts polm2.OnlineOptions) int {
	start := time.Now()
	res, err := polm2.RunOnline(app, workload, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polm2-run: %v\n", err)
		return 1
	}
	fmt.Printf("ran %s/%s online under NG2C: %v simulated in %v wall-clock\n",
		app.Name(), workload, res.SimDuration.Round(time.Second), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  plan updates: %d\n", len(res.Updates))
	for _, u := range res.Updates {
		fmt.Printf("    at %-10v sites=%d gens=%d conflicts=%d\n",
			u.At.Round(time.Second), u.Instrumented, u.Generations, u.Conflicts)
	}
	for _, ev := range res.FleetEvents {
		if ev.Fallback {
			fmt.Printf("    at %-10v fleet daemon unreachable, installed last good plan\n", ev.At.Round(time.Second))
		} else {
			fmt.Printf("    at %-10v fleet sync failed, kept previous plan: %s\n", ev.At.Round(time.Second), ev.Err)
		}
	}
	fmt.Printf("  pause percentiles (ms): p50=%.1f p99=%.1f worst=%.1f\n",
		ms(res.WarmPauses.Percentile(50)), ms(res.WarmPauses.Percentile(99)), ms(res.WarmPauses.Max()))
	fmt.Printf("  warm operations: %d, max memory: %d MB\n", res.WarmOps, res.MaxMemoryBytes>>20)
	return 0
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
