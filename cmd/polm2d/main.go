// Command polm2d is the POLM2 plan-distribution daemon: it fronts an
// on-disk profile repository (internal/profilestore) and serves versioned
// instrumentation plans to a fleet of production instances, merging the
// profiling evidence they upload into one fleet-wide plan per
// (application, workload). See internal/planserver for the endpoints and
// wire format.
//
// Usage:
//
//	polm2d -addr 127.0.0.1:7468 -store ./profiles
//	polm2d -addr 127.0.0.1:0 -store ./profiles          # random port
//	polm2d -store ./profiles -faults 'seed=7;missing:*.profile.json'
//	polm2d -store ./profiles -trace trace.jsonl         # also log spans to disk
//	polm2d -store ./profiles -rollout                   # canary new plans before publishing
//
// The daemon prints its actual listen address on startup (useful with
// -addr ...:0) and shuts down cleanly on SIGINT/SIGTERM. The -faults flag
// interposes internal/faultio's deterministic fault plans on the store's
// staging writes — the same fault model the profiling pipeline is tested
// under — so operators and CI can rehearse disk trouble end to end.
//
// With -rollout, a newly merged plan is not published fleet-wide: a
// deterministic canary cohort tests it first, instances report plan health
// through POST /v1/feedback, and the daemon promotes or rolls back (and
// quarantines) the candidate from that evidence. -rollout-canary,
// -rollout-min-reports, -rollout-regression and -rollout-seed tune the
// decision rule; without -rollout the daemon's behaviour is unchanged.
//
// With -peer (repeatable), the daemon replicates: it stamps every accepted
// evidence document with a logical version, serves GET /v1/sync digests to
// its peers, and pulls each peer on the -sync-interval cadence, applying
// whichever document carries the higher stamp (DESIGN.md §15). -id names
// this replica in the stamps; it defaults to the resolved listen address.
// Replicas never push — a pair of daemons pointed at each other with
//
//	polm2d -addr :7468 -store a -id a -peer http://host-b:7468
//	polm2d -addr :7468 -store b -id b -peer http://host-a:7468
//
// converges both stores to the same evidence and, with -rollout, the same
// quarantine set. Without -peer nothing replicates and the daemon's wire
// surface is unchanged.
//
// Request handling is always traced into a bounded in-memory ring served
// at GET /tracez (newest window, JSONL); -trace additionally appends every
// record to a file. -trace-ring sizes the ring.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"polm2/internal/faultio"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
	"polm2/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon body, factored from main so the lifecycle test can
// drive a full start/serve/SIGTERM cycle in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("polm2d", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:7468", "TCP listen address (port 0 picks a free port)")
		storeDir  = fs.String("store", "profiles", "profile repository directory (created if missing)")
		faultSpec = fs.String("faults", "", "inject I/O faults into the store's writes (faultio spec, e.g. 'seed=7;missing:*.profile.json')")
		traceOut  = fs.String("trace", "", "append every trace record to this JSONL file (the in-memory /tracez ring is always on)")
		ringSize  = fs.Int("trace-ring", 0, "trace ring capacity in records (default 4096)")

		syncEvery = fs.Duration("sync-interval", 0, "anti-entropy pull cadence with -peer (default 30s)")
		selfID    = fs.String("id", "", "replication identity stamped into evidence with -peer (default: the listen address)")

		rolloutOn  = fs.Bool("rollout", false, "stage merged plans through a canary rollout instead of publishing fleet-wide")
		rolloutFra = fs.Float64("rollout-canary", 0, "canary cohort fraction of the fleet in (0, 1] (default 0.25)")
		rolloutMin = fs.Int("rollout-min-reports", 0, "feedback reports required on each side before deciding (default 3)")
		rolloutPct = fs.Float64("rollout-regression", 0, "canary p99 regression over baseline, in percent, that triggers rollback (default 10)")
		rolloutSd  = fs.Int64("rollout-seed", 0, "seed for the deterministic cohort assignment (default 1)")
	)
	var peers peerList
	fs.Var(&peers, "peer", "base URL of a replica to pull evidence from (repeatable); enables replication")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "polm2d: unexpected arguments %v\n", fs.Args())
		return 2
	}

	store, err := profilestore.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(stderr, "polm2d: %v\n", err)
		return 1
	}
	if *faultSpec != "" {
		plan, err := faultio.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(stderr, "polm2d: %v\n", err)
			return 2
		}
		store.SetFault(faultio.New(plan))
		fmt.Fprintf(stdout, "polm2d: injecting store faults: %s\n", plan)
	}

	// The ring is always on — /tracez answering is part of the daemon's
	// contract — while the file sink is opt-in.
	topts := trace.Options{Ring: trace.NewRing(*ringSize)}
	var flushTrace func() error
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "polm2d: creating trace file: %v\n", err)
			return 1
		}
		bw := bufio.NewWriter(f)
		topts.Writer = bw
		flushTrace = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}
	tracer := trace.New(topts)

	// Flag validation precedes the listen: a daemon that exits 2 on a bad
	// combination must not have bound (and leaked) the port first.
	popts := planserver.Options{Tracer: tracer}
	if *rolloutOn {
		cfg := rollout.Config{
			CanaryFraction: *rolloutFra,
			MinReports:     *rolloutMin,
			RegressionPct:  *rolloutPct,
			Seed:           *rolloutSd,
		}
		cfg = cfg.Normalize()
		popts.Rollout = &cfg
		fmt.Fprintf(stdout, "polm2d: canary rollout on (cohort %.0f%%, min %d reports/side, rollback over +%.0f%% p99, seed %d)\n",
			cfg.CanaryFraction*100, cfg.MinReports, cfg.RegressionPct, cfg.Seed)
	} else if *rolloutFra != 0 || *rolloutMin != 0 || *rolloutPct != 0 || *rolloutSd != 0 {
		fmt.Fprintln(stderr, "polm2d: -rollout-* flags require -rollout")
		return 2
	}
	if len(peers) > 0 {
		if *syncEvery < 0 {
			fmt.Fprintln(stderr, "polm2d: -sync-interval must be positive")
			return 2
		}
		if *syncEvery == 0 {
			*syncEvery = 30 * time.Second
		}
		popts.Peers = peers
	} else if *syncEvery != 0 || *selfID != "" {
		fmt.Fprintln(stderr, "polm2d: -sync-interval and -id require -peer")
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "polm2d: %v\n", err)
		return 1
	}
	if len(peers) > 0 {
		popts.SelfID = *selfID
		if popts.SelfID == "" {
			popts.SelfID = ln.Addr().String()
		}
		fmt.Fprintf(stdout, "polm2d: replicating with %d peer(s) as %s (sync every %s)\n",
			len(peers), popts.SelfID, *syncEvery)
	}
	ps := planserver.New(store, popts)
	srv := &http.Server{Handler: ps}
	fmt.Fprintf(stdout, "polm2d: serving on http://%s (store %s)\n", ln.Addr(), store.Dir())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if len(peers) > 0 {
		// The anti-entropy poller: one pull pass per tick, forever. A
		// failed pull is counted and retried next tick — replication is
		// eventually consistent by construction, so staleness is the only
		// cost of a missed pass.
		ticker := time.NewTicker(*syncEvery)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					ps.SyncPeers()
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "polm2d: %v\n", err)
			return 1
		}
	case <-ctx.Done():
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(stderr, "polm2d: shutdown: %v\n", err)
			return 1
		}
		// Merges coalesce asynchronously behind uploads; drain them so the
		// store's plan files cover every upload the fleet got a 200 for.
		ps.Flush()
	}
	if flushTrace != nil {
		if err := flushTrace(); err != nil {
			fmt.Fprintf(stderr, "polm2d: writing trace: %v\n", err)
			return 1
		}
	}
	fmt.Fprintln(stdout, "polm2d: shutdown complete")
	return 0
}

// peerList collects repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	if v == "" {
		return errors.New("empty peer URL")
	}
	*p = append(*p, v)
	return nil
}
