// Command polm2d is the POLM2 plan-distribution daemon: it fronts an
// on-disk profile repository (internal/profilestore) and serves versioned
// instrumentation plans to a fleet of production instances, merging the
// profiling evidence they upload into one fleet-wide plan per
// (application, workload). See internal/planserver for the endpoints and
// wire format.
//
// Usage:
//
//	polm2d -addr 127.0.0.1:7468 -store ./profiles
//	polm2d -addr 127.0.0.1:0 -store ./profiles          # random port
//	polm2d -store ./profiles -faults 'seed=7;missing:*.profile.json'
//
// The daemon prints its actual listen address on startup (useful with
// -addr ...:0) and shuts down cleanly on SIGINT/SIGTERM. The -faults flag
// interposes internal/faultio's deterministic fault plans on the store's
// staging writes — the same fault model the profiling pipeline is tested
// under — so operators and CI can rehearse disk trouble end to end.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polm2/internal/faultio"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:7468", "TCP listen address (port 0 picks a free port)")
		storeDir  = flag.String("store", "profiles", "profile repository directory (created if missing)")
		faultSpec = flag.String("faults", "", "inject I/O faults into the store's writes (faultio spec, e.g. 'seed=7;missing:*.profile.json')")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "polm2d: unexpected arguments %v\n", flag.Args())
		return 2
	}

	store, err := profilestore.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polm2d: %v\n", err)
		return 1
	}
	if *faultSpec != "" {
		plan, err := faultio.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polm2d: %v\n", err)
			return 2
		}
		store.SetFault(faultio.New(plan))
		fmt.Printf("polm2d: injecting store faults: %s\n", plan)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polm2d: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: planserver.New(store, planserver.Options{})}
	fmt.Printf("polm2d: serving on http://%s (store %s)\n", ln.Addr(), store.Dir())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "polm2d: %v\n", err)
			return 1
		}
	case <-ctx.Done():
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "polm2d: shutdown: %v\n", err)
			return 1
		}
	}
	fmt.Println("polm2d: shutdown complete")
	return 0
}
