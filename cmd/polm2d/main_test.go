package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a Writer the daemon goroutine and the test can share.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb syncBuffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("run with unknown flag = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "flag provided but not defined") {
		t.Errorf("stderr missing flag error:\n%s", errb.String())
	}

	errb = syncBuffer{}
	if code := run([]string{"stray"}, &out, &errb); code != 2 {
		t.Fatalf("run with positional arg = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unexpected arguments") {
		t.Errorf("stderr missing positional-arg error:\n%s", errb.String())
	}

	errb = syncBuffer{}
	if code := run([]string{"-store", t.TempDir(), "-faults", "not-a-spec::"}, &out, &errb); code != 2 {
		t.Fatalf("run with bad fault spec = %d, want 2", code)
	}

	errb = syncBuffer{}
	if code := run([]string{"-store", t.TempDir(), "-rollout-canary", "0.5"}, &out, &errb); code != 2 {
		t.Fatalf("run with -rollout-canary but no -rollout = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "require -rollout") {
		t.Errorf("stderr missing rollout flag error:\n%s", errb.String())
	}

	errb = syncBuffer{}
	if code := run([]string{"-store", t.TempDir(), "-sync-interval", "5s"}, &out, &errb); code != 2 {
		t.Fatalf("run with -sync-interval but no -peer = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "require -peer") {
		t.Errorf("stderr missing peer flag error:\n%s", errb.String())
	}

	errb = syncBuffer{}
	if code := run([]string{"-store", t.TempDir(), "-id", "a"}, &out, &errb); code != 2 {
		t.Fatalf("run with -id but no -peer = %d, want 2", code)
	}

	errb = syncBuffer{}
	if code := run([]string{"-store", t.TempDir(), "-peer", ""}, &out, &errb); code != 2 {
		t.Fatalf("run with an empty -peer URL = %d, want 2", code)
	}
}

// TestReplicatedPairLifecycle boots two daemons over real TCP with B
// pulling A by anti-entropy: evidence uploaded to A must surface as a
// merged, identically-versioned plan on B without B ever hearing from
// the uploader, and one SIGTERM must shut the pair down cleanly.
func TestReplicatedPairLifecycle(t *testing.T) {
	dir := t.TempDir()
	var outA, errA, outB, errB syncBuffer

	doneA := make(chan int, 1)
	go func() {
		doneA <- run([]string{
			"-addr", "127.0.0.1:0",
			"-store", filepath.Join(dir, "a"),
		}, &outA, &errA)
	}()
	baseA := awaitAddr(t, &outA, &errA)

	doneB := make(chan int, 1)
	go func() {
		doneB <- run([]string{
			"-addr", "127.0.0.1:0",
			"-store", filepath.Join(dir, "b"),
			"-id", "replica-b",
			"-peer", baseA,
			"-sync-interval", "50ms",
		}, &outB, &errB)
	}()
	baseB := awaitAddr(t, &outB, &errB)
	if !strings.Contains(outB.String(), "replicating with 1 peer(s) as replica-b") {
		t.Fatalf("daemon B did not announce replication:\n%s", outB.String())
	}

	evidence := `{"app":"Cassandra","workload":"WI","generations":0,"allocs":[],"calls":[],"conflicts":0,
		"sites":[{"trace":"S.serve:1;Memtable.put:10","allocated":100,"buckets":[10,90],"gen":0}]}`
	req, err := http.NewRequest(http.MethodPost, baseA+"/v1/evidence", strings.NewReader(evidence))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Polm2-Instance", "pair-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("uploading evidence to A: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evidence upload to A = %d, want 200", resp.StatusCode)
	}

	// B has never seen the uploader; only anti-entropy can carry the
	// document over. Poll until B serves the merged plan.
	var etagA, etagB string
	deadline := time.Now().Add(10 * time.Second)
	for etagB == "" {
		if time.Now().After(deadline) {
			t.Fatalf("B never published the replicated plan; B stdout:\n%s", outB.String())
		}
		resp, err := http.Get(baseB + "/v1/plan?app=Cassandra&workload=WI")
		if err != nil {
			t.Fatalf("GET plan from B: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			etagB = resp.Header.Get("ETag")
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}
	resp, err = http.Get(baseA + "/v1/plan?app=Cassandra&workload=WI")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etagA = resp.Header.Get("ETag")
	if etagA == "" || etagA != etagB {
		t.Fatalf("plan versions diverge: A=%q B=%q", etagA, etagB)
	}
	resp, err = http.Get(baseB + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "peer_sync_total") {
		t.Errorf("B's /metricsz is missing the peer sync counters:\n%s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan int{"A": doneA, "B": doneB} {
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("daemon %s exited %d after SIGTERM", name, code)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("daemon %s did not exit after SIGTERM", name)
		}
	}
}

// awaitAddr waits for a daemon goroutine to print its resolved listen
// address and returns the base URL.
func awaitAddr(t *testing.T, out, errb *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "serving on http://") {
			rest := s[strings.Index(s, "http://"):]
			return strings.Fields(rest)[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout:\n%s\nstderr:\n%s", out.String(), errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonLifecycle boots the daemon on a random port, confirms it
// serves requests and exposes the trace ring, then delivers SIGTERM and
// checks for a clean, trace-flushing shutdown.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.jsonl")
	var out, errb syncBuffer

	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-store", filepath.Join(dir, "store"),
			"-trace", traceFile,
			"-trace-ring", "64",
		}, &out, &errb)
	}()

	// The daemon prints its resolved listen address once the socket is up.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout:\n%s\nstderr:\n%s", out.String(), errb.String())
		}
		if s := out.String(); strings.Contains(s, "serving on http://") {
			rest := s[strings.Index(s, "http://"):]
			base = strings.Fields(rest)[0]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp, string(body)
	}

	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", resp.StatusCode)
	}
	// A plan fetch for an unknown key: a traced request that both feeds the
	// ring and lands in the trace file.
	if resp, _ := get("/v1/plan?app=nosuch&workload=w"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/plan for unknown key = %d, want 404", resp.StatusCode)
	}
	resp, body := get("/tracez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /tracez = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, `"comp":"planserver"`) {
		t.Errorf("/tracez carries no planserver records:\n%s", body)
	}
	if resp, body := get("/metricsz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "trace_ring_records") {
		t.Errorf("GET /metricsz = %d, body missing trace_ring_records:\n%s", resp.StatusCode, body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exited %d after SIGTERM; stderr:\n%s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stdout:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shutdown complete") {
		t.Errorf("stdout missing shutdown message:\n%s", out.String())
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("trace file is empty after a traced request and clean shutdown")
	}
	for i, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		if !strings.HasPrefix(line, `{"seq":`) {
			t.Fatalf("trace line %d is not a record: %s", i, line)
		}
	}
}
