package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"polm2/internal/recorder"
	"polm2/internal/snapshot"
)

// verifyArtifacts checks the integrity of a POLM2 artifact directory: a
// records directory (sites.tsv + site-*.bin), a snapshot image directory
// (snap-*.img), or a parent holding records/ and snaps/ subdirectories.
// Every artifact is decoded with the salvage readers, so damage is
// reported, never fatal. Returns whether everything was intact.
func verifyArtifacts(w io.Writer, dir string) (bool, error) {
	recDir, snapDir, err := locateArtifacts(dir)
	if err != nil {
		return false, err
	}
	if recDir == "" && snapDir == "" {
		return false, fmt.Errorf("no POLM2 artifacts under %s (want sites.tsv, site-*.bin or snap-*.img)", dir)
	}
	clean := true
	if recDir != "" {
		ok, err := verifyRecords(w, recDir)
		if err != nil {
			return false, err
		}
		clean = clean && ok
	}
	if snapDir != "" {
		ok, err := verifySnapshots(w, snapDir)
		if err != nil {
			return false, err
		}
		clean = clean && ok
	}
	if clean {
		fmt.Fprintln(w, "verdict: all artifacts intact")
	} else {
		fmt.Fprintln(w, "verdict: damage found (salvage analysis still possible)")
	}
	return clean, nil
}

// locateArtifacts resolves the records and snapshot directories under dir.
func locateArtifacts(dir string) (recDir, snapDir string, err error) {
	if _, err := os.Stat(dir); err != nil {
		return "", "", err
	}
	for _, cand := range []string{dir, filepath.Join(dir, "records")} {
		if _, err := os.Stat(filepath.Join(cand, recorder.SiteTableFile)); err == nil {
			recDir = cand
			break
		}
		if sites, _ := recorder.Streams(cand); len(sites) > 0 {
			recDir = cand
			break
		}
	}
	for _, cand := range []string{dir, filepath.Join(dir, "snaps"), filepath.Join(dir, "snapshots")} {
		if imgs, _ := filepath.Glob(filepath.Join(cand, "snap-*.img")); len(imgs) > 0 {
			snapDir = cand
			break
		}
	}
	return recDir, snapDir, nil
}

func verifyRecords(w io.Writer, dir string) (bool, error) {
	clean := true
	if _, err := os.Stat(filepath.Join(dir, recorder.SiteTableFile)); err == nil {
		_, tsal, err := recorder.SalvageSiteTable(dir)
		if err != nil {
			return false, err
		}
		if tsal.Complete {
			fmt.Fprintf(w, "site table: v%d complete, %d sites\n", tsal.Version, tsal.Sites)
		} else {
			clean = false
			fmt.Fprintf(w, "site table: v%d DAMAGED, %d sites recovered (%s)\n", tsal.Version, tsal.Sites, tsal.Reason)
		}
	} else {
		clean = false
		fmt.Fprintln(w, "site table: MISSING")
	}

	sites, err := recorder.Streams(dir)
	if err != nil {
		return false, err
	}
	committed, live, damaged := 0, 0, 0
	for _, site := range sites {
		ids, sal, err := recorder.SalvageIDs(dir, site)
		if err != nil {
			damaged++
			fmt.Fprintf(w, "stream site-%06d.bin: UNREADABLE (%v)\n", site, err)
			continue
		}
		switch {
		case sal.LostBytes > 0:
			damaged++
			fmt.Fprintf(w, "stream site-%06d.bin: v%d DAMAGED, %d ids salvaged, %d of %d bytes lost (%s)\n",
				site, sal.Version, len(ids), sal.LostBytes, sal.TotalBytes, sal.Reason)
		case sal.Complete:
			committed++
		default:
			live++
		}
	}
	if damaged > 0 {
		clean = false
	}
	fmt.Fprintf(w, "streams: %d committed, %d live (no trailer), %d damaged\n", committed, live, damaged)
	return clean, nil
}

func verifySnapshots(w io.Writer, dir string) (bool, error) {
	snaps, sal, err := snapshot.ReadDirSalvage(dir)
	if err != nil {
		return false, err
	}
	for _, name := range sal.Dropped {
		fmt.Fprintf(w, "image %s: DROPPED\n", name)
	}
	fmt.Fprintf(w, "snapshots: %d/%d usable\n", sal.Usable, sal.Total)
	if len(snaps) > 0 {
		// The usable chain must replay; a replay failure is real damage
		// the per-image checks cannot see.
		store := snapshot.NewStore()
		for _, s := range snaps {
			if err := store.Apply(s); err != nil {
				fmt.Fprintf(w, "replay: FAILED at seq %d: %v\n", s.Seq, err)
				return false, nil
			}
		}
		fmt.Fprintf(w, "replay: ok, %d live objects after seq %d\n",
			len(store.LiveIDs()), snaps[len(snaps)-1].Seq)
	}
	return sal.Clean(), nil
}
