package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"polm2/internal/gc"
	"polm2/internal/trace"
)

// writeSyntheticTrace emits a small but representative trace — a run span,
// GC cycles with their phase breakdowns, online rounds, fleet client
// attempts — through the real tracer, so the golden covers the whole
// emit-encode-decode-summarize loop.
func writeSyntheticTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{Writer: f})

	model := gc.CostModel{
		Base:            500 * time.Microsecond,
		PerRegion:       50 * time.Microsecond,
		PerRemsetEntry:  100 * time.Nanosecond,
		PerCopiedByte:   2 * time.Nanosecond,
		PerCopiedObject: 300 * time.Nanosecond,
	}
	for cycle := uint64(1); cycle <= 3; cycle++ {
		gc.TraceCycle(tr, model, gc.Pause{
			Start:            time.Duration(cycle) * 10 * time.Second,
			Duration:         time.Duration(cycle) * 6 * time.Millisecond,
			Kind:             gc.PauseYoung,
			Cycle:            cycle,
			BytesCopied:      cycle << 20,
			ObjectsCopied:    int(cycle) * 400,
			RegionsCollected: 64,
			RegionsFreed:     60,
		})
	}

	tr.EventAt(2*time.Minute, "online", "reprofile",
		trace.Uint64("cycle", 9), trace.Int64("round", 1))
	tr.EventAt(2*time.Minute+80*time.Millisecond, "fleetclient", "attempt",
		trace.String("op", "upload"), trace.Uint64("seq", 1),
		trace.Int64("attempt", 1), trace.String("outcome", "ok"))
	tr.EventAt(2*time.Minute+80*time.Millisecond, "fleetclient", "upload_result",
		trace.String("outcome", "merged"))
	tr.EventAt(2*time.Minute+90*time.Millisecond, "online", "plan_swap",
		trace.Int64("update", 1), trace.Int64("instrumented", 4),
		trace.Int64("generations", 2), trace.Int64("conflicts", 0))
	tr.EventAt(130*time.Millisecond, "planserver", "evidence_upload",
		trace.String("app", "churn"), trace.String("workload", "w"),
		trace.String("instance", "i-1"), trace.String("outcome", "merged"),
		trace.Dur("latency", 350*time.Microsecond))
	tr.EventAt(2*time.Minute+95*time.Millisecond, "rollout", "canary_start",
		trace.String("app", "churn"), trace.String("workload", "w"),
		trace.String("etag", "3f2a9c11d4e5"), trace.String("stable", "9b8c7d6e5f40"),
		trace.String("from", "stable"), trace.String("to", "canary"),
		trace.Int64("cohort", 2))
	tr.EventAt(4*time.Minute, "rollout", "rollback",
		trace.String("app", "churn"), trace.String("workload", "w"),
		trace.String("etag", "3f2a9c11d4e5"), trace.String("stable", "9b8c7d6e5f40"),
		trace.String("from", "canary"), trace.String("to", "rolled_back"),
		trace.Dur("canary_p99", 40*time.Millisecond),
		trace.Dur("baseline_p99", 15*time.Millisecond),
		trace.Int64("canary_n", 4), trace.Int64("baseline_n", 6))
	tr.Span("online", "run", 0, 16*time.Minute,
		trace.String("app", "churn"), trace.String("workload", "w"),
		trace.Int64("updates", 1), trace.Int64("salvages", 0),
		trace.Int64("fleet_events", 0), trace.Uint64("gc_cycles", 3))

	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceGolden pins polm2-inspect trace's summary of a synthetic
// deterministic trace: component totals, the per-phase GC pause breakdown
// (phases must sum to the cycles' pauses), and the coordination timeline.
func TestTraceGolden(t *testing.T) {
	path := writeSyntheticTrace(t)
	var buf bytes.Buffer
	if err := showTrace(&buf, path); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace-summary.golden", buf.Bytes())
}

// TestTraceEmpty keeps the subcommand graceful on an empty file.
func TestTraceEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := showTrace(&buf, path); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "empty trace\n" {
		t.Fatalf("empty trace output = %q", got)
	}
}
