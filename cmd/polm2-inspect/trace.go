package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"polm2/internal/trace"
)

// showTrace summarizes a JSONL trace file (internal/trace): record totals
// per component, the GC pause breakdown by cost-model phase, and the
// online/fleet round timeline. The output is deterministic for a
// deterministic trace, so it goldens the whole emit-encode-decode loop.
func showTrace(w io.Writer, path string) error {
	recs, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Fprintln(w, "empty trace")
		return nil
	}

	var events, spans int
	perComp := make(map[string]int)
	var comps []string
	for _, r := range recs {
		if r.Kind == trace.KindSpan {
			spans++
		} else {
			events++
		}
		if perComp[r.Comp] == 0 {
			comps = append(comps, r.Comp)
		}
		perComp[r.Comp]++
	}
	sort.Strings(comps)
	fmt.Fprintf(w, "trace: %d records (%d spans, %d events)\n", len(recs), spans, events)
	for _, c := range comps {
		fmt.Fprintf(w, "  %-12s %d\n", c, perComp[c])
	}

	showGCBreakdown(w, recs)
	showTimeline(w, recs)
	showRolloutTimeline(w, recs)
	return nil
}

// showGCBreakdown totals the per-phase pause spans internal/gc emits. The
// phases of one cycle sum exactly to the cycle's pause, so the shares
// answer "where do the stop-the-world milliseconds go" for the whole run.
func showGCBreakdown(w io.Writer, recs []trace.Record) {
	var cycles int
	var totalPause time.Duration
	phaseTotal := make(map[string]time.Duration)
	var phases []string
	for _, r := range recs {
		if r.Comp != "gc" || r.Kind != trace.KindSpan {
			continue
		}
		switch r.Name {
		case "cycle":
			cycles++
			totalPause += r.Duration()
		case "phase":
			name := r.Str("phase")
			if _, ok := phaseTotal[name]; !ok {
				phases = append(phases, name) // first-emission order: safepoint..scan
			}
			phaseTotal[name] += r.Duration()
		}
	}
	if cycles == 0 {
		return
	}
	fmt.Fprintf(w, "gc pauses: %d cycles, total pause %v (mean %v)\n",
		cycles, totalPause.Round(time.Microsecond),
		(totalPause / time.Duration(cycles)).Round(time.Microsecond))
	fmt.Fprintf(w, "  %-10s %-14s %s\n", "phase", "total", "share")
	for _, name := range phases {
		d := phaseTotal[name]
		share := 0.0
		if totalPause > 0 {
			share = 100 * float64(d) / float64(totalPause)
		}
		fmt.Fprintf(w, "  %-10s %-14v %.1f%%\n", name, d.Round(time.Microsecond), share)
	}
}

// showTimeline prints the coordination-plane records — online re-profile
// rounds, fleet client attempts, daemon request handling — in file order
// (each tracer's records are seq-ordered; bench traces group by unit).
func showTimeline(w io.Writer, recs []trace.Record) {
	headed := false
	for _, r := range recs {
		switch r.Comp {
		case "online", "fleetclient", "planserver":
		default:
			continue
		}
		if !headed {
			fmt.Fprintln(w, "online/fleet timeline:")
			headed = true
		}
		fmt.Fprintf(w, "  [%v] %s %s%s\n", r.Time().Round(time.Millisecond), r.Comp, r.Name, fmtAttrs(r))
	}
}

// showRolloutTimeline prints the canary controller's state-machine moves
// (comp "rollout": adopt, canary_start, promote, publish, quarantine,
// rollback) as their own section — the fleet-level story of which plan
// versions were staged, promoted, or rolled back, and why.
func showRolloutTimeline(w io.Writer, recs []trace.Record) {
	headed := false
	for _, r := range recs {
		if r.Comp != "rollout" {
			continue
		}
		if !headed {
			fmt.Fprintln(w, "rollout transitions:")
			headed = true
		}
		rest := r
		rest.Att = make(map[string]any, len(r.Att))
		for k, v := range r.Att {
			switch k {
			case "app", "workload", "from", "to":
			default:
				rest.Att[k] = v
			}
		}
		fmt.Fprintf(w, "  [%v] %s/%s %s %s -> %s%s\n",
			r.Time().Round(time.Millisecond), r.Str("app"), r.Str("workload"),
			r.Name, r.Str("from"), r.Str("to"), fmtAttrs(rest))
	}
}

// fmtAttrs renders a record's attributes as sorted key=value pairs.
// Integer-valued JSON numbers print as integers; durations stay raw
// nanosecond counts, exactly as encoded.
func fmtAttrs(r trace.Record) string {
	if len(r.Att) == 0 {
		return ""
	}
	keys := make([]string, 0, len(r.Att))
	for k := range r.Att {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += " " + k + "=" + fmtAttrValue(r.Att[k])
	}
	return out
}

func fmtAttrValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		if x == float64(int64(x)) {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(x)
	}
}
