package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"polm2/internal/analyzer"
	"polm2/internal/profilestore"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// artifacts points at the checked-in profiling artifacts: v1 recorded
// before the framed formats existed, v2 by the identical run after them.
const artifacts = "../../testdata/artifacts"

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run with -update to accept):\n--- want\n%s--- got\n%s", name, want, got)
	}
}

// TestVerifyGolden pins polm2-inspect verify's output on both checked-in
// artifact generations: both must be reported fully intact, and the v1
// artifacts must keep decoding forever.
func TestVerifyGolden(t *testing.T) {
	for _, version := range []string{"v1", "v2"} {
		t.Run(version, func(t *testing.T) {
			var buf bytes.Buffer
			clean, err := verifyArtifacts(&buf, filepath.Join(artifacts, version))
			if err != nil {
				t.Fatal(err)
			}
			if !clean {
				t.Fatalf("pristine %s artifacts reported damaged:\n%s", version, buf.String())
			}
			checkGolden(t, "verify-"+version+".golden", buf.Bytes())
		})
	}
}

// TestSnapshotsGolden pins the snapshot listing — and, because the v2
// images were produced by re-running the v1 configuration after the
// format bump, both listings must be identical.
func TestSnapshotsGolden(t *testing.T) {
	outputs := make(map[string][]byte)
	for _, version := range []string{"v1", "v2"} {
		var buf bytes.Buffer
		if err := showSnapshots(&buf, filepath.Join(artifacts, version, "snaps")); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "snapshots-"+version+".golden", buf.Bytes())
		outputs[version] = buf.Bytes()
	}
	if !bytes.Equal(outputs["v1"], outputs["v2"]) {
		t.Fatal("v1 and v2 snapshot listings differ: the format bump changed decoded content")
	}
}

// TestProfilesGolden pins the repository listing. The store is rebuilt in
// a temporary directory from fixed profiles on every run, so the listing
// exercises the full store write/read path and must still come out
// byte-identical.
func TestProfilesGolden(t *testing.T) {
	dir := t.TempDir()
	store, err := profilestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*analyzer.Profile{
		{
			App: "Cassandra", Workload: "WI", Generations: 2, Conflicts: 1,
			Allocs: []analyzer.AllocDirective{
				{Loc: "Memtable.put:10", Gen: 2, Direct: true},
				{Loc: "Cell.make:4", Gen: 1, Direct: true},
			},
			Sites: []analyzer.SiteStat{
				{Trace: "S.serve:1;Memtable.put:10", Allocated: 9000, Buckets: []uint64{1000, 3000, 5000}, Gen: 2},
				{Trace: "S.serve:1;Cell.make:4", Allocated: 4000, Buckets: []uint64{1500, 2500}, Gen: 1, Tainted: 250},
			},
		},
		{
			App: "Lucene", Workload: "default", Generations: 1,
			Allocs: []analyzer.AllocDirective{{Loc: "Index.add:7", Gen: 1, Direct: true}},
			Sites: []analyzer.SiteStat{
				{Trace: "Main.run:1;Index.add:7", Allocated: 500, Buckets: []uint64{100, 400}, Gen: 1},
			},
		},
	} {
		if err := store.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := showProfiles(&buf, dir); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "profiles.golden", buf.Bytes())
}

// TestRolloutGolden pins the rollout state view. The store is rebuilt from
// fixed controller documents on every run, so the listing exercises the
// real PutRollout/Rollout round trip; the key without a document proves
// rollout-off keys are skipped, not misreported.
func TestRolloutGolden(t *testing.T) {
	dir := t.TempDir()
	store, err := profilestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*analyzer.Profile{
		{App: "Cassandra", Workload: "WI", Generations: 2,
			Allocs: []analyzer.AllocDirective{{Loc: "Memtable.put:10", Gen: 2, Direct: true}}},
		{App: "Cassandra", Workload: "RO", Generations: 1,
			Allocs: []analyzer.AllocDirective{{Loc: "Cache.get:3", Gen: 1, Direct: true}}},
		{App: "Lucene", Workload: "default", Generations: 1,
			Allocs: []analyzer.AllocDirective{{Loc: "Index.add:7", Gen: 1, Direct: true}}},
	} {
		if err := store.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	docs := map[[2]string]string{
		{"Cassandra", "WI"}: `{"snapshot":{"state":"canary",
			"stable_etag":"\"9b8c7d6e5f40112233445566\"",
			"candidate_etag":"\"3f2a9c11d4e5aabbccddeeff\"",
			"canaries":3,"promotions":2,"rollbacks":0}}`,
		{"Lucene", "default"}: `{"snapshot":{"state":"rolled_back",
			"stable_etag":"\"0011223344556677deadbeef\"",
			"quarantined":["\"feedfacecafe001122334455\""],
			"canaries":2,"promotions":1,"rollbacks":1}}`,
	}
	for k, doc := range docs {
		if err := store.PutRollout(k[0], k[1], []byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := showRollout(&buf, dir); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "rollout.golden", buf.Bytes())
}

// TestSyncGolden pins the replication view. The store is rebuilt from
// fixed stamped (and one deliberately unstamped) evidence documents on
// every run, so the listing exercises the PutEvidenceStamped/EvidenceAll
// round trip — stamps surviving the disk format is exactly what the
// subcommand exists to show.
func TestSyncGolden(t *testing.T) {
	dir := t.TempDir()
	store, err := profilestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	site := func(trace string, n uint64) analyzer.SiteStat {
		return analyzer.SiteStat{Trace: trace, Allocated: n, Buckets: []uint64{n}, Gen: 1}
	}
	puts := []struct {
		instance string
		stamp    profilestore.Stamp
		profile  *analyzer.Profile
	}{
		{"inst-1", profilestore.Stamp{Seq: 3, Origin: "daemon-a"},
			&analyzer.Profile{App: "Cassandra", Workload: "WI", Generations: 2,
				Sites: []analyzer.SiteStat{site("S.serve:1;Memtable.put:10", 9000), site("S.serve:1;Cell.make:4", 4000)}}},
		{"inst-2", profilestore.Stamp{Seq: 5, Origin: "daemon-b"},
			&analyzer.Profile{App: "Cassandra", Workload: "WI", Generations: 2,
				Sites: []analyzer.SiteStat{site("S.serve:1;Memtable.put:10", 500)}}},
		{"inst-legacy", profilestore.Stamp{},
			&analyzer.Profile{App: "Lucene", Workload: "default", Generations: 1,
				Sites: []analyzer.SiteStat{site("Main.run:1;Index.add:7", 500)}}},
	}
	for _, p := range puts {
		if err := store.PutEvidenceStamped(p.instance, p.stamp, p.profile); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := showSync(&buf, dir); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sync.golden", buf.Bytes())
}

// TestSyncEmptyStore keeps the subcommand graceful on a store no fleet
// has uploaded to.
func TestSyncEmptyStore(t *testing.T) {
	dir := t.TempDir()
	if _, err := profilestore.Open(dir); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := showSync(&buf, dir); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("no evidence documents found")) {
		t.Fatalf("empty-store output = %q", buf.String())
	}
}

// TestRolloutEmptyStore keeps the subcommand graceful on a store the
// controller never touched.
func TestRolloutEmptyStore(t *testing.T) {
	dir := t.TempDir()
	if _, err := profilestore.Open(dir); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := showRollout(&buf, dir); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("no rollout state found")) {
		t.Fatalf("empty-store output = %q", buf.String())
	}
}

// TestVerifyReportsDamage corrupts a copy of the v2 artifacts and checks
// verify flags it without failing hard.
func TestVerifyReportsDamage(t *testing.T) {
	dir := t.TempDir()
	for _, sub := range []string{"records", "snaps"} {
		src := filepath.Join(artifacts, "v2", sub)
		dst := filepath.Join(dir, sub)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(src, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	streams, err := filepath.Glob(filepath.Join(dir, "records", "site-*.bin"))
	if err != nil || len(streams) == 0 {
		t.Fatalf("no streams copied: %v", err)
	}
	info, err := os.Stat(streams[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(streams[0], info.Size()/2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	clean, err := verifyArtifacts(&buf, dir)
	if err != nil {
		t.Fatal(err)
	}
	if clean {
		t.Fatalf("truncated stream went unreported:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"DAMAGED", "damage found"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("verify output missing %q:\n%s", want, out)
		}
	}
}
