// Command polm2-inspect examines POLM2 artifacts: allocation profiles
// (summary, STTree rendering, diffs) and snapshot image directories.
//
// Usage:
//
//	polm2-inspect profile wi.json            # summary + directives
//	polm2-inspect tree wi.json               # STTree, the paper's Figure 2
//	polm2-inspect dot wi.json > tree.dot     # Graphviz rendering
//	polm2-inspect diff old.json new.json     # directive-level diff
//	polm2-inspect snapshots ./images         # decode a snapshot image dir
//	polm2-inspect profiles ./profiles        # list a profile repository
//	polm2-inspect rollout ./profiles         # canary rollout state per key
//	polm2-inspect sync ./profiles            # replication stamps per evidence doc
//	polm2-inspect trace trace.jsonl          # summarize a trace file
//	polm2-inspect verify ./artifacts         # integrity-check artifact dirs
//	polm2-inspect --verify ./artifacts       # same, flag spelling
//
// verify exits 0 when every artifact is intact and 1 when damage was found
// (the salvage readers report what survives either way).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
	"polm2/internal/snapshot"
)

func main() {
	os.Exit(run())
}

func usage() int {
	fmt.Fprintln(os.Stderr, "usage: polm2-inspect <profile|tree|dot|diff|snapshots|profiles|rollout|sync|trace|verify> <args...>")
	return 2
}

func run() int {
	verifyFlag := flag.Bool("verify", false, "integrity-check the artifact directory argument (same as the verify subcommand)")
	flag.Parse()
	args := flag.Args()
	if *verifyFlag {
		args = append([]string{"verify"}, args...)
	}
	if len(args) < 2 {
		return usage()
	}
	var err error
	switch args[0] {
	case "profile":
		err = showProfile(args[1])
	case "tree":
		err = renderTree(args[1], false)
	case "dot":
		err = renderTree(args[1], true)
	case "diff":
		if len(args) < 3 {
			return usage()
		}
		err = diffProfiles(args[1], args[2])
	case "snapshots":
		err = showSnapshots(os.Stdout, args[1])
	case "profiles":
		err = showProfiles(os.Stdout, args[1])
	case "rollout":
		err = showRollout(os.Stdout, args[1])
	case "sync":
		err = showSync(os.Stdout, args[1])
	case "trace":
		err = showTrace(os.Stdout, args[1])
	case "verify":
		var clean bool
		clean, err = verifyArtifacts(os.Stdout, args[1])
		if err == nil && !clean {
			return 1
		}
	default:
		return usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "polm2-inspect: %v\n", err)
		return 1
	}
	return 0
}

func showProfile(path string) error {
	p, err := analyzer.LoadProfile(path)
	if err != nil {
		return err
	}
	fmt.Printf("profile %s/%s\n", p.App, p.Workload)
	fmt.Printf("  generations: %d (+young), instrumented sites: %d, conflicts: %d (unresolved %d)\n",
		p.Generations, p.InstrumentedSites(), p.Conflicts, p.Unresolved)
	fmt.Println("  call directives:")
	for _, c := range p.Calls {
		fmt.Printf("    setGeneration(%d) around %s\n", c.Gen, c.Loc)
	}
	fmt.Println("  alloc directives:")
	for _, a := range p.Allocs {
		if a.Direct {
			fmt.Printf("    @Gen(direct -> %d) at %s\n", a.Gen, a.Loc)
		} else {
			fmt.Printf("    @Gen at %s\n", a.Loc)
		}
	}
	if len(p.Sites) > 0 {
		fmt.Println("  site evidence:")
		for _, s := range p.Sites {
			fmt.Printf("    gen=%-3d n=%-9d %s\n", s.Gen, s.Allocated, s.Trace)
		}
	}
	return nil
}

func renderTree(path string, dot bool) error {
	p, err := analyzer.LoadProfile(path)
	if err != nil {
		return err
	}
	if dot {
		return analyzer.RenderDOT(p, os.Stdout)
	}
	return analyzer.RenderSTTree(p, os.Stdout)
}

func diffProfiles(oldPath, newPath string) error {
	oldP, err := analyzer.LoadProfile(oldPath)
	if err != nil {
		return err
	}
	newP, err := analyzer.LoadProfile(newPath)
	if err != nil {
		return err
	}
	oldCalls := make(map[string]int)
	for _, c := range oldP.Calls {
		oldCalls[c.Loc] = c.Gen
	}
	newCalls := make(map[string]int)
	for _, c := range newP.Calls {
		newCalls[c.Loc] = c.Gen
	}
	for _, c := range newP.Calls {
		if g, ok := oldCalls[c.Loc]; !ok {
			fmt.Printf("+ call %s -> gen %d\n", c.Loc, c.Gen)
		} else if g != c.Gen {
			fmt.Printf("~ call %s: gen %d -> %d\n", c.Loc, g, c.Gen)
		}
	}
	for _, c := range oldP.Calls {
		if _, ok := newCalls[c.Loc]; !ok {
			fmt.Printf("- call %s (was gen %d)\n", c.Loc, c.Gen)
		}
	}
	oldAllocs := make(map[string]analyzer.AllocDirective)
	for _, a := range oldP.Allocs {
		oldAllocs[a.Loc] = a
	}
	newAllocs := make(map[string]analyzer.AllocDirective)
	for _, a := range newP.Allocs {
		newAllocs[a.Loc] = a
	}
	for _, a := range newP.Allocs {
		old, ok := oldAllocs[a.Loc]
		switch {
		case !ok:
			fmt.Printf("+ alloc %s (direct=%v gen=%d)\n", a.Loc, a.Direct, a.Gen)
		case old.Direct != a.Direct || old.Gen != a.Gen:
			fmt.Printf("~ alloc %s: direct=%v gen=%d -> direct=%v gen=%d\n",
				a.Loc, old.Direct, old.Gen, a.Direct, a.Gen)
		}
	}
	for _, a := range oldP.Allocs {
		if _, ok := newAllocs[a.Loc]; !ok {
			fmt.Printf("- alloc %s\n", a.Loc)
		}
	}
	return nil
}

// showProfiles lists a profile repository (profilestore.Store): one line
// per (app, workload) key with the plan shape and the evidence behind it —
// the view an operator wants of a polm2d daemon's store.
func showProfiles(w io.Writer, dir string) error {
	store, err := profilestore.Open(dir)
	if err != nil {
		return err
	}
	keys, err := store.List()
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		fmt.Fprintln(w, "no profiles found")
		return nil
	}
	fmt.Fprintf(w, "%-24s %-6s %-8s %-6s %-12s %-10s\n",
		"app/workload", "gens", "sites", "instr", "evidence", "tainted")
	for _, k := range keys {
		p, err := store.Get(k.App, k.Workload)
		if err != nil {
			return err
		}
		var allocated, tainted uint64
		for _, s := range p.Sites {
			allocated += s.Allocated
			tainted += s.Tainted
		}
		fmt.Fprintf(w, "%-24s %-6d %-8d %-6d %-12d %-10d\n",
			k.String(), p.Generations, len(p.Sites), p.InstrumentedSites(), allocated, tainted)
	}
	fmt.Fprintf(w, "%d profiles\n", len(keys))
	return nil
}

// showRollout lists the persisted canary-rollout controller state for
// every key in a polm2d store directory: which plan version is stable,
// which (if any) is mid-canary, what's quarantined, and the lifetime
// promote/rollback tallies. Keys the controller has never touched (store
// written with -rollout off) are skipped.
func showRollout(w io.Writer, dir string) error {
	store, err := profilestore.Open(dir)
	if err != nil {
		return err
	}
	keys, err := store.List()
	if err != nil {
		return err
	}
	// The document is planserver's rolloutDoc; only the tracker snapshot
	// matters here, the embedded plan bodies are cache warm-up payload.
	type doc struct {
		Snapshot rollout.Snapshot `json:"snapshot"`
	}
	rows := 0
	for _, k := range keys {
		data, err := store.Rollout(k.App, k.Workload)
		if errors.Is(err, profilestore.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		var d doc
		if err := json.Unmarshal(data, &d); err != nil {
			return fmt.Errorf("rollout document for %s: %w", k, err)
		}
		if rows == 0 {
			fmt.Fprintf(w, "%-24s %-12s %-14s %-14s %-6s %-9s %-9s %s\n",
				"app/workload", "state", "stable", "candidate", "quar", "canaries", "promoted", "rolledback")
		}
		rows++
		fmt.Fprintf(w, "%-24s %-12s %-14s %-14s %-6d %-9d %-9d %d\n",
			k.String(), d.Snapshot.State,
			shortETag(d.Snapshot.StableETag), shortETag(d.Snapshot.CandidateETag),
			len(d.Snapshot.Quarantined), d.Snapshot.Canaries, d.Snapshot.Promotions, d.Snapshot.Rollbacks)
	}
	if rows == 0 {
		fmt.Fprintln(w, "no rollout state found (store written with -rollout off?)")
		return nil
	}
	fmt.Fprintf(w, "%d keys under rollout control\n", rows)
	return nil
}

// showSync lists the replication view of a polm2d store: every stored
// evidence document with its stamp, the logical version last-write-wins
// anti-entropy resolves conflicts with (DESIGN.md §15). Comparing two
// replicas' listings shows exactly which documents still differ;
// identical listings mean the pair has converged. Documents written
// before replication (or with -peer off) carry no stamp and show "-".
func showSync(w io.Writer, dir string) error {
	store, err := profilestore.Open(dir)
	if err != nil {
		return err
	}
	all, err := store.EvidenceAll()
	if err != nil {
		return err
	}
	keys, err := store.EvidenceKeys()
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		fmt.Fprintln(w, "no evidence documents found")
		return nil
	}
	fmt.Fprintf(w, "%-24s %-16s %-18s %-6s %-8s %s\n",
		"app/workload", "instance", "stamp", "gens", "sites", "evidence")
	docs, unstamped := 0, 0
	for _, k := range keys {
		instances := make([]string, 0, len(all[k]))
		for id := range all[k] {
			instances = append(instances, id)
		}
		sort.Strings(instances)
		for _, id := range instances {
			doc := all[k][id]
			stamp := doc.Stamp.String()
			if doc.Stamp.IsZero() {
				stamp = "-"
				unstamped++
			}
			docs++
			var allocated uint64
			for _, s := range doc.Profile.Sites {
				allocated += s.Allocated
			}
			fmt.Fprintf(w, "%-24s %-16s %-18s %-6d %-8d %d\n",
				k.String(), id, stamp, doc.Profile.Generations, len(doc.Profile.Sites), allocated)
		}
	}
	fmt.Fprintf(w, "%d evidence documents across %d keys (%d unstamped)\n", docs, len(keys), unstamped)
	return nil
}

// shortETag trims a content-addressed ETag (a quoted sha256 hex string) to
// a display prefix, mirroring the daemon's trace rendering; empty in,
// "-" out so table columns stay aligned.
func shortETag(etag string) string {
	t := etag
	if len(t) >= 2 && t[0] == '"' {
		t = t[1 : len(t)-1]
	}
	if t == "" {
		return "-"
	}
	if len(t) > 12 {
		t = t[:12]
	}
	return t
}

func showSnapshots(w io.Writer, dir string) error {
	snaps, err := snapshot.ReadDir(dir)
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		fmt.Fprintln(w, "no snapshot images found")
		return nil
	}
	fmt.Fprintf(w, "%-6s %-8s %-12s %-6s %-8s %-8s %-8s %-10s %-12s\n",
		"seq", "cycle", "taken", "incr", "regions", "pages", "no-need", "size(MB)", "duration")
	store := snapshot.NewStore()
	for _, s := range snaps {
		if err := store.Apply(s); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6d %-8d %-12v %-6v %-8d %-8d %-8d %-10.2f %-12v\n",
			s.Seq, s.Cycle, s.TakenAt.Round(time.Millisecond), s.Incremental,
			len(s.Regions), len(s.Pages), len(s.NoNeed),
			float64(s.SizeBytes)/(1<<20), s.Duration.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "reconstructed live view after last snapshot: %d objects\n", len(store.LiveIDs()))
	return nil
}
