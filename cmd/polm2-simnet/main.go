// Command polm2-simnet drives internal/simnet, the deterministic in-memory
// fleet simulator for the polm2d plan-distribution stack: one simulated
// daemon, a fleet of instances, a seeded network fault plan, and an
// invariant checker over the run's delivery log.
//
// Usage:
//
//	polm2-simnet -seeds 32                                # CI seed sweep
//	polm2-simnet -seed 42 -instances 64 -trace run.jsonl  # replay one seed
//	polm2-simnet -seed 9 -faults 'partition:inst-3..7@t=40s/20s;drop:upload%5'
//	polm2-simnet -seeds 8 -rollout -regress-at 70s        # canary rollback sweep
//	polm2-simnet -seeds 8 -daemons 2 -faults 'partition:daemon-1..1@t=60s/30s'
//
// With -daemons N the simulated fleet runs N replicated planservers:
// instances home on daemon (index mod N) and fail over on refusals,
// daemons pull each other by anti-entropy on the -sync-interval cadence,
// and the checker switches to the multi-daemon invariant suite
// (post-heal convergence to the stamp-winner merge, per-daemon
// accounting, quarantine propagation). Daemons partition by name:
// 'partition:daemon-1..1@t=60s/30s'.
//
// A sweep runs seeds 1..N and prints one verdict line per seed; the first
// seed that violates an invariant stops the sweep, prints the full
// invariant log — which names the reproducing seed and the effective fault
// spec — and exits 1. A single -seed run always prints the full log, and
// -trace additionally writes the run's byte-reproducible JSONL trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"polm2/internal/rollout"
	"polm2/internal/simnet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the tool body, factored from main so tests drive full sweeps
// in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("polm2-simnet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds     = fs.Int("seeds", 0, "sweep seeds 1..N, one simulated fleet per seed")
		seed      = fs.Int64("seed", 0, "run (or replay) a single seed")
		instances = fs.Int("instances", 32, "fleet size")
		keys      = fs.Int("keys", 2, "distinct (app, workload) keys the fleet spreads over")
		rounds    = fs.Int("rounds", 3, "chaos-phase re-profile rounds per instance")
		cadence   = fs.Duration("cadence", 30*time.Second, "simulated re-profile interval")
		faults    = fs.String("faults", defaultFaults, "network fault plan (faultio net spec; empty for a clean network)")
		daemons   = fs.Int("daemons", 1, "replicated planserver daemons (instances home on index mod N)")
		syncEvery = fs.Duration("sync-interval", 0, "anti-entropy pull cadence with -daemons > 1 (default cadence/2)")
		traceOut  = fs.String("trace", "", "write the run's JSONL trace to this file (single -seed runs only)")
		rolloutOn = fs.Bool("rollout", false, "run the daemon's canary rollout controller (adds the rollout invariants)")
		regressAt = fs.Duration("regress-at", 0, "inject a plan regression at this virtual instant (requires -rollout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "polm2-simnet: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if (*seeds > 0) == (*seed != 0) {
		fmt.Fprintln(stderr, "polm2-simnet: exactly one of -seeds N or -seed S is required")
		return 2
	}
	if *traceOut != "" && *seeds > 0 {
		fmt.Fprintln(stderr, "polm2-simnet: -trace records a single run; use it with -seed, not -seeds")
		return 2
	}

	if *regressAt != 0 && !*rolloutOn {
		fmt.Fprintln(stderr, "polm2-simnet: -regress-at requires -rollout")
		return 2
	}
	if *daemons < 1 {
		fmt.Fprintln(stderr, "polm2-simnet: -daemons must be at least 1")
		return 2
	}
	if *syncEvery != 0 && *daemons < 2 {
		fmt.Fprintln(stderr, "polm2-simnet: -sync-interval requires -daemons > 1")
		return 2
	}

	base := simnet.Config{
		Instances: *instances,
		Keys:      *keys,
		Rounds:    *rounds,
		Cadence:   *cadence,
		FaultSpec:    *faults,
		RegressAt:    *regressAt,
		Daemons:      *daemons,
		SyncInterval: *syncEvery,
	}
	if *rolloutOn {
		base.Rollout = &rollout.Config{}
	}

	if *seed != 0 {
		cfg := base
		cfg.Seed = *seed
		rep, code := simulate(cfg, *traceOut, stderr)
		if code != 0 {
			return code
		}
		fmt.Fprint(stdout, rep.Log())
		if !rep.OK() {
			return 1
		}
		return 0
	}

	for s := int64(1); s <= int64(*seeds); s++ {
		cfg := base
		cfg.Seed = s
		rep, code := simulate(cfg, "", stderr)
		if code != 0 {
			return code
		}
		if !rep.OK() {
			fmt.Fprintf(stdout, "seed %d: FAIL (%d violations)\n", s, len(rep.Violations))
			fmt.Fprintf(stderr, "polm2-simnet: invariants violated; reproduce with -seed %d -faults %q\n%s",
				s, rep.FaultSpec, rep.Log())
			return 1
		}
		repl := ""
		if rep.Daemons > 1 {
			repl = fmt.Sprintf(" daemons=%d syncs=%d applied=%d", rep.Daemons, rep.PeerSyncs, rep.PeerDocsApplied)
		}
		fmt.Fprintf(stdout, "seed %d: ok (time=%s events=%d uploads=%d merges=%d coalesced=%d faults=%d%s)\n",
			s, rep.SimTime, rep.Events, rep.Uploads, rep.Merges, rep.Coalesced,
			rep.Net.Refused+rep.Net.Dropped+rep.Net.Dup+rep.Net.Stale+rep.Net.Delayed+rep.Net.Err5xx, repl)
	}
	fmt.Fprintf(stdout, "sweep: %d seeds, all invariants held\n", *seeds)
	return 0
}

// defaultFaults is the sweep's standing chaos plan: a partition window
// plus every percentage fault class, so a default CI sweep exercises the
// whole fault model. The per-run seed drives the draws (the spec pins no
// seed of its own).
const defaultFaults = "partition:inst-4..11@t=45s/30s;drop:upload%4;dup:upload%5;stale:upload%4;delay:fetch%6@120ms;err5xx%2"

// simulate runs one seed into a throwaway store. A non-zero exit code
// means the simulation could not be built at all (bad spec, unusable
// store) as opposed to failing its invariants.
func simulate(cfg simnet.Config, traceOut string, stderr io.Writer) (*simnet.Report, int) {
	dir, err := os.MkdirTemp("", "polm2-simnet-")
	if err != nil {
		fmt.Fprintf(stderr, "polm2-simnet: %v\n", err)
		return nil, 1
	}
	defer os.RemoveAll(dir)
	cfg.StoreDir = dir

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "polm2-simnet: %v\n", err)
			return nil, 1
		}
		defer f.Close()
		cfg.TraceWriter = f
	}

	rep, err := simnet.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "polm2-simnet: %v\n", err)
		return nil, 2
	}
	return rep, 0
}
