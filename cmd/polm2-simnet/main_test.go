package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepRunsClean drives a small sweep in-process: every seed must hold
// its invariants and the per-seed verdict lines must land on stdout.
func TestSweepRunsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seeds", "3", "-instances", "8"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("sweep exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"seed 1: ok", "seed 2: ok", "seed 3: ok", "sweep: 3 seeds"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestSweepIsDeterministic: two identical sweeps print identical bytes —
// the property that makes a CI failure reproducible on any machine.
func TestSweepIsDeterministic(t *testing.T) {
	sweep := func() string {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-seeds", "2", "-instances", "6"}, &stdout, &stderr); code != 0 {
			t.Fatalf("sweep exit %d: %s", code, stderr.String())
		}
		return stdout.String()
	}
	if a, b := sweep(), sweep(); a != b {
		t.Fatalf("sweeps diverge:\n--- a\n%s--- b\n%s", a, b)
	}
}

// TestSingleSeedReplayWritesTrace: a -seed run prints the invariant log
// and -trace captures the byte-reproducible JSONL record of the run.
func TestSingleSeedReplayWritesTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.jsonl")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seed", "42", "-instances", "8", "-trace", tracePath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("replay exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "seed=42") || !strings.Contains(stdout.String(), "invariants: ok") {
		t.Errorf("replay log incomplete:\n%s", stdout.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"comp":"simnet"`)) || !bytes.Contains(data, []byte(`"comp":"planserver"`)) {
		t.Error("trace file is missing simulator or daemon records")
	}
}

// TestRolloutSweep drives the canary-regression scenario end to end: the
// sweep must hold the rollout invariants and the single-seed log must show
// the controller's decisions.
func TestRolloutSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seeds", "2", "-instances", "10", "-rollout", "-regress-at", "70s"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("rollout sweep exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-seed", "5", "-instances", "10", "-rollout", "-regress-at", "70s"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("rollout replay exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"rollout: feedback=", "rollout key", "invariants: ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("rollout log missing %q:\n%s", want, out)
		}
	}
}

// TestReplicatedSweep runs the two-daemon sweep the CI job uses: every
// seed rides a daemon partition and the verdict line must carry the
// replication counters.
func TestReplicatedSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seeds", "2", "-instances", "10", "-daemons", "2",
		"-faults", "partition:daemon-1..1@t=50s/25s;drop:upload%4;dup:upload%5;err5xx%2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("replicated sweep exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"seed 1: ok", "seed 2: ok", "daemons=2 syncs=", "sweep: 2 seeds"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestFlagErrors pins the usage contract: mutually exclusive modes, trace
// in sweep mode, unknown fault kinds and stray arguments are all usage
// errors (exit 2), before any simulation runs.
func TestFlagErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-seeds", "2", "-seed", "3"},
		{"-seeds", "2", "-trace", "x.jsonl"},
		{"-seed", "1", "-faults", "detonate%50"},
		{"-seeds", "2", "stray"},
		{"-seeds", "2", "-regress-at", "70s"},
		{"-seeds", "2", "-daemons", "0"},
		{"-seeds", "2", "-sync-interval", "10s"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}
