// Command polm2-loadgen drives a synthetic fleet against a live polm2d
// daemon: K instances each upload M rounds of cumulative profiling
// evidence and poll the fleet plan with conditional GETs between rounds,
// exactly the traffic shape internal/fleetclient produces in production.
// It reports client-side latency percentiles for both endpoints and the
// daemon's own pipeline counters (uploads, merges, coalescing) scraped
// from /metricsz before and after the run — the operational complement to
// the package's micro-benchmarks.
//
// Usage:
//
//	polm2d -addr 127.0.0.1:7468 -store ./profiles &
//	polm2-loadgen -addr http://127.0.0.1:7468 -instances 16 -uploads 8
//
// The generator is deterministic for a fixed flag set: instance ids,
// site traces and allocation counts derive from -seed, so two runs load
// the daemon with byte-identical evidence (the daemon's merge being
// idempotent per instance, re-runs against a dirty store converge to the
// same plan too).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// instanceResult is one synthetic instance's measurements, merged after
// the run so the timing path takes no locks.
type instanceResult struct {
	uploadLat   []time.Duration
	fetchLat    []time.Duration
	notModified int
	fetches     int
	uploads     int
	err         error
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("polm2-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "", "base URL of the polm2d daemon (required, e.g. http://127.0.0.1:7468)")
		app       = fs.String("app", "LoadGen", "application label of the generated evidence")
		workload  = fs.String("workload", "steady", "workload label of the generated evidence")
		instances = fs.Int("instances", 16, "synthetic fleet size (concurrent uploaders)")
		uploads   = fs.Int("uploads", 8, "evidence uploads per instance (each cumulative over the last)")
		sites     = fs.Int("sites", 24, "allocation sites per instance profile (first one fleet-shared)")
		seed      = fs.Uint64("seed", 1, "determinism seed for instance ids and evidence contents")
		timeout   = fs.Duration("timeout", 30*time.Second, "overall deadline for requests and convergence")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "polm2-loadgen: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *addr == "" {
		fmt.Fprintln(stderr, "polm2-loadgen: -addr is required")
		return 2
	}
	if *instances <= 0 || *uploads <= 0 || *sites <= 0 {
		fmt.Fprintln(stderr, "polm2-loadgen: -instances, -uploads and -sites must be positive")
		return 2
	}

	transport := &http.Transport{MaxIdleConns: *instances * 2, MaxIdleConnsPerHost: *instances * 2}
	client := &http.Client{Transport: transport, Timeout: *timeout}
	defer transport.CloseIdleConnections()

	before, err := scrapeCounters(client, *addr)
	if err != nil {
		fmt.Fprintf(stderr, "polm2-loadgen: scraping %s/metricsz: %v\n", *addr, err)
		return 1
	}

	fmt.Fprintf(stdout, "polm2-loadgen: %d instances × %d uploads (%d sites) against %s (%s/%s)\n",
		*instances, *uploads, *sites, *addr, *app, *workload)
	results := make([]instanceResult, *instances)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *instances; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runInstance(client, *addr, *app, *workload, i, *uploads, *sites, *seed)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var uploadSample, fetchSample metrics.Sample
	okUploads, okFetches, notModified, failed := 0, 0, 0, 0
	for i := range results {
		r := &results[i]
		if r.err != nil {
			failed++
			fmt.Fprintf(stderr, "polm2-loadgen: instance %d: %v\n", i, r.err)
		}
		okUploads += r.uploads
		okFetches += r.fetches
		notModified += r.notModified
		for _, d := range r.uploadLat {
			uploadSample.Add(d)
		}
		for _, d := range r.fetchLat {
			fetchSample.Add(d)
		}
	}

	// The daemon merges asynchronously behind its uploads; wait for the
	// pipeline to cover them all before scraping the final counters, so
	// the report describes a quiesced run.
	wantCovered := before["evidence_merge_total"] + before["evidence_coalesced_total"] + uint64(okUploads)
	deadline := time.Now().Add(*timeout)
	var after map[string]uint64
	for {
		after, err = scrapeCounters(client, *addr)
		if err != nil {
			fmt.Fprintf(stderr, "polm2-loadgen: scraping %s/metricsz: %v\n", *addr, err)
			return 1
		}
		if after["evidence_merge_total"]+after["evidence_coalesced_total"] >= wantCovered {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(stderr, "polm2-loadgen: daemon did not cover all uploads before the deadline")
			return 1
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Fprintf(stdout, "uploads:  %d ok, %d instances failed, wall %s\n", okUploads, failed, elapsed.Round(time.Millisecond))
	if uploadSample.Len() > 0 {
		fmt.Fprintf(stdout, "  latency p50 %s  p99 %s  max %s\n",
			uploadSample.Percentile(50).Round(time.Microsecond),
			uploadSample.Percentile(99).Round(time.Microsecond),
			uploadSample.Max().Round(time.Microsecond))
	}
	fmt.Fprintf(stdout, "fetches:  %d ok (%d not-modified)\n", okFetches, notModified)
	if fetchSample.Len() > 0 {
		fmt.Fprintf(stdout, "  latency p50 %s  p99 %s  max %s\n",
			fetchSample.Percentile(50).Round(time.Microsecond),
			fetchSample.Percentile(99).Round(time.Microsecond),
			fetchSample.Max().Round(time.Microsecond))
	}
	d := func(name string) uint64 { return after[name] - before[name] }
	fmt.Fprintf(stdout, "daemon:   %d uploads, %d merges (%d coalesced), %d rejects, %d store errors\n",
		d("evidence_upload_total"), d("evidence_merge_total"),
		d("evidence_coalesced_total"), d("evidence_reject_total"), d("store_error_total"))
	// Rollout counters exist only on daemons built with the canary
	// controller; a missing series scrapes as zero on both sides, so the
	// line simply stays quiet against an older or rollout-off daemon.
	if after["feedback_reports_total"]+after["feedback_reject_total"]+after["rollout_canary_total"] > 0 {
		fmt.Fprintf(stdout, "rollout:  %d feedback reports (%d rejected), %d canaries, %d promotions, %d rollbacks\n",
			d("feedback_reports_total"), d("feedback_reject_total"),
			d("rollout_canary_total"), d("rollout_promotions_total"), d("rollout_rollbacks_total"))
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// runInstance is one synthetic fleet member: -uploads rounds of
// cumulative evidence, a conditional plan poll after each.
func runInstance(client *http.Client, addr, app, workload string, idx, uploads, sites int, seed uint64) instanceResult {
	var r instanceResult
	instance := fmt.Sprintf("loadgen-%d-%03d", seed, idx)
	etag := ""
	for round := 1; round <= uploads; round++ {
		body, err := json.Marshal(buildEvidence(app, workload, idx, round, sites, seed))
		if err != nil {
			r.err = err
			return r
		}
		req, err := http.NewRequest("POST", addr+"/v1/evidence", bytes.NewReader(body))
		if err != nil {
			r.err = err
			return r
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Polm2-Instance", instance)
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			r.err = err
			return r
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		r.uploadLat = append(r.uploadLat, time.Since(t0))
		if resp.StatusCode != http.StatusOK {
			r.err = fmt.Errorf("upload round %d: status %d: %s", round, resp.StatusCode, bytes.TrimSpace(msg))
			return r
		}
		r.uploads++

		req, err = http.NewRequest("GET",
			fmt.Sprintf("%s/v1/plan?app=%s&workload=%s", addr, app, workload), nil)
		if err != nil {
			r.err = err
			return r
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		t0 = time.Now()
		resp, err = client.Do(req)
		if err != nil {
			r.err = err
			return r
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		r.fetchLat = append(r.fetchLat, time.Since(t0))
		switch resp.StatusCode {
		case http.StatusOK:
			etag = resp.Header.Get("ETag")
		case http.StatusNotModified:
			r.notModified++
		default:
			r.err = fmt.Errorf("fetch round %d: status %d", round, resp.StatusCode)
			return r
		}
		r.fetches++
	}
	return r
}

// buildEvidence is instance idx's cumulative evidence at the given round:
// one site shared fleet-wide, the rest private to the instance, all
// counts growing with the round so re-uploads replace rather than repeat.
func buildEvidence(app, workload string, idx, round, sites int, seed uint64) *analyzer.Profile {
	p := &analyzer.Profile{App: app, Workload: workload}
	for s := 0; s < sites; s++ {
		trace := fmt.Sprintf("LoadGen.serve:1;Handler.call:%d", 10+s)
		if s > 0 {
			trace = fmt.Sprintf("%s;Worker.run:%d", trace, 100+idx)
		}
		n := uint64(round) * (32 + uint64(seed)%7 + 3*uint64(s) + uint64(idx))
		p.Sites = append(p.Sites, analyzer.SiteStat{
			Trace:     trace,
			Allocated: n,
			Buckets:   []uint64{n / 3, n - n/3 - n/5, n / 5},
		})
	}
	return p
}

// scrapeCounters parses /metricsz's plain "name value" exposition into a
// map, skipping labeled series (the generator only diffs totals).
func scrapeCounters(client *http.Client, addr string) (map[string]uint64, error) {
	resp, err := client.Get(addr + "/metricsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	out := make(map[string]uint64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		name, value, ok := strings.Cut(line, " ")
		if !ok || strings.ContainsAny(name, "{") {
			continue
		}
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			continue // histogram rows etc.
		}
		out[name] = n
	}
	return out, sc.Err()
}
