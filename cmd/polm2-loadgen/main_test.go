package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"polm2/internal/analyzer"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("run with unknown flag = %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Fatalf("run without -addr = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-addr is required") {
		t.Errorf("stderr missing addr error:\n%s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-addr", "http://x", "-instances", "0"}, &out, &errb); code != 2 {
		t.Fatalf("run with zero instances = %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-addr", "http://x", "stray"}, &out, &errb); code != 2 {
		t.Fatalf("run with positional arg = %d, want 2", code)
	}
}

// TestLoadgenAgainstDaemon runs the generator against an in-process plan
// daemon: every upload accepted, the report consistent with the daemon's
// own counters, and the converged plan accounting for every instance's
// latest (cumulative) evidence exactly once.
func TestLoadgenAgainstDaemon(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := planserver.New(store, planserver.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const instances, uploads, sites = 4, 3, 5
	var out, errb strings.Builder
	code := run([]string{
		"-addr", ts.URL,
		"-app", "LoadGen", "-workload", "test",
		"-instances", "4", "-uploads", "3", "-sites", "5",
		"-seed", "7",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("loadgen exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	report := out.String()
	for _, want := range []string{
		"4 instances × 3 uploads",
		"uploads:  12 ok, 0 instances failed",
		"fetches:  12 ok",
		"latency p50",
		"daemon:   12 uploads,",
		"0 rejects, 0 store errors",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "rollout:") {
		t.Errorf("rollout line printed against a rollout-off daemon:\n%s", report)
	}

	// The daemon converged on the merge of every instance's final round.
	resp, err := http.Get(ts.URL + "/v1/plan?app=LoadGen&workload=test")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("final fetch = %d, %v", resp.StatusCode, err)
	}
	var p analyzer.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < instances; i++ {
		for _, s := range buildEvidence("LoadGen", "test", i, uploads, sites, 7).Sites {
			want += s.Allocated
		}
	}
	var got uint64
	for _, s := range p.Sites {
		got += s.Allocated
	}
	if got != want {
		t.Fatalf("converged plan allocates %d, want %d (final round of each instance, once)", got, want)
	}
	// Re-running with the same seed is idempotent: same evidence, same plan.
	out.Reset()
	if code := run([]string{
		"-addr", ts.URL,
		"-app", "LoadGen", "-workload", "test",
		"-instances", "4", "-uploads", "3", "-sites", "5",
		"-seed", "7",
	}, &out, &errb); code != 0 {
		t.Fatalf("re-run exited %d\nstderr:\n%s", code, errb.String())
	}
	resp, err = http.Get(ts.URL + "/v1/plan?app=LoadGen&workload=test")
	if err != nil {
		t.Fatal(err)
	}
	body2, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rerun fetch = %d, %v", resp.StatusCode, err)
	}
	if string(body2) != string(body) {
		t.Fatal("re-run with identical seed changed the converged plan")
	}
}

// TestLoadgenReportsRolloutCounters: against a daemon running the canary
// controller, the report grows a rollout line with the scraped counter
// deltas — the repeated merges the generator provokes must open at least
// one canary.
func TestLoadgenReportsRolloutCounters(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rollout.Config{}
	srv := planserver.New(store, planserver.Options{Rollout: &cfg})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out, errb strings.Builder
	code := run([]string{
		"-addr", ts.URL,
		"-app", "LoadGen", "-workload", "canary",
		"-instances", "4", "-uploads", "3", "-sites", "5",
		"-seed", "7",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("loadgen exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	report := out.String()
	if !strings.Contains(report, "rollout:  ") {
		t.Fatalf("report missing rollout counter line:\n%s", report)
	}
	if strings.Contains(report, ", 0 canaries") {
		t.Errorf("repeated merges opened no canary:\n%s", report)
	}
}
