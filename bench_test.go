// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one testing.B benchmark per artifact, plus micro-benchmarks of the
// simulation substrate. Each figure benchmark performs the full set of
// profiling and production runs behind that figure; b.N iterations repeat
// the whole experiment with fresh sessions.
//
//	go test -bench=. -benchmem
package polm2

import (
	"io"
	"testing"
	"time"

	"polm2/internal/bench"
	"polm2/internal/gc/g1"
	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/simclock"
)

// benchConfig shortens the production runs so a full -bench=. pass stays in
// the minutes range; EXPERIMENTS.md records full-length (30-simulated-
// minute) numbers produced by cmd/polm2-bench.
func benchConfig() bench.Config {
	return bench.Config{
		RunDuration: 10 * time.Minute,
		Warmup:      2 * time.Minute,
	}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		session := bench.NewSession(benchConfig())
		if err := session.RunExperiment(name, io.Discard); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (application profiling metrics).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure3 regenerates Figure 3 (snapshot time, Dumper vs jmap).
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4 regenerates Figure 4 (snapshot size, Dumper vs jmap).
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates Figure 5 (pause-time percentiles).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates Figure 6 (pause counts per interval).
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates Figure 7 (throughput normalized to G1).
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates Figure 8 (Cassandra throughput series).
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates Figure 9 (max memory normalized to G1).
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkAblationDump measures the Dumper-optimization ablation
// (DESIGN.md §5.1).
func BenchmarkAblationDump(b *testing.B) { runExperiment(b, "ablation-dump") }

// BenchmarkAblationConflict measures the conflict-resolution ablation
// (DESIGN.md §5.2).
func BenchmarkAblationConflict(b *testing.B) { runExperiment(b, "ablation-conflict") }

// BenchmarkAblationHoist measures the generation-hoisting ablation
// (DESIGN.md §5.3).
func BenchmarkAblationHoist(b *testing.B) { runExperiment(b, "ablation-hoist") }

// Substrate micro-benchmarks.

func newBenchEngine(b *testing.B) *jvm.VM {
	b.Helper()
	col, err := g1.New(simclock.New(), g1.Config{
		Heap: heap.Config{
			RegionSize: 256 << 10,
			PageSize:   4096,
			MaxBytes:   192 << 20,
		},
		YoungBytes: 32 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	return jvm.New(col)
}

// BenchmarkEngineAlloc measures the engine's allocation fast path
// (site interning + pinning + collector bump allocation), including the
// young collections it triggers.
func BenchmarkEngineAlloc(b *testing.B) {
	vm := newBenchEngine(b)
	th := vm.NewThread("bench")
	th.Enter("Bench", "run")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Alloc(1, 512); err != nil {
			b.Fatal(err)
		}
		if i%64 == 0 {
			th.ReleaseLocals()
		}
	}
}

// BenchmarkHeapTrace measures a full heap trace over a linked live set.
func BenchmarkHeapTrace(b *testing.B) {
	h, err := heap.New(heap.Config{RegionSize: 256 << 10, PageSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	r, err := h.NewRegion(heap.Young)
	if err != nil {
		b.Fatal(err)
	}
	var prev *heap.Object
	for i := 0; i < 50000; i++ {
		if r.Used()+64 > 256<<10 {
			r, err = h.NewRegion(heap.Young)
			if err != nil {
				b.Fatal(err)
			}
		}
		obj, err := h.Allocate(r, 64, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i%100 == 0 {
			if err := h.AddRoot(obj.ID); err != nil {
				b.Fatal(err)
			}
			prev = obj
		} else if prev != nil {
			if err := h.Link(prev.ID, obj.ID); err != nil {
				b.Fatal(err)
			}
			prev = obj
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := h.Trace()
		if ls.Objects == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkYoungCollection measures one young collection over a mostly-dead
// eden, the collector's hottest path.
func BenchmarkYoungCollection(b *testing.B) {
	vm := newBenchEngine(b)
	th := vm.NewThread("bench")
	th.Enter("Bench", "run")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 4096; j++ {
			if _, err := th.Alloc(1, 512); err != nil {
				b.Fatal(err)
			}
			th.ReleaseLocals()
		}
		b.StartTimer()
		if err := vm.Collector().ForceCollect(); err != nil {
			b.Fatal(err)
		}
	}
}
