// Stack example: the paper's introductory motivation quantified.
//
// The introduction (§1) observes that latency-sensitive services sit on
// stacks of big-data platforms, and "the probability of incurring into a
// long GC pause (and potentially failing an SLA) increases with the number
// of BGPLATs in the stack". This example measures each platform's pause
// profile under G1 and under POLM2, then computes the probability that a
// request traversing a k-platform stack hits at least one pause longer
// than the SLA threshold.
//
//	go run ./examples/stack [-sla 400ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"polm2"
)

func main() {
	sla := flag.Duration("sla", 400*time.Millisecond, "per-request pause budget (SLA)")
	flag.Parse()
	if err := run(*sla); err != nil {
		fmt.Fprintf(os.Stderr, "stack: %v\n", err)
		os.Exit(1)
	}
}

// platform is one layer of the stack.
type platform struct {
	label    string
	app      polm2.App
	workload string
}

func run(sla time.Duration) error {
	stack := []platform{
		{label: "Cassandra-RI (storage)", app: polm2.Cassandra(), workload: "RI"},
		{label: "Lucene (search)", app: polm2.Lucene(), workload: "default"},
		{label: "GraphChi-PR (analytics)", app: polm2.GraphChi(), workload: "PR"},
	}
	opts := polm2.RunOptions{Duration: 15 * time.Minute, Warmup: 3 * time.Minute}

	// Per-platform probability that a random request observes a pause
	// above the SLA: fraction of measured time spent inside over-budget
	// pauses.
	overBudget := func(res *polm2.RunResult) float64 {
		var over time.Duration
		for _, d := range res.WarmPauses.Values() {
			if d > sla {
				over += d
			}
		}
		window := res.SimDuration - res.Warmup
		if window <= 0 {
			return 0
		}
		return float64(over) / float64(window)
	}

	fmt.Printf("per-platform probability of hitting a pause > %v:\n", sla)
	var pG1, pPOLM2 []float64
	for _, layer := range stack {
		g1, err := polm2.RunApp(layer.app, layer.workload, polm2.CollectorG1, polm2.PlanNone, nil, opts)
		if err != nil {
			return err
		}
		prof, err := polm2.ProfileApp(layer.app, layer.workload, polm2.ProfileOptions{})
		if err != nil {
			return err
		}
		instr, err := polm2.RunApp(layer.app, layer.workload, polm2.CollectorNG2C, polm2.PlanPOLM2, prof.Profile, opts)
		if err != nil {
			return err
		}
		a, b := overBudget(g1), overBudget(instr)
		pG1 = append(pG1, a)
		pPOLM2 = append(pPOLM2, b)
		fmt.Printf("  %-26s G1 %6.2f%%   POLM2 %6.2f%%\n", layer.label, 100*a, 100*b)
	}

	fmt.Printf("\nprobability a request crossing the first k platforms hits an over-SLA pause:\n")
	fmt.Printf("%-8s %12s %12s\n", "stack k", "G1", "POLM2")
	miss := func(ps []float64, k int) float64 {
		ok := 1.0
		for _, p := range ps[:k] {
			ok *= 1 - p
		}
		return 1 - ok
	}
	for k := 1; k <= len(stack); k++ {
		fmt.Printf("%-8d %11.2f%% %11.2f%%\n", k, 100*miss(pG1, k), 100*miss(pPOLM2, k))
	}
	fmt.Println("\n(the paper's §1: SLA risk compounds with stack depth; POLM2 keeps it flat)")
	return nil
}
