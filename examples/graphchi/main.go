// GraphChi example: batch graph processing under POLM2.
//
// GraphChi loads subgraph batches under a memory budget, iterates over
// them, and drops them en masse — the ideal pretenuring case. The example
// runs PageRank under G1 and under POLM2, printing the pause-duration
// histogram (the paper's Figure 6(f) view) and the throughput trade-off:
// POLM2 removes the long pauses, while G1 keeps a small throughput edge
// because pretenured allocation bypasses the TLAB fast path.
//
//	go run ./examples/graphchi [-workload PR|CC]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"polm2"
)

func main() {
	workload := flag.String("workload", "PR", "GraphChi workload: PR or CC")
	flag.Parse()
	if err := run(*workload); err != nil {
		fmt.Fprintf(os.Stderr, "graphchi: %v\n", err)
		os.Exit(1)
	}
}

func run(workload string) error {
	app := polm2.GraphChi()

	fmt.Printf("profiling GraphChi/%s ...\n", workload)
	prof, err := polm2.ProfileApp(app, workload, polm2.ProfileOptions{})
	if err != nil {
		return err
	}
	p := prof.Profile
	fmt.Printf("  %d batch-loading sites instrumented into %d generations; %d conflict (the shared ChunkPool)\n\n",
		p.InstrumentedSites(), p.UsedGenerations(), p.Conflicts)

	opts := polm2.RunOptions{Duration: 20 * time.Minute, Warmup: 4 * time.Minute}
	g1, err := polm2.RunApp(app, workload, polm2.CollectorG1, polm2.PlanNone, nil, opts)
	if err != nil {
		return err
	}
	instr, err := polm2.RunApp(app, workload, polm2.CollectorNG2C, polm2.PlanPOLM2, p, opts)
	if err != nil {
		return err
	}

	edges := []time.Duration{
		64 * time.Millisecond, 128 * time.Millisecond, 256 * time.Millisecond,
		512 * time.Millisecond, 1024 * time.Millisecond, 2048 * time.Millisecond,
	}
	fmt.Printf("%-8s", "")
	labels := []string{"<64ms", "<128ms", "<256ms", "<512ms", "<1s", "<2s", ">=2s"}
	for _, l := range labels {
		fmt.Printf("%9s", l)
	}
	fmt.Println("   (pause counts)")
	for _, row := range []struct {
		label string
		res   *polm2.RunResult
	}{{"G1", g1}, {"POLM2", instr}} {
		counts := make([]int, len(edges)+1)
		for _, d := range row.res.WarmPauses.Values() {
			i := 0
			for i < len(edges) && d >= edges[i] {
				i++
			}
			counts[i]++
		}
		fmt.Printf("%-8s", row.label)
		for _, c := range counts {
			fmt.Printf("%9d", c)
		}
		fmt.Println()
	}

	fmt.Printf("\nvertex updates: G1 %d, POLM2 %d (%.1f%%) — G1 keeps a small throughput edge, as in the paper\n",
		g1.WarmOps, instr.WarmOps, 100*float64(instr.WarmOps)/float64(g1.WarmOps)-100)
	fmt.Printf("worst pause: G1 %v -> POLM2 %v\n",
		g1.WarmPauses.Max().Round(time.Millisecond), instr.WarmPauses.Max().Round(time.Millisecond))
	return nil
}
