// Quickstart: profile a workload, then compare the unmodified application
// under G1 against the POLM2-instrumented application under NG2C.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"polm2"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	app := polm2.Cassandra()
	const workload = "WI" // 7500 writes + 2500 reads per second

	// Phase 1 (§3.5): profile the workload. The Recorder logs every
	// allocation, the Dumper snapshots the heap after each GC cycle, and
	// the Analyzer estimates a target generation per allocation site.
	fmt.Println("profiling Cassandra/WI ...")
	prof, err := polm2.ProfileApp(app, workload, polm2.ProfileOptions{})
	if err != nil {
		return err
	}
	p := prof.Profile
	fmt.Printf("  %d allocation sites instrumented, %d generations, %d conflicts resolved\n\n",
		p.InstrumentedSites(), p.UsedGenerations(), p.Conflicts)

	// Phase 2: production runs. Same workload, same seed — only the
	// memory management changes.
	opts := polm2.RunOptions{Duration: 12 * time.Minute, Warmup: 3 * time.Minute}

	g1, err := polm2.RunApp(app, workload, polm2.CollectorG1, polm2.PlanNone, nil, opts)
	if err != nil {
		return err
	}
	instrumented, err := polm2.RunApp(app, workload, polm2.CollectorNG2C, polm2.PlanPOLM2, p, opts)
	if err != nil {
		return err
	}

	fmt.Printf("%-22s %12s %12s\n", "pause percentile", "G1", "POLM2")
	for _, pct := range []float64{50, 90, 99, 99.9} {
		fmt.Printf("%-22.1f %12v %12v\n", pct,
			g1.WarmPauses.Percentile(pct).Round(time.Millisecond),
			instrumented.WarmPauses.Percentile(pct).Round(time.Millisecond))
	}
	fmt.Printf("%-22s %12v %12v\n", "worst",
		g1.WarmPauses.Max().Round(time.Millisecond),
		instrumented.WarmPauses.Max().Round(time.Millisecond))

	reduction := 100 * (1 - float64(instrumented.WarmPauses.Max())/float64(g1.WarmPauses.Max()))
	fmt.Printf("\nworst-pause reduction: %.0f%% — with zero programmer effort (the paper's headline result)\n", reduction)
	return nil
}
