// Cassandra example: the paper's key-value-store scenario end to end.
//
// For each YCSB mix (write-intensive, balanced, read-intensive) the example
// profiles the workload, then compares four setups: G1 (unmodified), manual
// NG2C annotations (the expert's), POLM2, and the C4 concurrent collector —
// reporting pause percentiles, throughput and memory, i.e. the data behind
// the paper's Figures 5, 7 and 9 for Cassandra.
//
//	go run ./examples/cassandra [-workload WI|WR|RI]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"polm2"
)

func main() {
	workload := flag.String("workload", "WI", "Cassandra workload: WI, WR or RI")
	flag.Parse()
	if err := run(*workload); err != nil {
		fmt.Fprintf(os.Stderr, "cassandra: %v\n", err)
		os.Exit(1)
	}
}

func run(workload string) error {
	app := polm2.Cassandra()

	fmt.Printf("profiling Cassandra/%s (Recorder + Dumper + Analyzer) ...\n", workload)
	prof, err := polm2.ProfileApp(app, workload, polm2.ProfileOptions{})
	if err != nil {
		return err
	}
	p := prof.Profile
	fmt.Printf("  instrumented sites: %d, generations: %d, conflicts: %d\n",
		p.InstrumentedSites(), p.UsedGenerations(), p.Conflicts)
	for _, c := range p.Calls {
		fmt.Printf("  setGeneration at %-40s -> gen %d\n", c.Loc, c.Gen)
	}

	manual, err := app.ManualProfile(workload)
	if err != nil {
		return err
	}

	opts := polm2.RunOptions{Duration: 15 * time.Minute, Warmup: 3 * time.Minute}
	setups := []struct {
		label     string
		collector string
		plan      polm2.PlanKind
		profile   *polm2.Profile
	}{
		{"G1", polm2.CollectorG1, polm2.PlanNone, nil},
		{"NG2C(manual)", polm2.CollectorNG2C, polm2.PlanManual, manual},
		{"POLM2", polm2.CollectorNG2C, polm2.PlanPOLM2, p},
		{"C4", polm2.CollectorC4, polm2.PlanNone, nil},
	}

	fmt.Printf("\n%-14s %10s %10s %10s %10s %12s %10s\n",
		"setup", "p50", "p99", "p99.9", "worst", "ops", "mem(MB)")
	for _, su := range setups {
		res, err := polm2.RunApp(app, workload, su.collector, su.plan, su.profile, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %10v %10v %10v %10v %12d %10d\n",
			su.label,
			res.WarmPauses.Percentile(50).Round(time.Millisecond),
			res.WarmPauses.Percentile(99).Round(time.Millisecond),
			res.WarmPauses.Percentile(99.9).Round(time.Millisecond),
			res.WarmPauses.Max().Round(time.Millisecond),
			res.WarmOps,
			res.MaxMemoryBytes>>20)
	}
	fmt.Println("\n(C4's pauses are all tiny, but its barriers cost throughput and it pre-reserves the whole heap)")
	return nil
}
