// Lucene example: a walkthrough of POLM2's allocation-path conflict
// resolution (§3.3, the paper's Listing 1 scenario in a real workload).
//
// Lucene's update path and search path draw buffers from the same two pool
// helpers, so the same allocation sites produce both middle-lived postings
// and transient scorers. The example shows the evidence the Analyzer
// gathers, the conflicts it detects, where Algorithm 1 anchors the
// generation switches — and what it costs to get this wrong, by comparing
// POLM2 against the expert's manual annotations (which pretenure the pools
// directly).
//
//	go run ./examples/lucene
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"polm2"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lucene: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	app := polm2.Lucene()
	const workload = "default"

	fmt.Println("profiling Lucene (20000 updates + 5000 searches per second) ...")
	prof, err := polm2.ProfileApp(app, workload, polm2.ProfileOptions{})
	if err != nil {
		return err
	}
	p := prof.Profile

	fmt.Println("\nallocation-site evidence (shared pool sites reached via different paths):")
	for _, s := range p.Sites {
		if !strings.Contains(s.Trace, "Pool.get") {
			continue
		}
		fmt.Printf("  gen=%d n=%-8d %s\n", s.Gen, s.Allocated, s.Trace)
	}

	fmt.Printf("\nconflicts detected: %d; Algorithm 1 anchored the generation switches at:\n", p.Conflicts)
	for _, c := range p.Calls {
		fmt.Printf("  %-44s -> generation %d\n", c.Loc, c.Gen)
	}
	fmt.Println("annotated allocation sites (@Gen):")
	for _, a := range p.Allocs {
		fmt.Printf("  %-44s direct=%v\n", a.Loc, a.Direct)
	}

	// The cost of getting it wrong: the expert pretenured the pools
	// directly, dragging every transient scorer and result buffer into
	// the old generation.
	manual, err := app.ManualProfile(workload)
	if err != nil {
		return err
	}
	opts := polm2.RunOptions{Duration: 15 * time.Minute, Warmup: 3 * time.Minute}
	polm2Run, err := polm2.RunApp(app, workload, polm2.CollectorNG2C, polm2.PlanPOLM2, p, opts)
	if err != nil {
		return err
	}
	manualRun, err := polm2.RunApp(app, workload, polm2.CollectorNG2C, polm2.PlanManual, manual, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\npause p99: manual NG2C %v vs POLM2 %v\n",
		manualRun.WarmPauses.Percentile(99).Round(time.Millisecond),
		polm2Run.WarmPauses.Percentile(99).Round(time.Millisecond))
	fmt.Println("(the paper §5.4.1: even experienced developers mis-annotate shared allocation paths;")
	fmt.Println(" POLM2's STTree finds every path and places the switches automatically)")
	return nil
}
