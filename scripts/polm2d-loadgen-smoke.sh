#!/usr/bin/env bash
# Load-generation smoke test for the polm2d daemon (CI job loadgen-smoke;
# fine to run locally): start the daemon as a real OS process, drive a
# synthetic fleet through cmd/polm2-loadgen over real TCP, and check the
# generator's report — every upload accepted, the daemon's own counters
# consistent, merges coalescing below the upload count.
set -euo pipefail
cd "$(dirname "$0")/.."

fail() { echo "loadgen-smoke: FAIL: $*" >&2; [ -f "${log:-}" ] && cat "$log" >&2; exit 1; }

go build -o /tmp/polm2d-loadgen-smoke-daemon ./cmd/polm2d
go build -o /tmp/polm2d-loadgen-smoke-gen ./cmd/polm2-loadgen

store=$(mktemp -d)
log=$(mktemp)
/tmp/polm2d-loadgen-smoke-daemon -addr 127.0.0.1:0 -store "$store" >"$log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

url=
for _ in $(seq 100); do
  url=$(sed -n 's|^polm2d: serving on \(http://[^ ]*\).*|\1|p' "$log")
  [ -n "$url" ] && break
  sleep 0.1
done
[ -n "$url" ] || fail "daemon never printed its listen address"
echo "daemon up at $url (store $store)"

report=$(/tmp/polm2d-loadgen-smoke-gen -addr "$url" -instances 8 -uploads 4 -sites 12 -seed 42) \
  || fail "polm2-loadgen exited non-zero"
echo "$report"

echo "$report" | grep -q 'uploads:  32 ok, 0 instances failed' \
  || fail "report missing the 32-upload success line"
echo "$report" | grep -q 'daemon:   32 uploads,' \
  || fail "daemon counter line disagrees with the client's upload count"
echo "$report" | grep -q ' 0 rejects, 0 store errors' \
  || fail "daemon reported rejects or store errors"

# Coalescing: merges + coalesced must cover the 32 uploads exactly.
merges=$(echo "$report" | sed -n 's/^daemon: *[0-9]* uploads, \([0-9]*\) merges (\([0-9]*\) coalesced).*/\1 \2/p')
[ -n "$merges" ] || fail "could not parse merge counters from the report"
set -- $merges
[ "$(( $1 + $2 ))" = "32" ] || fail "merges ($1) + coalesced ($2) != 32 uploads"

# The converged plan is fetchable with a stable ETag.
etag=$(curl -s -D - -o /dev/null "$url/v1/plan?app=LoadGen&workload=steady" \
  | tr -d '\r' | sed -n 's/^[Ee][Tt][Aa][Gg]: //p')
[ -n "$etag" ] || fail "converged plan carried no ETag"
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -H "If-None-Match: $etag" "$url/v1/plan?app=LoadGen&workload=steady")
[ "$code" = "304" ] || fail "conditional re-fetch status $code, want 304"

kill -TERM "$pid"
wait "$pid" || fail "daemon exited non-zero after SIGTERM"
grep -q 'shutdown complete' "$log" || fail "daemon did not report a clean shutdown"

echo "loadgen-smoke: PASS"
