#!/usr/bin/env bash
# End-to-end smoke test for the polm2d plan-distribution daemon, run as a
# real OS process over real TCP (CI job polm2d-smoke; fine to run locally).
#
# Scenario: start the daemon on a random port, confirm there is no plan,
# upload profiling evidence from two simulated fleet instances, check the
# re-fetched plan carries the merged evidence and a stable ETag (304 on a
# conditional re-fetch), then shut down cleanly with SIGTERM. A second
# phase restarts against a fresh store with -rollout: the first merged
# plan is adopted as stable (rollout_state 0), a plan-health report lands
# on POST /v1/feedback, and fresh evidence opens a canary (rollout_state 1).
# A third phase boots a replicated pair with -peer pointed at each other:
# each daemon gets one instance's evidence, anti-entropy must carry the
# missing document both ways, and both daemons must publish the same
# merged plan — proven again offline by polm2-inspect sync over the two
# stores.
set -euo pipefail
cd "$(dirname "$0")/.."

fail() { echo "polm2d-smoke: FAIL: $*" >&2; [ -f "${log:-}" ] && cat "$log" >&2; exit 1; }

go build -o /tmp/polm2d-smoke-bin ./cmd/polm2d

store=$(mktemp -d)
log=$(mktemp)
/tmp/polm2d-smoke-bin -addr 127.0.0.1:0 -store "$store" >"$log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

url=
for _ in $(seq 100); do
  url=$(sed -n 's|^polm2d: serving on \(http://[^ ]*\).*|\1|p' "$log")
  [ -n "$url" ] && break
  sleep 0.1
done
[ -n "$url" ] || fail "daemon never printed its listen address"
echo "daemon up at $url (store $store)"

[ "$(curl -s "$url/healthz")" = "ok" ] || fail "healthz did not answer ok"

code=$(curl -s -o /dev/null -w '%{http_code}' "$url/v1/plan?app=Cassandra&workload=WI")
[ "$code" = "404" ] || fail "expected 404 before any evidence, got $code"

# Evidence documents from two instances of the same workload: one shared
# allocation site with different counts, one site unique to each instance.
evidence1='{"app":"Cassandra","workload":"WI","generations":0,"allocs":[],"calls":[],"conflicts":0,
  "sites":[{"trace":"S.serve:1;Memtable.put:10","allocated":100,"buckets":[10,90],"gen":0},
           {"trace":"S.serve:1;Cell.make:4","allocated":40,"buckets":[40],"gen":0}]}'
evidence2='{"app":"Cassandra","workload":"WI","generations":0,"allocs":[],"calls":[],"conflicts":0,
  "sites":[{"trace":"S.serve:1;Memtable.put:10","allocated":50,"buckets":[5,45],"gen":0},
           {"trace":"S.serve:1;Index.flush:9","allocated":30,"buckets":[30],"gen":0}]}'

i=0
for ev in "$evidence1" "$evidence2"; do
  i=$((i + 1))
  code=$(curl -s -o /tmp/polm2d-smoke-merge.json -w '%{http_code}' \
    -H 'Content-Type: application/json' -H "X-Polm2-Instance: smoke-$i" \
    -d "$ev" "$url/v1/evidence")
  [ "$code" = "200" ] || fail "evidence upload status $code: $(cat /tmp/polm2d-smoke-merge.json)"
done

# A replayed upload (same instance id, same body — what a client retry
# after a lost response sends) replaces instance 2's evidence instead of
# double-counting it.
code=$(curl -s -o /tmp/polm2d-smoke-merge.json -w '%{http_code}' \
  -H 'Content-Type: application/json' -H 'X-Polm2-Instance: smoke-2' \
  -d "$evidence2" "$url/v1/evidence")
[ "$code" = "200" ] || fail "replayed upload status $code: $(cat /tmp/polm2d-smoke-merge.json)"

# An upload without an instance id is rejected: the daemon cannot know
# whose evidence to replace.
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Content-Type: application/json' -d "$evidence2" "$url/v1/evidence")
[ "$code" = "400" ] || fail "anonymous upload status $code, want 400"

# The merged plan must sum the shared site's evidence — each instance
# counted exactly once despite the replay — and keep both
# instance-unique sites. The daemon merges asynchronously behind the
# uploads (coalescing pipeline), so poll until the published plan covers
# them rather than asserting on the first fetch.
shared= nsites=
for _ in $(seq 100); do
  curl -s -D /tmp/polm2d-smoke-headers.txt -o /tmp/polm2d-smoke-plan.json \
    "$url/v1/plan?app=Cassandra&workload=WI"
  shared=$(jq '[.sites[] | select(.trace=="S.serve:1;Memtable.put:10") | .allocated] | add' \
    /tmp/polm2d-smoke-plan.json)
  nsites=$(jq '.sites | length' /tmp/polm2d-smoke-plan.json)
  [ "$shared" = "150" ] && [ "$nsites" = "3" ] && break
  sleep 0.1
done
[ "$shared" = "150" ] || fail "shared site evidence $shared, want 100+50=150"
[ "$nsites" = "3" ] || fail "merged plan has $nsites sites, want 3"

etag=$(tr -d '\r' </tmp/polm2d-smoke-headers.txt | sed -n 's/^[Ee][Tt][Aa][Gg]: //p')
[ -n "$etag" ] || fail "plan response carried no ETag"
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -H "If-None-Match: $etag" "$url/v1/plan?app=Cassandra&workload=WI")
[ "$code" = "304" ] || fail "conditional re-fetch status $code, want 304"

# Internally inconsistent evidence (buckets exceed the allocation total)
# must be rejected and must not disturb the stored plan.
bad='{"app":"Cassandra","workload":"WI","generations":0,"allocs":[],"calls":[],"conflicts":0,
  "sites":[{"trace":"S.serve:1;Memtable.put:10","allocated":1,"buckets":[2],"gen":0}]}'
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Content-Type: application/json' -H 'X-Polm2-Instance: smoke-1' \
  -d "$bad" "$url/v1/evidence")
[ "$code" = "400" ] || fail "inconsistent evidence status $code, want 400"
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -H "If-None-Match: $etag" "$url/v1/plan?app=Cassandra&workload=WI")
[ "$code" = "304" ] || fail "rejected upload moved the plan version"

kill -TERM "$pid"
wait "$pid" || fail "daemon exited non-zero after SIGTERM"
grep -q 'shutdown complete' "$log" || fail "daemon did not report a clean shutdown"

# --- canary rollout phase: fresh store, daemon restarted with -rollout ---
store=$(mktemp -d)
log=$(mktemp)
/tmp/polm2d-smoke-bin -addr 127.0.0.1:0 -store "$store" -rollout >"$log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

url=
for _ in $(seq 100); do
  url=$(sed -n 's|^polm2d: serving on \(http://[^ ]*\).*|\1|p' "$log")
  [ -n "$url" ] && break
  sleep 0.1
done
[ -n "$url" ] || fail "rollout daemon never printed its listen address"
grep -q 'canary rollout on' "$log" || fail "daemon did not announce the rollout controller"
echo "rollout daemon up at $url (store $store)"

# First merge on a fresh store is adopted as stable, no canary: the
# labeled state gauge must publish 0 (stable).
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Content-Type: application/json' -H 'X-Polm2-Instance: smoke-1' \
  -d "$evidence1" "$url/v1/evidence")
[ "$code" = "200" ] || fail "rollout-phase upload status $code"
etag=
for _ in $(seq 100); do
  curl -s -D /tmp/polm2d-smoke-headers.txt -o /dev/null \
    "$url/v1/plan?app=Cassandra&workload=WI"
  etag=$(tr -d '\r' </tmp/polm2d-smoke-headers.txt | sed -n 's/^[Ee][Tt][Aa][Gg]: //p')
  [ -n "$etag" ] && break
  sleep 0.1
done
[ -n "$etag" ] || fail "rollout daemon never published the adopted plan"
curl -s "$url/metricsz" | grep -q 'rollout_state{app="Cassandra",workload="WI"} 0' \
  || fail "adopted plan did not publish rollout_state 0 (stable)"

# One plan-health report for a window run under the adopted version; the
# daemon must accept it (204) and count it.
feedback=$(jq -cn --arg etag "$etag" '{app:"Cassandra",workload:"WI",etag:$etag,
  window_start_ns:0,window_end_ns:60000000000,pauses:8,
  pause_p50_ns:6000000,pause_p99_ns:15000000,promotion_rate:0.2,survivor_rate:0.8}')
code=$(curl -s -o /tmp/polm2d-smoke-feedback.txt -w '%{http_code}' \
  -H 'Content-Type: application/json' -H 'X-Polm2-Instance: smoke-1' \
  -d "$feedback" "$url/v1/feedback")
[ "$code" = "204" ] || fail "feedback status $code: $(cat /tmp/polm2d-smoke-feedback.txt)"
curl -s "$url/metricsz" | grep -q '^feedback_reports_total 1' \
  || fail "feedback was not counted in /metricsz"

# Fresh evidence from a second instance changes the merged plan: the new
# version must open a canary (state 1), not install fleet-wide.
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Content-Type: application/json' -H 'X-Polm2-Instance: smoke-2' \
  -d "$evidence2" "$url/v1/evidence")
[ "$code" = "200" ] || fail "canary-opening upload status $code"
state=
for _ in $(seq 100); do
  state=$(curl -s "$url/metricsz" | sed -n 's/^rollout_state{app="Cassandra",workload="WI"} //p')
  [ "$state" = "1" ] && break
  sleep 0.1
done
[ "$state" = "1" ] || fail "new merged plan did not open a canary (rollout_state=$state, want 1)"
curl -s "$url/metricsz" | grep -q '^rollout_canary_total 1' \
  || fail "canary was not counted in /metricsz"

kill -TERM "$pid"
wait "$pid" || fail "rollout daemon exited non-zero after SIGTERM"
grep -q 'shutdown complete' "$log" || fail "rollout daemon did not report a clean shutdown"

# --- replication phase: a pair of daemons pulling each other by anti-entropy ---
storeA=$(mktemp -d); storeB=$(mktemp -d)
logA=$(mktemp); logB=$(mktemp)

await_url() { # logfile -> base URL
  local u=
  for _ in $(seq 100); do
    u=$(sed -n 's|^polm2d: serving on \(http://[^ ]*\).*|\1|p' "$1")
    [ -n "$u" ] && break
    sleep 0.1
  done
  echo "$u"
}

# The pair needs each other's address before either exists: boot A plain
# just to claim a port, then restart it on that fixed port once B (pointed
# at it) is up.
/tmp/polm2d-smoke-bin -addr 127.0.0.1:0 -store "$storeA" >"$logA" 2>&1 &
pidA=$!
trap 'kill "$pidA" 2>/dev/null || true' EXIT
urlA=$(await_url "$logA")
[ -n "$urlA" ] || { log=$logA; fail "daemon A never printed its listen address"; }
addrA=${urlA#http://}
kill -TERM "$pidA"; wait "$pidA" || { log=$logA; fail "daemon A exited non-zero on port probe"; }

/tmp/polm2d-smoke-bin -addr 127.0.0.1:0 -store "$storeB" -id smoke-b \
  -peer "$urlA" -sync-interval 200ms >"$logB" 2>&1 &
pidB=$!
trap 'kill "$pidB" 2>/dev/null || true' EXIT
urlB=$(await_url "$logB")
[ -n "$urlB" ] || { log=$logB; fail "daemon B never printed its listen address"; }

/tmp/polm2d-smoke-bin -addr "$addrA" -store "$storeA" -id smoke-a \
  -peer "$urlB" -sync-interval 200ms >"$logA" 2>&1 &
pidA=$!
trap 'kill "$pidA" "$pidB" 2>/dev/null || true' EXIT
urlA=$(await_url "$logA")
[ -n "$urlA" ] || { log=$logA; fail "daemon A never printed its address after restart"; }
grep -q 'replicating with 1 peer(s) as smoke-a' "$logA" \
  || { log=$logA; fail "daemon A did not announce replication"; }
echo "replicated pair up: A=$urlA B=$urlB"

# One instance's evidence to each daemon: only anti-entropy can build the
# full merged plan on both sides.
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Content-Type: application/json' -H 'X-Polm2-Instance: smoke-1' \
  -d "$evidence1" "$urlA/v1/evidence")
[ "$code" = "200" ] || { log=$logA; fail "replication-phase upload to A status $code"; }
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Content-Type: application/json' -H 'X-Polm2-Instance: smoke-2' \
  -d "$evidence2" "$urlB/v1/evidence")
[ "$code" = "200" ] || { log=$logB; fail "replication-phase upload to B status $code"; }

for url in "$urlA" "$urlB"; do
  shared= nsites=
  for _ in $(seq 150); do
    curl -s -o /tmp/polm2d-smoke-plan.json "$url/v1/plan?app=Cassandra&workload=WI"
    shared=$(jq '[.sites[]? | select(.trace=="S.serve:1;Memtable.put:10") | .allocated] | add' \
      /tmp/polm2d-smoke-plan.json 2>/dev/null)
    nsites=$(jq '.sites | length' /tmp/polm2d-smoke-plan.json 2>/dev/null)
    [ "$shared" = "150" ] && [ "$nsites" = "3" ] && break
    sleep 0.1
  done
  [ "$shared" = "150" ] && [ "$nsites" = "3" ] \
    || { log=$logA; fail "replica $url never converged (shared=$shared nsites=$nsites)"; }
done
curl -s "$urlA/metricsz" | grep -q '^peer_sync_total' \
  || { log=$logA; fail "daemon A exposes no peer sync counters"; }

kill -TERM "$pidA" "$pidB"
wait "$pidA" || { log=$logA; fail "daemon A exited non-zero after SIGTERM"; }
wait "$pidB" || { log=$logB; fail "daemon B exited non-zero after SIGTERM"; }

# Offline proof of convergence: both stores list the same stamped
# evidence documents.
go build -o /tmp/polm2-inspect-smoke-bin ./cmd/polm2-inspect
/tmp/polm2-inspect-smoke-bin sync "$storeA" >/tmp/polm2d-smoke-sync-a.txt \
  || fail "polm2-inspect sync failed on store A"
/tmp/polm2-inspect-smoke-bin sync "$storeB" >/tmp/polm2d-smoke-sync-b.txt \
  || fail "polm2-inspect sync failed on store B"
diff /tmp/polm2d-smoke-sync-a.txt /tmp/polm2d-smoke-sync-b.txt \
  || fail "replica stores diverge after convergence (see diff above)"
grep -q '@smoke-' /tmp/polm2d-smoke-sync-a.txt \
  || fail "converged store carries no replication stamps: $(cat /tmp/polm2d-smoke-sync-a.txt)"

echo "polm2d-smoke: PASS"
