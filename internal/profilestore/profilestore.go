// Package profilestore manages a repository of allocation profiles, one per
// (application, workload) pair — the deployment model §3.5 of the paper
// describes: "it is possible to create multiple allocation profiles for the
// same application, one for each possible workload. Then, whenever the
// application is launched in the production phase, one allocation profile
// can be chosen according to the estimated workload."
package profilestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"polm2/internal/analyzer"
)

// ErrNotFound reports a missing profile.
var ErrNotFound = errors.New("profilestore: profile not found")

// Key identifies one stored profile.
type Key struct {
	App      string
	Workload string
}

func (k Key) String() string { return k.App + "/" + k.Workload }

// Store is an on-disk profile repository. Profiles are stored as the same
// JSON files Profile.Save produces, named <app>__<workload>.profile.json.
type Store struct {
	dir string
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profilestore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// sanitize keeps file names safe for any filesystem.
func sanitize(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, sanitize(k.App)+"__"+sanitize(k.Workload)+".profile.json")
}

// Put stores a profile under its own App/Workload labels, replacing any
// previous version.
func (s *Store) Put(p *analyzer.Profile) error {
	if p.App == "" || p.Workload == "" {
		return fmt.Errorf("profilestore: profile must carry App and Workload labels")
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("profilestore: %w", err)
	}
	return p.Save(s.path(Key{App: p.App, Workload: p.Workload}))
}

// Get loads the profile for the exact (app, workload) pair.
func (s *Store) Get(app, workload string) (*analyzer.Profile, error) {
	p, err := analyzer.LoadProfile(s.path(Key{App: app, Workload: workload}))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, app, workload)
		}
		return nil, err
	}
	return p, nil
}

// Delete removes a stored profile. Deleting a missing profile returns
// ErrNotFound.
func (s *Store) Delete(app, workload string) error {
	err := os.Remove(s.path(Key{App: app, Workload: workload}))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, app, workload)
	}
	return err
}

// List returns the keys of every stored profile, sorted.
func (s *Store) List() ([]Key, error) {
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.profile.json"))
	if err != nil {
		return nil, fmt.Errorf("profilestore: %w", err)
	}
	var keys []Key
	for _, path := range paths {
		p, err := analyzer.LoadProfile(path)
		if err != nil {
			return nil, fmt.Errorf("profilestore: corrupt entry %s: %w", filepath.Base(path), err)
		}
		keys = append(keys, Key{App: p.App, Workload: p.Workload})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys, nil
}

// AuditEntry is one stored file's health as seen by Audit.
type AuditEntry struct {
	// File is the entry's base name.
	File string
	// Key identifies the profile; zero when the entry is corrupt.
	Key Key
	// Err is the load failure, empty for a healthy entry.
	Err string
}

// AuditReport is the result of scanning a store.
type AuditReport struct {
	Entries []AuditEntry
	Corrupt int
}

// Audit loads every stored entry and reports its health instead of failing
// on the first corrupt one. The error is non-nil only when the store
// directory itself cannot be scanned.
func (s *Store) Audit() (*AuditReport, error) {
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.profile.json"))
	if err != nil {
		return nil, fmt.Errorf("profilestore: %w", err)
	}
	sort.Strings(paths)
	rep := &AuditReport{}
	for _, path := range paths {
		e := AuditEntry{File: filepath.Base(path)}
		p, err := analyzer.LoadProfile(path)
		if err != nil {
			e.Err = err.Error()
			rep.Corrupt++
		} else {
			e.Key = Key{App: p.App, Workload: p.Workload}
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}

// Select returns the profile for the estimated workload, falling back to
// the application's only profile when the estimate has none and exactly one
// other is stored (launching with a related profile beats launching
// uninstrumented; §3.5 leaves the selection policy to the operator).
// Corrupt entries are skipped, not fatal: a damaged store degrades to
// whatever healthy profiles remain.
func (s *Store) Select(app, estimatedWorkload string) (*analyzer.Profile, error) {
	p, err := s.Get(app, estimatedWorkload)
	if err == nil {
		return p, nil
	}
	// The exact entry is missing or corrupt: fall back over the healthy
	// remainder.
	audit, auditErr := s.Audit()
	if auditErr != nil {
		return nil, auditErr
	}
	var candidates []Key
	for _, e := range audit.Entries {
		if e.Err == "" && e.Key.App == app {
			candidates = append(candidates, e.Key)
		}
	}
	if len(candidates) == 1 {
		return s.Get(candidates[0].App, candidates[0].Workload)
	}
	if !errors.Is(err, ErrNotFound) {
		// The exact entry exists but is corrupt and no unambiguous
		// fallback remains: surface the corruption.
		return nil, err
	}
	return nil, fmt.Errorf("%w: %s/%s (stored for %s: %d profiles)",
		ErrNotFound, app, estimatedWorkload, app, len(candidates))
}
