// Package profilestore manages a repository of allocation profiles, one per
// (application, workload) pair — the deployment model §3.5 of the paper
// describes: "it is possible to create multiple allocation profiles for the
// same application, one for each possible workload. Then, whenever the
// application is launched in the production phase, one allocation profile
// can be chosen according to the estimated workload."
//
// A Store is safe for concurrent use: the plan-distribution daemon
// (internal/planserver) fronts one store with many goroutines. Writes stage
// under a temporary name and rename into place, so readers never observe a
// half-written profile even across processes.
package profilestore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"polm2/internal/analyzer"
	"polm2/internal/faultio"
)

// ErrNotFound reports a missing profile.
var ErrNotFound = errors.New("profilestore: profile not found")

// Key identifies one stored profile.
type Key struct {
	App      string
	Workload string
}

func (k Key) String() string { return k.App + "/" + k.Workload }

// Store is an on-disk profile repository. Profiles are stored as the same
// JSON files Profile.Save produces, named
// <app>__<workload>-<hash>.profile.json, where <hash> fingerprints the raw
// key so two keys that sanitize to the same text cannot overwrite each
// other. Legacy entries without the hash suffix keep loading forever.
type Store struct {
	dir string

	mu sync.Mutex
	// fault optionally interposes on the staging writes (polm2d -faults);
	// nil writes straight through.
	fault *faultio.Injector
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profilestore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetFault interposes an I/O fault injector on the store's staging writes.
// A nil injector (the default) writes straight through.
func (s *Store) SetFault(in *faultio.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = in
}

// sanitize keeps file names safe for any filesystem.
func sanitize(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// keyHash fingerprints the raw (unsanitized) key, so keys that sanitize to
// the same text — "app v1" and "app_v1" — still map to distinct files.
func keyHash(k Key) string {
	h := fnv.New32a()
	h.Write([]byte(k.App))
	h.Write([]byte{0})
	h.Write([]byte(k.Workload))
	return fmt.Sprintf("%08x", h.Sum32())
}

func (s *Store) path(k Key) string {
	name := sanitize(k.App) + "__" + sanitize(k.Workload) + "-" + keyHash(k) + ".profile.json"
	return filepath.Join(s.dir, name)
}

// legacyPath is the pre-hash file name, kept readable for stores written by
// older builds.
func (s *Store) legacyPath(k Key) string {
	return filepath.Join(s.dir, sanitize(k.App)+"__"+sanitize(k.Workload)+".profile.json")
}

// Put stores a profile under its own App/Workload labels, replacing any
// previous version.
func (s *Store) Put(p *analyzer.Profile) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(p)
}

func (s *Store) putLocked(p *analyzer.Profile) error {
	if p.App == "" || p.Workload == "" {
		return fmt.Errorf("profilestore: profile must carry App and Workload labels")
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("profilestore: %w", err)
	}
	k := Key{App: p.App, Workload: p.Workload}
	if err := s.writeProfile(p, s.path(k)); err != nil {
		return err
	}
	// Retire this key's legacy-named file so the store holds one entry per
	// key. A colliding legacy file that belongs to a *different* raw key
	// is left alone — that other key's data is not ours to delete.
	legacy := s.legacyPath(k)
	if old, err := analyzer.LoadProfile(legacy); err == nil && old.App == k.App && old.Workload == k.Workload {
		os.Remove(legacy)
	}
	return nil
}

// writeProfile stages the JSON under a temporary name (through the fault
// injector, when one is set) and renames it into place.
func (s *Store) writeProfile(p *analyzer.Profile, path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("profilestore: encoding profile: %w", err)
	}
	return s.writeFile(data, path)
}

// writeFile stages data under a temporary name (through the fault
// injector, when one is set) and renames it into place.
func (s *Store) writeFile(data []byte, path string) error {
	data = append(data, '\n')
	tmp := path + ".tmp"
	var err error
	var w io.WriteCloser
	if s.fault != nil {
		w, err = s.fault.Create(tmp)
	} else {
		w, err = os.Create(tmp)
	}
	if err != nil {
		return fmt.Errorf("profilestore: staging profile: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("profilestore: writing profile: %w", err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("profilestore: closing profile: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		if s.fault != nil && errors.Is(err, fs.ErrNotExist) {
			// The injected fault swallowed the staging file wholesale (a
			// crash or missing-file fault): per the fault model the writing
			// process never observes its own lost write, so report success
			// and leave the previous version in place.
			return nil
		}
		return fmt.Errorf("profilestore: publishing profile: %w", err)
	}
	return nil
}

// Get loads the profile for the exact (app, workload) pair.
func (s *Store) Get(app, workload string) (*analyzer.Profile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(app, workload)
}

func (s *Store) getLocked(app, workload string) (*analyzer.Profile, error) {
	k := Key{App: app, Workload: workload}
	p, err := analyzer.LoadProfile(s.path(k))
	if errors.Is(err, os.ErrNotExist) {
		// Fall back to the legacy (pre-hash) name — but only trust it when
		// its labels match the requested raw key: a collision-victim file
		// holds some other key's profile.
		p, err = analyzer.LoadProfile(s.legacyPath(k))
		if err == nil && (p.App != app || p.Workload != workload) {
			return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, app, workload)
		}
	}
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, app, workload)
		}
		return nil, err
	}
	return p, nil
}

// Delete removes a stored profile. Deleting a missing profile returns
// ErrNotFound.
func (s *Store) Delete(app, workload string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := Key{App: app, Workload: workload}
	err := os.Remove(s.path(k))
	if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	legacy := s.legacyPath(k)
	if p, lerr := analyzer.LoadProfile(legacy); lerr == nil && p.App == app && p.Workload == workload {
		return os.Remove(legacy)
	}
	return fmt.Errorf("%w: %s/%s", ErrNotFound, app, workload)
}

// List returns the keys of every stored profile, sorted.
func (s *Store) List() ([]Key, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.profile.json"))
	if err != nil {
		return nil, fmt.Errorf("profilestore: %w", err)
	}
	seen := make(map[Key]bool)
	var keys []Key
	for _, path := range paths {
		p, err := analyzer.LoadProfile(path)
		if err != nil {
			return nil, fmt.Errorf("profilestore: corrupt entry %s: %w", filepath.Base(path), err)
		}
		k := Key{App: p.App, Workload: p.Workload}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys, nil
}

// AuditEntry is one stored file's health as seen by Audit.
type AuditEntry struct {
	// File is the entry's base name.
	File string
	// Key identifies the profile; zero when the entry is corrupt.
	Key Key
	// Err is the load failure, empty for a healthy entry.
	Err string
}

// AuditReport is the result of scanning a store.
type AuditReport struct {
	Entries []AuditEntry
	Corrupt int
}

// Audit loads every stored entry and reports its health instead of failing
// on the first corrupt one. The error is non-nil only when the store
// directory itself cannot be scanned.
func (s *Store) Audit() (*AuditReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.auditLocked()
}

func (s *Store) auditLocked() (*AuditReport, error) {
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.profile.json"))
	if err != nil {
		return nil, fmt.Errorf("profilestore: %w", err)
	}
	sort.Strings(paths)
	rep := &AuditReport{}
	for _, path := range paths {
		e := AuditEntry{File: filepath.Base(path)}
		p, err := analyzer.LoadProfile(path)
		if err != nil {
			e.Err = err.Error()
			rep.Corrupt++
		} else {
			e.Key = Key{App: p.App, Workload: p.Workload}
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}

// evidenceEntry is the on-disk form of one instance's evidence: the
// uploaded profile plus the instance id it replaces-per, which the
// sanitized file name cannot carry losslessly. Stamp is the replication
// version (see stamp.go); nil on documents written before replication
// existed, which decode as the zero Stamp and lose every tiebreak.
type evidenceEntry struct {
	Instance string            `json:"instance"`
	Stamp    *Stamp            `json:"stamp,omitempty"`
	Profile  *analyzer.Profile `json:"profile"`
}

// evidenceDir holds per-instance evidence, separate from the merged
// plans so *.profile.json globs (List, Audit, polm2-inspect) see only
// plans.
func (s *Store) evidenceDir() string { return filepath.Join(s.dir, "evidence") }

// evidenceHash fingerprints the raw (app, workload, instance) triple so
// triples that sanitize identically still map to distinct files.
func evidenceHash(k Key, instance string) string {
	h := fnv.New32a()
	h.Write([]byte(k.App))
	h.Write([]byte{0})
	h.Write([]byte(k.Workload))
	h.Write([]byte{0})
	h.Write([]byte(instance))
	return fmt.Sprintf("%08x", h.Sum32())
}

// evidenceKeyPrefix is the file-name prefix shared by every evidence
// document of one (app, workload): the sanitized labels plus the raw-key
// fingerprint, so the key can be matched exactly from names alone —
// EvidenceInstances lists and counts a fleet without decoding a single
// document. sanitize never emits glob metacharacters, so the prefix is
// safe to embed in a pattern.
func evidenceKeyPrefix(k Key) string {
	return sanitize(k.App) + "__" + sanitize(k.Workload) + "-" + keyHash(k) + "__"
}

func (s *Store) evidencePath(k Key, instance string) string {
	name := evidenceKeyPrefix(k) + sanitize(instance) + "-" + evidenceHash(k, instance) + ".evidence.json"
	return filepath.Join(s.evidenceDir(), name)
}

// legacyEvidencePath is the pre-keyhash evidence name (no key fingerprint
// between the workload and instance segments), kept readable for stores
// written by older builds and retired on the next PutEvidence.
func (s *Store) legacyEvidencePath(k Key, instance string) string {
	name := sanitize(k.App) + "__" + sanitize(k.Workload) + "__" + sanitize(instance) +
		"-" + evidenceHash(k, instance) + ".evidence.json"
	return filepath.Join(s.evidenceDir(), name)
}

// PutEvidence stores one instance's latest evidence for the profile's
// (App, Workload), replacing that instance's previous upload — the
// last-write-wins-per-instance model that keeps fleet aggregation
// idempotent under cumulative re-uploads and retried requests.
func (s *Store) PutEvidence(instance string, p *analyzer.Profile) error {
	return s.putEvidence(instance, nil, p)
}

func (s *Store) putEvidence(instance string, stamp *Stamp, p *analyzer.Profile) error {
	if instance == "" {
		return fmt.Errorf("profilestore: evidence must carry an instance id")
	}
	if p.App == "" || p.Workload == "" {
		return fmt.Errorf("profilestore: evidence must carry App and Workload labels")
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("profilestore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.evidenceDir(), 0o755); err != nil {
		return fmt.Errorf("profilestore: %w", err)
	}
	data, err := json.MarshalIndent(evidenceEntry{Instance: instance, Stamp: stamp, Profile: p}, "", "  ")
	if err != nil {
		return fmt.Errorf("profilestore: encoding evidence: %w", err)
	}
	k := Key{App: p.App, Workload: p.Workload}
	if err := s.writeFile(data, s.evidencePath(k, instance)); err != nil {
		return err
	}
	// Retire this triple's legacy-named file so the store holds one entry
	// per (key, instance). A colliding legacy file that belongs to a
	// different raw triple is left alone — that other triple's data is not
	// ours to delete.
	legacy := s.legacyEvidencePath(k, instance)
	if data, err := os.ReadFile(legacy); err == nil {
		var e evidenceEntry
		if json.Unmarshal(data, &e) == nil && e.Instance == instance &&
			e.Profile != nil && e.Profile.App == k.App && e.Profile.Workload == k.Workload {
			os.Remove(legacy)
		}
	}
	return nil
}

// EvidenceInstances lists the instances holding evidence for (app,
// workload) without decoding any document: modern evidence names embed
// the raw-key fingerprint, so both the key match and the instance segment
// come straight from the file names. The returned names are the sanitized
// display forms (file-name-safe, not necessarily the raw ids); callers
// that need the raw ids decode via Evidence. Legacy-named files (written
// before the key fingerprint existed) cannot be attributed by name alone
// and fall back to a decode, one per legacy file — a population that only
// shrinks, since PutEvidence rewrites and retires them.
func (s *Store) EvidenceInstances(app, workload string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := Key{App: app, Workload: workload}
	prefix := evidenceKeyPrefix(k)
	paths, err := filepath.Glob(filepath.Join(s.evidenceDir(), prefix+"*.evidence.json"))
	if err != nil {
		return nil, fmt.Errorf("profilestore: %w", err)
	}
	seen := make(map[string]bool, len(paths))
	names := make([]string, 0, len(paths))
	for _, path := range paths {
		base := filepath.Base(path)
		name := strings.TrimSuffix(base[len(prefix):], ".evidence.json")
		if i := strings.LastIndexByte(name, '-'); i >= 0 {
			name = name[:i] // drop the triple fingerprint
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	// Legacy-named files: match by decoded labels, then dedupe against the
	// modern entries through the same sanitized lens.
	legacy, err := filepath.Glob(filepath.Join(s.evidenceDir(),
		sanitize(app)+"__"+sanitize(workload)+"__*.evidence.json"))
	if err != nil {
		return nil, fmt.Errorf("profilestore: %w", err)
	}
	for _, path := range legacy {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("profilestore: reading evidence: %w", err)
		}
		var e evidenceEntry
		if json.Unmarshal(data, &e) != nil || e.Profile == nil {
			continue // corrupt entries are Audit's business, not a count's
		}
		if e.Profile.App != app || e.Profile.Workload != workload {
			continue
		}
		name := sanitize(e.Instance)
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Evidence loads every instance's latest evidence for (app, workload),
// keyed by instance id. A key with no evidence returns an empty map.
func (s *Store) Evidence(app, workload string) (map[string]*analyzer.Profile, error) {
	docs, err := s.EvidenceDocs(app, workload)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*analyzer.Profile, len(docs))
	for instance, d := range docs {
		out[instance] = d.Profile
	}
	return out, nil
}

// evidenceAllLocked scans every evidence document, validating each, and
// groups the latest per (key, instance).
func (s *Store) evidenceAllLocked() (map[Key]map[string]EvidenceDoc, error) {
	paths, err := filepath.Glob(filepath.Join(s.evidenceDir(), "*.evidence.json"))
	if err != nil {
		return nil, fmt.Errorf("profilestore: %w", err)
	}
	out := make(map[Key]map[string]EvidenceDoc)
	modern := make(map[Key]map[string]bool)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("profilestore: reading evidence: %w", err)
		}
		var e evidenceEntry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("profilestore: corrupt evidence %s: %w", filepath.Base(path), err)
		}
		if e.Instance == "" || e.Profile == nil {
			return nil, fmt.Errorf("profilestore: corrupt evidence %s: missing instance or profile", filepath.Base(path))
		}
		if err := e.Profile.Validate(); err != nil {
			return nil, fmt.Errorf("profilestore: corrupt evidence %s: %w", filepath.Base(path), err)
		}
		k := Key{App: e.Profile.App, Workload: e.Profile.Workload}
		// A crash between PutEvidence's write and its legacy retirement can
		// leave both names on disk; the modern (key-fingerprinted) file is
		// the newer write and must win regardless of glob order.
		isModern := path == s.evidencePath(k, e.Instance)
		if modern[k][e.Instance] && !isModern {
			continue
		}
		if out[k] == nil {
			out[k] = make(map[string]EvidenceDoc)
			modern[k] = make(map[string]bool)
		}
		modern[k][e.Instance] = isModern
		var st Stamp
		if e.Stamp != nil {
			st = *e.Stamp
		}
		out[k][e.Instance] = EvidenceDoc{Profile: e.Profile, Stamp: st}
	}
	return out, nil
}

// rolloutPath names the rollout-controller document for one key. The
// suffix keeps it out of every *.profile.json glob.
func (s *Store) rolloutPath(k Key) string {
	name := sanitize(k.App) + "__" + sanitize(k.Workload) + "-" + keyHash(k) + ".rollout.json"
	return filepath.Join(s.dir, name)
}

// PutRollout stores the canary-rollout controller document for (app,
// workload) — an opaque JSON payload owned by the planserver — through the
// same staged-write-then-rename path as profiles, fault injector included,
// so a crash mid-write leaves the previous document intact.
func (s *Store) PutRollout(app, workload string, doc []byte) error {
	if app == "" || workload == "" {
		return fmt.Errorf("profilestore: rollout document must carry app and workload")
	}
	if !json.Valid(doc) {
		return fmt.Errorf("profilestore: rollout document is not valid JSON")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeFile(bytes.TrimRight(doc, "\n"), s.rolloutPath(Key{App: app, Workload: workload}))
}

// Rollout loads the rollout document for (app, workload); ErrNotFound when
// none has been stored.
func (s *Store) Rollout(app, workload string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.rolloutPath(Key{App: app, Workload: workload}))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: rollout state for %s/%s", ErrNotFound, app, workload)
	}
	if err != nil {
		return nil, fmt.Errorf("profilestore: reading rollout state: %w", err)
	}
	return data, nil
}

// Select returns the profile for the estimated workload, falling back to
// the application's only profile when the estimate has none and exactly one
// other is stored (launching with a related profile beats launching
// uninstrumented; §3.5 leaves the selection policy to the operator).
// Corrupt entries are skipped, not fatal: a damaged store degrades to
// whatever healthy profiles remain.
func (s *Store) Select(app, estimatedWorkload string) (*analyzer.Profile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.getLocked(app, estimatedWorkload)
	if err == nil {
		return p, nil
	}
	// The exact entry is missing or corrupt: fall back over the healthy
	// remainder.
	audit, auditErr := s.auditLocked()
	if auditErr != nil {
		return nil, auditErr
	}
	seen := make(map[Key]bool)
	var candidates []Key
	for _, e := range audit.Entries {
		if e.Err == "" && e.Key.App == app && !seen[e.Key] {
			seen[e.Key] = true
			candidates = append(candidates, e.Key)
		}
	}
	if len(candidates) == 1 {
		return s.getLocked(candidates[0].App, candidates[0].Workload)
	}
	if !errors.Is(err, ErrNotFound) {
		// The exact entry exists but is corrupt and no unambiguous
		// fallback remains: surface the corruption.
		return nil, err
	}
	return nil, fmt.Errorf("%w: %s/%s (stored for %s: %d profiles)",
		ErrNotFound, app, estimatedWorkload, app, len(candidates))
}
