// Evidence stamps: the logical version carried by every replicated
// evidence document. Each accepted upload advances the owning daemon's
// per-(key, instance) sequence, so a stamp totally orders the writes one
// daemon accepted; across daemons the origin id breaks ties
// deterministically, which is what makes last-write-wins anti-entropy
// (planserver GET /v1/sync) commutative — peers can apply the same set of
// documents in any order and converge to the same winner per instance.
package profilestore

import (
	"fmt"
	"sort"

	"polm2/internal/analyzer"
)

// Stamp is the logical version of one evidence document. The zero Stamp
// marks a legacy (pre-replication) document and orders before every
// stamped write.
type Stamp struct {
	// Seq is the daemon-assigned sequence. Every accepted direct upload
	// strictly advances it past the previous document's stamp, so the
	// sequence alone orders all writes a single daemon accepted.
	Seq uint64 `json:"seq"`
	// Origin is the accepting daemon's id, breaking cross-daemon ties
	// lexicographically. Empty for a single (unreplicated) daemon.
	Origin string `json:"origin"`
}

// IsZero reports whether the stamp is the legacy zero value.
func (st Stamp) IsZero() bool { return st.Seq == 0 && st.Origin == "" }

// Less orders stamps by sequence, then origin — the total order the
// last-write-wins merge resolves conflicts with.
func (st Stamp) Less(other Stamp) bool {
	if st.Seq != other.Seq {
		return st.Seq < other.Seq
	}
	return st.Origin < other.Origin
}

// String renders the stamp as seq@origin, the wire and display form.
func (st Stamp) String() string { return fmt.Sprintf("%d@%s", st.Seq, st.Origin) }

// EvidenceDoc is one instance's stored evidence with its stamp: what the
// sync digest advertises and what a peer pulls.
type EvidenceDoc struct {
	Profile *analyzer.Profile
	Stamp   Stamp
}

// PutEvidenceStamped stores one instance's evidence together with its
// replication stamp. PutEvidence is the unstamped (legacy) form.
func (s *Store) PutEvidenceStamped(instance string, stamp Stamp, p *analyzer.Profile) error {
	var st *Stamp
	if !stamp.IsZero() {
		st = &stamp
	}
	return s.putEvidence(instance, st, p)
}

// EvidenceDocs loads every instance's latest evidence for (app, workload)
// with stamps, keyed by instance id. Documents written before replication
// existed carry the zero stamp.
func (s *Store) EvidenceDocs(app, workload string) (map[string]EvidenceDoc, error) {
	all, err := s.EvidenceAll()
	if err != nil {
		return nil, err
	}
	docs := all[Key{App: app, Workload: workload}]
	if docs == nil {
		docs = make(map[string]EvidenceDoc)
	}
	return docs, nil
}

// EvidenceAll scans the whole evidence directory and returns every stored
// document grouped by key — the cold-restart seed for the sync digest,
// which must advertise keys the daemon has not served since boot.
func (s *Store) EvidenceAll() (map[Key]map[string]EvidenceDoc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evidenceAllLocked()
}

// EvidenceKeys lists every key with at least one evidence document,
// sorted — the deterministic iteration order for digests and inspectors.
func (s *Store) EvidenceKeys() ([]Key, error) {
	all, err := s.EvidenceAll()
	if err != nil {
		return nil, err
	}
	keys := make([]Key, 0, len(all))
	for k := range all {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys, nil
}
