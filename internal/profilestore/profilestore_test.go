package profilestore

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"sync"
	"testing"

	"polm2/internal/analyzer"
	"polm2/internal/faultio"
)

func sampleProfile(app, workload string) *analyzer.Profile {
	return &analyzer.Profile{
		App:         app,
		Workload:    workload,
		Generations: 2,
		Allocs: []analyzer.AllocDirective{
			{Loc: "A.m:1", Gen: 2, Direct: true},
		},
		Calls: []analyzer.CallDirective{{Loc: "B.n:2", Gen: 1}},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleProfile("Cassandra", "WI")
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("Cassandra", "WI")
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "Cassandra" || got.Workload != "WI" || len(got.Allocs) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestPutRequiresLabels(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := sampleProfile("", "")
	if err := s.Put(p); err == nil {
		t.Fatal("unlabeled profile accepted")
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("Cassandra", "WI"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing profile error = %v, want ErrNotFound", err)
	}
}

func TestListAndDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{{"Cassandra", "WI"}, {"Cassandra", "RI"}, {"Lucene", "default"}} {
		if err := s.Put(sampleProfile(k.App, k.Workload)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("List = %v", keys)
	}
	if keys[0].String() != "Cassandra/RI" {
		t.Fatalf("List not sorted: %v", keys)
	}
	if err := s.Delete("Cassandra", "WI"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("Cassandra", "WI"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete error = %v", err)
	}
	keys, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("after delete List = %v", keys)
	}
}

func TestSelectExactAndFallback(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(sampleProfile("Cassandra", "WI")); err != nil {
		t.Fatal(err)
	}
	// Exact hit.
	p, err := s.Select("Cassandra", "WI")
	if err != nil || p.Workload != "WI" {
		t.Fatalf("Select exact = %+v, %v", p, err)
	}
	// Single-profile fallback.
	p, err = s.Select("Cassandra", "RI")
	if err != nil || p.Workload != "WI" {
		t.Fatalf("Select fallback = %+v, %v", p, err)
	}
	// Ambiguous fallback fails.
	if err := s.Put(sampleProfile("Cassandra", "WR")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Cassandra", "RI"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ambiguous Select error = %v", err)
	}
	// Unknown app fails.
	if _, err := s.Select("HBase", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown app Select error = %v", err)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a/b c*d"); got != "a_b_c_d" {
		t.Fatalf("sanitize = %q", got)
	}
}

// TestSanitizeCollisionKeepsBothKeys is the regression test for the silent
// overwrite bug: "app v1" and "app_v1" sanitize to the same text, and the
// pre-hash naming mapped both to one file.
func TestSanitizeCollisionKeepsBothKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := sampleProfile("app v1", "WI")
	b := sampleProfile("app_v1", "WI")
	a.Generations, b.Generations = 2, 1
	a.Calls, b.Calls = nil, nil
	a.Allocs = []analyzer.AllocDirective{{Loc: "A.m:1", Gen: 2, Direct: true}}
	b.Allocs = []analyzer.AllocDirective{{Loc: "B.n:2", Gen: 1, Direct: true}}
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	gotA, err := s.Get("app v1", "WI")
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := s.Get("app_v1", "WI")
	if err != nil {
		t.Fatal(err)
	}
	if gotA.App != "app v1" || gotA.Generations != 2 {
		t.Fatalf("first colliding key overwritten: %+v", gotA)
	}
	if gotB.App != "app_v1" || gotB.Generations != 1 {
		t.Fatalf("second colliding key wrong: %+v", gotB)
	}
	keys, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("List after colliding Puts = %v, want both keys", keys)
	}
}

// TestLegacyNameKeepsLoading checks stores written by pre-hash builds stay
// readable: Get falls back to the unhashed file name, and a Put under the
// same key retires the legacy file.
func TestLegacyNameKeepsLoading(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	legacy := sampleProfile("Cassandra", "WI")
	if err := legacy.Save(s.legacyPath(Key{App: "Cassandra", Workload: "WI"})); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("Cassandra", "WI")
	if err != nil || got.App != "Cassandra" {
		t.Fatalf("legacy Get = %+v, %v", got, err)
	}
	if p, err := s.Select("Cassandra", "WI"); err != nil || p.Workload != "WI" {
		t.Fatalf("legacy Select = %+v, %v", p, err)
	}
	// A fresh Put migrates the entry to the hashed name.
	if err := s.Put(sampleProfile("Cassandra", "WI")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.legacyPath(Key{App: "Cassandra", Workload: "WI"})); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy file survived migration: %v", err)
	}
	if _, err := s.Get("Cassandra", "WI"); err != nil {
		t.Fatal(err)
	}
	// Deleting a legacy-only entry works too.
	if err := legacy.Save(s.legacyPath(Key{App: "Lucene", Workload: "default"})); err != nil {
		t.Fatal(err)
	}
	// (The file carries Cassandra/WI labels, so deleting Lucene/default
	// must refuse: the legacy file is not that key's profile.)
	if err := s.Delete("Lucene", "default"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete of mislabeled legacy file = %v, want ErrNotFound", err)
	}
}

// TestConcurrentPutGet exercises the store's mutex under the race detector:
// many goroutines writing and reading disjoint and overlapping keys.
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	workloads := []string{"WI", "WR", "RI"}
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := workloads[i%len(workloads)]
			for j := 0; j < 20; j++ {
				if err := s.Put(sampleProfile("Cassandra", w)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get("Cassandra", w); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.List(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	keys, err := s.List()
	if err != nil || len(keys) != len(workloads) {
		t.Fatalf("List = %v, %v", keys, err)
	}
}

// TestFaultedWriteKeepsPreviousVersion checks the injected-fault write
// path: a write whose staging file never reaches the directory reports
// success (the fault model's silent loss) and leaves the previous version
// intact.
func TestFaultedWriteKeepsPreviousVersion(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := sampleProfile("Cassandra", "WI")
	if err := s.Put(first); err != nil {
		t.Fatal(err)
	}
	plan, err := faultio.ParseSpec("missing:*.profile.json")
	if err != nil {
		t.Fatal(err)
	}
	s.SetFault(faultio.New(plan))
	second := sampleProfile("Cassandra", "WI")
	second.Generations = 3
	second.Allocs = []analyzer.AllocDirective{{Loc: "A.m:1", Gen: 3, Direct: true}}
	second.Calls = nil
	if err := s.Put(second); err != nil {
		t.Fatalf("faulted Put surfaced an error the process could not observe: %v", err)
	}
	s.SetFault(nil)
	got, err := s.Get("Cassandra", "WI")
	if err != nil {
		t.Fatal(err)
	}
	if got.Generations != 2 {
		t.Fatalf("faulted write half-applied: generations = %d, want the previous 2", got.Generations)
	}
}

// TestEvidenceRoundTripAndReplace: per-instance evidence is keyed by
// (app, workload, instance); a re-upload replaces that instance's entry,
// other keys and instances are untouched, and List/Audit (which feed the
// plan-serving paths and polm2-inspect) never see evidence files.
func TestEvidenceRoundTripAndReplace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(app, workload string, allocated uint64) *analyzer.Profile {
		return &analyzer.Profile{App: app, Workload: workload, Sites: []analyzer.SiteStat{
			{Trace: "A.m:1", Allocated: allocated, Buckets: []uint64{allocated}},
		}}
	}
	if err := s.PutEvidence("inst-1", mk("Cassandra", "WI", 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEvidence("inst-2", mk("Cassandra", "WI", 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEvidence("inst-1", mk("Cassandra", "WR", 7)); err != nil {
		t.Fatal(err)
	}
	// Replacement: inst-1's second WI upload supersedes its first.
	if err := s.PutEvidence("inst-1", mk("Cassandra", "WI", 300)); err != nil {
		t.Fatal(err)
	}
	ev, err := s.Evidence("Cassandra", "WI")
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 || ev["inst-1"].Sites[0].Allocated != 300 || ev["inst-2"].Sites[0].Allocated != 50 {
		t.Fatalf("WI evidence = %+v, want inst-1:300 (replaced) and inst-2:50", ev)
	}
	other, err := s.Evidence("Cassandra", "WR")
	if err != nil {
		t.Fatal(err)
	}
	if len(other) != 1 || other["inst-1"].Sites[0].Allocated != 7 {
		t.Fatalf("WR evidence = %+v, want only inst-1:7", other)
	}
	if none, err := s.Evidence("Lucene", "WI"); err != nil || len(none) != 0 {
		t.Fatalf("unknown key evidence = %+v, %v, want empty", none, err)
	}
	// Evidence must not masquerade as stored plans.
	keys, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("List sees evidence entries as plans: %v", keys)
	}
	if _, err := s.Get("Cassandra", "WI"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get found a plan where only evidence exists: %v", err)
	}
}

// TestEvidenceInstanceSanitizeCollision: instance ids that sanitize to
// the same file name ("a b" vs "a_b") must stay distinct entries, the
// same FNV-suffix guarantee the plan files have.
func TestEvidenceInstanceSanitizeCollision(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(allocated uint64) *analyzer.Profile {
		return &analyzer.Profile{App: "A", Workload: "W", Sites: []analyzer.SiteStat{
			{Trace: "A.m:1", Allocated: allocated, Buckets: []uint64{allocated}},
		}}
	}
	if err := s.PutEvidence("a b", mk(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEvidence("a_b", mk(2)); err != nil {
		t.Fatal(err)
	}
	ev, err := s.Evidence("A", "W")
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 || ev["a b"].Sites[0].Allocated != 1 || ev["a_b"].Sites[0].Allocated != 2 {
		t.Fatalf("colliding instance ids merged on disk: %+v", ev)
	}
}

// TestPutEvidenceValidates: unlabeled or anonymous evidence is refused.
func TestPutEvidenceValidates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := sampleProfile("Cassandra", "WI")
	if err := s.PutEvidence("", p); err == nil {
		t.Fatal("empty instance id accepted")
	}
	if err := s.PutEvidence("inst-1", &analyzer.Profile{Workload: "WI"}); err == nil {
		t.Fatal("unlabeled evidence accepted")
	}
}

// TestEvidenceInstances: the names-only listing matches the decoded
// evidence set per key without reading any document — modern file names
// embed the key fingerprint, so cross-key bleed (same sanitized labels,
// different raw labels) is impossible.
func TestEvidenceInstances(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, put := range []struct{ app, workload, instance string }{
		{"Cassandra", "WI", "inst-2"},
		{"Cassandra", "WI", "inst-1"},
		{"Cassandra", "WI", "we ird/id"},
		{"Cassandra", "RO", "inst-1"},
		{"Lucene", "WI", "inst-9"},
	} {
		if err := s.PutEvidence(put.instance, sampleProfile(put.app, put.workload)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.EvidenceInstances("Cassandra", "WI")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"inst-1", "inst-2", sanitize("we ird/id")}
	if len(names) != len(want) {
		t.Fatalf("EvidenceInstances = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("EvidenceInstances = %v, want %v (sorted, sanitized)", names, want)
		}
	}
	// A re-upload replaces; the listing must not grow.
	if err := s.PutEvidence("inst-1", sampleProfile("Cassandra", "WI")); err != nil {
		t.Fatal(err)
	}
	names, err = s.EvidenceInstances("Cassandra", "WI")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("after re-upload EvidenceInstances = %v, want 3 entries", names)
	}
	// An unknown key lists empty, not an error.
	names, err = s.EvidenceInstances("Nope", "W")
	if err != nil || len(names) != 0 {
		t.Fatalf("unknown key = %v, %v, want empty", names, err)
	}
}

// TestEvidenceLegacyNameMigration: evidence written under the pre-
// fingerprint file name keeps loading and listing, and the next
// PutEvidence for the same (key, instance) rewrites it under the modern
// name and retires the legacy file.
func TestEvidenceLegacyNameMigration(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{App: "Cassandra", Workload: "WI"}
	old := sampleProfile("Cassandra", "WI")
	data, err := json.MarshalIndent(evidenceEntry{Instance: "inst-1", Profile: old}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(s.evidenceDir(), 0o755); err != nil {
		t.Fatal(err)
	}
	legacy := s.legacyEvidencePath(k, "inst-1")
	if err := os.WriteFile(legacy, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Legacy-only: both the decode and the names-only listing see it.
	ev, err := s.Evidence("Cassandra", "WI")
	if err != nil || len(ev) != 1 || ev["inst-1"] == nil {
		t.Fatalf("legacy evidence load = %v, %v", ev, err)
	}
	names, err := s.EvidenceInstances("Cassandra", "WI")
	if err != nil || len(names) != 1 || names[0] != "inst-1" {
		t.Fatalf("legacy EvidenceInstances = %v, %v", names, err)
	}

	// Rewrite through PutEvidence: the modern name appears, the legacy
	// file is retired, and the entry still counts exactly once.
	fresh := sampleProfile("Cassandra", "WI")
	fresh.Generations = 3
	if err := s.PutEvidence("inst-1", fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(legacy); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy evidence file not retired: %v", err)
	}
	ev, err = s.Evidence("Cassandra", "WI")
	if err != nil || len(ev) != 1 {
		t.Fatalf("post-migration evidence = %v, %v", ev, err)
	}
	if ev["inst-1"].Generations != 3 {
		t.Fatalf("post-migration evidence Generations = %d, want the rewritten 3", ev["inst-1"].Generations)
	}
}

// TestEvidenceModernWinsOverLegacyLeftover: a crash between PutEvidence's
// modern write and its legacy retirement leaves both names on disk; the
// modern file is the newer write and must win whatever order the
// directory lists in.
func TestEvidenceModernWinsOverLegacyLeftover(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{App: "Cassandra", Workload: "WI"}
	fresh := sampleProfile("Cassandra", "WI")
	fresh.Generations = 3
	if err := s.PutEvidence("inst-1", fresh); err != nil {
		t.Fatal(err)
	}
	stale := sampleProfile("Cassandra", "WI")
	data, err := json.MarshalIndent(evidenceEntry{Instance: "inst-1", Profile: stale}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.legacyEvidencePath(k, "inst-1"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	ev, err := s.Evidence("Cassandra", "WI")
	if err != nil || len(ev) != 1 {
		t.Fatalf("crash-window evidence = %v, %v", ev, err)
	}
	if ev["inst-1"].Generations != 3 {
		t.Fatalf("crash-window evidence Generations = %d, want the modern file's 3", ev["inst-1"].Generations)
	}
	if names, err := s.EvidenceInstances("Cassandra", "WI"); err != nil || len(names) != 1 {
		t.Fatalf("crash-window EvidenceInstances = %v, %v, want one deduped entry", names, err)
	}
}

// Rollout documents ride the same atomic-rename path as profiles: they
// round-trip byte-for-byte, stay invisible to *.profile.json consumers
// (List), and a missing document reports ErrNotFound.
func TestRolloutDocRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rollout("Cassandra", "WI"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing rollout doc: err = %v, want ErrNotFound", err)
	}
	doc := []byte(`{"state":"canary","stable_etag":"aa"}`)
	if err := s.PutRollout("Cassandra", "WI", doc); err != nil {
		t.Fatal(err)
	}
	got, err := s.Rollout("Cassandra", "WI")
	if err != nil {
		t.Fatal(err)
	}
	if string(bytes.TrimRight(got, "\n")) != string(doc) {
		t.Fatalf("rollout doc = %q, want %q", got, doc)
	}
	// Distinct keys get distinct documents.
	if err := s.PutRollout("Cassandra", "RI", []byte(`{"state":"stable"}`)); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Rollout("Cassandra", "WI"); !bytes.Contains(got, []byte("canary")) {
		t.Fatalf("WI doc clobbered by RI write: %q", got)
	}
	// The doc never surfaces as a profile.
	if keys, err := s.List(); err != nil || len(keys) != 0 {
		t.Fatalf("List sees rollout docs: %v, %v", keys, err)
	}
	// Garbage in, error out.
	if err := s.PutRollout("Cassandra", "WI", []byte("{not json")); err == nil {
		t.Fatalf("invalid JSON accepted as rollout doc")
	}
	if err := s.PutRollout("", "WI", doc); err == nil {
		t.Fatalf("empty app accepted for rollout doc")
	}
}
