package profilestore

import (
	"errors"
	"testing"

	"polm2/internal/analyzer"
)

func sampleProfile(app, workload string) *analyzer.Profile {
	return &analyzer.Profile{
		App:         app,
		Workload:    workload,
		Generations: 2,
		Allocs: []analyzer.AllocDirective{
			{Loc: "A.m:1", Gen: 2, Direct: true},
		},
		Calls: []analyzer.CallDirective{{Loc: "B.n:2", Gen: 1}},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleProfile("Cassandra", "WI")
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("Cassandra", "WI")
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "Cassandra" || got.Workload != "WI" || len(got.Allocs) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestPutRequiresLabels(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := sampleProfile("", "")
	if err := s.Put(p); err == nil {
		t.Fatal("unlabeled profile accepted")
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("Cassandra", "WI"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing profile error = %v, want ErrNotFound", err)
	}
}

func TestListAndDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{{"Cassandra", "WI"}, {"Cassandra", "RI"}, {"Lucene", "default"}} {
		if err := s.Put(sampleProfile(k.App, k.Workload)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("List = %v", keys)
	}
	if keys[0].String() != "Cassandra/RI" {
		t.Fatalf("List not sorted: %v", keys)
	}
	if err := s.Delete("Cassandra", "WI"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("Cassandra", "WI"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete error = %v", err)
	}
	keys, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("after delete List = %v", keys)
	}
}

func TestSelectExactAndFallback(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(sampleProfile("Cassandra", "WI")); err != nil {
		t.Fatal(err)
	}
	// Exact hit.
	p, err := s.Select("Cassandra", "WI")
	if err != nil || p.Workload != "WI" {
		t.Fatalf("Select exact = %+v, %v", p, err)
	}
	// Single-profile fallback.
	p, err = s.Select("Cassandra", "RI")
	if err != nil || p.Workload != "WI" {
		t.Fatalf("Select fallback = %+v, %v", p, err)
	}
	// Ambiguous fallback fails.
	if err := s.Put(sampleProfile("Cassandra", "WR")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Cassandra", "RI"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ambiguous Select error = %v", err)
	}
	// Unknown app fails.
	if _, err := s.Select("HBase", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown app Select error = %v", err)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a/b c*d"); got != "a_b_c_d" {
		t.Fatalf("sanitize = %q", got)
	}
}
