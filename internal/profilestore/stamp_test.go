package profilestore

import (
	"bytes"
	"os"
	"sort"
	"testing"

	"polm2/internal/analyzer"
)

func evProfile(app, workload string, n uint64) *analyzer.Profile {
	return &analyzer.Profile{
		App: app, Workload: workload, Generations: 1,
		Sites: []analyzer.SiteStat{
			{Trace: "App.serve:1;Worker.tick:9", Allocated: n, Buckets: []uint64{n}, Gen: 1},
		},
	}
}

func TestStampOrder(t *testing.T) {
	cases := []struct {
		a, b Stamp
		less bool
	}{
		{Stamp{}, Stamp{Seq: 1}, true},                                         // zero loses to any write
		{Stamp{Seq: 1, Origin: "b"}, Stamp{Seq: 2, Origin: "a"}, true},         // seq dominates origin
		{Stamp{Seq: 3, Origin: "a"}, Stamp{Seq: 3, Origin: "b"}, true},         // origin breaks ties
		{Stamp{Seq: 3, Origin: "b"}, Stamp{Seq: 3, Origin: "a"}, false},        // ...in one direction only
		{Stamp{Seq: 5, Origin: "x"}, Stamp{Seq: 5, Origin: "x"}, false},        // irreflexive
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Stamp{}).IsZero() || (Stamp{Seq: 1}).IsZero() || (Stamp{Origin: "d"}).IsZero() {
		t.Error("IsZero misclassifies")
	}
	if got := (Stamp{Seq: 7, Origin: "daemon-1"}).String(); got != "7@daemon-1" {
		t.Errorf("String() = %q", got)
	}
}

func TestPutEvidenceStampedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := Stamp{Seq: 3, Origin: "daemon-0"}
	if err := s.PutEvidenceStamped("inst-1", st, evProfile("App", "w", 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutEvidence("inst-2", evProfile("App", "w", 20)); err != nil {
		t.Fatal(err)
	}
	docs, err := s.EvidenceDocs("App", "w")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("EvidenceDocs returned %d docs, want 2", len(docs))
	}
	if got := docs["inst-1"].Stamp; got != st {
		t.Errorf("stamped doc round-tripped stamp %v, want %v", got, st)
	}
	if got := docs["inst-2"].Stamp; !got.IsZero() {
		t.Errorf("unstamped doc carries stamp %v, want zero", got)
	}
	// The unstamped write must not serialize a stamp field at all: the
	// on-disk bytes of a replication-off daemon's store are unchanged.
	raw, err := os.ReadFile(s.evidencePath(Key{App: "App", Workload: "w"}, "inst-2"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"stamp"`)) {
		t.Errorf("unstamped evidence file contains a stamp field:\n%s", raw)
	}
	// Evidence (the unstamped view) still sees both.
	ev, err := s.Evidence("App", "w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 || ev["inst-1"].Sites[0].Allocated != 10 {
		t.Fatalf("Evidence view inconsistent: %v", ev)
	}
}

// TestPutEvidenceStampedZeroStamp proves the zero stamp is treated as
// "legacy": PutEvidenceStamped with a zero stamp writes the same document
// PutEvidence would.
func TestPutEvidenceStampedZeroStamp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutEvidenceStamped("inst-1", Stamp{}, evProfile("App", "w", 5)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.evidencePath(Key{App: "App", Workload: "w"}, "inst-1"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"stamp"`)) {
		t.Errorf("zero-stamp evidence file contains a stamp field:\n%s", raw)
	}
}

func TestEvidenceAllGroupsByKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Before any evidence: empty map, no error; EvidenceDocs empty non-nil.
	all, err := s.EvidenceAll()
	if err != nil || len(all) != 0 {
		t.Fatalf("empty store EvidenceAll = %v, %v", all, err)
	}
	docs, err := s.EvidenceDocs("App0", "w")
	if err != nil || docs == nil || len(docs) != 0 {
		t.Fatalf("empty store EvidenceDocs = %v, %v", docs, err)
	}
	puts := []struct {
		app, inst string
		seq       uint64
	}{
		{"App0", "inst-0", 1},
		{"App0", "inst-2", 2},
		{"App1", "inst-1", 1},
		{"App1", "inst-0", 4}, // same instance id under a second key
	}
	for _, p := range puts {
		st := Stamp{Seq: p.seq, Origin: "daemon-0"}
		if err := s.PutEvidenceStamped(p.inst, st, evProfile(p.app, "w", p.seq*10)); err != nil {
			t.Fatal(err)
		}
	}
	all, err = s.EvidenceAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("EvidenceAll holds %d keys, want 2", len(all))
	}
	k0 := Key{App: "App0", Workload: "w"}
	k1 := Key{App: "App1", Workload: "w"}
	if len(all[k0]) != 2 || len(all[k1]) != 2 {
		t.Fatalf("per-key doc counts = %d/%d, want 2/2", len(all[k0]), len(all[k1]))
	}
	if got := all[k1]["inst-0"].Stamp.Seq; got != 4 {
		t.Errorf("inst-0 under App1 has seq %d, want 4 (cross-key collision?)", got)
	}
	if got := all[k0]["inst-0"].Stamp.Seq; got != 1 {
		t.Errorf("inst-0 under App0 has seq %d, want 1", got)
	}
	keys, err := s.EvidenceKeys()
	if err != nil {
		t.Fatal(err)
	}
	want := []Key{k0, k1}
	if len(keys) != 2 || keys[0] != want[0] || keys[1] != want[1] {
		t.Errorf("EvidenceKeys = %v, want %v", keys, want)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() }) {
		t.Error("EvidenceKeys not sorted")
	}
}
