package profilestore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// corrupt overwrites the stored file for (app, workload) with broken JSON.
func corrupt(t *testing.T, s *Store, app, workload string) string {
	t.Helper()
	path := s.path(Key{App: app, Workload: workload})
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry to corrupt is missing: %v", err)
	}
	if err := os.WriteFile(path, []byte(`{"app":"Cassandra","generations":`), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Base(path)
}

// TestAuditFlagsCorruptEntry checks Audit scans past damage: the corrupt
// file is reported with its load error while healthy entries keep their
// keys, and the scan itself never fails.
func TestAuditFlagsCorruptEntry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"WI", "RW", "RI"} {
		if err := s.Put(sampleProfile("Cassandra", w)); err != nil {
			t.Fatal(err)
		}
	}
	victim := corrupt(t, s, "Cassandra", "RW")

	rep, err := s.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || len(rep.Entries) != 3 {
		t.Fatalf("audit = %+v, want 3 entries with 1 corrupt", rep)
	}
	for _, e := range rep.Entries {
		if e.File == victim {
			if e.Err == "" {
				t.Fatalf("corrupt entry reported healthy: %+v", e)
			}
			if e.Key != (Key{}) {
				t.Fatalf("corrupt entry carries a key: %+v", e)
			}
			continue
		}
		if e.Err != "" || e.Key.App != "Cassandra" {
			t.Fatalf("healthy entry misreported: %+v", e)
		}
	}
}

// TestAuditCleanStore pins the no-damage baseline.
func TestAuditCleanStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(sampleProfile("Lucene", "default")); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 || len(rep.Entries) != 1 || rep.Entries[0].Err != "" {
		t.Fatalf("clean store audit = %+v", rep)
	}
}

// TestGetCorruptSurfacesError checks Get does not mask corruption as
// absence: the load error comes back, not ErrNotFound.
func TestGetCorruptSurfacesError(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(sampleProfile("Cassandra", "WI")); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, "Cassandra", "WI")
	_, err = s.Get("Cassandra", "WI")
	if err == nil {
		t.Fatal("corrupt profile loaded")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("corruption reported as absence: %v", err)
	}
}

// TestSelectSkipsCorruptEntry checks the fallback policy under damage: when
// the requested workload's entry is corrupt but exactly one healthy profile
// remains for the app, Select degrades to it instead of failing.
func TestSelectSkipsCorruptEntry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"WI", "RW"} {
		if err := s.Put(sampleProfile("Cassandra", w)); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated app must not participate in the fallback.
	if err := s.Put(sampleProfile("GraphChi", "pagerank")); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, "Cassandra", "RW")

	got, err := s.Select("Cassandra", "RW")
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "Cassandra" || got.Workload != "WI" {
		t.Fatalf("fallback chose %s/%s, want Cassandra/WI", got.App, got.Workload)
	}
}

// TestSelectCorruptNoFallbackFails checks corruption is surfaced, not
// hidden, when no unambiguous healthy fallback exists.
func TestSelectCorruptNoFallbackFails(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"WI", "RW", "RI"} {
		if err := s.Put(sampleProfile("Cassandra", w)); err != nil {
			t.Fatal(err)
		}
	}
	corrupt(t, s, "Cassandra", "RI")

	_, err = s.Select("Cassandra", "RI")
	if err == nil {
		t.Fatal("corrupt entry selected despite two ambiguous fallbacks")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("corruption reported as absence: %v", err)
	}
}
