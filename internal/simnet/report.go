package simnet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/faultio"
	"polm2/internal/fleetclient"
	"polm2/internal/metrics"
	"polm2/internal/profilestore"
	"polm2/internal/trace"
)

// This file is layer three of the simulator: the invariant checker. Its
// evidence is the transport's delivery log — what the network actually
// handed the daemon, faults and all — replayed through an independent
// fleet-merge model (the same analyzer fold the daemon uses, driven from
// the log rather than from daemon state). Everything the daemon claims —
// counters, gauges, plan versions, plan content — is checked against that
// model after the fleet has quiesced.

// KeyReport summarizes one (app, workload) key's outcome.
type KeyReport struct {
	Key profilestore.Key
	// DistinctInstances counts instances whose evidence was delivered at
	// least once; Uploads counts accepted upload deliveries (duplicates
	// and stale redeliveries included — each is an upload the daemon
	// accepted).
	DistinctInstances, Uploads int
	// ETag is the daemon's final plan version as the fleet observed it;
	// ExpectedETag is the checker's independent merge of the delivery
	// log. The convergence invariant requires them equal.
	ETag, ExpectedETag string
	// Converged counts this key's instances whose final poll installed
	// ExpectedETag; Members is the key's fleet share.
	Converged, Members int
}

// Report is one run's outcome: scenario parameters, traffic and fault
// accounting, per-key convergence, and every invariant violation found.
type Report struct {
	Seed      int64
	FaultSpec string // effective plan, "seed=" pinned, for replay
	Instances int
	KeyCount  int
	Rounds    int

	SimTime    time.Duration
	Events     int
	Deliveries int
	Net        netStats

	Uploads, Merges, Coalesced, Rejected, StoreErrs uint64
	// TaintedDelivered is the largest tainted total carried by any
	// single accepted upload — proof the run exercised degradation when
	// the scenario meant to.
	TaintedDelivered uint64

	PerKey     []KeyReport
	Violations []string
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Log renders the deterministic invariant log: a fixed-order, fully
// seeded-content summary. Two runs of one seed must produce identical
// bytes — the replay test diffs this string, and the seed sweep prints it
// on failure as the reproduction recipe.
func (r *Report) Log() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simnet: seed=%d instances=%d keys=%d rounds=%d faults=%q\n",
		r.Seed, r.Instances, r.KeyCount, r.Rounds, r.FaultSpec)
	fmt.Fprintf(&b, "time=%s events=%d deliveries=%d refused=%d dropped=%d dup=%d stale=%d delayed=%d err5xx=%d\n",
		r.SimTime, r.Events, r.Deliveries, r.Net.Refused, r.Net.Dropped, r.Net.Dup, r.Net.Stale, r.Net.Delayed, r.Net.Err5xx)
	fmt.Fprintf(&b, "uploads=%d merges=%d coalesced=%d rejected=%d store_errors=%d tainted_max=%d\n",
		r.Uploads, r.Merges, r.Coalesced, r.Rejected, r.StoreErrs, r.TaintedDelivered)
	for _, k := range r.PerKey {
		fmt.Fprintf(&b, "key %s: instances=%d uploads=%d converged=%d/%d etag=%s expected=%s\n",
			k.Key, k.DistinctInstances, k.Uploads, k.Converged, k.Members,
			shortETag(k.ETag), shortETag(k.ExpectedETag))
	}
	if len(r.Violations) == 0 {
		b.WriteString("invariants: ok\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// shortETag abbreviates a content-addressed tag for the log.
func shortETag(etag string) string {
	s := strings.Trim(etag, `"`)
	if len(s) > 12 {
		s = s[:12]
	}
	if s == "" {
		s = "-"
	}
	return s
}

// violate records one invariant violation.
func (s *sim) violate(r *Report, format string, args ...any) {
	v := fmt.Sprintf(format, args...)
	r.Violations = append(r.Violations, v)
	if s.tracer.Enabled() {
		s.tracer.Event("simnet", "invariant", trace.Bool("ok", false), trace.String("detail", v))
	}
}

// report evaluates every invariant against the delivery log and the
// daemon's own accounting.
func (s *sim) report(plan *faultio.NetPlan) *Report {
	r := &Report{
		Seed:       s.cfg.Seed,
		FaultSpec:  plan.String(),
		Instances:  s.cfg.Instances,
		KeyCount:   s.cfg.Keys,
		Rounds:     s.cfg.Rounds,
		SimTime:    s.clock.Now(),
		Events:     s.events,
		Deliveries: len(s.net.deliveries),
		Net:        s.net.stats,
	}
	reg := s.srv.Metrics()
	r.Uploads = reg.Counter("evidence_upload_total").Value()
	r.Merges = reg.Counter("evidence_merge_total").Value()
	r.Coalesced = reg.Counter("evidence_coalesced_total").Value()
	r.Rejected = reg.Counter("evidence_reject_total").Value()
	r.StoreErrs = reg.Counter("store_error_total").Value()

	model := s.checkDeliveries(r)
	s.checkCounters(r, model)
	s.checkKeys(r, model)

	if s.tracer.Enabled() && len(r.Violations) == 0 {
		s.tracer.Event("simnet", "invariant", trace.Bool("ok", true))
	}
	return r
}

// deliveredModel is the checker's reconstruction of the fleet state from
// the delivery log: each instance's latest accepted evidence per key, in
// delivery order — exactly the last-write-wins fold the daemon promises.
type deliveredModel struct {
	evidence map[profilestore.Key]map[string]*analyzer.Profile
	uploads  map[profilestore.Key]int
	keys     []profilestore.Key
}

// checkDeliveries walks the log once: it builds the model, enforces the
// per-delivery invariants (content-address honesty; duplicate deliveries
// answered identically — the observable face of idempotent replay), and
// enforces per-key ETag monotonicity (a published version, once replaced,
// never comes back).
func (s *sim) checkDeliveries(r *Report) *deliveredModel {
	m := &deliveredModel{
		evidence: make(map[profilestore.Key]map[string]*analyzer.Profile),
		uploads:  make(map[profilestore.Key]int),
	}
	current := make(map[profilestore.Key]string)
	abandoned := make(map[profilestore.Key]map[string]bool)
	for i, d := range s.net.deliveries {
		if !d.etagHonest {
			s.violate(r, "content addressing: delivery %d (%s %s) body does not hash to its ETag %s",
				i, d.instance, d.op, d.etag)
		}
		if d.dup && i > 0 {
			prev := s.net.deliveries[i-1]
			if prev.status != d.status || prev.etag != d.etag {
				s.violate(r, "idempotent replay: duplicate delivery %d of %s %s answered (%d, %s), original (%d, %s)",
					i, d.instance, d.op, d.status, shortETag(d.etag), prev.status, shortETag(prev.etag))
			}
		}
		if d.etag != "" && (d.status == http.StatusOK || d.status == http.StatusNotModified) {
			cur, ok := current[d.key]
			if !ok || cur != d.etag {
				if abandoned[d.key][d.etag] {
					s.violate(r, "etag monotonicity: key %s revisited abandoned version %s at delivery %d",
						d.key, shortETag(d.etag), i)
				}
				if ok {
					if abandoned[d.key] == nil {
						abandoned[d.key] = make(map[string]bool)
					}
					abandoned[d.key][cur] = true
				}
				current[d.key] = d.etag
			}
		}
		if d.op == "upload" && d.status == http.StatusOK && d.evidence != nil {
			ev := m.evidence[d.key]
			if ev == nil {
				ev = make(map[string]*analyzer.Profile)
				m.evidence[d.key] = ev
				m.keys = append(m.keys, d.key)
			}
			ev[d.instance] = d.evidence
			m.uploads[d.key]++
			var tainted uint64
			for _, site := range d.evidence.Sites {
				tainted += site.Tainted
			}
			if tainted > r.TaintedDelivered {
				r.TaintedDelivered = tainted
			}
		}
	}
	sort.Slice(m.keys, func(i, j int) bool { return m.keys[i].String() < m.keys[j].String() })
	return m
}

// checkCounters reconciles the daemon's accounting with the delivery log:
// every accepted delivery is counted exactly once as an upload, every
// upload is covered by exactly one merge or coalesced into one, and a
// fault plan made of delivery faults (not corruption) rejects nothing and
// breaks no store.
func (s *sim) checkCounters(r *Report, m *deliveredModel) {
	var delivered int
	for _, n := range m.uploads {
		delivered += n
	}
	if int(r.Uploads) != delivered {
		s.violate(r, "counter accounting: evidence_upload_total=%d, delivery log has %d accepted uploads",
			r.Uploads, delivered)
	}
	if r.Uploads != r.Merges+r.Coalesced {
		s.violate(r, "counter accounting: uploads=%d != merges=%d + coalesced=%d",
			r.Uploads, r.Merges, r.Coalesced)
	}
	if r.Rejected != 0 {
		s.violate(r, "counter accounting: %d uploads rejected on a fault plan that never corrupts payloads", r.Rejected)
	}
	if r.StoreErrs != 0 {
		s.violate(r, "counter accounting: %d store/merge errors on a healthy store", r.StoreErrs)
	}
}

// checkKeys evaluates the per-key invariants: the daemon's final plan is
// byte-equal (via content-addressed version) to the checker's independent
// merge of delivered evidence, every instance of the key converged to it,
// its evidence_instances gauge matches the distinct uploaders, and no
// degradation outlived the tainted evidence that caused it.
func (s *sim) checkKeys(r *Report, m *deliveredModel) {
	members := make(map[profilestore.Key][]*instance)
	for _, in := range s.instances {
		members[in.key] = append(members[in.key], in)
	}
	for _, key := range m.keys {
		kr := KeyReport{Key: key, Uploads: m.uploads[key], Members: len(members[key])}
		ev := m.evidence[key]
		kr.DistinctInstances = len(ev)

		ids := make([]string, 0, len(ev))
		for id := range ev {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		inputs := make([]*analyzer.Profile, 0, len(ids))
		for _, id := range ids {
			inputs = append(inputs, ev[id])
		}
		expected, err := analyzer.MergeProfiles(analyzer.Options{App: key.App, Workload: key.Workload}, inputs...)
		if err != nil {
			s.violate(r, "model merge for key %s failed: %v", key, err)
			r.PerKey = append(r.PerKey, kr)
			continue
		}
		kr.ExpectedETag, err = etagOf(expected)
		if err != nil {
			s.violate(r, "model encode for key %s failed: %v", key, err)
			r.PerKey = append(r.PerKey, kr)
			continue
		}

		gauge := s.srv.Metrics().Gauge(metrics.LabelName("evidence_instances",
			metrics.Label{Key: "app", Value: key.App},
			metrics.Label{Key: "workload", Value: key.Workload}))
		if got := gauge.Value(); got != int64(len(ev)) {
			s.violate(r, "gauge accounting: evidence_instances for %s = %d, delivery log has %d distinct uploaders",
				key, got, len(ev))
		}

		var modelTainted uint64
		for _, p := range inputs {
			for _, site := range p.Sites {
				modelTainted += site.Tainted
			}
		}
		for _, in := range members[key] {
			if in.finalErr != nil {
				s.violate(r, "convergence: %s final poll failed on a quiet network: %v", in.id, in.finalErr)
				continue
			}
			if in.finalOutcome != fleetclient.OutcomeFresh && in.finalOutcome != fleetclient.OutcomeNotModified {
				s.violate(r, "convergence: %s final poll outcome %s, want a daemon-served plan", in.id, in.finalOutcome)
				continue
			}
			if in.finalETag != kr.ExpectedETag {
				s.violate(r, "convergence: %s installed %s, fleet merge of delivered evidence is %s",
					in.id, shortETag(in.finalETag), shortETag(kr.ExpectedETag))
				continue
			}
			kr.Converged++
			if kr.ETag == "" {
				kr.ETag = in.finalETag
				// No sticky degradation: tainted counts are pure sums
				// under the merge, so the published plan must carry
				// exactly what the delivered evidence carries — in
				// particular, zero once every instance's latest upload
				// is clean again.
				var planTainted uint64
				for _, site := range in.finalPlan.Sites {
					planTainted += site.Tainted
				}
				if planTainted != modelTainted {
					s.violate(r, "sticky degradation: key %s plan carries tainted=%d, delivered evidence sums to %d",
						key, planTainted, modelTainted)
				}
			}
		}
		r.PerKey = append(r.PerKey, kr)
	}

	// Keys that never had evidence delivered must answer no-plan to
	// their instances — a daemon inventing a plan out of probes would
	// surface here.
	for key, ins := range members {
		if m.evidence[key] != nil {
			continue
		}
		for _, in := range ins {
			if in.finalErr != nil || in.finalOutcome != fleetclient.OutcomeNoPlan {
				s.violate(r, "convergence: %s got outcome %s for key %s with no delivered evidence, want no-plan",
					in.id, outcomeString(in.finalOutcome, in.finalErr), key)
			}
		}
	}
}

// etagOf computes the content-addressed version the daemon would assign a
// plan: SHA-256 over the canonical JSON body, newline-terminated — the
// same derivation planserver's encoder uses, reproduced here so the
// checker never asks the daemon to version its own expectation.
func etagOf(p *analyzer.Profile) (string, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("simnet: encoding expected plan: %w", err)
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	return fmt.Sprintf("%q", fmt.Sprintf("%x", sum)), nil
}
