package simnet

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/faultio"
	"polm2/internal/fleetclient"
	"polm2/internal/metrics"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
	"polm2/internal/trace"
)

// This file is layer three of the simulator: the invariant checker. Its
// evidence is the transport's delivery log — what the network actually
// handed the daemon, faults and all — replayed through an independent
// fleet-merge model (the same analyzer fold the daemon uses, driven from
// the log rather than from daemon state). Everything the daemon claims —
// counters, gauges, plan versions, plan content — is checked against that
// model after the fleet has quiesced.

// KeyReport summarizes one (app, workload) key's outcome.
type KeyReport struct {
	Key profilestore.Key
	// DistinctInstances counts instances whose evidence was delivered at
	// least once; Uploads counts accepted upload deliveries (duplicates
	// and stale redeliveries included — each is an upload the daemon
	// accepted).
	DistinctInstances, Uploads int
	// ETag is the daemon's final plan version as the fleet observed it;
	// ExpectedETag is the checker's independent merge of the delivery
	// log. The convergence invariant requires them equal.
	ETag, ExpectedETag string
	// Converged counts this key's instances whose final poll installed
	// ExpectedETag; Members is the key's fleet share.
	Converged, Members int
}

// Report is one run's outcome: scenario parameters, traffic and fault
// accounting, per-key convergence, and every invariant violation found.
type Report struct {
	Seed      int64
	FaultSpec string // effective plan, "seed=" pinned, for replay
	Instances int
	KeyCount  int
	Rounds    int

	SimTime    time.Duration
	Events     int
	Deliveries int
	Net        netStats

	Uploads, Merges, Coalesced, Rejected, StoreErrs uint64
	// TaintedDelivered is the largest tainted total carried by any
	// single accepted upload — proof the run exercised degradation when
	// the scenario meant to.
	TaintedDelivered uint64

	// Replication accounting, populated on multi-daemon runs: the daemon
	// count and the anti-entropy counters summed across daemons.
	Daemons                                  int
	PeerSyncs, PeerSyncErrs, PeerDocsApplied uint64

	// Rollout-mode accounting, populated when the run enabled the canary
	// controller: the daemon's feedback and decision counters plus the
	// per-key controller end state.
	RolloutEnabled                            bool
	Feedback, Canaries, Promotions, Rollbacks uint64
	Rollout                                   []RolloutKeyReport

	PerKey     []KeyReport
	Violations []string
}

// RolloutKeyReport is one key's rollout controller end state — one row
// per daemon on a replicated run.
type RolloutKeyReport struct {
	Key profilestore.Key
	// Daemon names the replica this row reports; "" on single-daemon
	// runs, which keeps their logs byte-identical.
	Daemon      string
	State       string
	StableETag  string
	Quarantined int
	Promotions  uint64
	Rollbacks   uint64
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Log renders the deterministic invariant log: a fixed-order, fully
// seeded-content summary. Two runs of one seed must produce identical
// bytes — the replay test diffs this string, and the seed sweep prints it
// on failure as the reproduction recipe.
func (r *Report) Log() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simnet: seed=%d instances=%d keys=%d rounds=%d faults=%q\n",
		r.Seed, r.Instances, r.KeyCount, r.Rounds, r.FaultSpec)
	fmt.Fprintf(&b, "time=%s events=%d deliveries=%d refused=%d dropped=%d dup=%d stale=%d delayed=%d err5xx=%d\n",
		r.SimTime, r.Events, r.Deliveries, r.Net.Refused, r.Net.Dropped, r.Net.Dup, r.Net.Stale, r.Net.Delayed, r.Net.Err5xx)
	fmt.Fprintf(&b, "uploads=%d merges=%d coalesced=%d rejected=%d store_errors=%d tainted_max=%d\n",
		r.Uploads, r.Merges, r.Coalesced, r.Rejected, r.StoreErrs, r.TaintedDelivered)
	if r.Daemons > 1 {
		fmt.Fprintf(&b, "replication: daemons=%d syncs=%d sync_errors=%d docs_applied=%d\n",
			r.Daemons, r.PeerSyncs, r.PeerSyncErrs, r.PeerDocsApplied)
	}
	for _, k := range r.PerKey {
		fmt.Fprintf(&b, "key %s: instances=%d uploads=%d converged=%d/%d etag=%s expected=%s\n",
			k.Key, k.DistinctInstances, k.Uploads, k.Converged, k.Members,
			shortETag(k.ETag), shortETag(k.ExpectedETag))
	}
	if r.RolloutEnabled {
		fmt.Fprintf(&b, "rollout: feedback=%d canaries=%d promotions=%d rollbacks=%d\n",
			r.Feedback, r.Canaries, r.Promotions, r.Rollbacks)
		for _, k := range r.Rollout {
			name := k.Key.String()
			if k.Daemon != "" {
				name += "@" + k.Daemon
			}
			fmt.Fprintf(&b, "rollout key %s: state=%s stable=%s quarantined=%d promotions=%d rollbacks=%d\n",
				name, k.State, shortETag(k.StableETag), k.Quarantined, k.Promotions, k.Rollbacks)
		}
	}
	if len(r.Violations) == 0 {
		b.WriteString("invariants: ok\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// shortETag abbreviates a content-addressed tag for the log.
func shortETag(etag string) string {
	s := strings.Trim(etag, `"`)
	if len(s) > 12 {
		s = s[:12]
	}
	if s == "" {
		s = "-"
	}
	return s
}

// violate records one invariant violation.
func (s *sim) violate(r *Report, format string, args ...any) {
	v := fmt.Sprintf(format, args...)
	r.Violations = append(r.Violations, v)
	if s.tracer.Enabled() {
		s.tracer.Event("simnet", "invariant", trace.Bool("ok", false), trace.String("detail", v))
	}
}

// report evaluates every invariant against the delivery log and the
// daemon's own accounting.
func (s *sim) report(plan *faultio.NetPlan) *Report {
	r := &Report{
		Seed:       s.cfg.Seed,
		FaultSpec:  plan.String(),
		Instances:  s.cfg.Instances,
		KeyCount:   s.cfg.Keys,
		Rounds:     s.cfg.Rounds,
		SimTime:    s.clock.Now(),
		Events:     s.events,
		Deliveries: len(s.net.deliveries),
		Net:        s.net.stats,
	}
	r.RolloutEnabled = s.cfg.Rollout != nil
	r.Daemons = s.cfg.Daemons
	for _, srv := range s.srvs {
		reg := srv.Metrics()
		r.Uploads += reg.Counter("evidence_upload_total").Value()
		r.Merges += reg.Counter("evidence_merge_total").Value()
		r.Coalesced += reg.Counter("evidence_coalesced_total").Value()
		r.Rejected += reg.Counter("evidence_reject_total").Value()
		r.StoreErrs += reg.Counter("store_error_total").Value()
		if r.RolloutEnabled {
			r.Feedback += reg.Counter("feedback_reports_total").Value()
			r.Canaries += reg.Counter("rollout_canary_total").Value()
			r.Promotions += reg.Counter("rollout_promotions_total").Value()
			r.Rollbacks += reg.Counter("rollout_rollbacks_total").Value()
		}
		if s.cfg.Daemons > 1 {
			r.PeerSyncs += reg.Counter("peer_sync_total").Value()
			r.PeerSyncErrs += reg.Counter("peer_sync_error_total").Value()
			r.PeerDocsApplied += reg.Counter("peer_docs_applied_total").Value()
		}
	}

	model := s.checkDeliveries(r)
	s.checkCounters(r, model)
	if s.cfg.Daemons > 1 {
		s.checkMulti(r, model)
	} else {
		s.checkKeys(r, model)
		if r.RolloutEnabled {
			s.checkRollout(r, model)
		}
	}

	if s.tracer.Enabled() && len(r.Violations) == 0 {
		s.tracer.Event("simnet", "invariant", trace.Bool("ok", true))
	}
	return r
}

// deliveredModel is the checker's reconstruction of the fleet state from
// the delivery log: each instance's latest accepted evidence per key, in
// delivery order — exactly the last-write-wins fold the daemon promises.
type deliveredModel struct {
	evidence map[profilestore.Key]map[string]*analyzer.Profile
	uploads  map[profilestore.Key]int
	keys     []profilestore.Key
}

// checkDeliveries walks the log once: it builds the model, enforces the
// per-delivery invariants (content-address honesty; duplicate deliveries
// answered identically — the observable face of idempotent replay), and
// enforces per-key ETag monotonicity (a published version, once replaced,
// never comes back).
func (s *sim) checkDeliveries(r *Report) *deliveredModel {
	m := &deliveredModel{
		evidence: make(map[profilestore.Key]map[string]*analyzer.Profile),
		uploads:  make(map[profilestore.Key]int),
	}
	// Version histories are per daemon: replicas converge through sync but
	// never promise lockstep publication. On a single-daemon run the
	// daemon component is the constant "polm2d", so the keying is
	// identical to the historical per-key check.
	type daemonKey struct {
		daemon string
		key    profilestore.Key
	}
	current := make(map[daemonKey]string)
	abandoned := make(map[daemonKey]map[string]bool)
	// In a replicated run one instance's uploads can land on different
	// daemons (failover), and duplicate redeliveries advance the receiving
	// daemon's sequence past the client's — so the fleet-wide winner for
	// an instance's evidence is decided by the daemons' own contract, the
	// highest stamp, not by delivery-log order.
	var best map[profilestore.Key]map[string]profilestore.Stamp
	if s.cfg.Daemons > 1 {
		best = make(map[profilestore.Key]map[string]profilestore.Stamp)
	}
	for i, d := range s.net.deliveries {
		if !d.etagHonest {
			s.violate(r, "content addressing: delivery %d (%s %s) body does not hash to its ETag %s",
				i, d.instance, d.op, d.etag)
		}
		if d.dup && i > 0 {
			prev := s.net.deliveries[i-1]
			if prev.status != d.status || prev.etag != d.etag {
				s.violate(r, "idempotent replay: duplicate delivery %d of %s %s answered (%d, %s), original (%d, %s)",
					i, d.instance, d.op, d.status, shortETag(d.etag), prev.status, shortETag(prev.etag))
			}
		}
		// ETag monotonicity is a non-rollout invariant: with the canary
		// controller on, cohort and baseline instances legitimately
		// observe different versions at once, and a rollback returns the
		// fleet to an earlier version by design. Rollout runs get the
		// containment and convergence checks (checkRollout) instead.
		if s.cfg.Rollout == nil && d.etag != "" && (d.status == http.StatusOK || d.status == http.StatusNotModified) {
			dk := daemonKey{d.daemon, d.key}
			cur, ok := current[dk]
			if !ok || cur != d.etag {
				if abandoned[dk][d.etag] {
					s.violate(r, "etag monotonicity: key %s on %s revisited abandoned version %s at delivery %d",
						d.key, d.daemon, shortETag(d.etag), i)
				}
				if ok {
					if abandoned[dk] == nil {
						abandoned[dk] = make(map[string]bool)
					}
					abandoned[dk][cur] = true
				}
				current[dk] = d.etag
			}
		}
		if d.op == "upload" && d.status == http.StatusOK && d.evidence != nil {
			ev := m.evidence[d.key]
			if ev == nil {
				ev = make(map[string]*analyzer.Profile)
				m.evidence[d.key] = ev
				m.keys = append(m.keys, d.key)
			}
			if best == nil {
				ev[d.instance] = d.evidence
			} else if st, ok := parseStamp(d.stamp); !ok {
				s.violate(r, "replication: accepted upload delivery %d (%s on %s) carries no parseable stamp %q",
					i, d.instance, d.daemon, d.stamp)
			} else {
				bk := best[d.key]
				if bk == nil {
					bk = make(map[string]profilestore.Stamp)
					best[d.key] = bk
				}
				if cur, seen := bk[d.instance]; !seen || cur.Less(st) {
					bk[d.instance] = st
					ev[d.instance] = d.evidence
				}
			}
			m.uploads[d.key]++
			var tainted uint64
			for _, site := range d.evidence.Sites {
				tainted += site.Tainted
			}
			if tainted > r.TaintedDelivered {
				r.TaintedDelivered = tainted
			}
		}
	}
	sort.Slice(m.keys, func(i, j int) bool { return m.keys[i].String() < m.keys[j].String() })
	return m
}

// checkCounters reconciles the daemon's accounting with the delivery log:
// every accepted delivery is counted exactly once as an upload, every
// upload is covered by exactly one merge or coalesced into one, and a
// fault plan made of delivery faults (not corruption) rejects nothing and
// breaks no store.
func (s *sim) checkCounters(r *Report, m *deliveredModel) {
	var delivered int
	for _, n := range m.uploads {
		delivered += n
	}
	if int(r.Uploads) != delivered {
		s.violate(r, "counter accounting: evidence_upload_total=%d, delivery log has %d accepted uploads",
			r.Uploads, delivered)
	}
	// Every dirty increment a merge pass covers is either a direct upload
	// or (replicated runs) a document pulled from a peer; on a
	// single-daemon run PeerDocsApplied is zero and this is the historical
	// uploads == merges + coalesced identity.
	if r.Uploads+r.PeerDocsApplied != r.Merges+r.Coalesced {
		s.violate(r, "counter accounting: uploads=%d + peer_docs_applied=%d != merges=%d + coalesced=%d",
			r.Uploads, r.PeerDocsApplied, r.Merges, r.Coalesced)
	}
	if r.Rejected != 0 {
		s.violate(r, "counter accounting: %d uploads rejected on a fault plan that never corrupts payloads", r.Rejected)
	}
	if r.StoreErrs != 0 {
		s.violate(r, "counter accounting: %d store/merge errors on a healthy store", r.StoreErrs)
	}
}

// checkKeys evaluates the per-key invariants: the daemon's final plan is
// byte-equal (via content-addressed version) to the checker's independent
// merge of delivered evidence, every instance of the key converged to it,
// its evidence_instances gauge matches the distinct uploaders, and no
// degradation outlived the tainted evidence that caused it.
func (s *sim) checkKeys(r *Report, m *deliveredModel) {
	members := make(map[profilestore.Key][]*instance)
	for _, in := range s.instances {
		members[in.key] = append(members[in.key], in)
	}
	for _, key := range m.keys {
		kr := KeyReport{Key: key, Uploads: m.uploads[key], Members: len(members[key])}
		ev := m.evidence[key]
		kr.DistinctInstances = len(ev)

		ids := make([]string, 0, len(ev))
		for id := range ev {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		inputs := make([]*analyzer.Profile, 0, len(ids))
		for _, id := range ids {
			inputs = append(inputs, ev[id])
		}
		expected, err := analyzer.MergeProfiles(analyzer.Options{App: key.App, Workload: key.Workload}, inputs...)
		if err != nil {
			s.violate(r, "model merge for key %s failed: %v", key, err)
			r.PerKey = append(r.PerKey, kr)
			continue
		}
		kr.ExpectedETag, err = etagOf(expected)
		if err != nil {
			s.violate(r, "model encode for key %s failed: %v", key, err)
			r.PerKey = append(r.PerKey, kr)
			continue
		}

		gauge := s.srv.Metrics().Gauge(metrics.LabelName("evidence_instances",
			metrics.Label{Key: "app", Value: key.App},
			metrics.Label{Key: "workload", Value: key.Workload}))
		if got := gauge.Value(); got != int64(len(ev)) {
			s.violate(r, "gauge accounting: evidence_instances for %s = %d, delivery log has %d distinct uploaders",
				key, got, len(ev))
		}

		// The convergence target: the independent model merge normally; the
		// daemon's stable version in rollout mode — a quarantined candidate
		// is deliberately withheld, so the full merge of delivered evidence
		// is exactly what the fleet must NOT converge to after a rollback.
		want := kr.ExpectedETag
		if r.RolloutEnabled {
			snap, ok := s.srv.RolloutSnapshot(key.App, key.Workload)
			if !ok {
				s.violate(r, "rollout: no controller state for key %s with delivered evidence", key)
				r.PerKey = append(r.PerKey, kr)
				continue
			}
			if snap.State == rollout.StateCanary.String() || snap.State == rollout.StatePromoting.String() {
				s.violate(r, "rollout: key %s still mid-canary (%s) after the settle phase", key, snap.State)
			}
			if snap.StableETag == "" {
				s.violate(r, "rollout: key %s has delivered evidence but no stable plan", key)
			}
			want = snap.StableETag
			r.Rollout = append(r.Rollout, RolloutKeyReport{
				Key:         key,
				State:       snap.State,
				StableETag:  snap.StableETag,
				Quarantined: len(snap.Quarantined),
				Promotions:  snap.Promotions,
				Rollbacks:   snap.Rollbacks,
			})
		}

		var modelTainted uint64
		for _, p := range inputs {
			for _, site := range p.Sites {
				modelTainted += site.Tainted
			}
		}
		for _, in := range members[key] {
			if in.finalErr != nil {
				s.violate(r, "convergence: %s final poll failed on a quiet network: %v", in.id, in.finalErr)
				continue
			}
			if in.finalOutcome != fleetclient.OutcomeFresh && in.finalOutcome != fleetclient.OutcomeNotModified {
				s.violate(r, "convergence: %s final poll outcome %s, want a daemon-served plan", in.id, in.finalOutcome)
				continue
			}
			if in.finalETag != want {
				if r.RolloutEnabled {
					s.violate(r, "rollout convergence: %s installed %s, daemon stable is %s",
						in.id, shortETag(in.finalETag), shortETag(want))
				} else {
					s.violate(r, "convergence: %s installed %s, fleet merge of delivered evidence is %s",
						in.id, shortETag(in.finalETag), shortETag(want))
				}
				continue
			}
			if r.RolloutEnabled && poisoned(in.finalPlan) {
				s.violate(r, "rollout convergence: %s ends the run on a plan carrying the regression site", in.id)
				continue
			}
			kr.Converged++
			if kr.ETag == "" {
				kr.ETag = in.finalETag
				if r.RolloutEnabled {
					continue
				}
				// No sticky degradation: tainted counts are pure sums
				// under the merge, so the published plan must carry
				// exactly what the delivered evidence carries — in
				// particular, zero once every instance's latest upload
				// is clean again. (Rollout mode skips this: the stable
				// plan legitimately predates the newest evidence.)
				var planTainted uint64
				for _, site := range in.finalPlan.Sites {
					planTainted += site.Tainted
				}
				if planTainted != modelTainted {
					s.violate(r, "sticky degradation: key %s plan carries tainted=%d, delivered evidence sums to %d",
						key, planTainted, modelTainted)
				}
			}
		}
		r.PerKey = append(r.PerKey, kr)
	}

	// Keys that never had evidence delivered must answer no-plan to
	// their instances — a daemon inventing a plan out of probes would
	// surface here.
	for key, ins := range members {
		if m.evidence[key] != nil {
			continue
		}
		for _, in := range ins {
			if in.finalErr != nil || in.finalOutcome != fleetclient.OutcomeNoPlan {
				s.violate(r, "convergence: %s got outcome %s for key %s with no delivered evidence, want no-plan",
					in.id, outcomeString(in.finalOutcome, in.finalErr), key)
			}
		}
	}
}

// checkRollout evaluates the rollout-mode invariants against the delivery
// log and the daemon's recorded transitions:
//
//   - Containment: a candidate that regressed its canary window (a
//     "rollback" transition's ETag) was never served to — and never ran
//     on, per the feedback log — an instance outside the canary cohort;
//     and never served at all after its rollback. The cohort is replayed
//     independently: rollout.Cohort over the instances whose evidence the
//     log shows delivered by that moment, exactly the daemon's promise.
//   - Rollback convergence: the final stable version is never a regressed
//     ETag, and every regressed ETag is quarantined in the controller's
//     end state. (checkKeys already pinned every instance's final plan to
//     the stable version.)
//   - Accounting: feedback_reports_total equals the accepted feedback
//     deliveries, and the canary/promote/rollback counters equal the
//     recorded transitions of each kind.
//   - Scenario effectiveness: a run that injected a regression
//     (Config.RegressAt) must have rolled something back, or the
//     containment invariants above were vacuous.
func (s *sim) checkRollout(r *Report, m *deliveredModel) {
	trans := s.srv.RolloutTransitions()
	var canaryStarts, promotes, rollbacks uint64
	regressed := make(map[profilestore.Key]map[string]time.Duration)
	for _, tr := range trans {
		switch tr.Kind {
		case "canary_start":
			canaryStarts++
		case "promote":
			promotes++
		case "rollback":
			rollbacks++
			if regressed[tr.Key] == nil {
				regressed[tr.Key] = make(map[string]time.Duration)
			}
			regressed[tr.Key][tr.ETag] = tr.At
		}
	}

	if r.Canaries != canaryStarts {
		s.violate(r, "rollout accounting: rollout_canary_total=%d, %d canary_start transitions recorded", r.Canaries, canaryStarts)
	}
	if r.Promotions != promotes {
		s.violate(r, "rollout accounting: rollout_promotions_total=%d, %d promote transitions recorded", r.Promotions, promotes)
	}
	if r.Rollbacks != rollbacks {
		s.violate(r, "rollout accounting: rollout_rollbacks_total=%d, %d rollback transitions recorded", r.Rollbacks, rollbacks)
	}
	var accepted uint64
	for _, d := range s.net.deliveries {
		if d.op == "feedback" && d.status == http.StatusNoContent {
			accepted++
		}
	}
	if r.Feedback != accepted {
		s.violate(r, "rollout accounting: feedback_reports_total=%d, delivery log has %d accepted reports", r.Feedback, accepted)
	}
	if s.cfg.RegressAt > 0 && rollbacks == 0 {
		s.violate(r, "rollout: regression injected at %s but nothing was ever rolled back", s.cfg.RegressAt)
	}

	// Containment replay. known accrues each key's delivered uploader set
	// in log order; the cohort is recomputed whenever it grows, mirroring
	// the daemon's evidence-driven cohort.
	known := make(map[profilestore.Key][]string)
	seen := make(map[profilestore.Key]map[string]bool)
	cohorts := make(map[profilestore.Key]map[string]bool)
	for i, d := range s.net.deliveries {
		if d.op == "upload" && d.status == http.StatusOK && d.evidence != nil {
			if seen[d.key] == nil {
				seen[d.key] = make(map[string]bool)
			}
			if !seen[d.key][d.instance] {
				seen[d.key][d.instance] = true
				known[d.key] = append(known[d.key], d.instance)
				cohorts[d.key] = rollout.Cohort(s.cfg.Rollout.Seed, known[d.key], s.cfg.Rollout.CanaryFraction)
			}
		}
		var ranETag string
		switch {
		case d.op == "fetch" && (d.status == http.StatusOK || d.status == http.StatusNotModified):
			ranETag = d.etag
		case d.op == "feedback" && d.feedback != nil:
			ranETag = d.feedback.ETag
		}
		if ranETag == "" {
			continue
		}
		at, isRegressed := regressed[d.key][ranETag]
		if !isRegressed {
			continue
		}
		if !cohorts[d.key][d.instance] {
			s.violate(r, "rollout containment: regressed version %s reached non-canary instance %s (%s delivery %d)",
				shortETag(ranETag), d.instance, d.op, i)
		}
		if d.op == "fetch" && d.at > at {
			s.violate(r, "rollout containment: regressed version %s served to %s at %s, after its rollback at %s",
				shortETag(ranETag), d.instance, d.at, at)
		}
	}

	// Rollback convergence: last-good means never a regressed version, and
	// every regressed version is quarantined in the end state.
	for _, kr := range r.Rollout {
		bad := regressed[kr.Key]
		if len(bad) == 0 {
			continue
		}
		if _, ok := bad[kr.StableETag]; ok {
			s.violate(r, "rollout convergence: key %s ends stable on regressed version %s", kr.Key, shortETag(kr.StableETag))
		}
		snap, ok := s.srv.RolloutSnapshot(kr.Key.App, kr.Key.Workload)
		if !ok {
			continue
		}
		quarantined := make(map[string]bool, len(snap.Quarantined))
		for _, etag := range snap.Quarantined {
			quarantined[etag] = true
		}
		for etag := range bad {
			if !quarantined[etag] {
				s.violate(r, "rollout quarantine: key %s rolled back %s but does not quarantine it", kr.Key, shortETag(etag))
			}
		}
	}
}

// checkMulti evaluates the replicated-run invariants after the quiesce
// sync fixpoint:
//
//   - Post-heal convergence: every daemon independently recomputed the
//     same content-addressed plan as the checker's stamp-winner merge of
//     the delivery log — no evidence document lost to a partition, none
//     double-counted by a duplicated or failed-over upload — and every
//     daemon's evidence_instances gauge agrees with the log's distinct
//     uploaders (the replicated documents all arrived).
//   - Stamp discipline (checkStamps) and per-daemon counter accounting
//     (checkDaemonCounters).
//   - Rollout mode: every daemon's controller reached a terminal state,
//     every rolled-back version is quarantined on every daemon
//     (checkMultiRollout), and one more anti-entropy round changes
//     nothing — a stale peer never resurrects a quarantined candidate
//     (checkResurrection).
func (s *sim) checkMulti(r *Report, m *deliveredModel) {
	members := make(map[profilestore.Key][]*instance)
	for _, in := range s.instances {
		members[in.key] = append(members[in.key], in)
	}

	// Rollout end state first: it yields each key's set of per-daemon
	// stable versions, the convergence targets below — sticky failover
	// means an instance's final poll may land on any replica.
	stables := make(map[profilestore.Key]map[string]bool)
	if r.RolloutEnabled {
		s.checkMultiRollout(r, m, stables)
	}

	for _, key := range m.keys {
		kr := KeyReport{Key: key, Uploads: m.uploads[key], Members: len(members[key])}
		ev := m.evidence[key]
		kr.DistinctInstances = len(ev)

		ids := make([]string, 0, len(ev))
		for id := range ev {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		inputs := make([]*analyzer.Profile, 0, len(ids))
		for _, id := range ids {
			inputs = append(inputs, ev[id])
		}
		expected, err := analyzer.MergeProfiles(analyzer.Options{App: key.App, Workload: key.Workload}, inputs...)
		if err != nil {
			s.violate(r, "model merge for key %s failed: %v", key, err)
			r.PerKey = append(r.PerKey, kr)
			continue
		}
		kr.ExpectedETag, err = etagOf(expected)
		if err != nil {
			s.violate(r, "model encode for key %s failed: %v", key, err)
			r.PerKey = append(r.PerKey, kr)
			continue
		}

		for i, srv := range s.srvs {
			// Rollout mode skips the plan-identity check: a quarantined
			// candidate is withheld by design, so a daemon's stable plan
			// and the full merge of delivered evidence legitimately differ.
			if !r.RolloutEnabled {
				if got := srv.PlanETag(key.App, key.Workload); got != kr.ExpectedETag {
					s.violate(r, "replication convergence: %s serves %s for key %s, stamp-winner merge is %s",
						daemonName(i), shortETag(got), key, shortETag(kr.ExpectedETag))
				}
			}
			gauge := srv.Metrics().Gauge(metrics.LabelName("evidence_instances",
				metrics.Label{Key: "app", Value: key.App},
				metrics.Label{Key: "workload", Value: key.Workload}))
			if got := gauge.Value(); got != int64(len(ev)) {
				s.violate(r, "gauge accounting: evidence_instances for %s on %s = %d, delivery log has %d distinct uploaders",
					key, daemonName(i), got, len(ev))
			}
		}

		for _, in := range members[key] {
			if in.finalErr != nil {
				s.violate(r, "convergence: %s final poll failed on a quiet network: %v", in.id, in.finalErr)
				continue
			}
			if in.finalOutcome != fleetclient.OutcomeFresh && in.finalOutcome != fleetclient.OutcomeNotModified {
				s.violate(r, "convergence: %s final poll outcome %s, want a daemon-served plan", in.id, in.finalOutcome)
				continue
			}
			if r.RolloutEnabled {
				if !stables[key][in.finalETag] {
					s.violate(r, "rollout convergence: %s installed %s, not any daemon's stable version",
						in.id, shortETag(in.finalETag))
					continue
				}
				if poisoned(in.finalPlan) {
					s.violate(r, "rollout convergence: %s ends the run on a plan carrying the regression site", in.id)
					continue
				}
			} else if in.finalETag != kr.ExpectedETag {
				s.violate(r, "convergence: %s installed %s, fleet merge of delivered evidence is %s",
					in.id, shortETag(in.finalETag), shortETag(kr.ExpectedETag))
				continue
			}
			kr.Converged++
			if kr.ETag == "" {
				kr.ETag = in.finalETag
			}
		}
		r.PerKey = append(r.PerKey, kr)
	}

	for key, ins := range members {
		if m.evidence[key] != nil {
			continue
		}
		for _, in := range ins {
			if in.finalErr != nil || in.finalOutcome != fleetclient.OutcomeNoPlan {
				s.violate(r, "convergence: %s got outcome %s for key %s with no delivered evidence, want no-plan",
					in.id, outcomeString(in.finalOutcome, in.finalErr), key)
			}
		}
	}

	s.checkStamps(r)
	s.checkDaemonCounters(r)
	if r.RolloutEnabled {
		s.checkResurrection(r)
	}
}

// checkMultiRollout pins every daemon's rollout controller end state on a
// replicated run: terminal everywhere, never stable on a rolled-back
// version, and every version any daemon ever rolled back quarantined on
// every daemon — the grow-only union the quarantine anti-entropy
// promises. It fills stables with each key's per-daemon stable set and
// appends one r.Rollout row per (key, daemon).
func (s *sim) checkMultiRollout(r *Report, m *deliveredModel, stables map[profilestore.Key]map[string]bool) {
	regressed := make(map[profilestore.Key]map[string]bool)
	var rollbacks uint64
	for _, srv := range s.srvs {
		for _, tr := range srv.RolloutTransitions() {
			if tr.Kind == "rollback" {
				rollbacks++
				if regressed[tr.Key] == nil {
					regressed[tr.Key] = make(map[string]bool)
				}
				regressed[tr.Key][tr.ETag] = true
			}
		}
	}
	if s.cfg.RegressAt > 0 && rollbacks == 0 {
		s.violate(r, "rollout: regression injected at %s but no daemon ever rolled back", s.cfg.RegressAt)
	}

	for _, key := range m.keys {
		bad := make([]string, 0, len(regressed[key]))
		for etag := range regressed[key] {
			bad = append(bad, etag)
		}
		sort.Strings(bad)
		set := make(map[string]bool)
		stables[key] = set
		for i, srv := range s.srvs {
			name := daemonName(i)
			snap, ok := srv.RolloutSnapshot(key.App, key.Workload)
			if !ok {
				s.violate(r, "rollout: no controller state for key %s on %s", key, name)
				continue
			}
			if snap.State == rollout.StateCanary.String() || snap.State == rollout.StatePromoting.String() {
				s.violate(r, "rollout: key %s on %s still mid-canary (%s) after the settle phase", key, name, snap.State)
			}
			if snap.StableETag == "" {
				s.violate(r, "rollout: key %s on %s has delivered evidence but no stable plan", key, name)
			}
			set[snap.StableETag] = true
			if regressed[key][snap.StableETag] {
				s.violate(r, "rollout convergence: key %s on %s ends stable on rolled-back version %s",
					key, name, shortETag(snap.StableETag))
			}
			quarantined := make(map[string]bool, len(snap.Quarantined))
			for _, etag := range snap.Quarantined {
				quarantined[etag] = true
			}
			for _, etag := range bad {
				if !quarantined[etag] {
					s.violate(r, "rollout quarantine: version %s was rolled back but %s does not quarantine it (key %s)",
						shortETag(etag), name, key)
				}
			}
			r.Rollout = append(r.Rollout, RolloutKeyReport{
				Key:         key,
				Daemon:      name,
				State:       snap.State,
				StableETag:  snap.StableETag,
				Quarantined: len(snap.Quarantined),
				Promotions:  snap.Promotions,
				Rollbacks:   snap.Rollbacks,
			})
		}
	}
}

// checkStamps audits the stamp discipline on the delivery log: each
// daemon's stamps for one (key, instance) strictly increase in delivery
// order, and an assigned sequence never trails the client's own upload
// sequence — the property that keeps a replayed stale upload from
// outliving the fresh one that follows it.
func (s *sim) checkStamps(r *Report) {
	last := make(map[string]profilestore.Stamp)
	for i, d := range s.net.deliveries {
		if d.op != "upload" || d.status != http.StatusOK || d.evidence == nil {
			continue
		}
		st, ok := parseStamp(d.stamp)
		if !ok {
			continue // checkDeliveries already reported the missing stamp
		}
		if st.Seq < d.clientSeq {
			s.violate(r, "stamp discipline: delivery %d (%s on %s) assigned seq %d behind client sequence %d",
				i, d.instance, d.daemon, st.Seq, d.clientSeq)
		}
		id := d.daemon + "|" + d.key.String() + "|" + d.instance
		if prev, seen := last[id]; seen && !prev.Less(st) {
			s.violate(r, "stamp discipline: delivery %d (%s on %s) stamp %s does not advance past %s",
				i, d.instance, d.daemon, st, prev)
		}
		last[id] = st
	}
}

// checkDaemonCounters closes each replica's books individually: the
// uploads it counted are exactly the accepted deliveries the fabric
// handed it, and its merge passes covered exactly its own uploads plus
// its peer pulls.
func (s *sim) checkDaemonCounters(r *Report) {
	delivered := make(map[string]uint64)
	for _, d := range s.net.deliveries {
		if d.op == "upload" && d.status == http.StatusOK && d.evidence != nil {
			delivered[d.daemon]++
		}
	}
	for i, srv := range s.srvs {
		name := daemonName(i)
		reg := srv.Metrics()
		uploads := reg.Counter("evidence_upload_total").Value()
		merges := reg.Counter("evidence_merge_total").Value()
		coalesced := reg.Counter("evidence_coalesced_total").Value()
		applied := reg.Counter("peer_docs_applied_total").Value()
		if uploads != delivered[name] {
			s.violate(r, "counter accounting: %s counted %d uploads, the fabric delivered it %d",
				name, uploads, delivered[name])
		}
		if uploads+applied != merges+coalesced {
			s.violate(r, "counter accounting: %s uploads=%d + applied=%d != merges=%d + coalesced=%d",
				name, uploads, applied, merges, coalesced)
		}
	}
}

// checkResurrection is the anti-resurrection probe: after every other
// check has read the settled end state, one more anti-entropy round runs,
// and no daemon's controller state, stable version, or quarantine set may
// move — a quarantined candidate stays dead no matter how late a peer's
// copy of it arrives.
func (s *sim) checkResurrection(r *Report) {
	snapshot := func() map[string]string {
		out := make(map[string]string)
		for i, srv := range s.srvs {
			for k := 0; k < s.cfg.Keys; k++ {
				app := "App" + strconv.Itoa(k)
				snap, ok := srv.RolloutSnapshot(app, "w")
				if !ok {
					continue
				}
				q := append([]string(nil), snap.Quarantined...)
				sort.Strings(q)
				out[daemonName(i)+"|"+app] = snap.State + "|" + snap.StableETag + "|" + strings.Join(q, ",")
			}
		}
		return out
	}
	before := snapshot()
	for _, srv := range s.srvs {
		srv.SyncPeers()
	}
	s.flushAll()
	after := snapshot()
	ids := make([]string, 0, len(before))
	for id := range before {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if after[id] != before[id] {
			s.violate(r, "resurrection: %s changed across a settled sync round: %q -> %q", id, before[id], after[id])
		}
	}
	if len(after) != len(before) {
		s.violate(r, "resurrection: rollout state appeared or vanished across a settled sync round (%d -> %d keys)",
			len(before), len(after))
	}
}

// parseStamp parses the seq@origin wire form of a replication stamp.
func parseStamp(s string) (profilestore.Stamp, bool) {
	seqStr, origin, ok := strings.Cut(s, "@")
	if !ok || origin == "" {
		return profilestore.Stamp{}, false
	}
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil || seq == 0 {
		return profilestore.Stamp{}, false
	}
	return profilestore.Stamp{Seq: seq, Origin: origin}, true
}

// etagOf computes the content-addressed version the daemon would assign a
// plan: SHA-256 over the canonical JSON body, newline-terminated — the
// same derivation planserver's encoder uses, reproduced here so the
// checker never asks the daemon to version its own expectation.
func etagOf(p *analyzer.Profile) (string, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("simnet: encoding expected plan: %w", err)
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	return fmt.Sprintf("%q", fmt.Sprintf("%x", sum)), nil
}
