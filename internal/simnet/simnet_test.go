package simnet

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// runOnce executes one simulation into fresh temp storage, capturing the
// trace, and fails the test on a build error (not on violations — callers
// assert on the report).
func runOnce(t *testing.T, cfg Config) (*Report, *bytes.Buffer) {
	t.Helper()
	var trace bytes.Buffer
	cfg.StoreDir = t.TempDir()
	cfg.TraceWriter = &trace
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("simnet.Run: %v", err)
	}
	return rep, &trace
}

func requireOK(t *testing.T, rep *Report) {
	t.Helper()
	if !rep.OK() {
		t.Fatalf("invariants violated:\n%s", rep.Log())
	}
}

// TestReplayByteIdentical is the acceptance bar for the simulator's
// determinism: a 64-instance fleet under three partition windows plus
// percentage faults, run twice from one seed, must produce byte-identical
// traces and byte-identical invariant logs. Any wall-clock read, map
// iteration, or goroutine race on a decision path breaks this test before
// it breaks a production fleet.
func TestReplayByteIdentical(t *testing.T) {
	cfg := Config{
		Seed:      42,
		Instances: 64,
		Keys:      2,
		Rounds:    3,
		FaultSpec: "partition:inst-3..7@t=40s/20s;partition:inst-20..30@t=60s/35s;partition:inst-40..45@t=30s/50s;drop:upload%5;dup:upload%6;err5xx%3",
	}
	first, firstTrace := runOnce(t, cfg)
	requireOK(t, first)
	if first.Net.Refused == 0 {
		t.Fatal("three partition windows refused no traffic — the scenario did not exercise partitions")
	}
	if first.Net.Dropped == 0 || first.Net.Dup == 0 {
		t.Fatalf("percentage faults did not fire (dropped=%d dup=%d)", first.Net.Dropped, first.Net.Dup)
	}
	if first.TaintedDelivered == 0 {
		t.Fatal("no tainted evidence was delivered — the degradation invariant was vacuous")
	}

	second, secondTrace := runOnce(t, cfg)
	requireOK(t, second)
	if !bytes.Equal(firstTrace.Bytes(), secondTrace.Bytes()) {
		t.Errorf("traces diverge between runs of seed %d: %d vs %d bytes",
			cfg.Seed, firstTrace.Len(), secondTrace.Len())
		a, b := firstTrace.String(), secondTrace.String()
		al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := 0; i < len(al) && i < len(bl); i++ {
			if al[i] != bl[i] {
				t.Fatalf("first divergence at trace line %d:\n  run1: %s\n  run2: %s", i, al[i], bl[i])
			}
		}
		t.FailNow()
	}
	if first.Log() != second.Log() {
		t.Fatalf("invariant logs diverge:\n--- run1\n%s--- run2\n%s", first.Log(), second.Log())
	}
}

// TestSeedsDiverge guards the other half of determinism: different seeds
// must explore different schedules, or the sweep is 32 copies of one run.
func TestSeedsDiverge(t *testing.T) {
	cfg := Config{Instances: 8, FaultSpec: "drop:upload%10"}
	cfg.Seed = 7
	_, traceA := runOnce(t, cfg)
	cfg.Seed = 8
	_, traceB := runOnce(t, cfg)
	if bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
		t.Fatal("seeds 7 and 8 produced identical traces")
	}
}

// TestCleanNetworkConverges: with no faults at all, every invariant holds,
// every instance converges, and the coalescing accounting closes exactly.
func TestCleanNetworkConverges(t *testing.T) {
	rep, _ := runOnce(t, Config{Seed: 3, Instances: 12, Keys: 3})
	requireOK(t, rep)
	if len(rep.PerKey) != 3 {
		t.Fatalf("%d keys reported, want 3", len(rep.PerKey))
	}
	for _, k := range rep.PerKey {
		if k.Converged != k.Members {
			t.Errorf("key %s: %d/%d instances converged", k.Key, k.Converged, k.Members)
		}
		if k.DistinctInstances != k.Members {
			t.Errorf("key %s: %d distinct uploaders, want %d", k.Key, k.DistinctInstances, k.Members)
		}
	}
	if rep.Uploads != rep.Merges+rep.Coalesced {
		t.Errorf("uploads=%d != merges=%d + coalesced=%d", rep.Uploads, rep.Merges, rep.Coalesced)
	}
	if rep.Net != (netStats{}) {
		t.Errorf("clean network recorded faults: %+v", rep.Net)
	}
}

// TestFaultScenarios runs each fault class on its own and requires both
// that it actually fired and that every invariant survived it.
func TestFaultScenarios(t *testing.T) {
	cases := []struct {
		name  string
		spec  string
		fired func(n netStats) int
	}{
		{"drop", "drop%15", func(n netStats) int { return n.Dropped }},
		{"dup", "dup:upload%20", func(n netStats) int { return n.Dup }},
		{"stale", "stale:upload%30", func(n netStats) int { return n.Stale }},
		{"delay", "delay%25@250ms", func(n netStats) int { return n.Delayed }},
		{"err5xx", "err5xx%10", func(n netStats) int { return n.Err5xx }},
		{"partition", "partition:inst-2..5@t=35s/40s", func(n netStats) int { return n.Refused }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, _ := runOnce(t, Config{Seed: 11, Instances: 10, Rounds: 3, FaultSpec: tc.spec})
			requireOK(t, rep)
			if tc.fired(rep.Net) == 0 {
				t.Fatalf("fault %q never fired: %+v", tc.spec, rep.Net)
			}
		})
	}
}

// TestSweep is the in-process miniature of CI's seed sweep: several seeds
// over a mixed fault plan, every one of which must hold every invariant.
// The reproduction recipe on failure is the report's own log.
func TestSweep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rep, _ := runOnce(t, Config{
				Seed:      seed,
				Instances: 14,
				Keys:      2,
				FaultSpec: "partition:inst-4..9@t=45s/25s;drop:upload%4;dup:upload%5;stale:upload%5;err5xx%2",
			})
			requireOK(t, rep)
		})
	}
}

// TestReportLogShape pins the log's load-bearing lines: the seed sweep's
// failure output is an operator's only reproduction recipe, so the seed,
// the effective fault spec, and the invariant verdict must all be in it.
func TestReportLogShape(t *testing.T) {
	rep, _ := runOnce(t, Config{Seed: 5, Instances: 4, FaultSpec: "drop%10"})
	log := rep.Log()
	for _, want := range []string{"seed=5", `faults="seed=5;drop%10"`, "invariants: ok", "key App0/w:"} {
		if !strings.Contains(log, want) {
			t.Errorf("log is missing %q:\n%s", want, log)
		}
	}
}

// TestConfigErrors: a broken fault spec or a missing store dir fail the
// build of the simulation, not the invariants.
func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{StoreDir: t.TempDir(), FaultSpec: "detonate%50"}); err == nil {
		t.Error("unknown fault kind built a simulation")
	}
	if _, err := Run(Config{}); err == nil {
		t.Error("missing StoreDir built a simulation")
	}
}

// TestVirtualTimeOnly: a full run's simulated horizon is minutes of
// virtual time; if it also took minutes of wall time, something inside is
// sleeping for real.
func TestVirtualTimeOnly(t *testing.T) {
	start := time.Now()
	rep, _ := runOnce(t, Config{Seed: 9, Instances: 24, FaultSpec: "drop%8"})
	requireOK(t, rep)
	if rep.SimTime < time.Minute {
		t.Errorf("simulated only %v, want minutes of virtual time", rep.SimTime)
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Errorf("run took %v of wall time for %v of simulated time", wall, rep.SimTime)
	}
}
