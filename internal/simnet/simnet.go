// Package simnet is a deterministic in-memory fleet simulator for the
// polm2d plan-distribution stack: one planserver instance and a fleet of
// fleetclient-driven instances run under a single seed with no real
// sockets, no real time, and no goroutine scheduling on any decision path.
//
// The simulator is three layers:
//
//  1. A virtual transport (transport.go) that implements the fleetclient
//     HTTP surface by direct handler invocation, with faultio.NetPlan
//     network faults — drops, duplicates, stale retransmissions, delays,
//     gateway 5xxs, partition windows — interposed between client and
//     daemon.
//  2. A virtual-time event loop built on internal/simclock's Queue. It
//     owns every timer in the stack: instance boot and re-profile
//     cadences, fleetclient retry backoff (Sleep advances the virtual
//     clock), and the daemon's deferred merge workers (Schedule enqueues
//     them; planserver.Options.Pump lets a waiting handler drive them).
//     Events at one instant tie-break on seeded priorities, so a seed
//     replays byte-identically — same trace, same invariant log.
//  3. An invariant checker (report.go) evaluated after the fleet
//     quiesces, built on an independent replay of the transport's
//     delivery log: fleet convergence, counter accounting, ETag
//     monotonicity and content-address honesty, idempotent duplicate
//     delivery, and no sticky degradation once tainted evidence clears.
//
// With Config.Rollout set, the simulated daemon runs its canary rollout
// controller: instances report per-window plan health after every fetch,
// Config.RegressAt injects a plan regression mid-run, and the checker adds
// the rollout invariants — a candidate that regressed its canary window is
// never served to a non-canary instance, and every rollback converges the
// fleet back to the last-good version.
//
// The polm2-simnet command sweeps seeds and replays failures; the CI
// simnet-sweep job runs it under the race detector.
package simnet

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/core"
	"polm2/internal/faultio"
	"polm2/internal/fleetclient"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
	"polm2/internal/simclock"
	"polm2/internal/trace"
)

// Config parameterizes one simulated fleet run.
type Config struct {
	// Seed drives everything: instance jitter, retry backoff, event
	// tie-breaks, and (unless FaultSpec pins its own "seed=") the fault
	// draws. Default 1.
	Seed int64
	// Instances is the fleet size. Default 16.
	Instances int
	// Keys is the number of distinct (app, workload) keys the fleet
	// spreads over (instance i profiles key i mod Keys). Default 1.
	Keys int
	// Rounds is the number of chaos-phase re-profile rounds per instance
	// (one recovery round after faults clear is always added). Default 3.
	Rounds int
	// Daemons is the number of replicated planserver daemons. Default 1 —
	// one daemon at http://polm2d.simnet, byte-identical to every
	// pre-replication build. With more, daemon i serves
	// http://daemon-i.simnet from its own store under StoreDir/daemon-i,
	// replicating evidence and rollout state from the others by pull-based
	// anti-entropy (planserver sync.go); instance i homes on daemon
	// i mod Daemons with the rest as fleetclient failover targets, and a
	// fault spec can partition a daemon by name ("partition:daemon-1..1@…")
	// to isolate it from instances and peers alike.
	Daemons int
	// SyncInterval is each daemon's anti-entropy cadence in a replicated
	// run. Default Cadence/2.
	SyncInterval time.Duration
	// TaintRounds: during the first TaintRounds rounds, every third
	// instance uploads evidence whose per-instance site is mostly
	// tainted — enough to push it under the analyzer's confidence floor
	// and degrade it to generation zero. Later rounds upload clean
	// evidence, so the no-sticky-degradation invariant has something to
	// bite on. Default 1; negative disables tainting.
	TaintRounds int
	// Cadence is the simulated re-profile interval. Default 30s.
	Cadence time.Duration
	// DrainDelay is the virtual-time deferral of the daemon's merge
	// workers — the window in which concurrent uploads coalesce into one
	// merge. Default 200ms.
	DrainDelay time.Duration
	// FaultSpec is a faultio.ParseNetSpec network fault plan, e.g.
	// "partition:inst-3..7@t=40s/20s;drop:upload%5". Empty runs a clean
	// network.
	FaultSpec string
	// Rollout, when non-nil, boots the daemon with the canary rollout
	// controller (normalized before use): merged plans are staged through
	// a canary cohort instead of published fleet-wide, every instance
	// reports plan health after each fetch, and the invariant checker
	// switches to the rollout-mode suite (report.go) — containment of
	// regressed candidates to the cohort, rollback convergence to
	// last-good, and feedback/decision counter accounting.
	Rollout *rollout.Config
	// RegressAt, in rollout runs, injects a plan regression: from this
	// virtual instant on, one designated instance per key uploads
	// evidence carrying a pathological allocation site, and every
	// instance whose installed plan contains that site reports a badly
	// regressed pause p99. Candidates merged after this instant must be
	// rolled back and quarantined, never promoted. Zero injects nothing.
	RegressAt time.Duration
	// StoreDir is the daemon's profile store directory. Required (the
	// caller owns its lifetime; tests pass t.TempDir()).
	StoreDir string
	// TraceWriter, when non-nil, receives the run's JSONL trace —
	// planserver, fleetclient and simnet events interleaved on the
	// virtual clock. Two runs of one seed write identical bytes.
	TraceWriter io.Writer
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Instances == 0 {
		c.Instances = 16
	}
	if c.Keys == 0 {
		c.Keys = 1
	}
	if c.Keys > c.Instances {
		c.Keys = c.Instances
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.TaintRounds == 0 {
		c.TaintRounds = 1
	} else if c.TaintRounds < 0 {
		c.TaintRounds = 0
	}
	if c.Cadence == 0 {
		c.Cadence = 30 * time.Second
	}
	if c.Daemons == 0 {
		c.Daemons = 1
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = c.Cadence / 2
	}
	if c.DrainDelay == 0 {
		c.DrainDelay = 200 * time.Millisecond
	}
	if c.Rollout != nil {
		n := c.Rollout.Normalize()
		c.Rollout = &n
	}
	return c
}

// instance is one simulated production instance.
type instance struct {
	idx    int
	id     string
	key    profilestore.Key
	client *fleetclient.Client
	// alts are per-daemon side channels to the non-home daemons of a
	// replicated rollout run (ascending daemon index, home skipped): each
	// daemon runs its own canary controller and only decides on feedback
	// it hears itself, so the settle phase reports every instance's window
	// to every replica. altLast tracks each channel's previous window end.
	alts    []*fleetclient.Client
	altLast []time.Duration
	taints  bool
	// poisons marks the key's designated regression source: from
	// Config.RegressAt on, its uploads carry the poison site.
	poisons bool

	rounds, fallbacks, errors int

	// cur is the profile the instance currently has installed (the last
	// plan any fetch or sync returned); its content decides whether the
	// instance's feedback reports a regressed p99. lastFeedback is the
	// previous report's window end.
	cur          *analyzer.Profile
	lastFeedback time.Duration
	feedbacks    int

	finalOutcome fleetclient.Outcome
	finalErr     error
	finalETag    string
	finalPlan    *analyzer.Profile
}

// sim is one run's mutable state. Everything is driven from the
// single-threaded event loop.
type sim struct {
	cfg    Config
	clock  *simclock.Clock
	q      *simclock.Queue
	net    *network
	srv    *planserver.Server   // srvs[0]; the only daemon when Daemons is 1
	srvs   []*planserver.Server // every daemon, index order
	tracer *trace.Tracer

	instances []*instance
	// workers is the daemon's deferred merge-worker FIFO: Schedule
	// appends here and enqueues a release event; Pump (and the release
	// event) each run the next pending worker, so every worker runs
	// exactly once whether the clock or a blocked handler gets there
	// first.
	workers []func()
	pri     prng
	events  int
}

// Run executes one simulated fleet under cfg and returns its report. A
// non-nil error means the simulation could not be built (bad fault spec,
// unusable store); invariant violations are reported in Report.Violations,
// not as errors.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("simnet: Config.StoreDir is required")
	}
	var plan *faultio.NetPlan
	if cfg.FaultSpec != "" {
		var err error
		if plan, err = faultio.ParseNetSpec(cfg.FaultSpec); err != nil {
			return nil, err
		}
		// The run seed owns the fault draws unless the spec pins its own
		// (a replayed reproduction spec carries "seed=").
		if !strings.Contains(cfg.FaultSpec, "seed=") {
			plan.Seed = cfg.Seed
		}
	}
	clock := simclock.New()
	s := &sim{
		cfg:   cfg,
		clock: clock,
		q:     simclock.NewQueue(clock),
		pri:   prng{state: uint64(cfg.Seed)},
	}
	if cfg.TraceWriter != nil {
		s.tracer = trace.New(trace.Options{Writer: cfg.TraceWriter, Now: clock.Now})
	}
	// The network is built before the daemons so a replicated daemon's
	// anti-entropy client can ride the same fabric (and the same fault
	// plan) as the fleet; its fallback handler is daemon zero.
	s.net = newNetwork(nil, clock, plan)
	for i := 0; i < cfg.Daemons; i++ {
		name, host, dir := "polm2d", "polm2d.simnet", cfg.StoreDir
		opts := planserver.Options{
			Now:      clock.Now,
			Tracer:   s.tracer,
			Schedule: s.schedule,
			Pump:     s.runWorker,
			Rollout:  cfg.Rollout,
		}
		if cfg.Daemons > 1 {
			name = daemonName(i)
			host = name + ".simnet"
			dir = filepath.Join(cfg.StoreDir, name)
			opts.SelfID = name
			for j := 0; j < cfg.Daemons; j++ {
				if j != i {
					opts.Peers = append(opts.Peers, daemonURL(j))
				}
			}
			opts.PeerClient = &http.Client{Transport: s.net.transport(name)}
		}
		store, err := profilestore.Open(dir)
		if err != nil {
			return nil, err
		}
		srv := planserver.New(store, opts)
		s.srvs = append(s.srvs, srv)
		s.net.route(host, srv)
	}
	s.srv = s.srvs[0]
	s.net.handler = s.srv

	for i := 0; i < cfg.Instances; i++ {
		id := "inst-" + strconv.Itoa(i)
		home := i % cfg.Daemons
		base := "http://polm2d.simnet"
		var alternates []string
		if cfg.Daemons > 1 {
			// Home daemon first, the rest in index order as sticky
			// failover targets: an instance partitioned from its home
			// keeps uploading through whichever replica it can reach.
			base = daemonURL(home)
			for j := 0; j < cfg.Daemons; j++ {
				if j != home {
					alternates = append(alternates, daemonURL(j))
				}
			}
		}
		client, err := fleetclient.New(fleetclient.Options{
			BaseURL:    base,
			BaseURLs:   alternates,
			Seed:       core.DeriveSeed(cfg.Seed, "simnet", id),
			InstanceID: id,
			HTTPClient: &http.Client{Transport: s.net.transport(id)},
			Sleep:      func(d time.Duration) { clock.Advance(d) },
			Tracer:     s.tracer,
		})
		if err != nil {
			return nil, err
		}
		in := &instance{
			idx:    i,
			id:     id,
			key:    profilestore.Key{App: "App" + strconv.Itoa(i%cfg.Keys), Workload: "w"},
			client: client,
			taints: cfg.TaintRounds > 0 && i%3 == 0,
		}
		if cfg.Daemons > 1 && cfg.Rollout != nil {
			for j := 0; j < cfg.Daemons; j++ {
				if j == home {
					continue
				}
				alt, err := fleetclient.New(fleetclient.Options{
					BaseURL:    daemonURL(j),
					Seed:       core.DeriveSeed(cfg.Seed, "simnet", id, "alt-"+strconv.Itoa(j)),
					InstanceID: id,
					HTTPClient: &http.Client{Transport: s.net.transport(id)},
					Sleep:      func(d time.Duration) { clock.Advance(d) },
					Tracer:     s.tracer,
				})
				if err != nil {
					return nil, err
				}
				in.alts = append(in.alts, alt)
				in.altLast = append(in.altLast, 0)
			}
		}
		s.instances = append(s.instances, in)
	}
	if cfg.Rollout != nil && cfg.RegressAt > 0 {
		// The highest-index member of each key is the regression source.
		poisoned := make(map[string]bool)
		for i := cfg.Instances - 1; i >= 0; i-- {
			if in := s.instances[i]; !poisoned[in.key.App] {
				poisoned[in.key.App] = true
				in.poisons = true
			}
		}
	}

	s.scheduleFleet(plan)
	for s.q.RunNext() {
		s.events++
	}
	// Quiesce: publish every accepted upload (Flush pumps any still-
	// parked merge workers), run anti-entropy to fixpoint so every daemon
	// has heard everything (replicated runs), settle any canary still
	// open (rollout mode), sync once more so the settle decisions
	// propagate, then poll the whole fleet on the now-quiet network.
	s.flushAll()
	s.syncToFixpoint()
	if cfg.Rollout != nil {
		s.settleRollouts()
	}
	s.syncToFixpoint()
	s.finalPolls()
	return s.report(plan), nil
}

// daemonName and daemonURL name the replicas of a multi-daemon run; a
// single-daemon run keeps the historical polm2d.simnet identity.
func daemonName(i int) string { return "daemon-" + strconv.Itoa(i) }
func daemonURL(i int) string  { return "http://" + daemonName(i) + ".simnet" }

// flushAll publishes every accepted upload on every daemon.
func (s *sim) flushAll() {
	for _, srv := range s.srvs {
		srv.Flush()
	}
}

// syncToFixpoint runs anti-entropy rounds across every daemon until a
// full round pulls nothing: the replicated quiesce point at which no
// daemon holds a document its peers haven't heard. Each round flushes,
// so pulled evidence is merged and published before the next digest
// comparison. Stamps are totally ordered and pulls only move forward, so
// the fixpoint exists; the bound is a stall backstop, not a limit the
// protocol can reach. No-op on a single-daemon run.
func (s *sim) syncToFixpoint() {
	if s.cfg.Daemons <= 1 {
		return
	}
	for round := 0; round < 8; round++ {
		applied := 0
		for _, srv := range s.srvs {
			applied += srv.SyncPeers()
		}
		s.flushAll()
		if applied == 0 {
			return
		}
	}
	if s.tracer.Enabled() {
		s.tracer.Event("simnet", "sync_exhausted")
	}
}

// scheduleFleet lays out the whole run on the event queue: jittered boots,
// Rounds re-profile rounds with a mid-cadence poll each, the quiet point
// at which every fault has cleared, and one clean recovery round.
func (s *sim) scheduleFleet(plan *faultio.NetPlan) {
	cadence := s.cfg.Cadence
	var chaosEnd time.Duration
	for _, in := range s.instances {
		in := in
		boot := s.jitter("boot", in.id, cadence)
		s.q.At(boot, s.pri.next(), func() { s.boot(in) })
		for r := 0; r < s.cfg.Rounds; r++ {
			r := r
			at := boot + time.Duration(r+1)*cadence + s.jitter("round/"+strconv.Itoa(r), in.id, cadence/4)
			s.q.At(at, s.pri.next(), func() { s.round(in, r) })
			s.q.At(at+cadence/2, s.pri.next(), func() { s.poll(in) })
		}
		if end := boot + time.Duration(s.cfg.Rounds+1)*cadence; end > chaosEnd {
			chaosEnd = end
		}
	}
	if clear := plan.PartitionsClearBy(); clear+cadence/2 > chaosEnd {
		chaosEnd = clear + cadence/2
	}
	if s.cfg.Daemons > 1 {
		// Each daemon pulls its peers on a jittered anti-entropy cadence,
		// through the chaos phase (partitioned pulls fail and count sync
		// errors — that is the protocol under test) and far enough past it
		// to observe recovery before the quiesce fixpoint.
		for i, srv := range s.srvs {
			srv := srv
			off := s.jitter("sync", daemonName(i), s.cfg.SyncInterval)
			for t := s.cfg.SyncInterval + off; t < chaosEnd+2*cadence; t += s.cfg.SyncInterval {
				s.q.At(t, s.pri.next(), func() { srv.SyncPeers() })
			}
		}
	}
	s.q.At(chaosEnd, s.pri.next(), func() {
		s.net.quiet = true
		if s.tracer.Enabled() {
			s.tracer.Event("simnet", "quiet")
		}
	})
	for _, in := range s.instances {
		in := in
		at := chaosEnd + cadence/4 + s.jitter("recovery", in.id, cadence)
		s.q.At(at, s.pri.next(), func() { s.round(in, s.cfg.Rounds) })
	}
}

// jitter derives a stable per-instance offset in [0, span) from the run
// seed — stable identity, not stream position, so reordering the schedule
// construction cannot move anyone's timing.
func (s *sim) jitter(label, id string, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	return time.Duration(uint64(core.DeriveSeed(s.cfg.Seed, "simnet", label, id)) % uint64(span))
}

// boot is an instance's first contact: fetch whatever plan the daemon
// already holds (a cold store answers no-plan).
func (s *sim) boot(in *instance) {
	plan, outcome, err := in.client.FetchPlan(in.key.App, in.key.Workload)
	if err == nil && plan != nil {
		in.cur = plan
	}
	s.traceInstance("boot", in, outcomeString(outcome, err))
}

// round is one re-profile: build this round's cumulative evidence, upload
// it, and adopt the fleet plan that comes back.
func (s *sim) round(in *instance, r int) {
	plan, fresh, err := in.client.SyncEvidence(s.evidence(in, r))
	in.rounds++
	outcome := "merged"
	switch {
	case err != nil:
		in.errors++
		outcome = "error"
	case !fresh:
		in.fallbacks++
		outcome = "fallback"
	}
	if err == nil && plan != nil {
		in.cur = plan
	}
	s.traceInstance("round", in, outcome, trace.Int64("round", int64(r)))
	s.feedback(in)
}

// poll is a mid-cadence conditional fetch — the steady-state traffic that
// exercises 304s and observes plan versions between merges.
func (s *sim) poll(in *instance) {
	plan, outcome, err := in.client.FetchPlan(in.key.App, in.key.Workload)
	if err == nil && plan != nil {
		in.cur = plan
	}
	s.traceInstance("poll", in, outcomeString(outcome, err))
	s.feedback(in)
}

// poisonFrame is the pathological allocation site the designated
// regression source starts reporting at Config.RegressAt. A plan is
// "poisoned" — and regresses whoever runs it — when its profile carries
// the site; since merges fold in every instance's latest evidence, every
// candidate staged after the injection is poisoned until the source is
// fixed, which in this scenario never happens.
const poisonFrame = "Hot.regress:666"

func poisoned(p *analyzer.Profile) bool {
	if p == nil {
		return false
	}
	for _, site := range p.Sites {
		if strings.Contains(site.Trace, poisonFrame) {
			return true
		}
	}
	return false
}

// feedback reports the instance's window since its previous report — the
// synthetic equivalent of online.Run's per-window health report. The
// pause percentiles are a pure function of the installed plan's content:
// baseline numbers normally, badly regressed ones when the plan is
// poisoned. fleetclient stamps the ETag (the plan version the window ran
// under) and skips entirely while no plan is installed.
func (s *sim) feedback(in *instance) {
	if s.cfg.Rollout == nil {
		return
	}
	start := in.lastFeedback
	in.lastFeedback = s.clock.Now()
	r := &rollout.Report{
		App:           in.key.App,
		Workload:      in.key.Workload,
		WindowStart:   start,
		WindowEnd:     s.clock.Now(),
		Pauses:        8,
		PauseP50:      6 * time.Millisecond,
		PauseP99:      15 * time.Millisecond,
		PromotionRate: 0.2,
		SurvivorRate:  0.8,
	}
	if poisoned(in.cur) {
		r.PauseP50, r.PauseP99 = 9*time.Millisecond, 40*time.Millisecond
		r.PromotionRate, r.SurvivorRate = 0.7, 0.3
	}
	sent, err := in.client.ReportFeedback(r)
	outcome := "reported"
	switch {
	case err != nil:
		outcome = "error"
	case !sent:
		outcome = "skipped"
	default:
		in.feedbacks++
	}
	s.traceInstance("feedback", in, outcome)
}

// maxSettleSweeps bounds the rollout settle loop. Each sweep delivers one
// report per instance on a quiet network, so any canary the decision rule
// can resolve resolves within a few sweeps; a canary still open after the
// bound is a stalled rollout the invariant checker reports.
const maxSettleSweeps = 24

// settleRollouts drives every open canary to a terminal state before the
// final observation: while any key is mid-canary, the whole fleet polls
// (cohort members fetch the candidate) and reports its window, with the
// clock advancing between sweeps. This is the simulated tail of a real
// fleet's steady-state traffic — the controller only decides on feedback,
// so the quiesce phase must keep feedback flowing until it has decided.
func (s *sim) settleRollouts() {
	for sweep := 0; sweep < maxSettleSweeps; sweep++ {
		if !s.openCanary() {
			return
		}
		s.clock.Advance(s.cfg.Cadence / 4)
		for _, in := range s.instances {
			s.poll(in)
		}
		s.altSweep()
		s.syncToFixpoint()
	}
	if s.tracer.Enabled() {
		s.tracer.Event("simnet", "settle_exhausted")
	}
}

// openCanary reports whether any key on any daemon is still mid-canary.
func (s *sim) openCanary() bool {
	for _, srv := range s.srvs {
		for k := 0; k < s.cfg.Keys; k++ {
			snap, ok := srv.RolloutSnapshot("App"+strconv.Itoa(k), "w")
			if ok && snap.State == rollout.StateCanary.String() {
				return true
			}
		}
	}
	return false
}

// altSweep reports one health window per instance to every non-home
// daemon. A replicated run's canary controllers decide independently on
// the feedback each daemon hears itself; a replica that served only
// failover traffic would otherwise hold its canary open forever. Each
// report runs a fetch first — fleetclient stamps feedback with the plan
// version it last saw, and the window's health is a function of that
// plan's content, exactly as on the home path. No-op on single-daemon
// runs (no instance has alternates).
func (s *sim) altSweep() {
	for _, in := range s.instances {
		for j, alt := range in.alts {
			plan, _, err := alt.FetchPlan(in.key.App, in.key.Workload)
			if err != nil || plan == nil {
				continue
			}
			start := in.altLast[j]
			in.altLast[j] = s.clock.Now()
			r := &rollout.Report{
				App:           in.key.App,
				Workload:      in.key.Workload,
				WindowStart:   start,
				WindowEnd:     s.clock.Now(),
				Pauses:        8,
				PauseP50:      6 * time.Millisecond,
				PauseP99:      15 * time.Millisecond,
				PromotionRate: 0.2,
				SurvivorRate:  0.8,
			}
			if poisoned(plan) {
				r.PauseP50, r.PauseP99 = 9*time.Millisecond, 40*time.Millisecond
				r.PromotionRate, r.SurvivorRate = 0.7, 0.3
			}
			if sent, err := alt.ReportFeedback(r); err == nil && sent {
				in.feedbacks++
			}
		}
	}
}

// finalPolls fetches once per instance, in index order, after the network
// is quiet and the daemon has flushed: the observation the convergence
// invariant is evaluated on.
func (s *sim) finalPolls() {
	for _, in := range s.instances {
		in.finalPlan, in.finalOutcome, in.finalErr = in.client.FetchPlan(in.key.App, in.key.Workload)
		in.finalETag = in.client.LastETag()
		s.traceInstance("final_poll", in, outcomeString(in.finalOutcome, in.finalErr))
	}
}

func outcomeString(o fleetclient.Outcome, err error) string {
	if err != nil {
		return "error"
	}
	return o.String()
}

func (s *sim) traceInstance(name string, in *instance, outcome string, attrs ...trace.Attr) {
	if !s.tracer.Enabled() {
		return
	}
	all := append([]trace.Attr{
		trace.String("instance", in.id),
		trace.String("outcome", outcome),
	}, attrs...)
	s.tracer.Event("simnet", name, all...)
}

// evidence builds instance in's cumulative evidence for round r: one site
// shared by every instance of the key and one per-instance site, both
// growing with r (re-profiles report cumulative counts, which is what
// makes last-write-wins aggregation count each instance once). Tainting
// instances report a mostly-tainted per-instance site during the first
// TaintRounds rounds — under the confidence floor — and clean counts
// afterwards.
func (s *sim) evidence(in *instance, r int) *analyzer.Profile {
	round := uint64(r) + 1
	shared := 40 * round
	n := round * uint64(16+in.idx%7)
	var tainted uint64
	if in.taints && r < s.cfg.TaintRounds {
		tainted = n - n/4
	}
	p := &analyzer.Profile{
		App:      in.key.App,
		Workload: in.key.Workload,
		Sites: []analyzer.SiteStat{
			{
				Trace:     in.key.App + ".serve:1;Db.put:5",
				Allocated: shared,
				Buckets:   []uint64{shared / 4, shared - shared/4},
			},
			{
				Trace:     fmt.Sprintf("%s.serve:1;Worker.tick:%d", in.key.App, 100+in.idx),
				Allocated: n,
				Tainted:   tainted,
				Buckets:   []uint64{n - n/3, n / 3},
			},
		},
	}
	if in.poisons && s.cfg.RegressAt > 0 && s.clock.Now() >= s.cfg.RegressAt {
		m := 64 * round
		p.Sites = append(p.Sites, analyzer.SiteStat{
			Trace:     in.key.App + ".serve:1;" + poisonFrame,
			Allocated: m,
			Buckets:   []uint64{m / 4, m - m/4},
		})
	}
	return p
}

// schedule is planserver.Options.Schedule: defer the merge worker into the
// FIFO and release it after the drain delay.
func (s *sim) schedule(work func()) {
	s.workers = append(s.workers, work)
	s.q.After(s.cfg.DrainDelay, s.pri.next(), func() { s.runWorker() })
}

// runWorker is planserver.Options.Pump and the release events' body: run
// the next pending merge worker, if any.
func (s *sim) runWorker() bool {
	if len(s.workers) == 0 {
		return false
	}
	work := s.workers[0]
	s.workers = s.workers[1:]
	work()
	return true
}

// prng is a splitmix64 stream for event tie-break priorities: same-instant
// events order by a seeded draw, so the interleaving is a property of the
// seed, not of schedule-construction order.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
