// Package simnet is a deterministic in-memory fleet simulator for the
// polm2d plan-distribution stack: one planserver instance and a fleet of
// fleetclient-driven instances run under a single seed with no real
// sockets, no real time, and no goroutine scheduling on any decision path.
//
// The simulator is three layers:
//
//  1. A virtual transport (transport.go) that implements the fleetclient
//     HTTP surface by direct handler invocation, with faultio.NetPlan
//     network faults — drops, duplicates, stale retransmissions, delays,
//     gateway 5xxs, partition windows — interposed between client and
//     daemon.
//  2. A virtual-time event loop built on internal/simclock's Queue. It
//     owns every timer in the stack: instance boot and re-profile
//     cadences, fleetclient retry backoff (Sleep advances the virtual
//     clock), and the daemon's deferred merge workers (Schedule enqueues
//     them; planserver.Options.Pump lets a waiting handler drive them).
//     Events at one instant tie-break on seeded priorities, so a seed
//     replays byte-identically — same trace, same invariant log.
//  3. An invariant checker (report.go) evaluated after the fleet
//     quiesces, built on an independent replay of the transport's
//     delivery log: fleet convergence, counter accounting, ETag
//     monotonicity and content-address honesty, idempotent duplicate
//     delivery, and no sticky degradation once tainted evidence clears.
//
// The polm2-simnet command sweeps seeds and replays failures; the CI
// simnet-sweep job runs it under the race detector.
package simnet

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/core"
	"polm2/internal/faultio"
	"polm2/internal/fleetclient"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
	"polm2/internal/simclock"
	"polm2/internal/trace"
)

// Config parameterizes one simulated fleet run.
type Config struct {
	// Seed drives everything: instance jitter, retry backoff, event
	// tie-breaks, and (unless FaultSpec pins its own "seed=") the fault
	// draws. Default 1.
	Seed int64
	// Instances is the fleet size. Default 16.
	Instances int
	// Keys is the number of distinct (app, workload) keys the fleet
	// spreads over (instance i profiles key i mod Keys). Default 1.
	Keys int
	// Rounds is the number of chaos-phase re-profile rounds per instance
	// (one recovery round after faults clear is always added). Default 3.
	Rounds int
	// TaintRounds: during the first TaintRounds rounds, every third
	// instance uploads evidence whose per-instance site is mostly
	// tainted — enough to push it under the analyzer's confidence floor
	// and degrade it to generation zero. Later rounds upload clean
	// evidence, so the no-sticky-degradation invariant has something to
	// bite on. Default 1; negative disables tainting.
	TaintRounds int
	// Cadence is the simulated re-profile interval. Default 30s.
	Cadence time.Duration
	// DrainDelay is the virtual-time deferral of the daemon's merge
	// workers — the window in which concurrent uploads coalesce into one
	// merge. Default 200ms.
	DrainDelay time.Duration
	// FaultSpec is a faultio.ParseNetSpec network fault plan, e.g.
	// "partition:inst-3..7@t=40s/20s;drop:upload%5". Empty runs a clean
	// network.
	FaultSpec string
	// StoreDir is the daemon's profile store directory. Required (the
	// caller owns its lifetime; tests pass t.TempDir()).
	StoreDir string
	// TraceWriter, when non-nil, receives the run's JSONL trace —
	// planserver, fleetclient and simnet events interleaved on the
	// virtual clock. Two runs of one seed write identical bytes.
	TraceWriter io.Writer
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Instances == 0 {
		c.Instances = 16
	}
	if c.Keys == 0 {
		c.Keys = 1
	}
	if c.Keys > c.Instances {
		c.Keys = c.Instances
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.TaintRounds == 0 {
		c.TaintRounds = 1
	} else if c.TaintRounds < 0 {
		c.TaintRounds = 0
	}
	if c.Cadence == 0 {
		c.Cadence = 30 * time.Second
	}
	if c.DrainDelay == 0 {
		c.DrainDelay = 200 * time.Millisecond
	}
	return c
}

// instance is one simulated production instance.
type instance struct {
	idx    int
	id     string
	key    profilestore.Key
	client *fleetclient.Client
	taints bool

	rounds, fallbacks, errors int

	finalOutcome fleetclient.Outcome
	finalErr     error
	finalETag    string
	finalPlan    *analyzer.Profile
}

// sim is one run's mutable state. Everything is driven from the
// single-threaded event loop.
type sim struct {
	cfg    Config
	clock  *simclock.Clock
	q      *simclock.Queue
	net    *network
	srv    *planserver.Server
	tracer *trace.Tracer

	instances []*instance
	// workers is the daemon's deferred merge-worker FIFO: Schedule
	// appends here and enqueues a release event; Pump (and the release
	// event) each run the next pending worker, so every worker runs
	// exactly once whether the clock or a blocked handler gets there
	// first.
	workers []func()
	pri     prng
	events  int
}

// Run executes one simulated fleet under cfg and returns its report. A
// non-nil error means the simulation could not be built (bad fault spec,
// unusable store); invariant violations are reported in Report.Violations,
// not as errors.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("simnet: Config.StoreDir is required")
	}
	var plan *faultio.NetPlan
	if cfg.FaultSpec != "" {
		var err error
		if plan, err = faultio.ParseNetSpec(cfg.FaultSpec); err != nil {
			return nil, err
		}
		// The run seed owns the fault draws unless the spec pins its own
		// (a replayed reproduction spec carries "seed=").
		if !strings.Contains(cfg.FaultSpec, "seed=") {
			plan.Seed = cfg.Seed
		}
	}
	store, err := profilestore.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}

	clock := simclock.New()
	s := &sim{
		cfg:   cfg,
		clock: clock,
		q:     simclock.NewQueue(clock),
		pri:   prng{state: uint64(cfg.Seed)},
	}
	if cfg.TraceWriter != nil {
		s.tracer = trace.New(trace.Options{Writer: cfg.TraceWriter, Now: clock.Now})
	}
	s.srv = planserver.New(store, planserver.Options{
		Now:      clock.Now,
		Tracer:   s.tracer,
		Schedule: s.schedule,
		Pump:     s.runWorker,
	})
	s.net = newNetwork(s.srv, clock, plan)

	for i := 0; i < cfg.Instances; i++ {
		id := "inst-" + strconv.Itoa(i)
		client, err := fleetclient.New(fleetclient.Options{
			BaseURL:    "http://polm2d.simnet",
			Seed:       core.DeriveSeed(cfg.Seed, "simnet", id),
			InstanceID: id,
			HTTPClient: &http.Client{Transport: s.net.transport(id)},
			Sleep:      func(d time.Duration) { clock.Advance(d) },
			Tracer:     s.tracer,
		})
		if err != nil {
			return nil, err
		}
		s.instances = append(s.instances, &instance{
			idx:    i,
			id:     id,
			key:    profilestore.Key{App: "App" + strconv.Itoa(i%cfg.Keys), Workload: "w"},
			client: client,
			taints: cfg.TaintRounds > 0 && i%3 == 0,
		})
	}

	s.scheduleFleet(plan)
	for s.q.RunNext() {
		s.events++
	}
	// Quiesce: publish every accepted upload (Flush pumps any still-
	// parked merge workers), then poll the whole fleet once on the now-
	// quiet network.
	s.srv.Flush()
	s.finalPolls()
	return s.report(plan), nil
}

// scheduleFleet lays out the whole run on the event queue: jittered boots,
// Rounds re-profile rounds with a mid-cadence poll each, the quiet point
// at which every fault has cleared, and one clean recovery round.
func (s *sim) scheduleFleet(plan *faultio.NetPlan) {
	cadence := s.cfg.Cadence
	var chaosEnd time.Duration
	for _, in := range s.instances {
		in := in
		boot := s.jitter("boot", in.id, cadence)
		s.q.At(boot, s.pri.next(), func() { s.boot(in) })
		for r := 0; r < s.cfg.Rounds; r++ {
			r := r
			at := boot + time.Duration(r+1)*cadence + s.jitter("round/"+strconv.Itoa(r), in.id, cadence/4)
			s.q.At(at, s.pri.next(), func() { s.round(in, r) })
			s.q.At(at+cadence/2, s.pri.next(), func() { s.poll(in) })
		}
		if end := boot + time.Duration(s.cfg.Rounds+1)*cadence; end > chaosEnd {
			chaosEnd = end
		}
	}
	if clear := plan.PartitionsClearBy(); clear+cadence/2 > chaosEnd {
		chaosEnd = clear + cadence/2
	}
	s.q.At(chaosEnd, s.pri.next(), func() {
		s.net.quiet = true
		if s.tracer.Enabled() {
			s.tracer.Event("simnet", "quiet")
		}
	})
	for _, in := range s.instances {
		in := in
		at := chaosEnd + cadence/4 + s.jitter("recovery", in.id, cadence)
		s.q.At(at, s.pri.next(), func() { s.round(in, s.cfg.Rounds) })
	}
}

// jitter derives a stable per-instance offset in [0, span) from the run
// seed — stable identity, not stream position, so reordering the schedule
// construction cannot move anyone's timing.
func (s *sim) jitter(label, id string, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	return time.Duration(uint64(core.DeriveSeed(s.cfg.Seed, "simnet", label, id)) % uint64(span))
}

// boot is an instance's first contact: fetch whatever plan the daemon
// already holds (a cold store answers no-plan).
func (s *sim) boot(in *instance) {
	_, outcome, err := in.client.FetchPlan(in.key.App, in.key.Workload)
	s.traceInstance("boot", in, outcomeString(outcome, err))
}

// round is one re-profile: build this round's cumulative evidence, upload
// it, and adopt the fleet plan that comes back.
func (s *sim) round(in *instance, r int) {
	_, fresh, err := in.client.SyncEvidence(s.evidence(in, r))
	in.rounds++
	outcome := "merged"
	switch {
	case err != nil:
		in.errors++
		outcome = "error"
	case !fresh:
		in.fallbacks++
		outcome = "fallback"
	}
	s.traceInstance("round", in, outcome, trace.Int64("round", int64(r)))
}

// poll is a mid-cadence conditional fetch — the steady-state traffic that
// exercises 304s and observes plan versions between merges.
func (s *sim) poll(in *instance) {
	_, outcome, err := in.client.FetchPlan(in.key.App, in.key.Workload)
	s.traceInstance("poll", in, outcomeString(outcome, err))
}

// finalPolls fetches once per instance, in index order, after the network
// is quiet and the daemon has flushed: the observation the convergence
// invariant is evaluated on.
func (s *sim) finalPolls() {
	for _, in := range s.instances {
		in.finalPlan, in.finalOutcome, in.finalErr = in.client.FetchPlan(in.key.App, in.key.Workload)
		in.finalETag = in.client.LastETag()
		s.traceInstance("final_poll", in, outcomeString(in.finalOutcome, in.finalErr))
	}
}

func outcomeString(o fleetclient.Outcome, err error) string {
	if err != nil {
		return "error"
	}
	return o.String()
}

func (s *sim) traceInstance(name string, in *instance, outcome string, attrs ...trace.Attr) {
	if !s.tracer.Enabled() {
		return
	}
	all := append([]trace.Attr{
		trace.String("instance", in.id),
		trace.String("outcome", outcome),
	}, attrs...)
	s.tracer.Event("simnet", name, all...)
}

// evidence builds instance in's cumulative evidence for round r: one site
// shared by every instance of the key and one per-instance site, both
// growing with r (re-profiles report cumulative counts, which is what
// makes last-write-wins aggregation count each instance once). Tainting
// instances report a mostly-tainted per-instance site during the first
// TaintRounds rounds — under the confidence floor — and clean counts
// afterwards.
func (s *sim) evidence(in *instance, r int) *analyzer.Profile {
	round := uint64(r) + 1
	shared := 40 * round
	n := round * uint64(16+in.idx%7)
	var tainted uint64
	if in.taints && r < s.cfg.TaintRounds {
		tainted = n - n/4
	}
	return &analyzer.Profile{
		App:      in.key.App,
		Workload: in.key.Workload,
		Sites: []analyzer.SiteStat{
			{
				Trace:     in.key.App + ".serve:1;Db.put:5",
				Allocated: shared,
				Buckets:   []uint64{shared / 4, shared - shared/4},
			},
			{
				Trace:     fmt.Sprintf("%s.serve:1;Worker.tick:%d", in.key.App, 100+in.idx),
				Allocated: n,
				Tainted:   tainted,
				Buckets:   []uint64{n - n/3, n / 3},
			},
		},
	}
}

// schedule is planserver.Options.Schedule: defer the merge worker into the
// FIFO and release it after the drain delay.
func (s *sim) schedule(work func()) {
	s.workers = append(s.workers, work)
	s.q.After(s.cfg.DrainDelay, s.pri.next(), func() { s.runWorker() })
}

// runWorker is planserver.Options.Pump and the release events' body: run
// the next pending merge worker, if any.
func (s *sim) runWorker() bool {
	if len(s.workers) == 0 {
		return false
	}
	work := s.workers[0]
	s.workers = s.workers[1:]
	work()
	return true
}

// prng is a splitmix64 stream for event tie-break priorities: same-instant
// events order by a seeded draw, so the interleaving is a property of the
// seed, not of schedule-construction order.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
