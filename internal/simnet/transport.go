package simnet

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/faultio"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
	"polm2/internal/simclock"
)

// This file is layer one of the simulator: a virtual transport that
// implements the fleetclient HTTP surface by invoking the planserver
// handler directly — no sockets, no goroutines, no real time. Every
// request passes through the network fault plan (faultio.NetPlan) first,
// and every request that reaches the daemon is recorded as a delivery; the
// delivery log is the ground truth the invariant checker replays against,
// independent of anything the daemon believes.

// Simulated network costs. A dropped request costs the client a timeout; a
// partition refusal is fast (connection refused, not a hang). Both advance
// the virtual clock so retry schedules interleave realistically.
const (
	dropTimeout = 150 * time.Millisecond
	refuseCost  = 5 * time.Millisecond
)

// delivery is one request that reached the daemon (faults included:
// duplicate and stale redeliveries are deliveries too, marked as such).
type delivery struct {
	at       time.Duration
	instance string
	op       string // "fetch" | "upload" | "feedback" | "sync"
	key      profilestore.Key
	status   int
	etag     string // response ETag ("" when none)
	dup      bool   // duplicate redelivery of the preceding delivery
	stale    bool   // redelivery of the instance's previous upload body
	// daemon names the target daemon ("polm2d" on a single-daemon fabric).
	// clientSeq is the uploader's own sequence header and stamp the stamp
	// the daemon assigned (seq@origin, "" when unreplicated) — together the
	// replication checker's per-write ground truth.
	daemon    string
	clientSeq uint64
	stamp     string
	// evidence is the parsed uploaded profile for accepted (200) uploads;
	// nil otherwise. It feeds the checker's independent fleet-merge model.
	evidence *analyzer.Profile
	// feedback is the parsed plan-health report for accepted (204)
	// feedback posts; nil otherwise. A feedback delivery naming an ETag is
	// the checker's proof the instance ran that plan version.
	feedback *rollout.Report
	// etagHonest reports that the response body's SHA-256 matches the
	// content-addressed ETag the daemon claimed (vacuously true without a
	// body or tag).
	etagHonest bool
}

// netStats counts fault firings, for the report.
type netStats struct {
	Refused, Dropped, Dup, Stale, Delayed, Err5xx int
}

// network is the shared fabric between every instance and the daemon (or
// daemons: a replicated simulation routes by the request's virtual host).
// It is driven only from the single-threaded event loop, so it needs no
// lock.
type network struct {
	handler http.Handler
	// handlers routes additional virtual hosts (daemon-0.simnet, ...) to
	// their daemons; hosts not present fall back to handler, which keeps
	// the single-daemon fabric byte-identical.
	handlers map[string]http.Handler
	clock    *simclock.Clock
	plan     *faultio.NetPlan
	// quiet disables every fault (set when the chaos phase ends): the
	// convergence invariant is "the fleet converges once faults clear",
	// so the recovery phase must actually clear them.
	quiet bool

	// decisions numbers each (instance, op) pair's requests so fault
	// draws are stable decision identities, not positions in a global
	// stream another instance's retries could shift.
	decisions  map[string]uint64
	lastUpload map[string][]byte // per instance, for stale redelivery
	deliveries []delivery
	stats      netStats
}

func newNetwork(handler http.Handler, clock *simclock.Clock, plan *faultio.NetPlan) *network {
	return &network{
		handler:    handler,
		handlers:   make(map[string]http.Handler),
		clock:      clock,
		plan:       plan,
		decisions:  make(map[string]uint64),
		lastUpload: make(map[string][]byte),
	}
}

// route registers a virtual host's daemon handler.
func (n *network) route(host string, h http.Handler) { n.handlers[host] = h }

// hostName strips the fabric's ".simnet" suffix: the identity partition
// windows match a daemon under ("daemon-1" for "daemon-1.simnet").
func hostName(host string) string { return strings.TrimSuffix(host, ".simnet") }

// transport returns the RoundTripper carrying one instance's traffic.
func (n *network) transport(instance string) http.RoundTripper {
	return &instanceTransport{net: n, instance: instance}
}

// Fabric is the simulator's in-memory network exposed for reuse outside a
// full simulation: harnesses that want fleetclient traffic delivered by
// direct handler invocation — no sockets, no server goroutines — build a
// Fabric around the daemon's handler and hand each client a Transport.
// The e2e fidelity test runs one convergence scenario over both httptest
// and a Fabric and asserts the merged plans are byte-identical.
//
// Like the simulation it is carved from, a Fabric is meant to be driven
// from one goroutine.
type Fabric struct{ net *network }

// NewFabric builds an in-memory network delivering to handler. plan may be
// nil for a fault-free fabric; clock supplies delivery timestamps and pays
// fault costs (timeouts, delays).
func NewFabric(handler http.Handler, clock *simclock.Clock, plan *faultio.NetPlan) *Fabric {
	return &Fabric{net: newNetwork(handler, clock, plan)}
}

// Transport returns the RoundTripper carrying one named instance's
// traffic.
func (f *Fabric) Transport(instance string) http.RoundTripper { return f.net.transport(instance) }

// Deliveries reports how many requests reached the handler.
func (f *Fabric) Deliveries() int { return len(f.net.deliveries) }

type instanceTransport struct {
	net      *network
	instance string
}

func (t *instanceTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.net
	op := "fetch"
	if req.Method == http.MethodPost {
		// Feedback is its own decision stream: a rollout run's health
		// reports draw their own faults without shifting the upload
		// draws, so enabling rollout never perturbs a non-rollout replay.
		if strings.HasSuffix(req.URL.Path, "/feedback") {
			op = "feedback"
		} else {
			op = "upload"
		}
	} else if strings.HasSuffix(req.URL.Path, "/sync") {
		// Anti-entropy pulls between daemons: their own decision stream
		// (the carrier's identity is the pulling daemon), so replication
		// traffic never shifts an instance's fault draws.
		op = "sync"
	}
	var body []byte
	if req.Body != nil {
		var err error
		if body, err = io.ReadAll(req.Body); err != nil {
			return nil, err
		}
		req.Body.Close()
	}

	if !n.quiet {
		// A partition isolates whoever it names on either side of the
		// request: the carrier (instance or pulling daemon) and the target
		// daemon. The single-daemon host ("polm2d") matches no partition
		// window's <prefix>-<n> pattern, so unreplicated runs are
		// unaffected.
		if n.plan.Partitioned(t.instance, n.clock.Now()) || n.plan.Partitioned(hostName(req.URL.Host), n.clock.Now()) {
			n.stats.Refused++
			n.clock.Advance(refuseCost)
			return nil, fmt.Errorf("simnet: %s partitioned from %s", t.instance, hostName(req.URL.Host))
		}
		id := t.instance + "|" + op
		seq := n.decisions[id]
		n.decisions[id] = seq + 1
		if _, ok := n.plan.Draw(faultio.NetDrop, op, t.instance, seq); ok {
			n.stats.Dropped++
			n.clock.Advance(dropTimeout)
			return nil, fmt.Errorf("simnet: request from %s dropped", t.instance)
		}
		if _, ok := n.plan.Draw(faultio.NetErr5xx, op, t.instance, seq); ok {
			n.stats.Err5xx++
			return synthesize5xx(req), nil
		}
		if f, ok := n.plan.Draw(faultio.NetDelay, op, t.instance, seq); ok {
			n.stats.Delayed++
			n.clock.Advance(f.Delay)
		}
		if op == "upload" {
			if _, ok := n.plan.Draw(faultio.NetStale, op, t.instance, seq); ok {
				if prev := n.lastUpload[t.instance]; prev != nil && !bytes.Equal(prev, body) {
					n.stats.Stale++
					// The old retransmission surfaces first; the fresh
					// request lands after it, so last-write-wins must
					// leave the fresh evidence standing.
					n.deliver(req, prev, t.instance, op, true, false)
				}
			}
		}
		resp := n.deliver(req, body, t.instance, op, false, false)
		if _, ok := n.plan.Draw(faultio.NetDup, op, t.instance, seq); ok {
			n.stats.Dup++
			resp = n.deliver(req, body, t.instance, op, false, true)
		}
		if op == "upload" {
			n.lastUpload[t.instance] = body
		}
		return resp, nil
	}

	resp := n.deliver(req, body, t.instance, op, false, false)
	if op == "upload" {
		n.lastUpload[t.instance] = body
	}
	return resp, nil
}

// deliver hands one request body to the target daemon's handler and
// records the delivery.
func (n *network) deliver(req *http.Request, body []byte, instance, op string, stale, dup bool) *http.Response {
	r := req.Clone(req.Context())
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	handler := n.handler
	if h, ok := n.handlers[req.URL.Host]; ok {
		handler = h
	}
	w := newMemWriter()
	handler.ServeHTTP(w, r)
	resp := w.response(req)

	d := delivery{
		at:       n.clock.Now(),
		instance: instance,
		op:       op,
		status:   resp.StatusCode,
		etag:     resp.Header.Get("ETag"),
		stale:    stale,
		dup:      dup,
		daemon:   hostName(req.URL.Host),
		stamp:    resp.Header.Get(planserver.EvidenceStampHeader),
	}
	if op == "upload" {
		if seq, err := strconv.ParseUint(req.Header.Get(planserver.EvidenceSeqHeader), 10, 64); err == nil {
			d.clientSeq = seq
		}
	}
	if op == "fetch" {
		d.key = profilestore.Key{
			App:      req.URL.Query().Get("app"),
			Workload: req.URL.Query().Get("workload"),
		}
	}
	if op == "upload" {
		var p analyzer.Profile
		if json.Unmarshal(body, &p) == nil {
			d.key = profilestore.Key{App: p.App, Workload: p.Workload}
			if d.status == http.StatusOK {
				d.evidence = &p
			}
		}
	}
	if op == "feedback" {
		var rep rollout.Report
		if json.Unmarshal(body, &rep) == nil {
			d.key = profilestore.Key{App: rep.App, Workload: rep.Workload}
			if d.status == http.StatusNoContent {
				d.feedback = &rep
			}
		}
	}
	d.etagHonest = etagHonest(d.etag, d.status, w.body.Bytes())
	n.deliveries = append(n.deliveries, d)
	return resp
}

// etagHonest checks the content-addressing contract on one response: a 200
// with an ETag must carry a body whose SHA-256 is the tag.
func etagHonest(etag string, status int, body []byte) bool {
	if etag == "" || status != http.StatusOK || len(body) == 0 {
		return true
	}
	sum := sha256.Sum256(body)
	return etag == fmt.Sprintf("%q", fmt.Sprintf("%x", sum))
}

// synthesize5xx fabricates the gateway 503 a NetErr5xx fault answers with;
// the request is never delivered.
func synthesize5xx(req *http.Request) *http.Response {
	body := []byte("simnet: synthesized gateway error\n")
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// memWriter is the in-memory http.ResponseWriter behind direct handler
// invocation.
type memWriter struct {
	code   int
	wrote  bool
	header http.Header
	body   bytes.Buffer
}

func newMemWriter() *memWriter {
	return &memWriter{code: http.StatusOK, header: make(http.Header)}
}

func (w *memWriter) Header() http.Header { return w.header }

func (w *memWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
}

func (w *memWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.body.Write(p)
}

// response converts the captured write into the *http.Response a client
// round trip returns. ContentLength is set explicitly: fleetclient sizes
// its decode buffer from it, exactly as it does against the real daemon.
func (w *memWriter) response(req *http.Request) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", w.code, http.StatusText(w.code)),
		StatusCode:    w.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        w.header,
		Body:          io.NopCloser(bytes.NewReader(w.body.Bytes())),
		ContentLength: int64(w.body.Len()),
		Request:       req,
	}
}
