package simnet

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"polm2/internal/rollout"
)

// TestRolloutCleanPromotes: with the canary controller on and no
// regression injected, every candidate eventually promotes, nothing rolls
// back, and the fleet converges on the daemon's stable version.
func TestRolloutCleanPromotes(t *testing.T) {
	rep, _ := runOnce(t, Config{
		Seed:      3,
		Instances: 12,
		Rollout:   &rollout.Config{},
	})
	requireOK(t, rep)
	if rep.Promotions == 0 {
		t.Fatal("no candidate was ever promoted on a healthy fleet")
	}
	if rep.Rollbacks != 0 {
		t.Fatalf("%d rollbacks on a healthy fleet", rep.Rollbacks)
	}
	if rep.Feedback == 0 {
		t.Fatal("no feedback reports were delivered")
	}
	for _, k := range rep.Rollout {
		if k.State != "stable" {
			t.Errorf("key %s ends in state %s, want stable", k.Key, k.State)
		}
		if k.Quarantined != 0 {
			t.Errorf("key %s quarantined %d versions without a regression", k.Key, k.Quarantined)
		}
	}
}

// TestRolloutRegressionRolledBack is the acceptance scenario from the
// issue: drift the fleet normally, inject a plan regression at a chosen
// virtual instant, and require — via the checker's replay of the delivery
// log — that no non-canary instance ever served the regressed version and
// that the fleet converged back to the last-good one.
func TestRolloutRegressionRolledBack(t *testing.T) {
	rep, _ := runOnce(t, Config{
		Seed:      5,
		Instances: 16,
		RegressAt: 70 * time.Second,
		Rollout:   &rollout.Config{},
	})
	requireOK(t, rep)
	if rep.Rollbacks == 0 {
		t.Fatal("regression was injected but nothing rolled back")
	}
	for _, k := range rep.Rollout {
		if k.Rollbacks == 0 {
			t.Errorf("key %s never rolled back", k.Key)
		}
		if k.Quarantined == 0 {
			t.Errorf("key %s rolled back without quarantining anything", k.Key)
		}
	}
}

// TestRolloutRegressionUnderFaults runs the regression scenario through a
// faulty network — dropped and duplicated uploads, gateway 5xxs, a
// partition window — and requires every rollout invariant to survive it.
func TestRolloutRegressionUnderFaults(t *testing.T) {
	rep, _ := runOnce(t, Config{
		Seed:      7,
		Instances: 16,
		Keys:      2,
		RegressAt: 70 * time.Second,
		Rollout:   &rollout.Config{},
		FaultSpec: "partition:inst-3..6@t=40s/20s;drop:upload%5;dup:upload%6;err5xx%3",
	})
	requireOK(t, rep)
	if rep.Rollbacks == 0 {
		t.Fatal("regression was injected but nothing rolled back")
	}
	if rep.Net.Dropped == 0 && rep.Net.Refused == 0 {
		t.Fatalf("fault plan never fired: %+v", rep.Net)
	}
}

// TestRolloutReplayByteIdentical extends the determinism bar to rollout
// mode: a regression scenario under faults, run twice from one seed, must
// produce byte-identical traces and invariant logs — cohort assignment,
// decision windows, rollback timing and all.
func TestRolloutReplayByteIdentical(t *testing.T) {
	cfg := Config{
		Seed:      42,
		Instances: 24,
		Keys:      2,
		RegressAt: 70 * time.Second,
		Rollout:   &rollout.Config{},
		FaultSpec: "drop:upload%5;dup:upload%6;err5xx%3",
	}
	first, firstTrace := runOnce(t, cfg)
	requireOK(t, first)
	if first.Rollbacks == 0 {
		t.Fatal("scenario produced no rollback to replay")
	}
	second, secondTrace := runOnce(t, cfg)
	requireOK(t, second)
	if !bytes.Equal(firstTrace.Bytes(), secondTrace.Bytes()) {
		a, b := strings.Split(firstTrace.String(), "\n"), strings.Split(secondTrace.String(), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("first divergence at trace line %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("traces diverge in length: %d vs %d bytes", firstTrace.Len(), secondTrace.Len())
	}
	if first.Log() != second.Log() {
		t.Fatalf("invariant logs diverge:\n--- run1\n%s--- run2\n%s", first.Log(), second.Log())
	}
}

// TestRolloutLogShape pins the rollout lines of the invariant log — the
// reproduction recipe for a failing CI sweep must say what the controller
// did.
func TestRolloutLogShape(t *testing.T) {
	rep, _ := runOnce(t, Config{
		Seed:      5,
		Instances: 8,
		RegressAt: 70 * time.Second,
		Rollout:   &rollout.Config{},
	})
	log := rep.Log()
	for _, want := range []string{"rollout: feedback=", "rollout key App0/w: state=", "rollbacks="} {
		if !strings.Contains(log, want) {
			t.Errorf("log is missing %q:\n%s", want, log)
		}
	}
}
