package simnet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
	"time"

	"polm2/internal/rollout"
)

// The replication scenarios run a pair (or trio) of planserver daemons on
// the simulated fabric: instances home on daemon (idx mod Daemons) and
// fail over to the others, daemons pull each other by anti-entropy, and a
// fault spec can partition a daemon by name. The layer-3 checker switches
// to the multi-daemon suite (checkMulti): post-heal convergence of every
// daemon to the stamp-winner merge, per-daemon accounting, stamp
// discipline, and — in rollout mode — quarantine propagation with the
// anti-resurrection probe.

// TestReplicationCleanConverges: two daemons, clean network. Anti-entropy
// alone must give both daemons the whole fleet's evidence and identical
// plans.
func TestReplicationCleanConverges(t *testing.T) {
	rep, _ := runOnce(t, Config{Seed: 3, Instances: 12, Keys: 2, Daemons: 2})
	requireOK(t, rep)
	if rep.PeerSyncs == 0 {
		t.Fatal("replicated run recorded no anti-entropy passes")
	}
	if rep.PeerDocsApplied == 0 {
		t.Fatal("anti-entropy never moved a document between daemons")
	}
	if rep.PeerSyncErrs != 0 {
		t.Fatalf("%d sync errors on a clean network", rep.PeerSyncErrs)
	}
	for _, k := range rep.PerKey {
		if k.Converged != k.Members {
			t.Errorf("key %s: %d/%d instances converged", k.Key, k.Converged, k.Members)
		}
	}
}

// TestReplicationThreeDaemons exercises the full mesh: three replicas,
// every instance homed on one of them, evidence flowing every direction.
func TestReplicationThreeDaemons(t *testing.T) {
	rep, _ := runOnce(t, Config{Seed: 11, Instances: 18, Keys: 3, Daemons: 3})
	requireOK(t, rep)
	if rep.PeerDocsApplied == 0 {
		t.Fatal("anti-entropy never moved a document between daemons")
	}
}

// TestReplicationDaemonPartition is the tentpole scenario: daemon-1 is
// partitioned — from its peers and from the fleet — for half a minute
// mid-run. Its instances must fail over to daemon-0, its anti-entropy
// pulls must fail while the window is open, and after it heals both
// daemons must converge to the independent stamp-winner merge of every
// delivered document: nothing lost, nothing double-counted.
func TestReplicationDaemonPartition(t *testing.T) {
	rep, _ := runOnce(t, Config{
		Seed:      42,
		Instances: 64,
		Keys:      2,
		Daemons:   2,
		FaultSpec: "partition:daemon-1..1@t=60s/30s;partition:inst-3..7@t=40s/20s;drop:upload%5;dup:upload%6;err5xx%3",
	})
	requireOK(t, rep)
	if rep.Net.Refused == 0 {
		t.Fatal("partition windows refused no traffic")
	}
	if rep.PeerSyncErrs == 0 {
		t.Fatal("daemon-1 was partitioned but no anti-entropy pull ever failed")
	}
	if rep.PeerDocsApplied == 0 {
		t.Fatal("anti-entropy never moved a document between daemons")
	}
	for _, k := range rep.PerKey {
		if k.Converged != k.Members {
			t.Errorf("key %s: %d/%d instances converged after the partition healed", k.Key, k.Converged, k.Members)
		}
	}
}

// TestReplicationReplayByteIdentical extends the determinism bar to the
// replicated fabric: the daemon-partition scenario, run twice from one
// seed, must produce byte-identical traces and invariant logs — sync
// scheduling, failover rotation, stamp assignment and all.
func TestReplicationReplayByteIdentical(t *testing.T) {
	cfg := Config{
		Seed:      42,
		Instances: 64,
		Keys:      2,
		Daemons:   2,
		FaultSpec: "partition:daemon-1..1@t=60s/30s;partition:inst-20..30@t=60s/35s;drop:upload%5;dup:upload%6;err5xx%3",
	}
	first, firstTrace := runOnce(t, cfg)
	requireOK(t, first)
	second, secondTrace := runOnce(t, cfg)
	requireOK(t, second)
	if !bytes.Equal(firstTrace.Bytes(), secondTrace.Bytes()) {
		a, b := strings.Split(firstTrace.String(), "\n"), strings.Split(secondTrace.String(), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("first divergence at trace line %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
			}
		}
		t.Fatalf("traces diverge in length: %d vs %d bytes", firstTrace.Len(), secondTrace.Len())
	}
	if first.Log() != second.Log() {
		t.Fatalf("invariant logs diverge:\n--- run1\n%s--- run2\n%s", first.Log(), second.Log())
	}
}

// TestReplicationSweep is the in-process miniature of CI's two-daemon
// sweep: eight seeds over a mixed fault plan with a daemon partition in
// every run.
func TestReplicationSweep(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rep, _ := runOnce(t, Config{
				Seed:      seed,
				Instances: 24,
				Keys:      2,
				Daemons:   2,
				FaultSpec: "partition:daemon-1..1@t=50s/25s;partition:inst-4..9@t=45s/25s;drop:upload%4;dup:upload%5;stale:upload%5;err5xx%2",
			})
			requireOK(t, rep)
		})
	}
}

// TestReplicationRolloutQuarantine: a regression injected into a
// replicated rollout run. Each daemon's controller decides on its own
// feedback; the rollback and its quarantine must propagate to the peer,
// both controllers must end terminal off the regressed version, and the
// checker's anti-resurrection probe runs one extra sync round to prove a
// stale peer cannot revive the quarantined candidate.
func TestReplicationRolloutQuarantine(t *testing.T) {
	rep, _ := runOnce(t, Config{
		Seed:      5,
		Instances: 16,
		Keys:      2,
		Daemons:   2,
		RegressAt: 70 * time.Second,
		Rollout:   &rollout.Config{},
		FaultSpec: "drop:upload%5;dup:upload%6;err5xx%3",
	})
	requireOK(t, rep)
	if rep.Rollbacks == 0 {
		t.Fatal("regression was injected but no daemon ever rolled back")
	}
	if len(rep.Rollout) != 2*2 {
		t.Fatalf("%d rollout rows, want one per (key, daemon)", len(rep.Rollout))
	}
	for _, k := range rep.Rollout {
		if k.Daemon == "" {
			t.Errorf("rollout row for key %s is missing its daemon", k.Key)
		}
	}
}

// TestReplicationLogShape pins the replicated log lines: a failing CI
// sweep's reproduction recipe must say how many daemons ran, how sync
// fared, and which daemon each rollout row describes.
func TestReplicationLogShape(t *testing.T) {
	rep, _ := runOnce(t, Config{
		Seed:      5,
		Instances: 8,
		Daemons:   2,
		RegressAt: 70 * time.Second,
		Rollout:   &rollout.Config{},
	})
	log := rep.Log()
	for _, want := range []string{"replication: daemons=2 syncs=", "rollout key App0/w@daemon-0: state=", "rollout key App0/w@daemon-1: state="} {
		if !strings.Contains(log, want) {
			t.Errorf("log is missing %q:\n%s", want, log)
		}
	}
}

// TestUnreplicatedBytesPinned pins the exact output of two single-daemon
// scenarios to their pre-replication hashes: replication is off by
// default, and off means byte-identical — the same trace and the same
// invariant log a build without any of the sync machinery produced. If
// this test fails, a default-path behavior changed; that is a compat
// break to be decided deliberately, not discovered in a fleet diff.
func TestUnreplicatedBytesPinned(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "plain",
			cfg: Config{
				Seed:      42,
				Instances: 64,
				Keys:      2,
				Rounds:    3,
				FaultSpec: "partition:inst-3..7@t=40s/20s;partition:inst-20..30@t=60s/35s;drop:upload%5;dup:upload%6;err5xx%3",
			},
			want: "465022b55d757936378b251907447dd9f4538ea56e721e5fca893ac63711b01a",
		},
		{
			name: "rollout",
			cfg: Config{
				Seed:      42,
				Instances: 24,
				Keys:      2,
				RegressAt: 70 * time.Second,
				Rollout:   &rollout.Config{},
				FaultSpec: "drop:upload%5;dup:upload%6;err5xx%3",
			},
			want: "bf1e58994aaabf9dcd960e287cc167cfd1f47d24fd3b1dd66995c58cc84583fa",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, tr := runOnce(t, tc.cfg)
			requireOK(t, rep)
			h := sha256.New()
			h.Write(tr.Bytes())
			h.Write([]byte(rep.Log()))
			if got := hex.EncodeToString(h.Sum(nil)); got != tc.want {
				t.Fatalf("single-daemon output hash = %s, pinned baseline %s\nlog:\n%s", got, tc.want, rep.Log())
			}
		})
	}
}
