package jvm

import (
	"testing"
	"testing/quick"

	"polm2/internal/gc/ng2c"
	"polm2/internal/heap"
	"polm2/internal/simclock"
)

func newVM(t *testing.T) *VM {
	t.Helper()
	col, err := ng2c.New(simclock.New(), ng2c.Config{
		Heap: heap.Config{
			RegionSize: 16 * 1024,
			PageSize:   4096,
			MaxBytes:   128 * 16 * 1024,
		},
		YoungBytes: 8 * 16 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(col)
}

func TestCodeLocRoundTrip(t *testing.T) {
	tests := []CodeLoc{
		{Class: "Class1", Method: "methodD", Line: 4},
		{Class: "org.apache.cassandra.Memtable", Method: "put", Line: 120},
	}
	for _, loc := range tests {
		parsed, err := ParseCodeLoc(loc.String())
		if err != nil {
			t.Fatalf("ParseCodeLoc(%q): %v", loc.String(), err)
		}
		if parsed != loc {
			t.Fatalf("round trip %v -> %v", loc, parsed)
		}
	}
}

func TestParseCodeLocErrors(t *testing.T) {
	for _, s := range []string{"", "noline", "Class.method:xx", "nomethod:5"} {
		if _, err := ParseCodeLoc(s); err == nil {
			t.Errorf("ParseCodeLoc(%q) should fail", s)
		}
	}
}

// Property: String/ParseCodeLoc round-trips for any dot-free method name and
// non-negative line.
func TestCodeLocRoundTripProperty(t *testing.T) {
	f := func(class, method string, line uint16) bool {
		for _, r := range class + method {
			if r == ':' || r == ';' {
				return true // separators excluded by construction
			}
		}
		if class == "" || method == "" {
			return true
		}
		for _, r := range method {
			if r == '.' {
				return true
			}
		}
		loc := CodeLoc{Class: class, Method: method, Line: int(line)}
		parsed, err := ParseCodeLoc(loc.String())
		return err == nil && parsed == loc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSiteTableInterning(t *testing.T) {
	st := NewSiteTable()
	tr1 := StackTrace{{Class: "A", Method: "m", Line: 1}, {Class: "B", Method: "n", Line: 2}}
	tr2 := StackTrace{{Class: "A", Method: "m", Line: 9}, {Class: "B", Method: "n", Line: 2}}
	id1 := st.Intern(tr1)
	id2 := st.Intern(tr2)
	if id1 == id2 {
		t.Fatal("different traces got the same id")
	}
	if got := st.Intern(tr1.Clone()); got != id1 {
		t.Fatal("re-interning a trace changed its id")
	}
	if st.Lookup(tr2) != id2 {
		t.Fatal("Lookup failed")
	}
	if st.Trace(id1).String() != tr1.String() {
		t.Fatal("Trace returned wrong trace")
	}
	if st.Trace(0) != nil || st.Trace(99) != nil {
		t.Fatal("Trace of unknown id should be nil")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	leaves := st.DistinctLeaves()
	if len(leaves) != 1 || leaves[0] != (CodeLoc{Class: "B", Method: "n", Line: 2}) {
		t.Fatalf("DistinctLeaves = %v", leaves)
	}
}

func TestThreadStackTraces(t *testing.T) {
	vm := newVM(t)
	th := vm.NewThread("worker")
	th.Enter("Main", "run")
	th.Call(10, "Class1", "methodB")
	th.Call(21, "Class1", "methodC")
	obj, err := th.Alloc(8, 512)
	if err != nil {
		t.Fatal(err)
	}
	want := "Main.run:10;Class1.methodB:21;Class1.methodC:8"
	if got := vm.Sites().Trace(obj.Site).String(); got != want {
		t.Fatalf("allocation trace = %q, want %q", got, want)
	}
	th.Return()
	th.Return()
	if th.Depth() != 1 {
		t.Fatalf("depth after returns = %d, want 1", th.Depth())
	}
}

func TestAllocWithoutFrameFails(t *testing.T) {
	vm := newVM(t)
	th := vm.NewThread("t")
	if _, err := th.Alloc(1, 64); err == nil {
		t.Fatal("Alloc with empty stack should fail")
	}
}

func TestCallWithoutFramePanics(t *testing.T) {
	vm := newVM(t)
	th := vm.NewThread("t")
	defer func() {
		if recover() == nil {
			t.Fatal("Call with empty stack did not panic")
		}
	}()
	th.Call(1, "A", "m")
}

func TestAllocHookObservesAllocations(t *testing.T) {
	vm := newVM(t)
	var sites []heap.SiteID
	vm.AddAllocHook(func(site heap.SiteID, obj *heap.Object) {
		if obj == nil {
			t.Error("hook got nil object")
		}
		sites = append(sites, site)
	})
	th := vm.NewThread("t")
	th.Enter("Main", "run")
	for i := 0; i < 3; i++ {
		if _, err := th.Alloc(5, 64); err != nil {
			t.Fatal(err)
		}
	}
	if len(sites) != 3 {
		t.Fatalf("hook saw %d allocations, want 3", len(sites))
	}
	if sites[0] != sites[1] || sites[1] != sites[2] {
		t.Fatal("same allocation site should produce same site id")
	}
}

// testPlan wraps two maps into a Plan.
type testPlan struct {
	calls   map[CodeLoc]heap.GenID
	allocs  map[CodeLoc]bool       // annotate-only sites
	directs map[CodeLoc]heap.GenID // sites carrying their own switch
}

func (p *testPlan) CallGen(loc CodeLoc) (heap.GenID, bool) {
	g, ok := p.calls[loc]
	return g, ok
}

func (p *testPlan) AllocGen(loc CodeLoc) (heap.GenID, bool, bool) {
	if g, ok := p.directs[loc]; ok {
		return g, true, true
	}
	return 0, false, p.allocs[loc]
}

// TestInstrumentationPlanSemantics executes the paper's Listing 1/Listing 2
// scenario: methodD's allocation is annotated @Gen, and the two call sites
// of methodC in methodB carry different target generations; the allocation
// through each path must land in the corresponding generation, and the
// target generation must be restored after each call.
func TestInstrumentationPlanSemantics(t *testing.T) {
	vm := newVM(t)
	pret := vm.Collector().(*ng2c.Collector)
	gen2 := pret.NewGeneration()
	gen3 := pret.NewGeneration()

	plan := &testPlan{
		calls: map[CodeLoc]heap.GenID{
			{Class: "Class1", Method: "methodB", Line: 21}: gen2,
			{Class: "Class1", Method: "methodB", Line: 26}: gen3,
		},
		allocs: map[CodeLoc]bool{
			{Class: "Class1", Method: "methodD", Line: 4}: true,
		},
	}
	vm.SetPlan(plan)

	th := vm.NewThread("t")
	th.Enter("Main", "run")
	th.Call(1, "Class1", "methodB")

	// Path one: methodB:21 -> methodC -> methodD.
	th.Call(21, "Class1", "methodC")
	if th.TargetGen() != gen2 {
		t.Fatalf("target gen inside instrumented call = %d, want %d", th.TargetGen(), gen2)
	}
	th.Call(8, "Class1", "methodD")
	obj1, err := th.Alloc(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	th.Return()
	th.Return()
	if th.TargetGen() != heap.Young {
		t.Fatal("target gen not restored after instrumented call returned")
	}

	// Path two: methodB:26 -> methodC -> methodD.
	th.Call(26, "Class1", "methodC")
	th.Call(8, "Class1", "methodD")
	obj2, err := th.Alloc(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	th.Return()
	th.Return()

	// Uninstrumented allocation in methodB itself.
	obj3, err := th.Alloc(30, 256)
	if err != nil {
		t.Fatal(err)
	}

	if obj1.Gen != gen2 {
		t.Fatalf("path-one object in gen %d, want %d", obj1.Gen, gen2)
	}
	if obj2.Gen != gen3 {
		t.Fatalf("path-two object in gen %d, want %d", obj2.Gen, gen3)
	}
	if obj3.Gen != heap.Young {
		t.Fatalf("unannotated object in gen %d, want young", obj3.Gen)
	}
}

func TestNestedInstrumentedCallsRestoreInOrder(t *testing.T) {
	vm := newVM(t)
	pret := vm.Collector().(*ng2c.Collector)
	outer := pret.NewGeneration()
	inner := pret.NewGeneration()
	plan := &testPlan{
		calls: map[CodeLoc]heap.GenID{
			{Class: "A", Method: "m", Line: 1}: outer,
			{Class: "B", Method: "n", Line: 2}: inner,
		},
		allocs: map[CodeLoc]bool{},
	}
	vm.SetPlan(plan)
	th := vm.NewThread("t")
	th.Enter("A", "m")
	th.Call(1, "B", "n") // switches to outer
	th.Call(2, "C", "o") // switches to inner
	if th.TargetGen() != inner {
		t.Fatalf("inner target = %d, want %d", th.TargetGen(), inner)
	}
	th.Return()
	if th.TargetGen() != outer {
		t.Fatalf("after inner return target = %d, want %d", th.TargetGen(), outer)
	}
	th.Return()
	if th.TargetGen() != heap.Young {
		t.Fatal("after outer return target not restored to young")
	}
}

func TestWorkAdvancesClockWithMutatorFactor(t *testing.T) {
	vm := newVM(t)
	th := vm.NewThread("t")
	before := vm.Collector().Clock().Now()
	th.Work(100)
	elapsed := vm.Collector().Clock().Now() - before
	if elapsed <= 0 {
		t.Fatal("Work did not advance the clock")
	}
}

func TestDirectAllocDirectiveAndSwitchCount(t *testing.T) {
	vm := newVM(t)
	pret := vm.Collector().(*ng2c.Collector)
	gen := pret.NewGeneration()
	plan := &testPlan{
		calls:   map[CodeLoc]heap.GenID{},
		allocs:  map[CodeLoc]bool{},
		directs: map[CodeLoc]heap.GenID{{Class: "A", Method: "m", Line: 3}: gen},
	}
	vm.SetPlan(plan)
	th := vm.NewThread("t")
	th.Enter("A", "m")
	obj, err := th.Alloc(3, 128)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Gen != gen {
		t.Fatalf("direct-directive object in gen %d, want %d", obj.Gen, gen)
	}
	if vm.GenSwitches() != 1 {
		t.Fatalf("GenSwitches = %d, want 1", vm.GenSwitches())
	}
	// An uninstrumented allocation performs no switch.
	if _, err := th.Alloc(9, 128); err != nil {
		t.Fatal(err)
	}
	if vm.GenSwitches() != 1 {
		t.Fatalf("GenSwitches after plain alloc = %d, want 1", vm.GenSwitches())
	}
}
