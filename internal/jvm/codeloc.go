// Package jvm provides the execution engine that stands in for the HotSpot
// JVM in this reproduction of POLM2.
//
// Workloads are written against a Thread API mirroring Java execution:
// methods are entered and left, calls and allocations happen at (class,
// method, line) code locations, and every allocation carries the full stack
// trace of its allocation site. The engine exposes the two integration
// points POLM2 needs:
//
//   - an allocation hook, used by the Recorder (§3.2) to log (stack trace,
//     identity hash) pairs exactly as the paper's Java agent does with ASM
//     callbacks;
//   - an instrumentation plan, consulted at every call and allocation site,
//     which is observationally equivalent to the paper's load-time bytecode
//     rewriting (§3.4): a SetGeneration directive at a call site switches
//     the thread's target generation around the call, and a @Gen annotation
//     at an allocation site pretenures the allocated object into the
//     thread's current target generation.
//
// DESIGN.md documents this substitution (plan-at-execution vs. rewritten
// bytecode); everything observable to the profiler and the collector is the
// same.
package jvm

import (
	"fmt"
	"strconv"
	"strings"
)

// CodeLoc identifies one code location: a line within a method. It is the
// (class, method, line) triple of the paper's STTree nodes (§3.3 uses a
// 4-tuple whose fourth element, the target generation, is computed by the
// Analyzer).
type CodeLoc struct {
	Class  string
	Method string
	Line   int
}

// String renders the location as Class.Method:Line.
func (l CodeLoc) String() string {
	var sb strings.Builder
	sb.Grow(len(l.Class) + len(l.Method) + 8)
	sb.WriteString(l.Class)
	sb.WriteByte('.')
	sb.WriteString(l.Method)
	sb.WriteByte(':')
	sb.WriteString(strconv.Itoa(l.Line))
	return sb.String()
}

// ParseCodeLoc parses the Class.Method:Line form produced by String.
// Class names may themselves contain dots (packages); the method is the
// segment after the last dot before the colon.
func ParseCodeLoc(s string) (CodeLoc, error) {
	colon := strings.LastIndexByte(s, ':')
	if colon < 0 {
		return CodeLoc{}, fmt.Errorf("jvm: code location %q missing line number", s)
	}
	line, err := strconv.Atoi(s[colon+1:])
	if err != nil {
		return CodeLoc{}, fmt.Errorf("jvm: code location %q has invalid line: %w", s, err)
	}
	dot := strings.LastIndexByte(s[:colon], '.')
	if dot < 0 {
		return CodeLoc{}, fmt.Errorf("jvm: code location %q missing method", s)
	}
	return CodeLoc{Class: s[:dot], Method: s[dot+1 : colon], Line: line}, nil
}

// StackTrace is an allocation stack trace: outermost frame first, the
// allocation site's own location last. Each element is the code location
// *within* that frame where the next call (or, for the last element, the
// allocation) happens.
type StackTrace []CodeLoc

// String renders the trace as frame;frame;...;frame.
func (st StackTrace) String() string {
	parts := make([]string, len(st))
	for i, l := range st {
		parts[i] = l.String()
	}
	return strings.Join(parts, ";")
}

// ParseStackTrace parses the frame;frame;...;frame form produced by
// String. It rejects empty traces: the engine never produces one, so an
// empty serialized trace is corrupt input, not a value.
func ParseStackTrace(s string) (StackTrace, error) {
	if s == "" {
		return nil, fmt.Errorf("jvm: empty stack trace")
	}
	parts := strings.Split(s, ";")
	st := make(StackTrace, len(parts))
	for i, p := range parts {
		loc, err := ParseCodeLoc(p)
		if err != nil {
			return nil, fmt.Errorf("jvm: stack trace frame %d: %w", i, err)
		}
		st[i] = loc
	}
	return st, nil
}

// Leaf returns the allocation site's own code location. It panics on an
// empty trace, which cannot be produced by the engine.
func (st StackTrace) Leaf() CodeLoc {
	if len(st) == 0 {
		panic("jvm: Leaf of empty stack trace")
	}
	return st[len(st)-1]
}

// Clone returns an independent copy of the trace.
func (st StackTrace) Clone() StackTrace {
	out := make(StackTrace, len(st))
	copy(out, st)
	return out
}
