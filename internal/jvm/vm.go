package jvm

import (
	"time"

	"polm2/internal/gc"
	"polm2/internal/heap"
)

// Plan is the instrumentation the engine applies while executing — the
// moral equivalent of the bytecode the paper's Instrumenter produces at
// class-load time (§3.4). Generation ids in a Plan are already resolved to
// collector generations (the Instrumenter calls NewGeneration at launch).
type Plan interface {
	// CallGen reports whether a setGeneration(gen) / setAllocGen(saved)
	// pair wraps the call at the given code location, and with which
	// target generation.
	CallGen(loc CodeLoc) (heap.GenID, bool)
	// AllocGen describes the instrumentation of the allocation at the
	// given code location: annotated reports a @Gen annotation;
	// explicit, when also set, means the site carries its own
	// setGeneration(gen)/restore pair so the allocation goes straight to
	// gen instead of the thread's current target generation.
	AllocGen(loc CodeLoc) (gen heap.GenID, explicit, annotated bool)
}

// AllocHook observes every allocation the engine performs. The Recorder
// registers one to log (site, identity hash) pairs (§3.2).
type AllocHook func(site heap.SiteID, obj *heap.Object)

// VM is the execution engine: it binds a collector, a site table, an
// optional instrumentation plan, and the threads of one simulated
// application.
type VM struct {
	collector gc.Collector
	sites     *SiteTable
	plan      Plan
	hooks     []AllocHook
	// opCost is the baseline simulated cost of one workload operation
	// unit, scaled by the collector's mutator factor when threads call
	// Work.
	opCost time.Duration
	// genSwitches counts dynamic setGeneration calls performed by the
	// installed plan — the overhead metric §4.4's hoisting optimization
	// reduces.
	genSwitches uint64
	// switchCost is the simulated mutator cost of one generation switch.
	switchCost time.Duration
	// pretenureCostPerByte is the mutator cost of pretenured allocation
	// per byte: NG2C's pretenured allocations bypass the TLAB fast path,
	// paying a synchronized slow path per object. Charged on every
	// @Gen-annotated allocation.
	pretenureCostPerByte time.Duration
}

// New builds an engine over the given collector.
func New(collector gc.Collector) *VM {
	return &VM{
		collector:  collector,
		sites:      NewSiteTable(),
		opCost:     time.Microsecond,
		switchCost: 150 * time.Nanosecond,
	}
}

// SetPlan installs an instrumentation plan; nil removes instrumentation.
// Installing a plan corresponds to the production phase's load-time
// rewriting (§3.5); running without one is the unmodified application.
func (vm *VM) SetPlan(p Plan) { vm.plan = p }

// AddAllocHook registers an allocation observer.
func (vm *VM) AddAllocHook(h AllocHook) { vm.hooks = append(vm.hooks, h) }

// Collector returns the engine's collector.
func (vm *VM) Collector() gc.Collector { return vm.collector }

// Heap returns the collector's heap.
func (vm *VM) Heap() *heap.Heap { return vm.collector.Heap() }

// Sites returns the engine's site table.
func (vm *VM) Sites() *SiteTable { return vm.sites }

// SetOpCost overrides the simulated cost of one Work unit.
func (vm *VM) SetOpCost(d time.Duration) { vm.opCost = d }

// GenSwitches returns the number of dynamic generation switches the
// installed plan has performed so far.
func (vm *VM) GenSwitches() uint64 { return vm.genSwitches }

// NewThread creates an execution thread. The name appears in diagnostics
// only.
func (vm *VM) NewThread(name string) *Thread {
	return &Thread{vm: vm, name: name, targetGen: heap.Young}
}

// SwitchCost returns the simulated cost of one dynamic generation switch.
func (vm *VM) SwitchCost() time.Duration { return vm.switchCost }

// SetPretenureCostPerByte sets the mutator tax charged per byte of
// pretenured allocation (the TLAB-bypass slow path of NG2C). Zero disables
// the tax.
func (vm *VM) SetPretenureCostPerByte(d time.Duration) { vm.pretenureCostPerByte = d }

// SetSwitchCost overrides the simulated cost of one dynamic generation
// switch (a setGeneration call pair). The default is 150ns; §4.4's hoisting
// optimization exists precisely to reduce how often this cost is paid.
func (vm *VM) SetSwitchCost(d time.Duration) { vm.switchCost = d }
