package jvm

import (
	"sort"
	"strings"

	"polm2/internal/heap"
)

// SiteTable interns allocation stack traces into heap.SiteIDs. The Recorder
// persists the table once per profiling run (§3.2: "allocation stack traces
// are only flushed to disk at the end of the application execution").
type SiteTable struct {
	byKey  map[string]heap.SiteID
	traces []StackTrace // index = SiteID - 1
	// byHash memoizes the engine's path-fingerprint lookups so the hot
	// allocation path never rebuilds a stack trace. Fingerprints hash
	// every frame and call line with FNV-1a; a 64-bit collision between
	// distinct traces of one run is vanishingly unlikely and would only
	// merge two profiling sites.
	byHash map[uint64]heap.SiteID
}

// NewSiteTable returns an empty site table.
func NewSiteTable() *SiteTable {
	return &SiteTable{
		byKey:  make(map[string]heap.SiteID),
		byHash: make(map[uint64]heap.SiteID),
	}
}

// lookupFast resolves a path fingerprint memoized by internSlow.
func (t *SiteTable) lookupFast(key uint64) (heap.SiteID, bool) {
	id, ok := t.byHash[key]
	return id, ok
}

// internSlow interns the trace and memoizes its fingerprint.
func (t *SiteTable) internSlow(key uint64, trace StackTrace) heap.SiteID {
	id := t.Intern(trace)
	t.byHash[key] = id
	return id
}

// Intern returns the id for the given trace, assigning a fresh one on first
// sight. Ids start at 1; zero remains "unknown site".
func (t *SiteTable) Intern(trace StackTrace) heap.SiteID {
	key := trace.String()
	if id, ok := t.byKey[key]; ok {
		return id
	}
	t.traces = append(t.traces, trace.Clone())
	id := heap.SiteID(len(t.traces))
	t.byKey[key] = id
	return id
}

// Lookup returns the id of an already interned trace, or zero.
func (t *SiteTable) Lookup(trace StackTrace) heap.SiteID {
	return t.byKey[trace.String()]
}

// Trace returns the stack trace for an id, or nil for an unknown id.
func (t *SiteTable) Trace(id heap.SiteID) StackTrace {
	if id == 0 || int(id) > len(t.traces) {
		return nil
	}
	return t.traces[id-1]
}

// Len returns the number of interned traces.
func (t *SiteTable) Len() int { return len(t.traces) }

// All returns every (id, trace) pair ordered by id.
func (t *SiteTable) All() []SiteEntry {
	out := make([]SiteEntry, len(t.traces))
	for i, tr := range t.traces {
		out[i] = SiteEntry{ID: heap.SiteID(i + 1), Trace: tr}
	}
	return out
}

// SiteEntry pairs a site id with its stack trace.
type SiteEntry struct {
	ID    heap.SiteID
	Trace StackTrace
}

// DistinctLeaves returns the distinct leaf code locations across all
// interned traces, sorted by their string form. Several traces may share a
// leaf — that is exactly the conflict situation of the paper's §3.3.
func (t *SiteTable) DistinctLeaves() []CodeLoc {
	seen := make(map[CodeLoc]struct{})
	for _, tr := range t.traces {
		seen[tr.Leaf()] = struct{}{}
	}
	out := make([]CodeLoc, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Compare(out[i].String(), out[j].String()) < 0
	})
	return out
}
