package jvm

import (
	"fmt"
	"time"

	"polm2/internal/heap"
)

// frame is one method invocation on a thread's call stack.
type frame struct {
	class  string
	method string
	// line is the code location within this method where execution
	// currently is (the call site of the frame above, or the allocation
	// line).
	line int
	// restoreGen, when set, is the target generation to restore when
	// this frame returns — the setAllocGen(saved) call the Instrumenter
	// emits after an instrumented call site (§3.4, Listing 2).
	restoreGen    heap.GenID
	hasRestoreGen bool
	// pinned holds the objects this frame's locals reference. Stack
	// locals are GC roots on a real JVM; the engine pins every allocated
	// object to the allocating frame and transfers the pins to the
	// caller on return (a returned reference is conservatively assumed
	// to escape). ReleaseLocals drops a frame's pins at operation
	// boundaries.
	pinned []*heap.Object
	// pathHash fingerprints the ancestor call path up to and including
	// this frame's (class, method) and the caller's call line; it lets
	// Alloc intern allocation sites without rebuilding the stack trace.
	pathHash uint64
}

// Thread is a simulated application thread. Threads are not safe for
// concurrent use; the simulation interleaves them deterministically.
type Thread struct {
	vm    *VM
	name  string
	stack []frame
	// targetGen is the thread-local current target generation of NG2C's
	// API (§2.2).
	targetGen heap.GenID
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Depth returns the current call-stack depth.
func (t *Thread) Depth() int { return len(t.stack) }

// TargetGen returns the thread's current target generation
// (System.getGeneration in NG2C's API).
func (t *Thread) TargetGen() heap.GenID { return t.targetGen }

// SetTargetGen sets the thread's target generation and returns the previous
// one (System.setGeneration). Workload code never calls this directly —
// instrumentation plans do it through Call — but manual-annotation
// experiments and tests may.
func (t *Thread) SetTargetGen(gen heap.GenID) heap.GenID {
	old := t.targetGen
	t.targetGen = gen
	return old
}

// Enter pushes a method invocation frame with no caller context — the
// thread's entry point (e.g. run()).
func (t *Thread) Enter(class, method string) {
	t.stack = append(t.stack, frame{
		class:    class,
		method:   method,
		pathHash: hashFrame(fnvOffset, class, method),
	})
}

// FNV-1a constants for the path fingerprint.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashFrame(seed uint64, class, method string) uint64 {
	h := seed
	for i := 0; i < len(class); i++ {
		h = (h ^ uint64(class[i])) * fnvPrime
	}
	h = (h ^ '.') * fnvPrime
	for i := 0; i < len(method); i++ {
		h = (h ^ uint64(method[i])) * fnvPrime
	}
	return h
}

func hashLine(seed uint64, line int) uint64 {
	h := seed
	v := uint64(line)
	for i := 0; i < 4; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// Call records that the current method, at the given line, invokes
// class.method, and pushes the callee frame. If the installed
// instrumentation plan wraps this call site in a generation switch, the
// thread's target generation changes for the dynamic extent of the call.
func (t *Thread) Call(line int, class, method string) {
	if len(t.stack) == 0 {
		panic(fmt.Sprintf("jvm: thread %s: Call with empty stack; use Enter first", t.name))
	}
	top := &t.stack[len(t.stack)-1]
	top.line = line
	f := frame{
		class:    class,
		method:   method,
		pathHash: hashFrame(hashLine(top.pathHash, line), class, method),
	}
	if t.vm.plan != nil {
		loc := CodeLoc{Class: top.class, Method: top.method, Line: line}
		if gen, ok := t.vm.plan.CallGen(loc); ok {
			f.restoreGen = t.targetGen
			f.hasRestoreGen = true
			t.targetGen = gen
			t.vm.genSwitches++
			t.vm.collector.Clock().Advance(t.vm.switchCost)
		}
	}
	t.stack = append(t.stack, f)
}

// Return pops the current method invocation, restoring the caller's target
// generation if the call site was instrumented. The frame's pinned locals
// transfer to the caller; pins of the last frame are dropped.
func (t *Thread) Return() {
	if len(t.stack) == 0 {
		panic(fmt.Sprintf("jvm: thread %s: Return with empty stack", t.name))
	}
	top := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	if top.hasRestoreGen {
		t.targetGen = top.restoreGen
	}
	if len(t.stack) > 0 {
		caller := &t.stack[len(t.stack)-1]
		caller.pinned = append(caller.pinned, top.pinned...)
	} else {
		t.unpin(top.pinned)
	}
}

// ReleaseLocals drops the current frame's stack pins — the locals of the
// running method go dead, as at the end of a request-loop iteration.
// Objects the application still needs must be reachable from explicit roots
// or from other live objects by now.
func (t *Thread) ReleaseLocals() {
	if len(t.stack) == 0 {
		return
	}
	top := &t.stack[len(t.stack)-1]
	t.unpin(top.pinned)
	top.pinned = top.pinned[:0]
}

func (t *Thread) unpin(objs []*heap.Object) {
	h := t.vm.Heap()
	for _, obj := range objs {
		h.UnpinRoot(obj)
	}
}

// Alloc allocates size bytes at the given line of the current method. The
// full stack trace is interned as the allocation site; the installed plan
// decides whether the site is pretenured (@Gen annotation) into the
// thread's current target generation. Registered allocation hooks observe
// the allocation.
func (t *Thread) Alloc(line int, size uint32) (*heap.Object, error) {
	if len(t.stack) == 0 {
		return nil, fmt.Errorf("jvm: thread %s: Alloc with empty stack", t.name)
	}
	top := &t.stack[len(t.stack)-1]
	top.line = line

	// Fast path: the (path hash, alloc line) pair has been interned
	// before; the full trace is only materialized for new sites.
	siteKey := hashLine(top.pathHash, line)
	site, ok := t.vm.sites.lookupFast(siteKey)
	if !ok {
		trace := make(StackTrace, len(t.stack))
		for i, f := range t.stack {
			trace[i] = CodeLoc{Class: f.class, Method: f.method, Line: f.line}
		}
		site = t.vm.sites.internSlow(siteKey, trace)
	}
	leaf := CodeLoc{Class: top.class, Method: top.method, Line: line}

	target := heap.Young
	if t.vm.plan != nil {
		if gen, explicit, annotated := t.vm.plan.AllocGen(leaf); annotated {
			if explicit {
				// The site carries its own switch/restore pair.
				target = gen
				t.vm.genSwitches++
				t.vm.collector.Clock().Advance(t.vm.switchCost)
			} else {
				target = t.targetGen
			}
			if target != heap.Young && t.vm.pretenureCostPerByte > 0 {
				// Pretenured allocations bypass the TLAB fast
				// path (§2.2): a per-byte mutator tax stands in
				// for the slow path of the real objects this
				// simulated allocation aggregates.
				t.vm.collector.Clock().Advance(time.Duration(size) * t.vm.pretenureCostPerByte)
			}
		}
	}
	obj, err := t.vm.collector.Allocate(size, site, target)
	if err != nil {
		return nil, fmt.Errorf("jvm: thread %s at %v: %w", t.name, leaf, err)
	}
	// Pin the new object to the allocating frame: the local holding it
	// is a GC root until the frame's locals are released.
	t.vm.Heap().PinRoot(obj)
	top.pinned = append(top.pinned, obj)
	for _, hook := range t.vm.hooks {
		hook(site, obj)
	}
	return obj, nil
}

// Work advances the simulated clock by n operation units, scaled by the
// collector's mutator factor (barrier tax). Workload drivers call this to
// model computation between allocations.
func (t *Thread) Work(n int) {
	d := time.Duration(float64(n) * float64(t.vm.opCost) * t.vm.collector.MutatorFactor())
	t.vm.collector.Clock().Advance(d)
}

// Trace returns the thread's current stack trace (for diagnostics and
// tests).
func (t *Thread) Trace() StackTrace {
	trace := make(StackTrace, len(t.stack))
	for i, f := range t.stack {
		trace[i] = CodeLoc{Class: f.class, Method: f.method, Line: f.line}
	}
	return trace
}
