package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Queue is a deterministic virtual-time event queue bound to a Clock: the
// discrete-event core of the fleet simulator (internal/simnet). Events are
// ordered by (instant, priority, insertion sequence); popping an event
// advances the clock to its instant and runs it. Two runs that schedule
// the same events in the same order execute them in the same order — there
// is no wall clock and no goroutine scheduling anywhere in the loop.
//
// The priority field is the seeded tie-break: events scheduled for the
// same instant run in priority order, so a simulation that derives
// priorities from its seed explores different same-instant interleavings
// across seeds while each seed replays exactly.
//
// Queue is not safe for concurrent use. It is meant to be driven by one
// loop goroutine; event functions may schedule further events.
type Queue struct {
	clock  *Clock
	events eventHeap
	seq    uint64
}

// event is one scheduled callback.
type event struct {
	at  time.Duration
	pri uint64
	seq uint64
	fn  func()
}

// NewQueue builds an empty queue driving clock.
func NewQueue(clock *Clock) *Queue {
	if clock == nil {
		panic("simclock: NewQueue with nil clock")
	}
	return &Queue{clock: clock}
}

// Clock returns the clock the queue advances.
func (q *Queue) Clock() *Clock { return q.clock }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// At schedules fn to run at instant t with tie-break priority pri.
// Scheduling in the past is a programming error: the clock cannot move
// backwards, so such an event would run "late" and silently distort every
// interval derived from the clock.
func (q *Queue) At(t time.Duration, pri uint64, fn func()) {
	if fn == nil {
		panic("simclock: scheduling a nil event")
	}
	if now := q.clock.Now(); t < now {
		panic(fmt.Sprintf("simclock: scheduling event at %v, before now %v", t, now))
	}
	heap.Push(&q.events, event{at: t, pri: pri, seq: q.seq, fn: fn})
	q.seq++
}

// After schedules fn to run d from now with tie-break priority pri.
func (q *Queue) After(d time.Duration, pri uint64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: scheduling event %v in the past", d))
	}
	q.At(q.clock.Now()+d, pri, fn)
}

// RunNext pops the earliest event, advances the clock to its instant and
// runs it. It reports false when the queue is empty. An event that
// overran its instant (the previous event advanced the clock past it)
// runs at the current instant — AdvanceTo never moves backwards.
func (q *Queue) RunNext() bool {
	if len(q.events) == 0 {
		return false
	}
	e := heap.Pop(&q.events).(event)
	q.clock.AdvanceTo(e.at)
	e.fn()
	return true
}

// NextAt returns the instant of the earliest pending event. It is only
// meaningful when Len() > 0.
func (q *Queue) NextAt() time.Duration {
	if len(q.events) == 0 {
		return 0
	}
	return q.events[0].at
}

// eventHeap orders events by (at, pri, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
