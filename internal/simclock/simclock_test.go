package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestZeroValueStartsAtZero(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	if got := c.Advance(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Fatalf("Advance returned %v, want 5ms", got)
	}
	c.Advance(3 * time.Second)
	if got := c.Now(); got != 3*time.Second+5*time.Millisecond {
		t.Fatalf("Now() = %v, want 3.005s", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.Advance(10 * time.Millisecond)
	if got := c.AdvanceTo(5 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("AdvanceTo past instant moved clock to %v", got)
	}
	if got := c.AdvanceTo(20 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("AdvanceTo future instant = %v, want 20ms", got)
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	sw := c.StartStopwatch()
	if sw.Start() != time.Second {
		t.Fatalf("Start() = %v, want 1s", sw.Start())
	}
	c.Advance(250 * time.Millisecond)
	if got := sw.Elapsed(); got != 250*time.Millisecond {
		t.Fatalf("Elapsed() = %v, want 250ms", got)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(goroutines*perG) * time.Microsecond
	if got := c.Now(); got != want {
		t.Fatalf("concurrent Advance lost updates: Now() = %v, want %v", got, want)
	}
}
