// Package simclock provides the deterministic simulated clock that every
// component of the POLM2 reproduction runs against.
//
// The paper's evaluation runs workloads for 30 wall-clock minutes on a Xeon
// E5505; this reproduction compresses those runs into simulated time so a
// full experiment executes in seconds. All durations reported by the
// benchmark harness are simulated durations, advanced explicitly by the
// workload driver (mutator work) and by the collectors (stop-the-world
// pauses).
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a deterministic simulated clock. The zero value is ready to use
// and starts at instant zero.
//
// Clock is safe for concurrent use; in practice the simulation is
// single-threaded per run, but the recorder and dumper observe the clock
// from helper goroutines in a few tests.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// New returns a clock starting at instant zero.
func New() *Clock {
	return &Clock{}
}

// Now returns the current simulated instant, expressed as the duration since
// the start of the simulation.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new instant.
// Advancing by a negative duration is a programming error and panics, since
// a backwards-moving clock would silently corrupt every pause log and
// throughput series derived from it.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("simclock: Advance by negative duration %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to instant t. It is a no-op when t is in
// the past; this makes it safe for rate-paced schedulers that may have been
// overtaken by a long GC pause.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Stopwatch measures a span of simulated time.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch returns a stopwatch anchored at the current instant.
func (c *Clock) StartStopwatch() Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed returns the simulated time since the stopwatch was started.
func (s Stopwatch) Elapsed() time.Duration {
	return s.clock.Now() - s.start
}

// Start returns the instant at which the stopwatch was started.
func (s Stopwatch) Start() time.Duration {
	return s.start
}
