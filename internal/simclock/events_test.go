package simclock

import (
	"testing"
	"time"
)

func TestQueueOrdersByInstantPrioritySeq(t *testing.T) {
	clock := New()
	q := NewQueue(clock)
	var got []string
	add := func(at time.Duration, pri uint64, name string) {
		q.At(at, pri, func() { got = append(got, name) })
	}
	add(30*time.Millisecond, 0, "late")
	add(10*time.Millisecond, 5, "early-low-pri")
	add(10*time.Millisecond, 1, "early-high-pri")
	add(10*time.Millisecond, 1, "early-high-pri-2") // same (at, pri): FIFO by seq
	add(20*time.Millisecond, 0, "mid")

	for q.RunNext() {
	}
	want := []string{"early-high-pri", "early-high-pri-2", "early-low-pri", "mid", "late"}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if clock.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v after drain, want 30ms", clock.Now())
	}
}

func TestQueueAdvancesClockAndAllowsOverrun(t *testing.T) {
	clock := New()
	q := NewQueue(clock)
	var at []time.Duration
	q.At(10*time.Millisecond, 0, func() {
		// This event overruns past the next event's instant; the next
		// event must still run, at the overrun instant.
		clock.Advance(50 * time.Millisecond)
		at = append(at, clock.Now())
	})
	q.At(20*time.Millisecond, 0, func() { at = append(at, clock.Now()) })
	for q.RunNext() {
	}
	if at[0] != 60*time.Millisecond || at[1] != 60*time.Millisecond {
		t.Fatalf("instants = %v, want [60ms 60ms]", at)
	}
}

func TestQueueEventsScheduleEvents(t *testing.T) {
	clock := New()
	q := NewQueue(clock)
	var n int
	var tick func()
	tick = func() {
		n++
		if n < 5 {
			q.After(time.Second, 0, tick)
		}
	}
	q.After(time.Second, 0, tick)
	steps := 0
	for q.RunNext() {
		steps++
	}
	if n != 5 || steps != 5 {
		t.Fatalf("ran %d ticks in %d steps, want 5/5", n, steps)
	}
	if clock.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", clock.Now())
	}
}

func TestQueueRejectsPastAndNil(t *testing.T) {
	clock := New()
	q := NewQueue(clock)
	clock.Advance(time.Second)
	mustPanic(t, "past event", func() { q.At(time.Millisecond, 0, func() {}) })
	mustPanic(t, "nil event", func() { q.At(2*time.Second, 0, nil) })
	mustPanic(t, "negative After", func() { q.After(-time.Second, 0, func() {}) })
	mustPanic(t, "nil clock", func() { NewQueue(nil) })
}

func TestQueueNextAt(t *testing.T) {
	q := NewQueue(New())
	if q.NextAt() != 0 || q.Len() != 0 {
		t.Fatal("empty queue reports pending work")
	}
	q.At(7*time.Millisecond, 0, func() {})
	if q.NextAt() != 7*time.Millisecond {
		t.Fatalf("NextAt = %v, want 7ms", q.NextAt())
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}
