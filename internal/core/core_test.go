package core

import (
	"testing"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/gc"
	"polm2/internal/simclock"
	"polm2/internal/snapshot"
)

func TestScaledGeometry(t *testing.T) {
	g := ScaledGeometry(0)
	if g.HeapBytes != PaperHeapBytes/DefaultScale {
		t.Fatalf("default heap = %d", g.HeapBytes)
	}
	if g.YoungBytes != PaperYoungBytes/DefaultScale {
		t.Fatalf("default young = %d", g.YoungBytes)
	}
	if g.HeapBytes%uint64(g.RegionSize) != 0 {
		t.Fatal("heap not a whole number of regions")
	}
	g2 := ScaledGeometry(128)
	if g2.HeapBytes != PaperHeapBytes/128 {
		t.Fatalf("scale 128 heap = %d", g2.HeapBytes)
	}
}

func TestScaledCostModel(t *testing.T) {
	base := gc.DefaultCostModel()
	scaled := ScaledCostModel(DefaultScale)
	if scaled.PerCopiedByte != base.PerCopiedByte*DefaultScale {
		t.Fatal("PerCopiedByte not scaled")
	}
	if scaled.PerRegion != base.PerRegion {
		t.Fatal("PerRegion must not scale (regions represent proportionally more memory)")
	}
	if scaled.Base != base.Base {
		t.Fatal("Base must not scale")
	}
}

func TestPretenureCostPerByte(t *testing.T) {
	if got := PretenureCostPerByte(0); got <= 0 {
		t.Fatalf("default pretenure cost = %v", got)
	}
	if PretenureCostPerByte(128) <= PretenureCostPerByte(64) {
		t.Fatal("pretenure cost should grow with scale")
	}
}

func TestNewCollectorNames(t *testing.T) {
	geom := ScaledGeometry(0)
	cost := ScaledCostModel(0)
	for _, name := range Collectors() {
		col, err := NewCollector(name, simclock.New(), geom, cost)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if col.Name() != name {
			t.Fatalf("collector %s reports name %s", name, col.Name())
		}
	}
	if _, err := NewCollector("ZGC", simclock.New(), geom, cost); err == nil {
		t.Fatal("unknown collector should fail")
	}
}

func TestRunOptionsDefaults(t *testing.T) {
	o := RunOptions{}.withDefaults()
	if o.Duration != PaperRunDuration || o.Warmup != PaperWarmup || o.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	short := RunOptions{Duration: 2 * time.Minute}.withDefaults()
	if short.Warmup > time.Minute {
		t.Fatalf("warmup not clamped for short runs: %v", short.Warmup)
	}
}

func TestProfileOptionsDefaults(t *testing.T) {
	o := ProfileOptions{}.withDefaults()
	if o.Duration != DefaultProfilingDuration || o.Seed != 1 || o.Scale != DefaultScale {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestRunAppRejectsPlanOnNonPretenuring(t *testing.T) {
	app := &stubApp{}
	profile := stubProfile()
	if _, err := RunApp(app, "w", CollectorG1, PlanPOLM2, profile, RunOptions{Duration: time.Minute}); err == nil {
		t.Fatal("G1 cannot apply a pretenuring profile")
	}
	if _, err := RunApp(app, "w", CollectorC4, PlanPOLM2, profile, RunOptions{Duration: time.Minute}); err == nil {
		t.Fatal("C4 cannot apply a pretenuring profile")
	}
}

func TestRunAppStubEndToEnd(t *testing.T) {
	app := &stubApp{}
	res, err := RunApp(app, "w", CollectorG1, PlanNone, nil, RunOptions{
		Duration: 2 * time.Minute,
		Warmup:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "stub" || res.Workload != "w" || res.Collector != CollectorG1 {
		t.Fatalf("metadata wrong: %+v", res)
	}
	if res.WarmOps == 0 {
		t.Fatal("stub app counted no warm ops")
	}
	if res.SimDuration < 2*time.Minute {
		t.Fatalf("run stopped early at %v", res.SimDuration)
	}
}

func TestProfileAppStubEndToEnd(t *testing.T) {
	app := &stubApp{}
	res, err := ProfileApp(app, "w", ProfileOptions{Duration: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("no profile produced")
	}
	if res.GCCycles == 0 {
		t.Fatal("profiling run triggered no collections")
	}
	if len(res.Snapshots) == 0 {
		t.Fatal("no snapshots taken")
	}
	// The stub's retained site must be instrumented; its transient site
	// must not.
	if res.Profile.InstrumentedSites() == 0 {
		t.Fatalf("stub profile instrumented nothing: %+v", res.Profile)
	}
}

func TestProfileAppPersistsSnapshots(t *testing.T) {
	dir := t.TempDir()
	app := &stubApp{}
	res, err := ProfileApp(app, "w", ProfileOptions{
		Duration:    3 * time.Minute,
		SnapshotDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := snapshot.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(res.Snapshots) {
		t.Fatalf("persisted %d snapshots, took %d", len(loaded), len(res.Snapshots))
	}
	// Re-running the Analyzer from the persisted images must produce the
	// same profile.
	reanalyzed, err := analyzer.Analyze(res.RecordsDir, loaded, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reanalyzed.InstrumentedSites() != res.Profile.InstrumentedSites() ||
		reanalyzed.Generations != res.Profile.Generations {
		t.Fatalf("off-line re-analysis diverged: %d/%d sites, %d/%d gens",
			reanalyzed.InstrumentedSites(), res.Profile.InstrumentedSites(),
			reanalyzed.Generations, res.Profile.Generations)
	}
}
