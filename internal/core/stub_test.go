package core

import (
	"fmt"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/heap"
	"polm2/internal/workload"
)

// stubApp is a minimal core.App used by the core package's own tests: it
// allocates one transient and one retained object per operation.
type stubApp struct{}

var _ App = (*stubApp)(nil)

func (*stubApp) Name() string        { return "stub" }
func (*stubApp) Workloads() []string { return []string{"w"} }

func (*stubApp) Run(env *Env, workloadName string) error {
	if workloadName != "w" {
		return fmt.Errorf("stub: unknown workload %q", workloadName)
	}
	th := env.VM().NewThread("stub")
	th.Enter("Stub", "run")
	pacer, err := workload.NewPacer(env.Clock(), 200)
	if err != nil {
		return err
	}
	var retained []retainedEntry
	h := env.Heap()
	for !env.Done() {
		pacer.Await()
		// Transient garbage.
		if _, err := th.Alloc(10, 8192); err != nil {
			return err
		}
		// Retained for ~40 seconds.
		th.Call(20, "Store", "put")
		obj, err := th.Alloc(3, 1024)
		th.Return()
		if err != nil {
			return err
		}
		if err := h.AddRoot(obj.ID); err != nil {
			return err
		}
		retained = append(retained, retainedEntry{obj: obj, expiry: env.Now() + 40*time.Second})
		for len(retained) > 0 && retained[0].expiry <= env.Now() {
			if err := h.RemoveRoot(retained[0].obj.ID); err != nil {
				return err
			}
			retained = retained[1:]
		}
		th.ReleaseLocals()
		env.CountOps(1)
	}
	return nil
}

type retainedEntry struct {
	obj    *heap.Object
	expiry time.Duration
}

func (*stubApp) ManualProfile(workloadName string) (*analyzer.Profile, error) {
	if workloadName != "w" {
		return nil, fmt.Errorf("stub: unknown workload %q", workloadName)
	}
	p := &analyzer.Profile{
		App:         "stub",
		Workload:    workloadName,
		Generations: 1,
		Allocs:      []analyzer.AllocDirective{{Loc: "Store.put:3", Gen: 1, Direct: true}},
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func stubProfile() *analyzer.Profile {
	p, err := (&stubApp{}).ManualProfile("w")
	if err != nil {
		panic(err)
	}
	return p
}
