package core

import (
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/metrics"
	"polm2/internal/simclock"
	"polm2/internal/workload"
)

// Env is the execution environment a workload runs in: the engine, the
// simulated clock, seeded randomness, the run deadline, and the operation
// counter that feeds the throughput figures.
type Env struct {
	vm       *jvm.VM
	clock    *simclock.Clock
	rand     *workload.Rand
	ops      *metrics.TimeSeries
	deadline time.Duration
}

// NewEnv builds an execution environment over an already-wired engine.
// The two-phase workflow builds its environments internally; NewEnv exists
// for alternative runners (the online profiling mode).
func NewEnv(vm *jvm.VM, clock *simclock.Clock, rnd *workload.Rand, deadline time.Duration) *Env {
	return &Env{vm: vm, clock: clock, rand: rnd, ops: mustTimeSeries(), deadline: deadline}
}

// VM returns the execution engine.
func (e *Env) VM() *jvm.VM { return e.vm }

// OpsSeries returns the per-second completed-operation series.
func (e *Env) OpsSeries() *metrics.TimeSeries { return e.ops }

// Clock returns the simulated clock.
func (e *Env) Clock() *simclock.Clock { return e.clock }

// Rand returns the run's seeded random source.
func (e *Env) Rand() *workload.Rand { return e.rand }

// Heap returns the collector's heap (for the graph API).
func (e *Env) Heap() *heap.Heap { return e.vm.Heap() }

// Now returns the current simulated instant.
func (e *Env) Now() time.Duration { return e.clock.Now() }

// Done reports whether the run deadline has passed.
func (e *Env) Done() bool { return e.clock.Now() >= e.deadline }

// Deadline returns the run deadline.
func (e *Env) Deadline() time.Duration { return e.deadline }

// CountOps records n completed operations at the current instant; the
// harness derives the per-second series (Figure 8) and the totals
// (Figure 7) from these counts.
func (e *Env) CountOps(n int64) {
	e.ops.Record(e.clock.Now(), n)
}

// App is a simulated application with one or more evaluation workloads.
// Implementations live in internal/apps.
type App interface {
	// Name returns the application name ("Cassandra", "Lucene",
	// "GraphChi").
	Name() string
	// Workloads names the app's evaluation workloads ("WI", "WR",
	// "RI", "PR", "CC", ...).
	Workloads() []string
	// Run drives one workload until env.Done(). Implementations must be
	// deterministic given env.Rand().
	Run(env *Env, workloadName string) error
	// ManualProfile returns the expert's hand-written NG2C profile for
	// the workload — the paper's "NG2C with manual code modifications"
	// baseline, including the documented human errors on some workloads
	// (§5.4.1).
	ManualProfile(workloadName string) (*analyzer.Profile, error)
}
