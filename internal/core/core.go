// Package core orchestrates the two phases of POLM2 (§3.5): the profiling
// phase (Recorder + Dumper + Analyzer producing an application allocation
// profile) and the production phase (Instrumenter applying the profile
// while the application runs under a pretenuring collector).
//
// It also owns the evaluation scaling: the paper's setup (12 GB heap, 2 GB
// young generation, 30-minute runs on a Xeon E5505) is scaled down by a
// single factor, with work-proportional GC and dump costs scaled up by the
// same factor so simulated pause magnitudes stay comparable to the paper's.
package core

import (
	"fmt"
	"time"

	"polm2/internal/dumper"
	"polm2/internal/gc"
	"polm2/internal/gc/c4"
	"polm2/internal/gc/g1"
	"polm2/internal/gc/ng2c"
	"polm2/internal/heap"
	"polm2/internal/simclock"
)

// Paper-setup constants (§5.1).
const (
	// PaperHeapBytes is the paper's fixed 12 GB heap.
	PaperHeapBytes = 12 << 30
	// PaperYoungBytes is the paper's fixed 2 GB young generation.
	PaperYoungBytes = 2 << 30
	// PaperRunDuration is the paper's per-workload run length.
	PaperRunDuration = 30 * time.Minute
	// PaperWarmup is the ignored start of every run (§5.1).
	PaperWarmup = 5 * time.Minute
	// PaperProfilingDuration is the profiling-phase length (§5.3: five
	// minutes suffice after a one-minute warmup).
	PaperProfilingDuration = 6 * time.Minute
	// DefaultProfilingDuration is this reproduction's profiling window.
	// One simulated operation stands for Scale real operations, so rare
	// events (memtable flushes, segment rollovers) are Scale times
	// chunkier than the paper's; a longer window restores the sample
	// counts the paper's 6 minutes provided (§5.3 explicitly allows
	// longer profiling for workloads that need it).
	DefaultProfilingDuration = 15 * time.Minute
)

// OpScale is how many real operations one simulated operation stands for —
// the same factor the heap is scaled down by. Throughput figures multiply
// simulated operation counts by OpScale to report paper-comparable rates.
const OpScale = DefaultScale

// DefaultScale divides the paper's heap geometry. 64 shrinks the 12 GB heap
// to 192 MiB of simulated memory, small enough that a full experiment runs
// in seconds while keeping hundreds of regions in play.
const DefaultScale = 64

// Geometry sizes the simulated heap for one run.
type Geometry struct {
	RegionSize uint32
	PageSize   uint32
	HeapBytes  uint64
	YoungBytes uint64
}

// ScaledGeometry derives a geometry from the paper's setup divided by
// scale.
func ScaledGeometry(scale uint64) Geometry {
	if scale == 0 {
		scale = DefaultScale
	}
	return Geometry{
		RegionSize: 256 << 10, // 12G/64 = 192M heap in 256K regions: 768 regions
		PageSize:   4096,
		HeapBytes:  PaperHeapBytes / scale,
		YoungBytes: PaperYoungBytes / scale,
	}
}

// PretenureCostPerByte returns the mutator tax per pretenured byte at the
// given scale: one simulated byte stands for `scale` real bytes, and the
// real runtime pays roughly 400ns of allocation slow path (synchronized
// bump pointer, no TLAB, card marking) per ~128-byte object placed outside
// the TLAB.
func PretenureCostPerByte(scale uint64) time.Duration {
	if scale == 0 {
		scale = DefaultScale
	}
	return time.Duration(scale) * 400 * time.Nanosecond / 128
}

// ScaledCostModel scales the work-proportional GC costs up by the heap
// scale factor, so that copying the scaled-down equivalent of the paper's
// survivor sets produces pause times of the paper's magnitude. Fixed costs
// are left alone.
func ScaledCostModel(scale uint64) gc.CostModel {
	if scale == 0 {
		scale = DefaultScale
	}
	m := gc.DefaultCostModel()
	s := time.Duration(scale)
	m.PerRemsetEntry *= s
	m.PerCopiedByte *= s
	m.PerCopiedObject *= s
	m.PerTracedObject *= s
	// PerRegion stays unscaled: one simulated region stands for `scale`
	// times the memory, but per-region bookkeeping is per region.
	return m
}

// ScaledDumpCostModel scales the dump costs the same way: one simulated
// page stands for scale pages of the paper's heap.
func ScaledDumpCostModel(scale uint64) dumper.CostModel {
	if scale == 0 {
		scale = DefaultScale
	}
	m := dumper.DefaultCostModel()
	s := time.Duration(scale)
	m.CRIUPerPage *= s
	m.JmapPerLiveByte *= s
	m.JmapPerObject *= s
	m.CRIUPageMetaBytes *= scale
	m.JmapObjectHeaderBytes *= scale
	return m
}

// Collector names accepted by NewCollector.
const (
	CollectorG1   = "G1"
	CollectorNG2C = "NG2C"
	CollectorC4   = "C4"
)

// Collectors lists the collector names the harness can run.
func Collectors() []string {
	return []string{CollectorG1, CollectorNG2C, CollectorC4}
}

// NewCollector builds the named collector over the given geometry.
func NewCollector(name string, clock *simclock.Clock, geom Geometry, cost gc.CostModel) (gc.Collector, error) {
	heapCfg := heap.Config{
		RegionSize: geom.RegionSize,
		PageSize:   geom.PageSize,
		MaxBytes:   geom.HeapBytes,
	}
	// Mixed collections must be able to keep up with promotion at this
	// geometry: cap the per-cycle mixed collection set at 1/12 of the
	// heap's regions and start reclaiming old regions at 30% occupancy.
	mixedRegions := int(geom.HeapBytes / uint64(geom.RegionSize) / 12)
	if mixedRegions < 8 {
		mixedRegions = 8
	}
	const ihop = 0.25
	switch name {
	case CollectorG1:
		return g1.New(clock, g1.Config{
			Heap:            heapCfg,
			Cost:            cost,
			YoungBytes:      geom.YoungBytes,
			IHOP:            ihop,
			MaxMixedRegions: mixedRegions,
		})
	case CollectorNG2C:
		return ng2c.New(clock, ng2c.Config{
			Heap:            heapCfg,
			Cost:            cost,
			YoungBytes:      geom.YoungBytes,
			IHOP:            ihop,
			MaxMixedRegions: mixedRegions,
		})
	case CollectorC4:
		return c4.New(clock, c4.Config{Heap: heapCfg, Cost: cost})
	default:
		return nil, fmt.Errorf("core: unknown collector %q (want %v)", name, Collectors())
	}
}
