package core

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(1, "profile", "Cassandra-WI")
	b := DeriveSeed(1, "profile", "Cassandra-WI")
	if a != b {
		t.Fatalf("same inputs derived %d and %d", a, b)
	}
}

func TestDeriveSeedSensitivity(t *testing.T) {
	base := DeriveSeed(1, "run", "Lucene", "ng2c", "polm2")
	distinct := map[int64]string{base: "base"}
	for _, tc := range []struct {
		name string
		seed int64
	}{
		{"different base", DeriveSeed(2, "run", "Lucene", "ng2c", "polm2")},
		{"different label", DeriveSeed(1, "run", "Lucene", "ng2c", "manual")},
		{"fewer labels", DeriveSeed(1, "run", "Lucene", "ng2c")},
		{"profile vs run", DeriveSeed(1, "profile", "Lucene", "ng2c", "polm2")},
	} {
		if prev, dup := distinct[tc.seed]; dup {
			t.Fatalf("%s collided with %s: %d", tc.name, prev, tc.seed)
		}
		distinct[tc.seed] = tc.name
	}
}

// Label boundaries must be unambiguous: ("ab","c") and ("a","bc") are
// different identities.
func TestDeriveSeedLabelBoundaries(t *testing.T) {
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Fatal("label concatenation is ambiguous")
	}
}

// A derived seed of zero would silently fall back to the option defaults.
func TestDeriveSeedNeverZero(t *testing.T) {
	for base := int64(-100); base <= 100; base++ {
		if DeriveSeed(base) == 0 {
			t.Fatalf("base %d derived zero", base)
		}
		if DeriveSeed(base, "x") == 0 {
			t.Fatalf("base %d label x derived zero", base)
		}
	}
}
