package core

import (
	"fmt"
	"os"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/dumper"
	"polm2/internal/faultio"
	"polm2/internal/gc"
	"polm2/internal/gc/c4"
	"polm2/internal/instrument"
	"polm2/internal/jvm"
	"polm2/internal/metrics"
	"polm2/internal/recorder"
	"polm2/internal/simclock"
	"polm2/internal/snapshot"
	"polm2/internal/trace"
	"polm2/internal/workload"
)

// ProfileOptions parameterizes the profiling phase.
type ProfileOptions struct {
	// Scale divides the paper's heap geometry. Default DefaultScale.
	Scale uint64
	// Duration is the simulated profiling run length. Default
	// PaperProfilingDuration.
	Duration time.Duration
	// Seed drives the workload's randomness. Default 1.
	Seed int64
	// SnapshotEvery takes a snapshot every k-th GC cycle. Default 1.
	SnapshotEvery int
	// Analyzer tunes the Analyzer.
	Analyzer analyzer.Options
	// RecordsDir receives the allocation records; a temporary directory
	// is created when empty.
	RecordsDir string
	// SnapshotDir, when set, persists every heap snapshot as a binary
	// image (snap-NNNNNN.img) so the Analyzer can be re-run off-line
	// from the images alone (polm2-inspect snapshots <dir>).
	SnapshotDir string
	// CompareJmap additionally takes a jmap-style dump at every snapshot
	// point, for the Figure 3/4 comparison.
	CompareJmap bool
	// Dump carries the CRIU ablation toggles.
	DumpDisableNoNeed      bool
	DumpDisableIncremental bool
	// Fault optionally injects I/O faults into every artifact write of
	// the profiling run (records, site table, snapshot images). When set,
	// the analysis runs in salvage mode and the result carries the
	// salvage report. Nil writes straight through and analyzes strictly.
	Fault *faultio.Injector
	// Tracer, when non-nil, receives a deterministic trace of the run:
	// a "core"/"profile" span plus per-cycle GC pause spans with phase
	// breakdowns (internal/trace). Nil traces nothing at zero cost.
	Tracer *trace.Tracer
}

func (o ProfileOptions) withDefaults() ProfileOptions {
	if o.Scale == 0 {
		o.Scale = DefaultScale
	}
	if o.Duration == 0 {
		o.Duration = DefaultProfilingDuration
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ProfileResult is the outcome of the profiling phase.
type ProfileResult struct {
	// Profile is the application allocation profile.
	Profile *analyzer.Profile
	// Snapshots are the Dumper's incremental snapshots.
	Snapshots []*snapshot.Snapshot
	// JmapSnapshots are the baseline dumps (when CompareJmap was set).
	JmapSnapshots []*snapshot.Snapshot
	// RecordsDir is where the allocation records were written.
	RecordsDir string
	// Salvage accounts for artifact loss when the analysis ran in
	// salvage mode (fault injection); nil for a strict analysis.
	Salvage *analyzer.SalvageReport
	// GCCycles is the number of GC cycles during profiling.
	GCCycles uint64
	// SimDuration is the simulated length of the profiling run.
	SimDuration time.Duration
}

// ProfileApp runs the profiling phase (§3.5) for one workload: the
// application executes under NG2C (uninstrumented, so young-only behaviour)
// with the Recorder streaming allocation records and the Dumper taking a
// snapshot after every GC cycle; the Analyzer then produces the profile.
func ProfileApp(app App, workloadName string, opts ProfileOptions) (*ProfileResult, error) {
	opts = opts.withDefaults()
	clock := simclock.New()
	geom := ScaledGeometry(opts.Scale)
	col, err := NewCollector(CollectorNG2C, clock, geom, ScaledCostModel(opts.Scale))
	if err != nil {
		return nil, err
	}
	vm := jvm.New(col)

	recordsDir := opts.RecordsDir
	if recordsDir == "" {
		recordsDir, err = os.MkdirTemp("", "polm2-records-*")
		if err != nil {
			return nil, fmt.Errorf("core: profiling records dir: %w", err)
		}
	} else if err := os.MkdirAll(recordsDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: profiling records dir: %w", err)
	}
	if opts.SnapshotDir != "" {
		if err := os.MkdirAll(opts.SnapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("core: snapshot dir: %w", err)
		}
	}

	dumpCost := ScaledDumpCostModel(opts.Scale)
	criu := dumper.New(vm.Heap(), clock, dumper.Config{
		Cost:               dumpCost,
		ChargeClock:        true,
		DisableNoNeed:      opts.DumpDisableNoNeed,
		DisableIncremental: opts.DumpDisableIncremental,
		PersistDir:         opts.SnapshotDir,
		Fault:              opts.Fault,
	})
	var sink recorder.SnapshotSink = criu
	var jmap *dumper.Jmap
	if opts.CompareJmap {
		jmap = dumper.NewJmap(vm.Heap(), clock, dumpCost)
		sink = dumper.NewTee(criu, jmap)
	}
	rec, err := recorder.New(recorder.Config{Dir: recordsDir, SnapshotEvery: opts.SnapshotEvery, Fault: opts.Fault},
		vm.Heap(), vm.Sites(), sink)
	if err != nil {
		return nil, err
	}
	rec.Attach(vm)

	env := &Env{
		vm:       vm,
		clock:    clock,
		rand:     workload.NewRand(opts.Seed),
		ops:      mustTimeSeries(),
		deadline: opts.Duration,
	}
	if err := app.Run(env, workloadName); err != nil {
		return nil, fmt.Errorf("core: profiling run of %s/%s: %w", app.Name(), workloadName, err)
	}
	if err := rec.Close(); err != nil {
		return nil, err
	}

	aOpts := opts.Analyzer
	aOpts.App = app.Name()
	aOpts.Workload = workloadName
	var profile *analyzer.Profile
	var report *analyzer.SalvageReport
	if opts.Fault != nil {
		// The faults live on disk, so analyze what the disk actually
		// holds: the persisted snapshot chain when there is one, the
		// in-memory (undamaged) sequence otherwise.
		if opts.SnapshotDir != "" {
			profile, report, err = analyzer.AnalyzeSalvageDir(recordsDir, opts.SnapshotDir, aOpts)
		} else {
			profile, report, err = analyzer.AnalyzeSalvage(recordsDir, criu.Snapshots(), aOpts)
		}
	} else {
		profile, err = analyzer.Analyze(recordsDir, criu.Snapshots(), aOpts)
	}
	if err != nil {
		return nil, err
	}
	result := &ProfileResult{
		Profile:     profile,
		Snapshots:   criu.Snapshots(),
		RecordsDir:  recordsDir,
		Salvage:     report,
		GCCycles:    col.Cycles(),
		SimDuration: clock.Now(),
	}
	if jmap != nil {
		result.JmapSnapshots = jmap.Snapshots()
	}
	if opts.Tracer.Enabled() {
		opts.Tracer.Span("core", "profile", 0, result.SimDuration,
			trace.String("app", app.Name()),
			trace.String("workload", workloadName),
			trace.Uint64("gc_cycles", result.GCCycles),
			trace.Int64("snapshots", int64(len(result.Snapshots))),
			trace.Int64("instrumented_sites", int64(profile.InstrumentedSites())))
		gc.TracePauses(opts.Tracer, ScaledCostModel(opts.Scale), col.Pauses())
	}
	return result, nil
}

// PlanKind names how a production run was instrumented.
type PlanKind string

// Plan kinds.
const (
	PlanNone   PlanKind = "none"   // unmodified application
	PlanPOLM2  PlanKind = "polm2"  // profile from the profiling phase
	PlanManual PlanKind = "manual" // the expert's hand-written profile
)

// RunOptions parameterizes a production run.
type RunOptions struct {
	// Scale divides the paper's heap geometry. Default DefaultScale.
	Scale uint64
	// Duration is the simulated run length. Default PaperRunDuration.
	Duration time.Duration
	// Warmup is ignored at the start of the run when deriving the
	// warm metrics. Default PaperWarmup, clamped to Duration/2 for very
	// short runs.
	Warmup time.Duration
	// Seed drives the workload's randomness. Default 1.
	Seed int64
	// Tracer, when non-nil, receives a deterministic trace of the run:
	// a "core"/"run" span plus per-cycle GC pause spans with phase
	// breakdowns (internal/trace). Nil traces nothing at zero cost.
	Tracer *trace.Tracer
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Scale == 0 {
		o.Scale = DefaultScale
	}
	if o.Duration == 0 {
		o.Duration = PaperRunDuration
	}
	if o.Warmup == 0 {
		o.Warmup = PaperWarmup
	}
	if o.Warmup > o.Duration/2 {
		o.Warmup = o.Duration / 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunResult is the outcome of one production run.
type RunResult struct {
	App       string
	Workload  string
	Collector string
	Plan      PlanKind

	// Pauses are all stop-the-world pauses; WarmPauses excludes the
	// warmup window, matching the paper's measurement discipline (§5.1).
	Pauses     []gc.Pause
	WarmPauses *metrics.Sample

	// Ops is the per-second completed-operation series; WarmOps is the
	// total over the measured window.
	Ops     *metrics.TimeSeries
	WarmOps int64

	// MaxMemoryBytes is the committed-memory high-water mark, or the
	// pre-reserved size for C4 (Figure 9's discussion).
	MaxMemoryBytes uint64
	PreReserved    bool

	// GenSwitches counts dynamic generation switches (§4.4 metric).
	GenSwitches uint64
	// GCCycles is the number of collections.
	GCCycles uint64
	// SimDuration and Warmup document the measurement window.
	SimDuration time.Duration
	Warmup      time.Duration
}

// RunApp executes the production phase (§3.5): the workload runs under the
// named collector, optionally instrumented with a profile (POLM2's or the
// expert's). A nil profile runs the unmodified application.
func RunApp(app App, workloadName, collectorName string, plan PlanKind, profile *analyzer.Profile, opts RunOptions) (*RunResult, error) {
	opts = opts.withDefaults()
	clock := simclock.New()
	geom := ScaledGeometry(opts.Scale)
	col, err := NewCollector(collectorName, clock, geom, ScaledCostModel(opts.Scale))
	if err != nil {
		return nil, err
	}
	vm := jvm.New(col)

	if profile != nil {
		pret, ok := col.(gc.Pretenuring)
		if !ok {
			return nil, fmt.Errorf("core: collector %s cannot apply a pretenuring profile", collectorName)
		}
		instrPlan, err := instrument.Apply(profile, pret)
		if err != nil {
			return nil, err
		}
		vm.SetPlan(instrPlan)
		vm.SetPretenureCostPerByte(PretenureCostPerByte(opts.Scale))
	}

	env := &Env{
		vm:       vm,
		clock:    clock,
		rand:     workload.NewRand(opts.Seed),
		ops:      mustTimeSeries(),
		deadline: opts.Duration,
	}
	if err := app.Run(env, workloadName); err != nil {
		return nil, fmt.Errorf("core: production run of %s/%s under %s: %w",
			app.Name(), workloadName, collectorName, err)
	}

	result := &RunResult{
		App:         app.Name(),
		Workload:    workloadName,
		Collector:   collectorName,
		Plan:        plan,
		Pauses:      col.Pauses(),
		WarmPauses:  &metrics.Sample{},
		Ops:         env.ops,
		GenSwitches: vm.GenSwitches(),
		GCCycles:    col.Cycles(),
		SimDuration: clock.Now(),
		Warmup:      opts.Warmup,
	}
	for _, p := range result.Pauses {
		if p.Start >= opts.Warmup {
			result.WarmPauses.Add(p.Duration)
		}
	}
	for _, n := range env.ops.Slice(opts.Warmup, opts.Duration) {
		result.WarmOps += n
	}
	st := vm.Heap().Stats()
	result.MaxMemoryBytes = st.MaxCommittedBytes
	if c4col, ok := col.(*c4.Collector); ok {
		result.MaxMemoryBytes = c4col.PreReservedBytes()
		result.PreReserved = true
	}
	if opts.Tracer.Enabled() {
		opts.Tracer.Span("core", "run", 0, result.SimDuration,
			trace.String("app", app.Name()),
			trace.String("workload", workloadName),
			trace.String("collector", collectorName),
			trace.String("plan", string(plan)),
			trace.Uint64("gc_cycles", result.GCCycles),
			trace.Uint64("gen_switches", result.GenSwitches))
		gc.TracePauses(opts.Tracer, ScaledCostModel(opts.Scale), result.Pauses)
	}
	return result, nil
}

func mustTimeSeries() *metrics.TimeSeries {
	ts, err := metrics.NewTimeSeries(time.Second)
	if err != nil {
		panic(err) // one-second width is statically valid
	}
	return ts
}
