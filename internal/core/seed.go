package core

import "hash/fnv"

// DeriveSeed maps a base seed plus a list of labels to a stable per-run
// seed. Every simulation in a benchmark session seeds its RNG with
// DeriveSeed(cfg.Seed, ...identity of the run...), which gives two
// guarantees at once:
//
//   - Determinism: the derived seed depends only on the base seed and the
//     run's identity, never on scheduling, so serial and parallel sessions
//     produce bit-identical results.
//   - Independence: distinct runs get distinct, well-mixed seeds instead of
//     sharing the base seed, so correlated streams cannot couple two
//     experiments.
//
// The derivation is FNV-1a over the base seed's bytes and the labels,
// each label terminated by a 0 byte so label boundaries stay unambiguous.
func DeriveSeed(base int64, labels ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(uint64(base) >> (8 * i))
	}
	h.Write(buf[:])
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	seed := int64(h.Sum64())
	if seed == 0 {
		// Zero means "use the default seed" to the option structs; remap
		// so a derived seed is always explicit.
		seed = 1
	}
	return seed
}
