package online

import (
	"net/http/httptest"
	"testing"
	"time"

	"polm2/internal/fleetclient"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
)

// fleetFixture is one plan daemon shared by the simulated fleet.
type fleetFixture struct {
	store *profilestore.Store
	srv   *planserver.Server
	ts    *httptest.Server
}

func newFleetFixture(t *testing.T) *fleetFixture {
	t.Helper()
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := planserver.New(store, planserver.Options{SyncMerges: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &fleetFixture{store: store, srv: srv, ts: ts}
}

func (f *fleetFixture) client(t *testing.T, seed int64) *fleetclient.Client {
	t.Helper()
	c, err := fleetclient.New(fleetclient.Options{
		BaseURL: f.ts.URL,
		Seed:    seed,
		Sleep:   func(time.Duration) {}, // simulated runs never really sleep
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestOnlineFleetInstallsMergedPlan runs two instances of the same
// workload against one plan daemon: each uploads its evidence on every
// clean re-profile and installs the daemon's merged plan, and the daemon
// ends up holding a fleet profile whose evidence covers both instances.
func TestOnlineFleetInstallsMergedPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("online run skipped in -short mode")
	}
	f := newFleetFixture(t)

	storedTotal := func(i int) uint64 {
		t.Helper()
		stored, err := f.store.Get("shift", "w")
		if err != nil {
			t.Fatalf("daemon store after instance %d: %v", i, err)
		}
		var total uint64
		for _, s := range stored.Sites {
			total += s.Allocated
		}
		return total
	}
	runInstance := func(i int, seed int64) {
		t.Helper()
		res, err := Run(&shiftApp{}, "w", Options{
			Duration:  16 * time.Minute,
			Warmup:    2 * time.Minute,
			Reprofile: 4 * time.Minute,
			Seed:      seed,
			Fleet:     f.client(t, seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Updates) == 0 {
			t.Fatalf("instance %d installed no plans", i)
		}
		if len(res.FleetEvents) != 0 {
			t.Fatalf("instance %d met fleet trouble against a healthy daemon: %+v", i, res.FleetEvents)
		}
	}

	var evidenceAfterFirst, evidenceAfterSecond uint64
	for i, seed := range []int64{1, 2} {
		runInstance(i, seed)
		total := storedTotal(i)
		if total == 0 {
			t.Fatalf("fleet profile after instance %d carries no evidence", i)
		}
		if i == 0 {
			evidenceAfterFirst = total
		} else if total <= evidenceAfterFirst {
			t.Fatalf("second instance's evidence did not merge: %d then %d", evidenceAfterFirst, total)
		} else {
			evidenceAfterSecond = total
		}
	}
	// Re-running an instance (same seed, hence the same derived instance
	// id) replays the identical cumulative evidence; the daemon replaces
	// that instance's contribution, so the fleet totals must not inflate —
	// within a run, each instance's n cumulative re-profiles already
	// counted once, and across runs the replay counts the same once.
	runInstance(1, 2)
	if total := storedTotal(1); total != evidenceAfterSecond {
		t.Fatalf("re-running instance 2 moved the fleet evidence %d -> %d (double-counted)", evidenceAfterSecond, total)
	}
	if got := f.srv.Metrics().Counter("evidence_merge_total").Value(); got < 2 {
		t.Fatalf("evidence_merge_total = %d, want at least one merge per instance", got)
	}
}

// TestOnlineFleetUnreachableKeepsPlan points the instance at a dead
// daemon: every sync records a FleetEvent, no plan is ever installed, and
// the run itself completes — the networked path must never turn daemon
// downtime into an outage.
func TestOnlineFleetUnreachableKeepsPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("online run skipped in -short mode")
	}
	dead, err := fleetclient.New(fleetclient.Options{
		BaseURL:     "http://127.0.0.1:1", // nothing listens on port 1
		MaxAttempts: 2,
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&shiftApp{}, "w", Options{
		Duration:  12 * time.Minute,
		Warmup:    2 * time.Minute,
		Reprofile: 4 * time.Minute,
		Fleet:     dead,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 0 {
		t.Fatalf("plans installed with an unreachable daemon: %+v", res.Updates)
	}
	if len(res.FleetEvents) == 0 {
		t.Fatal("no FleetEvents recorded against a dead daemon")
	}
	for _, ev := range res.FleetEvents {
		if ev.Err == "" || ev.Fallback {
			t.Fatalf("dead-daemon event should be a hard error: %+v", ev)
		}
	}
	if res.WarmOps == 0 {
		t.Fatal("run made no progress")
	}
}
