package online

import (
	"testing"
	"time"

	"polm2/internal/faultio"
)

// faultyRun drives the shifting workload with torn-stream faults injected
// into the recorder: every id stream silently loses its bytes past the cut
// offset, so each re-analysis meets damaged artifacts.
func faultyRun(t *testing.T) *Result {
	t.Helper()
	plan, err := faultio.ParseSpec("torn:site-*.bin@6000")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(&shiftApp{}, "w", Options{
		Duration:  20 * time.Minute,
		Warmup:    2 * time.Minute,
		Reprofile: 4 * time.Minute,
		Fault:     faultio.New(plan),
	})
	if err != nil {
		t.Fatalf("fault-injected online run died: %v", err)
	}
	return res
}

// TestOnlineSurvivesFaultyReprofile checks the online runner's central
// resilience promise: a corrupt re-profile never kills the run or installs
// a plan built from damaged evidence — it records a salvage event, keeps
// the previous plan, and continues serving.
func TestOnlineSurvivesFaultyReprofile(t *testing.T) {
	if testing.Short() {
		t.Skip("online run skipped in -short mode")
	}
	res := faultyRun(t)

	if res.WarmOps == 0 {
		t.Fatal("no operations completed under fault injection")
	}
	if len(res.Salvages) == 0 {
		t.Fatal("torn streams triggered no salvage events")
	}
	for i, ev := range res.Salvages {
		// Every event carries either a non-clean loss report or a hard
		// error; a clean report would have installed a plan instead.
		if ev.Err == "" && (ev.Report == nil || ev.Report.Clean()) {
			t.Fatalf("salvage event %d carries no damage: %+v", i, ev)
		}
		if i > 0 && ev.At <= res.Salvages[i-1].At {
			t.Fatal("salvage events not time-ordered")
		}
	}
	// A salvaged re-analysis keeps the previous plan, so updates + salvages
	// together account for every re-profile attempt; the damage must have
	// suppressed at least one installation relative to the attempts made.
	attempts := len(res.Updates) + len(res.Salvages)
	if attempts < 3 {
		t.Fatalf("only %d re-profile attempts over a 20-minute run", attempts)
	}
	t.Logf("updates=%d salvages=%d p99=%v", len(res.Updates), len(res.Salvages), res.WarmPauses.Percentile(99))
}

// TestOnlineFaultyReprofileDeterministic pins that fault injection is part
// of the deterministic simulation: two identical fault-injected runs agree
// on every plan update and salvage event.
func TestOnlineFaultyReprofileDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("online run skipped in -short mode")
	}
	a := faultyRun(t)
	b := faultyRun(t)
	if len(a.Updates) != len(b.Updates) || len(a.Salvages) != len(b.Salvages) {
		t.Fatalf("runs diverged: %d/%d updates, %d/%d salvages",
			len(a.Updates), len(b.Updates), len(a.Salvages), len(b.Salvages))
	}
	for i := range a.Updates {
		if a.Updates[i] != b.Updates[i] {
			t.Fatalf("update %d diverged: %+v vs %+v", i, a.Updates[i], b.Updates[i])
		}
	}
	for i := range a.Salvages {
		if a.Salvages[i].At != b.Salvages[i].At || a.Salvages[i].Err != b.Salvages[i].Err {
			t.Fatalf("salvage %d diverged: %+v vs %+v", i, a.Salvages[i], b.Salvages[i])
		}
	}
	if a.WarmOps != b.WarmOps {
		t.Fatalf("ops diverged: %d vs %d", a.WarmOps, b.WarmOps)
	}
}
