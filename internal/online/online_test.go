package online

import (
	"fmt"
	"testing"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/apps/cassandra"
	"polm2/internal/core"
	"polm2/internal/heap"
	"polm2/internal/workload"
)

// shiftApp changes its allocation behaviour halfway through the run: in the
// first phase objects allocated at Ingest.buffer:3 are middle-lived and
// Serve.cache:3 objects are transient; in the second phase the roles swap.
// A static profile is wrong for one of the phases; the online runner should
// adapt.
type shiftApp struct{}

var _ core.App = (*shiftApp)(nil)

func (*shiftApp) Name() string        { return "shift" }
func (*shiftApp) Workloads() []string { return []string{"w"} }

func (*shiftApp) ManualProfile(string) (*analyzer.Profile, error) {
	return nil, fmt.Errorf("shift: no manual profile")
}

func (*shiftApp) Run(env *core.Env, workloadName string) error {
	if workloadName != "w" {
		return fmt.Errorf("shift: unknown workload %q", workloadName)
	}
	th := env.VM().NewThread("shift")
	th.Enter("Main", "loop")
	pacer, err := workload.NewPacer(env.Clock(), 160)
	if err != nil {
		return err
	}
	h := env.Heap()
	type entry struct {
		obj    *heap.Object
		expiry time.Duration
	}
	var retained []entry
	half := env.Deadline() / 2
	for !env.Done() {
		pacer.Await()
		// Transient garbage keeps the GC cadence up.
		if _, err := th.Alloc(5, 16384); err != nil {
			return err
		}
		ingestLives := env.Now() < half

		th.Call(10, "Ingest", "write")
		ingest, err := th.Alloc(3, 768)
		th.Return()
		if err != nil {
			return err
		}
		th.Call(20, "Serve", "cache")
		serve, err := th.Alloc(3, 768)
		th.Return()
		if err != nil {
			return err
		}

		keep, drop := ingest, serve
		if !ingestLives {
			keep, drop = serve, ingest
		}
		_ = drop // dies when the frame's locals are released
		if err := h.AddRoot(keep.ID); err != nil {
			return err
		}
		retained = append(retained, entry{obj: keep, expiry: env.Now() + 90*time.Second})
		for len(retained) > 0 && retained[0].expiry <= env.Now() {
			if err := h.RemoveRoot(retained[0].obj.ID); err != nil {
				return err
			}
			retained = retained[1:]
		}
		th.ReleaseLocals()
		env.CountOps(1)
	}
	return nil
}

func TestOnlineRunProducesUpdates(t *testing.T) {
	if testing.Short() {
		t.Skip("online run skipped in -short mode")
	}
	res, err := Run(&shiftApp{}, "w", Options{
		Duration:  20 * time.Minute,
		Warmup:    2 * time.Minute,
		Reprofile: 4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) < 3 {
		t.Fatalf("expected at least 3 plan updates, got %d", len(res.Updates))
	}
	for i := 1; i < len(res.Updates); i++ {
		if res.Updates[i].At <= res.Updates[i-1].At {
			t.Fatal("plan updates not time-ordered")
		}
	}
	if res.WarmOps == 0 {
		t.Fatal("no operations completed")
	}
	// After the shift both sites have been middle-lived at some point:
	// the final profile instruments at least one of them, and the plan
	// history shows the analyzer reacting (site counts may change).
	last := res.Updates[len(res.Updates)-1]
	if last.Instrumented == 0 {
		t.Fatal("final plan instruments nothing")
	}
	t.Logf("updates: %+v", res.Updates)
	t.Logf("warm pauses: %d, p99=%v, worst=%v, ops=%d",
		res.WarmPauses.Len(), res.WarmPauses.Percentile(99), res.WarmPauses.Max(), res.WarmOps)
}

// TestOnlineAdaptsAfterShift compares the online runner against a static
// profile captured before the behaviour shift: after the shift the static
// plan mispretenures (its middle-lived site went transient and vice versa),
// so the online runner must end with at least as good pause times.
func TestOnlineAdaptsAfterShift(t *testing.T) {
	if testing.Short() {
		t.Skip("online run skipped in -short mode")
	}
	app := &shiftApp{}
	online, err := Run(app, "w", Options{
		Duration:  24 * time.Minute,
		Warmup:    4 * time.Minute,
		Reprofile: 4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Static baseline: profile only the first (ingest) phase, then run
	// the full shifting workload with that stale plan.
	prof, err := core.ProfileApp(app, "w", core.ProfileOptions{Duration: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	static, err := core.RunApp(app, "w", core.CollectorNG2C, core.PlanPOLM2, prof.Profile, core.RunOptions{
		Duration: 24 * time.Minute,
		Warmup:   4 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("online p99=%v static(stale) p99=%v", online.WarmPauses.Percentile(99), static.WarmPauses.Percentile(99))
	// The stale profile pretenures a now-transient site for the whole
	// second half; the online runner corrects itself. Allow slack: the
	// online runner pays recording overhead.
	if online.WarmPauses.Percentile(99) > static.WarmPauses.Percentile(99)*3/2 {
		t.Fatalf("online p99 %v much worse than stale static %v",
			online.WarmPauses.Percentile(99), static.WarmPauses.Percentile(99))
	}
}

func TestOnlineOnCassandra(t *testing.T) {
	if testing.Short() {
		t.Skip("online run skipped in -short mode")
	}
	res, err := Run(cassandra.New(), cassandra.WorkloadWI, Options{
		Duration:  16 * time.Minute,
		Warmup:    4 * time.Minute,
		Reprofile: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) == 0 {
		t.Fatal("no plan updates on Cassandra")
	}
	last := res.Updates[len(res.Updates)-1]
	if last.Instrumented < 8 {
		t.Fatalf("final online plan instruments only %d sites", last.Instrumented)
	}
	t.Logf("cassandra online: updates=%d final=%+v p99=%v",
		len(res.Updates), last, res.WarmPauses.Percentile(99))
}
