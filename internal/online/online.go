// Package online implements continuous, in-production profiling — the
// natural extension of POLM2's two-phase workflow that the paper's related
// work (§6.1) contrasts against and its conclusions point toward.
//
// Instead of a separate profiling phase, the Recorder and Dumper stay
// attached while the application serves production load. Every re-profile
// interval the Analyzer re-runs over everything recorded so far and the
// resulting plan is hot-swapped into the execution engine — the equivalent
// of re-instrumenting the bytecode of freshly loaded classes at runtime.
// Applications whose allocation behaviour shifts (a Cassandra cluster
// moving from a write-heavy ingest phase to a read-heavy serving phase)
// converge to the new behaviour without a restart.
//
// The price is the recording overhead the paper avoids by profiling
// off-line: every allocation pays the logging callback, and every GC cycle
// pays an incremental snapshot. Both are charged to the simulated clock.
package online

import (
	"fmt"
	"os"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/core"
	"polm2/internal/dumper"
	"polm2/internal/faultio"
	"polm2/internal/gc"
	"polm2/internal/heap"
	"polm2/internal/instrument"
	"polm2/internal/jvm"
	"polm2/internal/metrics"
	"polm2/internal/recorder"
	"polm2/internal/rollout"
	"polm2/internal/simclock"
	"polm2/internal/trace"
	"polm2/internal/workload"
)

// Options parameterizes an online run.
type Options struct {
	// Scale divides the paper's heap geometry. Default core.DefaultScale.
	Scale uint64
	// Duration is the simulated run length. Default 30 minutes.
	Duration time.Duration
	// Warmup is excluded from the warm metrics. Default 5 minutes,
	// clamped to half the duration.
	Warmup time.Duration
	// Reprofile is the re-analysis interval. Default 5 simulated
	// minutes.
	Reprofile time.Duration
	// Seed drives the workload randomness. Default 1.
	Seed int64
	// RecordCost is the mutator cost of one allocation-logging callback.
	// Default 2µs per simulated allocation (one simulated allocation
	// stands for Scale real ones).
	RecordCost time.Duration
	// Analyzer tunes the Analyzer for every re-analysis.
	Analyzer analyzer.Options
	// RecordsDir receives allocation records; a temporary directory is
	// created when empty.
	RecordsDir string
	// Fault optionally injects I/O faults into the recorder's artifact
	// writes, exercising the salvage path. Nil writes straight through.
	Fault *faultio.Injector
	// Fleet, when non-nil, turns every clean re-profile into fleet
	// coordination: the locally analyzed evidence is uploaded to the plan
	// daemon and the daemon's merged fleet-wide plan is installed instead
	// of the local one (internal/fleetclient.Client implements this).
	// Each re-analysis covers everything recorded since t=0, so the
	// uploads are cumulative — the daemon replaces this instance's
	// previous evidence with each one (keyed by the client's instance
	// id) rather than summing them, keeping the instance counted exactly
	// once in the fleet plan however often it re-profiles. An
	// unreachable daemon keeps the previous plan, mirroring the salvage
	// path's behaviour on damaged artifacts.
	Fleet PlanService
	// Tracer, when non-nil, receives a deterministic trace of the run:
	// "online" events at every re-profile round (plan hot-swaps, salvage
	// fallbacks, fleet rounds) stamped with simulated instants, plus the
	// run span and per-cycle GC pause spans emitted at the end. Nil traces
	// nothing at zero cost.
	Tracer *trace.Tracer
	// Clock is the simulated clock the run advances. Default: a fresh
	// clock starting at zero. Injecting one lets a surrounding harness —
	// a fidelity test, or a simulation embedding whole online instances —
	// share a single timeline between the run, its tracer, and the fleet
	// transport, with no hidden goroutine timing anywhere. The run's
	// duration and warmup accounting assume the clock is at instant zero
	// when Run starts.
	Clock *simclock.Clock
}

// PlanService is the fleet-coordination seam: upload evidence, get back
// the merged fleet plan. fresh reports whether the plan came from the
// daemon on this call (false = the client's last-good fallback).
type PlanService interface {
	SyncEvidence(p *analyzer.Profile) (plan *analyzer.Profile, fresh bool, err error)
}

// FeedbackReporter is the optional health-reporting side of a PlanService.
// A Fleet that also implements it (internal/fleetclient.Client does)
// receives one rollout.Report per re-profile round, covering the window
// since the previous report: per-window GC pause p50/p99 and the
// promotion/survivor byte split, all derived from the deterministic cost
// model. The daemon's canary controller judges candidate plans from these
// reports. sent=false means the report was skipped without error (no plan
// version to attribute the window to yet).
type FeedbackReporter interface {
	ReportFeedback(r *rollout.Report) (sent bool, err error)
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = core.DefaultScale
	}
	if o.Duration == 0 {
		o.Duration = core.PaperRunDuration
	}
	if o.Warmup == 0 {
		o.Warmup = core.PaperWarmup
	}
	if o.Warmup > o.Duration/2 {
		o.Warmup = o.Duration / 2
	}
	if o.Reprofile == 0 {
		o.Reprofile = 5 * time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RecordCost == 0 {
		o.RecordCost = 2 * time.Microsecond
	}
	return o
}

// PlanUpdate records one re-analysis.
type PlanUpdate struct {
	// At is the simulated instant the new plan was installed.
	At time.Duration
	// Instrumented, Generations and Conflicts summarize the profile.
	Instrumented int
	Generations  int
	Conflicts    int
}

// SalvageEvent records a re-analysis that met damaged artifacts. The run
// keeps its previous plan and continues; dying on a corrupt re-profile
// would turn recoverable artifact loss into an outage.
type SalvageEvent struct {
	// At is the simulated instant of the attempted re-analysis.
	At time.Duration
	// Report accounts for the loss; nil when the analysis failed outright.
	Report *analyzer.SalvageReport
	// Err is the hard failure, when even salvage was impossible.
	Err string
}

// FleetEvent records one fleet-coordination round that could not install
// a fresh daemon plan.
type FleetEvent struct {
	// At is the simulated instant of the attempted sync.
	At time.Duration
	// Fallback reports the daemon was unreachable and the client's
	// last-good plan was installed instead.
	Fallback bool
	// Err is the hard failure, when not even a fallback plan existed;
	// the run keeps its previous plan.
	Err string
}

// Result describes an online run.
type Result struct {
	// Pauses and WarmPauses as in core.RunResult.
	Pauses     []gc.Pause
	WarmPauses *metrics.Sample
	// WarmOps is the operation total over the measured window.
	WarmOps int64
	// Updates lists every plan installation, first to last.
	Updates []PlanUpdate
	// Salvages lists every re-analysis that met damaged artifacts and
	// kept the previous plan instead of swapping.
	Salvages []SalvageEvent
	// FleetEvents lists every fleet sync that fell back or failed
	// (empty when Options.Fleet is nil or the daemon stayed healthy).
	FleetEvents []FleetEvent
	// FeedbackReports counts health reports delivered to the daemon's
	// rollout controller; FeedbackErrors counts reports that failed to
	// send (the run continues — feedback is advisory, not load-bearing).
	// Both stay zero unless Options.Fleet implements FeedbackReporter.
	FeedbackReports int
	FeedbackErrors  int
	// MaxMemoryBytes is the committed high-water mark.
	MaxMemoryBytes uint64
	// SimDuration is the simulated run length.
	SimDuration time.Duration
}

// Run executes a workload with continuous profiling and periodic plan
// hot-swaps.
func Run(app core.App, workloadName string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	clock := opts.Clock
	if clock == nil {
		clock = simclock.New()
	}
	geom := core.ScaledGeometry(opts.Scale)
	col, err := core.NewCollector(core.CollectorNG2C, clock, geom, core.ScaledCostModel(opts.Scale))
	if err != nil {
		return nil, err
	}
	pret, ok := col.(gc.Pretenuring)
	if !ok {
		return nil, fmt.Errorf("online: collector %s does not support pretenuring", col.Name())
	}
	vm := jvm.New(col)
	vm.SetPretenureCostPerByte(core.PretenureCostPerByte(opts.Scale))

	recordsDir := opts.RecordsDir
	if recordsDir == "" {
		recordsDir, err = os.MkdirTemp("", "polm2-online-*")
		if err != nil {
			return nil, fmt.Errorf("online: records dir: %w", err)
		}
	}
	criu := dumper.New(vm.Heap(), clock, dumper.Config{
		Cost:        core.ScaledDumpCostModel(opts.Scale),
		ChargeClock: true,
	})
	rec, err := recorder.New(recorder.Config{Dir: recordsDir, Fault: opts.Fault}, vm.Heap(), vm.Sites(), criu)
	if err != nil {
		return nil, err
	}
	rec.Attach(vm)
	// The logging callback costs mutator time on every allocation — the
	// overhead off-line profiling avoids (§6.1).
	vm.AddAllocHook(func(heap.SiteID, *heap.Object) {
		clock.Advance(opts.RecordCost)
	})

	result := &Result{WarmPauses: &metrics.Sample{}}
	var analyzeErr error
	nextReprofile := opts.Reprofile
	// Feedback window bookkeeping: each report covers the pauses since the
	// previous report, so windows tile the run without overlap.
	feedbackFrom := 0
	feedbackStart := time.Duration(0)
	reportFeedback := func(fb FeedbackReporter) {
		pauses := col.Pauses()
		window := pauses[feedbackFrom:]
		start := feedbackStart
		feedbackFrom = len(pauses)
		feedbackStart = clock.Now()
		if len(window) == 0 {
			// A pause-free window carries no pause percentiles — nothing
			// for the decision rule to weigh, so nothing is sent.
			return
		}
		var sample metrics.Sample
		var promoted, copied uint64
		for _, p := range window {
			sample.Add(p.Duration)
			promoted += p.PromotedBytes
			copied += p.BytesCopied
		}
		r := &rollout.Report{
			App:         app.Name(),
			Workload:    workloadName,
			WindowStart: start,
			WindowEnd:   clock.Now(),
			Pauses:      len(window),
			PauseP50:    sample.Percentile(50),
			PauseP99:    sample.Percentile(99),
		}
		if copied > 0 {
			r.PromotionRate = float64(promoted) / float64(copied)
			if r.PromotionRate > 1 {
				r.PromotionRate = 1
			}
			r.SurvivorRate = 1 - r.PromotionRate
		}
		sent, err := fb.ReportFeedback(r)
		switch {
		case err != nil:
			result.FeedbackErrors++
			if opts.Tracer.Enabled() {
				opts.Tracer.EventAt(clock.Now(), "online", "feedback_error",
					trace.String("err", err.Error()))
			}
		case sent:
			result.FeedbackReports++
			if opts.Tracer.Enabled() {
				opts.Tracer.EventAt(clock.Now(), "online", "feedback",
					trace.Int64("pauses", int64(r.Pauses)),
					trace.Int64("pause_p99_ns", int64(r.PauseP99)))
			}
		}
	}
	// Re-analysis is driven from the GC cycle boundary: the heap is
	// quiescent and the Dumper has just produced a snapshot.
	col.OnCycleEnd(func(cycle uint64, live *heap.LiveSet) {
		if analyzeErr != nil || clock.Now() < nextReprofile {
			return
		}
		nextReprofile = clock.Now() + opts.Reprofile
		if opts.Tracer.Enabled() {
			opts.Tracer.EventAt(clock.Now(), "online", "reprofile",
				trace.Uint64("cycle", cycle),
				trace.Int64("round", int64(len(result.Updates)+len(result.Salvages)+1)))
		}
		if err := rec.Flush(); err != nil {
			analyzeErr = err
			return
		}
		aOpts := opts.Analyzer
		aOpts.App = app.Name()
		aOpts.Workload = workloadName
		// Live streams have no commit trailer yet, so re-analysis always
		// goes through the salvage decoder. A damaged recording keeps the
		// previous plan — instrumenting from partial evidence mid-run is
		// worse than staying the course — and the run continues.
		profile, report, err := analyzer.AnalyzeSalvage(recordsDir, criu.Snapshots(), aOpts)
		if err != nil {
			result.Salvages = append(result.Salvages, SalvageEvent{At: clock.Now(), Err: err.Error()})
			if opts.Tracer.Enabled() {
				opts.Tracer.EventAt(clock.Now(), "online", "salvage",
					trace.String("err", err.Error()))
			}
			return
		}
		if !report.Clean() {
			result.Salvages = append(result.Salvages, SalvageEvent{At: clock.Now(), Report: report})
			if opts.Tracer.Enabled() {
				opts.Tracer.EventAt(clock.Now(), "online", "salvage",
					trace.Int64("lost_bytes", report.LostBytes),
					trace.Int64("damaged_sites", int64(len(report.Sites))),
					trace.Int64("degraded_sites", int64(report.DegradedSites)))
			}
			return
		}
		if opts.Fleet != nil {
			// Report the finished window's health before syncing: the
			// report must name the plan version the window actually ran
			// under, and SyncEvidence may install a newer one.
			if fb, ok := opts.Fleet.(FeedbackReporter); ok {
				reportFeedback(fb)
			}
			// Fleet mode: contribute the local evidence and install the
			// daemon's merged fleet plan in place of the local one.
			merged, fresh, err := opts.Fleet.SyncEvidence(profile)
			if err != nil {
				// No plan to offer at all: keep the previous plan, as a
				// salvage keeps it on damaged artifacts.
				result.FleetEvents = append(result.FleetEvents, FleetEvent{At: clock.Now(), Err: err.Error()})
				if opts.Tracer.Enabled() {
					opts.Tracer.EventAt(clock.Now(), "online", "fleet_error",
						trace.String("err", err.Error()))
				}
				return
			}
			if !fresh {
				result.FleetEvents = append(result.FleetEvents, FleetEvent{At: clock.Now(), Fallback: true})
				if opts.Tracer.Enabled() {
					opts.Tracer.EventAt(clock.Now(), "online", "fleet_fallback")
				}
			} else if opts.Tracer.Enabled() {
				opts.Tracer.EventAt(clock.Now(), "online", "fleet_sync",
					trace.Int64("instrumented", int64(merged.InstrumentedSites())))
			}
			profile = merged
		}
		plan, err := instrument.Apply(profile, pret)
		if err != nil {
			analyzeErr = fmt.Errorf("online: re-instrumentation at %v: %w", clock.Now(), err)
			return
		}
		vm.SetPlan(plan)
		result.Updates = append(result.Updates, PlanUpdate{
			At:           clock.Now(),
			Instrumented: profile.InstrumentedSites(),
			Generations:  profile.UsedGenerations(),
			Conflicts:    profile.Conflicts,
		})
		if opts.Tracer.Enabled() {
			opts.Tracer.EventAt(clock.Now(), "online", "plan_swap",
				trace.Int64("update", int64(len(result.Updates))),
				trace.Int64("instrumented", int64(profile.InstrumentedSites())),
				trace.Int64("generations", int64(profile.UsedGenerations())),
				trace.Int64("conflicts", int64(profile.Conflicts)))
		}
	})

	env := core.NewEnv(vm, clock, workload.NewRand(opts.Seed), opts.Duration)
	if err := app.Run(env, workloadName); err != nil {
		return nil, fmt.Errorf("online: running %s/%s: %w", app.Name(), workloadName, err)
	}
	if analyzeErr != nil {
		return nil, analyzeErr
	}
	if err := rec.Close(); err != nil {
		return nil, err
	}
	// Flush the tail window: pauses after the last re-profile round still
	// count as evidence for whichever plan version they ran under.
	if fb, ok := opts.Fleet.(FeedbackReporter); ok {
		reportFeedback(fb)
	}

	result.Pauses = col.Pauses()
	for _, p := range result.Pauses {
		if p.Start >= opts.Warmup {
			result.WarmPauses.Add(p.Duration)
		}
	}
	for _, n := range env.OpsSeries().Slice(opts.Warmup, opts.Duration) {
		result.WarmOps += n
	}
	result.MaxMemoryBytes = vm.Heap().Stats().MaxCommittedBytes
	result.SimDuration = clock.Now()
	if opts.Tracer.Enabled() {
		opts.Tracer.Span("online", "run", 0, result.SimDuration,
			trace.String("app", app.Name()),
			trace.String("workload", workloadName),
			trace.Int64("updates", int64(len(result.Updates))),
			trace.Int64("salvages", int64(len(result.Salvages))),
			trace.Int64("fleet_events", int64(len(result.FleetEvents))),
			trace.Uint64("gc_cycles", col.Cycles()))
		gc.TracePauses(opts.Tracer, core.ScaledCostModel(opts.Scale), result.Pauses)
	}
	return result, nil
}
