package online

import (
	"net/http/httptest"
	"testing"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
)

// feedbackFleet is a PlanService that also captures feedback reports, the
// shape fleetclient.Client presents to the runner.
type feedbackFleet struct {
	reports []rollout.Report
}

func (f *feedbackFleet) SyncEvidence(p *analyzer.Profile) (*analyzer.Profile, bool, error) {
	return p, true, nil
}

func (f *feedbackFleet) ReportFeedback(r *rollout.Report) (bool, error) {
	f.reports = append(f.reports, *r)
	return true, nil
}

// TestOnlineFeedbackWindows checks the runner's health reports: one per
// re-profile round plus the tail flush, covering non-overlapping windows,
// each internally consistent (p50 ≤ p99, rates in [0, 1]) and valid once
// the transport stamps a plan version.
func TestOnlineFeedbackWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("online run skipped in -short mode")
	}
	fleet := &feedbackFleet{}
	res, err := Run(&shiftApp{}, "w", Options{
		Duration:  16 * time.Minute,
		Warmup:    2 * time.Minute,
		Reprofile: 4 * time.Minute,
		Fleet:     fleet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.reports) == 0 {
		t.Fatal("no feedback reports delivered")
	}
	if res.FeedbackReports != len(fleet.reports) {
		t.Fatalf("Result.FeedbackReports = %d, fleet saw %d", res.FeedbackReports, len(fleet.reports))
	}
	if res.FeedbackErrors != 0 {
		t.Fatalf("FeedbackErrors = %d against a healthy fleet", res.FeedbackErrors)
	}
	var prevEnd time.Duration
	for i, r := range fleet.reports {
		if r.App != "shift" || r.Workload != "w" {
			t.Fatalf("report %d labeled %s/%s", i, r.App, r.Workload)
		}
		if r.WindowStart < prevEnd {
			t.Fatalf("report %d window [%v, %v] overlaps previous end %v", i, r.WindowStart, r.WindowEnd, prevEnd)
		}
		prevEnd = r.WindowEnd
		if r.Pauses == 0 {
			t.Fatalf("report %d sent with an empty window", i)
		}
		r.ETag = `"test"` // the transport stamps the plan version
		if err := r.Validate(); err != nil {
			t.Fatalf("report %d invalid: %v", i, err)
		}
	}
}

// TestOnlineFeedbackReachesDaemon runs one instance against a
// rollout-enabled daemon: the very first merged plan is adopted straight to
// Stable, and every delivered report lands in feedback_reports_total.
func TestOnlineFeedbackReachesDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("online run skipped in -short mode")
	}
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := &fleetFixture{store: store}
	f.srv = planserver.New(store, planserver.Options{
		SyncMerges: true,
		Rollout:    &rollout.Config{},
	})
	f.ts = httptest.NewServer(f.srv)
	t.Cleanup(f.ts.Close)

	res, err := Run(&shiftApp{}, "w", Options{
		Duration:  16 * time.Minute,
		Warmup:    2 * time.Minute,
		Reprofile: 4 * time.Minute,
		Fleet:     f.client(t, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FeedbackReports == 0 {
		t.Fatal("no feedback reports delivered")
	}
	if res.FeedbackErrors != 0 {
		t.Fatalf("FeedbackErrors = %d against a healthy daemon", res.FeedbackErrors)
	}
	got := f.srv.Metrics().Counter("feedback_reports_total").Value()
	if got != uint64(res.FeedbackReports) {
		t.Fatalf("daemon feedback_reports_total = %d, instance sent %d", got, res.FeedbackReports)
	}
	// A single-instance fleet adopts its first plan, then parks any later
	// candidate in canary: the sole instance is the whole cohort, so the
	// baseline side can never meet the min-sample gate — and without
	// baseline evidence nothing may be promoted or rolled back.
	snap, ok := f.srv.RolloutSnapshot("shift", "w")
	if !ok {
		t.Fatal("daemon has no rollout state for shift/w")
	}
	if snap.State != rollout.StateStable.String() && snap.State != rollout.StateCanary.String() {
		t.Fatalf("rollout state = %v, want stable or canary", snap.State)
	}
	if snap.StableETag == "" {
		t.Fatal("no stable plan adopted")
	}
	if snap.Rollbacks != 0 || snap.Promotions != 0 {
		t.Fatalf("promotions=%d rollbacks=%d decided without baseline evidence", snap.Promotions, snap.Rollbacks)
	}
}
