// Package workload provides the deterministic building blocks the simulated
// applications are driven with: seeded randomness, Zipfian key popularity
// (YCSB's default distribution), and an open-loop request pacer that lets
// GC pauses eat into throughput exactly the way they do on a loaded server.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"polm2/internal/simclock"
)

// Rand is a seeded random source. It wraps math/rand.Rand so every workload
// run is reproducible from its seed; no global randomness is used anywhere
// in the simulation.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// SizeAround returns a size jittered uniformly within ±spread of base
// (spread in [0,1)), never below 16 bytes.
func (r *Rand) SizeAround(base uint32, spread float64) uint32 {
	if spread <= 0 {
		return base
	}
	lo := float64(base) * (1 - spread)
	hi := float64(base) * (1 + spread)
	size := uint32(lo + r.Float64()*(hi-lo))
	if size < 16 {
		size = 16
	}
	return size
}

// Zipf draws keys in [0, n) with Zipfian popularity — YCSB's default
// request distribution, which the paper's Cassandra workloads mirror.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipfian distribution over n keys with skew s (> 1).
func NewZipf(r *Rand, s float64, n uint64) (*Zipf, error) {
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf skew must be > 1, got %v", s)
	}
	if n == 0 {
		return nil, fmt.Errorf("workload: zipf needs at least one key")
	}
	z := rand.NewZipf(r.r, s, 1, n-1)
	if z == nil {
		return nil, fmt.Errorf("workload: invalid zipf parameters (s=%v, n=%d)", s, n)
	}
	return &Zipf{z: z}, nil
}

// Next draws the next key.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// Pacer schedules operations at a target rate against the simulated clock,
// open loop without catch-up: if the application stalls (a GC pause), the
// operations that should have run during the stall are lost, so observed
// throughput dips exactly when pauses happen — the behaviour behind the
// paper's Figure 8 time series.
type Pacer struct {
	clock  *simclock.Clock
	period time.Duration
	next   time.Duration
}

// NewPacer builds a pacer issuing ops at the given rate (ops per simulated
// second).
func NewPacer(clock *simclock.Clock, rate float64) (*Pacer, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: pacer rate must be positive, got %v", rate)
	}
	period := time.Duration(float64(time.Second) / rate)
	if period <= 0 {
		period = time.Nanosecond
	}
	return &Pacer{clock: clock, period: period, next: clock.Now()}, nil
}

// Await blocks (advances the simulated clock) until the next operation is
// due, then schedules the following one. If the clock has already passed
// the due time, the operation runs immediately and the schedule resets from
// now: missed slots are not replayed.
func (p *Pacer) Await() {
	now := p.clock.Now()
	if now < p.next {
		now = p.clock.AdvanceTo(p.next)
	}
	p.next = now + p.period
}

// Period returns the pacing period.
func (p *Pacer) Period() time.Duration { return p.period }
