package workload

import (
	"testing"
	"time"

	"polm2/internal/simclock"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 20; i++ {
		if a.Intn(1000) != c.Intn(1000) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestSizeAround(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		size := r.SizeAround(1000, 0.2)
		if size < 800 || size > 1200 {
			t.Fatalf("SizeAround out of bounds: %d", size)
		}
	}
	if got := r.SizeAround(500, 0); got != 500 {
		t.Fatalf("zero spread should return base, got %d", got)
	}
	if got := r.SizeAround(4, 0.9); got < 16 {
		t.Fatalf("size floor violated: %d", got)
	}
}

func TestZipfValidation(t *testing.T) {
	r := NewRand(1)
	if _, err := NewZipf(r, 1.0, 100); err == nil {
		t.Fatal("skew 1.0 should fail")
	}
	if _, err := NewZipf(r, 1.1, 0); err == nil {
		t.Fatal("zero keys should fail")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(7)
	z, err := NewZipf(r, 1.3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("zipf key out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] < draws/10 {
		t.Fatalf("zipf head not hot: key 0 drawn %d times", counts[0])
	}
}

func TestPacerValidation(t *testing.T) {
	clk := simclock.New()
	if _, err := NewPacer(clk, 0); err == nil {
		t.Fatal("zero rate should fail")
	}
	if _, err := NewPacer(clk, -5); err == nil {
		t.Fatal("negative rate should fail")
	}
}

func TestPacerAdvancesIdleTime(t *testing.T) {
	clk := simclock.New()
	p, err := NewPacer(clk, 100) // 10ms period
	if err != nil {
		t.Fatal(err)
	}
	p.Await() // first op due immediately
	if clk.Now() != 0 {
		t.Fatalf("first Await moved clock to %v", clk.Now())
	}
	p.Await()
	if clk.Now() != 10*time.Millisecond {
		t.Fatalf("second Await moved clock to %v, want 10ms", clk.Now())
	}
}

func TestPacerDropsMissedSlotsDuringStall(t *testing.T) {
	clk := simclock.New()
	p, err := NewPacer(clk, 100)
	if err != nil {
		t.Fatal(err)
	}
	p.Await()
	// A 95ms stall (GC pause) swallows ~9 slots.
	clk.Advance(95 * time.Millisecond)
	p.Await() // immediate: we are behind schedule
	if clk.Now() != 95*time.Millisecond {
		t.Fatalf("Await during backlog advanced clock to %v", clk.Now())
	}
	// The schedule resets from now: no burst of catch-up ops.
	p.Await()
	if clk.Now() != 105*time.Millisecond {
		t.Fatalf("post-stall Await moved clock to %v, want 105ms", clk.Now())
	}
}
