// Package e2e holds the end-to-end integration test of the fleet
// subsystem: a real planserver over httptest, two fleet-enabled online
// instances uploading evidence through real fleetclient HTTP calls, and
// the observability layer (metrics exposition, trace ring) checked at the
// same endpoints an operator would hit. It lives outside the component
// packages because it exists precisely to cross their seams.
package e2e

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/core"
	"polm2/internal/fleetclient"
	"polm2/internal/heap"
	"polm2/internal/online"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
	"polm2/internal/trace"
	"polm2/internal/workload"
)

// churnApp allocates a steady mix of transient garbage and middle-lived
// objects from two fixed sites, one of which holds the survivors in each
// half of the run — the same allocation shape as the online package's
// shifting app, so every re-profile finds instrumentable evidence. This
// test is about the fleet plumbing, not adaptation.
type churnApp struct{}

var _ core.App = (*churnApp)(nil)

func (*churnApp) Name() string        { return "churn" }
func (*churnApp) Workloads() []string { return []string{"w"} }

func (*churnApp) ManualProfile(string) (*analyzer.Profile, error) {
	return nil, fmt.Errorf("churn: no manual profile")
}

func (*churnApp) Run(env *core.Env, workloadName string) error {
	if workloadName != "w" {
		return fmt.Errorf("churn: unknown workload %q", workloadName)
	}
	th := env.VM().NewThread("churn")
	th.Enter("Main", "loop")
	pacer, err := workload.NewPacer(env.Clock(), 160)
	if err != nil {
		return err
	}
	h := env.Heap()
	type entry struct {
		obj    *heap.Object
		expiry time.Duration
	}
	var retained []entry
	half := env.Deadline() / 2
	for !env.Done() {
		pacer.Await()
		if _, err := th.Alloc(5, 16384); err != nil { // transient churn
			return err
		}
		th.Call(10, "Buffer", "fill")
		buffer, err := th.Alloc(3, 768)
		th.Return()
		if err != nil {
			return err
		}
		th.Call(20, "Cache", "put")
		cache, err := th.Alloc(3, 768)
		th.Return()
		if err != nil {
			return err
		}
		keep := buffer
		if env.Now() >= half {
			keep = cache
		}
		if err := h.AddRoot(keep.ID); err != nil {
			return err
		}
		retained = append(retained, entry{obj: keep, expiry: env.Now() + 90*time.Second})
		for len(retained) > 0 && retained[0].expiry <= env.Now() {
			if err := h.RemoveRoot(retained[0].obj.ID); err != nil {
				return err
			}
			retained = retained[1:]
		}
		th.ReleaseLocals()
		env.CountOps(1)
	}
	return nil
}

// fixture is one traced plan daemon over real HTTP.
type fixture struct {
	store  *profilestore.Store
	srv    *planserver.Server
	ts     *httptest.Server
	tracer *trace.Tracer
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// The injected clock ticks once per reading: timestamps are
	// deterministic without being meaningful, which is all the assertions
	// here need (byte-level trace determinism is pinned in internal/trace
	// and internal/bench).
	var tick atomic.Int64
	now := func() time.Duration { return time.Duration(tick.Add(1)) * time.Millisecond }
	tracer := trace.New(trace.Options{Ring: trace.NewRing(256), Now: now})
	// SyncMerges keeps the end-to-end metrics and trace assertions exact:
	// every upload's merge lands before its response, so counters and the
	// trace ring are byte-stable run to run.
	srv := planserver.New(store, planserver.Options{Tracer: tracer, Now: now, SyncMerges: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &fixture{store: store, srv: srv, ts: ts, tracer: tracer}
}

func (f *fixture) client(t *testing.T, seed int64) *fleetclient.Client {
	t.Helper()
	c, err := fleetclient.New(fleetclient.Options{
		BaseURL: f.ts.URL,
		Seed:    seed,
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (f *fixture) get(t *testing.T, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(f.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func (f *fixture) storedTotal(t *testing.T) uint64 {
	t.Helper()
	stored, err := f.store.Get("churn", "w")
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, s := range stored.Sites {
		total += s.Allocated
	}
	return total
}

// TestFleetEndToEnd drives the whole stack: two traced online instances
// sync evidence with a traced daemon over HTTP, the fleet converges on one
// plan, re-uploads stay idempotent, and /metricsz and /tracez report it
// all. Run under -race in CI: the daemon handles the instances' requests
// on real server goroutines.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("online runs skipped in -short mode")
	}
	f := newFixture(t)

	runInstance := func(i int, seed int64) *trace.Record {
		t.Helper()
		var sb strings.Builder
		tracer := trace.New(trace.Options{Writer: &sb})
		res, err := online.Run(&churnApp{}, "w", online.Options{
			Duration:  16 * time.Minute,
			Warmup:    2 * time.Minute,
			Reprofile: 4 * time.Minute,
			Seed:      seed,
			Fleet:     f.client(t, seed),
			Tracer:    tracer,
		})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if len(res.Updates) == 0 {
			t.Fatalf("instance %d installed no plans", i)
		}
		if len(res.FleetEvents) != 0 {
			t.Fatalf("instance %d met fleet trouble against a healthy daemon: %+v", i, res.FleetEvents)
		}
		recs, err := trace.Decode(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("instance %d trace: %v", i, err)
		}
		counts := map[string]int{}
		var runSpan *trace.Record
		for j := range recs {
			counts[recs[j].Comp+"/"+recs[j].Name]++
			if recs[j].Comp == "online" && recs[j].Name == "run" {
				runSpan = &recs[j]
			}
		}
		for _, want := range []string{"online/reprofile", "online/plan_swap", "online/fleet_sync", "gc/cycle", "gc/phase"} {
			if counts[want] == 0 {
				t.Errorf("instance %d trace has no %s records (got %v)", i, want, counts)
			}
		}
		if runSpan == nil {
			t.Fatalf("instance %d trace has no online/run span", i)
		}
		if got := runSpan.Int("updates"); got != int64(len(res.Updates)) {
			t.Errorf("instance %d run span reports %d updates, result has %d", i, got, len(res.Updates))
		}
		return runSpan
	}

	runInstance(1, 1)
	runInstance(2, 2)
	totalAfterBoth := f.storedTotal(t)
	if totalAfterBoth == 0 {
		t.Fatal("fleet profile carries no evidence after two instances")
	}
	mergesAfterBoth := f.srv.Metrics().Counter("evidence_merge_total").Value()
	if mergesAfterBoth < 2 {
		t.Fatalf("evidence_merge_total = %d, want at least one merge per instance", mergesAfterBoth)
	}

	// Idempotent re-upload: the same instance re-running (same seed, same
	// derived instance id) replays cumulative evidence; merges increment
	// but the fleet totals and the contributing-instance gauge must not.
	runInstance(2, 2)
	if total := f.storedTotal(t); total != totalAfterBoth {
		t.Fatalf("re-running instance 2 moved fleet evidence %d -> %d (double-counted)", totalAfterBoth, total)
	}
	if got := f.srv.Metrics().Counter("evidence_merge_total").Value(); got <= mergesAfterBoth {
		t.Fatalf("re-run produced no merges (%d then %d)", mergesAfterBoth, got)
	}

	// Convergence: any client now fetches the one fleet plan, and the
	// conditional re-fetch confirms the version is stable.
	c := f.client(t, 3)
	plan, outcome, err := c.FetchPlan("churn", "w")
	if err != nil {
		t.Fatal(err)
	}
	if outcome != fleetclient.OutcomeFresh || plan == nil {
		t.Fatalf("fetch = (%v, %v), want fresh plan", plan, outcome)
	}
	if plan.InstrumentedSites() == 0 {
		t.Fatal("converged fleet plan instruments nothing")
	}
	again, outcome, err := c.FetchPlan("churn", "w")
	if err != nil {
		t.Fatal(err)
	}
	if outcome != fleetclient.OutcomeNotModified {
		t.Fatalf("re-fetch outcome = %v, want not-modified (plan still churning?)", outcome)
	}
	if again.InstrumentedSites() != plan.InstrumentedSites() {
		t.Fatal("re-fetch returned a different plan")
	}

	// /metricsz: the exposition must carry the counters the run implied,
	// the histograms' rendered families, and the per-key instance gauge
	// holding exactly two contributing instances.
	resp, body := f.get(t, "/metricsz")
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("/metricsz Content-Type = %q", ct)
	}
	for _, want := range []string{
		"evidence_merge_total ",
		"plan_fetch_total ",
		"plan_fetch_latency_bucket{le=\"+Inf\"} ",
		"evidence_merge_latency_count ",
		"trace_ring_records ",
		`evidence_instances{app="churn",workload="w"} 2` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz missing %q:\n%s", want, body)
		}
	}

	// /tracez: the ring serves the daemon-side records as decodable JSONL
	// covering both request kinds.
	resp, body = f.get(t, "/tracez")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("/tracez Content-Type = %q", ct)
	}
	recs, err := trace.Decode(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/tracez body does not decode: %v", err)
	}
	kinds := map[string]int{}
	for _, r := range recs {
		if r.Comp != "planserver" {
			t.Fatalf("daemon ring carries foreign record %+v", r)
		}
		kinds[r.Name]++
	}
	if kinds["plan_fetch"] == 0 || kinds["evidence_upload"] == 0 {
		t.Fatalf("daemon ring misses request kinds: %v", kinds)
	}
}
