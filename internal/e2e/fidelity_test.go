package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"polm2/internal/fleetclient"
	"polm2/internal/online"
	"polm2/internal/planserver"
	"polm2/internal/profilestore"
	"polm2/internal/simclock"
	"polm2/internal/simnet"
)

// TestTransportFidelity runs one convergence scenario — two online
// instances syncing cumulative evidence into a fresh daemon — over both
// transports the repo ships: the httptest harness (real sockets, real
// server goroutines, wall-clock scheduling around the handlers) and the
// simulator's fabric (direct handler invocation on this goroutine,
// single-threaded merge workers, virtual time). The final merged fleet
// plan must be byte-identical. This is the simulator's license to stand
// in for the socket stack in CI: if the fabric ever changed an outcome
// the wire would not, this test is where the divergence surfaces.
func TestTransportFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("online runs skipped in -short mode")
	}

	// scenario drives the two instances against whatever transport the
	// client factory wires up and returns the daemon's final stored plan.
	// Each instance gets a fresh injected clock: online.Run assumes its
	// clock starts at instant zero, and the instances run sequentially in
	// both harnesses.
	scenario := func(t *testing.T, store *profilestore.Store, client func(seed int64) *fleetclient.Client) []byte {
		t.Helper()
		for _, seed := range []int64{1, 2} {
			res, err := online.Run(&churnApp{}, "w", online.Options{
				Duration:  12 * time.Minute,
				Warmup:    2 * time.Minute,
				Reprofile: 4 * time.Minute,
				Seed:      seed,
				Fleet:     client(seed),
				Clock:     simclock.New(),
			})
			if err != nil {
				t.Fatalf("instance seed=%d: %v", seed, err)
			}
			if len(res.FleetEvents) != 0 {
				t.Fatalf("instance seed=%d met fleet trouble on a healthy network: %+v", seed, res.FleetEvents)
			}
			if len(res.Updates) == 0 {
				t.Fatalf("instance seed=%d installed no plans", seed)
			}
		}
		plan, err := store.Get("churn", "w")
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(plan)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Harness one: the existing end-to-end fixture, over real HTTP.
	httpFixture := newFixture(t)
	overHTTP := scenario(t, httpFixture.store, func(seed int64) *fleetclient.Client {
		return httpFixture.client(t, seed)
	})

	// Harness two: the same daemon configuration behind the simulator's
	// fabric, with merge workers on the simnet-style pump seam so nothing
	// in the second run touches a socket or spawns a goroutine.
	simStore, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var tick atomic.Int64
	var workers []func()
	srv := planserver.New(simStore, planserver.Options{
		Now:        func() time.Duration { return time.Duration(tick.Add(1)) * time.Millisecond },
		SyncMerges: true,
		Schedule:   func(w func()) { workers = append(workers, w) },
		Pump: func() bool {
			if len(workers) == 0 {
				return false
			}
			w := workers[0]
			workers = workers[1:]
			w()
			return true
		},
	})
	fabric := simnet.NewFabric(srv, simclock.New(), nil)
	overFabric := scenario(t, simStore, func(seed int64) *fleetclient.Client {
		c, err := fleetclient.New(fleetclient.Options{
			BaseURL:    "http://polm2d.simnet",
			Seed:       seed,
			Sleep:      func(time.Duration) {},
			HTTPClient: &http.Client{Transport: fabric.Transport(fmt.Sprintf("inst-%d", seed))},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	})

	if fabric.Deliveries() == 0 {
		t.Fatal("fabric carried no traffic — the second harness ran over something else")
	}
	if !bytes.Equal(overHTTP, overFabric) {
		t.Fatalf("transports disagree on the final merged plan:\n--- httptest\n%s\n--- fabric\n%s", overHTTP, overFabric)
	}
}
