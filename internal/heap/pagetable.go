package heap

// PageKey names one page of simulated memory: the page with index Index
// inside region Region. Region ids are never reused, so a PageKey is stable
// for the lifetime of a heap.
type PageKey struct {
	Region RegionID
	Index  uint32
}

// pageFlags is the simulated kernel page-table entry the paper's Dumper
// relies on (§4.2): a dirty bit set whenever the page is written (allocation,
// evacuation target, or a reference-field store) and cleared by the Dumper
// after every snapshot, plus a no-need bit set by the collector for pages
// holding no reachable data and cleared as soon as the page is written
// again.
type pageFlags struct {
	dirty  bitset
	noNeed bitset
}

// bitset is a minimal fixed-capacity bitset.
type bitset []uint64

func newBitset(n uint32) bitset {
	return make(bitset, (n+63)/64)
}

func (b bitset) set(i uint32)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i uint32)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) get(i uint32) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) setAll() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

func (b bitset) clearAll() {
	for i := range b {
		b[i] = 0
	}
}

// regionPages holds the page-table slice for one region, including the
// incrementally maintained page contents (which objects' headers lie on
// each page, and how many objects' storage overlaps it) so that dumpers
// never have to rescan residents.
type regionPages struct {
	flags pageFlags
	n     uint32
	// coverage counts resident objects overlapping each page.
	coverage []uint16
	// headers holds, per page index, the identity hashes of resident
	// objects whose header lies on it. The per-page slices keep their
	// backing arrays across reset, so a recycled page table reaches its
	// steady-state capacity once and then stops allocating.
	headers [][]ObjectID
}

func newRegionPages(n uint32) *regionPages {
	return &regionPages{
		flags:    pageFlags{dirty: newBitset(n), noNeed: newBitset(n)},
		n:        n,
		coverage: make([]uint16, n),
		headers:  make([][]ObjectID, n),
	}
}

// reset clears the page table for reuse by a fresh region, keeping every
// backing array (bitsets, coverage counters, per-page header slices).
func (rp *regionPages) reset() {
	rp.flags.dirty.clearAll()
	rp.flags.noNeed.clearAll()
	for i := range rp.coverage {
		rp.coverage[i] = 0
	}
	for i := range rp.headers {
		rp.headers[i] = rp.headers[i][:0]
	}
}

// touch marks the page range [first, last] dirty and clears its no-need
// bits: written memory is live memory from the kernel's perspective.
func (rp *regionPages) touch(first, last uint32) {
	for i := first; i <= last && i < rp.n; i++ {
		rp.flags.dirty.set(i)
		rp.flags.noNeed.clear(i)
	}
}

// place records a resident object's storage on the page table.
func (rp *regionPages) place(obj *Object, pageSize uint32) {
	first, last := obj.pageSpan(pageSize)
	for i := first; i <= last && i < rp.n; i++ {
		rp.coverage[i]++
	}
	hp := obj.headerPage(pageSize)
	rp.headers[hp] = append(rp.headers[hp], obj.ID)
}

// displace removes a resident object's storage from the page table.
func (rp *regionPages) displace(obj *Object, pageSize uint32) {
	first, last := obj.pageSpan(pageSize)
	for i := first; i <= last && i < rp.n; i++ {
		rp.coverage[i]--
	}
	hp := obj.headerPage(pageSize)
	ids := rp.headers[hp]
	for i, id := range ids {
		if id == obj.ID {
			ids[i] = ids[len(ids)-1]
			rp.headers[hp] = ids[:len(ids)-1]
			break
		}
	}
}

// PageState is the externally visible state of one page, consumed by the
// dumpers.
type PageState struct {
	Key    PageKey
	Dirty  bool
	NoNeed bool
	// HeaderIDs lists the identity hashes of objects whose header lies on
	// this page; a snapshot that includes the page lets the Analyzer
	// recover exactly these ids (§4.3).
	HeaderIDs []ObjectID
	// Occupied reports whether any resident object's storage overlaps the
	// page; unoccupied pages carry no data worth snapshotting.
	Occupied bool
}
