package heap

import "testing"

// benchGraph builds a heap populated with n rooted objects in as many
// regions as they need, each linked to its two successors — a fanout that
// matches what the simulated apps produce (holder objects referencing a
// handful of children).
func benchGraph(b *testing.B, n int) (*Heap, []*Object) {
	b.Helper()
	h, err := New(Config{RegionSize: 1 << 20, PageSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	objs := make([]*Object, 0, n)
	r, err := h.NewRegion(Young)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if r.Used()+256 > h.Config().RegionSize {
			if r, err = h.NewRegion(Young); err != nil {
				b.Fatal(err)
			}
		}
		obj, err := h.Allocate(r, 256, 1)
		if err != nil {
			b.Fatal(err)
		}
		h.PinRoot(obj)
		objs = append(objs, obj)
	}
	for i, obj := range objs {
		for k := 1; k <= 2; k++ {
			if i+k < len(objs) {
				if err := h.Link(obj.ID, objs[i+k].ID); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return h, objs
}

// BenchmarkTrace measures a full-heap trace over a 10k-object graph — the
// operation every simulated GC cycle starts with.
func BenchmarkTrace(b *testing.B) {
	h, _ := benchGraph(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := h.Trace()
		if ls.Objects != 10_000 {
			b.Fatalf("live = %d", ls.Objects)
		}
	}
}

// BenchmarkMarkNoNeedPages measures the §4.2 madvise pass the Recorder runs
// before every snapshot.
func BenchmarkMarkNoNeedPages(b *testing.B) {
	h, _ := benchGraph(b, 10_000)
	live := h.Trace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MarkNoNeedPages(live)
	}
}

// BenchmarkLinkUnlink measures reference-field store churn: the mutator-side
// hot path of every simulated workload.
func BenchmarkLinkUnlink(b *testing.B) {
	h, objs := benchGraph(b, 1_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := objs[i%len(objs)]
		c := objs[(i*7+3)%len(objs)]
		if err := h.Link(a.ID, c.ID); err != nil {
			b.Fatal(err)
		}
		if err := h.Unlink(a.ID, c.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocRemoveChurn measures steady-state object turnover: short-
// lived objects are allocated, linked into a rooted holder, unlinked and
// removed, with the backing region freed and recommitted as it fills —
// exactly the young-generation churn a GC cycle performs.
func BenchmarkAllocRemoveChurn(b *testing.B) {
	h, roots := benchGraph(b, 64)
	holder := roots[0]
	r, err := h.NewRegion(Young)
	if err != nil {
		b.Fatal(err)
	}
	const size = 256
	batch := make([]*Object, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch = batch[:0]
		for k := 0; k < 64; k++ {
			if r.Used()+size > h.Config().RegionSize {
				b.StopTimer()
				for _, obj := range batch {
					if err := h.Unlink(holder.ID, obj.ID); err != nil {
						b.Fatal(err)
					}
					h.Remove(obj)
				}
				batch = batch[:0]
				h.FreeRegion(r)
				if r, err = h.NewRegion(Young); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			obj, err := h.Allocate(r, size, 2)
			if err != nil {
				b.Fatal(err)
			}
			if err := h.Link(holder.ID, obj.ID); err != nil {
				b.Fatal(err)
			}
			batch = append(batch, obj)
		}
		for _, obj := range batch {
			if err := h.Unlink(holder.ID, obj.ID); err != nil {
				b.Fatal(err)
			}
			h.Remove(obj)
		}
	}
}
