package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func collectPages(h *Heap) map[PageKey]PageState {
	out := make(map[PageKey]PageState)
	h.Pages(func(ps PageState) { out[ps.Key] = ps })
	return out
}

func TestAllocationDirtiesPages(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	// 6000 bytes spans pages 0 and 1.
	mustAlloc(t, h, r, 6000)
	pages := collectPages(h)
	if !pages[PageKey{r.ID(), 0}].Dirty || !pages[PageKey{r.ID(), 1}].Dirty {
		t.Fatal("allocation did not dirty the touched pages")
	}
	if pages[PageKey{r.ID(), 2}].Dirty {
		t.Fatal("untouched page is dirty")
	}
	if !pages[PageKey{r.ID(), 0}].Occupied || !pages[PageKey{r.ID(), 1}].Occupied {
		t.Fatal("occupied flags wrong")
	}
}

func TestClearDirtyAndRedirtyOnMutation(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 64)
	b := mustAlloc(t, h, r, 64)
	h.ClearDirtyPages()
	if collectPages(h)[PageKey{r.ID(), 0}].Dirty {
		t.Fatal("ClearDirtyPages left dirty bits")
	}
	// A reference store dirties the parent's header page only.
	if err := h.Link(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	pages := collectPages(h)
	if !pages[PageKey{r.ID(), 0}].Dirty {
		t.Fatal("Link did not dirty the parent header page")
	}
}

func TestHeaderIDsOnPages(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 4096) // header on page 0
	b := mustAlloc(t, h, r, 100)  // header on page 1
	pages := collectPages(h)
	p0 := pages[PageKey{r.ID(), 0}]
	p1 := pages[PageKey{r.ID(), 1}]
	if len(p0.HeaderIDs) != 1 || p0.HeaderIDs[0] != a.ID {
		t.Fatalf("page 0 headers = %v, want [a]", p0.HeaderIDs)
	}
	if len(p1.HeaderIDs) != 1 || p1.HeaderIDs[0] != b.ID {
		t.Fatalf("page 1 headers = %v, want [b]", p1.HeaderIDs)
	}
}

func TestMarkNoNeedPages(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 64)
	dead := mustAlloc(t, h, r, 8192) // pages 0..2 (offset 64..8255)
	_ = dead
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	live := h.Trace()
	h.MarkNoNeedPages(live)
	pages := collectPages(h)
	// Page 0 holds live object a: must stay needed.
	if pages[PageKey{r.ID(), 0}].NoNeed {
		t.Fatal("page with live object marked no-need")
	}
	// Page 1 and 2 hold only the dead object: no-need.
	if !pages[PageKey{r.ID(), 1}].NoNeed || !pages[PageKey{r.ID(), 2}].NoNeed {
		t.Fatal("dead-only pages not marked no-need")
	}
	// Completely empty page far in the region: no-need.
	if !pages[PageKey{r.ID(), 10}].NoNeed {
		t.Fatal("empty page not marked no-need")
	}
}

func TestWriteClearsNoNeed(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	live := h.Trace()
	h.MarkNoNeedPages(live)
	if !collectPages(h)[PageKey{r.ID(), 0}].NoNeed {
		t.Fatal("empty page should be no-need")
	}
	mustAlloc(t, h, r, 64)
	ps := collectPages(h)[PageKey{r.ID(), 0}]
	if ps.NoNeed {
		t.Fatal("write did not clear the no-need bit")
	}
	if !ps.Dirty {
		t.Fatal("write did not set the dirty bit")
	}
}

func TestFreedRegionsSkippedByPages(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	h.FreeRegion(r)
	if len(collectPages(h)) != 0 {
		t.Fatal("freed region's pages should not be iterated")
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	for _, i := range []uint32{0, 64, 129} {
		if !b.get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.get(1) || b.get(63) || b.get(128) {
		t.Fatal("unexpected bits set")
	}
	b.clear(64)
	if b.get(64) {
		t.Fatal("clear failed")
	}
	b.setAll()
	if !b.get(100) {
		t.Fatal("setAll failed")
	}
	b.clearAll()
	if b.get(0) || b.get(129) {
		t.Fatal("clearAll failed")
	}
}

// Property: a random sequence of graph operations never breaks the
// remembered-set invariant, and trace results never include removed objects.
func TestRandomOpsRemsetInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := New(Config{RegionSize: 16 * 1024, PageSize: 4096})
		if err != nil {
			return false
		}
		var regions []*Region
		for i := 0; i < 4; i++ {
			r, err := h.NewRegion(GenID(i % 2))
			if err != nil {
				return false
			}
			regions = append(regions, r)
		}
		var objs []*Object
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(6); {
			case op == 0 || len(objs) < 2: // allocate
				r := regions[rng.Intn(len(regions))]
				obj, err := h.Allocate(r, uint32(32+rng.Intn(128)), SiteID(rng.Intn(5)+1))
				if err == nil {
					objs = append(objs, obj)
				}
			case op == 1: // link
				a, b := objs[rng.Intn(len(objs))], objs[rng.Intn(len(objs))]
				if h.Object(a.ID) != nil && h.Object(b.ID) != nil {
					_ = h.Link(a.ID, b.ID)
				}
			case op == 2: // unlink (may fail; fine)
				a, b := objs[rng.Intn(len(objs))], objs[rng.Intn(len(objs))]
				if h.Object(a.ID) != nil && h.Object(b.ID) != nil {
					_ = h.Unlink(a.ID, b.ID)
				}
			case op == 3: // evacuate
				o := objs[rng.Intn(len(objs))]
				r := regions[rng.Intn(len(regions))]
				if h.Object(o.ID) != nil && o.Region != r.ID() {
					_ = h.Evacuate(o, r)
				}
			case op == 4: // root toggle
				o := objs[rng.Intn(len(objs))]
				if h.Object(o.ID) == nil {
					continue
				}
				if o.IsRoot() {
					_ = h.RemoveRoot(o.ID)
				} else {
					_ = h.AddRoot(o.ID)
				}
			case op == 5: // remove an unrooted object
				o := objs[rng.Intn(len(objs))]
				if h.Object(o.ID) != nil && !o.IsRoot() {
					h.Remove(o)
				}
			}
		}
		if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
			t.Logf("seed %d: remset invariant broken in %v", seed, bad)
			return false
		}
		if bad := h.CheckPageInvariant(); len(bad) != 0 {
			t.Logf("seed %d: page invariant broken in %v", seed, bad)
			return false
		}
		ls := h.Trace()
		for _, id := range ls.IDs() {
			if h.Object(id) == nil {
				t.Logf("seed %d: trace returned removed object", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
