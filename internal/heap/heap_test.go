package heap

import (
	"errors"
	"testing"
)

func testHeap(t *testing.T) *Heap {
	t.Helper()
	h, err := New(Config{RegionSize: 64 * 1024, PageSize: 4096, MaxBytes: 16 * 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustRegion(t *testing.T, h *Heap, gen GenID) *Region {
	t.Helper()
	r, err := h.NewRegion(gen)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustAlloc(t *testing.T, h *Heap, r *Region, size uint32) *Object {
	t.Helper()
	obj, err := h.Allocate(r, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{}, true},
		{"region not multiple of page", Config{RegionSize: 5000, PageSize: 4096}, false},
		{"max smaller than region", Config{RegionSize: 1 << 20, PageSize: 4096, MaxBytes: 1000}, false},
		{"explicit valid", Config{RegionSize: 8192, PageSize: 4096, MaxBytes: 1 << 20}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err == nil) != tc.ok {
				t.Fatalf("New(%+v) error = %v, want ok=%v", tc.cfg, err, tc.ok)
			}
		})
	}
}

func TestAllocateAssignsUniqueStableIDs(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	seen := make(map[ObjectID]bool)
	for i := 0; i < 100; i++ {
		obj := mustAlloc(t, h, r, 128)
		if seen[obj.ID] {
			t.Fatalf("duplicate object id %#x", uint64(obj.ID))
		}
		seen[obj.ID] = true
	}
	st := h.Stats()
	if st.TotalAllocatedObjects != 100 || st.TotalAllocatedBytes != 100*128 {
		t.Fatalf("allocation totals wrong: %+v", st)
	}
}

func TestAllocateBumpPointerAndFit(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 4000)
	b := mustAlloc(t, h, r, 4000)
	if a.Offset != 0 || b.Offset != 4000 {
		t.Fatalf("bump offsets wrong: a=%d b=%d", a.Offset, b.Offset)
	}
	if _, err := h.Allocate(r, 64*1024, 1); err == nil {
		t.Fatal("oversized allocation should fail")
	}
	if _, err := h.Allocate(r, 0, 1); err == nil {
		t.Fatal("zero-size allocation should fail")
	}
}

func TestOutOfMemory(t *testing.T) {
	h, err := New(Config{RegionSize: 8192, PageSize: 4096, MaxBytes: 2 * 8192})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewRegion(Young); err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewRegion(Young); err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewRegion(Young); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("third region error = %v, want ErrOutOfMemory", err)
	}
}

func TestFreeRegionReleasesCommitment(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	before := h.Stats().CommittedBytes
	h.FreeRegion(r)
	after := h.Stats()
	if after.CommittedBytes != before-64*1024 {
		t.Fatalf("committed after free = %d, want %d", after.CommittedBytes, before-64*1024)
	}
	if after.MaxCommittedBytes != before {
		t.Fatalf("max committed should keep high-water mark %d, got %d", before, after.MaxCommittedBytes)
	}
	if _, err := h.Allocate(r, 16, 1); err == nil {
		t.Fatal("allocation in freed region should fail")
	}
}

func TestFreeRegionPanicsOnResidents(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	mustAlloc(t, h, r, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("FreeRegion with residents did not panic")
		}
	}()
	h.FreeRegion(r)
}

func TestRootsAndTrace(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 64)
	b := mustAlloc(t, h, r, 64)
	c := mustAlloc(t, h, r, 64)
	orphan := mustAlloc(t, h, r, 64)

	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Link(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Link(b.ID, c.ID); err != nil {
		t.Fatal(err)
	}

	ls := h.Trace()
	if ls.Objects != 3 {
		t.Fatalf("live objects = %d, want 3", ls.Objects)
	}
	if ls.Contains(orphan.ID) {
		t.Fatal("orphan should be unreachable")
	}
	if ls.Bytes != 3*64 {
		t.Fatalf("live bytes = %d, want 192", ls.Bytes)
	}
	if got := ls.Region(r.ID()); got.Objects != 3 || got.Bytes != 192 {
		t.Fatalf("region liveness = %+v", got)
	}

	// Unlinking b->c kills c.
	if err := h.Unlink(b.ID, c.ID); err != nil {
		t.Fatal(err)
	}
	if ls := h.Trace(); ls.Contains(c.ID) {
		t.Fatal("c should be dead after unlink")
	}

	// Removing the root kills everything.
	if err := h.RemoveRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	if ls := h.Trace(); ls.Objects != 0 {
		t.Fatalf("live objects after root removal = %d, want 0", ls.Objects)
	}
}

func TestRootPinCounting(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 64)
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	if !h.Trace().Contains(a.ID) {
		t.Fatal("doubly pinned object should survive one unpin")
	}
	if err := h.RemoveRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	if h.Trace().Contains(a.ID) {
		t.Fatal("object should die after final unpin")
	}
	if err := h.RemoveRoot(a.ID); err == nil {
		t.Fatal("unpinning an unpinned object should fail")
	}
}

func TestLinkUnknownEndpoints(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 64)
	if err := h.Link(a.ID, ObjectID(12345)); err == nil {
		t.Fatal("Link to unknown child should fail")
	}
	if err := h.Unlink(a.ID, a.ID); err == nil {
		t.Fatal("Unlink of absent edge should fail")
	}
}

func TestEdgeMultiplicity(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 64)
	b := mustAlloc(t, h, r, 64)
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := h.Link(a.ID, b.ID); err != nil {
			t.Fatal(err)
		}
	}
	if a.RefCount(b.ID) != 3 {
		t.Fatalf("RefCount = %d, want 3", a.RefCount(b.ID))
	}
	if err := h.Unlink(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Unlink(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if !h.Trace().Contains(b.ID) {
		t.Fatal("b should stay alive while one edge remains")
	}
	if err := h.Unlink(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if h.Trace().Contains(b.ID) {
		t.Fatal("b should die when the last edge is removed")
	}
}

func TestCycleCollection(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 64)
	b := mustAlloc(t, h, r, 64)
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Link(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Link(b.ID, a.ID); err != nil {
		t.Fatal(err)
	}
	if got := h.Trace().Objects; got != 2 {
		t.Fatalf("cycle with root: live = %d, want 2", got)
	}
	if err := h.RemoveRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	if got := h.Trace().Objects; got != 0 {
		t.Fatalf("unrooted cycle should be dead, live = %d", got)
	}
}

func TestEvacuatePreservesIdentityAndGraph(t *testing.T) {
	h := testHeap(t)
	src := mustRegion(t, h, Young)
	dst := mustRegion(t, h, GenID(1))
	a := mustAlloc(t, h, src, 64)
	b := mustAlloc(t, h, src, 64)
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Link(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	id := b.ID
	if err := h.Evacuate(b, dst); err != nil {
		t.Fatal(err)
	}
	if b.ID != id {
		t.Fatal("evacuation changed identity hash")
	}
	if b.Region != dst.ID() || b.Gen != 1 {
		t.Fatalf("evacuated object location wrong: %v", b)
	}
	if !h.Trace().Contains(b.ID) {
		t.Fatal("evacuated object fell out of the graph")
	}
	if src.ResidentCount() != 1 || dst.ResidentCount() != 1 {
		t.Fatalf("resident counts wrong: src=%d dst=%d", src.ResidentCount(), dst.ResidentCount())
	}
}

func TestEvacuateErrors(t *testing.T) {
	h := testHeap(t)
	src := mustRegion(t, h, Young)
	a := mustAlloc(t, h, src, 64)
	if err := h.Evacuate(a, src); err == nil {
		t.Fatal("evacuating into own region should fail")
	}
	dst := mustRegion(t, h, Young)
	mustAlloc(t, h, dst, 64*1024-32)
	if err := h.Evacuate(a, dst); err == nil {
		t.Fatal("evacuating into full region should fail")
	}
	empty := mustRegion(t, h, Young)
	h.FreeRegion(empty)
	if err := h.Evacuate(a, empty); err == nil {
		t.Fatal("evacuating into freed region should fail")
	}
}

func TestRemoveTearsDownEdges(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 64)
	b := mustAlloc(t, h, r, 64)
	c := mustAlloc(t, h, r, 64)
	if err := h.Link(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.Link(b.ID, c.ID); err != nil {
		t.Fatal(err)
	}
	h.Remove(b)
	if h.Object(b.ID) != nil {
		t.Fatal("removed object still present")
	}
	if a.RefCount(b.ID) != 0 {
		t.Fatal("parent still references removed object")
	}
	if c.InDegree() != 0 {
		t.Fatal("child still records removed parent")
	}
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("remset invariant broken in regions %v", bad)
	}
}

func TestRemoveRootedPanics(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	a := mustAlloc(t, h, r, 64)
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Remove of rooted object did not panic")
		}
	}()
	h.Remove(a)
}

func TestRemsetMaintenance(t *testing.T) {
	h := testHeap(t)
	r1 := mustRegion(t, h, Young)
	r2 := mustRegion(t, h, GenID(1))
	a := mustAlloc(t, h, r1, 64)
	b := mustAlloc(t, h, r2, 64)

	if err := h.Link(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if r2.RemsetEntries() != 1 {
		t.Fatalf("r2 remset = %d, want 1", r2.RemsetEntries())
	}
	if r1.RemsetEntries() != 0 {
		t.Fatalf("r1 remset = %d, want 0", r1.RemsetEntries())
	}

	// Moving b into r1 makes the edge intra-region.
	if err := h.Evacuate(b, r1); err != nil {
		t.Fatal(err)
	}
	if r1.RemsetEntries() != 0 || r2.RemsetEntries() != 0 {
		t.Fatalf("after evacuate: r1=%d r2=%d, want 0/0", r1.RemsetEntries(), r2.RemsetEntries())
	}
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("remset invariant broken in regions %v", bad)
	}

	// Moving the parent out makes it cross-region again.
	r3 := mustRegion(t, h, GenID(2))
	if err := h.Evacuate(a, r3); err != nil {
		t.Fatal(err)
	}
	if r1.RemsetEntries() != 1 {
		t.Fatalf("after parent evacuation r1 remset = %d, want 1", r1.RemsetEntries())
	}
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("remset invariant broken in regions %v", bad)
	}
}

func TestSelfReferenceRemset(t *testing.T) {
	h := testHeap(t)
	r1 := mustRegion(t, h, Young)
	r2 := mustRegion(t, h, GenID(1))
	a := mustAlloc(t, h, r1, 64)
	if err := h.Link(a.ID, a.ID); err != nil {
		t.Fatal(err)
	}
	if r1.RemsetEntries() != 0 {
		t.Fatal("self-edge should not appear in remset")
	}
	if err := h.Evacuate(a, r2); err != nil {
		t.Fatal(err)
	}
	if r1.RemsetEntries() != 0 || r2.RemsetEntries() != 0 {
		t.Fatalf("self-edge after evacuation: r1=%d r2=%d, want 0/0", r1.RemsetEntries(), r2.RemsetEntries())
	}
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("remset invariant broken in regions %v", bad)
	}
}
