package heap

import (
	"math/rand"
	"testing"
)

// shadowGraph is the reference model for the hybrid edge store: plain
// nested maps with multiplicity, the representation the edgeSet replaced.
type shadowGraph struct {
	refs map[ObjectID]map[ObjectID]int
	in   map[ObjectID]map[ObjectID]int
}

func newShadowGraph() *shadowGraph {
	return &shadowGraph{
		refs: make(map[ObjectID]map[ObjectID]int),
		in:   make(map[ObjectID]map[ObjectID]int),
	}
}

func bump(m map[ObjectID]map[ObjectID]int, a, b ObjectID, d int) {
	inner := m[a]
	if inner == nil {
		inner = make(map[ObjectID]int)
		m[a] = inner
	}
	inner[b] += d
	if inner[b] == 0 {
		delete(inner, b)
	}
}

func (g *shadowGraph) link(p, c ObjectID) {
	bump(g.refs, p, c, 1)
	bump(g.in, c, p, 1)
}

func (g *shadowGraph) unlink(p, c ObjectID) bool {
	if g.refs[p][c] == 0 {
		return false
	}
	bump(g.refs, p, c, -1)
	bump(g.in, c, p, -1)
	return true
}

func (g *shadowGraph) remove(id ObjectID) {
	for parent := range g.in[id] {
		bump(g.refs, parent, id, -g.refs[parent][id])
	}
	for child := range g.refs[id] {
		bump(g.in, child, id, -g.in[child][id])
	}
	delete(g.refs, id)
	delete(g.in, id)
}

// checkObject compares one object's edge stores against the shadow model.
func checkObject(t *testing.T, obj *Object, g *shadowGraph) {
	t.Helper()
	wantOut := g.refs[obj.ID]
	wantIn := g.in[obj.ID]
	if obj.OutDegree() != len(wantOut) {
		t.Fatalf("%v: OutDegree = %d, shadow %d", obj, obj.OutDegree(), len(wantOut))
	}
	if obj.InDegree() != len(wantIn) {
		t.Fatalf("%v: InDegree = %d, shadow %d", obj, obj.InDegree(), len(wantIn))
	}
	seen := 0
	obj.EachRef(func(child *Object, n int) {
		seen++
		if wantOut[child.ID] != n {
			t.Fatalf("%v: edge to %#x has count %d, shadow %d",
				obj, uint64(child.ID), n, wantOut[child.ID])
		}
	})
	if seen != len(wantOut) {
		t.Fatalf("%v: EachRef visited %d edges, shadow %d", obj, seen, len(wantOut))
	}
	for child, n := range wantOut {
		if got := obj.RefCount(child); got != n {
			t.Fatalf("%v: RefCount(%#x) = %d, shadow %d", obj, uint64(child), got, n)
		}
	}
	if got := obj.RefCount(ObjectID(0xdeadbeef)); got != 0 {
		t.Fatalf("%v: RefCount of absent edge = %d", obj, got)
	}
}

// TestEdgeStorePropertyVsShadow drives a heap through a long random
// Link/Unlink/Evacuate/Remove history and checks the hybrid edge store
// against the nested-map shadow model after every operation batch. Parent
// picks are biased toward a few hub objects so their fanout crosses
// edgeInlineCap and edgeIdxThreshold, exercising inline, linear-spill and
// indexed-spill storage plus the transitions between them.
func TestEdgeStorePropertyVsShadow(t *testing.T) {
	h, err := New(Config{RegionSize: 64 * 1024, PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	g := newShadowGraph()

	var objs []*Object
	regions := []*Region{}
	regionWithSpace := func(size uint32, not *Region) *Region {
		for _, r := range regions {
			if r != not && !r.Freed() && r.fits(size, h.cfg.RegionSize) {
				return r
			}
		}
		r, err := h.NewRegion(Young)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
		return r
	}
	pick := func() *Object {
		// Bias toward low indices: the long-lived early objects become
		// high-fanout hubs.
		if rng.Intn(3) == 0 && len(objs) > 4 {
			return objs[rng.Intn(4)]
		}
		return objs[rng.Intn(len(objs))]
	}

	const ops = 20000
	for i := 0; i < ops; i++ {
		switch op := rng.Intn(100); {
		case op < 30 || len(objs) < 8: // allocate
			size := uint32(64 + rng.Intn(512))
			r := regionWithSpace(size, nil)
			obj, err := h.Allocate(r, size, SiteID(rng.Intn(8)))
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		case op < 60: // link
			p, c := pick(), pick()
			if err := h.Link(p.ID, c.ID); err != nil {
				t.Fatal(err)
			}
			g.link(p.ID, c.ID)
		case op < 75: // unlink, sometimes of an absent edge
			p, c := pick(), pick()
			err := h.Unlink(p.ID, c.ID)
			if g.unlink(p.ID, c.ID) {
				if err != nil {
					t.Fatalf("Unlink of present edge failed: %v", err)
				}
			} else if err == nil {
				t.Fatalf("Unlink of absent edge %v -> %v succeeded", p, c)
			}
		case op < 85: // evacuate
			obj := pick()
			dst := regionWithSpace(obj.Size, obj.region)
			if err := h.Evacuate(obj, dst); err != nil {
				t.Fatal(err)
			}
		default: // remove
			idx := rng.Intn(len(objs))
			obj := objs[idx]
			g.remove(obj.ID)
			h.Remove(obj)
			objs[idx] = objs[len(objs)-1]
			objs = objs[:len(objs)-1]
		}
		if i%64 == 0 {
			checkObject(t, objs[rng.Intn(len(objs))], g)
		}
	}

	for _, obj := range objs {
		checkObject(t, obj, g)
	}
	if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
		t.Fatalf("remset invariant violated in regions %v", bad)
	}
	if bad := h.CheckPageInvariant(); len(bad) != 0 {
		t.Fatalf("page invariant violated in regions %v", bad)
	}
}

// TestFreelistChurnInvariants churns allocation and removal through the
// object freelist and the region page-table pool for many rounds, checking
// the incremental remset and page-table invariants after every round. It
// fails if recycling ever leaks stale edges, residency or page bookkeeping
// into a reused struct.
func TestFreelistChurnInvariants(t *testing.T) {
	h, err := New(Config{RegionSize: 32 * 1024, PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	holderRegion, err := h.NewRegion(GenID(1))
	if err != nil {
		t.Fatal(err)
	}
	holder, err := h.Allocate(holderRegion, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(holder.ID); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 50; round++ {
		r, err := h.NewRegion(Young)
		if err != nil {
			t.Fatal(err)
		}
		var batch []*Object
		for {
			size := uint32(128 + rng.Intn(256))
			if !r.fits(size, h.cfg.RegionSize) {
				break
			}
			obj, err := h.Allocate(r, size, 2)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				if err := h.Link(holder.ID, obj.ID); err != nil {
					t.Fatal(err)
				}
			}
			if len(batch) > 0 && rng.Intn(2) == 0 {
				if err := h.Link(obj.ID, batch[rng.Intn(len(batch))].ID); err != nil {
					t.Fatal(err)
				}
			}
			batch = append(batch, obj)
		}
		// Remove the whole batch in allocation order (edges into it from
		// the holder and inside it are torn down by Remove) and free the
		// region, donating its page table to the next round.
		for _, obj := range batch {
			h.Remove(obj)
		}
		h.FreeRegion(r)

		if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
			t.Fatalf("round %d: remset invariant violated in regions %v", round, bad)
		}
		if bad := h.CheckPageInvariant(); len(bad) != 0 {
			t.Fatalf("round %d: page invariant violated in regions %v", round, bad)
		}
		if round > 0 && h.Stats().FreeObjects == 0 {
			t.Fatalf("round %d: freelist empty after churn", round)
		}
	}
	if holder.OutDegree() != 0 {
		t.Fatalf("holder still holds %d edges to removed objects", holder.OutDegree())
	}
}

// TestStaleStampDetector verifies the freelist's stale-pointer discipline:
// a removed object's struct is recycled by a later allocation, and the
// recycling stamp (plus the reassigned ID) makes a pointer held across the
// removal detectably stale.
func TestStaleStampDetector(t *testing.T) {
	h, err := New(Config{RegionSize: 16 * 1024, PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.NewRegion(Young)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := h.Allocate(r, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	stale := obj
	oldID, oldStamp := obj.ID, obj.Stamp()

	h.Remove(obj)
	if h.Stats().FreeObjects != 1 {
		t.Fatalf("FreeObjects = %d after remove, want 1", h.Stats().FreeObjects)
	}

	// The freelist is LIFO: the next allocation must reuse the struct.
	reused, err := h.Allocate(r, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reused != stale {
		t.Fatal("allocation did not recycle the freed Object struct")
	}
	if h.Stats().FreeObjects != 0 {
		t.Fatalf("FreeObjects = %d after reuse, want 0", h.Stats().FreeObjects)
	}
	if stale.Stamp() == oldStamp {
		t.Fatal("recycling did not bump the stamp: stale pointers undetectable")
	}
	if stale.ID == oldID {
		t.Fatal("recycled object kept the retired identity hash")
	}
	if stale.OutDegree() != 0 || stale.InDegree() != 0 || stale.Age != 0 {
		t.Fatalf("recycled object carries stale state: %v", stale)
	}
}
