package heap

import (
	"slices"
	"sort"
)

// RegionLiveness summarizes what a trace found live inside one region.
type RegionLiveness struct {
	Objects int
	Bytes   uint64
}

// LiveSet is the result of tracing the heap from its roots. Membership is
// implemented with per-object epoch marks rather than a hash set, so
// building a LiveSet allocates almost nothing; a LiveSet is only valid
// until the next Trace call on the same heap (the traversal buffer it views
// is the heap's reusable trace queue).
type LiveSet struct {
	h     *Heap
	epoch uint64
	objs  []*Object

	// Objects, Bytes and Edges describe the traversal: reachable object
	// count, their total size, and the number of reference edges scanned
	// (counting multiplicity). The collectors' cost models charge for
	// these quantities.
	Objects int
	Bytes   uint64
	Edges   uint64
}

// Contains reports whether the object with the given id was reachable.
func (ls *LiveSet) Contains(id ObjectID) bool {
	obj := ls.h.objects[id]
	return obj != nil && obj.mark == ls.epoch
}

// Marked reports whether an already-resolved object was reachable, skipping
// the id lookup on hot collector paths.
func (ls *LiveSet) Marked(obj *Object) bool { return obj.mark == ls.epoch }

// Region returns the liveness summary for one region. The summary is stored
// on the region itself, stamped with the trace epoch, so tracing allocates
// no per-region map.
func (ls *LiveSet) Region(id RegionID) RegionLiveness {
	r := ls.h.regions[id]
	if r == nil || r.traceEpoch != ls.epoch {
		return RegionLiveness{}
	}
	return RegionLiveness{Objects: r.liveObjects, Bytes: r.liveBytes}
}

// IDs returns the reachable object ids in ascending order. The slice is
// freshly allocated.
func (ls *LiveSet) IDs() []ObjectID {
	out := make([]ObjectID, len(ls.objs))
	for i, obj := range ls.objs {
		out[i] = obj.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Trace performs a full breadth-first traversal from the root set and
// returns the live set. The simulation traces the whole heap on every
// collection (cheap at simulation scale); the collectors charge pause cost
// only for the work their collection set implies, so policy realism is
// preserved without remembered-set-limited tracing.
//
// Tracing invalidates any LiveSet from a previous Trace of this heap: the
// BFS queue backing is owned by the heap and reused across traces.
func (h *Heap) Trace() *LiveSet {
	h.epoch++
	ls := &LiveSet{h: h, epoch: h.epoch}
	queue := h.traceQueue[:0]
	for _, obj := range h.roots {
		obj.mark = h.epoch
		queue = append(queue, obj)
	}
	for head := 0; head < len(queue); head++ {
		obj := queue[head]
		ls.Objects++
		ls.Bytes += uint64(obj.Size)
		r := obj.region
		if r.traceEpoch != h.epoch {
			r.traceEpoch = h.epoch
			r.liveObjects = 0
			r.liveBytes = 0
		}
		r.liveObjects++
		r.liveBytes += uint64(obj.Size)
		// Iterate the edge store inline (rather than through each) so the
		// hottest loop of the simulation pays no closure call per edge.
		refs := &obj.refs
		for i := int32(0); i < refs.inlineLen; i++ {
			e := &refs.inline[i]
			ls.Edges += uint64(e.n)
			if e.obj.mark != h.epoch {
				e.obj.mark = h.epoch
				queue = append(queue, e.obj)
			}
		}
		for i := range refs.spill {
			e := &refs.spill[i]
			ls.Edges += uint64(e.n)
			if e.obj.mark != h.epoch {
				e.obj.mark = h.epoch
				queue = append(queue, e.obj)
			}
		}
	}
	h.traceQueue = queue
	ls.objs = queue
	return ls
}

// MarkNoNeedPages sets the no-need bit on every page of every active region
// that is not covered by any live object's storage. This is the paper's
// §4.2 madvise pass the Recorder triggers before asking the Dumper for a
// snapshot; the Dumper skips no-need pages entirely.
func (h *Heap) MarkNoNeedPages(live *LiveSet) {
	for _, rid := range h.activeIDs {
		r := h.regions[rid]
		rp := r.pages
		words := (rp.n + 63) / 64
		cv := h.noNeedCov
		if uint32(cap(cv)) < words {
			cv = newBitset(rp.n)
			h.noNeedCov = cv
		}
		cv = cv[:words]
		cv.clearAll()
		for obj := r.head; obj != nil; obj = obj.next {
			if !live.Marked(obj) {
				continue
			}
			first, last := obj.pageSpan(h.cfg.PageSize)
			for i := first; i <= last && i < rp.n; i++ {
				cv.set(i)
			}
		}
		for i := uint32(0); i < rp.n; i++ {
			if !cv.get(i) {
				rp.flags.noNeed.set(i)
			}
		}
	}
}

// Pages calls f for every page of every active region, in ascending
// (region, index) order. Freed regions are skipped: their memory is
// unmapped from the dumper's point of view.
//
// The HeaderIDs slice passed to f aliases the page table and is only valid
// for the duration of the callback: callers that keep header ids (the
// dumpers) must copy the slice. Ids appear in placement order, which is
// deterministic because the whole simulation is.
func (h *Heap) Pages(f func(PageState)) {
	for _, rid := range h.activeIDs {
		rp := h.regions[rid].pages
		for i := uint32(0); i < rp.n; i++ {
			f(PageState{
				Key:       PageKey{Region: rid, Index: i},
				Dirty:     rp.flags.dirty.get(i),
				NoNeed:    rp.flags.noNeed.get(i),
				HeaderIDs: rp.headers[i],
				Occupied:  rp.coverage[i] > 0,
			})
		}
	}
}

// ClearDirtyPages clears the dirty bit of every page of every active
// region. The Dumper calls this after completing a snapshot, exactly as
// CRIU resets the kernel soft-dirty bit (§4.2).
func (h *Heap) ClearDirtyPages() {
	for _, rid := range h.activeIDs {
		h.regions[rid].pages.flags.dirty.clearAll()
	}
}

// ActiveRegionIDs returns the ids of all non-freed regions in ascending
// order. The heap maintains the order incrementally; the returned slice is
// a copy that callers (the dumpers' snapshots) may keep indefinitely.
func (h *Heap) ActiveRegionIDs() []RegionID {
	return slices.Clone(h.activeIDs)
}

// CheckRemsetInvariant recomputes every active region's remembered-set size
// from scratch and compares it with the incrementally maintained counter.
// It returns the ids of regions whose counters disagree; an empty result
// means the invariant holds. Tests use this to validate the incremental
// maintenance in Link/Unlink/Evacuate/Remove.
func (h *Heap) CheckRemsetInvariant() []RegionID {
	want := make(map[RegionID]int)
	for _, obj := range h.objects {
		objRegion := obj.Region
		obj.refs.each(func(child *Object, n int32) {
			if child.Region != objRegion {
				want[child.Region] += int(n)
			}
		})
	}
	var bad []RegionID
	for id, r := range h.regions {
		if r.remsetEntries != want[id] {
			bad = append(bad, id)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad
}

// CheckPageInvariant recomputes every active region's page coverage and
// header lists from its residents and compares them with the incrementally
// maintained page tables, returning the regions that disagree. Tests use
// it to validate the bookkeeping in Allocate/Evacuate/Remove.
func (h *Heap) CheckPageInvariant() []RegionID {
	var bad []RegionID
	for id, r := range h.regions {
		rp := r.pages
		coverage := make([]uint16, rp.n)
		headers := make(map[uint32]map[ObjectID]struct{})
		for obj := r.head; obj != nil; obj = obj.next {
			first, last := obj.pageSpan(h.cfg.PageSize)
			for i := first; i <= last && i < rp.n; i++ {
				coverage[i]++
			}
			hp := obj.headerPage(h.cfg.PageSize)
			if headers[hp] == nil {
				headers[hp] = make(map[ObjectID]struct{})
			}
			headers[hp][obj.ID] = struct{}{}
		}
		ok := true
		for i := uint32(0); i < rp.n && ok; i++ {
			if coverage[i] != rp.coverage[i] {
				ok = false
			}
			if len(headers[i]) != len(rp.headers[i]) {
				ok = false
			}
			for _, hid := range rp.headers[i] {
				if _, present := headers[i][hid]; !present {
					ok = false
				}
			}
		}
		if !ok {
			bad = append(bad, id)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad
}
