package heap

import "fmt"

// RegionID identifies a heap region. Region ids are never reused within one
// heap so that page keys remain unambiguous across the whole run.
type RegionID uint32

// Region is a fixed-size, bump-allocated slab of simulated memory owned by
// exactly one generation, as in G1 and NG2C.
type Region struct {
	id  RegionID
	gen GenID
	// used is the bump pointer: bytes allocated so far.
	used uint32
	// residents holds every object currently stored in the region,
	// whether reachable or not; liveness is only known after a trace.
	// Values are the objects themselves so sweep and evacuation loops
	// never pay an object-table lookup per resident.
	residents map[ObjectID]*Object
	// remsetEntries counts incoming reference edges whose source object
	// resides in a different region — the region's remembered set size,
	// which the collectors charge scanning cost for.
	remsetEntries int
	// freed marks a region returned to the free pool.
	freed bool

	// traceEpoch, liveObjects and liveBytes are the region's liveness
	// summary for the trace epoch that last visited it; LiveSet.Region
	// reads them back, replacing a per-trace map allocation.
	traceEpoch  uint64
	liveObjects int
	liveBytes   uint64
}

// ID returns the region's identifier.
func (r *Region) ID() RegionID { return r.id }

// Gen returns the generation that owns the region.
func (r *Region) Gen() GenID { return r.gen }

// Used returns the number of allocated bytes.
func (r *Region) Used() uint32 { return r.used }

// ResidentCount returns the number of objects stored in the region
// (reachable or not).
func (r *Region) ResidentCount() int { return len(r.residents) }

// RemsetEntries returns the current remembered-set size: the number of
// reference edges pointing into this region from objects in other regions.
func (r *Region) RemsetEntries() int { return r.remsetEntries }

// Freed reports whether the region has been returned to the free pool.
func (r *Region) Freed() bool { return r.freed }

// Residents returns the ids of all objects stored in the region. The slice
// is freshly allocated; callers may keep it across heap mutations.
func (r *Region) Residents() []ObjectID {
	out := make([]ObjectID, 0, len(r.residents))
	for id := range r.residents {
		out = append(out, id)
	}
	return out
}

// EachResident calls f for every object currently stored in the region, in
// unspecified order. The callback must not mutate the heap.
func (r *Region) EachResident(f func(*Object)) {
	for _, obj := range r.residents {
		f(obj)
	}
}

// fits reports whether size more bytes fit in the region.
func (r *Region) fits(size, regionSize uint32) bool {
	return r.used+size <= regionSize && size <= regionSize
}

func (r *Region) String() string {
	return fmt.Sprintf("region{id=%d gen=%d used=%d residents=%d remset=%d freed=%v}",
		r.id, r.gen, r.used, len(r.residents), r.remsetEntries, r.freed)
}
