package heap

import "fmt"

// RegionID identifies a heap region. Region ids are never reused within one
// heap so that page keys remain unambiguous across the whole run.
type RegionID uint32

// Region is a fixed-size, bump-allocated slab of simulated memory owned by
// exactly one generation, as in G1 and NG2C.
type Region struct {
	id  RegionID
	gen GenID
	// used is the bump pointer: bytes allocated so far.
	used uint32
	// head and tail delimit the intrusive insertion-ordered doubly-linked
	// list of every object currently stored in the region, whether
	// reachable or not; liveness is only known after a trace. Threading
	// the list through the objects makes residency tracking allocation-
	// free and gives sweeps a deterministic order by construction.
	head, tail *Object
	// residents counts the objects on the list.
	residents int
	// remsetEntries counts incoming reference edges whose source object
	// resides in a different region — the region's remembered set size,
	// which the collectors charge scanning cost for.
	remsetEntries int
	// freed marks a region returned to the free pool. Region structs are
	// never recycled (collectors hold *Region across collections and
	// check Freed), only their page tables are.
	freed bool
	// pages is the region's page table, owned by the heap; the backing
	// arrays are recycled when the region is freed.
	pages *regionPages

	// traceEpoch, liveObjects and liveBytes are the region's liveness
	// summary for the trace epoch that last visited it; LiveSet.Region
	// reads them back, replacing a per-trace map allocation.
	traceEpoch  uint64
	liveObjects int
	liveBytes   uint64
}

// ID returns the region's identifier.
func (r *Region) ID() RegionID { return r.id }

// Gen returns the generation that owns the region.
func (r *Region) Gen() GenID { return r.gen }

// Used returns the number of allocated bytes.
func (r *Region) Used() uint32 { return r.used }

// ResidentCount returns the number of objects stored in the region
// (reachable or not).
func (r *Region) ResidentCount() int { return r.residents }

// RemsetEntries returns the current remembered-set size: the number of
// reference edges pointing into this region from objects in other regions.
func (r *Region) RemsetEntries() int { return r.remsetEntries }

// Freed reports whether the region has been returned to the free pool.
func (r *Region) Freed() bool { return r.freed }

// pushResident appends obj to the tail of the resident list.
func (r *Region) pushResident(obj *Object) {
	obj.prev = r.tail
	obj.next = nil
	if r.tail != nil {
		r.tail.next = obj
	} else {
		r.head = obj
	}
	r.tail = obj
	r.residents++
}

// removeResident unlinks obj from the resident list.
func (r *Region) removeResident(obj *Object) {
	if obj.prev != nil {
		obj.prev.next = obj.next
	} else {
		r.head = obj.next
	}
	if obj.next != nil {
		obj.next.prev = obj.prev
	} else {
		r.tail = obj.prev
	}
	obj.prev, obj.next = nil, nil
	r.residents--
}

// FirstResident returns the oldest resident (insertion order), or nil for
// an empty region. Together with Object.NextResident it lets collectors
// walk — and sweep — the region without allocating: read NextResident
// before removing the current object.
func (r *Region) FirstResident() *Object { return r.head }

// Residents returns the ids of all objects stored in the region, in
// insertion order. The slice is freshly allocated; callers may keep it
// across heap mutations.
func (r *Region) Residents() []ObjectID {
	out := make([]ObjectID, 0, r.residents)
	for obj := r.head; obj != nil; obj = obj.next {
		out = append(out, obj.ID)
	}
	return out
}

// EachResident calls f for every object currently stored in the region, in
// insertion order. The callback must not mutate the heap.
func (r *Region) EachResident(f func(*Object)) {
	for obj := r.head; obj != nil; obj = obj.next {
		f(obj)
	}
}

// fits reports whether size more bytes fit in the region.
func (r *Region) fits(size, regionSize uint32) bool {
	return r.used+size <= regionSize && size <= regionSize
}

func (r *Region) String() string {
	return fmt.Sprintf("region{id=%d gen=%d used=%d residents=%d remset=%d freed=%v}",
		r.id, r.gen, r.used, r.residents, r.remsetEntries, r.freed)
}
