package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// shadowTracker mirrors the page-table write rules independently of the
// page-table implementation: every heap mutation that writes simulated
// memory records the written pages here, and a snapshot boundary resets the
// set — exactly what the kernel's soft-dirty tracking does for CRIU.
type shadowTracker struct {
	dirty map[PageKey]bool
}

func newShadowTracker() *shadowTracker {
	return &shadowTracker{dirty: make(map[PageKey]bool)}
}

func (s *shadowTracker) write(region RegionID, first, last uint32) {
	for i := first; i <= last; i++ {
		s.dirty[PageKey{Region: region, Index: i}] = true
	}
}

func (s *shadowTracker) clear() { s.dirty = make(map[PageKey]bool) }

// TestDirtyNoNeedSurviveInterleavingsProperty drives random interleavings
// of mutator activity (allocate, link, unlink, evacuate, root churn) with
// GC cycles (trace, sweep, no-need marking) and snapshot boundaries (dirty
// clearing), checking after every cycle that
//
//   - a page is dirty if and only if the shadow tracker saw a write to it
//     since the last snapshot, and
//   - immediately after MarkNoNeedPages, a page carries the no-need bit if
//     and only if no live object's storage overlaps it.
//
// The equivalences are what the Dumper's correctness rests on: dirty bits
// select the pages a snapshot must include, no-need bits the pages it may
// elide.
func TestDirtyNoNeedSurviveInterleavingsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := New(Config{RegionSize: 16 * 1024, PageSize: 4096})
		if err != nil {
			return false
		}
		shadow := newShadowTracker()
		var regions []*Region
		for i := 0; i < 4; i++ {
			r, err := h.NewRegion(GenID(i % 2))
			if err != nil {
				return false
			}
			regions = append(regions, r)
		}
		var objs []*Object
		alive := func() []*Object {
			out := objs[:0]
			for _, o := range objs {
				if h.Object(o.ID) != nil {
					out = append(out, o)
				}
			}
			objs = out
			return objs
		}
		mutate := func() {
			switch op := rng.Intn(5); {
			case op == 0 || len(alive()) < 2: // allocate
				r := regions[rng.Intn(len(regions))]
				obj, err := h.Allocate(r, uint32(32+rng.Intn(6000)), SiteID(rng.Intn(5)+1))
				if err != nil {
					return
				}
				objs = append(objs, obj)
				first, last := obj.pageSpan(h.cfg.PageSize)
				shadow.write(obj.Region, first, last)
			case op == 1: // link
				a, b := objs[rng.Intn(len(objs))], objs[rng.Intn(len(objs))]
				if h.Link(a.ID, b.ID) == nil {
					hp := a.headerPage(h.cfg.PageSize)
					shadow.write(a.Region, hp, hp)
				}
			case op == 2: // unlink
				a, b := objs[rng.Intn(len(objs))], objs[rng.Intn(len(objs))]
				if h.Unlink(a.ID, b.ID) == nil {
					hp := a.headerPage(h.cfg.PageSize)
					shadow.write(a.Region, hp, hp)
				}
			case op == 3: // evacuate
				o := objs[rng.Intn(len(objs))]
				r := regions[rng.Intn(len(regions))]
				if o.Region != r.ID() && h.Evacuate(o, r) == nil {
					first, last := o.pageSpan(h.cfg.PageSize)
					shadow.write(o.Region, first, last)
				}
			case op == 4: // root churn
				o := objs[rng.Intn(len(objs))]
				if o.IsRoot() {
					_ = h.RemoveRoot(o.ID)
				} else {
					_ = h.AddRoot(o.ID)
				}
			}
		}
		checkDirty := func() bool {
			ok := true
			h.Pages(func(ps PageState) {
				if ps.Dirty != shadow.dirty[ps.Key] {
					t.Logf("seed %d: page %v dirty=%v, shadow=%v", seed, ps.Key, ps.Dirty, shadow.dirty[ps.Key])
					ok = false
				}
			})
			return ok
		}
		for cycle := 0; cycle < 12; cycle++ {
			for i := 0; i < 40; i++ {
				mutate()
			}
			if !checkDirty() {
				return false
			}
			// GC cycle: trace, sweep every dead object (collectors always
			// reclaim the whole dead set), then mark no-need pages —
			// removal writes nothing, so the dirty equivalence must
			// survive it.
			live := h.Trace()
			for _, o := range alive() {
				if !live.Marked(o) {
					h.Remove(o)
				}
			}
			alive()
			if bad := h.CheckPageInvariant(); len(bad) != 0 {
				t.Logf("seed %d: page invariant broken in %v", seed, bad)
				return false
			}
			if bad := h.CheckRemsetInvariant(); len(bad) != 0 {
				t.Logf("seed %d: remset invariant broken in %v", seed, bad)
				return false
			}
			h.MarkNoNeedPages(live)
			if !checkDirty() {
				return false
			}
			// After a full sweep the residents are exactly the live
			// objects, so no-need must equal "no resident storage overlaps
			// the page".
			covered := make(map[PageKey]bool)
			for _, r := range regions {
				r.EachResident(func(o *Object) {
					first, last := o.pageSpan(h.cfg.PageSize)
					for i := first; i <= last; i++ {
						covered[PageKey{Region: r.ID(), Index: i}] = true
					}
				})
			}
			ok := true
			h.Pages(func(ps PageState) {
				if ps.NoNeed == covered[ps.Key] {
					t.Logf("seed %d: page %v noNeed=%v, covered=%v", seed, ps.Key, ps.NoNeed, covered[ps.Key])
					ok = false
				}
			})
			if !ok {
				return false
			}
			// Snapshot boundary: the dumper includes dirty pages and
			// clears the soft-dirty bits.
			if rng.Intn(2) == 0 {
				h.ClearDirtyPages()
				shadow.clear()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestNoNeedClearedOnlyByWrites checks the no-need bit's lifecycle
// directly: set by the collector's mark pass, it must persist across
// non-writing operations (removal, root churn, dirty clearing) and drop on
// the first write to the page.
func TestNoNeedClearedOnlyByWrites(t *testing.T) {
	h := testHeap(t)
	r := mustRegion(t, h, Young)
	obj := mustAlloc(t, h, r, 3000)
	if err := h.AddRoot(obj.ID); err != nil {
		t.Fatal(err)
	}
	dead := mustAlloc(t, h, r, 3000) // pages 0..1, header on page 0

	live := h.Trace()
	if live.Marked(dead) {
		t.Fatal("unrooted object traced live")
	}
	h.Remove(dead)
	h.MarkNoNeedPages(h.Trace())

	pages := collectPages(h)
	if pages[PageKey{r.ID(), 1}].NoNeed == false {
		t.Fatal("page holding only removed storage should be no-need")
	}
	if pages[PageKey{r.ID(), 0}].NoNeed {
		t.Fatal("page with live storage must not be no-need")
	}

	// Non-writing operations keep the bit.
	h.ClearDirtyPages()
	if !collectPages(h)[PageKey{r.ID(), 1}].NoNeed {
		t.Fatal("clearing dirty bits must not clear no-need")
	}

	// A write into the page clears it.
	obj2, err := h.Allocate(r, 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, last := obj2.pageSpan(h.Config().PageSize)
	pages = collectPages(h)
	for i := first; i <= last; i++ {
		if pages[PageKey{r.ID(), i}].NoNeed {
			t.Fatalf("page %d written by allocation still no-need", i)
		}
		if !pages[PageKey{r.ID(), i}].Dirty {
			t.Fatalf("page %d written by allocation not dirty", i)
		}
	}
}
