// Package heap implements the simulated managed heap that replaces the
// HotSpot JVM heap in this reproduction of POLM2 (Middleware '17).
//
// The heap is organized exactly the way the collectors in the paper need it
// to be:
//
//   - memory is split into fixed-size regions (as in G1 and NG2C), each
//     owned by one generation and bump-allocated;
//   - regions are split into 4 KiB pages tracked by a page table with a
//     dirty bit (set on mutation) and a no-need bit (set by the GC for pages
//     holding no reachable object), mirroring the kernel page-table bits the
//     paper's Dumper relies on through CRIU (§4.2);
//   - objects carry a stable 64-bit identity hash in their header that
//     survives promotion and compaction, mirroring
//     System.identityHashCode (§4.3);
//   - liveness is discovered by tracing from an explicit root set over
//     explicit reference edges — workloads never declare lifetimes, so the
//     profiler faces the same estimation problem it faces on a JVM.
//
// The hot data structures are laid out so a steady-state GC cycle performs
// near-zero Go allocations (DESIGN.md §8): reference edges live in a hybrid
// inline-array/spill store instead of maps, region residency is an
// intrusive doubly-linked list threaded through the objects, and dead
// Object structs are recycled through a per-heap freelist.
package heap

import "fmt"

// ObjectID is the stable identity of a simulated object. It doubles as the
// object's identity hash: it is assigned at allocation and never changes,
// even when the object is moved by the collector (§4.3 of the paper).
type ObjectID uint64

// SiteID identifies an interned allocation stack trace. Zero is reserved
// for "unknown site".
type SiteID uint32

// GenID identifies a generation. Generation 0 is always the young
// generation; pretenuring collectors add generations 1..N at runtime.
type GenID int32

// Young is the generation every non-pretenured allocation lands in.
const Young GenID = 0

// edgeInlineCap is the number of (child, count) pairs an edge store holds
// inline before spilling. The simulated apps' holder objects reference a
// handful of children (commit-log segments, SSTable parts, cache rows), so
// four inline slots cover the overwhelming majority of objects without a
// spill allocation.
const edgeInlineCap = 4

// edgeRef is one reference edge with multiplicity.
type edgeRef struct {
	obj *Object
	n   int32
}

// edgeIdxThreshold is the spill length beyond which an edgeSet builds a
// position index. Below it, a linear scan over at most a few cache lines
// beats any hashing; above it (the apps' holder objects fan out to
// thousands of children), the index keeps inc/dec/drop O(1) where the
// sorted alternatives go quadratic over a holder's lifetime.
const edgeIdxThreshold = 32

// edgeSet is the hybrid edge store: a small inline array for the common
// low-fanout case, with an insertion-ordered spill slice (plus a lazily
// built position index) for high-fanout objects. Compared to the
// map[*Object]int it replaces, it allocates nothing until an object's
// fanout exceeds edgeInlineCap, its backing arrays survive recycling, and
// its iteration order is deterministic: inline slots then spill slots,
// an order that is a pure function of the Link/Unlink/Remove history (the
// position index is used only for lookup, never iterated).
type edgeSet struct {
	inline    [edgeInlineCap]edgeRef
	inlineLen int32
	// spill holds the overflow edges in insertion order; removal
	// swap-deletes, so the order stays a deterministic function of the
	// operation history.
	spill []edgeRef
	// idx maps spill children to their position once the spill outgrows
	// edgeIdxThreshold. Once built it is maintained forever (and kept,
	// cleared, across recycling): a struct that went high-fanout once
	// tends to again.
	idx map[*Object]int32
}

// findInline returns the inline index of o, or -1.
func (s *edgeSet) findInline(o *Object) int {
	for i := int32(0); i < s.inlineLen; i++ {
		if s.inline[i].obj == o {
			return int(i)
		}
	}
	return -1
}

// spillFind returns the spill index of o, or -1.
func (s *edgeSet) spillFind(o *Object) int {
	if s.idx != nil {
		if i, ok := s.idx[o]; ok {
			return int(i)
		}
		return -1
	}
	for i := range s.spill {
		if s.spill[i].obj == o {
			return i
		}
	}
	return -1
}

// inc adds one edge to o, creating the entry if absent.
func (s *edgeSet) inc(o *Object) {
	if i := s.findInline(o); i >= 0 {
		s.inline[i].n++
		return
	}
	if i := s.spillFind(o); i >= 0 {
		s.spill[i].n++
		return
	}
	if s.inlineLen < edgeInlineCap {
		s.inline[s.inlineLen] = edgeRef{obj: o, n: 1}
		s.inlineLen++
		return
	}
	s.spill = append(s.spill, edgeRef{obj: o, n: 1})
	if s.idx != nil {
		s.idx[o] = int32(len(s.spill) - 1)
	} else if len(s.spill) > edgeIdxThreshold {
		s.idx = make(map[*Object]int32, 2*edgeIdxThreshold)
		for i := range s.spill {
			s.idx[s.spill[i].obj] = int32(i)
		}
	}
}

// dec removes one edge to o, deleting the entry when the count reaches
// zero. It reports whether the edge existed; a false return mutates
// nothing.
func (s *edgeSet) dec(o *Object) bool {
	if i := s.findInline(o); i >= 0 {
		s.inline[i].n--
		if s.inline[i].n == 0 {
			s.removeInlineAt(i)
		}
		return true
	}
	if i := s.spillFind(o); i >= 0 {
		s.spill[i].n--
		if s.spill[i].n == 0 {
			s.removeSpillAt(i)
		}
		return true
	}
	return false
}

// drop removes the entry for o regardless of multiplicity, returning the
// multiplicity removed (zero if absent).
func (s *edgeSet) drop(o *Object) int32 {
	if i := s.findInline(o); i >= 0 {
		n := s.inline[i].n
		s.removeInlineAt(i)
		return n
	}
	if i := s.spillFind(o); i >= 0 {
		n := s.spill[i].n
		s.removeSpillAt(i)
		return n
	}
	return 0
}

func (s *edgeSet) removeInlineAt(i int) {
	s.inlineLen--
	s.inline[i] = s.inline[s.inlineLen]
	s.inline[s.inlineLen] = edgeRef{}
}

func (s *edgeSet) removeSpillAt(i int) {
	last := len(s.spill) - 1
	gone := s.spill[i].obj
	s.spill[i] = s.spill[last]
	s.spill[last] = edgeRef{}
	s.spill = s.spill[:last]
	if s.idx != nil {
		delete(s.idx, gone)
		if i != last {
			s.idx[s.spill[i].obj] = int32(i)
		}
	}
}

// countByID returns the multiplicity of the edge to the object with the
// given identity hash.
func (s *edgeSet) countByID(id ObjectID) int32 {
	for i := int32(0); i < s.inlineLen; i++ {
		if s.inline[i].obj.ID == id {
			return s.inline[i].n
		}
	}
	for i := range s.spill {
		if s.spill[i].obj.ID == id {
			return s.spill[i].n
		}
	}
	return 0
}

// len returns the number of distinct edges.
func (s *edgeSet) len() int { return int(s.inlineLen) + len(s.spill) }

// each calls f for every distinct edge with its multiplicity. f must not
// mutate the set.
func (s *edgeSet) each(f func(o *Object, n int32)) {
	for i := int32(0); i < s.inlineLen; i++ {
		f(s.inline[i].obj, s.inline[i].n)
	}
	for i := range s.spill {
		f(s.spill[i].obj, s.spill[i].n)
	}
}

// reset empties the store, keeping the spill backing array (and the
// position index, cleared) so a recycled object relinks without
// allocating.
func (s *edgeSet) reset() {
	for i := int32(0); i < s.inlineLen; i++ {
		s.inline[i] = edgeRef{}
	}
	s.inlineLen = 0
	for i := range s.spill {
		s.spill[i] = edgeRef{}
	}
	s.spill = s.spill[:0]
	clear(s.idx)
}

// Object is a simulated heap object. Only the heap and the collectors
// mutate objects; mutator code goes through the Heap's graph API.
type Object struct {
	// ID is the object's stable identity hash.
	ID ObjectID
	// Size is the object's size in simulated bytes, header included.
	Size uint32
	// Site is the allocation site (interned stack trace) that produced
	// the object.
	Site SiteID
	// Gen is the generation the object currently resides in.
	Gen GenID
	// Age counts the young collections the object has survived; the
	// 2-generation collector promotes at a configured tenuring threshold.
	Age uint8
	// Region and Offset locate the object's current storage.
	Region RegionID
	Offset uint32

	// refs holds outgoing reference edges with multiplicity; in holds the
	// mirror incoming edges so remembered sets can be maintained
	// incrementally when objects move. Edges reference objects by pointer
	// so the tracer and the collectors never pay an object-table lookup
	// per edge; edges to removed objects are torn down eagerly by Remove,
	// so no stale pointer ever survives in either store.
	refs edgeSet
	in   edgeSet

	// region is the object's current region, kept in sync with the
	// exported Region id so hot paths skip the region-table lookup.
	region *Region
	// rootPins counts how many times the object has been registered as a
	// GC root.
	rootPins int
	// mark is the trace epoch that last reached this object; the heap
	// compares it against its current epoch instead of building a
	// live-set map on every collection.
	mark uint64

	// prev and next thread the object onto its region's intrusive
	// insertion-ordered resident list; next doubles as the freelist link
	// while the object is dead.
	prev, next *Object
	// stamp counts how many times this Object struct has been recycled
	// through the heap's freelist. A caller holding an object across a
	// collection can detect reuse by comparing Stamp values (tests use
	// this to catch stale-pointer bugs).
	stamp uint32
}

// headerPage returns the index (within the object's region) of the page
// holding the object's header. The analyzer can only recover an object's
// identity hash from a snapshot when this page is included (§4.3).
func (o *Object) headerPage(pageSize uint32) uint32 {
	return o.Offset / pageSize
}

// pageSpan returns the inclusive page-index range [first, last] the object's
// storage covers within its region.
func (o *Object) pageSpan(pageSize uint32) (first, last uint32) {
	first = o.Offset / pageSize
	last = (o.Offset + o.Size - 1) / pageSize
	return first, last
}

// RefCount returns the multiplicity of the edge from o to child.
func (o *Object) RefCount(child ObjectID) int {
	return int(o.refs.countByID(child))
}

// EachRef calls f for every distinct outgoing reference edge with its
// multiplicity, in deterministic (store) order. The callback must not
// mutate the heap.
func (o *Object) EachRef(f func(child *Object, n int)) {
	o.refs.each(func(c *Object, n int32) { f(c, int(n)) })
}

// OutDegree returns the number of distinct outgoing references.
func (o *Object) OutDegree() int { return o.refs.len() }

// InDegree returns the number of distinct incoming references.
func (o *Object) InDegree() int { return o.in.len() }

// IsRoot reports whether the object is currently pinned as a GC root.
func (o *Object) IsRoot() bool { return o.rootPins > 0 }

// NextResident returns the next object on the region's insertion-ordered
// resident list, or nil at the tail. Collectors sweeping a region read the
// next pointer before removing the current object.
func (o *Object) NextResident() *Object { return o.next }

// Stamp returns the object's recycling generation: the number of times this
// struct has been reused through the heap's freelist. A pointer held across
// collections refers to the same logical object only while the stamp (and
// ID) are unchanged.
func (o *Object) Stamp() uint32 { return o.stamp }

func (o *Object) String() string {
	return fmt.Sprintf("obj{id=%#x size=%d site=%d gen=%d age=%d r%d+%d}",
		uint64(o.ID), o.Size, o.Site, o.Gen, o.Age, o.Region, o.Offset)
}
