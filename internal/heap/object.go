// Package heap implements the simulated managed heap that replaces the
// HotSpot JVM heap in this reproduction of POLM2 (Middleware '17).
//
// The heap is organized exactly the way the collectors in the paper need it
// to be:
//
//   - memory is split into fixed-size regions (as in G1 and NG2C), each
//     owned by one generation and bump-allocated;
//   - regions are split into 4 KiB pages tracked by a page table with a
//     dirty bit (set on mutation) and a no-need bit (set by the GC for pages
//     holding no reachable object), mirroring the kernel page-table bits the
//     paper's Dumper relies on through CRIU (§4.2);
//   - objects carry a stable 64-bit identity hash in their header that
//     survives promotion and compaction, mirroring
//     System.identityHashCode (§4.3);
//   - liveness is discovered by tracing from an explicit root set over
//     explicit reference edges — workloads never declare lifetimes, so the
//     profiler faces the same estimation problem it faces on a JVM.
package heap

import "fmt"

// ObjectID is the stable identity of a simulated object. It doubles as the
// object's identity hash: it is assigned at allocation and never changes,
// even when the object is moved by the collector (§4.3 of the paper).
type ObjectID uint64

// SiteID identifies an interned allocation stack trace. Zero is reserved
// for "unknown site".
type SiteID uint32

// GenID identifies a generation. Generation 0 is always the young
// generation; pretenuring collectors add generations 1..N at runtime.
type GenID int32

// Young is the generation every non-pretenured allocation lands in.
const Young GenID = 0

// Object is a simulated heap object. Only the heap and the collectors
// mutate objects; mutator code goes through the Heap's graph API.
type Object struct {
	// ID is the object's stable identity hash.
	ID ObjectID
	// Size is the object's size in simulated bytes, header included.
	Size uint32
	// Site is the allocation site (interned stack trace) that produced
	// the object.
	Site SiteID
	// Gen is the generation the object currently resides in.
	Gen GenID
	// Age counts the young collections the object has survived; the
	// 2-generation collector promotes at a configured tenuring threshold.
	Age uint8
	// Region and Offset locate the object's current storage.
	Region RegionID
	Offset uint32

	// refs holds outgoing reference edges with multiplicity; in holds the
	// mirror incoming edges so remembered sets can be maintained
	// incrementally when objects move. Both are nil until first use:
	// most simulated objects are leaves. The maps are keyed by object
	// pointer so the tracer and the collectors never pay an object-table
	// lookup per edge; edges to removed objects are torn down eagerly by
	// Remove, so no stale pointer ever survives in either map.
	refs map[*Object]int
	in   map[*Object]int
	// region is the object's current region, kept in sync with the
	// exported Region id so hot paths skip the region-table lookup.
	region *Region
	// rootPins counts how many times the object has been registered as a
	// GC root.
	rootPins int
	// mark is the trace epoch that last reached this object; the heap
	// compares it against its current epoch instead of building a
	// live-set map on every collection.
	mark uint64
}

// headerPage returns the index (within the object's region) of the page
// holding the object's header. The analyzer can only recover an object's
// identity hash from a snapshot when this page is included (§4.3).
func (o *Object) headerPage(pageSize uint32) uint32 {
	return o.Offset / pageSize
}

// pageSpan returns the inclusive page-index range [first, last] the object's
// storage covers within its region.
func (o *Object) pageSpan(pageSize uint32) (first, last uint32) {
	first = o.Offset / pageSize
	last = (o.Offset + o.Size - 1) / pageSize
	return first, last
}

// RefCount returns the multiplicity of the edge from o to child.
func (o *Object) RefCount(child ObjectID) int {
	for c, n := range o.refs {
		if c.ID == child {
			return n
		}
	}
	return 0
}

// OutDegree returns the number of distinct outgoing references.
func (o *Object) OutDegree() int { return len(o.refs) }

// InDegree returns the number of distinct incoming references.
func (o *Object) InDegree() int { return len(o.in) }

// IsRoot reports whether the object is currently pinned as a GC root.
func (o *Object) IsRoot() bool { return o.rootPins > 0 }

func (o *Object) String() string {
	return fmt.Sprintf("obj{id=%#x size=%d site=%d gen=%d age=%d r%d+%d}",
		uint64(o.ID), o.Size, o.Site, o.Gen, o.Age, o.Region, o.Offset)
}
