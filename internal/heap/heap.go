package heap

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// DefaultRegionSize is the default region size: 1 MiB, the G1 default for
// heaps in the low-gigabyte range.
const DefaultRegionSize = 1 << 20

// DefaultPageSize is the simulated kernel page size the Dumper operates on.
const DefaultPageSize = 4096

// ErrOutOfMemory is returned when committing one more region would exceed
// the heap's configured maximum, mirroring a fixed -Xmx setting (§5.1 of the
// paper fixes the heap at 12 GB).
var ErrOutOfMemory = errors.New("heap: out of memory")

// Config sizes a simulated heap.
type Config struct {
	// RegionSize is the size of each region in bytes. Must be a positive
	// multiple of PageSize.
	RegionSize uint32
	// PageSize is the simulated kernel page size. Must be positive.
	PageSize uint32
	// MaxBytes caps committed memory (regions in use times region size).
	// Zero means unlimited.
	MaxBytes uint64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.RegionSize == 0 {
		c.RegionSize = DefaultRegionSize
	}
	if c.PageSize == 0 {
		c.PageSize = DefaultPageSize
	}
	return c
}

func (c Config) validate() error {
	if c.PageSize == 0 {
		return fmt.Errorf("heap: page size must be positive")
	}
	if c.RegionSize == 0 || c.RegionSize%c.PageSize != 0 {
		return fmt.Errorf("heap: region size %d must be a positive multiple of page size %d",
			c.RegionSize, c.PageSize)
	}
	if c.MaxBytes != 0 && c.MaxBytes < uint64(c.RegionSize) {
		return fmt.Errorf("heap: max bytes %d smaller than one region (%d)", c.MaxBytes, c.RegionSize)
	}
	return nil
}

// Stats summarizes heap occupancy.
type Stats struct {
	// CommittedBytes is regions currently in use times region size.
	CommittedBytes uint64
	// MaxCommittedBytes is the high-water mark of CommittedBytes — the
	// paper's "max memory usage" metric (Figure 9).
	MaxCommittedBytes uint64
	// UsedBytes is the sum of region bump pointers (includes garbage not
	// yet collected).
	UsedBytes uint64
	// LiveRegions is the number of regions currently in use.
	LiveRegions int
	// Objects is the number of resident objects (reachable or not).
	Objects int
	// TotalAllocatedObjects and TotalAllocatedBytes count every
	// allocation ever made.
	TotalAllocatedObjects uint64
	TotalAllocatedBytes   uint64
	// FreeObjects is the number of recycled Object structs waiting on the
	// heap's freelist.
	FreeObjects int
}

// Heap is the simulated managed heap. It owns objects, regions and the page
// table; collectors implement policy on top of it. A Heap is not safe for
// concurrent use: the simulation is single-threaded, as a stop-the-world
// collector's heap effectively is.
//
// A steady-state GC cycle over a Heap performs near-zero Go allocations:
// dead Object structs (with their edge-store spill arrays) are recycled
// through a freelist, freed regions donate their page tables to the next
// committed region, and the tracer and no-need marker reuse per-heap
// scratch buffers.
type Heap struct {
	cfg Config

	objects map[ObjectID]*Object
	regions map[RegionID]*Region
	roots   map[ObjectID]*Object

	// activeIDs is the ascending list of non-freed region ids, maintained
	// incrementally: region ids are assigned monotonically, so commits
	// append and frees splice — no per-call rebuild-and-sort.
	activeIDs []RegionID

	nextRegion RegionID
	idCounter  uint64
	epoch      uint64

	committed    uint64
	maxCommitted uint64
	totalObjects uint64
	totalBytes   uint64

	// objFree chains recycled Object structs through their next field;
	// freeObjects counts them.
	objFree     *Object
	freeObjects int
	// rpFree holds page tables donated by freed regions.
	rpFree []*regionPages

	// traceQueue is the tracer's reusable BFS queue; the most recent
	// LiveSet aliases it (a LiveSet is only valid until the next Trace).
	traceQueue []*Object
	// noNeedCov is MarkNoNeedPages' reusable coverage bitset.
	noNeedCov bitset
	// objScratch is the staging buffer exposed through ObjectScratch.
	objScratch []*Object
}

// New builds a heap from cfg, applying defaults for unset fields.
func New(cfg Config) (*Heap, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Heap{
		cfg:     cfg,
		objects: make(map[ObjectID]*Object),
		regions: make(map[RegionID]*Region),
		roots:   make(map[ObjectID]*Object),
	}, nil
}

// Config returns the heap's effective configuration.
func (h *Heap) Config() Config { return h.cfg }

// Stats returns a snapshot of heap occupancy.
func (h *Heap) Stats() Stats {
	var used uint64
	for _, id := range h.activeIDs {
		used += uint64(h.regions[id].used)
	}
	return Stats{
		CommittedBytes:        h.committed,
		MaxCommittedBytes:     h.maxCommitted,
		UsedBytes:             used,
		LiveRegions:           len(h.activeIDs),
		Objects:               len(h.objects),
		TotalAllocatedObjects: h.totalObjects,
		TotalAllocatedBytes:   h.totalBytes,
		FreeObjects:           h.freeObjects,
	}
}

// Object returns the object with the given id, or nil if it does not exist
// (was never allocated, or has been collected).
func (h *Heap) Object(id ObjectID) *Object { return h.objects[id] }

// Region returns the region with the given id, or nil.
func (h *Heap) Region(id RegionID) *Region { return h.regions[id] }

// ObjectScratch exposes the heap's reusable object staging buffer. Callers
// (the collectors' per-region evacuation staging) truncate, fill and
// consume it within one operation; the contents are only valid until the
// next use. Single-threaded like the heap itself.
func (h *Heap) ObjectScratch() *[]*Object { return &h.objScratch }

// NewRegion commits a fresh region for generation gen. It fails with
// ErrOutOfMemory when the configured maximum would be exceeded. The
// region's page table is recycled from the last freed region when one is
// available.
func (h *Heap) NewRegion(gen GenID) (*Region, error) {
	if h.cfg.MaxBytes != 0 && h.committed+uint64(h.cfg.RegionSize) > h.cfg.MaxBytes {
		return nil, fmt.Errorf("committing region for gen %d: %w", gen, ErrOutOfMemory)
	}
	var rp *regionPages
	if n := len(h.rpFree); n > 0 {
		rp = h.rpFree[n-1]
		h.rpFree[n-1] = nil
		h.rpFree = h.rpFree[:n-1]
		rp.reset()
	} else {
		rp = newRegionPages(h.cfg.RegionSize / h.cfg.PageSize)
	}
	r := &Region{
		id:    h.nextRegion,
		gen:   gen,
		pages: rp,
	}
	h.nextRegion++
	h.regions[r.id] = r
	// Region ids grow monotonically, so appending keeps activeIDs sorted.
	h.activeIDs = append(h.activeIDs, r.id)
	h.committed += uint64(h.cfg.RegionSize)
	if h.committed > h.maxCommitted {
		h.maxCommitted = h.committed
	}
	return r, nil
}

// FreeRegion returns an empty region to the system. Freeing a region that
// still has residents is a collector bug and panics: it would leak objects
// whose ids remain in the object table.
func (h *Heap) FreeRegion(r *Region) {
	if r.freed {
		panic(fmt.Sprintf("heap: double free of %v", r))
	}
	if r.residents != 0 {
		panic(fmt.Sprintf("heap: freeing non-empty %v", r))
	}
	r.freed = true
	r.used = 0
	h.committed -= uint64(h.cfg.RegionSize)
	// The region's memory is unmapped: drop it from the heap's tables
	// entirely (region ids are never reused; the Region struct is never
	// recycled because collectors hold *Region across collections and
	// check Freed). The page table's backing arrays are donated to the
	// next committed region. Snapshots communicate the disappearance
	// through their active-region list.
	h.rpFree = append(h.rpFree, r.pages)
	r.pages = nil
	delete(h.regions, r.id)
	h.removeActiveID(r.id)
}

// removeActiveID splices one id out of the sorted active-region list.
func (h *Heap) removeActiveID(id RegionID) {
	i, ok := slices.BinarySearch(h.activeIDs, id)
	if !ok {
		panic(fmt.Sprintf("heap: region %d missing from active list", id))
	}
	h.activeIDs = append(h.activeIDs[:i], h.activeIDs[i+1:]...)
}

// Allocate places a new object of the given size into region r on behalf of
// a collector and returns it. The object's identity hash is assigned here
// and never changes. Allocation dirties the touched pages. The Object
// struct is recycled from the heap's freelist when one is available; its
// recycling Stamp tells a stale pointer from the live object.
func (h *Heap) Allocate(r *Region, size uint32, site SiteID) (*Object, error) {
	if r.freed {
		return nil, fmt.Errorf("heap: allocating %d bytes in freed region %d", size, r.id)
	}
	if size == 0 {
		return nil, fmt.Errorf("heap: zero-size allocation at site %d", site)
	}
	if !r.fits(size, h.cfg.RegionSize) {
		return nil, fmt.Errorf("heap: %d bytes do not fit in %v (region size %d)", size, r, h.cfg.RegionSize)
	}
	h.idCounter++
	obj := h.objFree
	if obj != nil {
		h.objFree = obj.next
		h.freeObjects--
		obj.next = nil
		obj.ID = ObjectID(mix64(h.idCounter))
		obj.Size = size
		obj.Site = site
		obj.Gen = r.gen
		obj.Age = 0
		obj.Region = r.id
		obj.Offset = r.used
		obj.region = r
	} else {
		obj = &Object{
			ID:     ObjectID(mix64(h.idCounter)),
			Size:   size,
			Site:   site,
			Gen:    r.gen,
			Region: r.id,
			Offset: r.used,
			region: r,
		}
	}
	r.used += size
	r.pushResident(obj)
	h.objects[obj.ID] = obj
	h.totalObjects++
	h.totalBytes += uint64(size)
	first, last := obj.pageSpan(h.cfg.PageSize)
	r.pages.touch(first, last)
	r.pages.place(obj, h.cfg.PageSize)
	return obj, nil
}

// mix64 is the SplitMix64 finalizer: a bijection on uint64 that turns the
// sequential allocation counter into hash-looking identity values while
// guaranteeing uniqueness.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AddRoot pins the object with the given id as a GC root. Pins are counted:
// an object added twice must be removed twice.
func (h *Heap) AddRoot(id ObjectID) error {
	obj := h.objects[id]
	if obj == nil {
		return fmt.Errorf("heap: AddRoot of unknown object %#x", uint64(id))
	}
	obj.rootPins++
	h.roots[id] = obj
	return nil
}

// RemoveRoot releases one root pin of the object.
func (h *Heap) RemoveRoot(id ObjectID) error {
	obj := h.objects[id]
	if obj == nil {
		return fmt.Errorf("heap: RemoveRoot of unknown object %#x", uint64(id))
	}
	if obj.rootPins == 0 {
		return fmt.Errorf("heap: RemoveRoot of unpinned object %v", obj)
	}
	obj.rootPins--
	if obj.rootPins == 0 {
		delete(h.roots, id)
	}
	return nil
}

// PinRoot pins an already-resolved object as a GC root, skipping the id
// lookup of AddRoot on the engine's per-allocation pinning path.
func (h *Heap) PinRoot(obj *Object) {
	obj.rootPins++
	if obj.rootPins == 1 {
		h.roots[obj.ID] = obj
	}
}

// UnpinRoot releases one root pin of an already-resolved object. Unpinning
// an unpinned object is a bug in the engine and panics.
func (h *Heap) UnpinRoot(obj *Object) {
	if obj.rootPins == 0 {
		panic(fmt.Sprintf("heap: UnpinRoot of unpinned %v", obj))
	}
	obj.rootPins--
	if obj.rootPins == 0 {
		delete(h.roots, obj.ID)
	}
}

// RootCount returns the number of distinct rooted objects.
func (h *Heap) RootCount() int { return len(h.roots) }

// Link records a reference from parent to child (a reference-field store).
// The store dirties the parent's header page; a cross-region edge grows the
// child region's remembered set.
func (h *Heap) Link(parent, child ObjectID) error {
	p, c := h.objects[parent], h.objects[child]
	if p == nil || c == nil {
		return fmt.Errorf("heap: Link %#x -> %#x with unknown endpoint", uint64(parent), uint64(child))
	}
	p.refs.inc(c)
	c.in.inc(p)
	if p.Region != c.Region {
		c.region.remsetEntries++
	}
	hp := p.headerPage(h.cfg.PageSize)
	p.region.pages.touch(hp, hp)
	return nil
}

// Unlink removes one reference from parent to child (a field overwrite or
// clear). It also dirties the parent's header page.
func (h *Heap) Unlink(parent, child ObjectID) error {
	p, c := h.objects[parent], h.objects[child]
	if p == nil || c == nil {
		return fmt.Errorf("heap: Unlink %#x -> %#x with unknown endpoint", uint64(parent), uint64(child))
	}
	if !p.refs.dec(c) {
		return fmt.Errorf("heap: Unlink of absent edge %v -> %v", p, c)
	}
	c.in.dec(p)
	if p.Region != c.Region {
		c.region.remsetEntries--
	}
	hp := p.headerPage(h.cfg.PageSize)
	p.region.pages.touch(hp, hp)
	return nil
}

// Evacuate moves obj into region dst (promotion, survivor copying, or
// compaction). The object's identity hash is preserved; remembered sets of
// all affected regions are updated; the destination pages are dirtied.
func (h *Heap) Evacuate(obj *Object, dst *Region) error {
	if dst.freed {
		return fmt.Errorf("heap: evacuating %v into freed region %d", obj, dst.id)
	}
	src := obj.region
	if src == dst {
		return fmt.Errorf("heap: evacuating %v into its own region", obj)
	}
	if !dst.fits(obj.Size, h.cfg.RegionSize) {
		return fmt.Errorf("heap: %v does not fit in %v", obj, dst)
	}

	// Remembered-set deltas for edges incident to obj. Self-edges stay
	// intra-region before and after the move and contribute nothing.
	obj.in.each(func(parent *Object, n int32) {
		if parent == obj {
			return
		}
		pr := parent.Region
		if pr != src.id {
			src.remsetEntries -= int(n)
		}
		if pr != dst.id {
			dst.remsetEntries += int(n)
		}
	})
	obj.refs.each(func(child *Object, n int32) {
		if child == obj {
			return
		}
		if child.Region != src.id {
			// Was cross-region; still cross-region unless the child
			// lives in dst.
			if child.Region == dst.id {
				child.region.remsetEntries -= int(n)
			}
		} else {
			// Was intra-region; becomes cross-region.
			child.region.remsetEntries += int(n)
		}
	})

	src.removeResident(obj)
	src.pages.displace(obj, h.cfg.PageSize)
	obj.Region = dst.id
	obj.Offset = dst.used
	obj.Gen = dst.gen
	obj.region = dst
	dst.used += obj.Size
	dst.pushResident(obj)
	first, last := obj.pageSpan(h.cfg.PageSize)
	dst.pages.touch(first, last)
	dst.pages.place(obj, h.cfg.PageSize)
	return nil
}

// Remove deletes a dead object from the heap on behalf of a collector.
// Removing a rooted object is a collector bug and panics. Edges incident to
// the object are torn down with their remembered-set contributions. The
// Object struct goes onto the heap's freelist with a bumped recycling
// stamp; any pointer to it held across the removal is stale, and the stamp
// makes that detectable (Object.Stamp).
func (h *Heap) Remove(obj *Object) {
	if obj.rootPins > 0 {
		panic(fmt.Sprintf("heap: removing rooted %v", obj))
	}
	if _, ok := h.objects[obj.ID]; !ok {
		panic(fmt.Sprintf("heap: double remove of %v", obj))
	}
	myRegion := obj.region
	obj.in.each(func(parent *Object, n int32) {
		if parent == obj {
			return
		}
		parent.refs.drop(obj)
		if parent.Region != obj.Region {
			myRegion.remsetEntries -= int(n)
		}
	})
	obj.refs.each(func(child *Object, n int32) {
		if child == obj {
			return
		}
		child.in.drop(obj)
		if child.Region != obj.Region {
			child.region.remsetEntries -= int(n)
		}
	})
	myRegion.removeResident(obj)
	myRegion.pages.displace(obj, h.cfg.PageSize)
	delete(h.objects, obj.ID)

	// Recycle the struct: clear identity and graph state, keep the edge
	// stores' spill capacity, bump the stamp so stale pointers are
	// detectable, and chain it onto the freelist through next.
	obj.refs.reset()
	obj.in.reset()
	obj.ID = 0
	obj.mark = 0
	obj.Age = 0
	obj.region = nil
	obj.stamp++
	obj.next = h.objFree
	h.objFree = obj
	h.freeObjects++
}

// ActiveRegions returns all non-freed regions in ascending id order.
func (h *Heap) ActiveRegions() []*Region {
	out := make([]*Region, 0, len(h.activeIDs))
	for _, id := range h.activeIDs {
		out = append(out, h.regions[id])
	}
	return out
}

// sortObjectsByID orders objects by ascending identity hash (ids are
// unique, so the order is total).
func sortObjectsByID(objs []*Object) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].ID < objs[j].ID })
}
