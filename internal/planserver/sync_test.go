package planserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"polm2/internal/profilestore"
	"polm2/internal/rollout"
)

// newPeerServer builds a replication-enabled server: SelfID stamps its
// uploads, and peers (when any) are pulled on demand via SyncPeers.
func newPeerServer(t *testing.T, id string, peers ...string) (*Server, *httptest.Server, *profilestore.Store) {
	t.Helper()
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{SyncMerges: true, SelfID: id, Peers: peers})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, store
}

func fetchDigestJSON(t *testing.T, url string) syncDigest {
	t.Helper()
	resp, err := http.Get(url + "/v1/sync")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest fetch = %d, want 200", resp.StatusCode)
	}
	var d syncDigest
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d
}

// Upload stamping: every accepted upload strictly advances the instance's
// sequence, the client's own sequence header can push it further, and the
// assigned stamp is reported back — but only when the daemon has an id.
func TestUploadStampAdvances(t *testing.T) {
	_, ts, _ := newPeerServer(t, "daemon-0")

	resp := postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 5)))
	resp.Body.Close()
	if got := resp.Header.Get(EvidenceStampHeader); got != "1@daemon-0" {
		t.Fatalf("first upload stamp = %q, want 1@daemon-0", got)
	}

	resp = postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 6)))
	resp.Body.Close()
	if got := resp.Header.Get(EvidenceStampHeader); got != "2@daemon-0" {
		t.Fatalf("second upload stamp = %q, want 2@daemon-0", got)
	}

	// A client-supplied sequence ahead of the local one is adopted, and a
	// stale one cannot move the stamp backwards.
	if got := postWithSeq(t, ts.URL, "inst-1", "10"); got != "10@daemon-0" {
		t.Fatalf("client-seq upload stamp = %q, want 10@daemon-0", got)
	}
	if got := postWithSeq(t, ts.URL, "inst-1", "3"); got != "11@daemon-0" {
		t.Fatalf("stale client-seq upload stamp = %q, want 11@daemon-0", got)
	}
}

// postWithSeq uploads evidence carrying the client's own sequence header
// and returns the stamp the daemon assigned.
func postWithSeq(t *testing.T, url, instance, seq string) string {
	t.Helper()
	body, err := json.Marshal(evidence("Cassandra", "WI", site("A.a:1", 7)))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/v1/evidence", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(InstanceHeader, instance)
	req.Header.Set(EvidenceSeqHeader, seq)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seq upload = %d, want 200", resp.StatusCode)
	}
	return resp.Header.Get(EvidenceStampHeader)
}

// An unreplicated server (no SelfID) keeps its upload responses
// byte-identical to a pre-replication build: no stamp header.
func TestUploadNoStampWithoutSelfID(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp := postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 5)))
	resp.Body.Close()
	if got := resp.Header.Get(EvidenceStampHeader); got != "" {
		t.Fatalf("unreplicated upload carries stamp header %q, want none", got)
	}
	if _, ok := resp.Header["X-Polm2-Evidence-Stamp"]; ok {
		t.Fatal("unreplicated upload response includes the stamp header key")
	}
}

// The digest advertises every key and document with its stamp, sorted.
func TestSyncDigest(t *testing.T) {
	_, ts, _ := newPeerServer(t, "daemon-0")
	postEvidence(t, ts.URL, "inst-2", evidence("Cassandra", "WI", site("A.a:1", 5))).Body.Close()
	postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 6))).Body.Close()
	postEvidence(t, ts.URL, "inst-1", evidence("App0", "w", site("B.b:2", 7))).Body.Close()

	d := fetchDigestJSON(t, ts.URL)
	if d.Daemon != "daemon-0" {
		t.Fatalf("digest daemon = %q, want daemon-0", d.Daemon)
	}
	if len(d.Keys) != 2 {
		t.Fatalf("digest has %d keys, want 2: %+v", len(d.Keys), d.Keys)
	}
	// Keys sort by String(): App0/w before Cassandra/WI.
	if d.Keys[0].App != "App0" || d.Keys[1].App != "Cassandra" {
		t.Fatalf("digest key order = %s, %s", d.Keys[0].App, d.Keys[1].App)
	}
	cass := d.Keys[1]
	if len(cass.Docs) != 2 || cass.Docs[0].Instance != "inst-1" || cass.Docs[1].Instance != "inst-2" {
		t.Fatalf("Cassandra docs = %+v, want inst-1 then inst-2", cass.Docs)
	}
	if got := cass.Docs[0].Stamp.String(); got != "1@daemon-0" {
		t.Fatalf("inst-1 stamp = %s, want 1@daemon-0", got)
	}
}

// The single-document mode returns the stored profile and stamp; partial
// parameters are a client error and unknown documents are 404.
func TestSyncDocFetch(t *testing.T) {
	_, ts, _ := newPeerServer(t, "daemon-0")
	postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 5))).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/sync?app=Cassandra&workload=WI&instance=inst-1")
	if err != nil {
		t.Fatal(err)
	}
	var doc syncDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Instance != "inst-1" || doc.Stamp.String() != "1@daemon-0" || doc.Profile == nil {
		t.Fatalf("sync doc = %+v", doc)
	}
	if doc.Profile.App != "Cassandra" || len(doc.Profile.Sites) != 1 {
		t.Fatalf("sync doc profile = %+v", doc.Profile)
	}

	resp, err = http.Get(ts.URL + "/v1/sync?app=Cassandra&workload=WI")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial params = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/sync?app=Cassandra&workload=WI&instance=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown instance = %d, want 404", resp.StatusCode)
	}
}

// Two daemons, one upload each, one anti-entropy pass each way: both end
// serving the identical merged plan, the pulled stamps are adopted
// verbatim, and a repeat pass pulls nothing.
func TestSyncPeersConverge(t *testing.T) {
	// A is built against a placeholder peer (B's URL does not exist yet);
	// the pair is closed once both listeners are up.
	srvA, tsA, _ := newPeerServer(t, "daemon-0", "http://placeholder.invalid")
	srvB, tsB, _ := newPeerServer(t, "daemon-1", tsA.URL)
	srvA.peers = []string{tsB.URL}

	postEvidence(t, tsA.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 5))).Body.Close()
	postEvidence(t, tsB.URL, "inst-2", evidence("Cassandra", "WI", site("B.b:2", 9))).Body.Close()

	if n := srvB.SyncPeers(); n != 1 {
		t.Fatalf("B first pass pulled %d, want 1", n)
	}
	if n := srvA.SyncPeers(); n != 1 {
		t.Fatalf("A first pass pulled %d, want 1", n)
	}
	srvA.Flush()
	srvB.Flush()

	ea := srvA.PlanETag("Cassandra", "WI")
	eb := srvB.PlanETag("Cassandra", "WI")
	if ea == "" || ea != eb {
		t.Fatalf("plans diverge after sync: A=%s B=%s", ea, eb)
	}

	// B holds A's document under A's stamp, untouched by the pull.
	d := fetchDigestJSON(t, tsB.URL)
	if len(d.Keys) != 1 || len(d.Keys[0].Docs) != 2 {
		t.Fatalf("B digest after sync = %+v", d.Keys)
	}
	if got := d.Keys[0].Docs[0].Stamp.String(); got != "1@daemon-0" {
		t.Fatalf("B's copy of inst-1 stamped %s, want 1@daemon-0", got)
	}

	// Fixpoint: nothing left to pull, divergence gauge at zero.
	if n := srvB.SyncPeers(); n != 0 {
		t.Fatalf("B second pass pulled %d, want 0", n)
	}
	if v := srvB.Metrics().Gauge("peer_divergence_gauge").Value(); v != 0 {
		t.Fatalf("divergence gauge = %d, want 0", v)
	}
	if v := srvB.Metrics().Counter("peer_sync_total").Value(); v != 2 {
		t.Fatalf("peer_sync_total = %d, want 2", v)
	}
	if v := srvB.Metrics().Counter("peer_docs_applied_total").Value(); v != 1 {
		t.Fatalf("peer_docs_applied_total = %d, want 1", v)
	}
}

// A conflicting instance (same id written on both daemons) resolves to the
// stamp-order winner on both sides — last write wins, deterministically.
func TestSyncPeersLastWriteWins(t *testing.T) {
	srvA, tsA, _ := newPeerServer(t, "daemon-0", "http://placeholder.invalid")
	srvB, tsB, _ := newPeerServer(t, "daemon-1", tsA.URL)
	srvA.peers = []string{tsB.URL}

	// inst-1 writes once to A (seq 1), twice to B (seq 2 wins).
	postEvidence(t, tsA.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 5))).Body.Close()
	postEvidence(t, tsB.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 6))).Body.Close()
	postEvidence(t, tsB.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 7))).Body.Close()

	if n := srvB.SyncPeers(); n != 0 {
		t.Fatalf("B pulled %d, want 0 (its seq 2 beats A's seq 1)", n)
	}
	if n := srvA.SyncPeers(); n != 1 {
		t.Fatalf("A pulled %d, want 1 (B's seq 2 beats its seq 1)", n)
	}
	srvA.Flush()
	srvB.Flush()
	if ea, eb := srvA.PlanETag("Cassandra", "WI"), srvB.PlanETag("Cassandra", "WI"); ea != eb || ea == "" {
		t.Fatalf("winner plans diverge: A=%s B=%s", ea, eb)
	}
	d := fetchDigestJSON(t, tsA.URL)
	if got := d.Keys[0].Docs[0].Stamp.String(); got != "2@daemon-1" {
		t.Fatalf("A's winner stamp = %s, want 2@daemon-1", got)
	}
}

// A freshly constructed server over an existing store advertises the
// persisted evidence without having served a single request — the digest
// path performs the cold-restart store scan itself.
func TestSyncDigestColdRestart(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := New(store, Options{SyncMerges: true, SelfID: "daemon-0"})
	ts := httptest.NewServer(first)
	postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 5))).Body.Close()
	ts.Close()

	second := New(store, Options{SyncMerges: true, SelfID: "daemon-0"})
	ts2 := httptest.NewServer(second)
	defer ts2.Close()
	d := fetchDigestJSON(t, ts2.URL)
	if len(d.Keys) != 1 || len(d.Keys[0].Docs) != 1 {
		t.Fatalf("cold-restart digest = %+v, want the persisted key", d.Keys)
	}
	if got := d.Keys[0].Docs[0].Stamp.String(); got != "1@daemon-0" {
		t.Fatalf("cold-restart stamp = %s, want 1@daemon-0 (persisted, not re-derived)", got)
	}
}

// Legacy (unstamped) documents appear in the digest with the zero stamp
// and are never pulled by a peer.
func TestSyncSkipsLegacyDocs(t *testing.T) {
	srvA, tsA, storeA := newPeerServer(t, "daemon-0")
	_ = srvA
	p := evidence("Cassandra", "WI", site("A.a:1", 5))
	if err := storeA.PutEvidence("inst-legacy", p); err != nil {
		t.Fatal(err)
	}

	srvB, _, _ := newPeerServer(t, "daemon-1", tsA.URL)
	if n := srvB.SyncPeers(); n != 0 {
		t.Fatalf("B pulled %d legacy docs, want 0", n)
	}
	if v := srvB.Metrics().Counter("peer_sync_error_total").Value(); v != 0 {
		t.Fatalf("legacy skip counted %d sync errors, want 0", v)
	}
}

// An unreachable peer costs one sync error and nothing else; the pass as
// a whole still completes.
func TestSyncPeerUnreachable(t *testing.T) {
	srv, _, _ := newPeerServer(t, "daemon-1", "http://127.0.0.1:1")
	if n := srv.SyncPeers(); n != 0 {
		t.Fatalf("unreachable peer pulled %d, want 0", n)
	}
	if v := srv.Metrics().Counter("peer_sync_error_total").Value(); v != 1 {
		t.Fatalf("peer_sync_error_total = %d, want 1", v)
	}
	if v := srv.Metrics().Counter("peer_sync_total").Value(); v != 0 {
		t.Fatalf("peer_sync_total = %d, want 0", v)
	}
}

// A peer serving garbage digests is an error, and a peer serving a doc
// that fails upload-grade validation is rejected without being applied.
func TestSyncRejectsInvalidPeerDoc(t *testing.T) {
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.RawQuery == "" {
			// Digest advertising one stamped doc.
			json.NewEncoder(w).Encode(syncDigest{Daemon: "evil", Keys: []syncKeyDigest{{
				App: "Cassandra", Workload: "WI",
				Docs: []syncDocStamp{{Instance: "inst-1", Stamp: profilestore.Stamp{Seq: 9, Origin: "evil"}}},
			}}})
			return
		}
		// The doc itself claims a different key than advertised.
		json.NewEncoder(w).Encode(syncDoc{
			Instance: "inst-1",
			Stamp:    profilestore.Stamp{Seq: 9, Origin: "evil"},
			Profile:  evidence("Other", "x", site("A.a:1", 5)),
		})
	}))
	defer evil.Close()

	srv, _, _ := newPeerServer(t, "daemon-1", evil.URL)
	if n := srv.SyncPeers(); n != 0 {
		t.Fatalf("invalid peer doc applied %d, want 0", n)
	}
	if v := srv.Metrics().Counter("peer_sync_error_total").Value(); v != 1 {
		t.Fatalf("peer_sync_error_total = %d, want 1", v)
	}
	if v := srv.Metrics().Counter("peer_docs_applied_total").Value(); v != 0 {
		t.Fatalf("peer_docs_applied_total = %d, want 0", v)
	}
}

// A peer's quarantine set unions in during sync: a staged local candidate
// matching a quarantined ETag is dropped with a peer_quarantine transition,
// the local rollback counter stays untouched (the decision was counted on
// the peer), and a stale repeat of the same digest changes nothing.
func TestSyncQuarantinePropagates(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rollout.Config{CanaryFraction: 0.5, MinReports: 1, RegressionPct: 10, Seed: 42}
	quarantined := ""
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(syncDigest{Daemon: "daemon-0", Keys: []syncKeyDigest{{
			App: "Cassandra", Workload: "WI", Quarantined: []string{quarantined},
		}}})
	}))
	defer peer.Close()

	srv := New(store, Options{SyncMerges: true, Rollout: &cfg, SelfID: "daemon-1", Peers: []string{peer.URL}})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Adopt a stable plan, then stage a candidate canary.
	postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI", site("A.a:1", 5))).Body.Close()
	postEvidence(t, ts.URL, "inst-2", evidence("Cassandra", "WI", site("B.b:2", 9))).Body.Close()
	canary, outside := splitCohort(cfg, "inst-1", "inst-2")
	candidate := planETagFor(t, ts.URL, canary)
	stable := planETagFor(t, ts.URL, outside)
	if candidate == stable {
		t.Fatalf("no candidate staged: canary and outside both see %s", stable)
	}

	// The peer announces the candidate was rolled back elsewhere.
	quarantined = candidate
	srv.SyncPeers()

	snap, ok := srv.RolloutSnapshot("Cassandra", "WI")
	if !ok {
		t.Fatal("no rollout snapshot after sync")
	}
	if snap.State != rollout.StateRolledBack.String() || snap.CandidateETag != "" {
		t.Fatalf("after peer quarantine: state=%v candidate=%q, want rolled_back with no candidate", snap.State, snap.CandidateETag)
	}
	found := false
	for _, q := range snap.Quarantined {
		if q == candidate {
			found = true
		}
	}
	if !found {
		t.Fatalf("candidate %s missing from quarantine set %v", candidate, snap.Quarantined)
	}
	// The cohort member is back on the stable plan.
	if got := planETagFor(t, ts.URL, canary); got != stable {
		t.Fatalf("cohort member still sees %s after quarantine, want stable %s", got, stable)
	}
	// The rollback was decided (and counted) on the peer, not here.
	if v := srv.Metrics().Counter("rollout_rollbacks_total").Value(); v != 0 {
		t.Fatalf("rollout_rollbacks_total = %d, want 0", v)
	}
	trs := srv.RolloutTransitions()
	last := trs[len(trs)-1]
	if last.Kind != "peer_quarantine" || last.ETag != candidate {
		t.Fatalf("last transition = %+v, want peer_quarantine of %s", last, candidate)
	}

	// Idempotent: the same stale digest neither transitions nor resurrects.
	before := len(trs)
	srv.SyncPeers()
	if got := len(srv.RolloutTransitions()); got != before {
		t.Fatalf("stale quarantine digest recorded %d new transitions", got-before)
	}
}

// Peer metrics exist only on a server configured with peers; an
// unreplicated server's exposition stays byte-identical.
func TestPeerMetricsGated(t *testing.T) {
	names := []string{"peer_sync_total", "peer_sync_error_total", "peer_docs_applied_total", "peer_divergence_gauge"}
	plain, _, _ := newTestServer(t)
	out := metricsText(t, plain)
	for _, name := range names {
		if hasMetricLine(out, name) {
			t.Fatalf("unreplicated server exposes %s", name)
		}
	}
	replicated, _, _ := newPeerServer(t, "daemon-0", "http://127.0.0.1:1")
	out = metricsText(t, replicated)
	for _, name := range names {
		if !hasMetricLine(out, name) {
			t.Fatalf("replicated server missing %s in exposition:\n%s", name, out)
		}
	}
}

func metricsText(t *testing.T, srv *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metricsz", nil)
	srv.ServeHTTP(rec, req)
	return rec.Body.String()
}

func hasMetricLine(out, name string) bool {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, name) {
			return true
		}
	}
	return false
}
