package planserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"

	"polm2/internal/analyzer"
	"polm2/internal/metrics"
	"polm2/internal/profilestore"
	"polm2/internal/trace"
)

// This file is the replication half of the daemon (DESIGN.md §15):
// pull-based anti-entropy between polm2d peers. Every daemon exposes
// GET /v1/sync in two modes — a per-key digest of (instance, stamp) pairs
// plus the rollout quarantine set, and a single-document fetch — and
// periodically pulls each configured peer's digest, fetching exactly the
// documents whose stamp beats its own. Last-write-wins per (key, instance)
// under the profilestore.Stamp total order makes the exchange commutative
// and idempotent: however partitions interleave the pulls, both sides end
// holding the per-instance winners, and MergeProfiles' own commutativity
// turns identical winner sets into identical plans.
//
// Pulled documents enter through the same coalescing merge pipeline as
// uploads (dirty bump + ensureWorkerLocked), so replication inherits the
// pipeline's batching, publication and rollout semantics instead of
// growing a second write path. The rollout quarantine set replicates as a
// grow-only union — a rollback decision anywhere propagates everywhere
// and no stale peer can resurrect a quarantined plan.
//
// Everything here is gated on configuration: without Peers the poller
// never runs and no peer metrics are registered; without SelfID no stamp
// header is exposed. A daemon with replication off behaves byte-for-byte
// like a pre-replication build. The digest endpoint itself is always
// registered — answering a peer's read costs nothing and cannot diverge.

// EvidenceSeqHeader carries the uploader's own upload sequence number on
// POST /v1/evidence. The daemon folds it into the assigned stamp with
// max(clientSeq, previous+1), so a client-side counter survives daemon
// failover: an upload replayed to a second daemon cannot be beaten by an
// older document the first daemon already replicated out.
const EvidenceSeqHeader = "X-Polm2-Evidence-Seq"

// EvidenceStampHeader reports the stamp the daemon assigned to an accepted
// upload, as seq@origin. Only set when the daemon has a SelfID (replication
// on), keeping unreplicated responses byte-identical.
const EvidenceStampHeader = "X-Polm2-Evidence-Stamp"

// syncDigest is the GET /v1/sync response: who is answering and, per key,
// every evidence document's stamp plus the quarantined rollout ETags.
type syncDigest struct {
	Daemon string          `json:"daemon"`
	Keys   []syncKeyDigest `json:"keys"`
}

type syncKeyDigest struct {
	App         string         `json:"app"`
	Workload    string         `json:"workload"`
	Docs        []syncDocStamp `json:"docs"`
	Quarantined []string       `json:"quarantined,omitempty"`
}

type syncDocStamp struct {
	Instance string             `json:"instance"`
	Stamp    profilestore.Stamp `json:"stamp"`
}

// syncDoc is the single-document response to
// GET /v1/sync?app=&workload=&instance=.
type syncDoc struct {
	Instance string             `json:"instance"`
	Stamp    profilestore.Stamp `json:"stamp"`
	Profile  *analyzer.Profile  `json:"profile"`
}

// SelfID reports the daemon's replication id ("" with replication off).
func (s *Server) SelfID() string { return s.selfID }

// PlanETag reports the cached published plan's ETag for one key — the
// stable plan in rollout mode — without touching the store or the merge
// pipeline. "" when the key has no cached plan. Harnesses compare daemons
// with it; serving paths never call it.
func (s *Server) PlanETag(app, workload string) string {
	s.shardMu.RLock()
	sh := s.shards[profilestore.Key{App: app, Workload: workload}]
	s.shardMu.RUnlock()
	if sh == nil {
		return ""
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.plan == nil {
		return ""
	}
	return sh.plan.etag
}

// ensureSyncScan folds every key the store holds into the shard caches,
// once per daemon lifetime: a freshly restarted daemon must advertise
// evidence it persisted before the restart, not just keys it has served
// since boot.
func (s *Server) ensureSyncScan() error {
	s.syncScanMu.Lock()
	defer s.syncScanMu.Unlock()
	if s.syncScanned {
		return nil
	}
	all, err := s.store.EvidenceAll()
	if err != nil {
		return err
	}
	for k := range all {
		sh := s.shard(k)
		sh.mu.Lock()
		_, err := s.loadEvidenceLocked(sh)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	s.syncScanned = true
	return nil
}

// handleSync serves both sync modes. With no query parameters: the full
// digest. With app, workload and instance: that one evidence document,
// 404 when absent.
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.RawQuery
	app := queryParam(raw, "app")
	workload := queryParam(raw, "workload")
	instance := queryParam(raw, "instance")
	if app == "" && workload == "" && instance == "" {
		s.serveSyncDigest(w)
		return
	}
	if app == "" || workload == "" || instance == "" {
		http.Error(w, "planserver: sync document fetch requires app, workload and instance", http.StatusBadRequest)
		return
	}
	sh := s.shard(profilestore.Key{App: app, Workload: workload})
	sh.mu.Lock()
	ev, err := s.loadEvidenceLocked(sh)
	var p *analyzer.Profile
	var st profilestore.Stamp
	if err == nil {
		p, st = ev[instance], sh.stamps[instance]
	}
	sh.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if p == nil {
		s.dropIfEmpty(sh)
		http.Error(w, fmt.Sprintf("planserver: no evidence for %s/%s from %s", app, workload, instance), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(syncDoc{Instance: instance, Stamp: st, Profile: p})
}

func (s *Server) serveSyncDigest(w http.ResponseWriter) {
	if err := s.ensureSyncScan(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.shardMu.RLock()
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.shardMu.RUnlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].key.String() < shards[j].key.String() })
	d := syncDigest{Daemon: s.selfID, Keys: []syncKeyDigest{}}
	for _, sh := range shards {
		sh.mu.Lock()
		kd := syncKeyDigest{App: sh.key.App, Workload: sh.key.Workload}
		for inst := range sh.evidence {
			kd.Docs = append(kd.Docs, syncDocStamp{Instance: inst, Stamp: sh.stamps[inst]})
		}
		sort.Slice(kd.Docs, func(i, j int) bool { return kd.Docs[i].Instance < kd.Docs[j].Instance })
		if s.ro != nil && sh.roll != nil {
			kd.Quarantined = sh.roll.Snapshot().Quarantined
		}
		sh.mu.Unlock()
		if len(kd.Docs) == 0 && len(kd.Quarantined) == 0 {
			continue
		}
		d.Keys = append(d.Keys, kd)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(d)
}

// SyncPeers runs one anti-entropy pass: pull every peer's digest, fetch
// and apply each document whose stamp beats the local one, and union the
// peers' quarantine sets. Returns the number of documents applied. A peer
// that cannot be reached (or answers garbage) counts one sync error and
// is skipped — anti-entropy is retried forever, so a missed pass costs
// only staleness. Safe to call concurrently with serving; a no-peer
// server returns 0 immediately.
func (s *Server) SyncPeers() int {
	if len(s.peers) == 0 {
		return 0
	}
	total := 0
	for _, peer := range s.peers {
		at := s.opts.Now()
		pulled, err := s.syncPeer(peer)
		total += pulled
		outcome := "ok"
		if err != nil {
			outcome = "error"
			s.peerSyncErrs.Inc()
		} else {
			s.peerSyncs.Inc()
		}
		if s.opts.Tracer.Enabled() {
			s.opts.Tracer.EventAt(at, "planserver", "peer_sync",
				trace.String("peer", peer),
				trace.String("outcome", outcome),
				trace.Int64("pulled", int64(pulled)))
		}
	}
	// The divergence gauge is how far behind the last pass found us: the
	// number of documents we had to pull. Zero at fixpoint.
	s.peerDivergence.Set(int64(total))
	return total
}

func (s *Server) syncPeer(peer string) (pulled int, err error) {
	digest, err := s.fetchDigest(peer)
	if err != nil {
		return 0, err
	}
	for _, kd := range digest.Keys {
		k := profilestore.Key{App: kd.App, Workload: kd.Workload}
		if k.App == "" || k.Workload == "" {
			return pulled, fmt.Errorf("planserver: peer digest names a key without labels")
		}
		if s.ro != nil && len(kd.Quarantined) > 0 {
			if err := s.applyPeerQuarantine(k, kd.Quarantined); err != nil {
				return pulled, err
			}
		}
		for _, ds := range kd.Docs {
			if ds.Stamp.IsZero() {
				continue // legacy (unstamped) documents never replicate
			}
			if !s.needDoc(k, ds) {
				continue
			}
			doc, err := s.fetchDoc(peer, k, ds.Instance)
			if err != nil {
				return pulled, err
			}
			if doc == nil {
				continue // the document vanished on the peer between digest and fetch
			}
			n, err := s.applySyncDoc(k, doc)
			if err != nil {
				return pulled, err
			}
			pulled += n
		}
	}
	return pulled, nil
}

// needDoc reports whether the advertised stamp strictly beats the local
// document's — the pull predicate. Equal stamps identify the same write
// (stamps are unique per write: origin disambiguates daemons, and each
// daemon's sequence strictly advances), so only strictly-greater pulls.
func (s *Server) needDoc(k profilestore.Key, ds syncDocStamp) bool {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, err := s.loadEvidenceLocked(sh); err != nil {
		return false // the apply path would fail too; skip this pass
	}
	return sh.stamps[ds.Instance].Less(ds.Stamp)
}

func (s *Server) fetchDigest(peer string) (*syncDigest, error) {
	resp, err := s.peerClient.Get(peer + "/v1/sync")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
		return nil, fmt.Errorf("planserver: peer digest status %d from %s", resp.StatusCode, peer)
	}
	var d syncDigest
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("planserver: decoding peer digest from %s: %w", peer, err)
	}
	return &d, nil
}

// fetchDoc pulls one evidence document and validates it exactly as the
// upload path would: a peer is trusted no further than a fleet instance.
// A 404 returns (nil, nil) — the document moved on.
func (s *Server) fetchDoc(peer string, k profilestore.Key, instance string) (*syncDoc, error) {
	u := peer + "/v1/sync?app=" + url.QueryEscape(k.App) +
		"&workload=" + url.QueryEscape(k.Workload) +
		"&instance=" + url.QueryEscape(instance)
	resp, err := s.peerClient.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
		return nil, fmt.Errorf("planserver: peer document status %d from %s", resp.StatusCode, peer)
	}
	var doc syncDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("planserver: decoding peer document from %s: %w", peer, err)
	}
	switch {
	case doc.Instance != instance || doc.Instance == "" || len(doc.Instance) > 128:
		return nil, fmt.Errorf("planserver: peer document instance mismatch from %s", peer)
	case doc.Stamp.IsZero():
		return nil, fmt.Errorf("planserver: peer document carries no stamp from %s", peer)
	case doc.Profile == nil || doc.Profile.App != k.App || doc.Profile.Workload != k.Workload:
		return nil, fmt.Errorf("planserver: peer document key mismatch from %s", peer)
	}
	if err := doc.Profile.Validate(); err != nil {
		return nil, fmt.Errorf("planserver: invalid peer document from %s: %w", peer, err)
	}
	if err := checkEvidence(doc.Profile); err != nil {
		return nil, fmt.Errorf("planserver: inconsistent peer document from %s: %w", peer, err)
	}
	return &doc, nil
}

// applySyncDoc installs a pulled document through the normal merge
// pipeline. The stamp comparison re-runs under the shard lock — a direct
// upload or another pull may have advanced the local document since the
// digest — and the remote stamp is adopted verbatim: replication moves
// documents, it never re-versions them.
func (s *Server) applySyncDoc(k profilestore.Key, doc *syncDoc) (int, error) {
	sh := s.shard(k)
	sh.mu.Lock()
	ev, err := s.loadEvidenceLocked(sh)
	if err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	if !sh.stamps[doc.Instance].Less(doc.Stamp) {
		sh.mu.Unlock()
		return 0, nil
	}
	if err := s.store.PutEvidenceStamped(doc.Instance, doc.Stamp, doc.Profile); err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	ev[doc.Instance] = doc.Profile
	sh.stamps[doc.Instance] = doc.Stamp
	sh.dirty++
	if sh.instGauge == nil {
		sh.instGauge = s.reg.Gauge(metrics.LabelName("evidence_instances",
			metrics.Label{Key: "app", Value: k.App},
			metrics.Label{Key: "workload", Value: k.Workload}))
	}
	sh.instGauge.Set(int64(len(ev)))
	launch := s.ensureWorkerLocked(sh)
	sh.mu.Unlock()
	s.peerDocsApplied.Inc()
	if launch != nil {
		launch()
	}
	return 1, nil
}

// applyPeerQuarantine unions a peer's quarantined ETags into the key's
// tracker. The union is monotone, so replication can only ever add
// rollback knowledge — a stale peer cannot resurrect a quarantined plan.
// Dropping a locally staged candidate records a "peer_quarantine"
// transition (the rollback was decided — and counted — on the peer).
func (s *Server) applyPeerQuarantine(k profilestore.Key, etags []string) error {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := s.restoreRolloutLocked(sh); err != nil {
		return err
	}
	from := sh.roll.State()
	cand := sh.roll.CandidateETag()
	added, dropped := sh.roll.AddQuarantined(etags)
	if added == 0 && !dropped {
		return nil
	}
	if dropped {
		sh.cand, sh.candProf = nil, nil
	} else {
		cand = ""
	}
	if err := s.persistRolloutLocked(sh); err != nil {
		return err
	}
	s.recordTransition(sh, RolloutTransition{
		Kind: "peer_quarantine", From: from, To: sh.roll.State(), ETag: cand,
	}, trace.Int64("added", int64(added)))
	return nil
}
