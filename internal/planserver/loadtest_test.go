package planserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"polm2/internal/analyzer"
	"polm2/internal/profilestore"
)

// TestFleetLoad drives 256 concurrent clients against the daemon: every
// client uploads its own profiling evidence for the same (app, workload)
// — twice, the second a byte-identical replay as a retry after a lost
// response would send — and polls the plan with conditional GETs while
// the merges land. The merged fleet plan must account for every
// instance's evidence exactly once, whatever the arrival order and
// despite the replays — the end-to-end form of MergeProfiles'
// order-independence plus the daemon's replace-per-instance model — and
// the run doubles as the data race stress for the cache, single-flight
// and store paths under -race.
func TestFleetLoad(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	transport := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	const clients = 256
	sharedTrace := "Fleet.serve:1;Db.put:5"
	var wantShared uint64
	for i := 0; i < clients; i++ {
		wantShared += uint64(sharedAllocs(i))
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := runFleetClient(client, ts.URL, i, sharedTrace); err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	// The daemon runs the async coalescing pipeline here (the default):
	// uploads return before their merge lands, so drain the pending
	// batches before asserting on the converged plan.
	srv.Flush()

	// The converged plan accounts for every client exactly once.
	resp, err := client.Get(ts.URL + "/v1/plan?app=Fleet&workload=steady")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("final fetch = %d, %v", resp.StatusCode, err)
	}
	var p analyzer.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	var gotShared uint64
	perClient := 0
	for _, s := range p.Sites {
		if s.Trace == sharedTrace {
			gotShared = s.Allocated
		} else {
			perClient++
		}
	}
	if gotShared != wantShared {
		t.Fatalf("shared site evidence = %d, want %d (each client counted once)", gotShared, wantShared)
	}
	if perClient != clients {
		t.Fatalf("per-client sites = %d, want %d", perClient, clients)
	}

	// The stored (durable) plan matches the served one.
	stored, err := store.Get("Fleet", "steady")
	if err != nil {
		t.Fatal(err)
	}
	if len(stored.Sites) != len(p.Sites) {
		t.Fatalf("stored plan has %d sites, served %d", len(stored.Sites), len(p.Sites))
	}

	if got := srv.Metrics().Counter("evidence_upload_total").Value(); got != 2*clients {
		t.Fatalf("evidence_upload_total = %d, want %d (each client uploads twice)", got, 2*clients)
	}
	// Merges coalesce: every upload is covered, but concurrent uploads
	// share batches, so the daemon performed no more merges than uploads
	// (and the coalescing counter accounts for the difference exactly).
	mergesDone := srv.Metrics().Counter("evidence_merge_total").Value()
	if mergesDone == 0 || mergesDone > 2*clients {
		t.Fatalf("evidence_merge_total = %d, want within [1, %d]", mergesDone, 2*clients)
	}
	if got := srv.Metrics().Counter("evidence_coalesced_total").Value(); got != 2*clients-mergesDone {
		t.Fatalf("evidence_coalesced_total = %d, want uploads-merges = %d", got, 2*clients-mergesDone)
	}
	if got := srv.Metrics().Counter("evidence_reject_total").Value(); got != 0 {
		t.Fatalf("evidence_reject_total = %d, want 0", got)
	}
}

// sharedAllocs is client i's contribution to the shared allocation site.
func sharedAllocs(i int) int { return 64 + i%17 }

// runFleetClient is one simulated instance: poll, upload evidence, poll
// again with the merged ETag.
func runFleetClient(client *http.Client, baseURL string, i int, sharedTrace string) error {
	// Cold poll; 404 (no plan yet) and 200 are both fine mid-convergence.
	resp, err := client.Get(baseURL + "/v1/plan?app=Fleet&workload=steady")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("cold fetch status %d", resp.StatusCode)
	}

	n := uint64(sharedAllocs(i))
	up := &analyzer.Profile{App: "Fleet", Workload: "steady", Sites: []analyzer.SiteStat{
		{Trace: sharedTrace, Allocated: n, Buckets: []uint64{n / 4, n - n/4}},
		{Trace: fmt.Sprintf("Fleet.serve:1;Worker.tick:%d", 100+i), Allocated: 16, Buckets: []uint64{2, 14}},
	}}
	body, err := json.Marshal(up)
	if err != nil {
		return err
	}
	// Upload twice under the same instance id: the replay stands in for a
	// retry after a lost response and must replace, not double-count.
	var etag string
	for round := 0; round < 2; round++ {
		req, err := http.NewRequest("POST", baseURL+"/v1/evidence", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(InstanceHeader, fmt.Sprintf("inst-%d", i))
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("upload round %d status %d: %s", round, resp.StatusCode, msg)
		}
		etag = resp.Header.Get("ETag")
		if etag == "" {
			return fmt.Errorf("upload response missing ETag")
		}
	}

	// Conditional poll: either our merged version is still current (304)
	// or other instances merged past it (200 with a newer ETag).
	req, err := http.NewRequest("GET", baseURL+"/v1/plan?app=Fleet&workload=steady", nil)
	if err != nil {
		return err
	}
	req.Header.Set("If-None-Match", etag)
	resp, err = client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("conditional fetch status %d", resp.StatusCode)
	}
	return nil
}
