// Package planserver implements the fleet-facing side of POLM2's
// deployment model (§3.5) as a network service: a daemon fronts a
// profilestore.Store and serves versioned instrumentation plans to many
// concurrent production instances, while accepting their profiling
// evidence and folding it into one fleet-wide plan per (application,
// workload) with analyzer.MergeProfiles.
//
// The wire format is the profile JSON analyzer.Profile.Save writes; plan
// versions are content-addressed ETags (SHA-256 of the response body), so
// clients poll cheaply with If-None-Match and a fleet of N instances
// converges on one plan without the daemon tracking any per-client state.
//
// Endpoints:
//
//	GET  /v1/plan?app=A&workload=W   plan fetch; conditional via ETag
//	POST /v1/evidence                evidence upload (X-Polm2-Instance
//	                                 header required); responds with the
//	                                 merged fleet plan (and its ETag)
//	GET  /healthz                    liveness
//	GET  /metricsz                   metric exposition (internal/metrics)
//	GET  /tracez                     trace ring, newest window (internal/trace)
//
// Aggregation is last-write-wins per instance: the daemon keeps each
// instance's latest evidence (persisted under <store>/evidence) and
// recomputes the fleet plan as the merge of those latest documents on
// every upload. Online re-profiles upload *cumulative* evidence, so
// replacing — never adding to — an instance's earlier contribution is
// what makes n re-profiles count once, and makes retried uploads
// idempotent.
//
// Plans are cached in memory per key with single-flight loading, and the
// cache entry is invalidated (and re-primed) on every merge.
package planserver

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/jvm"
	"polm2/internal/metrics"
	"polm2/internal/profilestore"
	"polm2/internal/trace"
)

// Options tunes the server. The zero value is ready.
type Options struct {
	// Merge tunes the analyzer pass re-run over merged fleet evidence
	// (estimators, thresholds, ConfidenceFloor). Labels are taken from
	// the uploads, not from here.
	Merge analyzer.Options
	// MaxBodyBytes caps an evidence upload. Default 32 MiB.
	MaxBodyBytes int64
	// Tracer, when non-nil, receives one "planserver" event per plan
	// fetch and evidence upload, stamped via Now. Its ring (when it has
	// one) backs GET /tracez. Nil traces nothing at zero cost.
	Tracer *trace.Tracer
	// Now supplies request timestamps for traces and latency histograms.
	// Default: wall-clock elapsed since New. Tests inject a deterministic
	// clock to keep traces byte-stable.
	Now func() time.Duration
}

// Server is the plan-distribution HTTP service. It is an http.Handler.
type Server struct {
	store *profilestore.Store
	opts  Options
	mux   *http.ServeMux

	reg          *metrics.Registry
	fetches      *metrics.Counter // every GET /v1/plan
	notModified  *metrics.Counter // ... answered 304
	misses       *metrics.Counter // ... answered 404
	loads        *metrics.Counter // store loads (cache+single-flight misses)
	merges       *metrics.Counter // accepted evidence uploads
	rejected     *metrics.Counter // rejected evidence uploads
	storeErrs    *metrics.Counter // store I/O failures surfaced as 500s
	fetchLatency *metrics.LatencyHistogram // GET /v1/plan handling time
	mergeLatency *metrics.LatencyHistogram // POST /v1/evidence handling time

	// mergeMu serializes the read-merge-write cycle per store; merging is
	// commutative, so serialization only pins the store's consistency,
	// never the result. It also guards evidence.
	mergeMu sync.Mutex
	// evidence is the write-through image of the store's per-instance
	// evidence: each instance's *latest* upload, keyed by (app, workload)
	// then instance id. The fleet plan is recomputed from this map on
	// every upload, so a re-upload (a cumulative online re-profile, or a
	// client retry after a lost response) replaces its instance's prior
	// contribution instead of double-counting it.
	evidence map[profilestore.Key]map[string]*analyzer.Profile

	mu     sync.Mutex
	cache  map[profilestore.Key]*cachedPlan
	flight map[profilestore.Key]*flight
	// gen counts installs per key; a load flight that began before a
	// merge installed a newer plan must not overwrite it (see loadPlan).
	gen map[profilestore.Key]uint64

	// testHookAfterLoad, when non-nil, runs between a flight's store read
	// and its cache write — test-only, to interleave a merge install.
	testHookAfterLoad func()
}

// cachedPlan is one encoded, content-addressed plan.
type cachedPlan struct {
	etag string
	body []byte
}

// flight is one in-progress store load other fetchers wait on.
type flight struct {
	done chan struct{}
	plan *cachedPlan
	err  error
}

// New builds a server fronting the store.
func New(store *profilestore.Store, opts Options) *Server {
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	if opts.Now == nil {
		start := time.Now()
		opts.Now = func() time.Duration { return time.Since(start) }
	}
	reg := metrics.NewRegistry()
	s := &Server{
		store:        store,
		opts:         opts,
		mux:          http.NewServeMux(),
		reg:          reg,
		fetches:      reg.Counter("plan_fetch_total"),
		notModified:  reg.Counter("plan_not_modified_total"),
		misses:       reg.Counter("plan_miss_total"),
		loads:        reg.Counter("plan_load_total"),
		merges:       reg.Counter("evidence_merge_total"),
		rejected:     reg.Counter("evidence_reject_total"),
		storeErrs:    reg.Counter("store_error_total"),
		fetchLatency: reg.Histogram("plan_fetch_latency", nil),
		mergeLatency: reg.Histogram("evidence_merge_latency", nil),
		evidence:     make(map[profilestore.Key]map[string]*analyzer.Profile),
		cache:        make(map[profilestore.Key]*cachedPlan),
		flight:       make(map[profilestore.Key]*flight),
		gen:          make(map[profilestore.Key]uint64),
	}
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/evidence", s.handleEvidence)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /tracez", s.handleTracez)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics returns the server's counter registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// encodePlan renders a profile to its canonical wire body and ETag.
func encodePlan(p *analyzer.Profile) (*cachedPlan, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("planserver: encoding plan: %w", err)
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	return &cachedPlan{etag: fmt.Sprintf("%q", fmt.Sprintf("%x", sum)), body: body}, nil
}

// loadPlan returns the cached plan for key, loading it from the store at
// most once however many fetchers arrive concurrently (single-flight).
func (s *Server) loadPlan(k profilestore.Key) (*cachedPlan, error) {
	s.mu.Lock()
	if c := s.cache[k]; c != nil {
		s.mu.Unlock()
		return c, nil
	}
	if f := s.flight[k]; f != nil {
		s.mu.Unlock()
		<-f.done
		return f.plan, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flight[k] = f
	start := s.gen[k]
	s.mu.Unlock()

	s.loads.Inc()
	p, err := s.store.Get(k.App, k.Workload)
	var c *cachedPlan
	if err == nil {
		c, err = encodePlan(p)
	}
	if s.testHookAfterLoad != nil {
		s.testHookAfterLoad()
	}

	s.mu.Lock()
	delete(s.flight, k)
	if s.gen[k] != start {
		// A merge installed a newer plan while this flight was reading
		// the store; writing the pre-merge read back would serve a stale
		// plan (and stale ETag) until the next merge. Serve the installed
		// plan instead.
		c, err = s.cache[k], nil
	} else if err == nil {
		s.cache[k] = c
	}
	s.mu.Unlock()
	f.plan, f.err = c, err
	close(f.done)
	return c, err
}

// install replaces the cached plan for key (after a merge), advancing
// the key's generation so in-flight loads cannot overwrite it.
func (s *Server) install(k profilestore.Key, c *cachedPlan) {
	s.mu.Lock()
	s.gen[k]++
	s.cache[k] = c
	s.mu.Unlock()
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.fetches.Inc()
	start := s.opts.Now()
	app := r.URL.Query().Get("app")
	workload := r.URL.Query().Get("workload")
	outcome := "ok"
	defer func() {
		d := s.opts.Now() - start
		s.fetchLatency.Observe(d)
		if s.opts.Tracer.Enabled() {
			s.opts.Tracer.EventAt(start, "planserver", "plan_fetch",
				trace.String("app", app),
				trace.String("workload", workload),
				trace.String("outcome", outcome),
				trace.Dur("latency", d))
		}
	}()
	if app == "" || workload == "" {
		outcome = "bad_request"
		http.Error(w, "planserver: app and workload query parameters are required", http.StatusBadRequest)
		return
	}
	c, err := s.loadPlan(profilestore.Key{App: app, Workload: workload})
	if err != nil {
		if errors.Is(err, profilestore.ErrNotFound) {
			s.misses.Inc()
			outcome = "miss"
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if match := r.Header.Get("If-None-Match"); match != "" && match == c.etag {
		s.notModified.Inc()
		outcome = "not_modified"
		w.Header().Set("ETag", c.etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", c.etag)
	w.Write(c.body)
}

// checkEvidence salvage-checks an uploaded profile beyond Validate: every
// site's evidence must be internally consistent, so a mangled or
// hand-damaged upload cannot poison the fleet merge.
func checkEvidence(p *analyzer.Profile) error {
	if p.App == "" || p.Workload == "" {
		return fmt.Errorf("evidence must carry app and workload labels")
	}
	for _, site := range p.Sites {
		if _, err := jvm.ParseStackTrace(site.Trace); err != nil {
			return fmt.Errorf("site %q: %w", site.Trace, err)
		}
		if site.Tainted > site.Allocated {
			return fmt.Errorf("site %q: tainted %d exceeds allocated %d", site.Trace, site.Tainted, site.Allocated)
		}
		var sum uint64
		for _, n := range site.Buckets {
			sum += n
		}
		if sum != site.Allocated {
			return fmt.Errorf("site %q: survival buckets sum to %d, allocated %d", site.Trace, sum, site.Allocated)
		}
	}
	return nil
}

// seedInstance is the reserved instance id under which a pre-fleet plan
// (seeded offline by polm2-profile) is adopted as baseline evidence the
// first time a key sees an upload.
const seedInstance = "__seed__"

// InstanceHeader names the request header carrying the uploader's stable
// instance id. The daemon keeps only each instance's latest evidence, so
// cumulative re-profiles and retried uploads replace rather than add.
const InstanceHeader = "X-Polm2-Instance"

// evidenceFor returns the write-through evidence image for k, loading it
// from the store on first touch (caller holds mergeMu). A store holding
// a plan but no evidence — seeded offline, or written by a pre-evidence
// build — contributes that plan once, as baseline evidence under
// seedInstance.
func (s *Server) evidenceFor(k profilestore.Key) (map[string]*analyzer.Profile, error) {
	if ev := s.evidence[k]; ev != nil {
		return ev, nil
	}
	ev, err := s.store.Evidence(k.App, k.Workload)
	if err != nil {
		return nil, err
	}
	if len(ev) == 0 {
		seed, err := s.store.Get(k.App, k.Workload)
		if err != nil && !errors.Is(err, profilestore.ErrNotFound) {
			return nil, err
		}
		if seed != nil && checkEvidence(seed) == nil {
			if err := s.store.PutEvidence(seedInstance, seed); err != nil {
				return nil, err
			}
			ev[seedInstance] = seed
		}
	}
	s.evidence[k] = ev
	return ev, nil
}

func (s *Server) handleEvidence(w http.ResponseWriter, r *http.Request) {
	start := s.opts.Now()
	outcome := "merged"
	var app, workload string
	defer func() {
		d := s.opts.Now() - start
		s.mergeLatency.Observe(d)
		if s.opts.Tracer.Enabled() {
			s.opts.Tracer.EventAt(start, "planserver", "evidence_upload",
				trace.String("app", app),
				trace.String("workload", workload),
				trace.String("instance", r.Header.Get(InstanceHeader)),
				trace.String("outcome", outcome),
				trace.Dur("latency", d))
		}
	}()
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var up analyzer.Profile
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&up); err != nil {
		s.rejected.Inc()
		outcome = "rejected"
		http.Error(w, fmt.Sprintf("planserver: decoding evidence: %v", err), http.StatusBadRequest)
		return
	}
	app, workload = up.App, up.Workload
	instance := r.Header.Get(InstanceHeader)
	if instance == "" || len(instance) > 128 {
		s.rejected.Inc()
		outcome = "rejected"
		http.Error(w, fmt.Sprintf("planserver: evidence must carry a non-empty %s header of at most 128 bytes", InstanceHeader), http.StatusBadRequest)
		return
	}
	if err := up.Validate(); err != nil {
		s.rejected.Inc()
		outcome = "rejected"
		http.Error(w, fmt.Sprintf("planserver: invalid evidence: %v", err), http.StatusBadRequest)
		return
	}
	if err := checkEvidence(&up); err != nil {
		s.rejected.Inc()
		outcome = "rejected"
		http.Error(w, fmt.Sprintf("planserver: rejected evidence: %v", err), http.StatusBadRequest)
		return
	}
	k := profilestore.Key{App: up.App, Workload: up.Workload}

	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	ev, err := s.evidenceFor(k)
	if err != nil {
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// The fleet plan is the merge of every instance's *latest* evidence,
	// this upload replacing its instance's previous one — so n cumulative
	// re-profiles from one instance count once, not n times, and a retry
	// of a lost response replays harmlessly.
	inputs := []*analyzer.Profile{&up}
	for inst, p := range ev {
		if inst != instance {
			inputs = append(inputs, p)
		}
	}
	mergeOpts := s.opts.Merge
	mergeOpts.App, mergeOpts.Workload = k.App, k.Workload
	merged, err := analyzer.MergeProfiles(mergeOpts, inputs...)
	if err != nil {
		// The upload already passed validation; decide whether the merge
		// failure is its fault or comes from the stored fleet evidence —
		// a server-side condition a client retry can never fix must not
		// masquerade as a 400.
		if _, upErr := analyzer.MergeProfiles(mergeOpts, &up); upErr != nil {
			s.rejected.Inc()
			outcome = "rejected"
			http.Error(w, fmt.Sprintf("planserver: merging evidence: %v", upErr), http.StatusBadRequest)
			return
		}
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, fmt.Sprintf("planserver: merging stored fleet evidence: %v", err), http.StatusInternalServerError)
		return
	}
	if err := s.store.PutEvidence(instance, &up); err != nil {
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ev[instance] = &up
	if err := s.store.Put(merged); err != nil {
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	c, err := encodePlan(merged)
	if err != nil {
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// The merge invalidates the served plan; prime the cache with the
	// freshly merged one so the next fetch needs no store load.
	s.install(k, c)
	s.merges.Inc()
	s.reg.Gauge(metrics.LabelName("evidence_instances",
		metrics.Label{Key: "app", Value: k.App},
		metrics.Label{Key: "workload", Value: k.Workload})).Set(int64(len(ev)))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", c.etag)
	w.Write(c.body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Tracer.Enabled() {
		if ring := s.opts.Tracer.Ring(); ring != nil {
			s.reg.Gauge("trace_ring_records").Set(int64(ring.Len()))
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.WriteTo(w)
}

// handleTracez serves the tracer's in-memory ring: the newest window of
// trace records as JSONL, oldest first. Without a tracer (or with a
// ringless one) the endpoint reports the feature off rather than
// pretending an empty fleet history.
func (s *Server) handleTracez(w http.ResponseWriter, _ *http.Request) {
	if !s.opts.Tracer.Enabled() || s.opts.Tracer.Ring() == nil {
		http.Error(w, "planserver: tracing is not enabled", http.StatusNotFound)
		return
	}
	ring := s.opts.Tracer.Ring()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Polm2-Trace-Total", fmt.Sprint(ring.Total()))
	ring.WriteTo(w)
}
