// Package planserver implements the fleet-facing side of POLM2's
// deployment model (§3.5) as a network service: a daemon fronts a
// profilestore.Store and serves versioned instrumentation plans to many
// concurrent production instances, while accepting their profiling
// evidence and folding it into one fleet-wide plan per (application,
// workload).
//
// The wire format is the profile JSON analyzer.Profile.Save writes; plan
// versions are content-addressed ETags (SHA-256 of the response body), so
// clients poll cheaply with If-None-Match and a fleet of N instances
// converges on one plan without the daemon tracking any per-client state.
//
// Endpoints:
//
//	GET  /v1/plan?app=A&workload=W   plan fetch; conditional via ETag
//	POST /v1/evidence                evidence upload (X-Polm2-Instance
//	                                 header required); responds with the
//	                                 current fleet plan (and its ETag)
//	GET  /v1/sync                    replication digest (and, with
//	                                 app/workload/instance parameters, one
//	                                 stamped evidence document — sync.go)
//	GET  /healthz                    liveness
//	GET  /metricsz                   metric exposition (internal/metrics)
//	GET  /tracez                     trace ring, newest window (internal/trace)
//
// Aggregation is last-write-wins per instance: the daemon keeps each
// instance's latest evidence (persisted under <store>/evidence — the
// durable log — and mirrored in an in-memory cache) and recomputes the
// fleet plan as the merge of those latest documents. Online re-profiles
// upload *cumulative* evidence, so replacing — never adding to — an
// instance's earlier contribution is what makes n re-profiles count once,
// and makes retried uploads idempotent.
//
// All state is sharded by (app, workload): uploads and fetches for
// distinct keys share nothing and never contend. Within a shard, merging
// is a coalescing pipeline — an upload persists its evidence, bumps the
// shard's dirty generation and returns; a single per-shard worker drains
// the backlog, recomputing the fleet plan once per batch rather than once
// per upload (see shard.go). Merging is commutative and associative, so
// batching changes only how often the plan is republished, never what it
// converges to.
package planserver

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/jvm"
	"polm2/internal/metrics"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
	"polm2/internal/trace"
)

// Options tunes the server. The zero value is ready.
type Options struct {
	// Merge tunes the analyzer pass re-run over merged fleet evidence
	// (estimators, thresholds, ConfidenceFloor). Labels are taken from
	// the uploads, not from here.
	Merge analyzer.Options
	// MaxBodyBytes caps an evidence upload. Default 32 MiB.
	MaxBodyBytes int64
	// Tracer, when non-nil, receives one "planserver" event per plan
	// fetch and evidence upload, stamped via Now. Its ring (when it has
	// one) backs GET /tracez. Nil traces nothing at zero cost.
	Tracer *trace.Tracer
	// Now supplies request timestamps for traces and latency histograms.
	// Default: wall-clock elapsed since New. Tests inject a deterministic
	// clock to keep traces byte-stable.
	Now func() time.Duration
	// SyncMerges makes every evidence upload wait until the fleet plan
	// covering it is published before responding, so the response body is
	// the merge including the upload itself. The default (false) responds
	// as soon as the evidence is durable, with the currently published
	// plan — at most one merge batch stale — and only waits on a key's
	// cold first batch, when no plan exists at all. Tests and fixtures
	// that assert on upload responses turn this on; production fleets
	// poll GET /v1/plan and should leave it off.
	SyncMerges bool
	// Schedule, when non-nil, launches shard merge workers instead of the
	// default `go work()`. Tests inject schedulers to run workers inline
	// or to gate them and observe coalescing deterministically, and the
	// fleet simulator (internal/simnet) injects its virtual-time event
	// queue so worker execution order is owned by the simulation. The
	// worker must eventually run (or uploads waiting on it block), and
	// Schedule is never called while shard or server locks are held.
	Schedule func(work func())
	// Pump, when non-nil, replaces every blocking wait on the merge
	// pipeline: instead of parking on a condition variable until a worker
	// catches up, the waiter repeatedly calls Pump, which must execute
	// scheduled work (typically one deferred Schedule callback) and
	// report whether anything ran. This is what lets a single-threaded
	// deterministic scheduler own the drain workers without deadlock —
	// the goroutine that would have waited drives the pipeline itself. A
	// Pump that reports no work while the waiter is still uncovered turns
	// the wait into a pipeline-stalled error instead of hanging. Pump is
	// called with no locks held.
	Pump func() bool
	// Rollout, when non-nil, enables the canary rollout controller
	// (DESIGN.md §14): newly merged plans are staged to a deterministic
	// canary cohort and promoted or rolled back on POST /v1/feedback
	// health reports instead of publishing fleet-wide immediately. Nil
	// (the default) preserves immediate publication byte-for-byte.
	Rollout *rollout.Config
	// SelfID is this daemon's replication identity (DESIGN.md §15): the
	// Origin written into evidence stamps and the name answered in sync
	// digests. Empty (the default) disables stamping's visible surface —
	// no stamp response header — keeping an unreplicated daemon
	// byte-identical to a pre-replication build.
	SelfID string
	// Peers lists the base URLs of the other replicas this daemon pulls
	// from (anti-entropy, sync.go). Empty disables the peer poller and
	// skips registering the peer metrics, so a peerless daemon's
	// /metricsz exposition is unchanged. The caller owns the cadence:
	// call SyncPeers on a ticker (cmd/polm2d) or from a deterministic
	// event queue (internal/simnet).
	Peers []string
	// PeerClient performs the HTTP pulls against Peers. Default
	// http.DefaultClient; the simulator injects its virtual-network
	// transport here.
	PeerClient *http.Client
}

// Server is the plan-distribution HTTP service. It is an http.Handler.
type Server struct {
	store *profilestore.Store
	opts  Options
	mux   *http.ServeMux

	reg           *metrics.Registry
	fetches       *metrics.Counter          // every GET /v1/plan
	notModified   *metrics.Counter          // ... answered 304
	misses        *metrics.Counter          // ... answered 404
	loads         *metrics.Counter          // plan loads from the store (cold-cache fetches)
	evidenceLoads *metrics.Counter          // evidence-log loads from the store (cold-cache rebuilds)
	uploads       *metrics.Counter          // accepted evidence uploads
	merges        *metrics.Counter          // fleet merges performed (≤ uploads; batching coalesces)
	coalesced     *metrics.Counter          // uploads covered by a batch merge beyond its first
	rejected      *metrics.Counter          // rejected evidence uploads
	storeErrs     *metrics.Counter          // store I/O and merge failures surfaced as 500s
	fetchLatency  *metrics.LatencyHistogram // GET /v1/plan handling time
	mergeLatency  *metrics.LatencyHistogram // POST /v1/evidence handling time

	// ro is the normalized rollout config; nil when rollout is disabled,
	// which gates every rollout branch off the serving paths. The rollout
	// counters below are registered only when ro is non-nil, keeping the
	// default /metricsz exposition unchanged.
	ro              *rollout.Config
	feedbackReports *metrics.Counter // accepted POST /v1/feedback reports
	feedbackRejects *metrics.Counter // rejected feedback reports
	canaries        *metrics.Counter // canaries opened
	promotions      *metrics.Counter // candidates promoted fleet-wide
	rollbacks       *metrics.Counter // candidates rolled back and quarantined

	rolloutMu   sync.Mutex
	transitions []RolloutTransition

	// Replication (sync.go). The peer metrics are registered only when
	// peers are configured, keeping the default exposition unchanged.
	selfID          string
	peers           []string
	peerClient      *http.Client
	peerSyncs       *metrics.Counter // completed anti-entropy passes, per peer
	peerSyncErrs    *metrics.Counter // failed anti-entropy passes, per peer
	peerDocsApplied *metrics.Counter // evidence documents pulled and applied
	peerDivergence  *metrics.Gauge   // documents the last pass had to pull

	syncScanMu  sync.Mutex
	syncScanned bool // one-time cold scan of the store into the digest

	shardMu sync.RWMutex
	shards  map[profilestore.Key]*shard

	// testHookAfterLoad, when non-nil, runs between a flight's store read
	// and its cache write — test-only, to interleave a merge install.
	testHookAfterLoad func()
}

// cachedPlan is one encoded, content-addressed plan. The header value
// slices are precomputed so the conditional-fetch fast path can assign
// them into the response header map without allocating.
type cachedPlan struct {
	etag       string
	body       []byte
	etagHeader []string // {etag}
	lenHeader  []string // {strconv.Itoa(len(body))}
}

// jsonContentType is the shared Content-Type header value for plan
// responses; assigned directly (not via Header.Set) on the fetch path.
var jsonContentType = []string{"application/json"}

// flight is one in-progress store load other fetchers wait on.
type flight struct {
	done chan struct{}
	plan *cachedPlan
	err  error
}

// New builds a server fronting the store.
func New(store *profilestore.Store, opts Options) *Server {
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	if opts.Now == nil {
		start := time.Now()
		opts.Now = func() time.Duration { return time.Since(start) }
	}
	reg := metrics.NewRegistry()
	s := &Server{
		store:         store,
		opts:          opts,
		mux:           http.NewServeMux(),
		reg:           reg,
		fetches:       reg.Counter("plan_fetch_total"),
		notModified:   reg.Counter("plan_not_modified_total"),
		misses:        reg.Counter("plan_miss_total"),
		loads:         reg.Counter("plan_load_total"),
		evidenceLoads: reg.Counter("evidence_load_total"),
		uploads:       reg.Counter("evidence_upload_total"),
		merges:        reg.Counter("evidence_merge_total"),
		coalesced:     reg.Counter("evidence_coalesced_total"),
		rejected:      reg.Counter("evidence_reject_total"),
		storeErrs:     reg.Counter("store_error_total"),
		fetchLatency:  reg.Histogram("plan_fetch_latency", nil),
		mergeLatency:  reg.Histogram("evidence_merge_latency", nil),
		shards:        make(map[profilestore.Key]*shard),
	}
	if opts.Rollout != nil {
		cfg := opts.Rollout.Normalize()
		s.ro = &cfg
		s.feedbackReports = reg.Counter("feedback_reports_total")
		s.feedbackRejects = reg.Counter("feedback_reject_total")
		s.canaries = reg.Counter("rollout_canary_total")
		s.promotions = reg.Counter("rollout_promotions_total")
		s.rollbacks = reg.Counter("rollout_rollbacks_total")
	}
	s.selfID = opts.SelfID
	s.peers = append([]string(nil), opts.Peers...)
	s.peerClient = opts.PeerClient
	if s.peerClient == nil {
		s.peerClient = http.DefaultClient
	}
	if len(s.peers) > 0 {
		s.peerSyncs = reg.Counter("peer_sync_total")
		s.peerSyncErrs = reg.Counter("peer_sync_error_total")
		s.peerDocsApplied = reg.Counter("peer_docs_applied_total")
		s.peerDivergence = reg.Gauge("peer_divergence_gauge")
	}
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/evidence", s.handleEvidence)
	s.mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /v1/sync", s.handleSync)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /tracez", s.handleTracez)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics returns the server's counter registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Flush blocks until every accepted upload is covered by a published plan
// (or by a recorded merge failure). The daemon calls it on shutdown so
// the store's plan files reflect the last uploads the fleet delivered;
// tests call it to quiesce the pipeline before asserting.
func (s *Server) Flush() {
	s.shardMu.RLock()
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.shardMu.RUnlock()
	for _, sh := range shards {
		sh.mu.Lock()
		s.awaitCovered(sh, sh.dirty) //nolint:errcheck // merge failures are recorded per shard; Flush is best-effort
		sh.mu.Unlock()
	}
}

// encodePlan renders a profile to its canonical wire body and ETag.
func encodePlan(p *analyzer.Profile) (*cachedPlan, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("planserver: encoding plan: %w", err)
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	etag := fmt.Sprintf("%q", fmt.Sprintf("%x", sum))
	return &cachedPlan{
		etag:       etag,
		body:       body,
		etagHeader: []string{etag},
		lenHeader:  []string{strconv.Itoa(len(body))},
	}, nil
}

// queryParam extracts the first value of key from a raw query string
// without materializing a url.Values map: the plan fetch path runs for
// every poll of every fleet instance, and the generic parser's per-request
// allocations were its dominant cost. Unescaped values (every identifier
// our clients send) are returned as substrings; escaped ones fall back to
// url.QueryUnescape. Escaped *keys* are not matched — the daemon's two
// parameter names are plain ASCII.
func queryParam(raw, key string) string {
	for len(raw) > 0 {
		pair := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		if len(pair) <= len(key) || pair[len(key)] != '=' || pair[:len(key)] != key {
			continue
		}
		v := pair[len(key)+1:]
		if strings.IndexByte(v, '%') >= 0 || strings.IndexByte(v, '+') >= 0 {
			if u, err := url.QueryUnescape(v); err == nil {
				return u
			}
			return ""
		}
		return v
	}
	return ""
}

// finishPlan records one plan fetch's latency and trace event. It is a
// plain call (not a deferred closure) so the 304 fast path stays free of
// per-request heap allocations.
func (s *Server) finishPlan(start time.Duration, app, workload, outcome string) {
	d := s.opts.Now() - start
	s.fetchLatency.Observe(d)
	if s.opts.Tracer.Enabled() {
		s.opts.Tracer.EventAt(start, "planserver", "plan_fetch",
			trace.String("app", app),
			trace.String("workload", workload),
			trace.String("outcome", outcome),
			trace.Dur("latency", d))
	}
}

// loadPlan returns the published plan for the shard, loading it from the
// store at most once however many fetchers arrive concurrently
// (single-flight). A store with no plan file but surviving evidence — the
// async publish lost a race with a crash, or an operator copied only the
// evidence log — rebuilds the plan through the merge pipeline instead of
// reporting a miss: the evidence log is authoritative, the plan file is a
// convenience copy.
func (s *Server) loadPlan(sh *shard) (*cachedPlan, error) {
	sh.mu.Lock()
	if c := sh.plan; c != nil {
		sh.mu.Unlock()
		return c, nil
	}
	if f := sh.flight; f != nil {
		sh.mu.Unlock()
		<-f.done
		return f.plan, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.flight = f
	startGen := sh.gen
	sh.mu.Unlock()

	s.loads.Inc()
	p, err := s.store.Get(sh.key.App, sh.key.Workload)
	var c *cachedPlan
	if err == nil {
		c, err = encodePlan(p)
	} else if errors.Is(err, profilestore.ErrNotFound) {
		c, err = s.rebuildFromEvidence(sh, err)
	}
	if s.testHookAfterLoad != nil {
		s.testHookAfterLoad()
	}

	sh.mu.Lock()
	sh.flight = nil
	if sh.gen != startGen && sh.plan != nil {
		// A merge published a newer plan while this flight was reading the
		// store; writing the pre-merge read back would serve a stale plan
		// (and stale ETag) until the next merge. Serve the installed plan.
		c, err = sh.plan, nil
	} else if err == nil {
		sh.plan = c
		if s.ro != nil && p != nil && sh.roll != nil && sh.roll.StableETag() == "" {
			// Rollout mode, no prior rollout history: adopt the stored
			// plan as the stable baseline so the next merge canaries
			// against it rather than replacing it fleet-wide.
			sh.roll.Observe(c.etag)
			sh.stableProf = p
			s.persistRolloutLocked(sh) //nolint:errcheck // healed by the next merge's persist
			s.recordTransition(sh, RolloutTransition{
				Kind: "adopt", From: rollout.StateStable, To: sh.roll.State(), ETag: c.etag,
			})
		}
	}
	sh.mu.Unlock()
	f.plan, f.err = c, err
	close(f.done)
	return c, err
}

// rebuildFromEvidence recomputes a missing plan from the evidence log by
// pushing a synthetic generation through the shard's merge pipeline and
// waiting for it to publish. notFound is returned unchanged when the log
// is empty too — the key genuinely has no plan.
func (s *Server) rebuildFromEvidence(sh *shard, notFound error) (*cachedPlan, error) {
	sh.mu.Lock()
	ev, err := s.loadEvidenceLocked(sh)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	if len(ev) == 0 {
		sh.mu.Unlock()
		return nil, notFound
	}
	if sh.dirty == sh.mergedGen {
		sh.dirty++
	}
	target := sh.dirty
	launch := s.ensureWorkerLocked(sh)
	sh.mu.Unlock()
	if launch != nil {
		launch()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := s.awaitCovered(sh, target); err != nil {
		return nil, err
	}
	if sh.plan == nil {
		return nil, notFound
	}
	return sh.plan, nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.fetches.Inc()
	start := s.opts.Now()
	app := queryParam(r.URL.RawQuery, "app")
	workload := queryParam(r.URL.RawQuery, "workload")
	if app == "" || workload == "" {
		http.Error(w, "planserver: app and workload query parameters are required", http.StatusBadRequest)
		s.finishPlan(start, app, workload, "bad_request")
		return
	}
	sh := s.shard(profilestore.Key{App: app, Workload: workload})
	sh.mu.Lock()
	c := sh.plan
	if s.ro != nil {
		if err := s.restoreRolloutLocked(sh); err != nil {
			sh.mu.Unlock()
			s.storeErrs.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			s.finishPlan(start, app, workload, "store_error")
			return
		}
		c = s.rolloutPlanLocked(sh, r.Header.Get(InstanceHeader))
	}
	sh.mu.Unlock()
	if c == nil {
		var err error
		if c, err = s.loadPlan(sh); err != nil {
			if errors.Is(err, profilestore.ErrNotFound) {
				s.misses.Inc()
				s.dropIfEmpty(sh)
				http.Error(w, err.Error(), http.StatusNotFound)
				s.finishPlan(start, app, workload, "miss")
				return
			}
			s.storeErrs.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			s.finishPlan(start, app, workload, "store_error")
			return
		}
		if s.ro != nil {
			// A cold load may have restored an open canary alongside the
			// stable plan; route cohort members to the candidate.
			sh.mu.Lock()
			if rc := s.rolloutPlanLocked(sh, r.Header.Get(InstanceHeader)); rc != nil {
				c = rc
			}
			sh.mu.Unlock()
		}
	}
	h := w.Header()
	h["Etag"] = c.etagHeader
	if match := r.Header.Get("If-None-Match"); match != "" && match == c.etag {
		s.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		s.finishPlan(start, app, workload, "not_modified")
		return
	}
	h["Content-Type"] = jsonContentType
	h["Content-Length"] = c.lenHeader
	w.Write(c.body)
	s.finishPlan(start, app, workload, "ok")
}

// checkEvidence salvage-checks an uploaded profile beyond Validate: every
// site's evidence must be internally consistent, so a mangled or
// hand-damaged upload cannot poison the fleet merge. This is the full
// upload-side precondition for mergeability — labels present, every trace
// parseable, tainted within allocated, buckets summing to the allocation
// total — which is what lets the merge pipeline classify any later merge
// failure as server-side without re-merging anything: an upload that
// passes here cannot be the profile a fold chokes on.
func checkEvidence(p *analyzer.Profile) error {
	if p.App == "" || p.Workload == "" {
		return fmt.Errorf("evidence must carry app and workload labels")
	}
	for _, site := range p.Sites {
		if _, err := jvm.ParseStackTrace(site.Trace); err != nil {
			return fmt.Errorf("site %q: %w", site.Trace, err)
		}
		if site.Tainted > site.Allocated {
			return fmt.Errorf("site %q: tainted %d exceeds allocated %d", site.Trace, site.Tainted, site.Allocated)
		}
		var sum uint64
		for _, n := range site.Buckets {
			sum += n
		}
		if sum != site.Allocated {
			return fmt.Errorf("site %q: survival buckets sum to %d, allocated %d", site.Trace, sum, site.Allocated)
		}
	}
	return nil
}

// seedInstance is the reserved instance id under which a pre-fleet plan
// (seeded offline by polm2-profile) is adopted as baseline evidence the
// first time a key sees an upload.
const seedInstance = "__seed__"

// InstanceHeader names the request header carrying the uploader's stable
// instance id. The daemon keeps only each instance's latest evidence, so
// cumulative re-profiles and retried uploads replace rather than add.
const InstanceHeader = "X-Polm2-Instance"

func (s *Server) handleEvidence(w http.ResponseWriter, r *http.Request) {
	start := s.opts.Now()
	outcome := "merged"
	var app, workload string
	defer func() {
		d := s.opts.Now() - start
		s.mergeLatency.Observe(d)
		if s.opts.Tracer.Enabled() {
			s.opts.Tracer.EventAt(start, "planserver", "evidence_upload",
				trace.String("app", app),
				trace.String("workload", workload),
				trace.String("instance", r.Header.Get(InstanceHeader)),
				trace.String("outcome", outcome),
				trace.Dur("latency", d))
		}
	}()
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var up analyzer.Profile
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&up); err != nil {
		s.rejected.Inc()
		outcome = "rejected"
		http.Error(w, fmt.Sprintf("planserver: decoding evidence: %v", err), http.StatusBadRequest)
		return
	}
	app, workload = up.App, up.Workload
	instance := r.Header.Get(InstanceHeader)
	if instance == "" || len(instance) > 128 {
		s.rejected.Inc()
		outcome = "rejected"
		http.Error(w, fmt.Sprintf("planserver: evidence must carry a non-empty %s header of at most 128 bytes", InstanceHeader), http.StatusBadRequest)
		return
	}
	if err := up.Validate(); err != nil {
		s.rejected.Inc()
		outcome = "rejected"
		http.Error(w, fmt.Sprintf("planserver: invalid evidence: %v", err), http.StatusBadRequest)
		return
	}
	if err := checkEvidence(&up); err != nil {
		s.rejected.Inc()
		outcome = "rejected"
		http.Error(w, fmt.Sprintf("planserver: rejected evidence: %v", err), http.StatusBadRequest)
		return
	}
	var clientSeq uint64
	if v := r.Header.Get(EvidenceSeqHeader); v != "" {
		if n, perr := strconv.ParseUint(v, 10, 64); perr == nil {
			clientSeq = n
		}
	}
	sh := s.shard(profilestore.Key{App: up.App, Workload: up.Workload})

	sh.mu.Lock()
	ev, err := s.loadEvidenceLocked(sh)
	if err != nil {
		sh.mu.Unlock()
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// The evidence file is the durable write-ahead record: persist before
	// acknowledging anything, then replace the instance's prior
	// contribution in the cache so n cumulative re-profiles count once,
	// not n times, and a retry of a lost response replays harmlessly.
	//
	// The stamp strictly advances past whatever this daemon holds — even a
	// replayed or reordered upload gets a fresh, winning stamp, so the
	// locally accepted write always replaces locally and replication
	// resolves any cross-daemon race by the (seq, origin) total order. The
	// client's own sequence (when sent) folds in so an upload replayed to
	// a failover daemon is not beaten by an older replicated document.
	stamp := profilestore.Stamp{Seq: sh.stamps[instance].Seq + 1, Origin: s.selfID}
	if clientSeq > stamp.Seq {
		stamp.Seq = clientSeq
	}
	if err := s.store.PutEvidenceStamped(instance, stamp, &up); err != nil {
		sh.mu.Unlock()
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ev[instance] = &up
	sh.stamps[instance] = stamp
	sh.dirty++
	myGen := sh.dirty
	if sh.instGauge == nil {
		sh.instGauge = s.reg.Gauge(metrics.LabelName("evidence_instances",
			metrics.Label{Key: "app", Value: up.App},
			metrics.Label{Key: "workload", Value: up.Workload}))
	}
	sh.instGauge.Set(int64(len(ev)))
	launch := s.ensureWorkerLocked(sh)
	sh.mu.Unlock()
	s.uploads.Inc()
	if launch != nil {
		launch()
	}

	sh.mu.Lock()
	if s.opts.SyncMerges || sh.plan == nil {
		// Synchronous mode responds with the plan covering this very
		// upload. Async mode responds with whatever plan is published —
		// at most one merge batch behind — and waits only on the key's
		// cold first batch, when there is no plan at all yet.
		if err := s.awaitCovered(sh, myGen); err != nil {
			sh.mu.Unlock()
			s.storeErrs.Inc()
			outcome = "store_error"
			http.Error(w, fmt.Sprintf("planserver: merging fleet evidence: %v", err), http.StatusInternalServerError)
			return
		}
	}
	c := sh.plan
	if s.ro != nil {
		c = s.rolloutPlanLocked(sh, instance)
	}
	sh.mu.Unlock()
	if c == nil {
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, "planserver: no fleet plan published", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	if s.selfID != "" {
		// Report the assigned stamp so harnesses (and curious clients) can
		// audit replication; absent without a SelfID, keeping unreplicated
		// responses byte-identical.
		h.Set(EvidenceStampHeader, stamp.String())
	}
	h["Content-Type"] = jsonContentType
	h["Etag"] = c.etagHeader
	h["Content-Length"] = c.lenHeader
	w.Write(c.body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Tracer.Enabled() {
		if ring := s.opts.Tracer.Ring(); ring != nil {
			s.reg.Gauge("trace_ring_records").Set(int64(ring.Len()))
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.WriteTo(w)
}

// handleTracez serves the tracer's in-memory ring: the newest window of
// trace records as JSONL, oldest first. Without a tracer (or with a
// ringless one) the endpoint reports the feature off rather than
// pretending an empty fleet history.
func (s *Server) handleTracez(w http.ResponseWriter, _ *http.Request) {
	if !s.opts.Tracer.Enabled() || s.opts.Tracer.Ring() == nil {
		http.Error(w, "planserver: tracing is not enabled", http.StatusNotFound)
		return
	}
	ring := s.opts.Tracer.Ring()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Polm2-Trace-Total", fmt.Sprint(ring.Total()))
	ring.WriteTo(w)
}
