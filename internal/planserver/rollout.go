package planserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/metrics"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
	"polm2/internal/trace"
)

// This file is the planserver half of the canary rollout controller
// (DESIGN.md §14). The state machine itself lives in internal/rollout;
// here the daemon wires it to plan bodies, persistence, serving, metrics
// and traces:
//
//   - drain() feeds every merged plan version through the per-shard
//     tracker: the first plan ever is adopted as stable, a new ETag is
//     staged as a canary candidate, a quarantined ETag is withheld.
//   - GET /v1/plan (and the evidence response) serves the candidate to
//     canary-cohort instances while a canary is open, the stable plan to
//     everyone else. Cohort membership is computed over the key's known
//     instances (the evidence log); an instance the daemon has never seen
//     is non-canary by construction.
//   - POST /v1/feedback records plan-health reports; the tracker's
//     decision promotes the candidate fleet-wide or rolls back to stable
//     and quarantines the candidate ETag.
//   - Tracker state plus the stable and candidate profiles persist as one
//     rollout document per key through the store's atomic-rename path, so
//     a restarted daemon resumes serving last-good — never a plan that
//     regressed its canary.
//
// Every rollout branch is gated on s.ro != nil: with rollout disabled
// (the default) the daemon's behavior is byte-for-byte today's.

// FeedbackBodyLimit caps a POST /v1/feedback body; reports are a few
// hundred bytes, so anything near the limit is garbage.
const FeedbackBodyLimit = 1 << 20

// rolloutDoc is the per-key persisted controller state: the tracker
// snapshot plus the plan contents the ETags refer to, so a restart can
// re-serve stable (and resume a canary) without trusting the plan file —
// which always holds the *latest* merge, candidate or not.
type rolloutDoc struct {
	Snapshot  rollout.Snapshot  `json:"snapshot"`
	Stable    *analyzer.Profile `json:"stable,omitempty"`
	Candidate *analyzer.Profile `json:"candidate,omitempty"`
}

// RolloutTransition is one recorded state-machine move, exposed for
// harnesses (the simnet invariant checker audits the delivery log against
// this list) and for tests.
type RolloutTransition struct {
	At   time.Duration
	Key  profilestore.Key
	Kind string // "adopt" | "canary_start" | "quarantine" | "promote" | "publish" | "rollback"
	From rollout.State
	To   rollout.State
	// ETag is the plan version the transition concerns (the candidate, or
	// the adopted plan); StableETag the stable version after the move.
	ETag       string
	StableETag string
	// Decision inputs, populated on promote/rollback.
	CanaryP99       time.Duration
	BaselineP99     time.Duration
	CanaryReports   int
	BaselineReports int
	// CohortSize is the canary cohort size at canary_start.
	CohortSize int
}

// RolloutTransitions returns every recorded transition, in order.
func (s *Server) RolloutTransitions() []RolloutTransition {
	s.rolloutMu.Lock()
	defer s.rolloutMu.Unlock()
	out := make([]RolloutTransition, len(s.transitions))
	copy(out, s.transitions)
	return out
}

// RolloutSnapshot reports the tracker state for one key; ok is false when
// rollout is disabled or the key has no rollout state yet.
func (s *Server) RolloutSnapshot(app, workload string) (rollout.Snapshot, bool) {
	if s.ro == nil {
		return rollout.Snapshot{}, false
	}
	s.shardMu.RLock()
	sh := s.shards[profilestore.Key{App: app, Workload: workload}]
	s.shardMu.RUnlock()
	if sh == nil {
		return rollout.Snapshot{}, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.roll == nil {
		return rollout.Snapshot{}, false
	}
	return sh.roll.Snapshot(), true
}

// shortETag trims a content-addressed ETag (a quoted sha256 hex string)
// to a display prefix for trace events.
func shortETag(etag string) string {
	t := etag
	if len(t) >= 2 && t[0] == '"' {
		t = t[1 : len(t)-1]
	}
	if len(t) > 12 {
		t = t[:12]
	}
	return t
}

// restoreRolloutLocked populates the shard's tracker (and stable/candidate
// plan caches) from the persisted rollout document, once per daemon
// lifetime (caller holds sh.mu). A missing document means a fresh key — or
// a store written with rollout off, whose plan file will be adopted as
// stable by the next merge or cold load. A corrupt document degrades the
// same way rather than taking the key down.
func (s *Server) restoreRolloutLocked(sh *shard) error {
	if sh.rollLoaded {
		return nil
	}
	cfg := *s.ro
	data, err := s.store.Rollout(sh.key.App, sh.key.Workload)
	if err != nil && !errors.Is(err, profilestore.ErrNotFound) {
		return err
	}
	var doc rolloutDoc
	if err != nil || json.Unmarshal(data, &doc) != nil {
		sh.roll = rollout.NewTracker(cfg)
		sh.rollLoaded = true
		return nil
	}
	sh.roll = rollout.Restore(cfg, doc.Snapshot)
	if doc.Stable != nil {
		if c, err := encodePlan(doc.Stable); err == nil && c.etag == sh.roll.StableETag() {
			sh.stableProf = doc.Stable
			sh.plan = c
			sh.gen++
		}
	}
	if doc.Candidate != nil && sh.roll.State() == rollout.StateCanary {
		if c, err := encodePlan(doc.Candidate); err == nil && c.etag == sh.roll.CandidateETag() {
			sh.candProf = doc.Candidate
			sh.cand = c
		}
	}
	sh.rollLoaded = true
	s.setStateGaugeLocked(sh)
	return nil
}

// persistRolloutLocked writes the shard's rollout document (caller holds
// sh.mu); the store's staged-write-and-rename keeps the previous document
// intact across a crash mid-write.
func (s *Server) persistRolloutLocked(sh *shard) error {
	doc := rolloutDoc{Snapshot: sh.roll.Snapshot(), Stable: sh.stableProf, Candidate: sh.candProf}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("planserver: encoding rollout state: %w", err)
	}
	return s.store.PutRollout(sh.key.App, sh.key.Workload, data)
}

// setStateGaugeLocked publishes the shard's rollout state as the labeled
// rollout_state gauge (caller holds sh.mu). The value is the state code:
// 0 stable, 1 canary, 2 promoting, 3 rolled_back.
func (s *Server) setStateGaugeLocked(sh *shard) {
	if sh.stateGauge == nil {
		sh.stateGauge = s.reg.Gauge(metrics.LabelName("rollout_state",
			metrics.Label{Key: "app", Value: sh.key.App},
			metrics.Label{Key: "workload", Value: sh.key.Workload}))
	}
	sh.stateGauge.Set(int64(sh.roll.State()))
}

// cohortLocked returns the canary cohort over the key's known instances
// (caller holds sh.mu). The cohort is recomputed only when the instance
// count changes: evidence is last-write-wins per instance, so the id set
// only ever grows.
func (s *Server) cohortLocked(sh *shard) map[string]bool {
	n := len(sh.evidence)
	if sh.cohort != nil && sh.cohortN == n {
		return sh.cohort
	}
	ids := make([]string, 0, n)
	for id := range sh.evidence {
		if id != seedInstance {
			ids = append(ids, id)
		}
	}
	sh.cohort = rollout.Cohort(s.ro.Seed, ids, s.ro.CanaryFraction)
	sh.cohortN = n
	return sh.cohort
}

// rolloutPlanLocked picks the plan to serve instance (caller holds sh.mu):
// the staged candidate for canary-cohort members while a canary is open,
// the stable plan otherwise. An empty instance (a client predating the
// header, or a curl) is never canaried.
func (s *Server) rolloutPlanLocked(sh *shard, instance string) *cachedPlan {
	if sh.cand == nil || instance == "" || sh.roll == nil || sh.roll.State() != rollout.StateCanary {
		return sh.plan
	}
	if sh.evidence == nil {
		// Restart mid-canary: membership needs the instance set.
		if _, err := s.loadEvidenceLocked(sh); err != nil {
			return sh.plan // non-canary on doubt; stable is always safe
		}
	}
	if s.cohortLocked(sh)[instance] {
		return sh.cand
	}
	return sh.plan
}

// recordTransition appends to the transition log, bumps counters, updates
// the state gauge and emits the trace event. Caller holds sh.mu.
func (s *Server) recordTransition(sh *shard, tr RolloutTransition, attrs ...trace.Attr) {
	tr.At = s.opts.Now()
	tr.Key = sh.key
	tr.StableETag = sh.roll.StableETag()
	s.rolloutMu.Lock()
	s.transitions = append(s.transitions, tr)
	s.rolloutMu.Unlock()
	s.setStateGaugeLocked(sh)
	if s.opts.Tracer.Enabled() {
		base := []trace.Attr{
			trace.String("app", sh.key.App),
			trace.String("workload", sh.key.Workload),
			trace.String("etag", shortETag(tr.ETag)),
			trace.String("stable", shortETag(tr.StableETag)),
			trace.String("from", tr.From.String()),
			trace.String("to", tr.To.String()),
		}
		s.opts.Tracer.EventAt(tr.At, "rollout", tr.Kind, append(base, attrs...)...)
	}
}

// observeMergeLocked feeds one merged plan version through the rollout
// state machine and syncs the shard's stable/candidate caches to the
// tracker's verdict (caller holds sh.mu). Called from drain in place of
// the direct fleet-wide install; a persistence failure is returned and
// surfaces as a merge failure, leaving the previous plan standing.
func (s *Server) observeMergeLocked(sh *shard, merged *analyzer.Profile, c *cachedPlan) error {
	if err := s.restoreRolloutLocked(sh); err != nil {
		return err
	}
	from := sh.roll.State()
	ev := sh.roll.Observe(c.etag)

	// Sync the content caches: whatever the tracker now calls stable or
	// candidate, make sure the shard holds its body. This also heals a
	// crash window where a previous persist failed after the tracker
	// advanced.
	switch c.etag {
	case sh.roll.StableETag():
		if sh.plan == nil || sh.plan.etag != c.etag {
			sh.stableProf = merged
			sh.plan = c
		}
	case sh.roll.CandidateETag():
		sh.candProf = merged
		sh.cand = c
	}
	// Any install or staging obsoletes what a concurrent cold-load flight
	// read from the store; bump the generation so it discards its read.
	sh.gen++

	if err := s.persistRolloutLocked(sh); err != nil {
		return err
	}
	switch ev {
	case rollout.EventAdopt:
		s.recordTransition(sh, RolloutTransition{
			Kind: "adopt", From: from, To: sh.roll.State(), ETag: c.etag,
		})
	case rollout.EventCanary:
		s.canaries.Inc()
		cohort := 0
		if sh.evidence != nil {
			cohort = len(s.cohortLocked(sh))
		}
		s.recordTransition(sh, RolloutTransition{
			Kind: "canary_start", From: from, To: sh.roll.State(), ETag: c.etag, CohortSize: cohort,
		}, trace.Int64("cohort", int64(cohort)))
	case rollout.EventQuarantined:
		s.recordTransition(sh, RolloutTransition{
			Kind: "quarantine", From: from, To: sh.roll.State(), ETag: c.etag,
		})
	}
	return nil
}

// decideLocked applies a feedback decision to the shard (caller holds
// sh.mu): promote installs the candidate fleet-wide, rollback discards it
// (the tracker has already quarantined its ETag). Both persist before
// returning; a failed persist is surfaced to the reporter as a 500 while
// the in-memory state stands — conservative on restart either way,
// because the stale document only ever re-opens a canary, never publishes
// one.
func (s *Server) decideLocked(sh *shard, out rollout.Outcome) error {
	candidate := sh.cand
	switch out.Decision {
	case rollout.DecisionPromote:
		s.promotions.Inc()
		s.recordTransition(sh, RolloutTransition{
			Kind: "promote", From: rollout.StateCanary, To: rollout.StatePromoting,
			ETag: candidateETag(candidate), CanaryP99: out.CanaryP99, BaselineP99: out.Baseline99,
			CanaryReports: out.CanaryN, BaselineReports: out.BaselineN,
		},
			trace.Dur("canary_p99", out.CanaryP99),
			trace.Dur("baseline_p99", out.Baseline99),
			trace.Int64("canary_n", int64(out.CanaryN)),
			trace.Int64("baseline_n", int64(out.BaselineN)))
		if candidate != nil {
			sh.stableProf = sh.candProf
			sh.plan = candidate
			sh.gen++
		}
		sh.cand, sh.candProf = nil, nil
		s.recordTransition(sh, RolloutTransition{
			Kind: "publish", From: rollout.StatePromoting, To: rollout.StateStable,
			ETag: candidateETag(candidate),
		})
	case rollout.DecisionRollback:
		s.rollbacks.Inc()
		s.recordTransition(sh, RolloutTransition{
			Kind: "rollback", From: rollout.StateCanary, To: rollout.StateRolledBack,
			ETag: candidateETag(candidate), CanaryP99: out.CanaryP99, BaselineP99: out.Baseline99,
			CanaryReports: out.CanaryN, BaselineReports: out.BaselineN,
		},
			trace.Dur("canary_p99", out.CanaryP99),
			trace.Dur("baseline_p99", out.Baseline99),
			trace.Int64("canary_n", int64(out.CanaryN)),
			trace.Int64("baseline_n", int64(out.BaselineN)))
		sh.cand, sh.candProf = nil, nil
	default:
		return nil
	}
	return s.persistRolloutLocked(sh)
}

func candidateETag(c *cachedPlan) string {
	if c == nil {
		return ""
	}
	return c.etag
}

// handleFeedback is POST /v1/feedback: one instance's plan-health report
// for one observation window. Reports are accepted (and counted) even
// with rollout disabled, so fleets can deploy reporting clients before
// flipping the daemon flag.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	start := s.opts.Now()
	outcome := "accepted"
	var rep rollout.Report
	instance := r.Header.Get(InstanceHeader)
	defer func() {
		if s.opts.Tracer.Enabled() {
			s.opts.Tracer.EventAt(start, "planserver", "feedback",
				trace.String("app", rep.App),
				trace.String("workload", rep.Workload),
				trace.String("instance", instance),
				trace.String("etag", shortETag(rep.ETag)),
				trace.String("outcome", outcome))
		}
	}()
	reject := func(msg string) {
		if s.ro != nil {
			s.feedbackRejects.Inc()
		} else {
			s.reg.Counter("feedback_reject_total").Inc()
		}
		outcome = "rejected"
		http.Error(w, msg, http.StatusBadRequest)
	}
	body := http.MaxBytesReader(w, r.Body, FeedbackBodyLimit)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		reject(fmt.Sprintf("planserver: decoding feedback: %v", err))
		return
	}
	if instance == "" || len(instance) > 128 {
		reject(fmt.Sprintf("planserver: feedback must carry a non-empty %s header of at most 128 bytes", InstanceHeader))
		return
	}
	if err := rep.Validate(); err != nil {
		reject(fmt.Sprintf("planserver: invalid feedback: %v", err))
		return
	}
	if s.ro == nil {
		// Rollout disabled: acknowledge and count, decide nothing. Lazily
		// registered so the default /metricsz exposition is unchanged
		// until the first report arrives.
		s.reg.Counter("feedback_reports_total").Inc()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.feedbackReports.Inc()
	sh := s.shard(profilestore.Key{App: rep.App, Workload: rep.Workload})
	sh.mu.Lock()
	if err := s.restoreRolloutLocked(sh); err != nil {
		sh.mu.Unlock()
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	inCohort := false
	if sh.roll.State() == rollout.StateCanary {
		if sh.evidence == nil {
			s.loadEvidenceLocked(sh) //nolint:errcheck // membership on doubt is non-canary
		}
		if sh.evidence != nil {
			inCohort = s.cohortLocked(sh)[instance]
		}
	}
	out := sh.roll.Record(&rep, inCohort)
	err := s.decideLocked(sh, out)
	sh.mu.Unlock()
	if err != nil {
		s.storeErrs.Inc()
		outcome = "store_error"
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if out.Decision != rollout.DecisionNone {
		outcome = out.Decision.String()
	}
	w.WriteHeader(http.StatusNoContent)
}
