package planserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"polm2/internal/profilestore"
)

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// workQueue is the single-threaded scheduler shape internal/simnet drives
// the daemon with: Schedule defers workers into a FIFO, Pump runs exactly
// one deferred worker on the caller's goroutine. Nothing here spawns a
// goroutine — worker execution order is owned entirely by the queue.
type workQueue struct {
	pending []func()
	runs    int
}

func (q *workQueue) schedule(work func()) { q.pending = append(q.pending, work) }

func (q *workQueue) pump() bool {
	if len(q.pending) == 0 {
		return false
	}
	work := q.pending[0]
	q.pending = q.pending[1:]
	q.runs++
	work()
	return true
}

// TestPumpDrivesDeferredWorkers is the satellite contract for the fleet
// simulator: with Schedule deferring every merge worker and Pump as the
// only execution engine, a cold upload (which must wait for the first
// published plan) completes on one goroutine, with the upload handler
// itself pumping the drain.
func TestPumpDrivesDeferredWorkers(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := &workQueue{}
	srv := New(store, Options{Schedule: q.schedule, Pump: q.pump})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Cold first upload: no plan exists, so the handler waits for the
	// batch covering it — the wait must pump the deferred drain instead
	// of parking forever.
	resp := postEvidence(t, ts.URL, "inst-a", evidence("Pump", "w", site("Pump.run:1;Db.put:2", 4, 12)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold upload = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if q.runs == 0 {
		t.Fatal("upload completed without pumping the deferred worker")
	}
	if got := srv.Metrics().Counter("evidence_merge_total").Value(); got != 1 {
		t.Fatalf("evidence_merge_total = %d, want 1", got)
	}

	// Steady state: a second upload responds with the published plan
	// without waiting, leaving its drain parked in the queue until the
	// scheduler decides to run it.
	resp = postEvidence(t, ts.URL, "inst-b", evidence("Pump", "w", site("Pump.run:1;Db.put:2", 2, 6)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm upload = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if len(q.pending) != 1 {
		t.Fatalf("warm upload left %d deferred workers, want 1 parked", len(q.pending))
	}
	if got := srv.Metrics().Counter("evidence_merge_total").Value(); got != 1 {
		t.Fatalf("merge ran before the scheduler released it (merges = %d)", got)
	}

	// Flush pumps the parked drain to quiesce.
	srv.Flush()
	if got := srv.Metrics().Counter("evidence_merge_total").Value(); got != 2 {
		t.Fatalf("evidence_merge_total after Flush = %d, want 2", got)
	}
	uploads := srv.Metrics().Counter("evidence_upload_total").Value()
	coalesced := srv.Metrics().Counter("evidence_coalesced_total").Value()
	if uploads != 2+coalesced {
		t.Fatalf("counter accounting: uploads %d != merges 2 + coalesced %d", uploads, coalesced)
	}
}

// TestPumpStallIsAnErrorNotADeadlock: a pump that runs dry while a waiter
// is uncovered reports a pipeline stall as a 500 — the failure mode a
// broken scheduler gets instead of a hung simulation.
func TestPumpStallIsAnErrorNotADeadlock(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Schedule swallows the worker: nothing will ever run it.
	srv := New(store, Options{
		Schedule: func(func()) {},
		Pump:     func() bool { return false },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postEvidence(t, ts.URL, "inst-a", evidence("Stall", "w", site("Stall.run:1;Db.put:2", 4, 12)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("stalled upload = %d, want 500", resp.StatusCode)
	}
	body := readBody(t, resp)
	if !strings.Contains(body, "stalled") {
		t.Fatalf("stall error does not name the stall: %q", body)
	}
}
