package planserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"polm2/internal/analyzer"
	"polm2/internal/profilestore"
)

// benchWriter is a minimal http.ResponseWriter for handler benchmarks: the
// header map is allocated once and the body is discarded, so the writer
// itself adds nothing to the measured allocations after warmup.
type benchWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *benchWriter) Header() http.Header { return w.h }
func (w *benchWriter) WriteHeader(c int)   { w.code = c }
func (w *benchWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	w.n += len(p)
	return len(p), nil
}

func (w *benchWriter) reset() { w.code, w.n = 0, 0 }

// benchEvidence builds one instance's upload body: sites sites, the first
// shared across the whole fleet, the rest salted per instance so the
// merged plan has both contended and private evidence.
func benchEvidence(b testing.TB, instance string, sites int, salt int) []byte {
	b.Helper()
	p := &analyzer.Profile{App: "Bench", Workload: "hot"}
	for s := 0; s < sites; s++ {
		trace := fmt.Sprintf("Bench.serve:1;Handler.call:%d", 10+s)
		if s > 0 {
			trace = fmt.Sprintf("%s;Worker.run:%d", trace, 100+salt)
		}
		n := uint64(48 + 7*s)
		p.Sites = append(p.Sites, analyzer.SiteStat{
			Trace:     trace,
			Allocated: n,
			Buckets:   []uint64{n / 3, n - n/3 - n/5, n / 5},
		})
	}
	body, err := json.Marshal(p)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// benchUpload drives one evidence upload through the handler.
func benchUpload(b testing.TB, srv *Server, w *benchWriter, instance string, body []byte) {
	b.Helper()
	req := httptest.NewRequest("POST", "/v1/evidence", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(InstanceHeader, instance)
	w.reset()
	srv.handleEvidence(w, req)
	if w.code != http.StatusOK {
		b.Fatalf("upload status %d", w.code)
	}
}

// BenchmarkEvidenceUploadHot measures the evidence-upload handler in its
// steady state: 16 instances' evidence already cached, each iteration one
// further upload rotating through the fleet (so every upload replaces a
// cached instance's evidence for an already-warm key).
func BenchmarkEvidenceUploadHot(b *testing.B) {
	store, err := profilestore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	srv := New(store, Options{})
	const instances = 16
	const sites = 24
	bodies := make([][]byte, instances)
	names := make([]string, instances)
	w := &benchWriter{h: make(http.Header)}
	for i := range bodies {
		names[i] = fmt.Sprintf("inst-%02d", i)
		bodies[i] = benchEvidence(b, names[i], sites, i)
		benchUpload(b, srv, w, names[i], bodies[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % instances
		benchUpload(b, srv, w, names[k], bodies[k])
	}
	b.StopTimer()
	// Merges coalesce behind the uploads; drain them before the
	// benchmark's TempDir is torn down under the worker's writes.
	srv.Flush()
}

// BenchmarkPlanFetch304 measures the conditional plan fetch fast path: the
// plan is cached and the client's If-None-Match matches, so the handler
// answers 304 from memory.
func BenchmarkPlanFetch304(b *testing.B) {
	store, err := profilestore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	srv := New(store, Options{})
	w := &benchWriter{h: make(http.Header)}
	benchUpload(b, srv, w, "inst-0", benchEvidence(b, "inst-0", 24, 0))
	etag := w.h.Get("ETag")
	if etag == "" {
		// The upload response may not carry the merged ETag in every
		// pipeline mode; fetch once to learn the current version.
		req := httptest.NewRequest("GET", "/v1/plan?app=Bench&workload=hot", nil)
		w.reset()
		srv.handlePlan(w, req)
		etag = w.h.Get("ETag")
		if w.code != http.StatusOK || etag == "" {
			b.Fatalf("warmup fetch = %d, etag %q", w.code, etag)
		}
	}
	req := httptest.NewRequest("GET", "/v1/plan?app=Bench&workload=hot", nil)
	req.Header.Set("If-None-Match", etag)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		srv.handlePlan(w, req)
		if w.code != http.StatusNotModified {
			b.Fatalf("fetch status %d, want 304", w.code)
		}
	}
}
