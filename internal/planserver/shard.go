package planserver

import (
	"errors"
	"fmt"
	"sync"

	"polm2/internal/analyzer"
	"polm2/internal/metrics"
	"polm2/internal/profilestore"
	"polm2/internal/rollout"
)

// shard is the per-(app, workload) slice of the daemon's state: the
// in-memory evidence cache, the encoded fleet plan, and the coalescing
// merge pipeline's bookkeeping. Uploads and fetches for different keys
// touch different shards and never contend; everything inside one shard
// is guarded by its own mutex.
//
// The write path is a coalescing pipeline: an accepted upload persists
// its evidence document (the durable log), updates the cache in place,
// bumps dirty, and makes sure a merge worker is scheduled. The worker
// drains: as long as dirty is ahead of mergedGen it snapshots the full
// evidence set, recomputes the fleet plan once for the whole backlog,
// persists and publishes it, then re-checks. However many uploads land
// while one merge is in flight, they are all covered by the next pass —
// a batch of N concurrent uploads costs at most two merges (one in
// flight when the batch starts, one covering the batch), not N.
type shard struct {
	key profilestore.Key

	mu   sync.Mutex
	cond *sync.Cond // broadcast when mergedGen, plan or lastErr move

	// evidence is the in-memory image of the store's per-instance
	// evidence log: each instance's latest validated upload. nil until
	// first use; populated from disk exactly once per daemon lifetime
	// (the lazy rebuild after a restart), then maintained in place —
	// steady-state uploads and merges never read the store.
	evidence map[string]*analyzer.Profile

	// stamps holds each evidence document's replication stamp (sync.go),
	// maintained in lockstep with evidence: advanced on every accepted
	// upload, adopted verbatim on every peer pull, advertised in sync
	// digests. Instances absent here (legacy documents) carry the zero
	// stamp and lose every comparison.
	stamps map[string]profilestore.Stamp

	// plan is the encoded, content-addressed fleet plan being served.
	// gen counts installs, so a cold store load racing a merge publish
	// can detect that it lost and must not overwrite the newer plan.
	plan   *cachedPlan
	gen    uint64
	flight *flight

	// dirty counts accepted uploads; mergedGen the uploads covered by
	// the published plan (or by a recorded failure). merging is true
	// while a worker is scheduled or draining.
	dirty     uint64
	mergedGen uint64
	merging   bool

	// lastErr is the most recent merge failure, errGen the backlog
	// generation it covered. A successful pass clears it.
	lastErr error
	errGen  uint64

	// acc is the reusable merge accumulator (parsed traces and fold
	// state survive across merges of this key); inputs is the worker's
	// snapshot scratch. Both are touched only by the shard's single
	// worker, which never overlaps itself.
	acc    *analyzer.MergeAccumulator
	inputs []*analyzer.Profile

	// instGauge is this key's evidence_instances gauge, resolved lazily on
	// the first accepted upload (so plan probes for unknown keys never
	// register metrics) and cached so the upload path never rebuilds the
	// labeled metric name.
	instGauge *metrics.Gauge

	// Canary rollout state (rollout.go); all nil/zero with rollout off.
	// In rollout mode, plan above is the *stable* (last-good) plan and
	// cand is the staged candidate a canary cohort is testing; roll is
	// the key's state machine, restored from the persisted rollout
	// document once (rollLoaded). stableProf/candProf retain the decoded
	// profiles so the document can embed both plan bodies.
	roll       *rollout.Tracker
	rollLoaded bool
	cand       *cachedPlan
	stableProf *analyzer.Profile
	candProf   *analyzer.Profile
	cohort     map[string]bool // cached canary cohort over evidence instances
	cohortN    int             // instance count the cohort was computed for
	stateGauge *metrics.Gauge  // this key's rollout_state gauge
}

func newShard(k profilestore.Key) *shard {
	sh := &shard{key: k}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// shard returns the state for k, creating it on first touch.
func (s *Server) shard(k profilestore.Key) *shard {
	s.shardMu.RLock()
	sh := s.shards[k]
	s.shardMu.RUnlock()
	if sh != nil {
		return sh
	}
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if sh = s.shards[k]; sh == nil {
		sh = newShard(k)
		s.shards[k] = sh
	}
	return sh
}

// dropIfEmpty removes a shard that never came to hold anything — created
// by a plan fetch for a key the store has never seen — so probing random
// keys cannot grow the shard map without bound. A shard with evidence, a
// plan, pending work or an in-flight load stays.
func (s *Server) dropIfEmpty(sh *shard) {
	s.shardMu.Lock()
	sh.mu.Lock()
	if len(sh.evidence) == 0 && sh.plan == nil && sh.dirty == 0 && sh.flight == nil && !sh.merging {
		delete(s.shards, sh.key)
	}
	sh.mu.Unlock()
	s.shardMu.Unlock()
}

// loadEvidenceLocked returns the shard's evidence cache, populating it
// from the store on first touch (caller holds sh.mu). A store holding a
// plan but no evidence — seeded offline, or written by a pre-evidence
// build — contributes that plan once, as baseline evidence under
// seedInstance.
func (s *Server) loadEvidenceLocked(sh *shard) (map[string]*analyzer.Profile, error) {
	if sh.evidence != nil {
		return sh.evidence, nil
	}
	s.evidenceLoads.Inc()
	docs, err := s.store.EvidenceDocs(sh.key.App, sh.key.Workload)
	if err != nil {
		return nil, err
	}
	ev := make(map[string]*analyzer.Profile, len(docs))
	sh.stamps = make(map[string]profilestore.Stamp, len(docs))
	for inst, d := range docs {
		ev[inst] = d.Profile
		if !d.Stamp.IsZero() {
			sh.stamps[inst] = d.Stamp
		}
	}
	if len(ev) == 0 {
		seed, err := s.store.Get(sh.key.App, sh.key.Workload)
		if err != nil && !errors.Is(err, profilestore.ErrNotFound) {
			return nil, err
		}
		if seed != nil && checkEvidence(seed) == nil {
			if err := s.store.PutEvidence(seedInstance, seed); err != nil {
				return nil, err
			}
			ev[seedInstance] = seed
		}
	}
	sh.evidence = ev
	return ev, nil
}

// ensureWorkerLocked guarantees a merge worker is scheduled for the shard
// (caller holds sh.mu). The returned func, when non-nil, must be invoked
// after releasing the lock — scheduling happens outside the lock so an
// inline scheduler (tests) can run the worker on the caller's goroutine.
func (s *Server) ensureWorkerLocked(sh *shard) func() {
	if sh.merging {
		return nil
	}
	sh.merging = true
	work := func() { sh.drain(s) }
	if s.opts.Schedule != nil {
		sched := s.opts.Schedule
		return func() { sched(work) }
	}
	return func() { go work() }
}

// awaitCovered blocks until the pipeline has covered backlog generation
// gen (caller holds sh.mu, which is held again on return) and returns the
// failure that covered it, if any. Without an injected Pump the wait parks
// on the shard's condition variable until a worker goroutine catches up;
// with one (single-threaded simulations) the waiter drives the scheduled
// work itself, and a pump that runs dry while the generation is still
// uncovered is a stalled pipeline — reported, never deadlocked.
func (s *Server) awaitCovered(sh *shard, gen uint64) error {
	for sh.mergedGen < gen {
		if s.opts.Pump == nil {
			sh.cond.Wait()
			continue
		}
		sh.mu.Unlock()
		progressed := s.opts.Pump()
		sh.mu.Lock()
		if !progressed && sh.mergedGen < gen {
			return fmt.Errorf("planserver: merge pipeline stalled waiting for generation %d of %s (nothing scheduled left to pump)", gen, sh.key)
		}
	}
	if sh.lastErr != nil && sh.errGen >= gen {
		return sh.lastErr
	}
	return nil
}

// drain is the merge worker: it runs merges until the published plan
// covers every accepted upload, then exits. At most one drain runs per
// shard at a time.
func (sh *shard) drain(s *Server) {
	sh.mu.Lock()
	for sh.mergedGen < sh.dirty {
		target := sh.dirty
		if sh.acc == nil {
			opts := s.opts.Merge
			opts.App, opts.Workload = sh.key.App, sh.key.Workload
			sh.acc = analyzer.NewMergeAccumulator(opts)
		}
		acc := sh.acc
		// Snapshot the inputs: profiles are immutable once accepted, so
		// the merge runs without the shard lock and uploads (including
		// replacements of the very pointers being read) proceed freely.
		sh.inputs = sh.inputs[:0]
		for _, p := range sh.evidence {
			sh.inputs = append(sh.inputs, p)
		}
		inputs := sh.inputs
		sh.mu.Unlock()

		acc.Reset()
		var err error
		for _, p := range inputs {
			if err = acc.Add(p); err != nil {
				break
			}
		}
		var merged *analyzer.Profile
		if err == nil {
			merged, err = acc.Merge()
		}
		var c *cachedPlan
		if err == nil {
			// The plan file is a convenience copy — the evidence log is
			// the durable truth — but keeping it fresh per batch means a
			// restarted daemon (or polm2-inspect) sees the fleet plan
			// without a rebuild.
			if perr := s.store.Put(merged); perr != nil {
				err = perr
			}
		}
		if err == nil {
			c, err = encodePlan(merged)
		}

		sh.mu.Lock()
		if err == nil && s.ro != nil {
			// Rollout mode: the merged plan is staged through the canary
			// state machine instead of installed fleet-wide; a persistence
			// failure is a merge failure (the previous plan stands).
			err = s.observeMergeLocked(sh, merged, c)
		}
		covered := target - sh.mergedGen
		sh.mergedGen = target
		if err != nil {
			// Every failure here is server-side: the handler validated the
			// upload (labels, trace parseability, bucket consistency)
			// before accepting it, so a merge that still fails is rooted
			// in stored state or the store itself. The plan stays at its
			// previous version — staleness, not outage — and the next
			// accepted upload retries the whole backlog.
			sh.lastErr, sh.errGen = err, target
			s.storeErrs.Inc()
		} else {
			sh.lastErr = nil
			if s.ro == nil {
				sh.plan = c
				sh.gen++
			}
			s.merges.Inc()
			if covered > 1 {
				s.coalesced.Add(covered - 1)
			}
		}
		sh.cond.Broadcast()
	}
	sh.merging = false
	sh.mu.Unlock()
}
