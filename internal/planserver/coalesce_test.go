package planserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/profilestore"
)

// gateScheduler is a planserver.Options.Schedule that can hold scheduled
// merge workers back and release them later, making batching observable:
// uploads accepted while the gate is closed are all covered by the single
// drain that runs on release.
type gateScheduler struct {
	mu      sync.Mutex
	closed  bool
	pending []func()
}

func (g *gateScheduler) schedule(work func()) {
	g.mu.Lock()
	if g.closed {
		g.pending = append(g.pending, work)
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	go work()
}

func (g *gateScheduler) close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
}

func (g *gateScheduler) release() {
	g.mu.Lock()
	pending := g.pending
	g.pending, g.closed = nil, false
	g.mu.Unlock()
	for _, work := range pending {
		go work()
	}
}

// TestCoalescingConcurrentUploads is the pipeline's core contract under
// -race: 64 concurrent uploads for one key are all accepted while no
// merge can run, then a single released drain covers the whole batch.
// The final plan must equal the serial merge of every instance's
// evidence, the batch must cost one merge (not 64), and plans observed
// by concurrent readers must only ever be a complete published version —
// never torn, never older than one batch.
func TestCoalescingConcurrentUploads(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateScheduler{}
	srv := New(store, Options{Schedule: gate.schedule})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Warm the key so async uploads have a published plan to respond
	// with; the warm instance's evidence stays in the final merge.
	warmProfile := evidence("Fleet", "burst", site("Fleet.serve:1;Warm.init:2", 3, 7))
	resp := postEvidence(t, ts.URL, "inst-warm", warmProfile)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm upload = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = fetchPlan(t, ts.URL, "Fleet", "burst", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm fetch = %d", resp.StatusCode)
	}
	warmTag := resp.Header.Get("ETag")

	gate.close()

	const uploaders = 64
	profiles := make([]*analyzer.Profile, uploaders)
	for i := range profiles {
		n := uint64(32 + i)
		profiles[i] = evidence("Fleet", "burst",
			site("Fleet.serve:1;Db.put:5", n/4, n-n/4),
			site(fmt.Sprintf("Fleet.serve:1;Worker.tick:%d", 100+i), 2, 14))
	}

	var uploadWg, readerWg sync.WaitGroup
	errs := make(chan error, uploaders+1)
	stopReads := make(chan struct{})
	// A reader hammers GET /v1/plan throughout: every response must be a
	// complete published plan — the warm one or (after release) the batch
	// merge — identified by its ETag and intact JSON body.
	finalTags := make(map[string]bool)
	var finalMu sync.Mutex
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/v1/plan?app=Fleet&workload=burst")
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("reader fetch = %d, %v", resp.StatusCode, err)
				return
			}
			var p analyzer.Profile
			if err := json.Unmarshal(body, &p); err != nil {
				errs <- fmt.Errorf("reader saw torn plan: %v", err)
				return
			}
			if tag := resp.Header.Get("ETag"); tag != warmTag {
				finalMu.Lock()
				finalTags[tag] = true
				finalMu.Unlock()
			}
		}
	}()
	for i := 0; i < uploaders; i++ {
		uploadWg.Add(1)
		go func(i int) {
			defer uploadWg.Done()
			resp := postEvidence(t, ts.URL, fmt.Sprintf("inst-%02d", i), profiles[i])
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("upload %d = %d", i, resp.StatusCode)
				return
			}
			// With the gate closed no merge can land, so the response
			// serves the one published plan: the warm version. Anything
			// else means the handler waited on (or ran) a merge.
			if tag := resp.Header.Get("ETag"); tag != warmTag {
				errs <- fmt.Errorf("upload %d responded with ETag %s, want the published %s", i, tag, warmTag)
			}
		}(i)
	}

	// Wait for the uploads with the gate still closed, then release the
	// backlog and let the reader observe the transition too.
	uploadWg.Wait()
	mergesBefore := srv.Metrics().Counter("evidence_merge_total").Value()
	if mergesBefore != 1 {
		t.Fatalf("merges with gate closed = %d, want 1 (the warm upload)", mergesBefore)
	}
	gate.release()
	srv.Flush()
	close(stopReads)
	readerWg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// One drain covered the entire 64-upload backlog.
	merges := srv.Metrics().Counter("evidence_merge_total").Value()
	if merges > 2 {
		t.Fatalf("evidence_merge_total = %d, want ≤2 for a 64-upload batch", merges)
	}
	if got := srv.Metrics().Counter("evidence_upload_total").Value(); got != uploaders+1 {
		t.Fatalf("evidence_upload_total = %d, want %d", got, uploaders+1)
	}
	if got := srv.Metrics().Counter("evidence_coalesced_total").Value(); got < uploaders-1 {
		t.Fatalf("evidence_coalesced_total = %d, want ≥%d", got, uploaders-1)
	}

	// The batched result is byte-identical to the serial merge of every
	// instance's evidence (order-independence end to end).
	want, err := analyzer.MergeProfiles(analyzer.Options{App: "Fleet", Workload: "burst"},
		append([]*analyzer.Profile{warmProfile}, profiles...)...)
	if err != nil {
		t.Fatal(err)
	}
	wantPlan, err := encodePlan(want)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := fetchPlan(t, ts.URL, "Fleet", "burst", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final fetch = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != wantPlan.etag {
		t.Fatalf("final plan ETag %s, want serial-merge %s", got, wantPlan.etag)
	}
	if string(body) != string(wantPlan.body) {
		t.Fatalf("final plan body differs from the serial merge")
	}

	// The reader only ever saw two versions: warm and final.
	finalMu.Lock()
	defer finalMu.Unlock()
	for tag := range finalTags {
		if tag != wantPlan.etag {
			t.Fatalf("reader observed plan version %s, want only %s or the warm %s", tag, wantPlan.etag, warmTag)
		}
	}
}

// TestCrossKeyIndependence pins the sharding: a merge stuck on one key
// must not block uploads (or merges) for any other key, and must not even
// block further uploads for its own key — the handler path takes no
// global merge lock and never waits on a running merge.
func TestCrossKeyIndependence(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var scheduled int
	var mu sync.Mutex
	// Block only the first scheduled worker (key A's); everything after
	// runs normally.
	sched := func(work func()) {
		mu.Lock()
		scheduled++
		first := scheduled == 1
		mu.Unlock()
		if first {
			go func() { <-gate; work() }()
			return
		}
		go work()
	}
	srv := New(store, Options{Schedule: sched})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Seed both keys and warm their plan caches so async uploads answer
	// without waiting for a first merge.
	for _, key := range []string{"alpha", "beta"} {
		seeded, err := analyzer.MergeProfiles(analyzer.Options{},
			evidence(key, "w", site("Main.run:1;Init.go:2", 5, 15)))
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(seeded); err != nil {
			t.Fatal(err)
		}
		resp, _ := fetchPlan(t, ts.URL, key, "w", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm fetch %s = %d", key, resp.StatusCode)
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Key alpha's worker is now stuck behind the gate. Its uploads
		// must still be accepted immediately...
		for i := 0; i < 2; i++ {
			resp := postEvidence(t, ts.URL, fmt.Sprintf("a-%d", i), evidence("alpha", "w",
				site("Main.run:1;Db.put:5", 10, 30)))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("alpha upload %d = %d", i, resp.StatusCode)
			}
		}
		// ... and key beta's whole pipeline — upload AND merge — must run
		// to completion while alpha's merge is blocked.
		resp := postEvidence(t, ts.URL, "b-0", evidence("beta", "w",
			site("Main.run:1;Cache.get:7", 8, 24)))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("beta upload = %d", resp.StatusCode)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("uploads blocked behind a stuck merge on another key")
	}
	if t.Failed() {
		t.FailNow()
	}

	// Beta's merge lands (poll: its worker runs concurrently with us);
	// alpha's never does while the gate holds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := fetchPlan(t, ts.URL, "beta", "w", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("beta fetch = %d", resp.StatusCode)
		}
		var p analyzer.Profile
		if err := json.Unmarshal(body, &p); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, s := range p.Sites {
			total += s.Allocated
		}
		if total == 20+32 { // adopted seed evidence + b-0
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("beta plan never merged b-0 (allocated %d)", total)
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Metrics().Counter("evidence_merge_total").Value(); got != 1 {
		t.Fatalf("evidence_merge_total = %d, want 1 (beta only; alpha is gated)", got)
	}

	// Release alpha; its backlog (two uploads) drains in one batch.
	close(gate)
	srv.Flush()
	resp, body := fetchPlan(t, ts.URL, "alpha", "w", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha fetch after release = %d", resp.StatusCode)
	}
	var p analyzer.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, s := range p.Sites {
		total += s.Allocated
	}
	if total != 20+40+40 { // adopted seed + a-0 + a-1
		t.Fatalf("alpha plan allocated = %d, want 100", total)
	}
}

// TestSteadyStateNoDiskReads pins the evidence cache: after a key's first
// upload populates it, further uploads merge entirely from memory. The
// test deletes the on-disk evidence log mid-run — uploads keep merging
// correctly anyway, which no re-reading implementation could do.
func TestSteadyStateNoDiskReads(t *testing.T) {
	srv, ts, store := newTestServer(t)
	trace := "Main.run:10;Db.put:5"
	for i, n := range []uint64{100, 200} {
		resp := postEvidence(t, ts.URL, fmt.Sprintf("inst-%d", i), evidence("Cassandra", "WI",
			site(trace, n/4, n-n/4)))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm upload %d = %d", i, resp.StatusCode)
		}
	}
	if got := srv.Metrics().Counter("evidence_load_total").Value(); got != 1 {
		t.Fatalf("evidence_load_total after warmup = %d, want 1 (the first upload's cold rebuild)", got)
	}

	// Wipe the evidence log. Only the in-memory cache can merge now.
	if err := os.RemoveAll(filepath.Join(store.Dir(), "evidence")); err != nil {
		t.Fatal(err)
	}
	resp := postEvidence(t, ts.URL, "inst-0", evidence("Cassandra", "WI", site(trace, 75, 225)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steady-state replace = %d", resp.StatusCode)
	}
	resp = postEvidence(t, ts.URL, "inst-2", evidence("Cassandra", "WI", site(trace, 10, 40)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steady-state new instance = %d", resp.StatusCode)
	}

	resp2, body := fetchPlan(t, ts.URL, "Cassandra", "WI", "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("fetch = %d", resp2.StatusCode)
	}
	var p analyzer.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, s := range p.Sites {
		total += s.Allocated
	}
	if total != 300+200+50 {
		t.Fatalf("merged allocated = %d, want 550 (inst-0 replaced + inst-1 cached + inst-2 new)", total)
	}
	if got := srv.Metrics().Counter("evidence_load_total").Value(); got != 1 {
		t.Fatalf("evidence_load_total = %d, want 1 — steady-state uploads must not read the store's evidence log", got)
	}
	// Plan serving never needed a store load either: every fetch was
	// answered from the merge pipeline's published plan.
	if got := srv.Metrics().Counter("plan_load_total").Value(); got != 0 {
		t.Fatalf("plan_load_total = %d, want 0", got)
	}
}

// TestPlanRebuildFromEvidence: the plan file is a convenience copy and the
// evidence log the durable truth — with the plan file gone (lost publish,
// partial restore), a cold fetch rebuilds the identical plan through the
// merge pipeline and re-persists it.
func TestPlanRebuildFromEvidence(t *testing.T) {
	_, ts, store := newTestServer(t)
	resp := postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI",
		site("Main.run:10;Db.put:5", 5, 95)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp = postEvidence(t, ts.URL, "inst-2", evidence("Cassandra", "WI",
		site("Main.run:10;Db.put:5", 10, 40)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	wantTag := resp.Header.Get("ETag")
	if wantTag == "" {
		t.Fatal("upload response missing ETag")
	}
	if err := store.Delete("Cassandra", "WI"); err != nil {
		t.Fatal(err)
	}

	// A fresh daemon over the plan-less store: the cold fetch must serve
	// the merge of the surviving evidence, not a 404.
	srv2 := New(store, Options{SyncMerges: true})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	resp2, body := fetchPlan(t, ts2.URL, "Cassandra", "WI", "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cold fetch after plan loss = %d, want 200 (rebuild from evidence)", resp2.StatusCode)
	}
	if got := resp2.Header.Get("ETag"); got != wantTag {
		t.Fatalf("rebuilt plan ETag %s, want %s", got, wantTag)
	}
	var p analyzer.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 1 || p.Sites[0].Allocated != 150 {
		t.Fatalf("rebuilt plan = %+v, want the 150-allocation merge", p.Sites)
	}
	// The rebuild re-persisted the plan file.
	if _, err := store.Get("Cassandra", "WI"); err != nil {
		t.Fatalf("plan file not re-persisted: %v", err)
	}
}

// TestPlanFetch304ZeroAllocs pins the conditional-fetch fast path: once a
// plan is cached, a 304 answer allocates nothing — no query map, no
// header value slices, no metric name building.
func TestPlanFetch304ZeroAllocs(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, Options{SyncMerges: true})
	w := &benchWriter{h: make(http.Header)}
	benchUpload(t, srv, w, "inst-0", benchEvidence(t, "inst-0", 8, 0))
	req := httptest.NewRequest("GET", "/v1/plan?app=Bench&workload=hot", nil)
	w.reset()
	srv.handlePlan(w, req)
	etag := w.h.Get("ETag")
	if w.code != http.StatusOK || etag == "" {
		t.Fatalf("warm fetch = %d, etag %q", w.code, etag)
	}
	req.Header.Set("If-None-Match", etag)

	allocs := testing.AllocsPerRun(200, func() {
		w.reset()
		srv.handlePlan(w, req)
		if w.code != http.StatusNotModified {
			t.Fatalf("fetch = %d, want 304", w.code)
		}
	})
	if allocs != 0 {
		t.Fatalf("conditional plan fetch allocates %.1f per request, want 0", allocs)
	}
}

// TestQueryParam checks the allocation-free query parser against the
// stdlib one over the shapes the daemon sees (and a few it shouldn't).
func TestQueryParam(t *testing.T) {
	cases := []string{
		"app=Cassandra&workload=WI",
		"workload=WI&app=Cassandra",
		"app=&workload=WI",
		"app=Cassandra",
		"",
		"app",
		"app=a%20b&workload=w%2Fx",
		"app=a+b&workload=c",
		"application=nope&app=yes",
		"app=first&app=second",
		"workload=only",
		"app=%zz&workload=ok",
	}
	for _, raw := range cases {
		want, err := url.ParseQuery(raw)
		if err != nil {
			// The stdlib rejects the whole string; ours returns "" for the
			// malformed value and must not panic.
			for _, key := range []string{"app", "workload"} {
				queryParam(raw, key)
			}
			continue
		}
		for _, key := range []string{"app", "workload"} {
			if got := queryParam(raw, key); got != want.Get(key) {
				t.Errorf("queryParam(%q, %q) = %q, want %q", raw, key, got, want.Get(key))
			}
		}
	}
}
