package planserver

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestUnknownKeyProbesLeakNothing hammers GET /v1/plan with unknown keys —
// the probe traffic a daemon on an open port actually receives — from many
// goroutines, mixing distinct keys with contended repeats of the same key,
// and then asserts the probes left no trace: no shards surviving in the
// shard map (dropIfEmpty must win every interleaving with the in-flight
// loads) and no labeled evidence_instances gauges registered (the gauge is
// resolved lazily on the first accepted upload precisely so probes cannot
// mint metrics). Runs under -race in CI's planserver job.
func TestUnknownKeyProbesLeakNothing(t *testing.T) {
	srv, ts, _ := newTestServer(t)

	const probers = 16
	const probesPerWorker = 24
	var wg sync.WaitGroup
	errs := make(chan error, probers)
	for w := 0; w < probers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < probesPerWorker; i++ {
				// Half the probes contend on one shared unknown key, half
				// spread over per-worker keys, so both the flight-sharing
				// and the independent-shard paths race with dropIfEmpty.
				app := "ghost"
				if i%2 == 0 {
					app = fmt.Sprintf("ghost-%d", w)
				}
				resp, err := http.Get(fmt.Sprintf("%s/v1/plan?app=%s&workload=w%d", ts.URL, app, i))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNotFound {
					errs <- fmt.Errorf("probe %s/w%d = %d, want 404", app, i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	srv.shardMu.RLock()
	leaked := len(srv.shards)
	srv.shardMu.RUnlock()
	if leaked != 0 {
		t.Fatalf("%d shards leaked by unknown-key probes", leaked)
	}

	// The exposition must carry no labeled per-key gauge for any probed
	// key: gauges are minted on accepted uploads only.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metricsz", nil)
	srv.ServeHTTP(rec, req)
	if body := rec.Body.String(); strings.Contains(body, "evidence_instances{") {
		t.Fatalf("probes minted labeled gauges:\n%s", body)
	}
	if got := srv.Metrics().Counter("plan_miss_total").Value(); got != probers*probesPerWorker {
		t.Fatalf("plan_miss_total = %d, want %d", got, probers*probesPerWorker)
	}
}
