package planserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"polm2/internal/profilestore"
	"polm2/internal/rollout"
)

// rolloutServer builds a rollout-enabled server over its own store.
// MinReports 1 keeps lifecycle tests compact — one report per side
// decides; the gate itself is pinned by the rollout package's table test.
func rolloutServer(t *testing.T, store *profilestore.Store, cfg rollout.Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(store, Options{SyncMerges: true, Rollout: &cfg})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postFeedback(t *testing.T, url, instance string, rep *rollout.Report) *http.Response {
	t.Helper()
	body, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/v1/feedback", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if instance != "" {
		req.Header.Set(InstanceHeader, instance)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func feedbackReport(etag string, p99 time.Duration) *rollout.Report {
	return &rollout.Report{
		App: "Cassandra", Workload: "WI", ETag: etag,
		WindowEnd: time.Second, Pauses: 8,
		PauseP50: p99 / 2, PauseP99: p99,
		PromotionRate: 0.1, SurvivorRate: 0.3,
	}
}

// planETagFor fetches the plan as instance and returns the response ETag.
func planETagFor(t *testing.T, url, instance string) string {
	t.Helper()
	req, err := http.NewRequest("GET", url+"/v1/plan?app=Cassandra&workload=WI", nil)
	if err != nil {
		t.Fatal(err)
	}
	if instance != "" {
		req.Header.Set(InstanceHeader, instance)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan fetch as %q = %d", instance, resp.StatusCode)
	}
	return resp.Header.Get("ETag")
}

// splitCohort uploads evidence from both instances and returns (canary
// member, non-member) according to the deterministic cohort.
func splitCohort(cfg rollout.Config, a, b string) (string, string) {
	cohort := rollout.Cohort(cfg.Seed, []string{a, b}, cfg.CanaryFraction)
	if cohort[a] {
		return a, b
	}
	return b, a
}

// The full promote lifecycle over live HTTP: adopt, canary containment,
// decision, fleet-wide publish.
func TestRolloutPromoteLifecycle(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rollout.Config{CanaryFraction: 0.5, MinReports: 1, RegressionPct: 10, Seed: 42}
	srv, ts := rolloutServer(t, store, cfg)

	// First merge ever: adopted as stable, no canary to run.
	resp := postEvidence(t, ts.URL, "inst-a", evidence("Cassandra", "WI",
		site("Main.run:10;Db.put:5", 5, 95)))
	stable := resp.Header.Get("ETag")
	resp.Body.Close()
	if snap, ok := srv.RolloutSnapshot("Cassandra", "WI"); !ok || snap.State != "stable" || snap.StableETag != stable {
		t.Fatalf("after first merge: snapshot %+v ok=%v, want stable %s", snap, ok, stable)
	}

	// Second instance's evidence changes the merge: a canary opens.
	resp = postEvidence(t, ts.URL, "inst-b", evidence("Cassandra", "WI",
		site("Main.run:10;Cache.alloc:7", 80, 20)))
	resp.Body.Close()
	snap, _ := srv.RolloutSnapshot("Cassandra", "WI")
	if snap.State != "canary" || snap.StableETag != stable || snap.CandidateETag == "" {
		t.Fatalf("after second merge: snapshot %+v, want open canary over stable %s", snap, stable)
	}
	cand := snap.CandidateETag

	member, outsider := splitCohort(cfg, "inst-a", "inst-b")
	if got := planETagFor(t, ts.URL, member); got != cand {
		t.Fatalf("cohort member fetched %s, want candidate %s", got, cand)
	}
	if got := planETagFor(t, ts.URL, outsider); got != stable {
		t.Fatalf("non-member fetched %s, want stable %s", got, stable)
	}
	if got := planETagFor(t, ts.URL, ""); got != stable {
		t.Fatalf("headerless fetch got %s, want stable %s", got, stable)
	}
	if got := planETagFor(t, ts.URL, "inst-unknown"); got != stable {
		t.Fatalf("unknown instance fetched %s, want stable %s", got, stable)
	}

	// Healthy canary: baseline report, then a canary report within the
	// regression threshold → promote.
	if resp := postFeedback(t, ts.URL, outsider, feedbackReport(stable, 10*time.Millisecond)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("baseline feedback = %d", resp.StatusCode)
	}
	if resp := postFeedback(t, ts.URL, member, feedbackReport(cand, 10*time.Millisecond)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("canary feedback = %d", resp.StatusCode)
	}
	snap, _ = srv.RolloutSnapshot("Cassandra", "WI")
	if snap.State != "stable" || snap.StableETag != cand || snap.Promotions != 1 {
		t.Fatalf("after promote: snapshot %+v, want stable=%s with one promotion", snap, cand)
	}
	if got := planETagFor(t, ts.URL, outsider); got != cand {
		t.Fatalf("post-promote non-member fetched %s, want %s", got, cand)
	}

	kinds := ""
	for _, tr := range srv.RolloutTransitions() {
		kinds += tr.Kind + " "
	}
	if kinds != "adopt canary_start promote publish " {
		t.Fatalf("transition kinds = %q", kinds)
	}
	var buf bytes.Buffer
	srv.Metrics().WriteTo(&buf)
	for _, want := range []string{
		"rollout_state{app=\"Cassandra\",workload=\"WI\"} 0",
		"rollout_promotions_total 1",
		"rollout_rollbacks_total 0",
		"rollout_canary_total 1",
		"feedback_reports_total 2",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want+"\n")) {
			t.Errorf("metricsz missing %q in:\n%s", want, buf.String())
		}
	}
}

// Rollback quarantines the candidate: the regressed plan vanishes from
// every serving path and a re-merge of identical evidence stays withheld,
// while genuinely new evidence opens the next canary.
func TestRolloutRollbackAndQuarantine(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rollout.Config{CanaryFraction: 0.5, MinReports: 1, RegressionPct: 10, Seed: 42}
	srv, ts := rolloutServer(t, store, cfg)

	resp := postEvidence(t, ts.URL, "inst-a", evidence("Cassandra", "WI",
		site("Main.run:10;Db.put:5", 5, 95)))
	stable := resp.Header.Get("ETag")
	resp.Body.Close()
	poison := evidence("Cassandra", "WI", site("Main.run:10;Leak.grow:3", 0, 0, 100))
	resp = postEvidence(t, ts.URL, "inst-b", poison)
	resp.Body.Close()
	snap, _ := srv.RolloutSnapshot("Cassandra", "WI")
	cand := snap.CandidateETag

	member, outsider := splitCohort(cfg, "inst-a", "inst-b")
	postFeedback(t, ts.URL, outsider, feedbackReport(stable, 10*time.Millisecond))
	postFeedback(t, ts.URL, member, feedbackReport(cand, 50*time.Millisecond))

	snap, _ = srv.RolloutSnapshot("Cassandra", "WI")
	if snap.State != "rolled_back" || snap.StableETag != stable || snap.Rollbacks != 1 {
		t.Fatalf("after rollback: snapshot %+v, want rolled_back on stable %s", snap, stable)
	}
	if len(snap.Quarantined) != 1 || snap.Quarantined[0] != cand {
		t.Fatalf("quarantine = %v, want [%s]", snap.Quarantined, cand)
	}
	// The regressed plan is gone from every path, cohort member included.
	for _, inst := range []string{member, outsider, ""} {
		if got := planETagFor(t, ts.URL, inst); got != stable {
			t.Fatalf("post-rollback fetch as %q got %s, want stable %s", inst, got, stable)
		}
	}
	// Re-uploading the identical evidence re-merges to the quarantined
	// ETag: withheld, fleet stays on stable.
	resp = postEvidence(t, ts.URL, "inst-b", poison)
	if got := resp.Header.Get("ETag"); got != stable {
		t.Fatalf("re-merge of quarantined evidence served %s, want stable %s", got, stable)
	}
	resp.Body.Close()
	snap, _ = srv.RolloutSnapshot("Cassandra", "WI")
	if snap.State != "rolled_back" {
		t.Fatalf("quarantined re-merge moved state to %s", snap.State)
	}
	// New evidence → new ETag → next canary.
	resp = postEvidence(t, ts.URL, "inst-b", evidence("Cassandra", "WI",
		site("Main.run:10;Cache.alloc:7", 90, 10)))
	resp.Body.Close()
	snap, _ = srv.RolloutSnapshot("Cassandra", "WI")
	if snap.State != "canary" || snap.CandidateETag == cand {
		t.Fatalf("fresh evidence after rollback: snapshot %+v, want a new canary", snap)
	}
	var buf bytes.Buffer
	srv.Metrics().WriteTo(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("rollout_rollbacks_total 1\n")) ||
		!bytes.Contains(buf.Bytes(), []byte(fmt.Sprintf("rollout_state{app=\"Cassandra\",workload=\"WI\"} %d\n", int(rollout.StateCanary)))) {
		t.Errorf("metricsz after rollback+recanary:\n%s", buf.String())
	}
}

// A restarted daemon resumes from the persisted rollout document: stable
// plan, open canary, and quarantine all survive, and the plan file on
// disk (which holds the newest merge — the candidate) is never promoted
// to stable by the restart.
func TestRolloutRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := profilestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rollout.Config{CanaryFraction: 0.5, MinReports: 1, RegressionPct: 10, Seed: 42}
	_, ts := rolloutServer(t, store, cfg)
	resp := postEvidence(t, ts.URL, "inst-a", evidence("Cassandra", "WI",
		site("Main.run:10;Db.put:5", 5, 95)))
	stable := resp.Header.Get("ETag")
	resp.Body.Close()
	resp = postEvidence(t, ts.URL, "inst-b", evidence("Cassandra", "WI",
		site("Main.run:10;Cache.alloc:7", 80, 20)))
	resp.Body.Close()

	// "Restart": a fresh server over the same store directory.
	store2, err := profilestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := rolloutServer(t, store2, cfg)
	member, outsider := splitCohort(cfg, "inst-a", "inst-b")
	snapBefore, _ := func() (rollout.Snapshot, bool) {
		// Trigger the lazy restore via a fetch, then read the snapshot.
		planETagFor(t, ts2.URL, outsider)
		return srv2.RolloutSnapshot("Cassandra", "WI")
	}()
	if snapBefore.State != "canary" || snapBefore.StableETag != stable {
		t.Fatalf("restored snapshot %+v, want open canary over %s", snapBefore, stable)
	}
	if got := planETagFor(t, ts2.URL, outsider); got != stable {
		t.Fatalf("restarted daemon served %s to non-member, want stable %s", got, stable)
	}
	if got := planETagFor(t, ts2.URL, member); got != snapBefore.CandidateETag {
		t.Fatalf("restarted daemon served %s to member, want candidate %s", got, snapBefore.CandidateETag)
	}

	// Decide the restored canary: regression → rollback, then restart
	// again and confirm the quarantine is durable.
	postFeedback(t, ts2.URL, outsider, feedbackReport(stable, 10*time.Millisecond))
	postFeedback(t, ts2.URL, member, feedbackReport(snapBefore.CandidateETag, 80*time.Millisecond))
	store3, err := profilestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv3, ts3 := rolloutServer(t, store3, cfg)
	if got := planETagFor(t, ts3.URL, member); got != stable {
		t.Fatalf("after rollback+restart, member got %s, want stable %s", got, stable)
	}
	snap, ok := srv3.RolloutSnapshot("Cassandra", "WI")
	if !ok || snap.State != "rolled_back" || len(snap.Quarantined) != 1 {
		t.Fatalf("post-restart snapshot %+v ok=%v, want durable rolled_back + quarantine", snap, ok)
	}
}

// A store written by a rollout-disabled daemon has a plan file but no
// rollout document; the first rollout-enabled fetch adopts it as stable
// instead of treating the fleet's current plan as an unvetted candidate.
func TestRolloutAdoptsLegacyPlanFile(t *testing.T) {
	dir := t.TempDir()
	store, err := profilestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts, _ := func() (*Server, *httptest.Server, *profilestore.Store) {
		srv := New(store, Options{SyncMerges: true})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return srv, ts, store
	}()
	resp := postEvidence(t, ts.URL, "inst-a", evidence("Cassandra", "WI",
		site("Main.run:10;Db.put:5", 5, 95)))
	legacy := resp.Header.Get("ETag")
	resp.Body.Close()

	store2, err := profilestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := rolloutServer(t, store2, rollout.Config{MinReports: 1, Seed: 42})
	if got := planETagFor(t, ts2.URL, "inst-a"); got != legacy {
		t.Fatalf("rollout-enabled daemon served %s, want the legacy plan %s", got, legacy)
	}
	snap, ok := srv2.RolloutSnapshot("Cassandra", "WI")
	if !ok || snap.State != "stable" || snap.StableETag != legacy {
		t.Fatalf("legacy adoption snapshot %+v ok=%v, want stable %s", snap, ok, legacy)
	}
	trs := srv2.RolloutTransitions()
	if len(trs) != 1 || trs[0].Kind != "adopt" {
		t.Fatalf("legacy adoption transitions = %+v, want one adopt", trs)
	}
}

// With rollout disabled (the default), feedback is acknowledged and
// counted but decides nothing — and the counters appear in /metricsz only
// once a report has arrived, keeping the default exposition unchanged.
func TestFeedbackWithRolloutDisabled(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	var before bytes.Buffer
	srv.Metrics().WriteTo(&before)
	if bytes.Contains(before.Bytes(), []byte("feedback_reports_total")) {
		t.Fatalf("feedback counter pre-registered with rollout off:\n%s", before.String())
	}
	resp := postFeedback(t, ts.URL, "inst-1", feedbackReport(`"abc"`, 10*time.Millisecond))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("feedback with rollout off = %d, want 204", resp.StatusCode)
	}
	var after bytes.Buffer
	srv.Metrics().WriteTo(&after)
	if !bytes.Contains(after.Bytes(), []byte("feedback_reports_total 1\n")) {
		t.Fatalf("feedback not counted:\n%s", after.String())
	}
	if _, ok := srv.RolloutSnapshot("Cassandra", "WI"); ok {
		t.Fatalf("rollout snapshot exists with rollout disabled")
	}
}

func TestFeedbackRejects(t *testing.T) {
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := rolloutServer(t, store, rollout.Config{MinReports: 1})
	cases := []struct {
		name     string
		instance string
		body     []byte
	}{
		{"malformed json", "inst-1", []byte("{nope")},
		{"unknown field", "inst-1", []byte(`{"app":"a","workload":"w","etag":"e","bogus":1}`)},
		{"missing instance header", "", mustJSON(t, feedbackReport(`"e"`, time.Millisecond))},
		{"invalid report", "inst-1", []byte(`{"app":"a","workload":"w","etag":"e","pauses":-4}`)},
	}
	for _, tc := range cases {
		req, err := http.NewRequest("POST", ts.URL+"/v1/feedback", bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if tc.instance != "" {
			req.Header.Set(InstanceHeader, tc.instance)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	var buf bytes.Buffer
	srv.Metrics().WriteTo(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("feedback_reject_total 4\n")) {
		t.Errorf("rejects not counted:\n%s", buf.String())
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
