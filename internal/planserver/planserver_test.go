package planserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"polm2/internal/analyzer"
	"polm2/internal/profilestore"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *profilestore.Store) {
	t.Helper()
	store, err := profilestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// SyncMerges: these tests assert on upload responses (the returned
	// ETag and body must be the merge including the upload itself) and on
	// exact per-upload merge counts, which only the synchronous pipeline
	// guarantees. The async default is exercised by the coalescing and
	// fleet-load tests.
	srv := New(store, Options{SyncMerges: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, store
}

// evidence builds one instance's upload: a profile carrying only site
// evidence.
func evidence(app, workload string, sites ...analyzer.SiteStat) *analyzer.Profile {
	return &analyzer.Profile{App: app, Workload: workload, Sites: sites}
}

func site(trace string, buckets ...uint64) analyzer.SiteStat {
	var total uint64
	for _, n := range buckets {
		total += n
	}
	return analyzer.SiteStat{Trace: trace, Allocated: total, Buckets: buckets}
}

func postEvidence(t *testing.T, url, instance string, p *analyzer.Profile) *http.Response {
	t.Helper()
	body, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, url, instance, body)
}

func postRaw(t *testing.T, url, instance string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/evidence", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if instance != "" {
		req.Header.Set(InstanceHeader, instance)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func fetchPlan(t *testing.T, url, app, workload, etag string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", fmt.Sprintf("%s/v1/plan?app=%s&workload=%s", url, app, workload), nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestPlanFetchNotFound(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, _ := fetchPlan(t, ts.URL, "Cassandra", "WI", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fetch of empty store = %d, want 404", resp.StatusCode)
	}
	resp, _ = fetchPlan(t, ts.URL, "", "", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fetch without key = %d, want 400", resp.StatusCode)
	}
}

func TestUploadFetchRoundTrip(t *testing.T) {
	srv, ts, store := newTestServer(t)
	resp := postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI",
		site("Main.run:10;Db.put:5", 5, 95)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload = %d", resp.StatusCode)
	}
	mergedETag := resp.Header.Get("ETag")
	resp.Body.Close()
	if mergedETag == "" {
		t.Fatal("upload response missing ETag")
	}

	// Fresh fetch returns the plan with the same ETag.
	resp, body := fetchPlan(t, ts.URL, "Cassandra", "WI", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != mergedETag {
		t.Fatalf("fetch ETag %s != upload ETag %s", got, mergedETag)
	}
	var p analyzer.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.App != "Cassandra" || p.Workload != "WI" || len(p.Sites) != 1 || p.Sites[0].Allocated != 100 {
		t.Fatalf("served plan = %+v", p)
	}

	// Conditional refetch with the current ETag is a 304.
	resp, _ = fetchPlan(t, ts.URL, "Cassandra", "WI", mergedETag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional refetch = %d, want 304", resp.StatusCode)
	}

	// A second instance's evidence merges; the ETag moves and the merged
	// evidence is the sum.
	resp = postEvidence(t, ts.URL, "inst-2", evidence("Cassandra", "WI",
		site("Main.run:10;Db.put:5", 10, 40)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second upload = %d", resp.StatusCode)
	}
	newETag := resp.Header.Get("ETag")
	resp.Body.Close()
	if newETag == mergedETag {
		t.Fatal("merge did not move the ETag")
	}
	resp, body = fetchPlan(t, ts.URL, "Cassandra", "WI", mergedETag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refetch after merge = %d, want 200 (stale ETag)", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Sites[0].Allocated != 150 {
		t.Fatalf("merged evidence = %d, want 150", p.Sites[0].Allocated)
	}

	// The store holds the merged plan too (durability, not just cache).
	stored, err := store.Get("Cassandra", "WI")
	if err != nil || stored.Sites[0].Allocated != 150 {
		t.Fatalf("stored plan = %+v, %v", stored, err)
	}

	if got := srv.Metrics().Counter("evidence_merge_total").Value(); got != 2 {
		t.Fatalf("evidence_merge_total = %d, want 2", got)
	}
	if got := srv.Metrics().Counter("plan_not_modified_total").Value(); got != 1 {
		t.Fatalf("plan_not_modified_total = %d, want 1", got)
	}
}

// TestUploadReplacesPerInstance pins the aggregation model: an instance's
// re-upload (a cumulative online re-profile, or a client retrying a lost
// response) replaces its earlier evidence instead of adding to it, so the
// fleet plan counts every instance exactly once however often it syncs.
func TestUploadReplacesPerInstance(t *testing.T) {
	srv, ts, store := newTestServer(t)
	trace := "Main.run:10;Db.put:5"

	fetchAllocated := func() uint64 {
		t.Helper()
		resp, body := fetchPlan(t, ts.URL, "Cassandra", "WI", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch = %d", resp.StatusCode)
		}
		var p analyzer.Profile
		if err := json.Unmarshal(body, &p); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, s := range p.Sites {
			total += s.Allocated
		}
		return total
	}

	// Instance 1 re-profiles three times, each upload cumulative over the
	// last; only the latest (300) may count.
	for _, n := range []uint64{100, 200, 300} {
		resp := postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI",
			site(trace, n/4, n-n/4)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload of %d = %d", n, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got := fetchAllocated(); got != 300 {
		t.Fatalf("after 3 cumulative re-uploads allocated = %d, want 300 (latest only)", got)
	}

	// A second instance adds once...
	resp := postEvidence(t, ts.URL, "inst-2", evidence("Cassandra", "WI", site(trace, 10, 40)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inst-2 upload = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	resp.Body.Close()
	if got := fetchAllocated(); got != 350 {
		t.Fatalf("after second instance allocated = %d, want 350", got)
	}
	// ... and a byte-identical retry (lost response replay) is a no-op:
	// same total, same ETag.
	resp = postEvidence(t, ts.URL, "inst-2", evidence("Cassandra", "WI", site(trace, 10, 40)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inst-2 retry = %d", resp.StatusCode)
	}
	retryTag := resp.Header.Get("ETag")
	resp.Body.Close()
	if got := fetchAllocated(); got != 350 {
		t.Fatalf("after retried upload allocated = %d, want 350 (idempotent)", got)
	}
	if retryTag != etag {
		t.Fatalf("retried identical upload moved the ETag: %s -> %s", etag, retryTag)
	}

	// The per-instance evidence is durable: a fresh server over the same
	// store reloads it and keeps replacing, not adding.
	srv2 := New(store, Options{SyncMerges: true})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	resp = postEvidence(t, ts2.URL, "inst-1", evidence("Cassandra", "WI", site(trace, 75, 225)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart upload = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, body := fetchPlan(t, ts2.URL, "Cassandra", "WI", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart fetch = %d", resp.StatusCode)
	}
	var p analyzer.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, s := range p.Sites {
		total += s.Allocated
	}
	if total != 350 {
		t.Fatalf("post-restart allocated = %d, want 350 (inst-1 replaced, inst-2 kept)", total)
	}
	// Every accepted upload is a merge, replacement or not.
	if got := srv.Metrics().Counter("evidence_merge_total").Value(); got != 5 {
		t.Fatalf("evidence_merge_total = %d, want 5", got)
	}
}

// TestSeedPlanCountsOnce: a plan seeded into the store offline (no
// evidence files) is adopted as baseline evidence exactly once, then
// instance uploads merge around it.
func TestSeedPlanCountsOnce(t *testing.T) {
	_, ts, store := newTestServer(t)
	seeded, err := analyzer.MergeProfiles(analyzer.Options{},
		evidence("Cassandra", "WI", site("Main.run:10;Db.put:5", 20, 80)))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(seeded); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp := postEvidence(t, ts.URL, "inst-1", evidence("Cassandra", "WI",
			site("Main.run:10;Db.put:5", 10, 40)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, body := fetchPlan(t, ts.URL, "Cassandra", "WI", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch = %d", resp.StatusCode)
	}
	var p analyzer.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 1 || p.Sites[0].Allocated != 150 {
		t.Fatalf("seeded+uploaded evidence = %+v, want one site with 100+50=150", p.Sites)
	}
}

func TestUploadRejections(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	valid := `{"app":"A","workload":"W","generations":0,"sites":[{"trace":"A.m:1","allocated":1,"buckets":[1],"gen":0}]}`
	cases := []struct {
		name     string
		instance string
		body     string
	}{
		{"not json", "inst-1", "{"},
		{"unlabeled", "inst-1", `{"generations":0}`},
		{"bucket mismatch", "inst-1", `{"app":"A","workload":"W","generations":0,"sites":[{"trace":"A.m:1","allocated":10,"buckets":[1,2],"gen":0}]}`},
		{"tainted overflow", "inst-1", `{"app":"A","workload":"W","generations":0,"sites":[{"trace":"A.m:1","allocated":3,"buckets":[1,2],"gen":0,"tainted":5}]}`},
		{"bad trace", "inst-1", `{"app":"A","workload":"W","generations":0,"sites":[{"trace":"nope","allocated":1,"buckets":[1],"gen":0}]}`},
		{"invalid directive", "inst-1", `{"app":"A","workload":"W","generations":0,"allocs":[{"loc":"A.m:1","gen":5,"direct":true}]}`},
		{"missing instance id", "", valid},
		{"oversized instance id", strings.Repeat("x", 129), valid},
	}
	for _, tc := range cases {
		resp := postRaw(t, ts.URL, tc.instance, []byte(tc.body))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if got := srv.Metrics().Counter("evidence_reject_total").Value(); got != uint64(len(cases)) {
		t.Fatalf("evidence_reject_total = %d, want %d", got, len(cases))
	}
	if got := srv.Metrics().Counter("evidence_merge_total").Value(); got != 0 {
		t.Fatalf("evidence_merge_total = %d, want 0", got)
	}
}

func TestHealthzAndMetricsz(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
	fetchPlan(t, ts.URL, "Cassandra", "WI", "") // a 404 miss, to move counters
	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"plan_fetch_total 1", "plan_miss_total 1", "evidence_merge_total 0"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metricsz missing %q:\n%s", want, body)
		}
	}
}

// TestMergeDuringLoadWins: a plan fetch whose store read races a
// concurrent evidence merge must not overwrite the freshly installed
// merged plan with its pre-merge read — that would serve a stale plan
// (and stale ETag) until the next merge. The test-only hook interleaves
// a full evidence upload between the flight's store read and its cache
// write, deterministically reproducing the race.
func TestMergeDuringLoadWins(t *testing.T) {
	srv, ts, store := newTestServer(t)
	seeded, err := analyzer.MergeProfiles(analyzer.Options{},
		evidence("Cassandra", "WI", site("Main.run:10;Db.put:5", 20, 80)))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(seeded); err != nil {
		t.Fatal(err)
	}

	var mergedTag string
	var once sync.Once
	srv.testHookAfterLoad = func() {
		// Runs on the GET handler's goroutine: only t.Error here.
		once.Do(func() {
			up, err := json.Marshal(evidence("Cassandra", "WI",
				site("Main.run:10;Db.put:5", 10, 40)))
			if err != nil {
				t.Error(err)
				return
			}
			req, err := http.NewRequest("POST", ts.URL+"/v1/evidence", bytes.NewReader(up))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(InstanceHeader, "inst-1")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("mid-load upload = %d", resp.StatusCode)
				return
			}
			mergedTag = resp.Header.Get("ETag")
		})
	}

	resp, body := fetchPlan(t, ts.URL, "Cassandra", "WI", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("racing fetch = %d", resp.StatusCode)
	}
	if mergedTag == "" {
		t.Fatal("hook never merged")
	}
	if got := resp.Header.Get("ETag"); got != mergedTag {
		t.Fatalf("racing fetch served ETag %s, want the merged plan's %s", got, mergedTag)
	}
	var p analyzer.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 1 || p.Sites[0].Allocated != 150 {
		t.Fatalf("racing fetch served %+v, want the merged evidence (150)", p.Sites)
	}
	// The cache must hold the merged plan too: a conditional fetch with
	// its ETag is a 304, not a stale 200.
	resp, _ = fetchPlan(t, ts.URL, "Cassandra", "WI", mergedTag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional fetch after race = %d, want 304", resp.StatusCode)
	}
}

// TestSingleFlightLoads checks that concurrent cold fetches of one key
// produce exactly one store load.
func TestSingleFlightLoads(t *testing.T) {
	srv, ts, store := newTestServer(t)
	prof := evidence("Cassandra", "WI", site("Main.run:10;Db.put:5", 5, 95))
	merged, err := analyzer.MergeProfiles(analyzer.Options{}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(merged); err != nil {
		t.Fatal(err)
	}
	const fetchers = 32
	var wg sync.WaitGroup
	errs := make(chan error, fetchers)
	start := make(chan struct{})
	for i := 0; i < fetchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Get(ts.URL + "/v1/plan?app=Cassandra&workload=WI")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All fetchers served; the store was loaded at most a handful of times
	// (exactly once unless the HTTP server admitted requests before the
	// first completed — single-flight makes concurrent ones share).
	loads := srv.Metrics().Counter("plan_load_total").Value()
	if loads == 0 || loads > 2 {
		t.Fatalf("plan_load_total = %d, want 1 (single-flight)", loads)
	}
	if got := srv.Metrics().Counter("plan_fetch_total").Value(); got != fetchers {
		t.Fatalf("plan_fetch_total = %d, want %d", got, fetchers)
	}
}
