package rollout

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"polm2/internal/core"
)

// cohortOracle is the spec restated independently: rank every id by
// core.DeriveSeed(seed, "rollout", id) ascending (ties by id) and take the
// first max(1, ceil(fraction*N)).
func cohortOracle(seed int64, ids []string, fraction float64) map[string]bool {
	if len(ids) == 0 {
		return map[string]bool{}
	}
	sorted := append([]string(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool {
		hi := uint64(core.DeriveSeed(seed, "rollout", sorted[i]))
		hj := uint64(core.DeriveSeed(seed, "rollout", sorted[j]))
		if hi != hj {
			return hi < hj
		}
		return sorted[i] < sorted[j]
	})
	k := int(math.Ceil(fraction * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	out := make(map[string]bool, k)
	for _, id := range sorted[:k] {
		out[id] = true
	}
	return out
}

// TestCohortFractionMonotone: the K% cohort is a superset of the (K-1)%
// cohort at every fleet size — growing the fraction only ever adds
// members, because the rank order is fixed and the cohort is its prefix.
func TestCohortFractionMonotone(t *testing.T) {
	for _, n := range []int{1, 2, 5, 32, 100} {
		ids := fleet(n)
		prev := map[string]bool{}
		for k := 1; k <= 100; k++ {
			cur := Cohort(7, ids, float64(k)/100)
			for id := range prev {
				if !cur[id] {
					t.Fatalf("n=%d: %s in %d%% cohort but not in %d%% cohort", n, id, k-1, k)
				}
			}
			if want := int(math.Ceil(float64(k) / 100 * float64(n))); len(cur) != max(1, want) {
				t.Fatalf("n=%d k=%d%%: cohort size %d, want max(1, %d)", n, k, len(cur), want)
			}
			prev = cur
		}
	}
}

// TestCohortMatchesOracle: the implementation agrees with the
// independently restated hash-rank spec across seeds and fractions.
func TestCohortMatchesOracle(t *testing.T) {
	ids := fleet(24)
	for _, seed := range []int64{1, 7, 42} {
		for _, f := range []float64{0.01, 0.25, 0.5, 0.99, 1} {
			got := Cohort(seed, ids, f)
			want := cohortOracle(seed, ids, f)
			if len(got) != len(want) {
				t.Fatalf("seed=%d f=%v: size %d, want %d", seed, f, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("seed=%d f=%v: oracle member %s missing", seed, f, id)
				}
			}
		}
	}
}

// TestCohortJoinStability: membership is stable under fleet growth. A
// joining id never reshuffles the survivors — its hash rank slots it into
// the fixed order, so at most the boundary member is displaced, and when
// the joiner ranks outside the cohort the old cohort carries over whole.
func TestCohortJoinStability(t *testing.T) {
	const frac = 0.25
	ids := fleet(16)
	before := Cohort(42, ids, frac)
	for j := 16; j < 48; j++ {
		joined := append(append([]string(nil), ids...), fmt.Sprintf("inst-%d", j))
		after := Cohort(42, joined, frac)
		kept := 0
		for id := range before {
			if after[id] {
				kept++
			}
		}
		if kept < len(before)-1 {
			t.Fatalf("join of inst-%d displaced %d existing members, want at most 1", j, len(before)-kept)
		}
		if !after[fmt.Sprintf("inst-%d", j)] && kept != len(before) {
			t.Fatalf("join of inst-%d stayed outside the cohort yet displaced a member", j)
		}
	}
}

// TestCohortEmptyFleet: no instances means no cohort — an empty non-nil
// map, never a panic and never a phantom member.
func TestCohortEmptyFleet(t *testing.T) {
	got := Cohort(1, nil, 0.25)
	if got == nil || len(got) != 0 {
		t.Fatalf("Cohort(empty fleet) = %v, want empty map", got)
	}
	got = Cohort(1, []string{}, 1)
	if got == nil || len(got) != 0 {
		t.Fatalf("Cohort(empty slice) = %v, want empty map", got)
	}
}

// TestCohortDegenerateFractions: out-of-range fractions clamp instead of
// panicking or emptying the cohort.
func TestCohortDegenerateFractions(t *testing.T) {
	ids := fleet(8)
	for _, f := range []float64{-1, 0, math.NaN()} {
		if got := Cohort(1, ids, f); len(got) != 2 { // clamps to the 0.25 default
			t.Errorf("Cohort(f=%v) size %d, want 2", f, len(got))
		}
	}
	if got := Cohort(1, ids, 99); len(got) != len(ids) {
		t.Errorf("Cohort(f=99) size %d, want %d", len(got), len(ids))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
