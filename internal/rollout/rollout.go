// Package rollout implements the deterministic canary rollout controller
// embedded in polm2d (DESIGN.md §14).
//
// Today-without-rollout, every merged plan is published fleet-wide the
// moment the merge lands. With rollout enabled, a new content ETag is
// instead staged: a deterministic canary cohort — instance-id hash in the
// first K% under core.DeriveSeed-stable bucketing — receives the candidate
// plan from GET /plan while everyone else keeps the last-good plan.
// Instances report per-window plan health (GC pause p50/p99, promotion and
// survivor rates) through POST /v1/feedback; the controller compares the
// canary window against the baseline window with a fixed decision rule
// (min-sample gate plus relative p99 regression threshold) and either
// promotes the candidate to the whole fleet or rolls back to last-good and
// quarantines the candidate ETag until new evidence produces a different
// plan.
//
// Everything here is pure state machine: no clocks, no goroutines, no I/O.
// The planserver owns plan bodies, persistence, metrics, and trace events;
// this package owns membership, attribution, and the decision.
package rollout

import (
	"fmt"
	"math"
	"sort"
	"time"

	"polm2/internal/core"
)

// State is one key's position in the rollout state machine.
//
//	Stable ──new etag──▶ Canary ──healthy──▶ Promoting ──▶ Stable
//	                       │
//	                       └──regressed──▶ RolledBack (etag quarantined)
//
// Promoting is the instant between the promote decision and the fleet-wide
// install; the planserver performs both under one lock, so the state is
// observable in transition records but never from a poll. RolledBack holds
// until new evidence produces a candidate with a fresh (non-quarantined)
// ETag, which opens the next canary.
type State int

const (
	// StateStable: the published plan is the stable plan and no candidate
	// is staged. Also the initial state before any plan exists.
	StateStable State = iota
	// StateCanary: a candidate is staged and served to the cohort only.
	StateCanary
	// StatePromoting: the candidate passed its canary window and is being
	// installed fleet-wide.
	StatePromoting
	// StateRolledBack: the last candidate regressed; the fleet is pinned
	// to the stable plan and the candidate's ETag is quarantined.
	StateRolledBack
)

func (s State) String() string {
	switch s {
	case StateStable:
		return "stable"
	case StateCanary:
		return "canary"
	case StatePromoting:
		return "promoting"
	case StateRolledBack:
		return "rolled_back"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ParseState inverts State.String; unknown names map to StateStable so a
// damaged persisted document degrades to the conservative state.
func ParseState(s string) State {
	switch s {
	case "canary":
		return StateCanary
	case "promoting":
		return StatePromoting
	case "rolled_back":
		return StateRolledBack
	}
	return StateStable
}

// Config fixes the rollout decision rule. The zero value is not usable;
// call Normalize (or let planserver do it) to apply defaults.
type Config struct {
	// CanaryFraction is K: the fraction of known instances bucketed into
	// the canary cohort. The cohort is never empty (minimum one instance).
	// Default 0.25.
	CanaryFraction float64
	// MinReports is the min-sample gate: no decision is made until both
	// the canary side and the baseline side have at least this many
	// feedback reports for the open canary window. Default 3.
	MinReports int
	// RegressionPct is the relative p99 regression threshold, in percent:
	// the candidate is rolled back when the canary-side weighted p99
	// exceeds the baseline-side weighted p99 by more than this much.
	// Default 10.
	RegressionPct float64
	// Seed feeds the cohort hash; the cohort for a given instance set is a
	// pure function of (Seed, instance ids), so membership is stable
	// across daemon restarts. Default 1.
	Seed int64
}

// Normalize returns cfg with defaults applied to unset fields and
// out-of-range fractions clamped into (0, 1].
func (cfg Config) Normalize() Config {
	if cfg.CanaryFraction <= 0 || math.IsNaN(cfg.CanaryFraction) {
		cfg.CanaryFraction = 0.25
	}
	if cfg.CanaryFraction > 1 {
		cfg.CanaryFraction = 1
	}
	if cfg.MinReports <= 0 {
		cfg.MinReports = 3
	}
	if cfg.RegressionPct <= 0 || math.IsNaN(cfg.RegressionPct) {
		cfg.RegressionPct = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Cohort buckets instances into the canary cohort: rank every instance by
// core.DeriveSeed(seed, "rollout", id) — a stable, well-mixed hash — and
// select the first ceil(fraction*N), never fewer than one. The result is a
// pure function of (seed, ids): stable across restarts, and an exact K%
// split at any fleet size. Ties on the hash (vanishingly rare) break by
// instance id so the selection stays total-ordered.
func Cohort(seed int64, ids []string, fraction float64) map[string]bool {
	if len(ids) == 0 {
		return map[string]bool{}
	}
	if fraction <= 0 || math.IsNaN(fraction) {
		fraction = 0.25
	}
	if fraction > 1 {
		fraction = 1
	}
	type ranked struct {
		id string
		h  uint64
	}
	rs := make([]ranked, 0, len(ids))
	for _, id := range ids {
		rs = append(rs, ranked{id: id, h: uint64(core.DeriveSeed(seed, "rollout", id))})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].h != rs[j].h {
			return rs[i].h < rs[j].h
		}
		return rs[i].id < rs[j].id
	})
	k := int(math.Ceil(fraction * float64(len(rs))))
	if k < 1 {
		k = 1
	}
	if k > len(rs) {
		k = len(rs)
	}
	cohort := make(map[string]bool, k)
	for _, r := range rs[:k] {
		cohort[r.id] = true
	}
	return cohort
}

// Event classifies what Observe did with a newly merged ETag.
type Event int

const (
	// EventNone: the ETag is already the stable or the staged candidate;
	// nothing changed.
	EventNone Event = iota
	// EventAdopt: no stable plan existed, so the plan was adopted as
	// stable without a canary — there is nothing to canary against.
	EventAdopt
	// EventCanary: a canary opened (or an open canary's candidate was
	// replaced by a newer merge) for this ETag.
	EventCanary
	// EventQuarantined: the ETag was rolled back earlier and is withheld
	// until new evidence produces a different plan.
	EventQuarantined
)

func (e Event) String() string {
	switch e {
	case EventNone:
		return "none"
	case EventAdopt:
		return "adopt"
	case EventCanary:
		return "canary_start"
	case EventQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("event(%d)", int(e))
}

// Decision is the outcome of recording one feedback report.
type Decision int

const (
	DecisionNone Decision = iota
	DecisionPromote
	DecisionRollback
)

func (d Decision) String() string {
	switch d {
	case DecisionNone:
		return "none"
	case DecisionPromote:
		return "promote"
	case DecisionRollback:
		return "rollback"
	}
	return fmt.Sprintf("decision(%d)", int(d))
}

// side accumulates one side's feedback window. The side p99 is the
// pause-count-weighted mean of the reports' p99s: integer arithmetic,
// order-independent, deterministic.
type side struct {
	reports  int
	pauses   int64
	weighted int64 // Σ p99·weight, weight = max(1, pauses)
}

func (s *side) add(r *Report) {
	w := int64(r.Pauses)
	if w < 1 {
		w = 1
	}
	s.reports++
	s.pauses += w
	s.weighted += int64(r.PauseP99) * w
}

func (s *side) p99() time.Duration {
	if s.pauses == 0 {
		return 0
	}
	return time.Duration(s.weighted / s.pauses)
}

// Tracker is one (app, workload) key's rollout state machine.
type Tracker struct {
	cfg Config

	state         State
	stableETag    string
	candidateETag string
	quarantined   map[string]bool
	lastObserved  string // last merged ETag seen, to dedupe quarantine events

	canary   side
	baseline side

	promotions uint64
	rollbacks  uint64
	canaries   uint64
}

// NewTracker returns a fresh tracker (no stable plan yet) under cfg.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.Normalize(), quarantined: make(map[string]bool)}
}

// State reports the current state.
func (t *Tracker) State() State { return t.state }

// StableETag reports the last-good plan version ("" before any plan).
func (t *Tracker) StableETag() string { return t.stableETag }

// CandidateETag reports the staged candidate ("" when no canary is open).
func (t *Tracker) CandidateETag() string { return t.candidateETag }

// Quarantined reports whether etag was rolled back and is withheld.
func (t *Tracker) Quarantined(etag string) bool { return t.quarantined[etag] }

// Counters reports lifetime (canaries, promotions, rollbacks).
func (t *Tracker) Counters() (canaries, promotions, rollbacks uint64) {
	return t.canaries, t.promotions, t.rollbacks
}

// Observe feeds a newly merged plan version into the state machine and
// reports what happened: adopt (first plan ever becomes stable), a canary
// start, a quarantined re-merge withheld, or nothing.
func (t *Tracker) Observe(etag string) Event {
	defer func() { t.lastObserved = etag }()
	switch {
	case etag == "" || etag == t.stableETag || etag == t.candidateETag:
		return EventNone
	case t.stableETag == "":
		t.stableETag = etag
		t.state = StateStable
		return EventAdopt
	case t.quarantined[etag]:
		if t.lastObserved == etag {
			return EventNone
		}
		return EventQuarantined
	}
	// A merge arriving mid-canary replaces the candidate: the newer plan
	// subsumes the older one's evidence, so judging the stale candidate
	// would decide on a version no longer proposed.
	t.candidateETag = etag
	t.canary = side{}
	t.baseline = side{}
	t.state = StateCanary
	t.canaries++
	return EventCanary
}

// Outcome carries the decision inputs alongside the decision so the
// planserver can stamp them into transition records and trace events, and
// the simnet checker can audit the rule.
type Outcome struct {
	Decision   Decision
	CanaryP99  time.Duration
	Baseline99 time.Duration
	CanaryN    int
	BaselineN  int
}

// Record attributes one feedback report and, when the min-sample gate is
// satisfied, decides the open canary. Attribution is by the ETag the
// window ran under, not by cohort membership: reports for the candidate
// ETag from cohort instances form the canary side, reports for the stable
// ETag form the baseline side, anything else (a stale version, or a
// candidate report from an instance that left the cohort) is ignored.
func (t *Tracker) Record(r *Report, inCohort bool) Outcome {
	if t.state != StateCanary || t.candidateETag == "" {
		return Outcome{}
	}
	switch {
	case r.ETag == t.candidateETag && inCohort:
		t.canary.add(r)
	case r.ETag == t.stableETag:
		t.baseline.add(r)
	default:
		return Outcome{}
	}
	if t.canary.reports < t.cfg.MinReports || t.baseline.reports < t.cfg.MinReports {
		return Outcome{}
	}
	out := Outcome{
		CanaryP99:  t.canary.p99(),
		Baseline99: t.baseline.p99(),
		CanaryN:    t.canary.reports,
		BaselineN:  t.baseline.reports,
	}
	if Regressed(out.CanaryP99, out.Baseline99, t.cfg.RegressionPct) {
		out.Decision = DecisionRollback
		t.quarantined[t.candidateETag] = true
		t.candidateETag = ""
		t.lastObserved = "" // the next quarantined re-merge is a fresh event
		t.state = StateRolledBack
		t.rollbacks++
	} else {
		out.Decision = DecisionPromote
		t.stableETag = t.candidateETag
		t.candidateETag = ""
		t.state = StateStable
		t.promotions++
	}
	t.canary = side{}
	t.baseline = side{}
	return out
}

// Regressed is the fixed regression predicate: the canary p99 exceeds the
// baseline p99 by more than pct percent. A zero baseline treats any
// canary pause cost as a regression — conservative by construction.
func Regressed(canaryP99, baselineP99 time.Duration, pct float64) bool {
	return float64(canaryP99) > float64(baselineP99)*(1+pct/100)
}

// AddQuarantined unions peer-learned quarantined ETags into the tracker —
// the replication path for rollback decisions. The quarantine set is
// grow-only, so the union is commutative and idempotent and a stale peer
// can never resurrect a rolled-back plan. When the staged candidate itself
// arrives quarantined the canary is abandoned: the candidate is dropped
// and the key pins back to stable, but the local rollback counter is NOT
// advanced — the decision was made (and counted) on the peer that saw the
// regression. The stable ETag is never dropped even if listed: serving
// the last-good plan beats serving nothing, and the decision rule only
// ever quarantines candidates, so a quarantined stable marks peer
// disagreement to be resolved by the next merge, not a plan to withhold.
func (t *Tracker) AddQuarantined(etags []string) (added int, droppedCandidate bool) {
	for _, e := range etags {
		if e == "" || t.quarantined[e] {
			continue
		}
		t.quarantined[e] = true
		added++
	}
	if t.candidateETag != "" && t.quarantined[t.candidateETag] {
		t.candidateETag = ""
		t.canary = side{}
		t.baseline = side{}
		t.lastObserved = "" // the next quarantined re-merge is a fresh event
		t.state = StateRolledBack
		droppedCandidate = true
	}
	return added, droppedCandidate
}

// Snapshot is the persistable image of a tracker. Feedback windows are
// deliberately absent: after a restart the canary window starts over, so a
// decision is never made on evidence the daemon cannot re-derive.
type Snapshot struct {
	State         string   `json:"state"`
	StableETag    string   `json:"stable_etag"`
	CandidateETag string   `json:"candidate_etag,omitempty"`
	Quarantined   []string `json:"quarantined,omitempty"`
	Canaries      uint64   `json:"canaries"`
	Promotions    uint64   `json:"promotions"`
	Rollbacks     uint64   `json:"rollbacks"`
}

// Snapshot captures the tracker for persistence. Quarantined ETags are
// sorted so the document is byte-stable.
func (t *Tracker) Snapshot() Snapshot {
	q := make([]string, 0, len(t.quarantined))
	for e := range t.quarantined {
		q = append(q, e)
	}
	sort.Strings(q)
	return Snapshot{
		State:         t.state.String(),
		StableETag:    t.stableETag,
		CandidateETag: t.candidateETag,
		Quarantined:   q,
		Canaries:      t.canaries,
		Promotions:    t.promotions,
		Rollbacks:     t.rollbacks,
	}
}

// Restore rebuilds a tracker from a snapshot. A restored canary keeps its
// candidate but restarts its feedback windows (see Snapshot); a snapshot
// in the transient Promoting state lands back in Canary for the same
// reason — the promote decision will be re-derived from fresh reports.
func Restore(cfg Config, s Snapshot) *Tracker {
	t := NewTracker(cfg)
	t.state = ParseState(s.State)
	if t.state == StatePromoting {
		t.state = StateCanary
	}
	t.stableETag = s.StableETag
	t.candidateETag = s.CandidateETag
	t.lastObserved = s.CandidateETag
	for _, e := range s.Quarantined {
		t.quarantined[e] = true
	}
	if t.candidateETag == "" && t.state == StateCanary {
		t.state = StateStable
	}
	t.canaries = s.Canaries
	t.promotions = s.Promotions
	t.rollbacks = s.Rollbacks
	return t
}
