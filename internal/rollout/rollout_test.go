package rollout

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

func fleet(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("inst-%03d", i)
	}
	return ids
}

// The cohort is a pure function of (seed, ids): recomputing it — as a
// restarted daemon does — selects the identical membership.
func TestCohortStableAcrossRestarts(t *testing.T) {
	ids := fleet(64)
	a := Cohort(42, ids, 0.25)
	b := Cohort(42, ids, 0.25)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cohort not stable across recomputation: %v vs %v", a, b)
	}
	// Input order must not matter either: the daemon derives the id list
	// from map iteration and sorts, but the contract is order-free.
	rev := make([]string, len(ids))
	for i, id := range ids {
		rev[len(ids)-1-i] = id
	}
	if c := Cohort(42, rev, 0.25); !reflect.DeepEqual(a, c) {
		t.Fatalf("cohort depends on input order: %v vs %v", a, c)
	}
}

func TestCohortSeedChangesMembership(t *testing.T) {
	ids := fleet(256)
	a := Cohort(1, ids, 0.25)
	b := Cohort(2, ids, 0.25)
	if reflect.DeepEqual(a, b) {
		t.Fatalf("distinct seeds selected the identical 64-of-256 cohort")
	}
	if len(a) != len(b) {
		t.Fatalf("cohort size varies with seed: %d vs %d", len(a), len(b))
	}
}

// Exact K% splits at the fleet sizes named in the issue: the selected
// count is ceil(fraction*N), floored at one instance.
func TestCohortExactSplit(t *testing.T) {
	cases := []struct {
		n        int
		fraction float64
		want     int
	}{
		{1, 0.25, 1},
		{1, 0.01, 1},
		{10, 0.25, 3},  // ceil(2.5)
		{10, 0.10, 1},  // ceil(1.0)
		{10, 1.00, 10},
		{256, 0.25, 64},
		{256, 0.10, 26}, // ceil(25.6)
		{256, 0.005, 2}, // ceil(1.28)
	}
	for _, c := range cases {
		got := Cohort(7, fleet(c.n), c.fraction)
		if len(got) != c.want {
			t.Errorf("Cohort(n=%d, f=%v): %d members, want %d", c.n, c.fraction, len(got), c.want)
		}
	}
	if got := Cohort(7, nil, 0.25); len(got) != 0 {
		t.Errorf("Cohort over empty fleet selected %d members", len(got))
	}
}

// Growing the fleet keeps membership a pure function of the new set: the
// recomputed cohort has the exact new size, and every member is drawn
// from the new id set.
func TestCohortGrowth(t *testing.T) {
	for _, n := range []int{1, 10, 256} {
		c := Cohort(42, fleet(n), 0.25)
		for id := range c {
			found := false
			for _, want := range fleet(n) {
				if id == want {
					found = true
				}
			}
			if !found {
				t.Fatalf("n=%d: cohort member %q not in fleet", n, id)
			}
		}
	}
}

func report(etag string, pauses int, p99 time.Duration) *Report {
	return &Report{
		App: "a", Workload: "w", ETag: etag,
		WindowEnd: time.Second, Pauses: pauses,
		PauseP50: p99 / 2, PauseP99: p99,
		PromotionRate: 0.1, SurvivorRate: 0.2,
	}
}

// The decision-rule table: min-sample gate, promote, rollback, and
// quarantine-until-new-evidence, driven through the public Tracker API.
func TestDecisionTable(t *testing.T) {
	cfg := Config{CanaryFraction: 0.5, MinReports: 2, RegressionPct: 10, Seed: 1}

	type step struct {
		rep      *Report
		inCohort bool
		want     Decision
	}
	cases := []struct {
		name      string
		steps     []step
		wantState State
	}{
		{
			name: "min sample gate holds with one side short",
			steps: []step{
				{report("cand", 10, 10*time.Millisecond), true, DecisionNone},
				{report("cand", 10, 10*time.Millisecond), true, DecisionNone},
				{report("stable", 10, 10*time.Millisecond), false, DecisionNone},
			},
			wantState: StateCanary,
		},
		{
			name: "promote inside threshold",
			steps: []step{
				{report("cand", 10, 11*time.Millisecond), true, DecisionNone},
				{report("cand", 10, 11*time.Millisecond), true, DecisionNone},
				{report("stable", 10, 10*time.Millisecond), false, DecisionNone},
				// 11ms vs 10ms is a 10% regression — not *more than* 10%.
				{report("stable", 10, 10*time.Millisecond), false, DecisionPromote},
			},
			wantState: StateStable,
		},
		{
			name: "rollback beyond threshold",
			steps: []step{
				{report("stable", 10, 10*time.Millisecond), false, DecisionNone},
				{report("stable", 10, 10*time.Millisecond), false, DecisionNone},
				{report("cand", 10, 12*time.Millisecond), true, DecisionNone},
				{report("cand", 10, 12*time.Millisecond), true, DecisionRollback},
			},
			wantState: StateRolledBack,
		},
		{
			name: "candidate reports outside the cohort are ignored",
			steps: []step{
				{report("cand", 10, 50*time.Millisecond), false, DecisionNone},
				{report("cand", 10, 50*time.Millisecond), false, DecisionNone},
				{report("stable", 10, 10*time.Millisecond), false, DecisionNone},
				{report("stable", 10, 10*time.Millisecond), false, DecisionNone},
			},
			wantState: StateCanary,
		},
		{
			name: "stale etags are ignored",
			steps: []step{
				{report("ancient", 10, time.Millisecond), true, DecisionNone},
				{report("ancient", 10, time.Millisecond), false, DecisionNone},
			},
			wantState: StateCanary,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTracker(cfg)
			if ev := tr.Observe("stable"); ev != EventAdopt {
				t.Fatalf("first plan: Observe = %v, want adopt", ev)
			}
			if ev := tr.Observe("cand"); ev != EventCanary {
				t.Fatalf("second plan: Observe = %v, want canary_start", ev)
			}
			for i, s := range tc.steps {
				if out := tr.Record(s.rep, s.inCohort); out.Decision != s.want {
					t.Fatalf("step %d: decision %v, want %v", i, out.Decision, s.want)
				}
			}
			if tr.State() != tc.wantState {
				t.Fatalf("final state %v, want %v", tr.State(), tc.wantState)
			}
		})
	}
}

// After a rollback the regressed ETag stays quarantined: re-merging the
// same evidence re-produces the same tag and it is withheld, while a
// genuinely new plan opens the next canary.
func TestQuarantineUntilNewEvidence(t *testing.T) {
	tr := NewTracker(Config{MinReports: 1})
	tr.Observe("v1")
	tr.Observe("v2")
	tr.Record(report("v1", 4, 10*time.Millisecond), false)
	out := tr.Record(report("v2", 4, 40*time.Millisecond), true)
	if out.Decision != DecisionRollback {
		t.Fatalf("decision %v, want rollback", out.Decision)
	}
	if !tr.Quarantined("v2") {
		t.Fatalf("rolled-back etag not quarantined")
	}
	if ev := tr.Observe("v2"); ev != EventQuarantined {
		t.Fatalf("re-merge of quarantined etag: Observe = %v, want quarantined", ev)
	}
	// The same withheld tag arriving again is not a fresh event.
	if ev := tr.Observe("v2"); ev != EventNone {
		t.Fatalf("repeated quarantined etag: Observe = %v, want none", ev)
	}
	if ev := tr.Observe("v3"); ev != EventCanary {
		t.Fatalf("new evidence: Observe = %v, want canary_start", ev)
	}
	if tr.CandidateETag() != "v3" || tr.StableETag() != "v1" {
		t.Fatalf("candidate %q stable %q, want v3/v1", tr.CandidateETag(), tr.StableETag())
	}
}

// A merge landing mid-canary replaces the candidate and restarts the
// window: reports for the abandoned candidate no longer count.
func TestCandidateReplacedMidCanary(t *testing.T) {
	tr := NewTracker(Config{MinReports: 1})
	tr.Observe("v1")
	tr.Observe("v2")
	tr.Record(report("v1", 4, 10*time.Millisecond), false)
	if ev := tr.Observe("v3"); ev != EventCanary {
		t.Fatalf("replacement merge: Observe = %v, want canary_start", ev)
	}
	// Baseline window restarted: v1 report from before is gone, so a v3
	// report alone cannot decide.
	if out := tr.Record(report("v3", 4, 10*time.Millisecond), true); out.Decision != DecisionNone {
		t.Fatalf("decision %v on restarted window, want none", out.Decision)
	}
	canaries, _, _ := tr.Counters()
	if canaries != 2 {
		t.Fatalf("canaries = %d, want 2", canaries)
	}
}

func TestSnapshotRestore(t *testing.T) {
	cfg := Config{MinReports: 1, RegressionPct: 10, Seed: 9}
	tr := NewTracker(cfg)
	tr.Observe("v1")
	tr.Observe("v2")
	tr.Record(report("v1", 4, 10*time.Millisecond), false)
	tr.Record(report("v2", 4, 40*time.Millisecond), true) // rollback
	tr.Observe("v3")                                      // new canary

	snap := tr.Snapshot()
	got := Restore(cfg, snap)
	if got.State() != StateCanary || got.StableETag() != "v1" || got.CandidateETag() != "v3" {
		t.Fatalf("restored (%v, %q, %q), want (canary, v1, v3)",
			got.State(), got.StableETag(), got.CandidateETag())
	}
	if !got.Quarantined("v2") {
		t.Fatalf("quarantine lost across restore")
	}
	c, p, r := got.Counters()
	if c != 2 || p != 0 || r != 1 {
		t.Fatalf("counters (%d, %d, %d), want (2, 0, 1)", c, p, r)
	}
	// The restored window is empty: one report per side decides afresh.
	got.Record(report("v1", 4, 10*time.Millisecond), false)
	out := got.Record(report("v3", 4, 10*time.Millisecond), true)
	if out.Decision != DecisionPromote {
		t.Fatalf("post-restore decision %v, want promote", out.Decision)
	}

	// A snapshot caught mid-Promoting restarts as a canary.
	back := Restore(cfg, Snapshot{State: "promoting", StableETag: "s", CandidateETag: "c"})
	if back.State() != StateCanary {
		t.Fatalf("promoting snapshot restored to %v, want canary", back.State())
	}
	// A canary snapshot with no candidate degrades to stable.
	s := Restore(cfg, Snapshot{State: "canary", StableETag: "s"})
	if s.State() != StateStable {
		t.Fatalf("candidate-less canary snapshot restored to %v, want stable", s.State())
	}
}

func TestReportValidate(t *testing.T) {
	good := report("e", 4, 10*time.Millisecond)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := []func(*Report){
		func(r *Report) { r.App = "" },
		func(r *Report) { r.Workload = "" },
		func(r *Report) { r.ETag = "" },
		func(r *Report) { r.WindowStart = r.WindowEnd + 1 },
		func(r *Report) { r.Pauses = -1 },
		func(r *Report) { r.PauseP50 = -1 },
		func(r *Report) { r.PauseP50 = r.PauseP99 * 2 },
		func(r *Report) { r.PromotionRate = 1.5 },
		func(r *Report) { r.SurvivorRate = -0.1 },
	}
	for i, mutate := range bad {
		r := *good
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("mutation %d: invalid report accepted", i)
		}
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{StateStable, StateCanary, StatePromoting, StateRolledBack} {
		if ParseState(s.String()) != s {
			t.Errorf("ParseState(%q) does not round-trip", s)
		}
	}
	if ParseState("garbage") != StateStable {
		t.Errorf("unknown state name did not degrade to stable")
	}
	for _, e := range []Event{EventNone, EventAdopt, EventCanary, EventQuarantined} {
		if e.String() == "" {
			t.Errorf("event %d has empty name", e)
		}
	}
	for _, d := range []Decision{DecisionNone, DecisionPromote, DecisionRollback} {
		if d.String() == "" {
			t.Errorf("decision %d has empty name", d)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	cfg := Config{}.Normalize()
	if cfg.CanaryFraction != 0.25 || cfg.MinReports != 3 || cfg.RegressionPct != 10 || cfg.Seed != 1 {
		t.Fatalf("zero config normalized to %+v", cfg)
	}
	if got := (Config{CanaryFraction: 7}).Normalize().CanaryFraction; got != 1 {
		t.Fatalf("fraction not clamped: %v", got)
	}
}
