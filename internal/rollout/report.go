package rollout

import (
	"fmt"
	"math"
	"time"
)

// Report is one instance's plan-health report for one observation window,
// the JSON body of POST /v1/feedback (DESIGN.md §14). Every field is
// derived from the simulated runtime's deterministic cost model, so two
// runs of the same workload produce byte-identical reports.
//
// The reporting instance is carried in the X-Polm2-Instance header, like
// evidence uploads, so the body stays a pure measurement.
type Report struct {
	App      string `json:"app"`
	Workload string `json:"workload"`
	// ETag is the plan version the window ran under — the version the
	// instance had installed, not the version it might fetch next. The
	// controller attributes the report to the canary or baseline side by
	// this tag alone.
	ETag string `json:"etag"`
	// Window bounds, in the reporter's monotonic virtual time.
	WindowStart time.Duration `json:"window_start_ns"`
	WindowEnd   time.Duration `json:"window_end_ns"`
	// Pauses is the number of GC pauses observed in the window; it weights
	// the report in the side aggregate.
	Pauses   int           `json:"pauses"`
	PauseP50 time.Duration `json:"pause_p50_ns"`
	PauseP99 time.Duration `json:"pause_p99_ns"`
	// PromotionRate is promoted bytes over evacuated bytes for the window;
	// SurvivorRate is the complement fraction that stayed young. Both are
	// in [0, 1] and carried for observability — the decision rule reads
	// only the pause percentiles.
	PromotionRate float64 `json:"promotion_rate"`
	SurvivorRate  float64 `json:"survivor_rate"`
}

// Validate rejects malformed reports before they can enter a decision
// window.
func (r *Report) Validate() error {
	switch {
	case r.App == "":
		return fmt.Errorf("rollout: report missing app")
	case r.Workload == "":
		return fmt.Errorf("rollout: report missing workload")
	case r.ETag == "":
		return fmt.Errorf("rollout: report missing etag")
	case r.WindowEnd < r.WindowStart:
		return fmt.Errorf("rollout: report window ends (%v) before it starts (%v)", r.WindowEnd, r.WindowStart)
	case r.Pauses < 0:
		return fmt.Errorf("rollout: report has negative pause count %d", r.Pauses)
	case r.PauseP50 < 0 || r.PauseP99 < 0:
		return fmt.Errorf("rollout: report has negative pause percentile")
	case r.PauseP50 > r.PauseP99:
		return fmt.Errorf("rollout: report p50 %v exceeds p99 %v", r.PauseP50, r.PauseP99)
	case !rateOK(r.PromotionRate):
		return fmt.Errorf("rollout: report promotion rate %v outside [0, 1]", r.PromotionRate)
	case !rateOK(r.SurvivorRate):
		return fmt.Errorf("rollout: report survivor rate %v outside [0, 1]", r.SurvivorRate)
	}
	return nil
}

func rateOK(v float64) bool {
	return !math.IsNaN(v) && v >= 0 && v <= 1
}
