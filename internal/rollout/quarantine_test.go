package rollout

import "testing"

// driveToCanary walks a fresh tracker to an open canary on candidate
// "cand" over stable "stable".
func driveToCanary(t *testing.T) *Tracker {
	t.Helper()
	tr := NewTracker(Config{MinReports: 2})
	if ev := tr.Observe(`"stable"`); ev != EventAdopt {
		t.Fatalf("adopt observe = %v", ev)
	}
	if ev := tr.Observe(`"cand"`); ev != EventCanary {
		t.Fatalf("canary observe = %v", ev)
	}
	return tr
}

func TestAddQuarantinedUnion(t *testing.T) {
	tr := driveToCanary(t)
	added, dropped := tr.AddQuarantined([]string{`"bad1"`, `"bad2"`, "", `"bad1"`})
	if added != 2 || dropped {
		t.Fatalf("AddQuarantined = (%d, %v), want (2, false)", added, dropped)
	}
	if !tr.Quarantined(`"bad1"`) || !tr.Quarantined(`"bad2"`) {
		t.Fatal("union did not take")
	}
	// Idempotent: re-applying the same set adds nothing.
	added, dropped = tr.AddQuarantined([]string{`"bad1"`, `"bad2"`})
	if added != 0 || dropped {
		t.Fatalf("re-union = (%d, %v), want (0, false)", added, dropped)
	}
	// The open canary survived an unrelated union.
	if tr.State() != StateCanary || tr.CandidateETag() != `"cand"` {
		t.Fatalf("unrelated union disturbed the canary: state=%v cand=%q", tr.State(), tr.CandidateETag())
	}
}

func TestAddQuarantinedDropsCandidate(t *testing.T) {
	tr := driveToCanary(t)
	// Half-fill the canary window so we can prove it resets.
	tr.Record(&Report{App: "a", Workload: "w", ETag: `"cand"`, Pauses: 4, PauseP99: 10}, true)
	added, dropped := tr.AddQuarantined([]string{`"cand"`})
	if added != 1 || !dropped {
		t.Fatalf("AddQuarantined = (%d, %v), want (1, true)", added, dropped)
	}
	if tr.State() != StateRolledBack || tr.CandidateETag() != "" {
		t.Fatalf("candidate not dropped: state=%v cand=%q", tr.State(), tr.CandidateETag())
	}
	if tr.StableETag() != `"stable"` {
		t.Fatalf("stable moved to %q", tr.StableETag())
	}
	// Peer-propagated quarantine is not a local rollback decision.
	if _, _, rollbacks := tr.Counters(); rollbacks != 0 {
		t.Fatalf("rollbacks = %d, want 0 (peer decision, not ours)", rollbacks)
	}
	// The quarantined ETag must not be resurrected as a candidate.
	if ev := tr.Observe(`"cand"`); ev != EventQuarantined {
		t.Fatalf("re-merge of quarantined etag = %v, want EventQuarantined", ev)
	}
	// A genuinely new plan still opens the next canary.
	if ev := tr.Observe(`"fresh"`); ev != EventCanary {
		t.Fatalf("fresh etag = %v, want EventCanary", ev)
	}
}

func TestAddQuarantinedKeepsStable(t *testing.T) {
	tr := driveToCanary(t)
	added, dropped := tr.AddQuarantined([]string{`"stable"`})
	if added != 1 || dropped {
		t.Fatalf("AddQuarantined(stable) = (%d, %v), want (1, false)", added, dropped)
	}
	// Defensive posture: keep serving the stable plan; only candidates are
	// ever withheld.
	if tr.StableETag() != `"stable"` || tr.State() != StateCanary {
		t.Fatalf("stable dropped: stable=%q state=%v", tr.StableETag(), tr.State())
	}
}

// TestAddQuarantinedSurvivesSnapshot proves the union persists through
// Snapshot/Restore — a restarted daemon must not forget peer rollbacks.
func TestAddQuarantinedSurvivesSnapshot(t *testing.T) {
	tr := driveToCanary(t)
	tr.AddQuarantined([]string{`"cand"`, `"other"`})
	restored := Restore(Config{}, tr.Snapshot())
	for _, e := range []string{`"cand"`, `"other"`} {
		if !restored.Quarantined(e) {
			t.Errorf("restored tracker forgot quarantined %s", e)
		}
	}
	if restored.State() != StateRolledBack {
		t.Errorf("restored state = %v, want rolled_back", restored.State())
	}
}
