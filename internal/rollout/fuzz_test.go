package rollout

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Seed documents for both fuzz targets: the valid shapes the planserver
// feedback handler sees in the smoke script and e2e tests, plus the edge
// shapes Validate guards against. The nightly fuzz job (fuzz.yml) explores
// from here; PR-time runs just replay the corpus.
var reportSeeds = []string{
	`{"app":"Cassandra","workload":"WI","etag":"\"abc\"","window_start_ns":0,"window_end_ns":60000000000,"pauses":8,"pause_p50_ns":6000000,"pause_p99_ns":15000000,"promotion_rate":0.2,"survivor_rate":0.8}`,
	`{"app":"App0","workload":"w","etag":"\"e1\"","pauses":0,"pause_p50_ns":0,"pause_p99_ns":0,"promotion_rate":0,"survivor_rate":0}`,
	`{"app":"","workload":"w","etag":"\"e\""}`,
	`{"app":"a","workload":"w","etag":"\"e\"","window_start_ns":10,"window_end_ns":5}`,
	`{"app":"a","workload":"w","etag":"\"e\"","pauses":-1}`,
	`{"app":"a","workload":"w","etag":"\"e\"","pause_p50_ns":20,"pause_p99_ns":10}`,
	`{"app":"a","workload":"w","etag":"\"e\"","promotion_rate":1.5}`,
	`{"app":"a","workload":"w","etag":"\"e\"","survivor_rate":-0.1}`,
	`{}`,
	`{"app":"a","workload":"w","etag":"\"e\"","unknown_field":1}`,
	`not json at all`,
	`{"app":"a","workload":"w","etag":"\"e\"","pauses":1e99}`,
}

// FuzzReportValidate hammers the lenient decode path: any byte string
// that parses as a Report must validate without panicking, and a report
// Validate accepts must re-encode and re-validate — the wire form is
// stable under round trips.
func FuzzReportValidate(f *testing.F) {
	for _, s := range reportSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Report
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if err := r.Validate(); err != nil {
			return
		}
		// Accepted reports satisfy the documented field constraints.
		if r.App == "" || r.Workload == "" || r.ETag == "" {
			t.Fatalf("Validate accepted a report with empty identity: %+v", r)
		}
		if r.PauseP50 > r.PauseP99 || r.PauseP99 < 0 || r.Pauses < 0 {
			t.Fatalf("Validate accepted inconsistent pause stats: %+v", r)
		}
		if !rateOK(r.PromotionRate) || !rateOK(r.SurvivorRate) {
			t.Fatalf("Validate accepted out-of-range rate: %+v", r)
		}
		// Round trip: encode, strict-decode, validate again.
		enc, err := json.Marshal(&r)
		if err != nil {
			t.Fatalf("accepted report does not re-encode: %v", err)
		}
		var back Report
		dec := json.NewDecoder(bytes.NewReader(enc))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&back); err != nil {
			t.Fatalf("re-encoded report does not strict-decode: %v", err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped report fails validation: %v", err)
		}
		if back != r {
			t.Fatalf("round trip changed the report: %+v -> %+v", r, back)
		}
	})
}

// FuzzFeedbackDecode mirrors the planserver feedback handler end to end:
// strict decode (unknown fields rejected), Validate, then Record against a
// live tracker in every state a handler can see one in. Whatever the
// bytes, the tracker must neither panic nor leave its state machine.
func FuzzFeedbackDecode(f *testing.F) {
	for _, s := range reportSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var rep Report
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if dec.Decode(&rep) != nil {
			return
		}
		if rep.Validate() != nil {
			return
		}
		for _, inCohort := range []bool{true, false} {
			tr := NewTracker(Config{MinReports: 1})
			tr.Observe(`"stable"`)
			tr.Observe(rep.ETag) // maybe opens a canary on the fuzzed etag
			out := tr.Record(&rep, inCohort)
			if out.Decision != DecisionNone && out.Decision != DecisionPromote && out.Decision != DecisionRollback {
				t.Fatalf("Record produced unknown decision %v", out.Decision)
			}
			switch tr.State() {
			case StateStable, StateCanary, StatePromoting, StateRolledBack:
			default:
				t.Fatalf("tracker left the state machine: %v", tr.State())
			}
			// A decision clears the candidate; quarantined sets only grow.
			if out.Decision != DecisionNone && tr.CandidateETag() != "" {
				t.Fatalf("decision %v left a staged candidate %q", out.Decision, tr.CandidateETag())
			}
		}
	})
}
