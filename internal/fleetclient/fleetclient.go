// Package fleetclient is the production instance's side of the plan
// distribution subsystem (internal/planserver): it fetches versioned
// instrumentation plans with conditional GETs, uploads locally analyzed
// profiling evidence under a stable instance id (the daemon keeps only
// each instance's latest evidence, so cumulative re-profiles and retried
// uploads replace instead of double-count), and degrades gracefully —
// bounded retries with
// exponential backoff and deterministic jitter, sticky failover across a
// replicated daemon set (Options.BaseURLs), then a fall back to the last
// good plan — when no daemon is reachable at all.
//
// Determinism: no decision path consults the wall clock, a global RNG, or
// map iteration order. Backoff jitter derives from core.DeriveSeed over
// (seed, operation, sequence number, attempt) — the injected seed stream
// and nothing else — so a fixed seed replays the exact retry schedule
// (pinned to golden values in backoff_golden_test.go), and a fleet of
// instances seeded differently spreads its retries instead of thundering
// in lockstep. The operation sequence number is the client's own call
// counter: under a deterministic driver (a test, or internal/simnet's
// single-threaded event loop) the whole jitter stream replays. Only the
// injected Sleep function (time.Sleep by default) touches real time, and
// the fleet simulator replaces it with a virtual-clock advance.
package fleetclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/core"
	"polm2/internal/rollout"
	"polm2/internal/trace"
)

// InstanceHeader names the evidence-upload header carrying the client's
// stable instance id (mirrors planserver.InstanceHeader; redeclared to
// keep the packages decoupled).
const InstanceHeader = "X-Polm2-Instance"

// EvidenceSeqHeader carries the client's own upload sequence number on
// evidence uploads (mirrors planserver.EvidenceSeqHeader; redeclared to
// keep the packages decoupled). A replicated daemon folds it into the
// stamp it assigns, so an upload replayed to a failover daemon cannot be
// beaten by an older document the first daemon already replicated out.
// Unreplicated daemons ignore it.
const EvidenceSeqHeader = "X-Polm2-Evidence-Seq"

// Options parameterizes a Client.
type Options struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7468".
	BaseURL string
	// BaseURLs lists failover daemon roots tried after BaseURL. The client
	// is sticky: it keeps using one endpoint until a *transport* error
	// (connection refused, reset, timeout) rotates it to the next, wrapping
	// around. HTTP-level failures — 5xx included — never rotate: the daemon
	// answered, so switching peers would trade a known-alive endpoint for
	// an unknown one mid-backoff. Empty means no failover.
	BaseURLs []string
	// Seed drives the deterministic backoff jitter. Default 1.
	Seed int64
	// InstanceID is this instance's stable identity, sent with every
	// evidence upload so the daemon replaces — rather than adds to — this
	// instance's earlier contribution (uploads carry cumulative evidence,
	// and retries may replay an already-applied one). Default: derived
	// from Seed, which suffices when every instance in the fleet runs a
	// distinct seed; give instances sharing a seed explicit distinct ids.
	InstanceID string
	// MaxAttempts bounds tries per operation (first try included).
	// Default 4.
	MaxAttempts int
	// BaseDelay is the pre-jitter delay before the first retry; it
	// doubles per retry. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter delay. Default 2s.
	MaxDelay time.Duration
	// HTTPClient is the transport. Default http.DefaultClient.
	HTTPClient *http.Client
	// Sleep waits between retries. Default time.Sleep; tests and
	// simulations inject their own.
	Sleep func(time.Duration)
	// Tracer, when non-nil, receives one "fleetclient" event per
	// fetch/upload attempt, per backoff sleep, and per operation outcome.
	// Timestamps come from the tracer's own clock (trace.Options.Now).
	// Nil traces nothing at zero cost.
	Tracer *trace.Tracer
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 4
	}
	if o.BaseDelay == 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 2 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.InstanceID == "" {
		o.InstanceID = fmt.Sprintf("i-%016x",
			uint64(core.DeriveSeed(o.Seed, "fleetclient", "instance")))
	}
	return o
}

// Outcome classifies how FetchPlan produced its plan.
type Outcome int

// Outcomes.
const (
	// OutcomeFresh: the daemon served a (new) plan.
	OutcomeFresh Outcome = iota + 1
	// OutcomeNotModified: the cached plan is still current (304).
	OutcomeNotModified
	// OutcomeNoPlan: the daemon answered but holds no plan for the key.
	OutcomeNoPlan
	// OutcomeFallback: the daemon was unreachable; the last good plan
	// was returned instead.
	OutcomeFallback
)

func (o Outcome) String() string {
	switch o {
	case OutcomeFresh:
		return "fresh"
	case OutcomeNotModified:
		return "not-modified"
	case OutcomeNoPlan:
		return "no-plan"
	case OutcomeFallback:
		return "fallback"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Client talks to one plan daemon (or a replicated set of them). It is
// safe for concurrent use.
type Client struct {
	opts Options
	// endpoints is BaseURL followed by BaseURLs: the failover rotation.
	endpoints []string

	mu sync.Mutex
	// cur indexes the endpoint in use; transport errors advance it.
	cur int
	// etag versions lastGood; sent as If-None-Match on fetches.
	etag     string
	lastGood *analyzer.Profile
	// ops counts operations, salting each one's jitter derivation so two
	// retry rounds of the same operation kind do not share a schedule.
	ops uint64
	// evSeq counts evidence uploads; sent as EvidenceSeqHeader so the
	// client's write order survives daemon failover. Advanced once per
	// UploadEvidence call — retries of one upload replay the same number.
	evSeq uint64
}

// New builds a client. BaseURL must be set.
func New(opts Options) (*Client, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("fleetclient: BaseURL is required")
	}
	return &Client{
		opts:      opts.withDefaults(),
		endpoints: append([]string{opts.BaseURL}, opts.BaseURLs...),
	}, nil
}

// endpoint returns the sticky current endpoint and its rotation index.
func (c *Client) endpoint() (string, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoints[c.cur], c.cur
}

// failover rotates to the next endpoint after a transport error on
// endpoint index from. The guard keeps concurrent failures of the same
// endpoint from skipping past a healthy one: only the first rotates.
func (c *Client) failover(from int) {
	if len(c.endpoints) == 1 {
		return
	}
	c.mu.Lock()
	if c.cur == from {
		c.cur = (c.cur + 1) % len(c.endpoints)
	}
	c.mu.Unlock()
}

// InstanceID returns the stable identity sent with evidence uploads.
func (c *Client) InstanceID() string { return c.opts.InstanceID }

// LastGood returns the most recent plan the daemon served (fetched or
// merged), or nil.
func (c *Client) LastGood() *analyzer.Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastGood
}

// LastETag returns the content-addressed version of the last good plan, or
// "" when no plan has been served yet. It identifies exactly which plan
// this instance runs — the fleet simulator's convergence invariant
// compares it against the daemon's published version.
func (c *Client) LastETag() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.etag
}

// backoff returns the post-jitter delay before retry number attempt
// (attempt 0 = delay before the second try) of operation op/seq. Jitter is
// the deterministic "equal jitter" scheme: half the exponential delay is
// kept, the other half scales by a seed-derived fraction.
func (c *Client) backoff(op string, seq uint64, attempt int) time.Duration {
	d := c.opts.BaseDelay << attempt
	if d > c.opts.MaxDelay || d <= 0 {
		d = c.opts.MaxDelay
	}
	h := uint64(core.DeriveSeed(c.opts.Seed, "fleetclient", op,
		strconv.FormatUint(seq, 10), strconv.Itoa(attempt)))
	frac := float64(h%(1<<20)) / float64(1<<20)
	return d/2 + time.Duration(float64(d/2)*frac)
}

// RetrySchedule previews the full backoff schedule (every delay slept if
// all attempts fail) for the n-th operation of kind op. Exposed so tests
// — and capacity planning — can inspect determinism without a server.
func (c *Client) RetrySchedule(op string, seq uint64) []time.Duration {
	out := make([]time.Duration, 0, c.opts.MaxAttempts-1)
	for a := 0; a < c.opts.MaxAttempts-1; a++ {
		out = append(out, c.backoff(op, seq, a))
	}
	return out
}

// nextSeq reserves the next operation sequence number.
func (c *Client) nextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.ops
	c.ops++
	return seq
}

// retry runs try up to MaxAttempts times with backoff between failures.
// A non-nil stop result ends the retries immediately (permanent outcome);
// otherwise the last error is returned.
func (c *Client) retry(op string, try func() (stop bool, err error)) error {
	seq := c.nextSeq()
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		stop, err := try()
		if c.opts.Tracer.Enabled() {
			outcome := "ok"
			if err != nil {
				outcome = "error"
			}
			c.opts.Tracer.Event("fleetclient", "attempt",
				trace.String("op", op),
				trace.Uint64("seq", seq),
				trace.Int64("attempt", int64(attempt)),
				trace.String("outcome", outcome))
		}
		if err == nil || stop {
			return err
		}
		lastErr = err
		if attempt < c.opts.MaxAttempts-1 {
			d := c.backoff(op, seq, attempt)
			if c.opts.Tracer.Enabled() {
				c.opts.Tracer.Event("fleetclient", "backoff",
					trace.String("op", op),
					trace.Uint64("seq", seq),
					trace.Int64("attempt", int64(attempt)),
					trace.Dur("delay", d))
			}
			c.opts.Sleep(d)
		}
	}
	return lastErr
}

// FetchPlan fetches the plan for (app, workload). When the daemon is
// unreachable after all retries and a last good plan exists, that plan is
// returned with OutcomeFallback and a nil error — mirroring the online
// runner's keep-the-previous-plan salvage behaviour.
func (c *Client) FetchPlan(app, workload string) (*analyzer.Profile, Outcome, error) {
	c.mu.Lock()
	etag := c.etag
	c.mu.Unlock()

	var plan *analyzer.Profile
	var outcome Outcome
	// Keys are arbitrary strings (the store hashes raw keys for exactly
	// that reason), so the query must be escaped, not spliced.
	q := url.Values{}
	q.Set("app", app)
	q.Set("workload", workload)
	query := "/v1/plan?" + q.Encode()
	err := c.retry("fetch", func() (bool, error) {
		// The URL is rebuilt per attempt: a transport failure rotates the
		// endpoint, so the retry must aim at the rotated-to daemon.
		base, idx := c.endpoint()
		req, err := http.NewRequest("GET", base+query, nil)
		if err != nil {
			return true, err
		}
		// The instance id lets a rollout-enabled daemon route this
		// instance to its canary cohort's plan; a daemon without rollout
		// ignores the header.
		req.Header.Set(InstanceHeader, c.opts.InstanceID)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := c.opts.HTTPClient.Do(req)
		if err != nil {
			c.failover(idx)
			return false, fmt.Errorf("fleetclient: fetching plan: %w", err)
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			p, newTag, err := decodePlan(resp)
			if err != nil {
				return false, err
			}
			c.remember(p, newTag)
			plan, outcome = p, OutcomeFresh
			return false, nil
		case http.StatusNotModified:
			io.Copy(io.Discard, resp.Body)
			c.mu.Lock()
			plan, outcome = c.lastGood, OutcomeNotModified
			c.mu.Unlock()
			return false, nil
		case http.StatusNotFound:
			io.Copy(io.Discard, resp.Body)
			plan, outcome = nil, OutcomeNoPlan
			return true, nil
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			err = fmt.Errorf("fleetclient: plan fetch status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
			// 4xx (other than 404) is permanent: retrying an identical bad
			// request cannot succeed.
			return resp.StatusCode >= 400 && resp.StatusCode < 500, err
		}
	})
	if err != nil {
		if last := c.LastGood(); last != nil {
			c.traceResult("fetch", OutcomeFallback.String())
			return last, OutcomeFallback, nil
		}
		c.traceResult("fetch", "error")
		return nil, 0, err
	}
	c.traceResult("fetch", outcome.String())
	return plan, outcome, nil
}

// traceResult emits one operation-outcome event.
func (c *Client) traceResult(op, outcome string) {
	if c.opts.Tracer.Enabled() {
		c.opts.Tracer.Event("fleetclient", op+"_result",
			trace.String("outcome", outcome))
	}
}

// UploadEvidence posts locally analyzed profiling evidence and returns the
// daemon's merged fleet plan. Unreachable daemons and rejected uploads
// surface as errors; SyncEvidence layers the fallback policy on top.
func (c *Client) UploadEvidence(p *analyzer.Profile) (*analyzer.Profile, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("fleetclient: encoding evidence: %w", err)
	}
	c.mu.Lock()
	c.evSeq++
	seq := c.evSeq
	c.mu.Unlock()
	var merged *analyzer.Profile
	err = c.retry("upload", func() (bool, error) {
		base, idx := c.endpoint()
		req, err := http.NewRequest("POST", base+"/v1/evidence", bytes.NewReader(body))
		if err != nil {
			return true, err
		}
		req.Header.Set("Content-Type", "application/json")
		// The instance id makes the upload idempotent: the daemon replaces
		// this instance's evidence, so a retry after a lost response
		// cannot double-count what the first attempt already applied. The
		// sequence number orders this client's uploads across daemons —
		// constant over retries, so a replayed upload keeps its place.
		req.Header.Set(InstanceHeader, c.opts.InstanceID)
		req.Header.Set(EvidenceSeqHeader, strconv.FormatUint(seq, 10))
		resp, err := c.opts.HTTPClient.Do(req)
		if err != nil {
			c.failover(idx)
			return false, fmt.Errorf("fleetclient: uploading evidence: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			err := fmt.Errorf("fleetclient: evidence upload status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
			// The daemon rejected the evidence itself: no retry can fix it.
			return resp.StatusCode >= 400 && resp.StatusCode < 500, err
		}
		m, tag, err := decodePlan(resp)
		if err != nil {
			return false, err
		}
		c.remember(m, tag)
		merged = m
		return false, nil
	})
	if err != nil {
		c.traceResult("upload", "error")
		return nil, err
	}
	c.traceResult("upload", "merged")
	return merged, nil
}

// SyncEvidence uploads evidence and returns the fleet's merged plan. When
// the daemon is unreachable it falls back to the last good plan; fresh
// reports whether the returned plan came from the daemon on this call.
// The error is non-nil only when no plan can be offered at all.
func (c *Client) SyncEvidence(p *analyzer.Profile) (plan *analyzer.Profile, fresh bool, err error) {
	merged, err := c.UploadEvidence(p)
	if err == nil {
		return merged, true, nil
	}
	if last := c.LastGood(); last != nil {
		return last, false, nil
	}
	return nil, false, err
}

// ReportFeedback posts one plan-health report (rollout.Report) to the
// daemon's POST /v1/feedback endpoint, stamping the client's instance id
// and — when the report does not already carry one — the ETag of the plan
// this instance currently runs. Reporting requires a known plan version:
// with no ETag at all the report is skipped (sent == false, nil error),
// because a report that cannot be attributed to a plan version cannot
// enter a canary decision. Daemons predating the endpoint answer 404,
// surfaced as an error the caller may ignore.
func (c *Client) ReportFeedback(r *rollout.Report) (sent bool, err error) {
	rep := *r
	if rep.ETag == "" {
		rep.ETag = c.LastETag()
	}
	if rep.ETag == "" {
		c.traceResult("feedback", "skipped")
		return false, nil
	}
	if err := rep.Validate(); err != nil {
		return false, fmt.Errorf("fleetclient: %w", err)
	}
	body, err := json.Marshal(&rep)
	if err != nil {
		return false, fmt.Errorf("fleetclient: encoding feedback: %w", err)
	}
	err = c.retry("feedback", func() (bool, error) {
		base, idx := c.endpoint()
		req, err := http.NewRequest("POST", base+"/v1/feedback", bytes.NewReader(body))
		if err != nil {
			return true, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(InstanceHeader, c.opts.InstanceID)
		resp, err := c.opts.HTTPClient.Do(req)
		if err != nil {
			c.failover(idx)
			return false, fmt.Errorf("fleetclient: reporting feedback: %w", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("fleetclient: feedback status %d", resp.StatusCode)
			return resp.StatusCode >= 400 && resp.StatusCode < 500, err
		}
		return false, nil
	})
	if err != nil {
		c.traceResult("feedback", "error")
		return false, err
	}
	c.traceResult("feedback", "reported")
	return true, nil
}

// remember records the newest daemon-served plan and its version.
func (c *Client) remember(p *analyzer.Profile, etag string) {
	c.mu.Lock()
	c.lastGood, c.etag = p, etag
	c.mu.Unlock()
}

// decodePlan reads, validates and versions a plan response. The daemon
// sends Content-Length (plans are served from a fully encoded in-memory
// copy), so the body buffer is sized up front instead of growing through
// io.ReadAll's doubling.
func decodePlan(resp *http.Response) (*analyzer.Profile, string, error) {
	var buf bytes.Buffer
	if n := resp.ContentLength; n > 0 && n < 1<<30 {
		buf.Grow(int(n))
	}
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, "", fmt.Errorf("fleetclient: reading plan: %w", err)
	}
	data := buf.Bytes()
	var p analyzer.Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, "", fmt.Errorf("fleetclient: decoding plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, "", fmt.Errorf("fleetclient: served plan invalid: %w", err)
	}
	return &p, resp.Header.Get("ETag"), nil
}
