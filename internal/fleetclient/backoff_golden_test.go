package fleetclient

import (
	"testing"
	"time"
)

// TestBackoffGolden pins the exact jitter stream to golden values: the
// backoff schedule is a pure function of (seed, operation, sequence,
// attempt) through core.DeriveSeed, so these durations must never move —
// not across runs, not across hosts, not across refactors. A fleet
// simulation replaying seed 42 depends on this schedule byte for byte; if
// an intentional change to the derivation lands, the simnet golden traces
// must be regenerated alongside these values.
func TestBackoffGolden(t *testing.T) {
	c, err := New(Options{BaseURL: "http://daemon", Seed: 42, MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.InstanceID(), "i-4199a4b70eda0d3b"; got != want {
		t.Errorf("derived instance id = %q, want %q", got, want)
	}
	golden := map[string][]time.Duration{
		"fetch/0":  {28109121, 65241193, 176344680, 388781166},
		"fetch/1":  {48338103, 87653255, 157260608, 278429412},
		"upload/0": {32848572, 56674194, 167486095, 298880386},
		"upload/1": {31986808, 72996568, 164039039, 364169883},
	}
	for opSeq, want := range golden {
		op, seq := opSeq[:len(opSeq)-2], uint64(opSeq[len(opSeq)-1]-'0')
		got := c.RetrySchedule(op, seq)
		if len(got) != len(want) {
			t.Fatalf("%s: %d delays, want %d", opSeq, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s attempt %d = %v, want %v", opSeq, i, got[i], want[i])
			}
		}
	}

	// MaxDelay caps the pre-jitter exponential: with BaseDelay already
	// near the cap, every delay stays within [MaxDelay/2, MaxDelay].
	capped, err := New(Options{BaseURL: "http://daemon", Seed: 7, MaxAttempts: 3,
		BaseDelay: 100 * time.Millisecond, MaxDelay: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := capped.RetrySchedule("fetch", 0), []time.Duration{94208669, 127778577}; got[0] != want[0] || got[1] != want[1] {
		t.Errorf("capped schedule = %v, want %v", got, want)
	}
}

// TestBackoffIdenticalAcrossRuns constructs fresh clients repeatedly —
// the "separate process" case a test can approximate — and requires the
// whole jitter stream to replay identically: same delays for every
// (op, seq, attempt), with no dependence on construction order, prior
// clients, or anything ambient. This is the satellite audit's contract:
// retry jitter derives from the injected seed stream only.
func TestBackoffIdenticalAcrossRuns(t *testing.T) {
	schedule := func() [][]time.Duration {
		c, err := New(Options{BaseURL: "http://daemon", Seed: 99, MaxAttempts: 4})
		if err != nil {
			t.Fatal(err)
		}
		var out [][]time.Duration
		for _, op := range []string{"fetch", "upload"} {
			for seq := uint64(0); seq < 8; seq++ {
				out = append(out, c.RetrySchedule(op, seq))
			}
		}
		return out
	}
	first := schedule()
	// An unrelated client with another seed in between must not perturb
	// anything (no package-level RNG state to pollute).
	if other, err := New(Options{BaseURL: "http://daemon", Seed: 1234}); err != nil {
		t.Fatal(err)
	} else {
		other.RetrySchedule("fetch", 0)
	}
	for run := 0; run < 3; run++ {
		again := schedule()
		for i := range first {
			for j := range first[i] {
				if first[i][j] != again[i][j] {
					t.Fatalf("run %d: schedule %d attempt %d = %v, first run %v", run, i, j, again[i][j], first[i][j])
				}
			}
		}
	}
}
