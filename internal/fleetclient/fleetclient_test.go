package fleetclient

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polm2/internal/analyzer"
	"polm2/internal/rollout"
)

func testPlan(gen int) *analyzer.Profile {
	return &analyzer.Profile{
		App: "Cassandra", Workload: "WI", Generations: gen,
		Allocs: []analyzer.AllocDirective{{Loc: "A.m:1", Gen: gen, Direct: true}},
	}
}

// servePlan writes p with a version-derived ETag, honouring If-None-Match.
func servePlan(w http.ResponseWriter, r *http.Request, p *analyzer.Profile) {
	etag := fmt.Sprintf("%q", fmt.Sprintf("gen-%d", p.Generations))
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p)
}

// sleepRecorder captures every backoff delay instead of sleeping.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (s *sleepRecorder) sleep(d time.Duration) {
	s.mu.Lock()
	s.delays = append(s.delays, d)
	s.mu.Unlock()
}

func (s *sleepRecorder) slept() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.delays...)
}

func newClient(t *testing.T, opts Options) *Client {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBackoffDeterministicForSeed proves the retry schedule is a pure
// function of (seed, operation, sequence, attempt): same seed, same
// schedule; different seed, different jitter; delays grow exponentially
// within the equal-jitter envelope and cap at MaxDelay.
func TestBackoffDeterministicForSeed(t *testing.T) {
	opts := Options{BaseURL: "http://unused", Seed: 42, MaxAttempts: 6,
		BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	a := newClient(t, opts)
	b := newClient(t, opts)
	schedA := a.RetrySchedule("fetch", 0)
	schedB := b.RetrySchedule("fetch", 0)
	if len(schedA) != 5 {
		t.Fatalf("schedule length = %d, want MaxAttempts-1 = 5", len(schedA))
	}
	for i := range schedA {
		if schedA[i] != schedB[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, schedA[i], schedB[i])
		}
	}
	// Envelope: delay i sits in [d/2, d] for d = min(Base << i, Max).
	for i, got := range schedA {
		d := opts.BaseDelay << i
		if d > opts.MaxDelay {
			d = opts.MaxDelay
		}
		if got < d/2 || got > d {
			t.Fatalf("retry %d delay %v outside [%v, %v]", i, got, d/2, d)
		}
	}
	// A different seed jitters differently somewhere in the schedule.
	opts.Seed = 43
	schedC := newClient(t, opts).RetrySchedule("fetch", 0)
	same := true
	for i := range schedA {
		if schedA[i] != schedC[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical jitter schedules")
	}
	// Distinct operations of the same kind decorrelate too.
	seq1 := a.RetrySchedule("fetch", 1)
	same = true
	for i := range schedA {
		if schedA[i] != seq1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("operations 0 and 1 share a jitter schedule")
	}
}

// TestFetchFallsBackToLastGood: after a successful fetch, the daemon goes
// down; the client retries its full deterministic schedule, then serves
// the last good plan.
func TestFetchFallsBackToLastGood(t *testing.T) {
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "maintenance", http.StatusServiceUnavailable)
			return
		}
		servePlan(w, r, testPlan(2))
	}))
	defer ts.Close()

	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: ts.URL, Seed: 7, MaxAttempts: 3, Sleep: rec.sleep})
	p, outcome, err := c.FetchPlan("Cassandra", "WI")
	if err != nil || outcome != OutcomeFresh || p.Generations != 2 {
		t.Fatalf("healthy fetch = %+v, %v, %v", p, outcome, err)
	}
	// Still healthy: the conditional refetch is a 304 backed by the cache.
	p, outcome, err = c.FetchPlan("Cassandra", "WI")
	if err != nil || outcome != OutcomeNotModified || p.Generations != 2 {
		t.Fatalf("conditional fetch = %+v, %v, %v", p, outcome, err)
	}
	if len(rec.slept()) != 0 {
		t.Fatalf("healthy fetches slept: %v", rec.slept())
	}

	down.Store(true)
	p, outcome, err = c.FetchPlan("Cassandra", "WI")
	if err != nil {
		t.Fatalf("fallback fetch errored: %v", err)
	}
	if outcome != OutcomeFallback || p.Generations != 2 {
		t.Fatalf("fallback fetch = %+v, %v", p, outcome)
	}
	// The retries slept exactly the deterministic schedule of operation 2
	// (ops 0 and 1 were the healthy fetches).
	want := c.RetrySchedule("fetch", 2)
	got := rec.slept()
	if len(got) != len(want) {
		t.Fatalf("slept %d times, want %d (full retry schedule)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestFetchErrorsWithNoFallback: an unreachable daemon with no last good
// plan is a hard error after the bounded retries.
func TestFetchErrorsWithNoFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: ts.URL, Seed: 7, MaxAttempts: 3, Sleep: rec.sleep})
	if _, _, err := c.FetchPlan("Cassandra", "WI"); err == nil {
		t.Fatal("unreachable daemon with no fallback returned a plan")
	}
	if len(rec.slept()) != 2 {
		t.Fatalf("slept %d times, want MaxAttempts-1 = 2", len(rec.slept()))
	}
}

// TestFetchNoPlanIsPermanent: 404 means "no plan yet" — no retries, no
// error, no fallback.
func TestFetchNoPlanIsPermanent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no plan", http.StatusNotFound)
	}))
	defer ts.Close()
	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: ts.URL, Sleep: rec.sleep})
	p, outcome, err := c.FetchPlan("Cassandra", "WI")
	if err != nil || p != nil || outcome != OutcomeNoPlan {
		t.Fatalf("no-plan fetch = %+v, %v, %v", p, outcome, err)
	}
	if len(rec.slept()) != 0 {
		t.Fatalf("404 retried: slept %v", rec.slept())
	}
}

// TestUploadCarriesStableInstanceID: every evidence upload carries the
// client's instance id — the identity the daemon replaces evidence per —
// derived deterministically from the seed, stable across uploads and
// restarts, decorrelated across seeds, and overridable.
func TestUploadCarriesStableInstanceID(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(InstanceHeader))
		mu.Unlock()
		servePlan(w, r, testPlan(1))
	}))
	defer ts.Close()
	c := newClient(t, Options{BaseURL: ts.URL, Seed: 5})
	if c.InstanceID() == "" {
		t.Fatal("client derived no instance id")
	}
	for i := 0; i < 2; i++ {
		if _, err := c.UploadEvidence(testPlan(1)); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	got := append([]string(nil), seen...)
	mu.Unlock()
	if len(got) != 2 || got[0] != c.InstanceID() || got[1] != c.InstanceID() {
		t.Fatalf("uploads carried instance ids %v, want stable %q", got, c.InstanceID())
	}
	// Same seed, same identity (a restarted instance keeps replacing its
	// own evidence); different seeds decorrelate; an explicit id wins.
	if same := newClient(t, Options{BaseURL: ts.URL, Seed: 5}); same.InstanceID() != c.InstanceID() {
		t.Fatalf("seed 5 re-derived %q, want %q", same.InstanceID(), c.InstanceID())
	}
	if other := newClient(t, Options{BaseURL: ts.URL, Seed: 6}); other.InstanceID() == c.InstanceID() {
		t.Fatalf("seeds 5 and 6 share instance id %q", c.InstanceID())
	}
	if explicit := newClient(t, Options{BaseURL: ts.URL, Seed: 5, InstanceID: "rack-7"}); explicit.InstanceID() != "rack-7" {
		t.Fatalf("explicit instance id not honoured: %q", explicit.InstanceID())
	}
}

// TestFetchPlanEscapesKey: (app, workload) are arbitrary strings, so the
// plan query must be URL-encoded — '&', '=', '#', spaces and non-ASCII
// must arrive at the server intact.
func TestFetchPlanEscapesKey(t *testing.T) {
	var mu sync.Mutex
	var gotApp, gotWorkload string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gotApp = r.URL.Query().Get("app")
		gotWorkload = r.URL.Query().Get("workload")
		mu.Unlock()
		servePlan(w, r, testPlan(1))
	}))
	defer ts.Close()
	c := newClient(t, Options{BaseURL: ts.URL})
	app, workload := "my app&v=1", "write#heavy 50%é"
	if _, _, err := c.FetchPlan(app, workload); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotApp != app || gotWorkload != workload {
		t.Fatalf("server saw (%q, %q), want (%q, %q)", gotApp, gotWorkload, app, workload)
	}
}

// TestUploadRejectionIsPermanent: a 400 reject must not burn retries.
func TestUploadRejectionIsPermanent(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "rejected evidence", http.StatusBadRequest)
	}))
	defer ts.Close()
	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: ts.URL, Sleep: rec.sleep})
	if _, err := c.UploadEvidence(testPlan(1)); err == nil {
		t.Fatal("rejected upload reported success")
	}
	if hits.Load() != 1 || len(rec.slept()) != 0 {
		t.Fatalf("rejected upload retried: %d hits, slept %v", hits.Load(), rec.slept())
	}
}

// TestSyncEvidenceFallsBack: when the daemon cannot be reached mid-run,
// SyncEvidence serves the last good plan (fresh=false) instead of failing
// the re-profile.
func TestSyncEvidenceFallsBack(t *testing.T) {
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "maintenance", http.StatusServiceUnavailable)
			return
		}
		servePlan(w, r, testPlan(3))
	}))
	defer ts.Close()
	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: ts.URL, Seed: 9, MaxAttempts: 2, Sleep: rec.sleep})

	merged, fresh, err := c.SyncEvidence(testPlan(1))
	if err != nil || !fresh || merged.Generations != 3 {
		t.Fatalf("healthy sync = %+v, %v, %v", merged, fresh, err)
	}
	down.Store(true)
	merged, fresh, err = c.SyncEvidence(testPlan(1))
	if err != nil {
		t.Fatalf("fallback sync errored: %v", err)
	}
	if fresh || merged.Generations != 3 {
		t.Fatalf("fallback sync = %+v, fresh=%v", merged, fresh)
	}
	// With no last good plan at all, the error surfaces.
	c2 := newClient(t, Options{BaseURL: ts.URL, MaxAttempts: 2, Sleep: rec.sleep})
	if _, _, err := c2.SyncEvidence(testPlan(1)); err == nil {
		t.Fatal("sync with no fallback reported success")
	}
}

// Plan fetches carry the instance id so a rollout-enabled daemon can
// route the fetcher to its cohort's plan.
func TestFetchCarriesInstanceID(t *testing.T) {
	var gotInstance atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotInstance.Store(r.Header.Get(InstanceHeader))
		servePlan(w, r, testPlan(1))
	}))
	defer ts.Close()
	c := newClient(t, Options{BaseURL: ts.URL, InstanceID: "inst-42"})
	if _, _, err := c.FetchPlan("Cassandra", "WI"); err != nil {
		t.Fatal(err)
	}
	if got := gotInstance.Load(); got != "inst-42" {
		t.Fatalf("fetch carried instance %q, want inst-42", got)
	}
}

// ReportFeedback stamps the instance id and the last-good ETag, skips
// silently when no plan version is known, and treats 4xx as permanent.
func TestReportFeedback(t *testing.T) {
	var mu sync.Mutex
	var gotInstance, gotETag string
	var posts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/plan" {
			servePlan(w, r, testPlan(3))
			return
		}
		mu.Lock()
		posts++
		gotInstance = r.Header.Get(InstanceHeader)
		var rep rollout.Report
		json.NewDecoder(r.Body).Decode(&rep)
		gotETag = rep.ETag
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: ts.URL, InstanceID: "inst-7", Sleep: rec.sleep})

	rep := &rollout.Report{
		App: "Cassandra", Workload: "WI",
		WindowEnd: time.Second, Pauses: 4,
		PauseP50: time.Millisecond, PauseP99: 2 * time.Millisecond,
	}
	// No plan fetched yet: nothing to attribute the window to.
	if sent, err := c.ReportFeedback(rep); sent || err != nil {
		t.Fatalf("pre-plan feedback: sent=%v err=%v, want skipped", sent, err)
	}
	if _, _, err := c.FetchPlan("Cassandra", "WI"); err != nil {
		t.Fatal(err)
	}
	sent, err := c.ReportFeedback(rep)
	if !sent || err != nil {
		t.Fatalf("feedback: sent=%v err=%v", sent, err)
	}
	mu.Lock()
	if gotInstance != "inst-7" || gotETag != c.LastETag() || posts != 1 {
		t.Fatalf("daemon saw instance=%q etag=%q posts=%d, want inst-7/%s/1", gotInstance, gotETag, posts, c.LastETag())
	}
	mu.Unlock()
	// An invalid report is the caller's bug, reported without a request.
	bad := *rep
	bad.Pauses = -1
	if _, err := c.ReportFeedback(&bad); err == nil {
		t.Fatal("invalid report accepted")
	}
}

func TestReportFeedbackRejectionIsPermanent(t *testing.T) {
	var posts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		http.Error(w, "no such endpoint", http.StatusNotFound)
	}))
	defer ts.Close()
	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: ts.URL, Sleep: rec.sleep})
	rep := &rollout.Report{
		App: "Cassandra", Workload: "WI", ETag: `"v1"`,
		WindowEnd: time.Second, Pauses: 4,
		PauseP50: time.Millisecond, PauseP99: 2 * time.Millisecond,
	}
	if sent, err := c.ReportFeedback(rep); sent || err == nil {
		t.Fatalf("404 feedback: sent=%v err=%v, want permanent error", sent, err)
	}
	if posts.Load() != 1 || len(rec.slept()) != 0 {
		t.Fatalf("404 was retried: %d posts, %d sleeps", posts.Load(), len(rec.slept()))
	}
}
