package fleetclient

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// deadURL returns a URL nothing listens on: a closed listener's address,
// so connections are refused immediately instead of timing out.
func deadURL(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	url := ts.URL
	ts.Close()
	return url
}

// A dead primary rotates the client to the live secondary within one
// operation's retry budget, and the client then sticks to the secondary —
// later operations go there directly without re-probing the dead primary.
func TestFailoverOnTransportError(t *testing.T) {
	var hits atomic.Int64
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		servePlan(w, r, testPlan(2))
	}))
	defer live.Close()

	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: deadURL(t), BaseURLs: []string{live.URL}, Sleep: rec.sleep})
	p, outcome, err := c.FetchPlan("Cassandra", "WI")
	if err != nil || outcome != OutcomeFresh || p.Generations != 2 {
		t.Fatalf("failover fetch = %+v, %v, %v", p, outcome, err)
	}
	// Attempt 1 (dead, slept once) + attempt 2 (live).
	if len(rec.slept()) != 1 || hits.Load() != 1 {
		t.Fatalf("failover took %d sleeps and %d live hits, want 1 and 1", len(rec.slept()), hits.Load())
	}
	// Sticky: the next operation starts at the live endpoint.
	if _, _, err := c.FetchPlan("Cassandra", "WI"); err != nil {
		t.Fatal(err)
	}
	if len(rec.slept()) != 1 {
		t.Fatalf("post-failover fetch slept again: %v", rec.slept())
	}
}

// HTTP-level failures do not rotate: a daemon answering 5xx is alive, and
// the client keeps retrying it rather than abandoning a known endpoint.
func TestNoFailoverOnServerError(t *testing.T) {
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer primary.Close()
	var secondaryHits atomic.Int64
	secondary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		secondaryHits.Add(1)
		servePlan(w, r, testPlan(2))
	}))
	defer secondary.Close()

	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: primary.URL, BaseURLs: []string{secondary.URL}, MaxAttempts: 3, Sleep: rec.sleep})
	if _, _, err := c.FetchPlan("Cassandra", "WI"); err == nil {
		t.Fatal("all-5xx fetch with no last good plan reported success")
	}
	if secondaryHits.Load() != 0 {
		t.Fatalf("5xx rotated to the secondary (%d hits), want sticky primary", secondaryHits.Load())
	}
}

// With every endpoint down, the rotation wraps and the operation exhausts
// its retries; the last good plan still salvages the fetch.
func TestFailoverFallsBackWhenAllDown(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		servePlan(w, r, testPlan(2))
	}))
	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: live.URL, BaseURLs: []string{deadURL(t)}, MaxAttempts: 3, Sleep: rec.sleep})
	if _, outcome, err := c.FetchPlan("Cassandra", "WI"); err != nil || outcome != OutcomeFresh {
		t.Fatalf("seeding fetch = %v, %v", outcome, err)
	}
	live.Close()
	p, outcome, err := c.FetchPlan("Cassandra", "WI")
	if err != nil || outcome != OutcomeFallback || p.Generations != 2 {
		t.Fatalf("all-down fetch = %+v, %v, %v, want last-good fallback", p, outcome, err)
	}
}

// Evidence uploads carry the client's own sequence number: advanced once
// per upload call, constant across that call's retries, so a replayed
// upload cannot leapfrog a newer one after failover.
func TestUploadSequenceHeader(t *testing.T) {
	var mu sync.Mutex
	var seqs []string
	var fail atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seqs = append(seqs, r.Header.Get(EvidenceSeqHeader))
		mu.Unlock()
		if fail.CompareAndSwap(true, false) {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		servePlan(w, r, testPlan(1))
	}))
	defer ts.Close()

	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: ts.URL, Sleep: rec.sleep})
	if _, err := c.UploadEvidence(testPlan(1)); err != nil {
		t.Fatal(err)
	}
	fail.Store(true) // second upload: one 503, then success on retry
	if _, err := c.UploadEvidence(testPlan(1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 3 {
		t.Fatalf("daemon saw %d uploads, want 3 (1 + retried pair)", len(seqs))
	}
	if seqs[0] != "1" || seqs[1] != "2" || seqs[2] != "2" {
		t.Fatalf("upload sequence headers = %v, want [1 2 2]", seqs)
	}
}

// Failover applies to uploads too: a dead primary's upload lands on the
// secondary with its sequence intact.
func TestUploadFailsOver(t *testing.T) {
	var mu sync.Mutex
	var seqs []string
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seqs = append(seqs, r.Header.Get(EvidenceSeqHeader))
		mu.Unlock()
		servePlan(w, r, testPlan(1))
	}))
	defer live.Close()
	rec := &sleepRecorder{}
	c := newClient(t, Options{BaseURL: deadURL(t), BaseURLs: []string{live.URL}, Sleep: rec.sleep})
	if _, err := c.UploadEvidence(testPlan(1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 1 || seqs[0] != "1" {
		t.Fatalf("failover upload sequence = %v, want [1]", seqs)
	}
}
