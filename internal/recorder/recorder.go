// Package recorder implements the Recorder component of POLM2 (§3.2, §4.1).
//
// The Recorder runs attached to the execution engine (the paper attaches a
// Java agent to the JVM) and does two things:
//
//  1. It logs every object allocation: the stack trace of the allocation
//     site plus the allocated object's identity hash. To bound memory and
//     CPU overhead it keeps only a table of distinct stack traces in memory
//     and continuously streams the identity hashes to disk, one stream per
//     allocation site; the stack-trace table itself is flushed once, at the
//     end of the profiling run (§3.2).
//
//  2. After every GC cycle (configurable to every k-th cycle) it prepares
//     the heap for a snapshot by marking pages holding no reachable objects
//     as no-need (the paper's madvise pass, §4.2) and asks the Dumper to
//     create a new incremental snapshot.
//
// On-disk artifacts are version 2: id streams are CRC32C-framed with a
// commit trailer (see stream.go) and the site table carries a line count
// footer and is published by atomic rename, so a profiling run killed
// mid-write never leaves an ambiguous artifact — only a shorter one.
package recorder

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"polm2/internal/faultio"
	"polm2/internal/heap"
	"polm2/internal/jvm"
)

// SiteTableFile is the name of the stack-trace table file within a
// recording directory.
const SiteTableFile = "sites.tsv"

// siteTableHeader and siteTableFooter frame a version-2 site table. A
// table without the header is a pre-framing v1 table and is accepted as-is;
// a table with the header but no matching footer was cut short.
const (
	siteTableHeader = "# polm2 sites v2"
	siteTableFooter = "# end sites="
)

// streamFile names the identity-hash stream for one allocation site.
func streamFile(site heap.SiteID) string {
	return fmt.Sprintf("site-%06d.bin", site)
}

// SnapshotSink receives snapshot requests from the Recorder. The Dumper
// implements it.
type SnapshotSink interface {
	// Snapshot creates a new heap snapshot. The heap's no-need bits have
	// already been refreshed by the Recorder.
	Snapshot(cycle uint64) error
}

// Config parameterizes a Recorder.
type Config struct {
	// Dir is the directory allocation records are written into. It must
	// exist.
	Dir string
	// SnapshotEvery requests a snapshot after every k-th GC cycle.
	// Default 1: after every cycle, the paper's default (§3.2).
	SnapshotEvery int
	// Fault optionally interposes a fault-injection plan on every artifact
	// write. Nil writes straight through.
	Fault *faultio.Injector
}

// Recorder streams allocation records to disk and triggers snapshots.
type Recorder struct {
	cfg   Config
	h     *heap.Heap
	sites *jvm.SiteTable
	sink  SnapshotSink

	streams map[heap.SiteID]*streamWriter
	// allocCounts tallies allocations per site (diagnostics + tests).
	allocCounts map[heap.SiteID]uint64
	firstErr    error
	closed      bool
}

// New builds a Recorder writing into cfg.Dir.
func New(cfg Config, h *heap.Heap, sites *jvm.SiteTable, sink SnapshotSink) (*Recorder, error) {
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 1
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("recorder: SnapshotEvery must be positive, got %d", cfg.SnapshotEvery)
	}
	info, err := os.Stat(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("recorder: output dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("recorder: output path %q is not a directory", cfg.Dir)
	}
	return &Recorder{
		cfg:         cfg,
		h:           h,
		sites:       sites,
		sink:        sink,
		streams:     make(map[heap.SiteID]*streamWriter),
		allocCounts: make(map[heap.SiteID]uint64),
	}, nil
}

// Attach registers the Recorder's allocation hook and GC-cycle listener on
// the engine, the equivalent of loading the paper's recording agent into
// the JVM.
func (r *Recorder) Attach(vm *jvm.VM) {
	vm.AddAllocHook(r.RecordAlloc)
	vm.Collector().OnCycleEnd(r.CycleEnd)
}

// RecordAlloc logs one allocation: the object's identity hash is appended
// to the site's stream. Errors are sticky and surfaced by Close.
func (r *Recorder) RecordAlloc(site heap.SiteID, obj *heap.Object) {
	if r.firstErr != nil || r.closed {
		return
	}
	s, ok := r.streams[site]
	if !ok {
		f, err := r.cfg.Fault.Create(filepath.Join(r.cfg.Dir, streamFile(site)))
		if err != nil {
			r.firstErr = fmt.Errorf("recorder: creating stream for site %d: %w", site, err)
			return
		}
		s, err = newStreamWriter(f)
		if err != nil {
			r.firstErr = fmt.Errorf("recorder: starting stream for site %d: %w", site, err)
			return
		}
		r.streams[site] = s
	}
	if err := s.appendID(uint64(obj.ID)); err != nil {
		r.firstErr = fmt.Errorf("recorder: writing id for site %d: %w", site, err)
		return
	}
	r.allocCounts[site]++
}

// CycleEnd is the GC-cycle listener: on every k-th cycle it refreshes the
// no-need bits from the live set the collector just computed, then asks the
// Dumper for a snapshot.
func (r *Recorder) CycleEnd(cycle uint64, live *heap.LiveSet) {
	if r.firstErr != nil || r.closed || r.sink == nil {
		return
	}
	if cycle%uint64(r.cfg.SnapshotEvery) != 0 {
		return
	}
	r.h.MarkNoNeedPages(live)
	if err := r.sink.Snapshot(cycle); err != nil {
		r.firstErr = fmt.Errorf("recorder: snapshot at cycle %d: %w", cycle, err)
	}
}

// AllocCount returns the number of allocations recorded for a site.
func (r *Recorder) AllocCount(site heap.SiteID) uint64 { return r.allocCounts[site] }

// siteIDs returns the recorded sites in ascending order.
func (r *Recorder) siteIDs() []heap.SiteID {
	ids := make([]heap.SiteID, 0, len(r.streams))
	for id := range r.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Flush seals and pushes every id stream to disk and (re)writes the
// stack-trace table without ending the recording. The online profiling mode
// calls it before each re-analysis so the Analyzer sees a consistent
// on-disk state; flushed-but-unclosed streams carry no commit trailer yet,
// which is exactly what SalvageIDs tolerates and ReadIDs refuses.
func (r *Recorder) Flush() error {
	if r.closed {
		return fmt.Errorf("recorder: Flush after Close")
	}
	for _, id := range r.siteIDs() {
		if err := r.streams[id].Flush(); err != nil {
			if r.firstErr == nil {
				r.firstErr = fmt.Errorf("recorder: flushing site %d: %w", id, err)
			}
			return r.firstErr
		}
	}
	if err := r.writeSiteTable(); err != nil {
		if r.firstErr == nil {
			r.firstErr = err
		}
		return r.firstErr
	}
	return r.firstErr
}

// Close commits every id stream — sealing the last frame and writing the
// commit trailer — and writes the stack-trace table, then reports the first
// error encountered anywhere in the recording.
func (r *Recorder) Close() error {
	if r.closed {
		return r.firstErr
	}
	if err := r.writeSiteTable(); err != nil && r.firstErr == nil {
		r.firstErr = err
	}
	r.closed = true
	for _, id := range r.siteIDs() {
		if err := r.streams[id].Close(); err != nil && r.firstErr == nil {
			r.firstErr = fmt.Errorf("recorder: closing site %d: %w", id, err)
		}
	}
	return r.firstErr
}

// writeSiteTable persists only the sites that actually allocated: one line
// per site, "id<TAB>frame;frame;...", framed by a version header and a
// count footer, published by atomic rename.
func (r *Recorder) writeSiteTable() error {
	var buf bytes.Buffer
	fmt.Fprintln(&buf, siteTableHeader)
	lines := 0
	for _, entry := range r.sites.All() {
		if _, used := r.allocCounts[entry.ID]; !used {
			continue
		}
		fmt.Fprintf(&buf, "%d\t%s\n", entry.ID, entry.Trace.String())
		lines++
	}
	fmt.Fprintf(&buf, "%s%d\n", siteTableFooter, lines)

	final := filepath.Join(r.cfg.Dir, SiteTableFile)
	tmp := final + ".tmp"
	f, err := r.cfg.Fault.Create(tmp)
	if err != nil {
		return fmt.Errorf("recorder: creating site table: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("recorder: writing site table: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("recorder: closing site table: %w", err)
	}
	if r.cfg.Fault.Crashed() {
		// Died before the rename: the new table never becomes visible.
		return nil
	}
	if _, err := os.Stat(tmp); err != nil {
		// A missing-file fault swallowed the temporary entirely.
		return nil
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("recorder: publishing site table: %w", err)
	}
	return nil
}

// TableSalvage describes how much of a site table a decode recovered.
type TableSalvage struct {
	// Version is the detected table version (1 or 2).
	Version int
	// Sites is the number of entries recovered.
	Sites int
	// Complete reports a verified count footer (v2) or an undamaged v1
	// table.
	Complete bool
	// BadLines counts malformed lines that were skipped.
	BadLines int
	// Reason says why the table is incomplete, empty when Complete.
	Reason string
}

// LoadSiteTable reads a persisted stack-trace table back, strictly: any
// malformed line or a missing v2 footer is refused with an error wrapping
// ErrCorrupt or ErrTruncated. The Analyzer uses it as the first step of
// §3.3's algorithm.
func LoadSiteTable(dir string) (map[heap.SiteID]jvm.StackTrace, error) {
	out, _, err := loadSiteTable(dir, true)
	return out, err
}

// SalvageSiteTable reads back as much of a stack-trace table as survives,
// skipping malformed lines. The error is non-nil only when the file cannot
// be read at all.
func SalvageSiteTable(dir string) (map[heap.SiteID]jvm.StackTrace, *TableSalvage, error) {
	return loadSiteTable(dir, false)
}

func loadSiteTable(dir string, strict bool) (map[heap.SiteID]jvm.StackTrace, *TableSalvage, error) {
	data, err := os.ReadFile(filepath.Join(dir, SiteTableFile))
	if err != nil {
		return nil, nil, fmt.Errorf("recorder: reading site table: %w", err)
	}
	sal := &TableSalvage{Version: 1}
	out := make(map[heap.SiteID]jvm.StackTrace)
	footerCount := -1
	lines := strings.Split(string(data), "\n")
	// Any leading comment marks a v2 table: v1 tables are headerless, so a
	// "#" first line can only be our header — possibly cut short by a torn
	// write, which the footer check below then catches.
	if len(lines) > 0 && strings.HasPrefix(lines[0], "#") {
		sal.Version = 2
	}
	for lineNo, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if v, ok := strings.CutPrefix(line, siteTableFooter); ok {
				if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
					footerCount = n
				}
			}
			continue
		}
		id, trace, err := parseSiteLine(line)
		if err != nil {
			if strict {
				return nil, sal, fmt.Errorf("%w: site table line %d: %v", ErrCorrupt, lineNo+1, err)
			}
			sal.BadLines++
			continue
		}
		out[id] = trace
	}
	sal.Sites = len(out)
	switch {
	case sal.Version == 2 && footerCount < 0:
		sal.Reason = "site table ends without its count footer"
	case sal.Version == 2 && footerCount != len(out)+sal.BadLines:
		sal.Reason = fmt.Sprintf("site table footer promises %d sites, found %d", footerCount, len(out)+sal.BadLines)
	case sal.BadLines > 0:
		sal.Reason = fmt.Sprintf("%d malformed site table lines skipped", sal.BadLines)
	default:
		sal.Complete = true
	}
	if strict && !sal.Complete {
		return nil, sal, fmt.Errorf("%w: %s", ErrTruncated, sal.Reason)
	}
	return out, sal, nil
}

func parseSiteLine(line string) (heap.SiteID, jvm.StackTrace, error) {
	idStr, traceStr, ok := strings.Cut(line, "\t")
	if !ok {
		return 0, nil, fmt.Errorf("no tab separator")
	}
	id, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		return 0, nil, err
	}
	var trace jvm.StackTrace
	for _, frameStr := range strings.Split(traceStr, ";") {
		loc, err := jvm.ParseCodeLoc(frameStr)
		if err != nil {
			return 0, nil, err
		}
		trace = append(trace, loc)
	}
	if len(trace) == 0 {
		return 0, nil, fmt.Errorf("empty trace")
	}
	return heap.SiteID(id), trace, nil
}
