// Package recorder implements the Recorder component of POLM2 (§3.2, §4.1).
//
// The Recorder runs attached to the execution engine (the paper attaches a
// Java agent to the JVM) and does two things:
//
//  1. It logs every object allocation: the stack trace of the allocation
//     site plus the allocated object's identity hash. To bound memory and
//     CPU overhead it keeps only a table of distinct stack traces in memory
//     and continuously streams the identity hashes to disk, one stream per
//     allocation site; the stack-trace table itself is flushed once, at the
//     end of the profiling run (§3.2).
//
//  2. After every GC cycle (configurable to every k-th cycle) it prepares
//     the heap for a snapshot by marking pages holding no reachable objects
//     as no-need (the paper's madvise pass, §4.2) and asks the Dumper to
//     create a new incremental snapshot.
package recorder

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"polm2/internal/heap"
	"polm2/internal/jvm"
)

// SiteTableFile is the name of the stack-trace table file within a
// recording directory.
const SiteTableFile = "sites.tsv"

// streamFile names the identity-hash stream for one allocation site.
func streamFile(site heap.SiteID) string {
	return fmt.Sprintf("site-%06d.bin", site)
}

// SnapshotSink receives snapshot requests from the Recorder. The Dumper
// implements it.
type SnapshotSink interface {
	// Snapshot creates a new heap snapshot. The heap's no-need bits have
	// already been refreshed by the Recorder.
	Snapshot(cycle uint64) error
}

// Config parameterizes a Recorder.
type Config struct {
	// Dir is the directory allocation records are written into. It must
	// exist.
	Dir string
	// SnapshotEvery requests a snapshot after every k-th GC cycle.
	// Default 1: after every cycle, the paper's default (§3.2).
	SnapshotEvery int
}

// Recorder streams allocation records to disk and triggers snapshots.
type Recorder struct {
	cfg   Config
	h     *heap.Heap
	sites *jvm.SiteTable
	sink  SnapshotSink

	streams map[heap.SiteID]*stream
	// allocCounts tallies allocations per site (diagnostics + tests).
	allocCounts map[heap.SiteID]uint64
	firstErr    error
	closed      bool
}

type stream struct {
	f *os.File
	w *bufio.Writer
}

// New builds a Recorder writing into cfg.Dir.
func New(cfg Config, h *heap.Heap, sites *jvm.SiteTable, sink SnapshotSink) (*Recorder, error) {
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 1
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("recorder: SnapshotEvery must be positive, got %d", cfg.SnapshotEvery)
	}
	info, err := os.Stat(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("recorder: output dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("recorder: output path %q is not a directory", cfg.Dir)
	}
	return &Recorder{
		cfg:         cfg,
		h:           h,
		sites:       sites,
		sink:        sink,
		streams:     make(map[heap.SiteID]*stream),
		allocCounts: make(map[heap.SiteID]uint64),
	}, nil
}

// Attach registers the Recorder's allocation hook and GC-cycle listener on
// the engine, the equivalent of loading the paper's recording agent into
// the JVM.
func (r *Recorder) Attach(vm *jvm.VM) {
	vm.AddAllocHook(r.RecordAlloc)
	vm.Collector().OnCycleEnd(r.CycleEnd)
}

// RecordAlloc logs one allocation: the object's identity hash is appended
// to the site's stream. Errors are sticky and surfaced by Close.
func (r *Recorder) RecordAlloc(site heap.SiteID, obj *heap.Object) {
	if r.firstErr != nil || r.closed {
		return
	}
	s, ok := r.streams[site]
	if !ok {
		f, err := os.Create(filepath.Join(r.cfg.Dir, streamFile(site)))
		if err != nil {
			r.firstErr = fmt.Errorf("recorder: creating stream for site %d: %w", site, err)
			return
		}
		s = &stream{f: f, w: bufio.NewWriterSize(f, 32*1024)}
		r.streams[site] = s
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(obj.ID))
	if _, err := s.w.Write(buf[:n]); err != nil {
		r.firstErr = fmt.Errorf("recorder: writing id for site %d: %w", site, err)
		return
	}
	r.allocCounts[site]++
}

// CycleEnd is the GC-cycle listener: on every k-th cycle it refreshes the
// no-need bits from the live set the collector just computed, then asks the
// Dumper for a snapshot.
func (r *Recorder) CycleEnd(cycle uint64, live *heap.LiveSet) {
	if r.firstErr != nil || r.closed || r.sink == nil {
		return
	}
	if cycle%uint64(r.cfg.SnapshotEvery) != 0 {
		return
	}
	r.h.MarkNoNeedPages(live)
	if err := r.sink.Snapshot(cycle); err != nil {
		r.firstErr = fmt.Errorf("recorder: snapshot at cycle %d: %w", cycle, err)
	}
}

// AllocCount returns the number of allocations recorded for a site.
func (r *Recorder) AllocCount(site heap.SiteID) uint64 { return r.allocCounts[site] }

// Flush pushes every id stream to disk and (re)writes the stack-trace
// table without ending the recording. The online profiling mode calls it
// before each re-analysis so the Analyzer sees a consistent on-disk state.
func (r *Recorder) Flush() error {
	if r.closed {
		return fmt.Errorf("recorder: Flush after Close")
	}
	ids := make([]heap.SiteID, 0, len(r.streams))
	for id := range r.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := r.streams[id].w.Flush(); err != nil {
			if r.firstErr == nil {
				r.firstErr = fmt.Errorf("recorder: flushing site %d: %w", id, err)
			}
			return r.firstErr
		}
	}
	if err := r.writeSiteTable(); err != nil {
		if r.firstErr == nil {
			r.firstErr = err
		}
		return r.firstErr
	}
	return r.firstErr
}

// Close flushes every id stream and writes the stack-trace table, then
// reports the first error encountered anywhere in the recording.
func (r *Recorder) Close() error {
	if r.closed {
		return r.firstErr
	}
	if err := r.Flush(); err != nil && r.firstErr == nil {
		r.firstErr = err
	}
	r.closed = true

	ids := make([]heap.SiteID, 0, len(r.streams))
	for id := range r.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := r.streams[id].f.Close(); err != nil && r.firstErr == nil {
			r.firstErr = fmt.Errorf("recorder: closing site %d: %w", id, err)
		}
	}
	return r.firstErr
}

// writeSiteTable persists only the sites that actually allocated: one line
// per site, "id<TAB>frame;frame;...".
func (r *Recorder) writeSiteTable() error {
	f, err := os.Create(filepath.Join(r.cfg.Dir, SiteTableFile))
	if err != nil {
		return fmt.Errorf("recorder: creating site table: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, entry := range r.sites.All() {
		if _, used := r.allocCounts[entry.ID]; !used {
			continue
		}
		if _, err := fmt.Fprintf(w, "%d\t%s\n", entry.ID, entry.Trace.String()); err != nil {
			f.Close()
			return fmt.Errorf("recorder: writing site table: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("recorder: flushing site table: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("recorder: closing site table: %w", err)
	}
	return nil
}

// LoadSiteTable reads a persisted stack-trace table back. The Analyzer uses
// it as the first step of §3.3's algorithm.
func LoadSiteTable(dir string) (map[heap.SiteID]jvm.StackTrace, error) {
	data, err := os.ReadFile(filepath.Join(dir, SiteTableFile))
	if err != nil {
		return nil, fmt.Errorf("recorder: reading site table: %w", err)
	}
	out := make(map[heap.SiteID]jvm.StackTrace)
	for lineNo, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		idStr, traceStr, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("recorder: site table line %d malformed", lineNo+1)
		}
		id, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("recorder: site table line %d: %w", lineNo+1, err)
		}
		var trace jvm.StackTrace
		for _, frameStr := range strings.Split(traceStr, ";") {
			loc, err := jvm.ParseCodeLoc(frameStr)
			if err != nil {
				return nil, fmt.Errorf("recorder: site table line %d: %w", lineNo+1, err)
			}
			trace = append(trace, loc)
		}
		if len(trace) == 0 {
			return nil, fmt.Errorf("recorder: site table line %d has empty trace", lineNo+1)
		}
		out[heap.SiteID(id)] = trace
	}
	return out, nil
}

// ReadIDs streams the identity hashes recorded for one site back from disk.
func ReadIDs(dir string, site heap.SiteID) ([]heap.ObjectID, error) {
	f, err := os.Open(filepath.Join(dir, streamFile(site)))
	if err != nil {
		return nil, fmt.Errorf("recorder: opening stream for site %d: %w", site, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 32*1024)
	var out []heap.ObjectID
	for {
		v, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("recorder: decoding stream for site %d: %w", site, err)
		}
		out = append(out, heap.ObjectID(v))
	}
}
