package recorder

import (
	"os"
	"path/filepath"
	"testing"

	"polm2/internal/heap"
)

// FuzzDecodeStream drives the id-stream decoder with arbitrary bytes: it
// must never panic and never allocate unboundedly, only return ids or a
// typed error, and the salvage decode must recover a prefix of whatever
// the strict decode would accept. The seed corpus holds both format
// versions, including real v1 streams from a pre-PR profiling run.
func FuzzDecodeStream(f *testing.F) {
	// v2 seeds: an empty committed stream, a small one, and a multi-frame
	// one, plus the same multi-frame stream left live (no trailer).
	dir := f.TempDir()
	for _, c := range []struct {
		site   uint32
		n      int
		commit bool
	}{{1, 0, true}, {2, 17, true}, {3, 5000, true}, {4, 5000, false}} {
		path := filepath.Join(dir, streamFile(heap.SiteID(c.site)))
		func() {
			fh, err := os.Create(path)
			if err != nil {
				f.Fatal(err)
			}
			w, err := newStreamWriter(fh)
			if err != nil {
				f.Fatal(err)
			}
			for i := 1; i <= c.n; i++ {
				if err := w.appendID(uint64(i * 7)); err != nil {
					f.Fatal(err)
				}
			}
			if c.commit {
				if err := w.Close(); err != nil {
					f.Fatal(err)
				}
			} else {
				if err := w.Flush(); err != nil {
					f.Fatal(err)
				}
				fh.Close()
			}
		}()
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Real v1 streams recorded before the framed format existed.
	paths, err := filepath.Glob(filepath.Join(v1RecDir, "site-*.bin"))
	if err != nil {
		f.Fatal(err)
	}
	for i, path := range paths {
		if i >= 4 {
			break // a few genuine streams are enough seed diversity
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(streamMagic + "\x02"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		strictIDs, _, strictErr := decodeStream(data, true)
		salIDs, sal, salErr := decodeStream(data, false)
		if salErr != nil {
			t.Fatalf("salvage decode returned an error: %v", salErr)
		}
		if sal == nil || sal.TotalBytes != int64(len(data)) {
			t.Fatalf("salvage account missing or wrong size: %+v", sal)
		}
		if c := sal.Confidence(); len(data) > 0 && (c < 0 || c > 1) {
			t.Fatalf("confidence %v out of range", c)
		}
		if strictErr == nil {
			// When strict accepts, salvage must agree exactly.
			if len(salIDs) != len(strictIDs) {
				t.Fatalf("strict decoded %d ids, salvage %d", len(strictIDs), len(salIDs))
			}
			for i := range strictIDs {
				if strictIDs[i] != salIDs[i] {
					t.Fatalf("id %d differs between strict and salvage", i)
				}
			}
		} else if len(salIDs) > len(strictIDs) && strictIDs != nil {
			t.Fatalf("salvage recovered more than strict on success path")
		}
	})
}
