package recorder

import (
	"errors"
	"os"
)

var errTest = errors.New("recorder_test: injected failure")

func writeBytes(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
