package recorder

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polm2/internal/faultio"
	"polm2/internal/heap"
)

// Checked-in artifact directories: v1 was recorded before the framed
// format existed, v2 by the identical run after it.
const (
	v1RecDir = "../../testdata/artifacts/v1/records"
	v2RecDir = "../../testdata/artifacts/v2/records"
)

func TestReadV1Artifacts(t *testing.T) {
	table, err := LoadSiteTable(v1RecDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) == 0 {
		t.Fatal("v1 site table decoded empty")
	}
	var total int
	for sid := range table {
		ids, err := ReadIDs(v1RecDir, sid)
		if err != nil {
			t.Fatalf("site %d: %v", sid, err)
		}
		total += len(ids)
	}
	if total == 0 {
		t.Fatal("v1 streams decoded no ids")
	}
}

func TestV1AndV2ArtifactsCarrySameRecords(t *testing.T) {
	// The v2 artifacts were produced by re-running the exact v1 profiling
	// configuration after the format bump: every stream must decode to
	// the same id sequence, and every v2 stream must actually be framed.
	tableV1, err := LoadSiteTable(v1RecDir)
	if err != nil {
		t.Fatal(err)
	}
	tableV2, err := LoadSiteTable(v2RecDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tableV1) != len(tableV2) {
		t.Fatalf("site counts differ: v1=%d v2=%d", len(tableV1), len(tableV2))
	}
	for sid := range tableV1 {
		a, err := ReadIDs(v1RecDir, sid)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ReadIDs(v2RecDir, sid)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("site %d: id counts differ (v1=%d v2=%d)", sid, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("site %d id %d differs", sid, i)
			}
		}
		data, err := os.ReadFile(filepath.Join(v2RecDir, streamFile(sid)))
		if err != nil {
			t.Fatal(err)
		}
		if string(data[:4]) != streamMagic {
			t.Fatalf("site %d v2 stream is not framed", sid)
		}
	}
}

// recordStream writes one framed stream of sequential ids and returns its
// path, leaving the stream committed (Close) or live (Flush only).
func recordStream(t *testing.T, dir string, site heap.SiteID, n int, commit bool) string {
	t.Helper()
	path := filepath.Join(dir, streamFile(site))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := newStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := w.appendID(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if commit {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestLiveStreamStrictRefusesSalvageAccepts(t *testing.T) {
	dir := t.TempDir()
	recordStream(t, dir, 3, 5000, false)

	if _, err := ReadIDs(dir, 3); !errors.Is(err, ErrTruncated) {
		t.Fatalf("strict read of a live stream: err = %v, want ErrTruncated", err)
	}
	ids, sal, err := SalvageIDs(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5000 {
		t.Fatalf("salvaged %d ids, want all 5000 (flush seals frames)", len(ids))
	}
	if sal.Complete || sal.LostBytes != 0 || sal.Confidence() != 1 {
		t.Fatalf("live-stream salvage = %+v", sal)
	}
}

func TestStreamTypedErrorsAndSalvagePrefix(t *testing.T) {
	dir := t.TempDir()
	path := recordStream(t, dir, 9, 5000, true)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation mid-stream: strict refuses with ErrTruncated, salvage
	// recovers a non-empty prefix.
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIDs(dir, 9); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated strict err = %v", err)
	}
	ids, sal, err := SalvageIDs(dir, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || len(ids) >= 5000 || sal.Frames == 0 {
		t.Fatalf("truncated salvage: %d ids, %+v", len(ids), sal)
	}
	for i, id := range ids {
		if id != heap.ObjectID(i+1) {
			t.Fatalf("salvaged id %d = %d, not a prefix", i, id)
		}
	}

	// A flipped payload bit: the damaged frame and everything after drop,
	// the prefix before it survives.
	mangled := append([]byte(nil), full...)
	mangled[len(mangled)/2] ^= 0x40
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIDs(dir, 9); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("bit-flip strict err = %v", err)
	}
	ids, sal, err = SalvageIDs(dir, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) >= 5000 || sal.Complete {
		t.Fatalf("bit-flip salvage recovered too much: %d ids, %+v", len(ids), sal)
	}

	// Trailing junk after the commit trailer: corrupt in strict mode, but
	// salvage keeps every committed id.
	junk := append(append([]byte(nil), full...), 0xde, 0xad)
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIDs(dir, 9); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing-junk strict err = %v", err)
	}
	ids, _, err = SalvageIDs(dir, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5000 {
		t.Fatalf("trailing-junk salvage = %d ids, want 5000", len(ids))
	}
}

func TestSiteTableFooterDetectsTruncation(t *testing.T) {
	vm := newEngine(t)
	dir := t.TempDir()
	rec, err := New(Config{Dir: dir}, vm.Heap(), vm.Sites(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(vm)
	th := vm.NewThread("t")
	th.Enter("Main", "run")
	for line := 10; line < 20; line++ {
		if _, err := th.Alloc(line, 64); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, SiteTableFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), siteTableHeader) {
		t.Fatalf("v2 site table missing header: %q", data[:20])
	}
	if _, err := LoadSiteTable(dir); err != nil {
		t.Fatal(err)
	}

	// Cut the footer off: strict load refuses, salvage recovers the
	// entries and says why it is incomplete.
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	cut := strings.Join(lines[:len(lines)-3], "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, SiteTableFile), []byte(cut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSiteTable(dir); !errors.Is(err, ErrTruncated) {
		t.Fatalf("footerless strict err = %v", err)
	}
	got, tsal, err := SalvageSiteTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tsal.Complete || tsal.Version != 2 || len(got) != len(lines)-4 {
		t.Fatalf("footerless salvage: %d sites, %+v", len(got), tsal)
	}
}

func TestSiteTableSalvageSkipsMalformedLines(t *testing.T) {
	dir := t.TempDir()
	table := "1\tMain.run:10\ngarbage-without-tab\n2\tMain.run:11\n"
	if err := writeBytes(filepath.Join(dir, SiteTableFile), []byte(table)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSiteTable(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("malformed strict err = %v", err)
	}
	got, tsal, err := SalvageSiteTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || tsal.BadLines != 1 || tsal.Complete {
		t.Fatalf("malformed salvage: %d sites, %+v", len(got), tsal)
	}
}

func TestRecorderUnderTornFault(t *testing.T) {
	vm := newEngine(t)
	dir := t.TempDir()
	// Tear past the first 4 KiB frame so a verified prefix survives the cut.
	plan, err := faultio.ParseSpec("torn:site-*.bin@8192")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := New(Config{Dir: dir, Fault: faultio.New(plan)}, vm.Heap(), vm.Sites(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(vm)
	th := vm.NewThread("t")
	th.Enter("Main", "run")
	var site heap.SiteID
	for i := 0; i < 8000; i++ {
		obj, err := th.Alloc(10, 64)
		if err != nil {
			t.Fatal(err)
		}
		site = obj.Site
		if i%1000 == 999 {
			th.ReleaseLocals()
		}
	}
	// The fault is silent: the recorder believes everything succeeded.
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadIDs(dir, site); err == nil {
		t.Fatal("strict read of a torn stream should fail")
	}
	ids, sal, err := SalvageIDs(dir, site)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || len(ids) >= 8000 {
		t.Fatalf("torn salvage recovered %d of 8000 ids", len(ids))
	}
	if sal.Complete || sal.LostBytes == 0 {
		t.Fatalf("torn salvage account = %+v", sal)
	}
	// The table was not matched by the glob and survives whole.
	if _, err := LoadSiteTable(dir); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderCrashLosesSuffixOnly(t *testing.T) {
	vm := newEngine(t)
	dir := t.TempDir()
	plan, err := faultio.ParseSpec("crash#2")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := New(Config{Dir: dir, Fault: faultio.New(plan)}, vm.Heap(), vm.Sites(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(vm)
	th := vm.NewThread("t")
	th.Enter("Main", "run")
	var site heap.SiteID
	for i := 0; i < 20000; i++ {
		obj, err := th.Alloc(10, 64)
		if err != nil {
			t.Fatal(err)
		}
		site = obj.Site
		if i%1000 == 999 {
			th.ReleaseLocals()
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash cut the stream short but what landed is decodable.
	ids, sal, err := SalvageIDs(dir, site)
	if err != nil {
		t.Fatal(err)
	}
	if sal.Complete {
		t.Fatal("crashed stream cannot carry a commit trailer")
	}
	if len(ids) == 0 || len(ids) >= 20000 {
		t.Fatalf("crash salvage recovered %d of 20000 ids", len(ids))
	}
	// The site table's atomic rename was skipped after the crash: the
	// final file never appears, rather than appearing half-written.
	if _, err := os.Stat(filepath.Join(dir, SiteTableFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("site table after crash: %v", err)
	}
}
