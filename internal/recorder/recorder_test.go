package recorder

import (
	"path/filepath"
	"testing"

	"polm2/internal/gc/g1"
	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/simclock"
)

func newEngine(t *testing.T) *jvm.VM {
	t.Helper()
	col, err := g1.New(simclock.New(), g1.Config{
		Heap: heap.Config{
			RegionSize: 16 * 1024,
			PageSize:   4096,
			MaxBytes:   128 * 16 * 1024,
		},
		YoungBytes: 8 * 16 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return jvm.New(col)
}

type fakeSink struct {
	cycles []uint64
	err    error
}

func (s *fakeSink) Snapshot(cycle uint64) error {
	s.cycles = append(s.cycles, cycle)
	return s.err
}

func TestConfigValidation(t *testing.T) {
	vm := newEngine(t)
	if _, err := New(Config{Dir: "/does/not/exist"}, vm.Heap(), vm.Sites(), nil); err == nil {
		t.Fatal("missing dir should fail")
	}
	file := filepath.Join(t.TempDir(), "f")
	if err := writeFile(file); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: file}, vm.Heap(), vm.Sites(), nil); err == nil {
		t.Fatal("non-directory should fail")
	}
	if _, err := New(Config{Dir: t.TempDir(), SnapshotEvery: -1}, vm.Heap(), vm.Sites(), nil); err == nil {
		t.Fatal("negative SnapshotEvery should fail")
	}
}

func writeFile(path string) error {
	return writeBytes(path, []byte("x"))
}

func TestRecordAndReadBack(t *testing.T) {
	vm := newEngine(t)
	dir := t.TempDir()
	rec, err := New(Config{Dir: dir}, vm.Heap(), vm.Sites(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(vm)

	th := vm.NewThread("t")
	th.Enter("Main", "run")
	var wantA, wantB []heap.ObjectID
	var siteA, siteB heap.SiteID
	for i := 0; i < 50; i++ {
		obj, err := th.Alloc(10, 64)
		if err != nil {
			t.Fatal(err)
		}
		wantA = append(wantA, obj.ID)
		siteA = obj.Site
	}
	th.Call(20, "Helper", "make")
	for i := 0; i < 30; i++ {
		obj, err := th.Alloc(5, 64)
		if err != nil {
			t.Fatal(err)
		}
		wantB = append(wantB, obj.ID)
		siteB = obj.Site
	}
	th.Return()

	if rec.AllocCount(siteA) != 50 || rec.AllocCount(siteB) != 30 {
		t.Fatalf("alloc counts = %d/%d, want 50/30", rec.AllocCount(siteA), rec.AllocCount(siteB))
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	table, err := LoadSiteTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 2 {
		t.Fatalf("site table has %d entries, want 2", len(table))
	}
	if table[siteA].Leaf() != (jvm.CodeLoc{Class: "Main", Method: "run", Line: 10}) {
		t.Fatalf("site A trace wrong: %v", table[siteA])
	}
	if len(table[siteB]) != 2 {
		t.Fatalf("site B trace depth = %d, want 2", len(table[siteB]))
	}

	gotA, err := ReadIDs(dir, siteA)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotA) != len(wantA) {
		t.Fatalf("site A ids = %d, want %d", len(gotA), len(wantA))
	}
	for i := range wantA {
		if gotA[i] != wantA[i] {
			t.Fatalf("site A id %d mismatch", i)
		}
	}
	gotB, err := ReadIDs(dir, siteB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantB {
		if gotB[i] != wantB[i] {
			t.Fatalf("site B id %d mismatch", i)
		}
	}
}

func TestSnapshotTriggerEveryCycle(t *testing.T) {
	vm := newEngine(t)
	sink := &fakeSink{}
	rec, err := New(Config{Dir: t.TempDir()}, vm.Heap(), vm.Sites(), sink)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(vm)
	for i := 0; i < 3; i++ {
		if err := vm.Collector().ForceCollect(); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.cycles) != 3 {
		t.Fatalf("sink saw %d snapshots, want 3", len(sink.cycles))
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotEveryK(t *testing.T) {
	vm := newEngine(t)
	sink := &fakeSink{}
	rec, err := New(Config{Dir: t.TempDir(), SnapshotEvery: 2}, vm.Heap(), vm.Sites(), sink)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(vm)
	for i := 0; i < 5; i++ {
		if err := vm.Collector().ForceCollect(); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.cycles) != 2 {
		t.Fatalf("sink saw %d snapshots, want 2 (cycles 2 and 4)", len(sink.cycles))
	}
	if sink.cycles[0] != 2 || sink.cycles[1] != 4 {
		t.Fatalf("snapshot cycles = %v, want [2 4]", sink.cycles)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSinkErrorIsSticky(t *testing.T) {
	vm := newEngine(t)
	sink := &fakeSink{err: errTest}
	rec, err := New(Config{Dir: t.TempDir()}, vm.Heap(), vm.Sites(), sink)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(vm)
	if err := vm.Collector().ForceCollect(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err == nil {
		t.Fatal("Close should surface the sink error")
	}
}

func TestLoadSiteTableErrors(t *testing.T) {
	if _, err := LoadSiteTable(t.TempDir()); err == nil {
		t.Fatal("missing site table should fail")
	}
	dir := t.TempDir()
	if err := writeBytes(filepath.Join(dir, SiteTableFile), []byte("garbage-without-tab\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSiteTable(dir); err == nil {
		t.Fatal("malformed site table should fail")
	}
}

func TestReadIDsMissingStream(t *testing.T) {
	if _, err := ReadIDs(t.TempDir(), 7); err == nil {
		t.Fatal("missing stream should fail")
	}
}
