package recorder

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"polm2/internal/heap"
)

// Allocation-record stream format (DESIGN.md §9). Version 2 (current) is
// framed for crash tolerance:
//
//	magic "PREC" | version byte (2)
//	frame:   uvarint payloadLen (>0) | payload | crc32c(payload) LE
//	...
//	trailer: uvarint 0 | crc32c(all frame payloads, in order) LE
//
// A frame payload is a run of uvarint-encoded object identity hashes. The
// writer seals a frame on every Flush and whenever ~4 KiB accumulate, so a
// torn stream loses at most the unsealed tail. The commit trailer is
// written by Close: its presence distinguishes a cleanly ended recording
// from one cut short. Version 1 streams — bare uvarints, no magic, no
// checksums — still decode.
const (
	streamMagic   = "PREC"
	streamVersion = 2
	// frameTarget seals a frame once its payload reaches this size.
	frameTarget = 4 << 10
	// maxFrame caps a frame payload so a corrupt length cannot drive an
	// unbounded allocation.
	maxFrame = 1 << 20
)

// Typed decode failures, mirroring the snapshot codec's.
var (
	// ErrCorrupt reports structural damage to an artifact: a checksum
	// mismatch, malformed varint, or impossible frame length.
	ErrCorrupt = errors.New("recorder: artifact corrupt")
	// ErrTruncated reports an artifact that ends before its commit
	// trailer — a recording cut short.
	ErrTruncated = errors.New("recorder: artifact truncated")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// streamWriter writes one site's framed id stream.
type streamWriter struct {
	f      io.WriteCloser
	bw     *bufio.Writer
	frame  []byte
	stream hash.Hash32
	closed bool
}

func newStreamWriter(f io.WriteCloser) (*streamWriter, error) {
	w := &streamWriter{
		f:      f,
		bw:     bufio.NewWriterSize(f, 32*1024),
		stream: crc32.New(castagnoli),
	}
	if _, err := w.bw.WriteString(streamMagic); err != nil {
		return nil, err
	}
	if err := w.bw.WriteByte(streamVersion); err != nil {
		return nil, err
	}
	return w, nil
}

// appendID buffers one id into the current frame, sealing it at the frame
// target.
func (w *streamWriter) appendID(id uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], id)
	w.frame = append(w.frame, buf[:n]...)
	if len(w.frame) >= frameTarget {
		return w.sealFrame()
	}
	return nil
}

// sealFrame writes the pending frame with its checksum.
func (w *streamWriter) sealFrame() error {
	if len(w.frame) == 0 {
		return nil
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(w.frame)))
	if _, err := w.bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.bw.Write(w.frame); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(w.frame, castagnoli))
	if _, err := w.bw.Write(crcBuf[:]); err != nil {
		return err
	}
	w.stream.Write(w.frame)
	w.frame = w.frame[:0]
	return nil
}

// Flush seals the pending frame and pushes everything to the file, leaving
// the stream open for more records — the consistent-on-disk point the
// online mode analyzes from.
func (w *streamWriter) Flush() error {
	if err := w.sealFrame(); err != nil {
		return err
	}
	return w.bw.Flush()
}

// Close seals the pending frame, writes the commit trailer and closes the
// file.
func (w *streamWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.sealFrame(); err != nil {
		return err
	}
	if err := w.bw.WriteByte(0); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], w.stream.Sum32())
	if _, err := w.bw.Write(crcBuf[:]); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// StreamSalvage describes how much of one id stream a decode recovered.
type StreamSalvage struct {
	// Version is the detected format version (1 or 2).
	Version int
	// Frames is the number of verified frames (v2 only).
	Frames int
	// Complete reports a verified commit trailer (v2) or a stream that
	// decoded to EOF without damage (v1, which cannot tell a clean end
	// from a tear at a record boundary).
	Complete bool
	// LostBytes counts bytes past the last decodable point.
	LostBytes int64
	// TotalBytes is the stream file's size; 1-LostBytes/TotalBytes is the
	// salvage confidence the Analyzer floors on.
	TotalBytes int64
	// Reason says why decoding stopped short, empty when Complete.
	Reason string
}

// Confidence is the fraction of the stream that decoded, in [0,1].
func (s *StreamSalvage) Confidence() float64 {
	if s == nil || s.TotalBytes == 0 {
		return 0
	}
	return 1 - float64(s.LostBytes)/float64(s.TotalBytes)
}

// decodeStream decodes a whole stream image. In strict mode any damage —
// including a missing commit trailer — is an error; in salvage mode the
// valid prefix is returned along with an account of the loss.
func decodeStream(data []byte, strict bool) ([]heap.ObjectID, *StreamSalvage, error) {
	ids, sal, err := decodeStreamAny(data, strict)
	sal.TotalBytes = int64(len(data))
	return ids, sal, err
}

func decodeStreamAny(data []byte, strict bool) ([]heap.ObjectID, *StreamSalvage, error) {
	if len(data) >= len(streamMagic)+1 && string(data[:len(streamMagic)]) == streamMagic {
		return decodeStreamV2(data, strict)
	}
	if len(data) > 0 && len(data) <= len(streamMagic) && streamMagic[:len(data)] == string(data) {
		// A proper prefix of the v2 magic: a v2 stream torn inside its
		// header, not a v1 stream — without this check the magic bytes
		// would decode as plausible v1 varints.
		sal := &StreamSalvage{Version: 2, LostBytes: int64(len(data)),
			Reason: "stream torn inside the v2 header"}
		if strict {
			return nil, sal, fmt.Errorf("%w: %s", ErrTruncated, sal.Reason)
		}
		return nil, sal, nil
	}
	return decodeStreamV1(data, strict)
}

func decodeStreamV1(data []byte, strict bool) ([]heap.ObjectID, *StreamSalvage, error) {
	sal := &StreamSalvage{Version: 1}
	br := bytes.NewReader(data)
	var out []heap.ObjectID
	for {
		before := br.Len()
		v, err := binary.ReadUvarint(br)
		if err == io.EOF && before == 0 {
			sal.Complete = true
			return out, sal, nil
		}
		if err != nil {
			sal.LostBytes = int64(before)
			sal.Reason = fmt.Sprintf("v1 stream damaged %d bytes from the end: %v", before, err)
			if strict {
				return nil, sal, fmt.Errorf("%w: %s", ErrTruncated, sal.Reason)
			}
			return out, sal, nil
		}
		out = append(out, heap.ObjectID(v))
	}
}

func decodeStreamV2(data []byte, strict bool) ([]heap.ObjectID, *StreamSalvage, error) {
	sal := &StreamSalvage{Version: 2}
	br := bytes.NewReader(data[len(streamMagic)+1:])
	stream := crc32.New(castagnoli)
	var out []heap.ObjectID

	fail := func(reason string, typed error) ([]heap.ObjectID, *StreamSalvage, error) {
		sal.LostBytes = int64(br.Len())
		sal.Reason = reason
		if strict {
			return nil, sal, fmt.Errorf("%w: %s", typed, reason)
		}
		return out, sal, nil
	}

	for frame := 1; ; frame++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return fail(fmt.Sprintf("stream ends without commit trailer after %d frames", sal.Frames), ErrTruncated)
		}
		if n == 0 {
			// Commit trailer.
			var crcBuf [4]byte
			if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
				return fail("trailer checksum missing", ErrTruncated)
			}
			if got, want := stream.Sum32(), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
				return fail(fmt.Sprintf("trailer checksum mismatch (%08x != %08x)", got, want), ErrCorrupt)
			}
			sal.Complete = true
			sal.LostBytes = int64(br.Len()) // trailing junk, if any
			if sal.LostBytes > 0 {
				sal.Reason = fmt.Sprintf("%d bytes of trailing junk after commit trailer", sal.LostBytes)
				if strict {
					return nil, sal, fmt.Errorf("%w: %s", ErrCorrupt, sal.Reason)
				}
			}
			return out, sal, nil
		}
		if n > maxFrame {
			return fail(fmt.Sprintf("frame %d claims %d bytes", frame, n), ErrCorrupt)
		}
		if int64(n)+4 > int64(br.Len()) {
			return fail(fmt.Sprintf("frame %d torn mid-payload", frame), ErrTruncated)
		}
		payload := make([]byte, n)
		io.ReadFull(br, payload) //nolint:errcheck // length checked above
		var crcBuf [4]byte
		io.ReadFull(br, crcBuf[:]) //nolint:errcheck // length checked above
		if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
			return fail(fmt.Sprintf("frame %d checksum mismatch (%08x != %08x)", frame, got, want), ErrCorrupt)
		}
		// Frame verified: decode its ids.
		pr := bytes.NewReader(payload)
		for pr.Len() > 0 {
			v, err := binary.ReadUvarint(pr)
			if err != nil {
				// A checksummed frame with a malformed varint can
				// only be a writer bug, not disk damage.
				return fail(fmt.Sprintf("frame %d holds a malformed varint", frame), ErrCorrupt)
			}
			out = append(out, heap.ObjectID(v))
		}
		stream.Write(payload)
		sal.Frames++
	}
}

// ReadIDs streams the identity hashes recorded for one site back from
// disk, strictly: a damaged or uncommitted stream is refused with an error
// wrapping ErrCorrupt or ErrTruncated. Use SalvageIDs to recover the valid
// prefix instead.
func ReadIDs(dir string, site heap.SiteID) ([]heap.ObjectID, error) {
	data, err := os.ReadFile(filepath.Join(dir, streamFile(site)))
	if err != nil {
		return nil, fmt.Errorf("recorder: reading stream for site %d: %w", site, err)
	}
	ids, _, err := decodeStream(data, true)
	if err != nil {
		return nil, fmt.Errorf("recorder: stream for site %d: %w", site, err)
	}
	return ids, nil
}

// Streams lists the sites that have an id stream file in dir, ascending.
func Streams(dir string) ([]heap.SiteID, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "site-*.bin"))
	if err != nil {
		return nil, fmt.Errorf("recorder: listing streams: %w", err)
	}
	sites := make([]heap.SiteID, 0, len(paths))
	for _, p := range paths {
		var n uint32
		if _, err := fmt.Sscanf(filepath.Base(p), "site-%d.bin", &n); err != nil {
			continue
		}
		sites = append(sites, heap.SiteID(n))
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites, nil
}

// SalvageIDs decodes as much of one site's stream as survives: every
// checksum-verified frame (v2) or the longest decodable prefix (v1). The
// error is non-nil only when the file cannot be read at all.
func SalvageIDs(dir string, site heap.SiteID) ([]heap.ObjectID, *StreamSalvage, error) {
	data, err := os.ReadFile(filepath.Join(dir, streamFile(site)))
	if err != nil {
		return nil, nil, fmt.Errorf("recorder: reading stream for site %d: %w", site, err)
	}
	ids, sal, _ := decodeStream(data, false)
	return ids, sal, nil
}
