package instrument

import (
	"testing"

	"polm2/internal/analyzer"
	"polm2/internal/gc/ng2c"
	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/simclock"
)

func newCollector(t *testing.T) *ng2c.Collector {
	t.Helper()
	col, err := ng2c.New(simclock.New(), ng2c.Config{
		Heap: heap.Config{
			RegionSize: 16 * 1024,
			PageSize:   4096,
			MaxBytes:   128 * 16 * 1024,
		},
		YoungBytes: 8 * 16 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestApplyCreatesGenerationsAtLaunch(t *testing.T) {
	col := newCollector(t)
	p := &analyzer.Profile{
		Generations: 3,
		Allocs: []analyzer.AllocDirective{
			{Loc: "A.m:1", Gen: 3, Direct: true},
			{Loc: "B.n:2", Gen: 0},
		},
		Calls: []analyzer.CallDirective{{Loc: "C.o:5", Gen: 1}},
	}
	plan, err := Apply(p, col)
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Generations(); got != 5 { // young + old + 3 dynamic
		t.Fatalf("collector generations = %d, want 5", got)
	}
	gens := plan.Generations()
	if len(gens) != 3 {
		t.Fatalf("plan generations = %d, want 3", len(gens))
	}

	// Call directive resolves abstract gen 1 to the first created
	// generation.
	g, ok := plan.CallGen(jvm.CodeLoc{Class: "C", Method: "o", Line: 5})
	if !ok || g != gens[0] {
		t.Fatalf("CallGen = %d/%v, want %d", g, ok, gens[0])
	}
	if _, ok := plan.CallGen(jvm.CodeLoc{Class: "X", Method: "y", Line: 1}); ok {
		t.Fatal("CallGen matched unknown location")
	}

	// Direct alloc directive resolves abstract gen 3.
	g, explicit, annotated := plan.AllocGen(jvm.CodeLoc{Class: "A", Method: "m", Line: 1})
	if !annotated || !explicit || g != gens[2] {
		t.Fatalf("AllocGen direct = (%d,%v,%v), want (%d,true,true)", g, explicit, annotated, gens[2])
	}

	// Annotate-only directive.
	_, explicit, annotated = plan.AllocGen(jvm.CodeLoc{Class: "B", Method: "n", Line: 2})
	if !annotated || explicit {
		t.Fatalf("AllocGen annotate-only = (%v,%v), want (false,true)", explicit, annotated)
	}

	// Unknown location.
	_, explicit, annotated = plan.AllocGen(jvm.CodeLoc{Class: "Z", Method: "z", Line: 9})
	if annotated || explicit {
		t.Fatal("AllocGen matched unknown location")
	}

	if plan.RewrittenLocations() != 3 {
		t.Fatalf("RewrittenLocations = %d, want 3", plan.RewrittenLocations())
	}
}

func TestApplyRejectsInvalidProfiles(t *testing.T) {
	col := newCollector(t)
	bad := []*analyzer.Profile{
		{Generations: 1, Allocs: []analyzer.AllocDirective{{Loc: "junk", Gen: 1}}},
		{Generations: 1, Calls: []analyzer.CallDirective{{Loc: "A.m:1", Gen: 9}}},
		{Generations: -2},
	}
	for i, p := range bad {
		if _, err := Apply(p, col); err == nil {
			t.Errorf("profile %d should be rejected", i)
		}
	}
}

func TestApplyRejectsConflictingDirectives(t *testing.T) {
	col := newCollector(t)
	p := &analyzer.Profile{
		Generations: 2,
		Calls: []analyzer.CallDirective{
			{Loc: "A.m:1", Gen: 1},
			{Loc: "A.m:1", Gen: 2},
		},
	}
	if _, err := Apply(p, col); err == nil {
		t.Fatal("conflicting call directives should be rejected")
	}
}

// TestProductionRunPretenures closes the loop: a plan built from a profile
// steers allocations into the right generations during execution.
func TestProductionRunPretenures(t *testing.T) {
	col := newCollector(t)
	vm := jvm.New(col)
	p := &analyzer.Profile{
		Generations: 1,
		Allocs:      []analyzer.AllocDirective{{Loc: "Helper.make:3", Gen: 0}},
		Calls:       []analyzer.CallDirective{{Loc: "Main.run:20", Gen: 1}},
	}
	plan, err := Apply(p, col)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetPlan(plan)
	gen := plan.Generations()[0]

	th := vm.NewThread("app")
	th.Enter("Main", "run")

	th.Call(20, "Helper", "make")
	kept, err := th.Alloc(3, 256)
	if err != nil {
		t.Fatal(err)
	}
	th.Return()

	th.Call(30, "Helper", "make")
	dropped, err := th.Alloc(3, 256)
	if err != nil {
		t.Fatal(err)
	}
	th.Return()

	if kept.Gen != gen {
		t.Fatalf("keep-path object in gen %d, want %d", kept.Gen, gen)
	}
	if dropped.Gen != heap.Young {
		t.Fatalf("drop-path object in gen %d, want young", dropped.Gen)
	}
}
