// Package instrument implements the Instrumenter component of POLM2 (§3.4):
// it takes an application allocation profile and applies it to the running
// application.
//
// The paper's Instrumenter is a Java agent that rewrites bytecode at class
// load time; here the equivalent is a Plan the execution engine consults at
// every call and allocation site (the substitution is documented in
// DESIGN.md). At launch the Instrumenter creates the generations the
// profile needs by calling the collector's NewGeneration — exactly the
// paper's "generations necessary to accommodate application objects are
// automatically created at launch time".
//
// Per §4.5 the Instrumenter is the only GC-specific component: it resolves
// abstract profile generations through the gc.Pretenuring interface, so any
// pretenuring collector can be driven by the same profile.
package instrument

import (
	"fmt"

	"polm2/internal/analyzer"
	"polm2/internal/gc"
	"polm2/internal/heap"
	"polm2/internal/jvm"
)

// Plan is an instrumentation plan with all abstract generations resolved to
// collector generations. It implements jvm.Plan.
type Plan struct {
	calls   map[jvm.CodeLoc]heap.GenID
	directs map[jvm.CodeLoc]heap.GenID
	annots  map[jvm.CodeLoc]bool
	// gens maps abstract generation index (1-based) to the collector
	// generation created for it.
	gens []heap.GenID
}

var _ jvm.Plan = (*Plan)(nil)

// Apply resolves profile against the collector: it creates the required
// generations and builds the executable plan. It fails on malformed
// profiles rather than silently instrumenting the wrong locations.
func Apply(p *analyzer.Profile, pret gc.Pretenuring) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	plan := &Plan{
		calls:   make(map[jvm.CodeLoc]heap.GenID, len(p.Calls)),
		directs: make(map[jvm.CodeLoc]heap.GenID),
		annots:  make(map[jvm.CodeLoc]bool),
		gens:    make([]heap.GenID, p.Generations),
	}
	for i := range plan.gens {
		plan.gens[i] = pret.NewGeneration()
	}
	resolve := func(abstract int) heap.GenID { return plan.gens[abstract-1] }

	for _, d := range p.Calls {
		loc, err := jvm.ParseCodeLoc(d.Loc)
		if err != nil {
			return nil, fmt.Errorf("instrument: call directive: %w", err)
		}
		if existing, ok := plan.calls[loc]; ok && existing != resolve(d.Gen) {
			return nil, fmt.Errorf("instrument: conflicting call directives at %v", loc)
		}
		plan.calls[loc] = resolve(d.Gen)
	}
	for _, d := range p.Allocs {
		loc, err := jvm.ParseCodeLoc(d.Loc)
		if err != nil {
			return nil, fmt.Errorf("instrument: alloc directive: %w", err)
		}
		if d.Direct {
			if d.Gen < 1 {
				return nil, fmt.Errorf("instrument: direct alloc directive at %v without generation", loc)
			}
			if existing, ok := plan.directs[loc]; ok && existing != resolve(d.Gen) {
				return nil, fmt.Errorf("instrument: conflicting direct directives at %v", loc)
			}
			plan.directs[loc] = resolve(d.Gen)
		}
		plan.annots[loc] = true
	}
	return plan, nil
}

// CallGen implements jvm.Plan.
func (pl *Plan) CallGen(loc jvm.CodeLoc) (heap.GenID, bool) {
	g, ok := pl.calls[loc]
	return g, ok
}

// AllocGen implements jvm.Plan.
func (pl *Plan) AllocGen(loc jvm.CodeLoc) (heap.GenID, bool, bool) {
	if g, ok := pl.directs[loc]; ok {
		return g, true, true
	}
	return 0, false, pl.annots[loc]
}

// Generations returns the collector generations created at launch, indexed
// by abstract generation (1-based abstract index i is Generations()[i-1]).
func (pl *Plan) Generations() []heap.GenID {
	out := make([]heap.GenID, len(pl.gens))
	copy(out, pl.gens)
	return out
}

// RewrittenLocations returns how many code locations the plan touches —
// the paper's instrumentation footprint.
func (pl *Plan) RewrittenLocations() int {
	return len(pl.calls) + len(pl.annots)
}
