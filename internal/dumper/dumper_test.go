package dumper

import (
	"errors"
	"testing"

	"polm2/internal/heap"
	"polm2/internal/simclock"
	"polm2/internal/snapshot"
)

func newHeap(t *testing.T) *heap.Heap {
	t.Helper()
	h, err := heap.New(heap.Config{RegionSize: 64 * 1024, PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestIncrementalSnapshotShrinksWhenClean(t *testing.T) {
	h := newHeap(t)
	clk := simclock.New()
	r, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	var objs []*heap.Object
	for i := 0; i < 32; i++ {
		obj, err := h.Allocate(r, 2048, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
	}
	d := New(h, clk, Config{})
	if err := d.Snapshot(1); err != nil {
		t.Fatal(err)
	}
	// Nothing written since the last dump: the next snapshot must be
	// (nearly) empty.
	if err := d.Snapshot(2); err != nil {
		t.Fatal(err)
	}
	snaps := d.Snapshots()
	if len(snaps[0].Pages) == 0 {
		t.Fatal("first snapshot captured nothing")
	}
	if len(snaps[1].Pages) != 0 {
		t.Fatalf("second snapshot captured %d clean pages", len(snaps[1].Pages))
	}
	if snaps[1].SizeBytes >= snaps[0].SizeBytes {
		t.Fatal("incremental snapshot not smaller")
	}
	// A single mutation re-dirties one page.
	if err := h.Link(objs[0].ID, objs[1].ID); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(3); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Snapshots()[2].Pages); got != 1 {
		t.Fatalf("third snapshot captured %d pages, want 1", got)
	}
}

func TestNoNeedPagesExcluded(t *testing.T) {
	h := newHeap(t)
	clk := simclock.New()
	r, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	liveObj, err := h.Allocate(r, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(liveObj.ID); err != nil {
		t.Fatal(err)
	}
	// A dead object filling pages 1..3.
	if _, err := h.Allocate(r, 12*1024, 1); err != nil {
		t.Fatal(err)
	}
	h.MarkNoNeedPages(h.Trace())

	d := New(h, clk, Config{})
	if err := d.Snapshot(1); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshots()[0]
	if len(snap.NoNeed) == 0 {
		t.Fatal("no-need pages not reported")
	}
	for _, pr := range snap.Pages {
		for _, key := range snap.NoNeed {
			if pr.Key == key {
				t.Fatal("no-need page included in snapshot")
			}
		}
	}

	// Ablation: with DisableNoNeed the dead pages are captured.
	h2 := newHeap(t)
	r2, err := h2.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	obj2, err := h2.Allocate(r2, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.AddRoot(obj2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Allocate(r2, 12*1024, 1); err != nil {
		t.Fatal(err)
	}
	h2.MarkNoNeedPages(h2.Trace())
	d2 := New(h2, simclock.New(), Config{DisableNoNeed: true})
	if err := d2.Snapshot(1); err != nil {
		t.Fatal(err)
	}
	// With the optimization on, only the one live page is captured; with
	// it off, the three dirty dead-only pages are captured as well.
	if got := len(d2.Snapshots()[0].Pages); got <= len(snap.Pages) {
		t.Fatalf("DisableNoNeed snapshot has %d pages, want more than %d", got, len(snap.Pages))
	}
}

func TestDisableIncrementalCapturesEverythingEveryTime(t *testing.T) {
	h := newHeap(t)
	r, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := h.Allocate(r, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(obj.ID); err != nil {
		t.Fatal(err)
	}
	d := New(h, simclock.New(), Config{DisableIncremental: true})
	if err := d.Snapshot(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(2); err != nil {
		t.Fatal(err)
	}
	snaps := d.Snapshots()
	if len(snaps[0].Pages) != len(snaps[1].Pages) || len(snaps[1].Pages) == 0 {
		t.Fatalf("non-incremental snapshots differ: %d vs %d pages",
			len(snaps[0].Pages), len(snaps[1].Pages))
	}
}

func TestChargeClock(t *testing.T) {
	h := newHeap(t)
	clk := simclock.New()
	r, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := h.Allocate(r, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(obj.ID); err != nil {
		t.Fatal(err)
	}
	d := New(h, clk, Config{ChargeClock: true})
	if err := d.Snapshot(1); err != nil {
		t.Fatal(err)
	}
	if clk.Now() == 0 {
		t.Fatal("ChargeClock did not advance the clock")
	}
	uncharged := New(h, simclock.New(), Config{})
	if err := uncharged.Snapshot(1); err != nil {
		t.Fatal(err)
	}
}

func TestJmapDumpsOnlyLiveObjects(t *testing.T) {
	h := newHeap(t)
	r, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	liveObj, err := h.Allocate(r, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	deadObj, err := h.Allocate(r, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(liveObj.ID); err != nil {
		t.Fatal(err)
	}
	j := NewJmap(h, simclock.New(), CostModel{})
	if err := j.Snapshot(1); err != nil {
		t.Fatal(err)
	}
	snap := j.Snapshots()[0]
	store := snapshot.NewStore()
	if err := store.Apply(snap); err != nil {
		t.Fatal(err)
	}
	if !store.Contains(liveObj.ID) {
		t.Fatal("live object missing from jmap dump")
	}
	if store.Contains(deadObj.ID) {
		t.Fatal("dead object present in jmap dump")
	}
	if snap.Incremental {
		t.Fatal("jmap dump marked incremental")
	}
}

func TestJmapCostsExceedCRIU(t *testing.T) {
	h := newHeap(t)
	clk := simclock.New()
	r, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		obj, err := h.Allocate(r, 2048, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
	}
	h.MarkNoNeedPages(h.Trace())
	criu := New(h, clk, Config{})
	jmap := NewJmap(h, clk, CostModel{})
	tee := NewTee(criu, jmap)
	if err := tee.Snapshot(1); err != nil {
		t.Fatal(err)
	}
	cs, js := criu.Snapshots()[0], jmap.Snapshots()[0]
	if cs.Duration >= js.Duration {
		t.Fatalf("CRIU dump (%v) not faster than jmap (%v)", cs.Duration, js.Duration)
	}
}

type failSink struct{}

func (failSink) Snapshot(uint64) error { return errInjected }

var errInjected = errors.New("dumper_test: injected failure")

func TestTeePropagatesErrors(t *testing.T) {
	tee := NewTee(failSink{})
	if err := tee.Snapshot(1); err == nil {
		t.Fatal("tee swallowed sink error")
	}
}

// TestCRIUAndStoreRoundTrip drives allocation, GC-style region churn and
// mutation through incremental snapshots, checking that the reconstructed
// view matches ground truth at the end.
func TestCRIUAndStoreRoundTrip(t *testing.T) {
	h := newHeap(t)
	clk := simclock.New()
	d := New(h, clk, Config{})
	store := snapshot.NewStore()

	r1, err := h.NewRegion(heap.Young)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Allocate(r1, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(a.ID); err != nil {
		t.Fatal(err)
	}
	h.MarkNoNeedPages(h.Trace())
	if err := d.Snapshot(1); err != nil {
		t.Fatal(err)
	}

	// Evacuate a to a new region and free the old one (young GC).
	r2, err := h.NewRegion(heap.GenID(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Evacuate(a, r2); err != nil {
		t.Fatal(err)
	}
	h.FreeRegion(r1)
	b, err := h.Allocate(r2, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddRoot(b.ID); err != nil {
		t.Fatal(err)
	}
	h.MarkNoNeedPages(h.Trace())
	if err := d.Snapshot(2); err != nil {
		t.Fatal(err)
	}

	for _, snap := range d.Snapshots() {
		if err := store.Apply(snap); err != nil {
			t.Fatal(err)
		}
	}
	if !store.Contains(a.ID) || !store.Contains(b.ID) {
		t.Fatalf("reconstructed view missing live objects: %v", store.LiveIDs())
	}
	if got := len(store.LiveIDs()); got != 2 {
		t.Fatalf("reconstructed view has %d ids, want 2", got)
	}
}
