// Package dumper implements the Dumper component of POLM2 (§3.2, §4.2) and
// the jmap-style baseline it is evaluated against (Figures 3 and 4).
//
// The CRIU-style dumper captures page-level incremental snapshots: it
// includes only pages dirtied since the previous snapshot, skips pages the
// collector marked no-need (no reachable objects), and implicitly drops
// unmapped regions. Both optimizations can be toggled off independently for
// the ablation benchmarks.
//
// The jmap-style dumper walks all live objects and serializes them, which
// is slow and produces large dumps — the paper reports 22-minute, 3.8 GB
// jmap dumps for GraphChi against 32-second, 700 MB Dumper snapshots.
package dumper

import (
	"fmt"
	"time"

	"polm2/internal/faultio"
	"polm2/internal/heap"
	"polm2/internal/simclock"
	"polm2/internal/snapshot"
)

// CostModel converts dump work into simulated time and bytes. Rates are
// calibrated against the paper's observations: CRIU writes raw pages at
// near-device speed while jmap serializes the object graph two orders of
// magnitude slower.
type CostModel struct {
	// CRIUBase is the fixed cost of a CRIU dump (freeze, page-map scan).
	CRIUBase time.Duration
	// CRIUPerPage is the cost per included page.
	CRIUPerPage time.Duration
	// CRIUPageMetaBytes is per-page metadata in the image.
	CRIUPageMetaBytes uint64
	// JmapBase is the fixed cost of a jmap dump.
	JmapBase time.Duration
	// JmapPerLiveByte is the serialization cost per live heap byte.
	JmapPerLiveByte time.Duration
	// JmapPerObject is the per-object walk/serialize cost.
	JmapPerObject time.Duration
	// JmapObjectHeaderBytes is the per-object overhead in the hprof
	// image.
	JmapObjectHeaderBytes uint64
}

// DefaultCostModel returns the calibrated dump cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		CRIUBase:              2 * time.Millisecond,
		CRIUPerPage:           8 * time.Microsecond,
		CRIUPageMetaBytes:     32,
		JmapBase:              20 * time.Millisecond,
		JmapPerLiveByte:       25 * time.Nanosecond,
		JmapPerObject:         300 * time.Nanosecond,
		JmapObjectHeaderBytes: 16,
	}
}

// Config parameterizes a CRIU-style Dumper.
type Config struct {
	// Cost is the dump cost model. Zero value means DefaultCostModel.
	Cost CostModel
	// ChargeClock makes dumps advance the simulated clock (the
	// application is frozen while CRIU dumps it). The profiling phase
	// charges dump time; baseline-comparison dumps do not.
	ChargeClock bool
	// DisableNoNeed turns off the no-need page elision (§3.2 first
	// optimization) for ablation.
	DisableNoNeed bool
	// DisableIncremental turns off dirty-page incrementality (§3.2
	// second optimization) for ablation: every occupied page is included
	// in every snapshot.
	DisableIncremental bool
	// PersistDir, when set, writes every snapshot to disk as it is taken
	// (snap-NNNNNN.img, staged and atomically renamed), so a crash
	// mid-run loses only a suffix of whole images.
	PersistDir string
	// Fault optionally injects I/O faults into persisted image writes.
	// Nil writes straight through.
	Fault *faultio.Injector
}

// Dumper creates CRIU-style incremental heap snapshots. It implements
// recorder.SnapshotSink.
type Dumper struct {
	h     *heap.Heap
	clock *simclock.Clock
	cfg   Config
	seq   int
	snaps []*snapshot.Snapshot
	// lastHdr remembers the previous snapshot's header-id arena size so
	// the next snapshot allocates its arena once, up front.
	lastHdr int
}

// New builds a Dumper over the given heap and clock.
func New(h *heap.Heap, clock *simclock.Clock, cfg Config) *Dumper {
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	return &Dumper{h: h, clock: clock, cfg: cfg}
}

// Snapshot captures an incremental snapshot of the heap after the given GC
// cycle.
func (d *Dumper) Snapshot(cycle uint64) error {
	d.seq++
	snap := &snapshot.Snapshot{
		Seq:         d.seq,
		Cycle:       cycle,
		TakenAt:     d.clock.Now(),
		Incremental: true,
		Regions:     d.h.ActiveRegionIDs(),
	}
	pageSize := uint64(d.h.Config().PageSize)
	// Header ids are copied into one per-snapshot arena instead of one
	// slices.Clone per page: snapshots retain their HeaderIDs forever, so
	// the arena cannot be pooled, but a single right-sized allocation
	// (hinted by the previous snapshot) replaces hundreds of small ones.
	arena := make([]heap.ObjectID, 0, d.lastHdr)
	d.h.Pages(func(ps heap.PageState) {
		if ps.NoNeed && !d.cfg.DisableNoNeed {
			snap.NoNeed = append(snap.NoNeed, ps.Key)
			return
		}
		dirty := ps.Dirty || d.cfg.DisableIncremental
		if !dirty {
			return
		}
		if d.cfg.DisableIncremental && !ps.Occupied {
			// Without dirty tracking the dumper still skips
			// zero pages, as CRIU does.
			return
		}
		var ids []heap.ObjectID
		if len(ps.HeaderIDs) > 0 {
			start := len(arena)
			arena = append(arena, ps.HeaderIDs...)
			// Full-capacity subslice: appends to one page's ids can
			// never bleed into the next page's.
			ids = arena[start:len(arena):len(arena)]
		}
		snap.Pages = append(snap.Pages, snapshot.PageRecord{
			Key:       ps.Key,
			HeaderIDs: ids,
		})
	})
	d.lastHdr = len(arena)
	snap.SizeBytes = uint64(len(snap.Pages)) * (pageSize + d.cfg.Cost.CRIUPageMetaBytes)
	snap.Duration = d.cfg.Cost.CRIUBase + time.Duration(len(snap.Pages))*d.cfg.Cost.CRIUPerPage
	if !d.cfg.DisableIncremental {
		// CRIU clears the kernel soft-dirty bit after each dump.
		d.h.ClearDirtyPages()
	}
	if d.cfg.ChargeClock {
		d.clock.Advance(snap.Duration)
	}
	d.snaps = append(d.snaps, snap)
	if d.cfg.PersistDir != "" {
		if err := snapshot.WriteImage(d.cfg.PersistDir, snap, d.cfg.Fault); err != nil {
			return fmt.Errorf("dumper: persisting snapshot %d: %w", snap.Seq, err)
		}
	}
	return nil
}

// Snapshots returns all snapshots taken so far, in sequence order.
func (d *Dumper) Snapshots() []*snapshot.Snapshot {
	out := make([]*snapshot.Snapshot, len(d.snaps))
	copy(out, d.snaps)
	return out
}

// Jmap creates full live-object dumps the way the jmap tool does: it traces
// the heap itself and serializes every live object. It implements
// recorder.SnapshotSink so either dumper can drive the same pipeline.
type Jmap struct {
	h       *heap.Heap
	clock   *simclock.Clock
	cost    CostModel
	seq     int
	snaps   []*snapshot.Snapshot
	lastHdr int
}

// NewJmap builds a jmap-style dumper.
func NewJmap(h *heap.Heap, clock *simclock.Clock, cost CostModel) *Jmap {
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	return &Jmap{h: h, clock: clock, cost: cost}
}

// Snapshot captures a full live-object dump.
func (j *Jmap) Snapshot(cycle uint64) error {
	j.seq++
	live := j.h.Trace()
	snap := &snapshot.Snapshot{
		Seq:         j.seq,
		Cycle:       cycle,
		TakenAt:     j.clock.Now(),
		Incremental: false,
		Regions:     j.h.ActiveRegionIDs(),
	}
	// Like the CRIU-style dumper, live header ids land in one
	// per-snapshot arena sized from the previous dump.
	arena := make([]heap.ObjectID, 0, j.lastHdr)
	j.h.Pages(func(ps heap.PageState) {
		start := len(arena)
		for _, id := range ps.HeaderIDs {
			if live.Contains(id) {
				arena = append(arena, id)
			}
		}
		if len(arena) == start {
			return
		}
		snap.Pages = append(snap.Pages, snapshot.PageRecord{
			Key:       ps.Key,
			HeaderIDs: arena[start:len(arena):len(arena)],
		})
	})
	j.lastHdr = len(arena)
	snap.SizeBytes = live.Bytes + uint64(live.Objects)*j.cost.JmapObjectHeaderBytes
	snap.Duration = j.cost.JmapBase +
		time.Duration(live.Bytes)*j.cost.JmapPerLiveByte +
		time.Duration(live.Objects)*j.cost.JmapPerObject
	j.snaps = append(j.snaps, snap)
	return nil
}

// Snapshots returns all dumps taken so far.
func (j *Jmap) Snapshots() []*snapshot.Snapshot {
	out := make([]*snapshot.Snapshot, len(j.snaps))
	copy(out, j.snaps)
	return out
}

// Tee fans one snapshot request out to several sinks, so the comparison
// experiments can take a CRIU-style and a jmap-style dump of the identical
// heap state after the same GC cycle.
type Tee struct {
	sinks []Sink
}

// Sink matches recorder.SnapshotSink without importing it (the recorder
// already depends on neither dumper nor snapshot).
type Sink interface {
	Snapshot(cycle uint64) error
}

// NewTee builds a fan-out sink.
func NewTee(sinks ...Sink) *Tee { return &Tee{sinks: sinks} }

// Snapshot forwards to every sink, failing on the first error.
func (t *Tee) Snapshot(cycle uint64) error {
	for i, s := range t.sinks {
		if err := s.Snapshot(cycle); err != nil {
			return fmt.Errorf("dumper: tee sink %d: %w", i, err)
		}
	}
	return nil
}
