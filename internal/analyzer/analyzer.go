package analyzer

import (
	"fmt"
	"sort"

	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/snapshot"
)

// Options tunes the Analyzer. The zero value selects the paper's behaviour.
type Options struct {
	// MinSamples is the minimum number of recorded allocations before a
	// site is considered for instrumentation. Default 12.
	MinSamples uint64
	// MinOldFraction is the fraction of a site's objects that must
	// survive at least one snapshot before the site is pretenured.
	// Default 0.5: if most objects die young, the weak generational
	// hypothesis already serves the site well.
	MinOldFraction float64
	// MaxGen caps the target generation. Default 32.
	MaxGen int
	// ClusterGap merges estimated target generations whose survival
	// counts differ by at most this amount before the STTree is built,
	// then renumbers the clusters densely from 1. Two sites whose
	// objects die three and four snapshots in belong together: NG2C
	// generations are lifetime groups, not ordered ages, so dense
	// renumbering is safe and keeps the generation count meaningful
	// (Table 1). Default 4; negative disables clustering.
	ClusterGap int
	// Estimator selects the lifetime estimator. Default EstimatorMode
	// (the paper's).
	Estimator Estimator
	// DisableConflictResolution skips Algorithm 1 (ablation): conflicted
	// sites collapse to the highest conflicting generation, mimicking
	// what a programmer annotating the allocation site directly would
	// get.
	DisableConflictResolution bool
	// DisableHoisting skips the §4.4 call-reduction optimization
	// (ablation): every instrumented site carries its own generation
	// switch.
	DisableHoisting bool
	// ConfidenceFloor is the minimum fraction of a site's recorded stream
	// that must decode for its evidence to be trusted during salvage
	// analysis; a site below the floor is degraded to the safe
	// young/dynamic fallback (generation zero). Default 0.5; negative
	// disables degrading. Strict Analyze never degrades.
	ConfidenceFloor float64
	// App and Workload label the resulting profile.
	App      string
	Workload string
}

func (o Options) withDefaults() Options {
	if o.MinSamples == 0 {
		o.MinSamples = 12
	}
	if o.MinOldFraction == 0 {
		o.MinOldFraction = 0.5
	}
	if o.MaxGen == 0 {
		o.MaxGen = 32
	}
	if o.ClusterGap == 0 {
		o.ClusterGap = 4
	}
	if o.Estimator == 0 {
		o.Estimator = EstimatorMode
	}
	if o.ConfidenceFloor == 0 {
		o.ConfidenceFloor = 0.5
	}
	return o
}

// Analyze runs the full §3.3 pipeline: evidence gathering, target-generation
// estimation, STTree construction, conflict detection and resolution, and
// directive emission.
func Analyze(recordsDir string, snaps []*snapshot.Snapshot, opts Options) (*Profile, error) {
	opts = opts.withDefaults()
	evidence, err := gatherEvidence(recordsDir, snaps)
	if err != nil {
		return nil, err
	}
	return synthesize(evidence, opts, nil)
}

// synthesize runs the second half of §3.3 — estimation, STTree, conflict
// resolution, directive emission — over gathered evidence. Sites in the
// degraded set are forced to generation zero, the salvage-mode fallback for
// evidence too damaged to trust.
func synthesize(evidence map[heap.SiteID]*siteEvidence, opts Options, degraded map[heap.SiteID]bool) (*Profile, error) {
	traces := make(map[heap.SiteID]jvm.StackTrace, len(evidence))
	gens := make(map[heap.SiteID]int, len(evidence))
	for id, ev := range evidence {
		traces[id] = ev.trace
		if degraded[id] {
			gens[id] = 0
			continue
		}
		gens[id] = ev.targetGen(opts.Estimator, opts.MinSamples, opts.MinOldFraction, opts.MaxGen)
	}
	clusterGenerations(gens, opts.ClusterGap)

	tree := BuildTree(traces, gens)
	groups := tree.DetectConflicts()

	p := &Profile{App: opts.App, Workload: opts.Workload, Conflicts: len(groups)}

	conflictedLeaf := make(map[*Node]bool)
	conflictedLoc := make(map[jvm.CodeLoc]bool)
	for _, g := range groups {
		conflictedLoc[g.Loc] = true
		for _, leaf := range g.Leaves {
			conflictedLeaf[leaf] = true
		}
	}

	taken := make(map[jvm.CodeLoc]int) // call-directive loc -> generation
	annotated := make(map[jvm.CodeLoc]bool)
	directGens := make(map[jvm.CodeLoc]int)

	if opts.DisableConflictResolution {
		// Ablation: collapse each conflicted location to its highest
		// generation and instrument the allocation site directly.
		for _, g := range groups {
			maxGen := 0
			for _, leaf := range g.Leaves {
				if leaf.Gen > maxGen {
					maxGen = leaf.Gen
				}
			}
			if maxGen > 0 {
				directGens[g.Loc] = maxGen
			}
		}
	} else {
		resolved, unresolved := ResolveConflicts(groups)
		p.Unresolved = len(unresolved)
		for _, r := range resolved {
			if r.Leaf.Gen == 0 {
				// A young path through a shared allocation site
				// needs no switch: the default target
				// generation is young.
				continue
			}
			taken[r.Anchor.Loc] = r.Leaf.Gen
			p.Calls = append(p.Calls, CallDirective{Loc: r.Anchor.Loc.String(), Gen: r.Leaf.Gen})
			annotated[r.Leaf.Loc] = true
		}
	}

	// Cover the non-conflicted instrumentable leaves, hoisting uniform
	// subtrees per §4.4 unless disabled.
	var cover func(n *Node)
	cover = func(n *Node) {
		gens, hasConflict := subtreeSummary(n, conflictedLeaf)
		if !hasConflict && len(gens) == 1 && !opts.DisableHoisting {
			g := gens[0]
			if n.IsLeaf && len(n.children) == 0 {
				mergeDirect(directGens, n.Loc, g)
				return
			}
			if existing, ok := taken[n.Loc]; !ok || existing == g {
				taken[n.Loc] = g
				p.Calls = append(p.Calls, CallDirective{Loc: n.Loc.String(), Gen: g})
				markAnnotated(n, conflictedLeaf, annotated)
				return
			}
			// The location is already switched to a different
			// generation on another path: fall through and place
			// directives deeper.
		}
		if n.IsLeaf && !conflictedLeaf[n] && n.Gen > 0 {
			mergeDirect(directGens, n.Loc, n.Gen)
		}
		for _, c := range n.Children() {
			cover(c)
		}
	}
	for _, root := range tree.Roots() {
		cover(root)
	}

	// Emit allocation directives: direct sites carry their generation,
	// annotate-only sites defer to the enclosing call directive.
	for loc, g := range directGens {
		p.Allocs = append(p.Allocs, AllocDirective{Loc: loc.String(), Gen: g, Direct: true})
	}
	for loc := range annotated {
		if _, isDirect := directGens[loc]; isDirect {
			continue
		}
		p.Allocs = append(p.Allocs, AllocDirective{Loc: loc.String(), Gen: 0})
	}

	// The production phase creates max-generation generations at launch.
	for _, d := range p.Allocs {
		if d.Gen > p.Generations {
			p.Generations = d.Gen
		}
	}
	for _, d := range p.Calls {
		if d.Gen > p.Generations {
			p.Generations = d.Gen
		}
	}

	// Per-site evidence for diagnostics and Table 1.
	ids := make([]heap.SiteID, 0, len(evidence))
	for id := range evidence {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ev := evidence[id]
		p.Sites = append(p.Sites, SiteStat{
			Trace:     ev.trace.String(),
			Allocated: ev.total,
			Buckets:   trimBuckets(ev.survived),
			Gen:       gens[id],
			Tainted:   ev.tainted,
		})
	}

	p.sortDirectives()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("analyzer: produced invalid profile: %w", err)
	}
	return p, nil
}

// subtreeSummary returns the distinct positive generations of
// non-conflicted leaves under n (n included) and whether the subtree holds
// any conflicted leaf.
func subtreeSummary(n *Node, conflicted map[*Node]bool) (gens []int, hasConflict bool) {
	set := make(map[int]struct{})
	var walk func(m *Node)
	walk = func(m *Node) {
		if m.IsLeaf {
			if conflicted[m] {
				hasConflict = true
			} else if m.Gen > 0 {
				set[m.Gen] = struct{}{}
			}
		}
		for _, c := range m.children {
			walk(c)
		}
	}
	walk(n)
	for g := range set {
		gens = append(gens, g)
	}
	sort.Ints(gens)
	return gens, hasConflict
}

// markAnnotated annotates every instrumentable leaf location under n.
func markAnnotated(n *Node, conflicted map[*Node]bool, annotated map[jvm.CodeLoc]bool) {
	if n.IsLeaf && !conflicted[n] && n.Gen > 0 {
		annotated[n.Loc] = true
	}
	for _, c := range n.children {
		markAnnotated(c, conflicted, annotated)
	}
}

// mergeDirect records a direct allocation directive, keeping the highest
// generation if the same location is reached with several (non-conflicting
// groups always agree, so a disagreement here can only come from the
// conflict-resolution ablation).
func mergeDirect(directGens map[jvm.CodeLoc]int, loc jvm.CodeLoc, gen int) {
	if existing, ok := directGens[loc]; !ok || gen > existing {
		directGens[loc] = gen
	}
}

// clusterGenerations merges raw survival-count generations separated by at
// most gap and renumbers the resulting lifetime clusters densely from 1.
func clusterGenerations(gens map[heap.SiteID]int, gap int) {
	if gap < 0 {
		return
	}
	distinct := make(map[int]struct{})
	for _, g := range gens {
		if g > 0 {
			distinct[g] = struct{}{}
		}
	}
	if len(distinct) == 0 {
		return
	}
	sorted := make([]int, 0, len(distinct))
	for g := range distinct {
		sorted = append(sorted, g)
	}
	sort.Ints(sorted)
	remap := make(map[int]int, len(sorted))
	cluster := 1
	remap[sorted[0]] = cluster
	for i := 1; i < len(sorted); i++ {
		if sorted[i]-sorted[i-1] > gap {
			cluster++
		}
		remap[sorted[i]] = cluster
	}
	for id, g := range gens {
		if g > 0 {
			gens[id] = remap[g]
		}
	}
}

// trimBuckets drops trailing zero buckets to keep profiles compact.
func trimBuckets(b []uint64) []uint64 {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	out := make([]uint64, end)
	copy(out, b[:end])
	return out
}
