package analyzer

import (
	"fmt"
	"math/rand"
	"testing"

	"polm2/internal/heap"
	"polm2/internal/jvm"
)

// randomTraces builds a random trace set over a deliberately tiny location
// alphabet, so traces share prefixes and suffixes often and allocation
// sites get reached through multiple paths — the situation Algorithm 1
// exists for.
func randomTraces(rng *rand.Rand) (map[heap.SiteID]jvm.StackTrace, map[heap.SiteID]int) {
	traces := make(map[heap.SiteID]jvm.StackTrace)
	gens := make(map[heap.SiteID]int)
	n := 1 + rng.Intn(20)
	for id := heap.SiteID(1); id <= heap.SiteID(n); id++ {
		depth := 1 + rng.Intn(6)
		trace := make(jvm.StackTrace, depth)
		for i := range trace {
			trace[i] = jvm.CodeLoc{
				Class:  fmt.Sprintf("C%d", rng.Intn(3)),
				Method: fmt.Sprintf("m%d", rng.Intn(3)),
				Line:   1 + rng.Intn(4),
			}
		}
		traces[id] = trace
		gens[id] = rng.Intn(4)
	}
	return traces, gens
}

// leafPaths renders every leaf's root path with its generation — a
// structural fingerprint of the tree.
func leafPaths(tr *Tree) []string {
	var out []string
	for _, l := range tr.Leaves() {
		out = append(out, fmt.Sprintf("%s gen=%d sites=%v", pathString(l), l.Gen, l.Sites))
	}
	return out
}

// FuzzSTTreeConflicts drives BuildTree, DetectConflicts and
// ResolveConflicts over randomized trace sets and checks the algorithm's
// invariants. The seed corpus makes `go test` itself a property test;
// `go test -fuzz=FuzzSTTreeConflicts` explores further.
func FuzzSTTreeConflicts(f *testing.F) {
	for seed := int64(1); seed <= 12; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		traces, gens := randomTraces(rng)

		tree := BuildTree(traces, gens)
		groups := tree.DetectConflicts()

		// Building the same traces again yields the same tree and the
		// same conflicts: the pipeline must not depend on map iteration
		// order.
		tree2 := BuildTree(traces, gens)
		if a, b := fmt.Sprint(leafPaths(tree)), fmt.Sprint(leafPaths(tree2)); a != b {
			t.Fatalf("tree structure not deterministic:\n%s\nvs\n%s", a, b)
		}
		groups2 := tree2.DetectConflicts()
		if len(groups) != len(groups2) {
			t.Fatalf("conflict count not deterministic: %d vs %d", len(groups), len(groups2))
		}
		for i := range groups {
			if groups[i].Loc != groups2[i].Loc || len(groups[i].Leaves) != len(groups2[i].Leaves) {
				t.Fatalf("conflict group %d differs across rebuilds", i)
			}
		}

		// A conflict group's members all sit at the group location and
		// disagree on the target generation.
		for _, g := range groups {
			if len(g.Leaves) < 2 {
				t.Fatalf("conflict group %v has %d leaves", g.Loc, len(g.Leaves))
			}
			distinct := make(map[int]struct{})
			for _, l := range g.Leaves {
				if l.Loc != g.Loc {
					t.Fatalf("leaf at %v grouped under %v", l.Loc, g.Loc)
				}
				distinct[l.Gen] = struct{}{}
			}
			if len(distinct) < 2 {
				t.Fatalf("conflict group %v members agree on generation", g.Loc)
			}
		}

		// Detection is complete: recompute the expected conflict
		// locations independently.
		expect := make(map[jvm.CodeLoc]map[int]struct{})
		for _, l := range tree.Leaves() {
			if expect[l.Loc] == nil {
				expect[l.Loc] = make(map[int]struct{})
			}
			expect[l.Loc][l.Gen] = struct{}{}
		}
		want := 0
		for _, gens := range expect {
			if len(gens) > 1 {
				want++
			}
		}
		if len(groups) != want {
			t.Fatalf("detected %d conflict groups, want %d", len(groups), want)
		}

		resolved, unresolved := ResolveConflicts(groups)

		// Resolution partitions the conflicting leaves: each appears
		// exactly once, as a resolution or as unresolved.
		seen := make(map[*Node]int)
		for _, r := range resolved {
			seen[r.Leaf]++
		}
		for _, l := range unresolved {
			seen[l]++
		}
		for _, g := range groups {
			for _, l := range g.Leaves {
				if seen[l] != 1 {
					t.Fatalf("leaf %s appears %d times in resolution output", pathString(l), seen[l])
				}
				delete(seen, l)
			}
		}
		if len(seen) != 0 {
			t.Fatalf("%d resolution entries for leaves outside any conflict group", len(seen))
		}

		// Every anchor is a proper ancestor of its leaf, and anchors
		// never serve two generations at one code location.
		anchorGen := make(map[jvm.CodeLoc]int)
		for _, r := range resolved {
			found := false
			for cur := r.Leaf.Parent; cur != nil; cur = cur.Parent {
				if cur == r.Anchor {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("anchor %v is not an ancestor of leaf %s", r.Anchor.Loc, pathString(r.Leaf))
			}
			if gen, ok := anchorGen[r.Anchor.Loc]; ok && gen != r.Leaf.Gen {
				t.Fatalf("anchor location %v serves generations %d and %d", r.Anchor.Loc, gen, r.Leaf.Gen)
			}
			anchorGen[r.Anchor.Loc] = r.Leaf.Gen
		}
	})
}
