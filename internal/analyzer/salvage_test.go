package analyzer

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"polm2/internal/heap"
	"polm2/internal/recorder"
	"polm2/internal/snapshot"
)

// streamPath names a site's id-stream file the way the recorder lays it
// out on disk.
func streamPath(dir string, sid heap.SiteID) string {
	return filepath.Join(dir, fmt.Sprintf("site-%06d.bin", sid))
}

// largestStream returns the site whose id stream holds the most bytes —
// the best victim for partial-truncation tests, since a bigger file spans
// more frames and leaves a salvageable prefix.
func largestStream(t *testing.T, dir string) (heap.SiteID, int64) {
	t.Helper()
	sites, err := recorder.Streams(dir)
	if err != nil || len(sites) == 0 {
		t.Fatalf("no streams recorded: %v", err)
	}
	var best heap.SiteID
	var bestSize int64
	for _, sid := range sites {
		info, err := os.Stat(streamPath(dir, sid))
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > bestSize {
			best, bestSize = sid, info.Size()
		}
	}
	return best, bestSize
}

// TestAnalyzeSalvageCleanMatchesStrict pins the core salvage contract: on
// undamaged artifacts AnalyzeSalvage produces byte-for-byte the profile a
// strict Analyze does, with a clean report.
func TestAnalyzeSalvageCleanMatchesStrict(t *testing.T) {
	dir, _, d := profileRun(t, 800)
	snaps := d.Snapshots()
	opts := Options{App: "mini", Workload: "test"}

	want, err := Analyze(dir, snaps, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := AnalyzeSalvage(dir, snaps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean artifacts produced a dirty report: %s", rep)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("salvage profile differs from strict:\nstrict  %s\nsalvage %s", wantJSON, gotJSON)
	}
}

// TestAnalyzeSalvageDamagedStreamDegrades truncates the biggest id stream
// and checks the loss is accounted and, with a high confidence floor, the
// site is degraded to the safe fallback instead of instrumented from a
// misleading fraction of its evidence.
func TestAnalyzeSalvageDamagedStreamDegrades(t *testing.T) {
	dir, _, d := profileRun(t, 800)
	snaps := d.Snapshots()
	victim, size := largestStream(t, dir)
	if err := os.Truncate(streamPath(dir, victim), size/2); err != nil {
		t.Fatal(err)
	}

	prof, rep, err := AnalyzeSalvage(dir, snaps, Options{App: "mini", Workload: "test", ConfidenceFloor: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil {
		t.Fatal("salvage produced no profile")
	}
	if rep.Clean() {
		t.Fatalf("truncated stream left a clean report: %s", rep)
	}
	if rep.LostBytes == 0 {
		t.Fatal("no bytes accounted as lost")
	}
	if rep.DegradedSites == 0 {
		t.Fatalf("half-truncated stream not degraded under a 0.99 floor: %s", rep)
	}
	victimTrace := ""
	for _, loss := range rep.Sites {
		if loss.Site == victim {
			victimTrace = loss.Trace
			if loss.Salvage == nil || loss.Salvage.LostBytes == 0 {
				t.Fatalf("victim loss carries no salvage account: %+v", loss)
			}
			if !loss.Degraded {
				t.Fatalf("victim not degraded: %+v", loss)
			}
		}
	}
	if victimTrace == "" {
		t.Fatalf("victim site %d missing from the report: %s", victim, rep)
	}
	// The degraded site must not be pretenured: its evidence stays at the
	// young generation.
	for _, s := range prof.Sites {
		if s.Trace == victimTrace && s.Gen > 0 {
			t.Fatalf("degraded site still assigned gen %d", s.Gen)
		}
	}
}

// TestAnalyzeSalvageConfidenceFloorDisabled checks a negative floor turns
// the degrade heuristic off: the damage is still reported, but whatever
// evidence survived is used as-is.
func TestAnalyzeSalvageConfidenceFloorDisabled(t *testing.T) {
	dir, _, d := profileRun(t, 800)
	snaps := d.Snapshots()
	victim, size := largestStream(t, dir)
	if err := os.Truncate(streamPath(dir, victim), size/2); err != nil {
		t.Fatal(err)
	}

	_, rep, err := AnalyzeSalvage(dir, snaps, Options{App: "mini", Workload: "test", ConfidenceFloor: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("damage unreported with the floor disabled")
	}
	if rep.DegradedSites != 0 {
		t.Fatalf("sites degraded despite a negative floor: %s", rep)
	}
	for _, loss := range rep.Sites {
		if loss.Degraded {
			t.Fatalf("loss marked degraded despite a negative floor: %+v", loss)
		}
	}
}

// TestAnalyzeSalvageMissingStream deletes one stream entirely: the site
// stays in the table, contributes nothing, and is reported with a read
// error and forced degradation.
func TestAnalyzeSalvageMissingStream(t *testing.T) {
	dir, _, d := profileRun(t, 800)
	snaps := d.Snapshots()
	victim, _ := largestStream(t, dir)
	if err := os.Remove(streamPath(dir, victim)); err != nil {
		t.Fatal(err)
	}

	prof, rep, err := AnalyzeSalvage(dir, snaps, Options{App: "mini", Workload: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil {
		t.Fatal("salvage produced no profile")
	}
	found := false
	for _, loss := range rep.Sites {
		if loss.Site == victim {
			found = true
			if loss.Err == "" {
				t.Fatalf("missing stream reported without an error: %+v", loss)
			}
			if !loss.Degraded {
				t.Fatalf("missing stream not degraded: %+v", loss)
			}
		}
	}
	if !found {
		t.Fatalf("missing stream absent from the report: %s", rep)
	}
	if rep.DegradedSites == 0 {
		t.Fatal("degraded count not incremented")
	}
}

// TestAnalyzeSalvageDirDamagedSnapshots persists the snapshots, damages an
// image mid-chain, and checks AnalyzeSalvageDir folds the directory salvage
// account into the report while still producing a profile.
func TestAnalyzeSalvageDirDamagedSnapshots(t *testing.T) {
	dir, _, d := profileRun(t, 800)
	snaps := d.Snapshots()
	if len(snaps) < 3 {
		t.Fatalf("run produced only %d snapshots", len(snaps))
	}
	snapDir := t.TempDir()
	if err := snapshot.WriteDir(snapDir, snaps); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(snapDir, snapshot.FileName(snaps[len(snaps)/2].Seq))
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	prof, rep, err := AnalyzeSalvageDir(dir, snapDir, Options{App: "mini", Workload: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil {
		t.Fatal("salvage produced no profile")
	}
	if rep.Snapshots == nil {
		t.Fatal("directory salvage account missing from the report")
	}
	if rep.Snapshots.Clean() {
		t.Fatalf("damaged image left a clean snapshot account: %+v", rep.Snapshots)
	}
	if rep.Snapshots.Usable >= rep.Snapshots.Total {
		t.Fatalf("snapshot account implausible: %+v", rep.Snapshots)
	}
	if rep.Clean() {
		t.Fatal("report clean despite snapshot damage")
	}
}
