package analyzer

import (
	"path/filepath"
	"testing"

	"polm2/internal/dumper"
	"polm2/internal/gc/g1"
	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/recorder"
	"polm2/internal/simclock"
)

// profileRun executes a tiny synthetic application under the full profiling
// pipeline (engine + Recorder + Dumper) and returns the analysis inputs.
//
// The application allocates through a shared helper from two paths: the
// "keep" path retains objects for the rest of the run, the "drop" path
// discards them immediately — the paper's Listing 1 conflict in miniature.
// A third site allocates transient objects directly.
func profileRun(t *testing.T, iterations int) (string, []func() error, *dumper.Dumper) {
	t.Helper()
	clk := simclock.New()
	col, err := g1.New(clk, g1.Config{
		Heap: heap.Config{
			RegionSize: 16 * 1024,
			PageSize:   4096,
			MaxBytes:   256 * 16 * 1024,
		},
		YoungBytes: 4 * 16 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm := jvm.New(col)
	dir := t.TempDir()
	d := dumper.New(vm.Heap(), clk, dumper.Config{ChargeClock: true})
	rec, err := recorder.New(recorder.Config{Dir: dir}, vm.Heap(), vm.Sites(), d)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(vm)

	th := vm.NewThread("app")
	th.Enter("Main", "run")
	h := vm.Heap()
	var kept []*heap.Object
	for i := 0; i < iterations; i++ {
		// Transient allocation directly in run().
		if _, err := th.Alloc(10, 256); err != nil {
			t.Fatal(err)
		}
		// Keep path: run:20 -> Helper.make:3.
		th.Call(20, "Helper", "make")
		obj, err := th.Alloc(3, 256)
		if err != nil {
			t.Fatal(err)
		}
		th.Return()
		if err := h.AddRoot(obj.ID); err != nil {
			t.Fatal(err)
		}
		kept = append(kept, obj)
		// Drop path: run:30 -> Helper.make:3.
		th.Call(30, "Helper", "make")
		if _, err := th.Alloc(3, 256); err != nil {
			t.Fatal(err)
		}
		th.Return()
		th.ReleaseLocals()
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	_ = kept
	return dir, nil, d
}

func TestAnalyzeEndToEnd(t *testing.T) {
	dir, _, d := profileRun(t, 800)
	snaps := d.Snapshots()
	if len(snaps) < 3 {
		t.Fatalf("profiling run produced only %d snapshots", len(snaps))
	}
	p, err := Analyze(dir, snaps, Options{App: "mini", Workload: "test"})
	if err != nil {
		t.Fatal(err)
	}

	if p.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1 (shared Helper.make site)", p.Conflicts)
	}
	if p.Unresolved != 0 {
		t.Fatalf("unresolved = %d, want 0", p.Unresolved)
	}
	if p.Generations < 1 {
		t.Fatalf("generations = %d, want >= 1", p.Generations)
	}

	// The keep path must be anchored at its distinguishing call site
	// (Main.run:20) with a positive generation.
	foundAnchor := false
	for _, c := range p.Calls {
		if c.Loc == "Main.run:20" && c.Gen >= 1 {
			foundAnchor = true
		}
		if c.Loc == "Main.run:30" {
			t.Fatalf("drop path got a generation switch: %+v", c)
		}
	}
	if !foundAnchor {
		t.Fatalf("keep path not anchored; calls = %+v", p.Calls)
	}

	// The shared allocation site must be annotated (not direct).
	foundAnnot := false
	for _, a := range p.Allocs {
		if a.Loc == "Helper.make:3" {
			foundAnnot = true
			if a.Direct {
				t.Fatal("conflicted site must be annotate-only")
			}
		}
		if a.Loc == "Main.run:10" {
			t.Fatalf("transient site instrumented: %+v", a)
		}
	}
	if !foundAnnot {
		t.Fatalf("shared site not annotated; allocs = %+v", p.Allocs)
	}

	// Site evidence sanity: the transient site's objects die before the
	// first snapshot.
	for _, s := range p.Sites {
		if s.Trace == "Main.run:10" {
			if s.Gen != 0 {
				t.Fatalf("transient site got gen %d", s.Gen)
			}
			if s.Allocated == 0 {
				t.Fatal("transient site has no recorded allocations")
			}
		}
	}
}

func TestAnalyzeEstimatorP90(t *testing.T) {
	dir, _, d := profileRun(t, 400)
	p, err := Analyze(dir, d.Snapshots(), Options{Estimator: EstimatorP90})
	if err != nil {
		t.Fatal(err)
	}
	if p.Generations < 1 {
		t.Fatalf("P90 estimator found no long-lived site: %+v", p.Sites)
	}
}

func TestAnalyzeDisableConflictResolution(t *testing.T) {
	dir, _, d := profileRun(t, 400)
	p, err := Analyze(dir, d.Snapshots(), Options{DisableConflictResolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", p.Conflicts)
	}
	// The ablation instruments the shared site directly with the highest
	// conflicting generation, mispretenuring the drop path.
	found := false
	for _, a := range p.Allocs {
		if a.Loc == "Helper.make:3" && a.Direct && a.Gen >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ablation did not instrument the shared site directly: %+v", p.Allocs)
	}
	for _, c := range p.Calls {
		if c.Loc == "Main.run:20" || c.Loc == "Main.run:30" {
			t.Fatalf("ablation should not anchor call sites: %+v", c)
		}
	}
}

func TestAnalyzeDisableHoisting(t *testing.T) {
	dir, _, d := profileRun(t, 400)
	withHoist, err := Analyze(dir, d.Snapshots(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	withoutHoist, err := Analyze(dir, d.Snapshots(), Options{DisableHoisting: true})
	if err != nil {
		t.Fatal(err)
	}
	// The conflicted site still needs its anchors either way; hoisting
	// only affects non-conflicted coverage, of which this app has none
	// beyond the anchors, so both must at least validate and agree on
	// conflicts.
	if withHoist.Conflicts != withoutHoist.Conflicts {
		t.Fatal("hoisting changed conflict count")
	}
}

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	dir, _, d := profileRun(t, 400)
	p, err := Analyze(dir, d.Snapshots(), Options{App: "mini", Workload: "w"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.App != "mini" || loaded.Workload != "w" {
		t.Fatalf("labels lost: %+v", loaded)
	}
	if len(loaded.Allocs) != len(p.Allocs) || len(loaded.Calls) != len(p.Calls) {
		t.Fatal("directives lost in round trip")
	}
	if loaded.Generations != p.Generations || loaded.Conflicts != p.Conflicts {
		t.Fatal("metadata lost in round trip")
	}
}

func TestLoadProfileErrors(t *testing.T) {
	if _, err := LoadProfile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing profile should fail")
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{Generations: -1},
		{Generations: 1, Allocs: []AllocDirective{{Loc: "garbage", Gen: 1}}},
		{Generations: 1, Allocs: []AllocDirective{{Loc: "A.m:1", Gen: 5}}},
		{Generations: 1, Calls: []CallDirective{{Loc: "A.m:1", Gen: 0}}},
		{Generations: 1, Calls: []CallDirective{{Loc: "bad", Gen: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d should fail validation", i)
		}
	}
	good := Profile{
		Generations: 2,
		Allocs:      []AllocDirective{{Loc: "A.m:1", Gen: 2, Direct: true}, {Loc: "B.n:2", Gen: 0}},
		Calls:       []CallDirective{{Loc: "C.o:3", Gen: 1}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestUsedGenerationsAndInstrumentedSites(t *testing.T) {
	p := Profile{
		Generations: 3,
		Allocs:      []AllocDirective{{Loc: "A.m:1", Gen: 3, Direct: true}, {Loc: "B.n:2", Gen: 0}},
	}
	if p.UsedGenerations() != 4 {
		t.Fatalf("UsedGenerations = %d, want 4", p.UsedGenerations())
	}
	if p.InstrumentedSites() != 2 {
		t.Fatalf("InstrumentedSites = %d, want 2", p.InstrumentedSites())
	}
}

func TestClusterGenerations(t *testing.T) {
	gens := map[heap.SiteID]int{1: 0, 2: 3, 3: 4, 4: 9, 5: 10, 6: 20}
	clusterGenerations(gens, 1)
	if gens[1] != 0 {
		t.Fatal("young site must stay young")
	}
	if gens[2] != gens[3] || gens[2] != 1 {
		t.Fatalf("3 and 4 should cluster to 1: %v", gens)
	}
	if gens[4] != gens[5] || gens[4] != 2 {
		t.Fatalf("9 and 10 should cluster to 2: %v", gens)
	}
	if gens[6] != 3 {
		t.Fatalf("20 should be cluster 3: %v", gens)
	}
}

func TestClusterGenerationsDisabled(t *testing.T) {
	gens := map[heap.SiteID]int{1: 3, 2: 4}
	clusterGenerations(gens, -1)
	if gens[1] != 3 || gens[2] != 4 {
		t.Fatalf("negative gap should disable clustering: %v", gens)
	}
}
