package analyzer

import (
	"testing"

	"polm2/internal/heap"
	"polm2/internal/jvm"
)

func loc(class, method string, line int) jvm.CodeLoc {
	return jvm.CodeLoc{Class: class, Method: method, Line: line}
}

// listing1Traces reproduces the paper's Listing 1 / Figure 2 structure: two
// call paths through methodB -> methodC -> methodD reach the same allocation
// site in methodD with different lifetimes.
func listing1Traces() (map[heap.SiteID]jvm.StackTrace, map[heap.SiteID]int) {
	traces := map[heap.SiteID]jvm.StackTrace{
		// methodB:21 -> methodC(true):8 -> methodD:4 (long-lived)
		1: {loc("Main", "run", 1), loc("Class1", "methodB", 21), loc("Class1", "methodC", 8), loc("Class1", "methodD", 4)},
		// methodB:26 -> methodC(false):10 -> methodD:4 (short-lived)
		2: {loc("Main", "run", 1), loc("Class1", "methodB", 26), loc("Class1", "methodC", 10), loc("Class1", "methodD", 4)},
	}
	gens := map[heap.SiteID]int{1: 2, 2: 0}
	return traces, gens
}

func TestBuildTreeStructure(t *testing.T) {
	traces, gens := listing1Traces()
	tree := BuildTree(traces, gens)
	roots := tree.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	if roots[0].Loc != loc("Main", "run", 1) {
		t.Fatalf("root loc = %v", roots[0].Loc)
	}
	leaves := tree.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("leaves = %d, want 2", len(leaves))
	}
	for _, l := range leaves {
		if l.Loc != loc("Class1", "methodD", 4) {
			t.Fatalf("leaf loc = %v", l.Loc)
		}
		if !l.IsLeaf {
			t.Fatal("leaf not marked leaf")
		}
	}
	if leaves[0].Gen == leaves[1].Gen {
		t.Fatal("leaves should carry distinct target generations")
	}
}

func TestDetectConflicts(t *testing.T) {
	traces, gens := listing1Traces()
	tree := BuildTree(traces, gens)
	groups := tree.DetectConflicts()
	if len(groups) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(groups))
	}
	if groups[0].Loc != loc("Class1", "methodD", 4) {
		t.Fatalf("conflict loc = %v", groups[0].Loc)
	}
	if len(groups[0].Leaves) != 2 {
		t.Fatalf("conflict group size = %d, want 2", len(groups[0].Leaves))
	}
}

func TestNoConflictWhenGensAgree(t *testing.T) {
	traces, _ := listing1Traces()
	gens := map[heap.SiteID]int{1: 2, 2: 2}
	tree := BuildTree(traces, gens)
	if groups := tree.DetectConflicts(); len(groups) != 0 {
		t.Fatalf("agreeing leaves reported as conflict: %v", groups)
	}
}

func TestResolveConflictsAnchorsAtDivergence(t *testing.T) {
	traces, gens := listing1Traces()
	tree := BuildTree(traces, gens)
	groups := tree.DetectConflicts()
	resolved, unresolved := ResolveConflicts(groups)
	if len(unresolved) != 0 {
		t.Fatalf("unresolved = %d, want 0", len(unresolved))
	}
	if len(resolved) != 2 {
		t.Fatalf("resolved = %d, want 2", len(resolved))
	}
	// The paths diverge at methodC's internal line (8 vs 10): the
	// anchors must be the two methodC nodes.
	wantAnchors := map[jvm.CodeLoc]bool{
		loc("Class1", "methodC", 8):  true,
		loc("Class1", "methodC", 10): true,
	}
	for _, r := range resolved {
		if !wantAnchors[r.Anchor.Loc] {
			t.Fatalf("unexpected anchor %v", r.Anchor.Loc)
		}
		delete(wantAnchors, r.Anchor.Loc)
	}
}

// TestResolveConflictsDeepDivergence exercises paths that share several
// ancestor locations before diverging.
func TestResolveConflictsDeepDivergence(t *testing.T) {
	traces := map[heap.SiteID]jvm.StackTrace{
		1: {loc("M", "r", 1), loc("A", "x", 5), loc("B", "y", 7), loc("C", "z", 9)},
		2: {loc("M", "r", 2), loc("A", "x", 5), loc("B", "y", 7), loc("C", "z", 9)},
	}
	gens := map[heap.SiteID]int{1: 3, 2: 1}
	tree := BuildTree(traces, gens)
	groups := tree.DetectConflicts()
	if len(groups) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(groups))
	}
	resolved, unresolved := ResolveConflicts(groups)
	if len(unresolved) != 0 || len(resolved) != 2 {
		t.Fatalf("resolved/unresolved = %d/%d, want 2/0", len(resolved), len(unresolved))
	}
	// Divergence is at the very root (M.r:1 vs M.r:2).
	for _, r := range resolved {
		if r.Anchor.Loc.Class != "M" {
			t.Fatalf("anchor %v should be at the diverging root", r.Anchor.Loc)
		}
	}
}

func TestResolveConflictsThreeWay(t *testing.T) {
	traces := map[heap.SiteID]jvm.StackTrace{
		1: {loc("M", "r", 1), loc("H", "make", 3)},
		2: {loc("M", "r", 2), loc("H", "make", 3)},
		3: {loc("M", "r", 4), loc("H", "make", 3)},
	}
	gens := map[heap.SiteID]int{1: 1, 2: 2, 3: 0}
	tree := BuildTree(traces, gens)
	groups := tree.DetectConflicts()
	resolved, unresolved := ResolveConflicts(groups)
	if len(unresolved) != 0 {
		t.Fatalf("unresolved = %d, want 0", len(unresolved))
	}
	if len(resolved) != 3 {
		t.Fatalf("resolved = %d, want 3", len(resolved))
	}
	seen := make(map[jvm.CodeLoc]bool)
	for _, r := range resolved {
		if seen[r.Anchor.Loc] {
			t.Fatalf("anchor %v reused", r.Anchor.Loc)
		}
		seen[r.Anchor.Loc] = true
	}
}
