package analyzer

import (
	"fmt"
	"sort"

	"polm2/internal/heap"
	"polm2/internal/jvm"
	"polm2/internal/recorder"
	"polm2/internal/snapshot"
)

// Estimator selects how a site's target generation is derived from its
// survival-count distribution.
type Estimator int

// Estimators. The paper uses the mode: "the number of collections that most
// objects allocated in a particular stack trace survive" (§3.3). The 90th
// percentile variant is an ablation.
const (
	EstimatorMode Estimator = iota + 1
	EstimatorP90
)

// siteEvidence is the per-site survival evidence assembled by replaying the
// snapshot sequence against the allocation records.
type siteEvidence struct {
	id    heap.SiteID
	trace jvm.StackTrace
	// survived[k] counts objects seen live in exactly k snapshots.
	survived []uint64
	total    uint64
	// tainted counts allocations whose evidence came from damaged
	// recordings (see SiteStat.Tainted).
	tainted uint64
}

// gatherEvidence implements the first half of §3.3's algorithm:
//
//   - load allocation stack traces, associating a bucket sequence to each;
//   - load allocated object ids into bucket zero of their stack trace;
//   - replay snapshots in creation order, moving every object found live
//     into the next bucket.
//
// The result is, per site, the distribution of "number of snapshots
// survived".
func gatherEvidence(recordsDir string, snaps []*snapshot.Snapshot) (map[heap.SiteID]*siteEvidence, error) {
	table, err := recorder.LoadSiteTable(recordsDir)
	if err != nil {
		return nil, err
	}

	evidence := make(map[heap.SiteID]*siteEvidence, len(table))
	idSite := make(map[heap.ObjectID]heap.SiteID)
	for _, sid := range sortedSites(table) {
		ids, err := recorder.ReadIDs(recordsDir, sid)
		if err != nil {
			return nil, err
		}
		addSiteEvidence(evidence, idSite, sid, table[sid], ids)
	}
	if err := replaySnapshots(evidence, idSite, snaps); err != nil {
		return nil, err
	}
	return evidence, nil
}

// sortedSites returns the table's site ids in ascending order.
func sortedSites(table map[heap.SiteID]jvm.StackTrace) []heap.SiteID {
	siteIDs := make([]heap.SiteID, 0, len(table))
	for id := range table {
		siteIDs = append(siteIDs, id)
	}
	sort.Slice(siteIDs, func(i, j int) bool { return siteIDs[i] < siteIDs[j] })
	return siteIDs
}

// addSiteEvidence registers one site's recorded ids.
func addSiteEvidence(evidence map[heap.SiteID]*siteEvidence, idSite map[heap.ObjectID]heap.SiteID, sid heap.SiteID, trace jvm.StackTrace, ids []heap.ObjectID) {
	evidence[sid] = &siteEvidence{id: sid, trace: trace, total: uint64(len(ids))}
	for _, oid := range ids {
		idSite[oid] = sid
	}
}

// replaySnapshots replays the snapshot sequence through the store, counting
// how many snapshots each recorded object appears in, and fills every
// site's survival buckets.
func replaySnapshots(evidence map[heap.SiteID]*siteEvidence, idSite map[heap.ObjectID]heap.SiteID, snaps []*snapshot.Snapshot) error {
	idSurvived := make(map[heap.ObjectID]int)
	store := snapshot.NewStore()
	ordered := make([]*snapshot.Snapshot, len(snaps))
	copy(ordered, snaps)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })
	for _, snap := range ordered {
		if err := store.Apply(snap); err != nil {
			return fmt.Errorf("analyzer: replaying snapshots: %w", err)
		}
		store.ForEach(func(oid heap.ObjectID) {
			if _, recorded := idSite[oid]; recorded {
				idSurvived[oid]++
			}
		})
	}

	maxBucket := len(ordered)
	for _, ev := range evidence {
		ev.survived = make([]uint64, maxBucket+1)
	}
	for oid, sid := range idSite {
		evidence[sid].survived[idSurvived[oid]]++
	}
	return nil
}

// targetGen estimates the site's target generation from its survival
// distribution: zero keeps the site young (uninstrumented).
func (ev *siteEvidence) targetGen(est Estimator, minSamples uint64, minOldFraction float64, maxGen int) int {
	if ev.total < minSamples {
		return 0
	}
	var old uint64
	for k := 1; k < len(ev.survived); k++ {
		old += ev.survived[k]
	}
	if float64(old) < minOldFraction*float64(ev.total) {
		// Most objects at this site die before the first snapshot:
		// they follow the weak generational hypothesis and belong in
		// the young generation.
		return 0
	}
	var gen int
	switch est {
	case EstimatorP90:
		// Smallest k such that at least 90% of objects survived
		// fewer than or exactly k snapshots.
		threshold := (ev.total*9 + 9) / 10
		var cum uint64
		for k, n := range ev.survived {
			cum += n
			if cum >= threshold {
				gen = k
				break
			}
		}
	default: // EstimatorMode
		// Ties prefer the higher bucket: a site whose objects survive
		// "at least k" snapshots uniformly (objects that outlive the
		// whole profiling window produce flat tails) belongs with the
		// longest-lived generation it reaches.
		var best uint64
		for k := 1; k < len(ev.survived); k++ {
			if ev.survived[k] >= best && ev.survived[k] > 0 {
				best = ev.survived[k]
				gen = k
			}
		}
	}
	if gen > maxGen {
		gen = maxGen
	}
	return gen
}
