package analyzer

import (
	"strings"
	"testing"
)

func renderableProfile() *Profile {
	return &Profile{
		App:         "demo",
		Workload:    "w",
		Generations: 2,
		Conflicts:   1,
		Calls: []CallDirective{
			{Loc: "Class1.methodC:8", Gen: 2},
		},
		Allocs: []AllocDirective{
			{Loc: "Class1.methodD:4", Gen: 0},
		},
		Sites: []SiteStat{
			{Trace: "Main.run:1;Class1.methodB:21;Class1.methodC:8;Class1.methodD:4", Gen: 2, Allocated: 100},
			{Trace: "Main.run:1;Class1.methodB:26;Class1.methodC:10;Class1.methodD:4", Gen: 0, Allocated: 100},
		},
	}
}

func TestRenderSTTree(t *testing.T) {
	var sb strings.Builder
	if err := RenderSTTree(renderableProfile(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Main.run:1",
		"Class1.methodB:21",
		"Class1.methodD:4  gen=2 @Gen (conflict)",
		"Class1.methodD:4  gen=0 @Gen (conflict)",
		"[setGen -> 2]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderDOT(t *testing.T) {
	var sb strings.Builder
	if err := RenderDOT(renderableProfile(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph sttree", "->", "gen=2", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT rendering missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT output not closed")
	}
}

func TestRenderEmptyProfileFails(t *testing.T) {
	if err := RenderSTTree(&Profile{}, &strings.Builder{}); err == nil {
		t.Fatal("rendering without site evidence should fail")
	}
	if err := RenderDOT(&Profile{}, &strings.Builder{}); err == nil {
		t.Fatal("rendering without site evidence should fail")
	}
}

func TestRenderMalformedTraceFails(t *testing.T) {
	p := &Profile{Sites: []SiteStat{{Trace: "garbage-without-colon"}}}
	if err := RenderSTTree(p, &strings.Builder{}); err == nil {
		t.Fatal("malformed trace should fail")
	}
}
