// Package analyzer implements the Analyzer component of POLM2 (§3.3): it
// combines the Recorder's allocation records with the Dumper's snapshot
// sequence to estimate an object-lifetime distribution per allocation site,
// builds the stack-trace tree (STTree), detects and resolves allocation-path
// conflicts (Algorithm 1), and emits the application allocation profile the
// Instrumenter consumes in the production phase.
package analyzer

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"polm2/internal/jvm"
)

// AllocDirective instructs the Instrumenter about one allocation site.
type AllocDirective struct {
	// Loc is the allocation site's code location.
	Loc string `json:"loc"`
	// Gen is the abstract target generation (1-based; the production
	// phase maps abstract generations onto collector generations at
	// launch).
	Gen int `json:"gen"`
	// Direct makes the instrumented site carry its own
	// setGeneration(gen) / restore pair around the allocation; otherwise
	// the site is only annotated @Gen and inherits the thread's current
	// target generation from an enclosing CallDirective.
	Direct bool `json:"direct,omitempty"`
}

// CallDirective wraps a call site in setGeneration(gen)/setAllocGen(saved),
// as in the paper's Listing 2.
type CallDirective struct {
	Loc string `json:"loc"`
	Gen int    `json:"gen"`
}

// SiteStat records per-allocation-site profiling evidence, kept in the
// profile for diagnostics and for the Table 1 metrics.
type SiteStat struct {
	Trace string `json:"trace"`
	// Allocated is the number of recorded allocations.
	Allocated uint64 `json:"allocated"`
	// Buckets[k] counts objects that were seen live in exactly k
	// snapshots (§3.3's bucket sequence).
	Buckets []uint64 `json:"buckets"`
	// Gen is the estimated target generation (0 = young, not
	// instrumented).
	Gen int `json:"gen"`
	// Tainted counts allocations whose evidence came from damaged
	// (salvage-degraded) recordings. It is a pure sum under
	// MergeProfiles, so fleet merges can reapply the confidence floor
	// to Tainted/Allocated no matter how the evidence arrived.
	Tainted uint64 `json:"tainted,omitempty"`
}

// Profile is the application allocation profile: the output of the
// profiling phase and the input of the production phase (§3.5).
type Profile struct {
	App      string `json:"app,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Generations is the number of abstract generations the production
	// phase must create at launch (the paper creates Gen1..GenN by
	// calling newGeneration, §3.4).
	Generations int `json:"generations"`
	// Allocs and Calls are the instrumentation directives.
	Allocs []AllocDirective `json:"allocs"`
	Calls  []CallDirective  `json:"calls"`
	// Conflicts is the number of allocation-path conflicts detected
	// (Table 1's "# Conflicts Encountered").
	Conflicts int `json:"conflicts"`
	// Unresolved counts conflicts Algorithm 1 could not anchor (kept at
	// generation zero).
	Unresolved int `json:"unresolved,omitempty"`
	// Sites is the per-site evidence.
	Sites []SiteStat `json:"sites,omitempty"`
}

// InstrumentedSites returns the number of instrumented allocation sites —
// Table 1's first metric.
func (p *Profile) InstrumentedSites() int { return len(p.Allocs) }

// UsedGenerations returns the number of generations in use including the
// young generation — Table 1's second metric.
func (p *Profile) UsedGenerations() int { return p.Generations + 1 }

// sortDirectives brings the directive lists into a deterministic order.
func (p *Profile) sortDirectives() {
	sort.Slice(p.Allocs, func(i, j int) bool { return p.Allocs[i].Loc < p.Allocs[j].Loc })
	sort.Slice(p.Calls, func(i, j int) bool { return p.Calls[i].Loc < p.Calls[j].Loc })
	sort.Slice(p.Sites, func(i, j int) bool { return p.Sites[i].Trace < p.Sites[j].Trace })
}

// Save writes the profile as JSON, atomically: the file is staged under a
// temporary name and renamed into place, so a crash mid-write never leaves
// a half-written profile for the production phase to choke on.
func (p *Profile) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("analyzer: encoding profile: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("analyzer: writing profile: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("analyzer: publishing profile: %w", err)
	}
	return nil
}

// LoadProfile reads a profile saved by Save.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analyzer: reading profile: %w", err)
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("analyzer: decoding profile %q: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("analyzer: profile %q: %w", path, err)
	}
	return &p, nil
}

// Validate checks the profile's internal consistency.
func (p *Profile) Validate() error {
	if p.Generations < 0 {
		return fmt.Errorf("negative generation count %d", p.Generations)
	}
	for _, d := range p.Allocs {
		if _, err := jvm.ParseCodeLoc(d.Loc); err != nil {
			return fmt.Errorf("alloc directive: %w", err)
		}
		if d.Gen < 0 || d.Gen > p.Generations {
			return fmt.Errorf("alloc directive %q targets generation %d of %d", d.Loc, d.Gen, p.Generations)
		}
	}
	for _, d := range p.Calls {
		if _, err := jvm.ParseCodeLoc(d.Loc); err != nil {
			return fmt.Errorf("call directive: %w", err)
		}
		if d.Gen < 1 || d.Gen > p.Generations {
			return fmt.Errorf("call directive %q targets generation %d of %d", d.Loc, d.Gen, p.Generations)
		}
	}
	return nil
}
