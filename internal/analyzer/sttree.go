package analyzer

import (
	"sort"

	"polm2/internal/heap"
	"polm2/internal/jvm"
)

// Node is one STTree node: a code location on some allocation path,
// carrying the estimated target generation when it is a leaf (allocation
// site). This is the paper's 4-tuple of class name, method name, line
// number and target generation (§3.3).
type Node struct {
	Loc    jvm.CodeLoc
	Parent *Node
	// children is keyed by the child's code location.
	children map[jvm.CodeLoc]*Node
	// IsLeaf marks allocation sites. A node can be both an interior
	// call site and a leaf if a method allocates and calls on the same
	// line; the engine never produces that, but the tree tolerates it.
	IsLeaf bool
	// Gen is the leaf's estimated target generation (leaf nodes only).
	Gen int
	// Sites lists the allocation sites (interned traces) ending at this
	// leaf. Exactly one site ends at any leaf node, since a leaf node's
	// root path is the trace itself.
	Sites []heap.SiteID
}

// Children returns the node's children ordered by code location.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loc.String() < out[j].Loc.String() })
	return out
}

// Tree is the stack-trace tree (STTree) of §3.3.
type Tree struct {
	roots  map[jvm.CodeLoc]*Node
	leaves []*Node
}

// BuildTree merges the given traces into an STTree, attaching each trace's
// estimated target generation to its leaf.
func BuildTree(traces map[heap.SiteID]jvm.StackTrace, gens map[heap.SiteID]int) *Tree {
	t := &Tree{roots: make(map[jvm.CodeLoc]*Node)}
	ids := make([]heap.SiteID, 0, len(traces))
	for id := range traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		trace := traces[id]
		if len(trace) == 0 {
			continue
		}
		node := t.root(trace[0])
		for _, loc := range trace[1:] {
			node = node.child(loc)
		}
		node.IsLeaf = true
		node.Gen = gens[id]
		node.Sites = append(node.Sites, id)
		t.leaves = append(t.leaves, node)
	}
	return t
}

func (t *Tree) root(loc jvm.CodeLoc) *Node {
	n, ok := t.roots[loc]
	if !ok {
		n = &Node{Loc: loc, children: make(map[jvm.CodeLoc]*Node)}
		t.roots[loc] = n
	}
	return n
}

func (n *Node) child(loc jvm.CodeLoc) *Node {
	c, ok := n.children[loc]
	if !ok {
		c = &Node{Loc: loc, Parent: n, children: make(map[jvm.CodeLoc]*Node)}
		n.children[loc] = c
	}
	return c
}

// Leaves returns all leaf nodes in deterministic order.
func (t *Tree) Leaves() []*Node {
	out := make([]*Node, len(t.leaves))
	copy(out, t.leaves)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Loc != out[j].Loc {
			return out[i].Loc.String() < out[j].Loc.String()
		}
		return pathString(out[i]) < pathString(out[j])
	})
	return out
}

// Roots returns the root nodes in deterministic order.
func (t *Tree) Roots() []*Node {
	out := make([]*Node, 0, len(t.roots))
	for _, n := range t.roots {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loc.String() < out[j].Loc.String() })
	return out
}

func pathString(n *Node) string {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur.Loc.String())
	}
	var sb []byte
	for i := len(rev) - 1; i >= 0; i-- {
		sb = append(sb, rev[i]...)
		sb = append(sb, ';')
	}
	return string(sb)
}

// ConflictGroup is a set of leaves sharing one code location but carrying
// at least two distinct target generations — the paper's conflict (§3.3):
// the same allocation site reached through allocation paths with different
// lifetimes.
type ConflictGroup struct {
	Loc    jvm.CodeLoc
	Leaves []*Node
}

// DetectConflicts implements the detection half of Algorithm 1: group
// leaves by code location and keep the groups whose members disagree on the
// target generation.
func (t *Tree) DetectConflicts() []ConflictGroup {
	byLoc := make(map[jvm.CodeLoc][]*Node)
	for _, leaf := range t.Leaves() {
		byLoc[leaf.Loc] = append(byLoc[leaf.Loc], leaf)
	}
	var groups []ConflictGroup
	for loc, leaves := range byLoc {
		distinct := make(map[int]struct{})
		for _, l := range leaves {
			distinct[l.Gen] = struct{}{}
		}
		if len(distinct) > 1 {
			groups = append(groups, ConflictGroup{Loc: loc, Leaves: leaves})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Loc.String() < groups[j].Loc.String() })
	return groups
}

// Resolution anchors one conflicting leaf's generation switch at the
// nearest ancestor whose code location distinguishes it from the other
// members of its conflict group.
type Resolution struct {
	Leaf   *Node
	Anchor *Node
}

// ResolveConflicts implements the resolution half of Algorithm 1: every
// conflicting leaf pushes its target generation to its parent until the
// current ancestors' code locations are pairwise distinct (and do not
// collide with an anchor already chosen for a different generation). Leaves
// whose ancestor chain is exhausted first are returned as unresolved.
func ResolveConflicts(groups []ConflictGroup) (resolved []Resolution, unresolved []*Node) {
	taken := make(map[jvm.CodeLoc]int) // anchor loc -> generation
	for _, group := range groups {
		type walker struct {
			leaf *Node
			cur  *Node
		}
		walkers := make([]walker, len(group.Leaves))
		for i, leaf := range group.Leaves {
			walkers[i] = walker{leaf: leaf, cur: leaf}
		}
		for len(walkers) > 0 {
			// Step every remaining walker to its parent.
			next := walkers[:0]
			for _, w := range walkers {
				if w.cur.Parent == nil {
					unresolved = append(unresolved, w.leaf)
					continue
				}
				w.cur = w.cur.Parent
				next = append(next, w)
			}
			walkers = next
			if len(walkers) == 0 {
				break
			}
			// Count occurrences of each current location.
			counts := make(map[jvm.CodeLoc]int, len(walkers))
			for _, w := range walkers {
				counts[w.cur.Loc]++
			}
			// Resolve walkers whose location is unique and not
			// already anchored to a different generation.
			next = walkers[:0]
			for _, w := range walkers {
				gen, anchored := taken[w.cur.Loc]
				if counts[w.cur.Loc] == 1 && (!anchored || gen == w.leaf.Gen) {
					taken[w.cur.Loc] = w.leaf.Gen
					resolved = append(resolved, Resolution{Leaf: w.leaf, Anchor: w.cur})
					continue
				}
				next = append(next, w)
			}
			walkers = next
		}
	}
	return resolved, unresolved
}
