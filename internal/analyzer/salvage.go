package analyzer

import (
	"fmt"
	"strings"

	"polm2/internal/heap"
	"polm2/internal/recorder"
	"polm2/internal/snapshot"
)

// SiteLoss records the damage met while reading one site's id stream.
type SiteLoss struct {
	Site  heap.SiteID `json:"site"`
	Trace string      `json:"trace,omitempty"`
	// Salvage is the stream decode account; nil when the file itself was
	// unreadable.
	Salvage *recorder.StreamSalvage `json:"salvage,omitempty"`
	// Err is set when the stream file could not be read at all.
	Err string `json:"err,omitempty"`
	// Degraded reports that the site was forced to the young/dynamic
	// fallback because its surviving evidence fell below the confidence
	// floor.
	Degraded bool `json:"degraded,omitempty"`
}

// SalvageReport accounts for everything AnalyzeSalvage could not recover.
// A clean report means the salvage analysis saw exactly what a strict one
// would have.
type SalvageReport struct {
	// Table is the site-table decode account.
	Table *recorder.TableSalvage `json:"table,omitempty"`
	// Sites lists streams that lost data (damaged, unreadable, or
	// degraded). Streams that only miss their commit trailer with no byte
	// loss — live recordings — are not listed.
	Sites []SiteLoss `json:"sites,omitempty"`
	// Snapshots is the snapshot-directory salvage account; nil when the
	// snapshots were handed over in memory.
	Snapshots *snapshot.DirSalvage `json:"snapshots,omitempty"`
	// LostBytes totals bytes dropped across all streams.
	LostBytes int64 `json:"lost_bytes,omitempty"`
	// DegradedSites counts sites forced to the young/dynamic fallback.
	DegradedSites int `json:"degraded_sites,omitempty"`
}

// Clean reports whether nothing was lost: every artifact decoded fully.
func (r *SalvageReport) Clean() bool {
	if r == nil {
		return true
	}
	if r.Table != nil && !r.Table.Complete {
		return false
	}
	if len(r.Sites) > 0 || r.DegradedSites > 0 {
		return false
	}
	if r.Snapshots != nil && !r.Snapshots.Clean() {
		return false
	}
	return true
}

// String renders the report as a one-line operator log message.
func (r *SalvageReport) String() string {
	if r.Clean() {
		return "salvage: all artifacts intact"
	}
	var parts []string
	if r.Table != nil && !r.Table.Complete {
		parts = append(parts, fmt.Sprintf("site table incomplete (%s)", r.Table.Reason))
	}
	if len(r.Sites) > 0 {
		parts = append(parts, fmt.Sprintf("%d damaged streams (%d bytes lost)", len(r.Sites), r.LostBytes))
	}
	if r.DegradedSites > 0 {
		parts = append(parts, fmt.Sprintf("%d sites degraded to young", r.DegradedSites))
	}
	if r.Snapshots != nil && !r.Snapshots.Clean() {
		parts = append(parts, fmt.Sprintf("snapshots %d/%d usable", r.Snapshots.Usable, r.Snapshots.Total))
	}
	return "salvage: " + strings.Join(parts, "; ")
}

// AnalyzeSalvage is Analyze's corruption-tolerant twin: instead of refusing
// damaged artifacts it analyzes the longest trustworthy prefix of each and
// reports what was lost. Sites whose surviving stream falls below
// opts.ConfidenceFloor are degraded to the safe young/dynamic fallback
// rather than instrumented from evidence that may be misleading. The error
// is non-nil only when no analysis is possible at all (the site table file
// is unreadable or the synthesis itself fails).
func AnalyzeSalvage(recordsDir string, snaps []*snapshot.Snapshot, opts Options) (*Profile, *SalvageReport, error) {
	opts = opts.withDefaults()
	rep := &SalvageReport{}

	table, tsal, err := recorder.SalvageSiteTable(recordsDir)
	if err != nil {
		return nil, nil, err
	}
	rep.Table = tsal

	evidence := make(map[heap.SiteID]*siteEvidence, len(table))
	idSite := make(map[heap.ObjectID]heap.SiteID)
	degraded := make(map[heap.SiteID]bool)
	for _, sid := range sortedSites(table) {
		ids, sal, err := recorder.SalvageIDs(recordsDir, sid)
		if err != nil {
			// The stream never made it to disk: the site contributes no
			// evidence and stays uninstrumented.
			rep.Sites = append(rep.Sites, SiteLoss{Site: sid, Trace: table[sid].String(), Err: err.Error(), Degraded: true})
			rep.DegradedSites++
			continue
		}
		addSiteEvidence(evidence, idSite, sid, table[sid], ids)
		if sal.LostBytes == 0 {
			// Fully decoded — a live stream missing only its commit
			// trailer is not damage.
			continue
		}
		loss := SiteLoss{Site: sid, Trace: table[sid].String(), Salvage: sal}
		rep.LostBytes += sal.LostBytes
		if opts.ConfidenceFloor >= 0 && sal.Confidence() < opts.ConfidenceFloor {
			loss.Degraded = true
			degraded[sid] = true
			rep.DegradedSites++
			// The whole site's surviving evidence is untrusted: taint it
			// all, so a later fleet merge weighs it correctly.
			evidence[sid].tainted = evidence[sid].total
		}
		rep.Sites = append(rep.Sites, loss)
	}

	if err := replaySnapshots(evidence, idSite, snaps); err != nil {
		return nil, rep, err
	}
	prof, err := synthesize(evidence, opts, degraded)
	if err != nil {
		return nil, rep, err
	}
	return prof, rep, nil
}

// AnalyzeSalvageDir is AnalyzeSalvage over an on-disk snapshot directory:
// the snapshot chain is salvaged with snapshot.ReadDirSalvage and its
// account is included in the report.
func AnalyzeSalvageDir(recordsDir, snapsDir string, opts Options) (*Profile, *SalvageReport, error) {
	snaps, dsal, err := snapshot.ReadDirSalvage(snapsDir)
	if err != nil {
		return nil, nil, err
	}
	prof, rep, err := AnalyzeSalvage(recordsDir, snaps, opts)
	if rep != nil {
		rep.Snapshots = dsal
	}
	return prof, rep, err
}
