package analyzer

import (
	"encoding/json"
	"testing"
)

// evidenceProfile builds a profile carrying only site evidence, the shape a
// fleet instance uploads to the plan daemon.
func evidenceProfile(app, workload string, sites ...SiteStat) *Profile {
	return &Profile{App: app, Workload: workload, Sites: sites}
}

func mustMerge(t *testing.T, opts Options, profiles ...*Profile) *Profile {
	t.Helper()
	p, err := MergeProfiles(opts, profiles...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func profileJSON(t *testing.T, p *Profile) []byte {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// permutations returns every ordering of indices 0..n-1.
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			perm := make([]int, 0, n)
			perm = append(perm, sub[:pos]...)
			perm = append(perm, n-1)
			perm = append(perm, sub[pos:]...)
			out = append(out, perm)
		}
	}
	return out
}

// TestMergePermutationInvariance proves order-independence: every
// permutation of the inputs, merged in one batch, yields a byte-identical
// profile.
func TestMergePermutationInvariance(t *testing.T) {
	inputs := []*Profile{
		evidenceProfile("Cassandra", "WI",
			SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 40, Buckets: []uint64{5, 35}},
			SiteStat{Trace: "Main.run:12;Cache.add:7", Allocated: 20, Buckets: []uint64{18, 2}},
		),
		evidenceProfile("Cassandra", "WI",
			SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 60, Buckets: []uint64{10, 20, 30}},
			SiteStat{Trace: "Main.run:14;Log.append:3", Allocated: 30, Buckets: []uint64{2, 1, 27}},
		),
		evidenceProfile("Cassandra", "WI",
			SiteStat{Trace: "Main.run:12;Cache.add:7", Allocated: 50, Buckets: []uint64{45, 5}},
			SiteStat{Trace: "Main.run:14;Log.append:3", Allocated: 16, Buckets: []uint64{0, 0, 16}, Tainted: 16},
		),
		evidenceProfile("Cassandra", "WI",
			SiteStat{Trace: "Main.run:16;Idx.build:9", Allocated: 24, Buckets: []uint64{4, 20}},
		),
	}
	var want []byte
	for i, perm := range permutations(len(inputs)) {
		ordered := make([]*Profile, len(perm))
		for j, idx := range perm {
			ordered[j] = inputs[idx]
		}
		got := profileJSON(t, mustMerge(t, Options{}, ordered...))
		if i == 0 {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("permutation %v changed the merged profile:\n%s\nvs\n%s", perm, got, want)
		}
	}
}

// TestMergeAssociativity proves incremental merging (the daemon's
// upload-at-a-time path) converges to the same profile as one batch merge.
func TestMergeAssociativity(t *testing.T) {
	a := evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 30, Buckets: []uint64{2, 28}},
		SiteStat{Trace: "Main.run:14;Log.append:3", Allocated: 40, Buckets: []uint64{1, 39}, Tainted: 40},
	)
	b := evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 25, Buckets: []uint64{3, 2, 20}},
	)
	c := evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:14;Log.append:3", Allocated: 80, Buckets: []uint64{5, 75}},
		SiteStat{Trace: "Main.run:16;Idx.build:9", Allocated: 12, Buckets: []uint64{0, 12}},
	)
	batch := profileJSON(t, mustMerge(t, Options{}, a, b, c))
	incr := profileJSON(t, mustMerge(t, Options{}, mustMerge(t, Options{}, a, b), c))
	if string(batch) != string(incr) {
		t.Fatalf("incremental merge diverged from batch merge:\n%s\nvs\n%s", incr, batch)
	}
	incr2 := profileJSON(t, mustMerge(t, Options{}, a, mustMerge(t, Options{}, c, b)))
	if string(batch) != string(incr2) {
		t.Fatalf("right-fold merge diverged from batch merge:\n%s\nvs\n%s", incr2, batch)
	}
}

// TestMergeCombinesEvidence checks that merged estimates follow the summed
// buckets, not any single input's estimate.
func TestMergeCombinesEvidence(t *testing.T) {
	// Alone, a says "mostly dies young" (gen 0); b's heavier evidence says
	// the site survives one snapshot.
	a := evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 20, Buckets: []uint64{19, 1}})
	b := evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 100, Buckets: []uint64{10, 90}})
	p := mustMerge(t, Options{}, a, b)
	if len(p.Sites) != 1 {
		t.Fatalf("Sites = %+v", p.Sites)
	}
	s := p.Sites[0]
	if s.Allocated != 120 || s.Buckets[0] != 29 || s.Buckets[1] != 91 {
		t.Fatalf("merged evidence = %+v", s)
	}
	if s.Gen != 1 {
		t.Fatalf("merged gen = %d, want 1 (91/120 survive one snapshot)", s.Gen)
	}
	if len(p.Allocs) == 0 {
		t.Fatal("merged profile emits no directives")
	}
}

// TestMergeConfidenceFloorReapplied checks the floor is re-derived from the
// merged tainted/allocated ratio.
func TestMergeConfidenceFloorReapplied(t *testing.T) {
	tainted := evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 90, Buckets: []uint64{5, 85}, Tainted: 90})
	clean := evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 30, Buckets: []uint64{2, 28}})

	// 90 of 120 allocations tainted: confidence 0.25 < 0.5 floor, the site
	// degrades to young and emits no directive.
	p := mustMerge(t, Options{}, tainted, clean)
	if p.Sites[0].Gen != 0 {
		t.Fatalf("low-confidence merged site gen = %d, want 0", p.Sites[0].Gen)
	}
	if p.Sites[0].Tainted != 90 {
		t.Fatalf("merged tainted = %d, want the pure sum 90", p.Sites[0].Tainted)
	}
	if len(p.Allocs) != 0 || len(p.Calls) != 0 {
		t.Fatalf("degraded site emitted directives: %+v %+v", p.Allocs, p.Calls)
	}

	// More clean evidence arriving later lifts the site back over the
	// floor — the degrade decision is recomputed, never sticky.
	moreClean := evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 120, Buckets: []uint64{10, 110}})
	p2 := mustMerge(t, Options{}, p, moreClean)
	if p2.Sites[0].Gen != 1 {
		t.Fatalf("recovered site gen = %d, want 1", p2.Sites[0].Gen)
	}

	// A negative floor disables degrading.
	p3 := mustMerge(t, Options{ConfidenceFloor: -1}, tainted, clean)
	if p3.Sites[0].Gen != 1 {
		t.Fatalf("floor-disabled merged site gen = %d, want 1", p3.Sites[0].Gen)
	}
}

// TestMergeLabelRules checks label adoption and mismatch rejection.
func TestMergeLabelRules(t *testing.T) {
	labeled := evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 20, Buckets: []uint64{2, 18}})
	unlabeled := evidenceProfile("", "",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 20, Buckets: []uint64{2, 18}})
	p := mustMerge(t, Options{}, labeled, unlabeled)
	if p.App != "Cassandra" || p.Workload != "WI" {
		t.Fatalf("merged labels = %s/%s", p.App, p.Workload)
	}
	other := evidenceProfile("Lucene", "default",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 20, Buckets: []uint64{2, 18}})
	if _, err := MergeProfiles(Options{}, labeled, other); err == nil {
		t.Fatal("cross-application merge accepted")
	}
	if _, err := MergeProfiles(Options{}); err == nil {
		t.Fatal("empty merge accepted")
	}
	bad := evidenceProfile("Cassandra", "WI", SiteStat{Trace: "not a trace", Allocated: 5})
	if _, err := MergeProfiles(Options{}, bad); err == nil {
		t.Fatal("unparseable trace accepted")
	}
}

// TestAccumulatorEquivalence: a reused MergeAccumulator produces byte-
// identical plans to one-shot MergeProfiles calls, merge after merge —
// the parse cache and scratch reuse change cost, never content.
func TestAccumulatorEquivalence(t *testing.T) {
	opts := Options{App: "Cassandra", Workload: "WI"}
	acc := NewMergeAccumulator(opts)
	rounds := [][]*Profile{
		{
			evidenceProfile("Cassandra", "WI",
				SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 40, Buckets: []uint64{5, 35}}),
		},
		{
			evidenceProfile("Cassandra", "WI",
				SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 40, Buckets: []uint64{5, 35}}),
			evidenceProfile("Cassandra", "WI",
				SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 60, Buckets: []uint64{10, 50}},
				SiteStat{Trace: "Main.run:12;Cache.add:7", Allocated: 20, Buckets: []uint64{18, 2}}),
		},
		// A shrinking round: the second profile's sites must vanish from
		// the fold, not linger from the previous merge.
		{
			evidenceProfile("Cassandra", "WI",
				SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 80, Buckets: []uint64{20, 60}}),
		},
	}
	for i, inputs := range rounds {
		acc.Reset()
		for _, p := range inputs {
			if err := acc.Add(p); err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
		}
		got, err := acc.Merge()
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		want := mustMerge(t, opts, inputs...)
		if string(profileJSON(t, got)) != string(profileJSON(t, want)) {
			t.Fatalf("round %d: accumulator merge differs from MergeProfiles", i)
		}
	}
}

// TestAccumulatorErrorAttribution: Add fails on the offending profile
// (label mismatch), Merge fails on an empty fold — the split the plan
// daemon's upload-vs-store error classification rests on.
func TestAccumulatorErrorAttribution(t *testing.T) {
	acc := NewMergeAccumulator(Options{App: "Cassandra", Workload: "WI"})
	if err := acc.Add(evidenceProfile("Lucene", "WI",
		SiteStat{Trace: "Main.run:1", Allocated: 1, Buckets: []uint64{1}})); err == nil {
		t.Fatal("Add of mismatched app did not fail")
	}
	if err := acc.Add(evidenceProfile("Cassandra", "batch",
		SiteStat{Trace: "Main.run:1", Allocated: 1, Buckets: []uint64{1}})); err == nil {
		t.Fatal("Add of mismatched workload did not fail")
	}
	if _, err := acc.Merge(); err == nil {
		t.Fatal("Merge over zero added profiles did not fail")
	}
	// The failures left the accumulator usable.
	if err := acc.Add(evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:1;Db.put:2", Allocated: 10, Buckets: []uint64{4, 6}})); err != nil {
		t.Fatal(err)
	}
	p, err := acc.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 1 || p.Sites[0].Allocated != 10 {
		t.Fatalf("post-error merge = %+v", p.Sites)
	}
}

// TestAccumulatorMergeIsRepeatable: Merge is pure over the fold state —
// calling it twice without an intervening Reset/Add yields identical
// bytes.
func TestAccumulatorMergeIsRepeatable(t *testing.T) {
	acc := NewMergeAccumulator(Options{App: "Cassandra", Workload: "WI"})
	if err := acc.Add(evidenceProfile("Cassandra", "WI",
		SiteStat{Trace: "Main.run:10;Db.put:5", Allocated: 40, Buckets: []uint64{5, 35}},
		SiteStat{Trace: "Main.run:12;Cache.add:7", Allocated: 20, Buckets: []uint64{18, 2}})); err != nil {
		t.Fatal(err)
	}
	first, err := acc.Merge()
	if err != nil {
		t.Fatal(err)
	}
	second, err := acc.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if string(profileJSON(t, first)) != string(profileJSON(t, second)) {
		t.Fatal("repeated Merge over the same fold differs")
	}
}
