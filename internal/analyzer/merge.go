package analyzer

import (
	"fmt"
	"sort"

	"polm2/internal/heap"
	"polm2/internal/jvm"
)

// MergeProfiles combines the per-site evidence of several profiles of the
// same (application, workload) into one fleet profile and re-runs the full
// §3.3 synthesis — estimation, clustering, STTree, conflict resolution,
// directive emission — over the merged evidence.
//
// The fold is deterministic and order-independent: per-site allocation
// totals, survival buckets and tainted counts are plain sums, sites are
// keyed and sorted by their stack-trace string before synthesis, and every
// downstream decision is a pure function of the summed values. Merging is
// therefore commutative AND associative — N instances uploading partial
// profiles converge to the same fleet plan whether their evidence arrives
// in one batch or drips in one upload at a time, in any order.
//
// opts.ConfidenceFloor is reapplied post-merge: a site whose merged
// trusted fraction 1 - Tainted/Allocated falls below the floor is degraded
// to the young/dynamic fallback (generation zero), exactly as
// AnalyzeSalvage degrades a damaged stream. Tainted counts themselves stay
// pure sums, so the degrade decision re-derives identically on every
// subsequent merge.
//
// Profiles with empty App/Workload labels adopt the labels of the merge;
// labeled profiles must all agree with each other (and with opts when it
// is labeled).
//
// Callers that merge the same key repeatedly (the plan daemon recomputing
// one fleet plan per evidence batch) should hold a MergeAccumulator and
// reuse it: the accumulator caches parsed stack traces and its fold state
// across merges, cutting the per-merge allocation cost to the synthesis
// pass alone.
func MergeProfiles(opts Options, profiles ...*Profile) (*Profile, error) {
	inputs := make([]*Profile, 0, len(profiles))
	for _, p := range profiles {
		if p != nil {
			inputs = append(inputs, p)
		}
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("analyzer: merging zero profiles")
	}
	app, workload := opts.App, opts.Workload
	for _, p := range inputs {
		if p.App != "" {
			if app == "" {
				app = p.App
			} else if p.App != app {
				return nil, fmt.Errorf("analyzer: merging profiles of different applications %q and %q", app, p.App)
			}
		}
		if p.Workload != "" {
			if workload == "" {
				workload = p.Workload
			} else if p.Workload != workload {
				return nil, fmt.Errorf("analyzer: merging profiles of different workloads %q and %q", workload, p.Workload)
			}
		}
	}
	opts.App, opts.Workload = app, workload

	acc := NewMergeAccumulator(opts)
	for _, p := range inputs {
		if err := acc.Add(p); err != nil {
			return nil, err
		}
	}
	return acc.Merge()
}

// mergeSite is one allocation site's fold state inside a MergeAccumulator.
// The parsed trace is kept across Reset calls (parsing dominates the fold
// cost for a steady fleet whose site set barely moves); the sums are
// re-zeroed lazily via the epoch stamp.
type mergeSite struct {
	epoch uint64
	ev    siteEvidence
}

// MergeAccumulator folds profiles into per-site evidence sums and
// synthesizes fleet plans from them, reusing its internal state across
// merges. The intended lifecycle per merge is
//
//	acc.Reset()
//	for _, p := range inputs { acc.Add(p) } // error attributable to p
//	plan, err := acc.Merge()                // synthesis over the sums
//
// An Add error is attributable to the profile being added (an unparsable
// site trace, a label mismatch); a Merge error comes from the synthesis
// over the combined evidence. That split is what lets the plan daemon
// classify a merge failure as client-caused or store-caused without
// re-merging anything.
//
// The accumulator is NOT safe for concurrent use; the daemon drives one
// per (app, workload) key from that key's single merge worker.
type MergeAccumulator struct {
	opts  Options
	epoch uint64
	added int
	sites map[string]*mergeSite

	// Per-merge scratch, reused to keep steady-state merges allocation-
	// light: key list for deterministic id assignment, evidence and
	// degraded maps handed to synthesize.
	keys     []string
	evidence map[heap.SiteID]*siteEvidence
	degraded map[heap.SiteID]bool
}

// NewMergeAccumulator builds an accumulator. opts carries the analyzer
// tuning and the labels of the merged profile; profiles added later must
// carry matching (or empty) labels when opts is labeled.
func NewMergeAccumulator(opts Options) *MergeAccumulator {
	return &MergeAccumulator{
		opts:     opts.withDefaults(),
		epoch:    1,
		sites:    make(map[string]*mergeSite),
		evidence: make(map[heap.SiteID]*siteEvidence),
		degraded: make(map[heap.SiteID]bool),
	}
}

// Reset clears the fold for a new merge. Parsed traces are retained: a
// site contributes to the next merge only if a profile added after the
// Reset carries it again, but its trace needs no re-parse.
func (m *MergeAccumulator) Reset() {
	m.epoch++
	m.added = 0
}

// Add folds one profile's site evidence into the accumulator. A non-nil
// error means this profile cannot participate in any merge — its labels
// disagree with the accumulator's, or a site trace does not parse — and
// leaves previously added profiles' sums intact except for the sites this
// profile already touched.
func (m *MergeAccumulator) Add(p *Profile) error {
	if p == nil {
		return nil
	}
	if p.App != "" && m.opts.App != "" && p.App != m.opts.App {
		return fmt.Errorf("analyzer: merging profiles of different applications %q and %q", m.opts.App, p.App)
	}
	if p.Workload != "" && m.opts.Workload != "" && p.Workload != m.opts.Workload {
		return fmt.Errorf("analyzer: merging profiles of different workloads %q and %q", m.opts.Workload, p.Workload)
	}
	for i := range p.Sites {
		s := &p.Sites[i]
		ms := m.sites[s.Trace]
		if ms == nil {
			trace, err := jvm.ParseStackTrace(s.Trace)
			if err != nil {
				return fmt.Errorf("analyzer: merging site evidence: %w", err)
			}
			ms = &mergeSite{ev: siteEvidence{trace: trace}}
			m.sites[s.Trace] = ms
		}
		if ms.epoch != m.epoch {
			ms.epoch = m.epoch
			ms.ev.total, ms.ev.tainted = 0, 0
			ms.ev.survived = ms.ev.survived[:0]
		}
		ms.ev.total += s.Allocated
		ms.ev.tainted += s.Tainted
		for len(ms.ev.survived) < len(s.Buckets) {
			ms.ev.survived = append(ms.ev.survived, 0)
		}
		for k, n := range s.Buckets {
			ms.ev.survived[k] += n
		}
	}
	m.added++
	return nil
}

// Merge synthesizes the fleet profile from everything added since the
// last Reset. The sums are left intact, so Merge can be called again (it
// is pure over the fold state).
func (m *MergeAccumulator) Merge() (*Profile, error) {
	if m.added == 0 {
		return nil, fmt.Errorf("analyzer: merging zero profiles")
	}
	// Synthetic site ids are assigned in sorted-trace order, so the
	// evidence map handed to synthesize is identical for every
	// permutation of the inputs.
	m.keys = m.keys[:0]
	for k, ms := range m.sites {
		if ms.epoch == m.epoch {
			m.keys = append(m.keys, k)
		}
	}
	sort.Strings(m.keys)
	clear(m.evidence)
	clear(m.degraded)
	for i, k := range m.keys {
		ms := m.sites[k]
		id := heap.SiteID(i + 1)
		ms.ev.id = id
		m.evidence[id] = &ms.ev
		if m.opts.ConfidenceFloor >= 0 && ms.ev.total > 0 {
			if 1-float64(ms.ev.tainted)/float64(ms.ev.total) < m.opts.ConfidenceFloor {
				m.degraded[id] = true
			}
		}
	}
	return synthesize(m.evidence, m.opts, m.degraded)
}
