package analyzer

import (
	"fmt"
	"sort"

	"polm2/internal/heap"
	"polm2/internal/jvm"
)

// MergeProfiles combines the per-site evidence of several profiles of the
// same (application, workload) into one fleet profile and re-runs the full
// §3.3 synthesis — estimation, clustering, STTree, conflict resolution,
// directive emission — over the merged evidence.
//
// The fold is deterministic and order-independent: per-site allocation
// totals, survival buckets and tainted counts are plain sums, sites are
// keyed and sorted by their stack-trace string before synthesis, and every
// downstream decision is a pure function of the summed values. Merging is
// therefore commutative AND associative — N instances uploading partial
// profiles converge to the same fleet plan whether their evidence arrives
// in one batch or drips in one upload at a time, in any order.
//
// opts.ConfidenceFloor is reapplied post-merge: a site whose merged
// trusted fraction 1 - Tainted/Allocated falls below the floor is degraded
// to the young/dynamic fallback (generation zero), exactly as
// AnalyzeSalvage degrades a damaged stream. Tainted counts themselves stay
// pure sums, so the degrade decision re-derives identically on every
// subsequent merge.
//
// Profiles with empty App/Workload labels adopt the labels of the merge;
// labeled profiles must all agree with each other (and with opts when it
// is labeled).
func MergeProfiles(opts Options, profiles ...*Profile) (*Profile, error) {
	opts = opts.withDefaults()
	inputs := make([]*Profile, 0, len(profiles))
	for _, p := range profiles {
		if p != nil {
			inputs = append(inputs, p)
		}
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("analyzer: merging zero profiles")
	}
	app, workload := opts.App, opts.Workload
	for _, p := range inputs {
		if p.App != "" {
			if app == "" {
				app = p.App
			} else if p.App != app {
				return nil, fmt.Errorf("analyzer: merging profiles of different applications %q and %q", app, p.App)
			}
		}
		if p.Workload != "" {
			if workload == "" {
				workload = p.Workload
			} else if p.Workload != workload {
				return nil, fmt.Errorf("analyzer: merging profiles of different workloads %q and %q", workload, p.Workload)
			}
		}
	}
	opts.App, opts.Workload = app, workload

	type acc struct {
		trace    jvm.StackTrace
		total    uint64
		tainted  uint64
		survived []uint64
	}
	merged := make(map[string]*acc)
	for _, p := range inputs {
		for _, s := range p.Sites {
			a := merged[s.Trace]
			if a == nil {
				trace, err := jvm.ParseStackTrace(s.Trace)
				if err != nil {
					return nil, fmt.Errorf("analyzer: merging site evidence: %w", err)
				}
				a = &acc{trace: trace}
				merged[s.Trace] = a
			}
			a.total += s.Allocated
			a.tainted += s.Tainted
			for len(a.survived) < len(s.Buckets) {
				a.survived = append(a.survived, 0)
			}
			for k, n := range s.Buckets {
				a.survived[k] += n
			}
		}
	}

	// Synthetic site ids are assigned in sorted-trace order, so the
	// evidence map handed to synthesize is identical for every
	// permutation of the inputs.
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	evidence := make(map[heap.SiteID]*siteEvidence, len(keys))
	degraded := make(map[heap.SiteID]bool)
	for i, k := range keys {
		a := merged[k]
		id := heap.SiteID(i + 1)
		evidence[id] = &siteEvidence{
			id:       id,
			trace:    a.trace,
			survived: a.survived,
			total:    a.total,
			tainted:  a.tainted,
		}
		if opts.ConfidenceFloor >= 0 && a.total > 0 {
			if 1-float64(a.tainted)/float64(a.total) < opts.ConfidenceFloor {
				degraded[id] = true
			}
		}
	}
	return synthesize(evidence, opts, degraded)
}
