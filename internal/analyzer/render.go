package analyzer

import (
	"fmt"
	"io"
	"strings"

	"polm2/internal/heap"
	"polm2/internal/jvm"
)

// RenderSTTree rebuilds the stack-trace tree from a profile's site evidence
// and renders it as text — the paper's Figure 2, with each node's code
// location, each leaf's estimated target generation, and the installed
// directives marked:
//
//	Main.run:1
//	├─ Class1.methodB:21  [setGen -> 2]
//	│  └─ Class1.methodC:8
//	│     └─ Class1.methodD:4  gen=2 @Gen (conflict)
//	└─ Class1.methodB:26
//	   └─ ...
func RenderSTTree(p *Profile, w io.Writer) error {
	tree, conflicted, err := rebuildTree(p)
	if err != nil {
		return err
	}
	callGens := make(map[string]int, len(p.Calls))
	for _, c := range p.Calls {
		callGens[c.Loc] = c.Gen
	}
	directs := make(map[string]AllocDirective, len(p.Allocs))
	for _, a := range p.Allocs {
		directs[a.Loc] = a
	}

	var render func(n *Node, prefix string, last bool) error
	render = func(n *Node, prefix string, last bool) error {
		connector, childPrefix := "├─ ", prefix+"│  "
		if last {
			connector, childPrefix = "└─ ", prefix+"   "
		}
		line := prefix + connector + n.Loc.String()
		if gen, ok := callGens[n.Loc.String()]; ok && !n.IsLeaf {
			line += fmt.Sprintf("  [setGen -> %d]", gen)
		}
		if n.IsLeaf {
			line += fmt.Sprintf("  gen=%d", n.Gen)
			if d, ok := directs[n.Loc.String()]; ok {
				if d.Direct {
					line += fmt.Sprintf(" @Gen(direct -> %d)", d.Gen)
				} else {
					line += " @Gen"
				}
			}
			if conflicted[n] {
				line += " (conflict)"
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		children := n.Children()
		for i, c := range children {
			if err := render(c, childPrefix, i == len(children)-1); err != nil {
				return err
			}
		}
		return nil
	}

	roots := tree.Roots()
	for i, root := range roots {
		if err := render(root, "", i == len(roots)-1); err != nil {
			return err
		}
	}
	return nil
}

// RenderDOT renders the same tree in Graphviz DOT form, coloring subtrees
// by target generation the way the paper's Figure 2 does.
func RenderDOT(p *Profile, w io.Writer) error {
	tree, conflicted, err := rebuildTree(p)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "digraph sttree {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  node [shape=box, fontname="monospace"];`) //nolint:errcheck // single writer, checked at end

	palette := []string{"white", "lightblue", "lightyellow", "salmon", "palegreen", "plum", "khaki", "lightgray"}
	id := 0
	var emit func(n *Node) (string, error)
	emit = func(n *Node) (string, error) {
		name := fmt.Sprintf("n%d", id)
		id++
		label := n.Loc.String()
		color := "white"
		if n.IsLeaf {
			label += fmt.Sprintf("\\ngen=%d", n.Gen)
			color = palette[n.Gen%len(palette)]
			if conflicted[n] {
				label += " (conflict)"
			}
		}
		if _, err := fmt.Fprintf(w, "  %s [label=\"%s\", style=filled, fillcolor=%s];\n", name, label, color); err != nil {
			return "", err
		}
		for _, c := range n.Children() {
			childName, err := emit(c)
			if err != nil {
				return "", err
			}
			if _, err := fmt.Fprintf(w, "  %s -> %s;\n", name, childName); err != nil {
				return "", err
			}
		}
		return name, nil
	}
	for _, root := range tree.Roots() {
		if _, err := emit(root); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "}"); err != nil {
		return err
	}
	return nil
}

// rebuildTree reconstructs the STTree from a profile's per-site evidence.
func rebuildTree(p *Profile) (*Tree, map[*Node]bool, error) {
	if len(p.Sites) == 0 {
		return nil, nil, fmt.Errorf("analyzer: profile carries no site evidence to render")
	}
	traces := make(map[heap.SiteID]jvm.StackTrace, len(p.Sites))
	gens := make(map[heap.SiteID]int, len(p.Sites))
	for i, site := range p.Sites {
		var trace jvm.StackTrace
		for _, frameStr := range strings.Split(site.Trace, ";") {
			loc, err := jvm.ParseCodeLoc(frameStr)
			if err != nil {
				return nil, nil, fmt.Errorf("analyzer: site %d: %w", i, err)
			}
			trace = append(trace, loc)
		}
		id := heap.SiteID(i + 1)
		traces[id] = trace
		gens[id] = site.Gen
	}
	tree := BuildTree(traces, gens)
	conflicted := make(map[*Node]bool)
	for _, g := range tree.DetectConflicts() {
		for _, leaf := range g.Leaves {
			conflicted[leaf] = true
		}
	}
	return tree, conflicted, nil
}
