package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polm2/internal/faultio"
)

// v1Dir points at the checked-in pre-PR artifact directory: images written
// by the version-1 codec before CRC framing existed.
const v1Dir = "../../testdata/artifacts/v1/snaps"

func TestReadV1Artifacts(t *testing.T) {
	snaps, err := ReadDir(v1Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no v1 images decoded")
	}
	for i, s := range snaps {
		if s.Seq != i+1 {
			t.Fatalf("image %d has seq %d", i, s.Seq)
		}
		if !s.Incremental || len(s.Regions) == 0 {
			t.Fatalf("image %d implausible: %+v", i, s)
		}
	}
	// The replayed store view must be non-empty: the images carry data.
	store := NewStore()
	for _, s := range snaps {
		if err := store.Apply(s); err != nil {
			t.Fatal(err)
		}
	}
	if len(store.LiveIDs()) == 0 {
		t.Fatal("v1 replay reconstructed an empty heap")
	}
}

func TestV1RoundTripsThroughV2(t *testing.T) {
	snaps, err := ReadDir(v1Dir)
	if err != nil {
		t.Fatal(err)
	}
	src := snaps[len(snaps)-1]
	var buf bytes.Buffer
	if err := src.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewStore(), NewStore()
	if err := a.Apply(src); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(got); err != nil {
		t.Fatal(err)
	}
	av, bv := a.LiveIDs(), b.LiveIDs()
	if len(av) == 0 || len(av) != len(bv) {
		t.Fatalf("views differ: %d vs %d ids", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("id %d differs", i)
		}
	}
}

func TestReadTypedErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSnapshot().Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncation anywhere before the trailer reports ErrTruncated.
	for _, cut := range []int{5, 7, len(full) / 2, len(full) - 2} {
		_, err := Read(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	// A bit flip in a section payload reports ErrCorrupt.
	for _, off := range []int{6, 12, len(full) / 2, len(full) - 3} {
		mangled := append([]byte(nil), full...)
		mangled[off] ^= 0x10
		_, err := Read(bytes.NewReader(mangled))
		if err == nil {
			t.Errorf("flip at %d: accepted", off)
			continue
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Errorf("flip at %d: untyped error %v", off, err)
		}
	}
	// An absurd section length is corrupt, not an allocation attempt.
	huge := append([]byte(nil), full[:5]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := Read(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("huge section err = %v", err)
	}
}

func TestWriteDirAtomicNoTemporaries(t *testing.T) {
	dir := t.TempDir()
	a := sampleSnapshot()
	a.Incremental = false // chain base: ReadDir refuses a rootless chain
	b := sampleSnapshot()
	b.Seq = 4
	if err := WriteDir(dir, []*Snapshot{a, b}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temporary %s left behind", e.Name())
		}
	}
	if _, err := ReadDir(dir); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDirCrashLeavesNoAmbiguousImage(t *testing.T) {
	dir := t.TempDir()
	var snaps []*Snapshot
	for i := 1; i <= 6; i++ {
		s := sampleSnapshot()
		s.Seq = i
		snaps = append(snaps, s)
	}
	plan, err := faultio.ParseSpec("crash#3")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDirFaulty(dir, snaps, faultio.New(plan)); err != nil {
		t.Fatal(err)
	}
	// Every published image decodes; the crash lost a suffix, never a
	// half-written file.
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("published images must be whole: %v", err)
	}
	if len(got) == 0 || len(got) >= 6 {
		t.Fatalf("crash published %d of 6 images", len(got))
	}
	for i, s := range got {
		if s.Seq != i+1 {
			t.Fatalf("published images are not a prefix: %+v", got)
		}
	}
}

func TestReadDirSalvagePrefixAndGap(t *testing.T) {
	dir := t.TempDir()
	var snaps []*Snapshot
	for i := 1; i <= 5; i++ {
		s := sampleSnapshot()
		s.Seq = i
		snaps = append(snaps, s)
	}
	if err := WriteDir(dir, snaps); err != nil {
		t.Fatal(err)
	}

	// Clean directory: everything usable.
	got, sal, err := ReadDirSalvage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sal.Clean() || len(got) != 5 {
		t.Fatalf("clean dir salvage = %+v", sal)
	}

	// Truncate image 3: images 1-2 remain usable, 3-5 drop.
	if err := os.Truncate(filepath.Join(dir, FileName(3)), 9); err != nil {
		t.Fatal(err)
	}
	got, sal, err = ReadDirSalvage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || sal.Usable != 2 || sal.Total != 5 || len(sal.Dropped) != 3 {
		t.Fatalf("truncated salvage: %d snaps, %+v", len(got), sal)
	}

	// A missing image severs the chain the same way.
	if err := WriteDir(dir, snaps); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, FileName(2))); err != nil {
		t.Fatal(err)
	}
	got, sal, err = ReadDirSalvage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || sal.Usable != 1 {
		t.Fatalf("gap salvage: %d snaps, %+v", len(got), sal)
	}
}

func TestReadDirSalvageFullSnapshotRestartsChain(t *testing.T) {
	dir := t.TempDir()
	var snaps []*Snapshot
	for i := 1; i <= 5; i++ {
		s := sampleSnapshot()
		s.Seq = i
		snaps = append(snaps, s)
	}
	snaps[3].Incremental = false // image 4 is a full dump
	if err := WriteDir(dir, snaps); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, FileName(2)), 9); err != nil {
		t.Fatal(err)
	}
	got, sal, err := ReadDirSalvage(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 1 usable, 2 damaged, 3 dropped (incremental after break), 4 full
	// restarts the chain, 5 chains onto it.
	if len(got) != 3 || got[0].Seq != 1 || got[1].Seq != 4 || got[2].Seq != 5 {
		t.Fatalf("salvage = %+v (%+v)", got, sal)
	}
	// The salvaged sequence replays through the store without error.
	store := NewStore()
	for _, s := range got {
		if err := store.Apply(s); err != nil {
			t.Fatal(err)
		}
	}
}
