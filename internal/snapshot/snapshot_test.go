package snapshot

import (
	"testing"

	"polm2/internal/heap"
)

func pk(region, index uint32) heap.PageKey {
	return heap.PageKey{Region: heap.RegionID(region), Index: index}
}

func TestStoreAppliesFullSnapshot(t *testing.T) {
	s := NewStore()
	err := s.Apply(&Snapshot{
		Seq:   1,
		Pages: []PageRecord{{Key: pk(1, 0), HeaderIDs: []heap.ObjectID{10, 11}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := s.LiveIDs()
	if len(ids) != 2 || ids[0] != 10 || ids[1] != 11 {
		t.Fatalf("LiveIDs = %v", ids)
	}
	// Second full snapshot replaces the view entirely.
	err = s.Apply(&Snapshot{
		Seq:   2,
		Pages: []PageRecord{{Key: pk(2, 0), HeaderIDs: []heap.ObjectID{20}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(10) || !s.Contains(20) {
		t.Fatalf("full snapshot did not replace view: %v", s.LiveIDs())
	}
}

func TestStoreIncrementalCarriesCleanPages(t *testing.T) {
	s := NewStore()
	must(t, s.Apply(&Snapshot{
		Seq:         1,
		Incremental: true,
		Regions:     []heap.RegionID{1, 2},
		Pages: []PageRecord{
			{Key: pk(1, 0), HeaderIDs: []heap.ObjectID{10}},
			{Key: pk(2, 0), HeaderIDs: []heap.ObjectID{20}},
		},
	}))
	// Snapshot 2 only includes a dirtied page of region 2; region 1's
	// page was clean and must be carried forward.
	must(t, s.Apply(&Snapshot{
		Seq:         2,
		Incremental: true,
		Regions:     []heap.RegionID{1, 2},
		Pages: []PageRecord{
			{Key: pk(2, 0), HeaderIDs: []heap.ObjectID{21}},
		},
	}))
	if !s.Contains(10) {
		t.Fatal("clean page content lost")
	}
	if s.Contains(20) || !s.Contains(21) {
		t.Fatal("dirty page content not replaced")
	}
}

func TestStoreDropsUnmappedRegions(t *testing.T) {
	s := NewStore()
	must(t, s.Apply(&Snapshot{
		Seq:         1,
		Incremental: true,
		Regions:     []heap.RegionID{1, 2},
		Pages: []PageRecord{
			{Key: pk(1, 0), HeaderIDs: []heap.ObjectID{10}},
			{Key: pk(2, 0), HeaderIDs: []heap.ObjectID{20}},
		},
	}))
	// Region 1 was freed (young collection): gone from the mapping.
	must(t, s.Apply(&Snapshot{
		Seq:         2,
		Incremental: true,
		Regions:     []heap.RegionID{2},
	}))
	if s.Contains(10) {
		t.Fatal("page of unmapped region survived")
	}
	if !s.Contains(20) {
		t.Fatal("mapped clean page lost")
	}
}

func TestStoreDropsNoNeedPages(t *testing.T) {
	s := NewStore()
	must(t, s.Apply(&Snapshot{
		Seq:         1,
		Incremental: true,
		Regions:     []heap.RegionID{1},
		Pages: []PageRecord{
			{Key: pk(1, 0), HeaderIDs: []heap.ObjectID{10}},
			{Key: pk(1, 1), HeaderIDs: []heap.ObjectID{11}},
		},
	}))
	must(t, s.Apply(&Snapshot{
		Seq:         2,
		Incremental: true,
		Regions:     []heap.RegionID{1},
		NoNeed:      []heap.PageKey{pk(1, 1)},
	}))
	if !s.Contains(10) || s.Contains(11) {
		t.Fatalf("no-need handling wrong: %v", s.LiveIDs())
	}
}

func TestStoreRejectsOutOfOrder(t *testing.T) {
	s := NewStore()
	must(t, s.Apply(&Snapshot{Seq: 2, Incremental: true}))
	if err := s.Apply(&Snapshot{Seq: 1, Incremental: true}); err == nil {
		t.Fatal("out-of-order apply should fail")
	}
	if err := s.Apply(&Snapshot{Seq: 2, Incremental: true}); err == nil {
		t.Fatal("duplicate seq should fail")
	}
	if s.Applied() != 1 {
		t.Fatalf("Applied = %d, want 1", s.Applied())
	}
}

func TestLiveSetMatchesLiveIDs(t *testing.T) {
	s := NewStore()
	must(t, s.Apply(&Snapshot{
		Seq:         1,
		Incremental: true,
		Regions:     []heap.RegionID{1},
		Pages: []PageRecord{
			{Key: pk(1, 0), HeaderIDs: []heap.ObjectID{3, 1, 2}},
		},
	}))
	set := s.LiveSet()
	ids := s.LiveIDs()
	if len(set) != len(ids) {
		t.Fatalf("LiveSet size %d != LiveIDs size %d", len(set), len(ids))
	}
	for _, id := range ids {
		if _, ok := set[id]; !ok {
			t.Fatalf("id %d missing from LiveSet", id)
		}
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("LiveIDs not sorted")
		}
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
