package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"polm2/internal/faultio"
	"polm2/internal/heap"
)

// Binary snapshot image format, analogous to a CRIU image directory: the
// profiling phase can persist its snapshot sequence and the Analyzer can be
// run later, or on another machine, from the images alone (the paper's
// off-line analysis workflow).
//
// Version 2 (current) is built for crash tolerance (DESIGN.md §9): after
// the magic and version byte the body is a sequence of CRC32C-framed
// sections, closed by a commit trailer, so a half-written or bit-flipped
// image is always detected instead of decoded into garbage:
//
//	magic "PSNP" | version byte (2)
//	section 1 (header):  uvarint len | payload | crc32c(payload) LE
//	section 2 (regions): uvarint len | payload | crc32c(payload) LE
//	section 3 (no-need): uvarint len | payload | crc32c(payload) LE
//	section 4 (pages):   uvarint len | payload | crc32c(payload) LE
//	trailer: uvarint 0 | crc32c(all section payloads, in order) LE
//
// Section payloads use the same varint encoding version 1 used for the
// whole body (all integers varint, ids and keys delta-encoded):
//
//	header:  seq | cycle | takenAtNs | incremental byte | durationNs | sizeBytes
//	regions: nRegions | region ids (delta-encoded)
//	no-need: nNoNeed | page keys (region delta + index)
//	pages:   nPages | per page: region delta + index + nIDs + ids (delta)
//
// Version 1 images (the same fields, unframed, no checksums) still decode.
const (
	imageMagic     = "PSNP"
	imageVersion   = 2
	imageVersionV1 = 1
	// maxSection caps a v2 section payload so a corrupted length field
	// cannot make the decoder allocate unbounded memory.
	maxSection = 64 << 20
)

// Typed decode failures. Every decode error wraps exactly one of these, so
// callers can distinguish damage (salvageable) from programmer error.
var (
	// ErrCorrupt reports structural damage: bad magic, CRC mismatch,
	// malformed varints, impossible counts.
	ErrCorrupt = errors.New("snapshot: image corrupt")
	// ErrTruncated reports an image that ends before its commit trailer —
	// the signature of a crash mid-write.
	ErrTruncated = errors.New("snapshot: image truncated")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FileName returns the canonical image file name for a snapshot sequence
// number, e.g. "snap-000042.img".
func FileName(seq int) string {
	return fmt.Sprintf("snap-%06d.img", seq)
}

// Write encodes the snapshot to w in the current (v2) format.
func (s *Snapshot) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(imageMagic); err != nil {
		return fmt.Errorf("snapshot: writing magic: %w", err)
	}
	if err := bw.WriteByte(imageVersion); err != nil {
		return fmt.Errorf("snapshot: writing version: %w", err)
	}

	stream := crc32.New(castagnoli)
	writeSection := func(name string, payload []byte) error {
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return fmt.Errorf("snapshot: writing %s section: %w", name, err)
		}
		if _, err := bw.Write(payload); err != nil {
			return fmt.Errorf("snapshot: writing %s section: %w", name, err)
		}
		var crcBuf [4]byte
		binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload, castagnoli))
		if _, err := bw.Write(crcBuf[:]); err != nil {
			return fmt.Errorf("snapshot: writing %s crc: %w", name, err)
		}
		stream.Write(payload)
		return nil
	}

	if err := writeSection("header", s.encodeHeader()); err != nil {
		return err
	}
	if err := writeSection("regions", s.encodeRegions()); err != nil {
		return err
	}
	if err := writeSection("no-need", s.encodeNoNeed()); err != nil {
		return err
	}
	if err := writeSection("pages", s.encodePages()); err != nil {
		return err
	}

	// Commit trailer: zero length + whole-stream CRC. Its presence is the
	// durable "this image is complete" marker.
	if err := bw.WriteByte(0); err != nil {
		return fmt.Errorf("snapshot: writing trailer: %w", err)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], stream.Sum32())
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("snapshot: writing trailer crc: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("snapshot: flushing image: %w", err)
	}
	return nil
}

func (s *Snapshot) encodeHeader() []byte {
	var b bytes.Buffer
	putUvarint(&b, uint64(s.Seq))
	putUvarint(&b, s.Cycle)
	putUvarint(&b, uint64(s.TakenAt))
	inc := byte(0)
	if s.Incremental {
		inc = 1
	}
	b.WriteByte(inc)
	putUvarint(&b, uint64(s.Duration))
	putUvarint(&b, s.SizeBytes)
	return b.Bytes()
}

func (s *Snapshot) encodeRegions() []byte {
	var b bytes.Buffer
	regions := make([]heap.RegionID, len(s.Regions))
	copy(regions, s.Regions)
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	putUvarint(&b, uint64(len(regions)))
	prev := uint64(0)
	for _, r := range regions {
		putUvarint(&b, uint64(r)-prev)
		prev = uint64(r)
	}
	return b.Bytes()
}

func (s *Snapshot) encodeNoNeed() []byte {
	var b bytes.Buffer
	noNeed := make([]heap.PageKey, len(s.NoNeed))
	copy(noNeed, s.NoNeed)
	sort.Slice(noNeed, func(i, j int) bool { return pageKeyLess(noNeed[i], noNeed[j]) })
	putUvarint(&b, uint64(len(noNeed)))
	prev := uint64(0)
	for _, key := range noNeed {
		putUvarint(&b, uint64(key.Region)-prev)
		prev = uint64(key.Region)
		putUvarint(&b, uint64(key.Index))
	}
	return b.Bytes()
}

func (s *Snapshot) encodePages() []byte {
	var b bytes.Buffer
	pages := make([]PageRecord, len(s.Pages))
	copy(pages, s.Pages)
	sort.Slice(pages, func(i, j int) bool { return pageKeyLess(pages[i].Key, pages[j].Key) })
	putUvarint(&b, uint64(len(pages)))
	prev := uint64(0)
	for _, pr := range pages {
		putUvarint(&b, uint64(pr.Key.Region)-prev)
		prev = uint64(pr.Key.Region)
		putUvarint(&b, uint64(pr.Key.Index))
		ids := make([]heap.ObjectID, len(pr.HeaderIDs))
		copy(ids, pr.HeaderIDs)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		putUvarint(&b, uint64(len(ids)))
		prevID := uint64(0)
		for _, id := range ids {
			putUvarint(&b, uint64(id)-prevID)
			prevID = uint64(id)
		}
	}
	return b.Bytes()
}

func pageKeyLess(a, b heap.PageKey) bool {
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	return a.Index < b.Index
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	b.Write(buf[:n])
}

// Read decodes a snapshot written by Write — either format version. Damage
// is reported as an error wrapping ErrCorrupt or ErrTruncated.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrTruncated, err)
	}
	switch version {
	case imageVersionV1:
		return readV1(br)
	case imageVersion:
		return readV2(br)
	default:
		return nil, fmt.Errorf("%w: unsupported image version %d", ErrCorrupt, version)
	}
}

// readV2 decodes the framed sections and verifies every CRC plus the
// commit trailer.
func readV2(br *bufio.Reader) (*Snapshot, error) {
	stream := crc32.New(castagnoli)
	readSection := func(name string) ([]byte, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s section length: %v", ErrTruncated, name, err)
		}
		if n == 0 {
			return nil, fmt.Errorf("%w: premature trailer before %s section", ErrCorrupt, name)
		}
		if n > maxSection {
			return nil, fmt.Errorf("%w: %s section claims %d bytes", ErrCorrupt, name, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("%w: %s section body: %v", ErrTruncated, name, err)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: %s section crc: %v", ErrTruncated, name, err)
		}
		if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
			return nil, fmt.Errorf("%w: %s section crc mismatch (%08x != %08x)", ErrCorrupt, name, got, want)
		}
		stream.Write(payload)
		return payload, nil
	}

	var s Snapshot
	header, err := readSection("header")
	if err != nil {
		return nil, err
	}
	if err := s.decodeHeader(header); err != nil {
		return nil, err
	}
	regions, err := readSection("regions")
	if err != nil {
		return nil, err
	}
	if err := s.decodeRegions(regions); err != nil {
		return nil, err
	}
	noNeed, err := readSection("no-need")
	if err != nil {
		return nil, err
	}
	if err := s.decodeNoNeed(noNeed); err != nil {
		return nil, err
	}
	pages, err := readSection("pages")
	if err != nil {
		return nil, err
	}
	if err := s.decodePages(pages); err != nil {
		return nil, err
	}

	// Commit trailer.
	zero, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: missing commit trailer: %v", ErrTruncated, err)
	}
	if zero != 0 {
		return nil, fmt.Errorf("%w: trailing data after pages section", ErrCorrupt)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: trailer crc: %v", ErrTruncated, err)
	}
	if got, want := stream.Sum32(), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, fmt.Errorf("%w: trailer crc mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	return &s, nil
}

// byteReaderFrom adapts a payload slice for the varint field decoders.
type payloadReader struct {
	*bytes.Reader
	section string
}

func newPayloadReader(section string, payload []byte) *payloadReader {
	return &payloadReader{Reader: bytes.NewReader(payload), section: section}
}

func (p *payloadReader) uvarint(field string) (uint64, error) {
	v, err := binary.ReadUvarint(p.Reader)
	if err != nil {
		return 0, fmt.Errorf("%w: %s %s: %v", ErrCorrupt, p.section, field, err)
	}
	return v, nil
}

// remaining sanity-checks an element count against the bytes left: every
// encoded element takes at least min bytes, so a count larger than that is
// a lie from a corrupted length field.
func (p *payloadReader) checkCount(field string, n uint64, min int) error {
	if n > uint64(p.Len()/min)+1 {
		return fmt.Errorf("%w: %s claims %d %s in %d bytes", ErrCorrupt, p.section, n, field, p.Len())
	}
	return nil
}

func (s *Snapshot) decodeHeader(payload []byte) error {
	p := newPayloadReader("header", payload)
	seq, err := p.uvarint("seq")
	if err != nil {
		return err
	}
	s.Seq = int(seq)
	if s.Cycle, err = p.uvarint("cycle"); err != nil {
		return err
	}
	takenAt, err := p.uvarint("instant")
	if err != nil {
		return err
	}
	s.TakenAt = time.Duration(takenAt)
	inc, err := p.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: header flags: %v", ErrCorrupt, err)
	}
	s.Incremental = inc == 1
	dur, err := p.uvarint("duration")
	if err != nil {
		return err
	}
	s.Duration = time.Duration(dur)
	if s.SizeBytes, err = p.uvarint("size"); err != nil {
		return err
	}
	return nil
}

func (s *Snapshot) decodeRegions(payload []byte) error {
	p := newPayloadReader("regions", payload)
	n, err := p.uvarint("count")
	if err != nil {
		return err
	}
	if err := p.checkCount("regions", n, 1); err != nil {
		return err
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		delta, err := p.uvarint("region")
		if err != nil {
			return err
		}
		prev += delta
		s.Regions = append(s.Regions, heap.RegionID(prev))
	}
	return nil
}

func (s *Snapshot) decodeNoNeed(payload []byte) error {
	p := newPayloadReader("no-need", payload)
	n, err := p.uvarint("count")
	if err != nil {
		return err
	}
	if err := p.checkCount("pages", n, 2); err != nil {
		return err
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		delta, err := p.uvarint("region")
		if err != nil {
			return err
		}
		prev += delta
		idx, err := p.uvarint("index")
		if err != nil {
			return err
		}
		s.NoNeed = append(s.NoNeed, heap.PageKey{Region: heap.RegionID(prev), Index: uint32(idx)})
	}
	return nil
}

func (s *Snapshot) decodePages(payload []byte) error {
	p := newPayloadReader("pages", payload)
	n, err := p.uvarint("count")
	if err != nil {
		return err
	}
	if err := p.checkCount("pages", n, 3); err != nil {
		return err
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		delta, err := p.uvarint("region")
		if err != nil {
			return err
		}
		prev += delta
		idx, err := p.uvarint("index")
		if err != nil {
			return err
		}
		pr := PageRecord{Key: heap.PageKey{Region: heap.RegionID(prev), Index: uint32(idx)}}
		nIDs, err := p.uvarint("id count")
		if err != nil {
			return err
		}
		if err := p.checkCount("ids", nIDs, 1); err != nil {
			return err
		}
		prevID := uint64(0)
		for j := uint64(0); j < nIDs; j++ {
			d, err := p.uvarint("id")
			if err != nil {
				return err
			}
			prevID += d
			pr.HeaderIDs = append(pr.HeaderIDs, heap.ObjectID(prevID))
		}
		s.Pages = append(s.Pages, pr)
	}
	return nil
}

// readV1 decodes the legacy unframed format. Any decode failure is
// truncation as far as v1 can tell — it carries no checksums.
func readV1(br *bufio.Reader) (*Snapshot, error) {
	var s Snapshot
	read := func(field string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: v1 %s: %v", ErrTruncated, field, err)
		}
		return v, nil
	}

	seq, err := read("seq")
	if err != nil {
		return nil, err
	}
	s.Seq = int(seq)
	if s.Cycle, err = read("cycle"); err != nil {
		return nil, err
	}
	takenAt, err := read("instant")
	if err != nil {
		return nil, err
	}
	s.TakenAt = time.Duration(takenAt)
	inc, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: v1 flags: %v", ErrTruncated, err)
	}
	s.Incremental = inc == 1
	dur, err := read("duration")
	if err != nil {
		return nil, err
	}
	s.Duration = time.Duration(dur)
	if s.SizeBytes, err = read("size"); err != nil {
		return nil, err
	}

	nRegions, err := read("region count")
	if err != nil {
		return nil, err
	}
	prev := uint64(0)
	for i := uint64(0); i < nRegions; i++ {
		delta, err := read("region")
		if err != nil {
			return nil, err
		}
		prev += delta
		s.Regions = append(s.Regions, heap.RegionID(prev))
	}

	nNoNeed, err := read("no-need count")
	if err != nil {
		return nil, err
	}
	prev = 0
	for i := uint64(0); i < nNoNeed; i++ {
		delta, err := read("no-need region")
		if err != nil {
			return nil, err
		}
		prev += delta
		idx, err := read("no-need index")
		if err != nil {
			return nil, err
		}
		s.NoNeed = append(s.NoNeed, heap.PageKey{Region: heap.RegionID(prev), Index: uint32(idx)})
	}

	nPages, err := read("page count")
	if err != nil {
		return nil, err
	}
	prev = 0
	for i := uint64(0); i < nPages; i++ {
		delta, err := read("page region")
		if err != nil {
			return nil, err
		}
		prev += delta
		idx, err := read("page index")
		if err != nil {
			return nil, err
		}
		pr := PageRecord{Key: heap.PageKey{Region: heap.RegionID(prev), Index: uint32(idx)}}
		nIDs, err := read("id count")
		if err != nil {
			return nil, err
		}
		prevID := uint64(0)
		for j := uint64(0); j < nIDs; j++ {
			d, err := read("id")
			if err != nil {
				return nil, err
			}
			prevID += d
			pr.HeaderIDs = append(pr.HeaderIDs, heap.ObjectID(prevID))
		}
		s.Pages = append(s.Pages, pr)
	}
	return &s, nil
}

// WriteDir persists a snapshot sequence as an image directory. Each image
// is written to a temporary file and atomically renamed into place, so a
// crash mid-write never leaves an ambiguous snap-*.img file.
func WriteDir(dir string, snaps []*Snapshot) error {
	return WriteDirFaulty(dir, snaps, nil)
}

// WriteDirFaulty is WriteDir with a fault-injection seam: the injector (may
// be nil) interposes on every image write. If the injector's crash fault
// fires mid-sequence, the remaining images are lost exactly as a killed
// process would lose them: temporaries are abandoned unrenamed.
func WriteDirFaulty(dir string, snaps []*Snapshot, fio *faultio.Injector) error {
	for _, s := range snaps {
		if err := WriteImage(dir, s, fio); err != nil {
			return err
		}
	}
	return nil
}

// WriteImage writes one image via temp-file + atomic rename: either the
// complete image appears under its final name or nothing does. The Dumper
// uses it to persist snapshots as they are taken, so a crash loses a
// suffix of whole images, never a torn one.
func WriteImage(dir string, s *Snapshot, fio *faultio.Injector) error {
	final := filepath.Join(dir, FileName(s.Seq))
	tmp := final + ".tmp"
	f, err := fio.Create(tmp)
	if err != nil {
		return fmt.Errorf("snapshot: creating image: %w", err)
	}
	if err := s.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: closing image: %w", err)
	}
	if fio.Crashed() {
		// The process died before the rename: the image never becomes
		// visible. The abandoned temporary is what a real crash leaves.
		return nil
	}
	if _, err := os.Stat(tmp); err != nil {
		// A missing-file fault swallowed the temporary entirely.
		return nil
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("snapshot: publishing image: %w", err)
	}
	return nil
}

// ReadDir loads every snapshot image in a directory, ordered by sequence
// number. Any damaged image — or a hole in the incremental chain, the
// trace a deleted image leaves — fails the whole read; use ReadDirSalvage
// to recover the usable prefix instead.
func ReadDir(dir string) ([]*Snapshot, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "snap-*.img"))
	if err != nil {
		return nil, fmt.Errorf("snapshot: listing images: %w", err)
	}
	sort.Strings(entries)
	var out []*Snapshot
	for _, path := range entries {
		s, err := readImage(path)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	lastSeq := 0
	for _, s := range out {
		if s.Incremental && s.Seq != lastSeq+1 {
			return nil, fmt.Errorf("%w: incremental snapshot %d without its base (last seen %d)",
				ErrTruncated, s.Seq, lastSeq)
		}
		lastSeq = s.Seq
	}
	return out, nil
}

func readImage(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: opening image: %w", err)
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decoding %s: %w", filepath.Base(path), err)
	}
	return s, nil
}

// DirSalvage reports what ReadDirSalvage recovered from a damaged image
// directory.
type DirSalvage struct {
	// Total is the number of snap-*.img files present.
	Total int
	// Usable is the length of the usable prefix: images that decoded
	// cleanly AND chain without sequence gaps.
	Usable int
	// Dropped explains, per unusable file, why it was dropped, in
	// directory order ("<file>: <reason>").
	Dropped []string
}

// Clean reports whether the directory salvaged without loss.
func (d *DirSalvage) Clean() bool { return d.Total == d.Usable && len(d.Dropped) == 0 }

// ReadDirSalvage loads the usable prefix of a snapshot image directory:
// images decode in sequence order until the first damaged or missing link
// in the incremental chain. A later full (non-incremental) snapshot
// restarts the chain — it replaces the whole store view, so nothing before
// it is needed.
func ReadDirSalvage(dir string) ([]*Snapshot, *DirSalvage, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "snap-*.img"))
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: listing images: %w", err)
	}
	sort.Strings(entries)
	sal := &DirSalvage{Total: len(entries)}
	var out []*Snapshot
	broken := false // the incremental chain is severed
	lastSeq := 0
	for _, path := range entries {
		base := filepath.Base(path)
		s, err := readImage(path)
		if err != nil {
			sal.Dropped = append(sal.Dropped, fmt.Sprintf("%s: %v", base, err))
			broken = true
			continue
		}
		if broken && s.Incremental {
			sal.Dropped = append(sal.Dropped, fmt.Sprintf("%s: incremental after broken chain", base))
			continue
		}
		if !broken && s.Incremental && s.Seq != lastSeq+1 {
			// A sequence gap — including a chain that starts incremental
			// with its base image gone — severs the chain too.
			sal.Dropped = append(sal.Dropped, fmt.Sprintf("%s: sequence gap (%d after %d)", base, s.Seq, lastSeq))
			broken = true
			continue
		}
		broken = false
		lastSeq = s.Seq
		out = append(out, s)
		sal.Usable++
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, sal, nil
}
