package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"polm2/internal/heap"
)

// Binary snapshot image format, analogous to a CRIU image directory: the
// profiling phase can persist its snapshot sequence and the Analyzer can be
// run later, or on another machine, from the images alone (the paper's
// off-line analysis workflow).
//
// Layout (all integers varint-encoded unless noted):
//
//	magic "PSNP" | version byte | seq | cycle | takenAtNs | incremental byte
//	| durationNs | sizeBytes
//	| nRegions | region ids (delta-encoded)
//	| nNoNeed  | page keys (region delta + index)
//	| nPages   | per page: region delta + index + nIDs + ids (delta-encoded)
const (
	imageMagic   = "PSNP"
	imageVersion = 1
)

// FileName returns the canonical image file name for a snapshot sequence
// number, e.g. "snap-000042.img".
func FileName(seq int) string {
	return fmt.Sprintf("snap-%06d.img", seq)
}

// Write encodes the snapshot to w.
func (s *Snapshot) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(imageMagic); err != nil {
		return fmt.Errorf("snapshot: writing magic: %w", err)
	}
	if err := bw.WriteByte(imageVersion); err != nil {
		return fmt.Errorf("snapshot: writing version: %w", err)
	}
	putUvarint(bw, uint64(s.Seq))
	putUvarint(bw, s.Cycle)
	putUvarint(bw, uint64(s.TakenAt))
	inc := byte(0)
	if s.Incremental {
		inc = 1
	}
	if err := bw.WriteByte(inc); err != nil {
		return fmt.Errorf("snapshot: writing flags: %w", err)
	}
	putUvarint(bw, uint64(s.Duration))
	putUvarint(bw, s.SizeBytes)

	regions := make([]heap.RegionID, len(s.Regions))
	copy(regions, s.Regions)
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	putUvarint(bw, uint64(len(regions)))
	prev := uint64(0)
	for _, r := range regions {
		putUvarint(bw, uint64(r)-prev)
		prev = uint64(r)
	}

	noNeed := make([]heap.PageKey, len(s.NoNeed))
	copy(noNeed, s.NoNeed)
	sort.Slice(noNeed, func(i, j int) bool { return pageKeyLess(noNeed[i], noNeed[j]) })
	putUvarint(bw, uint64(len(noNeed)))
	prev = 0
	for _, key := range noNeed {
		putUvarint(bw, uint64(key.Region)-prev)
		prev = uint64(key.Region)
		putUvarint(bw, uint64(key.Index))
	}

	pages := make([]PageRecord, len(s.Pages))
	copy(pages, s.Pages)
	sort.Slice(pages, func(i, j int) bool { return pageKeyLess(pages[i].Key, pages[j].Key) })
	putUvarint(bw, uint64(len(pages)))
	prev = 0
	for _, pr := range pages {
		putUvarint(bw, uint64(pr.Key.Region)-prev)
		prev = uint64(pr.Key.Region)
		putUvarint(bw, uint64(pr.Key.Index))
		ids := make([]heap.ObjectID, len(pr.HeaderIDs))
		copy(ids, pr.HeaderIDs)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		putUvarint(bw, uint64(len(ids)))
		prevID := uint64(0)
		for _, id := range ids {
			putUvarint(bw, uint64(id)-prevID)
			prevID = uint64(id)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("snapshot: flushing image: %w", err)
	}
	return nil
}

func pageKeyLess(a, b heap.PageKey) bool {
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	return a.Index < b.Index
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // surfaced by the final Flush
}

// Read decodes a snapshot written by Write.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("snapshot: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading version: %w", err)
	}
	if version != imageVersion {
		return nil, fmt.Errorf("snapshot: unsupported image version %d", version)
	}

	var s Snapshot
	fields := []*uint64{}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	_ = fields

	seq, err := read()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading seq: %w", err)
	}
	s.Seq = int(seq)
	if s.Cycle, err = read(); err != nil {
		return nil, fmt.Errorf("snapshot: reading cycle: %w", err)
	}
	takenAt, err := read()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading instant: %w", err)
	}
	s.TakenAt = time.Duration(takenAt)
	inc, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading flags: %w", err)
	}
	s.Incremental = inc == 1
	dur, err := read()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading duration: %w", err)
	}
	s.Duration = time.Duration(dur)
	if s.SizeBytes, err = read(); err != nil {
		return nil, fmt.Errorf("snapshot: reading size: %w", err)
	}

	nRegions, err := read()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading region count: %w", err)
	}
	prev := uint64(0)
	for i := uint64(0); i < nRegions; i++ {
		delta, err := read()
		if err != nil {
			return nil, fmt.Errorf("snapshot: reading region %d: %w", i, err)
		}
		prev += delta
		s.Regions = append(s.Regions, heap.RegionID(prev))
	}

	nNoNeed, err := read()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading no-need count: %w", err)
	}
	prev = 0
	for i := uint64(0); i < nNoNeed; i++ {
		delta, err := read()
		if err != nil {
			return nil, fmt.Errorf("snapshot: reading no-need region %d: %w", i, err)
		}
		prev += delta
		idx, err := read()
		if err != nil {
			return nil, fmt.Errorf("snapshot: reading no-need index %d: %w", i, err)
		}
		s.NoNeed = append(s.NoNeed, heap.PageKey{Region: heap.RegionID(prev), Index: uint32(idx)})
	}

	nPages, err := read()
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading page count: %w", err)
	}
	prev = 0
	for i := uint64(0); i < nPages; i++ {
		delta, err := read()
		if err != nil {
			return nil, fmt.Errorf("snapshot: reading page region %d: %w", i, err)
		}
		prev += delta
		idx, err := read()
		if err != nil {
			return nil, fmt.Errorf("snapshot: reading page index %d: %w", i, err)
		}
		pr := PageRecord{Key: heap.PageKey{Region: heap.RegionID(prev), Index: uint32(idx)}}
		nIDs, err := read()
		if err != nil {
			return nil, fmt.Errorf("snapshot: reading id count: %w", err)
		}
		prevID := uint64(0)
		for j := uint64(0); j < nIDs; j++ {
			d, err := read()
			if err != nil {
				return nil, fmt.Errorf("snapshot: reading id %d: %w", j, err)
			}
			prevID += d
			pr.HeaderIDs = append(pr.HeaderIDs, heap.ObjectID(prevID))
		}
		s.Pages = append(s.Pages, pr)
	}
	return &s, nil
}

// WriteDir persists a snapshot sequence as an image directory.
func WriteDir(dir string, snaps []*Snapshot) error {
	for _, s := range snaps {
		f, err := os.Create(filepath.Join(dir, FileName(s.Seq)))
		if err != nil {
			return fmt.Errorf("snapshot: creating image: %w", err)
		}
		if err := s.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("snapshot: closing image: %w", err)
		}
	}
	return nil
}

// ReadDir loads every snapshot image in a directory, ordered by sequence
// number.
func ReadDir(dir string) ([]*Snapshot, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "snap-*.img"))
	if err != nil {
		return nil, fmt.Errorf("snapshot: listing images: %w", err)
	}
	sort.Strings(entries)
	var out []*Snapshot
	for _, path := range entries {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("snapshot: opening image: %w", err)
		}
		s, err := Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("snapshot: decoding %s: %w", filepath.Base(path), err)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}
