// Package snapshot defines heap snapshots and the store that reconstructs a
// full live-heap view from a sequence of incremental snapshots.
//
// A CRIU-style incremental snapshot (§4.2 of the POLM2 paper) contains only
// the pages dirtied since the previous snapshot, omits pages carrying the
// no-need bit, and implicitly drops pages of unmapped (freed) regions. The
// Analyzer therefore cannot look at one snapshot in isolation: the Store
// replays the sequence, carrying clean pages forward and discarding no-need
// and unmapped pages, exactly as CRIU's restore side assembles a process
// image from an incremental dump chain.
package snapshot

import (
	"fmt"
	"sort"
	"time"

	"polm2/internal/heap"
)

// PageRecord is the captured content of one page: the identity hashes of
// the objects whose headers lie on the page. Reading headers out of dumped
// pages is how the paper's Analyzer matches Recorder ids against snapshots
// (§4.3).
type PageRecord struct {
	Key       heap.PageKey
	HeaderIDs []heap.ObjectID
}

// Snapshot is one heap snapshot, full (jmap-style) or incremental
// (CRIU-style).
type Snapshot struct {
	// Seq is the snapshot's position in the dump sequence, starting at 1.
	Seq int
	// Cycle is the GC cycle after which the snapshot was taken.
	Cycle uint64
	// TakenAt is the simulated instant of the dump.
	TakenAt time.Duration
	// Incremental marks CRIU-style snapshots; a full snapshot replaces
	// the entire store view.
	Incremental bool
	// Regions lists the regions mapped at dump time. Pages of any other
	// region are gone.
	Regions []heap.RegionID
	// Pages holds the captured page contents.
	Pages []PageRecord
	// NoNeed lists pages excluded because the collector marked them as
	// holding no reachable data.
	NoNeed []heap.PageKey
	// SizeBytes is the modeled on-disk size of the snapshot.
	SizeBytes uint64
	// Duration is the modeled time the dump took.
	Duration time.Duration
}

// Store reconstructs the live-heap view from a snapshot sequence.
type Store struct {
	pages   map[heap.PageKey][]heap.ObjectID
	applied int
	lastSeq int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{pages: make(map[heap.PageKey][]heap.ObjectID)}
}

// Apply folds one snapshot into the view. Snapshots must be applied in
// sequence order.
func (s *Store) Apply(snap *Snapshot) error {
	if snap.Seq <= s.lastSeq {
		return fmt.Errorf("snapshot: applying snapshot %d after %d", snap.Seq, s.lastSeq)
	}
	s.lastSeq = snap.Seq
	s.applied++

	if !snap.Incremental {
		// A full dump replaces the whole view.
		s.pages = make(map[heap.PageKey][]heap.ObjectID, len(snap.Pages))
	} else {
		// Unmapped regions disappear.
		mapped := make(map[heap.RegionID]struct{}, len(snap.Regions))
		for _, r := range snap.Regions {
			mapped[r] = struct{}{}
		}
		for key := range s.pages {
			if _, ok := mapped[key.Region]; !ok {
				delete(s.pages, key)
			}
		}
		// No-need pages hold no reachable data anymore.
		for _, key := range snap.NoNeed {
			delete(s.pages, key)
		}
	}
	for _, pr := range snap.Pages {
		ids := make([]heap.ObjectID, len(pr.HeaderIDs))
		copy(ids, pr.HeaderIDs)
		s.pages[pr.Key] = ids
	}
	return nil
}

// Applied returns how many snapshots have been folded in.
func (s *Store) Applied() int { return s.applied }

// LiveIDs returns the identity hashes visible in the current view, sorted.
func (s *Store) LiveIDs() []heap.ObjectID {
	var out []heap.ObjectID
	for _, ids := range s.pages {
		out = append(out, ids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether the id is visible in the current view.
// It is O(pages); the Analyzer uses LiveSet for bulk queries instead.
func (s *Store) Contains(id heap.ObjectID) bool {
	for _, ids := range s.pages {
		for _, candidate := range ids {
			if candidate == id {
				return true
			}
		}
	}
	return false
}

// ForEach calls f for every identity hash visible in the current view, in
// unspecified order. It avoids the allocation and sorting of LiveIDs on the
// Analyzer's hot replay path.
func (s *Store) ForEach(f func(heap.ObjectID)) {
	for _, ids := range s.pages {
		for _, id := range ids {
			f(id)
		}
	}
}

// LiveSet returns the current view as a set for bulk membership queries.
func (s *Store) LiveSet() map[heap.ObjectID]struct{} {
	out := make(map[heap.ObjectID]struct{})
	for _, ids := range s.pages {
		for _, id := range ids {
			out[id] = struct{}{}
		}
	}
	return out
}
