package snapshot

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"polm2/internal/heap"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Seq:         3,
		Cycle:       17,
		TakenAt:     90 * time.Second,
		Incremental: true,
		Regions:     []heap.RegionID{1, 2, 9},
		NoNeed:      []heap.PageKey{{Region: 2, Index: 5}, {Region: 9, Index: 0}},
		Pages: []PageRecord{
			{Key: heap.PageKey{Region: 1, Index: 0}, HeaderIDs: []heap.ObjectID{100, 42, 7}},
			{Key: heap.PageKey{Region: 9, Index: 3}, HeaderIDs: []heap.ObjectID{55}},
			{Key: heap.PageKey{Region: 9, Index: 4}},
		},
		SizeBytes: 12288,
		Duration:  4 * time.Millisecond,
	}
}

// normalize sorts a snapshot's slices the way the codec canonicalizes them.
func normalize(s *Snapshot) {
	for i := range s.Pages {
		ids := s.Pages[i].HeaderIDs
		for a := 1; a < len(ids); a++ {
			for b := a; b > 0 && ids[b-1] > ids[b]; b-- {
				ids[b-1], ids[b] = ids[b], ids[b-1]
			}
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	var buf bytes.Buffer
	if err := want.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	normalize(want)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not an image")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader("PSNP\x63")); err == nil {
		t.Fatal("unknown version accepted")
	}
	// Truncated image.
	var buf bytes.Buffer
	if err := sampleSnapshot().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestWriteDirReadDir(t *testing.T) {
	dir := t.TempDir()
	a := sampleSnapshot()
	a.Incremental = false // chain base: ReadDir refuses a rootless chain
	b := sampleSnapshot()
	b.Seq = 4
	b.Incremental = false
	if err := WriteDir(dir, []*Snapshot{b, a}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("ReadDir order wrong: %+v", got)
	}
	if got[1].Incremental {
		t.Fatal("full-dump flag lost")
	}
}

func TestReadDirEmpty(t *testing.T) {
	got, err := ReadDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty dir returned %d snapshots", len(got))
	}
}

// Property: any randomly generated snapshot round-trips through the codec,
// and the reconstructed store views agree.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Snapshot{
			Seq:         1 + rng.Intn(1000),
			Cycle:       uint64(rng.Intn(5000)),
			TakenAt:     time.Duration(rng.Intn(1 << 30)),
			Incremental: rng.Intn(2) == 0,
			SizeBytes:   uint64(rng.Intn(1 << 20)),
			Duration:    time.Duration(rng.Intn(1 << 20)),
		}
		for i, n := 0, rng.Intn(20); i < n; i++ {
			s.Regions = append(s.Regions, heap.RegionID(rng.Intn(1000)))
		}
		seenRegion := make(map[heap.RegionID]bool)
		dedup := s.Regions[:0]
		for _, r := range s.Regions {
			if !seenRegion[r] {
				seenRegion[r] = true
				dedup = append(dedup, r)
			}
		}
		s.Regions = dedup
		seenKey := make(map[heap.PageKey]bool)
		for i, n := 0, rng.Intn(10); i < n; i++ {
			key := heap.PageKey{Region: heap.RegionID(rng.Intn(100)), Index: uint32(rng.Intn(64))}
			if seenKey[key] {
				continue
			}
			seenKey[key] = true
			s.NoNeed = append(s.NoNeed, key)
		}
		seenKey = make(map[heap.PageKey]bool)
		for i, n := 0, rng.Intn(15); i < n; i++ {
			pr := PageRecord{Key: heap.PageKey{Region: heap.RegionID(rng.Intn(100)), Index: uint32(rng.Intn(64))}}
			if seenKey[pr.Key] {
				continue
			}
			seenKey[pr.Key] = true
			seenID := make(map[heap.ObjectID]bool)
			for j, m := 0, rng.Intn(8); j < m; j++ {
				id := heap.ObjectID(rng.Uint64())
				if !seenID[id] {
					seenID[id] = true
					pr.HeaderIDs = append(pr.HeaderIDs, id)
				}
			}
			s.Pages = append(s.Pages, pr)
		}

		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		// Compare via store views: order-insensitive equivalence.
		sa, sb := NewStore(), NewStore()
		if err := sa.Apply(s); err != nil {
			return false
		}
		if err := sb.Apply(got); err != nil {
			return false
		}
		return reflect.DeepEqual(sa.LiveSet(), sb.LiveSet()) &&
			got.Seq == s.Seq && got.Cycle == s.Cycle &&
			got.Incremental == s.Incremental && got.SizeBytes == s.SizeBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
