package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"polm2/internal/heap"
)

// FuzzRead drives the image decoder with arbitrary bytes: it must never
// panic and never allocate unboundedly, only return a snapshot or a typed
// error. The seed corpus holds both format versions, including real v1
// images from a pre-PR profiling run.
func FuzzRead(f *testing.F) {
	// v2 seeds from the canonical sample and an empty snapshot.
	for _, s := range []*Snapshot{
		sampleSnapshot(),
		{Seq: 1},
		{Seq: 2, Incremental: true, Regions: []heap.RegionID{1}, TakenAt: time.Second},
	} {
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Real v1 images recorded before the framed format existed.
	paths, err := filepath.Glob(filepath.Join(v1Dir, "snap-*.img"))
	if err != nil {
		f.Fatal(err)
	}
	for i, path := range paths {
		if i >= 4 {
			break // a few genuine images are enough seed diversity
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("PSNP\x02"))
	f.Add([]byte("PSNP\x01\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded snapshot must be safe to replay.
		if s.Seq > 0 {
			store := NewStore()
			if err := store.Apply(s); err != nil {
				t.Skip() // out-of-order seq is a store-level refusal, fine
			}
		}
	})
}
