// Package gc defines the collector abstraction of the POLM2 reproduction:
// the interface every simulated collector implements, the stop-the-world
// pause events the evaluation measures, and the calibrated cost model that
// converts collection work (bytes copied, remembered sets scanned, regions
// evacuated) into simulated pause time.
//
// Three collectors implement the interface, matching the paper's
// evaluation: a G1-like two-generation baseline (internal/gc/g1), the NG2C
// multi-generation pretenuring collector POLM2 drives (internal/gc/ng2c),
// and a C4-like concurrent collector used for the throughput and memory
// comparisons (internal/gc/c4).
package gc

import (
	"time"

	"polm2/internal/heap"
	"polm2/internal/simclock"
)

// PauseKind classifies a stop-the-world pause.
type PauseKind int

// Pause kinds. Enums start at one so the zero value is detectably invalid.
const (
	// PauseYoung is a young-generation (minor) collection.
	PauseYoung PauseKind = iota + 1
	// PauseMixed is a young collection that also evacuates old regions
	// (G1 mixed collection / NG2C dynamic-generation collection).
	PauseMixed
	// PauseFull is a whole-heap compacting collection.
	PauseFull
	// PauseConcurrent is the brief stop-the-world phase of a mostly
	// concurrent cycle (C4's checkpoint pauses).
	PauseConcurrent
)

// String returns the kind's display name.
func (k PauseKind) String() string {
	switch k {
	case PauseYoung:
		return "young"
	case PauseMixed:
		return "mixed"
	case PauseFull:
		return "full"
	case PauseConcurrent:
		return "concurrent"
	default:
		return "invalid"
	}
}

// Pause is one stop-the-world application pause — the paper's central
// metric (Figures 5 and 6).
type Pause struct {
	// Start is the simulated instant the pause began.
	Start time.Duration
	// Duration is the simulated pause length.
	Duration time.Duration
	// Kind classifies the collection.
	Kind PauseKind
	// Cycle is the GC cycle number that caused the pause.
	Cycle uint64
	// BytesCopied and ObjectsCopied describe evacuation work.
	BytesCopied   uint64
	ObjectsCopied int
	// RegionsCollected is the collection-set size; RegionsFreed counts
	// regions returned to the free pool.
	RegionsCollected int
	RegionsFreed     int
	// PromotedBytes counts bytes moved into an older generation —
	// the en-masse promotion the paper identifies as the root cause of
	// long pauses (§1).
	PromotedBytes uint64
}

// CostModel converts collection work into simulated pause time. The
// defaults approximate a 2009-era Xeon (the paper's E5505): ~1 GiB/s object
// copying, fractions of a microsecond per remembered-set entry and per
// object header fix-up.
type CostModel struct {
	// Base is the fixed safepoint + root-scan cost of any pause.
	Base time.Duration
	// PerRegion is charged for each region in the collection set.
	PerRegion time.Duration
	// PerRemsetEntry is charged for each remembered-set entry of the
	// collection set (scanning cost).
	PerRemsetEntry time.Duration
	// PerCopiedByte is charged for each byte evacuated.
	PerCopiedByte time.Duration
	// PerCopiedObject is charged for each object evacuated (header
	// fix-up, forwarding).
	PerCopiedObject time.Duration
	// PerTracedObject is charged per reachable object during full-heap
	// marking (full GCs only).
	PerTracedObject time.Duration
}

// DefaultCostModel returns the calibrated cost model used by the
// evaluation harness.
func DefaultCostModel() CostModel {
	return CostModel{
		Base:            500 * time.Microsecond,
		PerRegion:       30 * time.Microsecond,
		PerRemsetEntry:  120 * time.Nanosecond,
		PerCopiedByte:   1 * time.Nanosecond,
		PerCopiedObject: 250 * time.Nanosecond,
		PerTracedObject: 60 * time.Nanosecond,
	}
}

// EvacuationCost prices a pause that evacuated the given work.
func (m CostModel) EvacuationCost(regions int, remsetEntries int, bytesCopied uint64, objectsCopied int) time.Duration {
	return m.Base +
		time.Duration(regions)*m.PerRegion +
		time.Duration(remsetEntries)*m.PerRemsetEntry +
		time.Duration(bytesCopied)*m.PerCopiedByte +
		time.Duration(objectsCopied)*m.PerCopiedObject
}

// CycleFunc observes the end of a GC cycle. The collector passes the cycle
// number and the live set its trace computed; POLM2's Recorder uses it to
// mark no-need pages and trigger a heap snapshot (§3.2).
type CycleFunc func(cycle uint64, live *heap.LiveSet)

// Collector is a simulated garbage collector. Implementations are not safe
// for concurrent use; the simulation is single-threaded.
type Collector interface {
	// Name returns the collector's display name ("G1", "NG2C", "C4").
	Name() string
	// Allocate allocates an object. Target names the pretenuring
	// generation; collectors without pretenuring support ignore it and
	// allocate young. Allocation may trigger collections, advancing the
	// simulated clock.
	Allocate(size uint32, site heap.SiteID, target heap.GenID) (*heap.Object, error)
	// Heap exposes the underlying heap (graph mutation, stats, pages).
	Heap() *heap.Heap
	// Clock exposes the simulated clock the collector advances during
	// pauses.
	Clock() *simclock.Clock
	// Pauses returns all stop-the-world pauses so far, in order.
	Pauses() []Pause
	// Cycles returns the number of completed GC cycles.
	Cycles() uint64
	// MutatorFactor is the slowdown the collector's barriers impose on
	// mutator work (1.0 = none; C4 > 1).
	MutatorFactor() float64
	// OnCycleEnd registers a cycle listener.
	OnCycleEnd(fn CycleFunc)
	// ForceCollect runs a collection immediately (used at workload
	// boundaries and in tests).
	ForceCollect() error
}

// Pretenuring is implemented by collectors that support NG2C's API (§2.2):
// allocating objects directly into dynamically created generations.
type Pretenuring interface {
	Collector
	// NewGeneration creates a new generation and returns its id.
	NewGeneration() heap.GenID
	// Generations returns the number of generations currently in use,
	// including the young generation.
	Generations() int
}
